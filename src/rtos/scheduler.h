/**
 * @file
 * Preemptive multitasking model (paper §2.2, §2.6).
 *
 * The scheduler is a partially-trusted compartment that owns thread
 * state. This model is event-driven: threads contribute *activations*
 * (periodic or one-shot closures); the run loop dispatches the
 * highest-priority due activation, accounts its busy cycles on the
 * shared machine clock, and idles between activations — during which
 * the background revoker owns the memory port, exactly as on silicon.
 *
 * Context switches charge the real save/restore cost: fifteen
 * capability registers plus, when the stack high-water-mark CSRs are
 * enabled, the two extra mshwm/mshwmb registers whose cost Table 4
 * makes visible on revoker-bound workloads.
 */

#ifndef CHERIOT_RTOS_SCHEDULER_H
#define CHERIOT_RTOS_SCHEDULER_H

#include "rtos/guest_context.h"
#include "rtos/object_cap.h"
#include "rtos/thread.h"
#include "util/stats.h"

#include <functional>
#include <string>
#include <vector>

namespace cheriot::rtos
{

class Scheduler
{
  public:
    /** Register save/restore cost per context switch. @{ */
    static constexpr uint32_t kSavedCapRegs = 15;
    static constexpr uint32_t kSwitchInstructions = 40;
    static constexpr uint32_t kHwmCsrOps = 4; ///< save+restore × 2 CSRs.
    /** @} */

    explicit Scheduler(GuestContext &guest,
                       cap::Capability contextSaveArea)
        : guest_(guest), saveArea_(contextSaveArea)
    {
        stats_.registerCounter("contextSwitches", contextSwitches);
        stats_.registerCounter("idleCycles", idleCycleCount);
        stats_.registerCounter("busyCycles", busyCycleCount);
        stats_.registerCounter("admissionDeferrals", admissionDeferrals);
        stats_.registerCounter("timeCapDeferrals", timeCapDeferrals);
    }

    /**
     * Charge one full context switch (save the outgoing thread's
     * register file, restore the incoming one's).
     */
    void contextSwitch();

    /**
     * Block the current thread until @p done() holds, context
     * switching to the idle thread and re-checking every
     * @p pollCycles. Used e.g. while the hardware revoker sweeps.
     */
    void blockUntil(const std::function<bool()> &done,
                    uint64_t pollCycles = 512);

    /** Account @p cycles of pure idle (port free for the revoker). */
    void runIdle(uint64_t cycles);

    /** @name Periodic activations (IoT application model) @{ */
    struct Task
    {
        std::string name;
        uint64_t periodCycles;
        uint64_t nextDue;
        uint8_t priority;
        std::function<void()> fn;
        /** Time object capability gating dispatch; untagged = the
         * legacy ambient schedule (no gate). */
        cap::Capability timeCap;
    };

    void addPeriodic(std::string name, uint64_t periodCycles,
                     uint8_t priority, std::function<void()> fn);

    /**
     * Admission control under heap pressure: when set, the gate is
     * consulted before each dispatch and a true verdict defers the
     * activation by one period (charged to admissionDeferrals, not
     * run). Gates typically read the heap-pressure MMIO window and
     * defer elastic low-priority work while revocation is behind;
     * deferral can never wedge the loop — time still advances and
     * the gate is re-asked at the next due date.
     */
    void setAdmissionGate(std::function<bool(const Task &)> gate)
    {
        admissionGate_ = std::move(gate);
    }

    /** @name Time object capabilities (revocable schedule slices)
     * With a TimeAuthority wired, a task bound to a Time capability
     * runs only while the capability is live and covers the current
     * slot (machine cycle / slotCycles). A revoked or out-of-slice
     * capability defers the activation exactly like the admission
     * gate: typed accounting, one period slide, never a trap — so
     * revocation mid-slice preempts at the next scheduling point. @{ */
    void setTimeAuthority(TimeAuthority *authority)
    {
        timeAuthority_ = authority;
    }
    /** Bind @p token to the task named @p name; false if unknown. */
    bool bindTimeCap(const std::string &name,
                     const cap::Capability &token);
    void setSlotCycles(uint64_t slotCycles)
    {
        slotCycles_ = slotCycles == 0 ? 1 : slotCycles;
    }
    uint64_t slotCycles() const { return slotCycles_; }
    /** The slot the scheduler is in at machine cycle @p cycle. */
    uint64_t slotAt(uint64_t cycle) const { return cycle / slotCycles_; }
    /** @} */

    /** As addPeriodic, but the first activation is due @p firstDelay
     * cycles from now (0 = immediately; e.g. one-shot setup work). */
    void addPeriodicWithDelay(std::string name, uint64_t periodCycles,
                              uint64_t firstDelay, uint8_t priority,
                              std::function<void()> fn);

    /**
     * Run the event loop for @p horizon machine cycles. Returns the
     * fraction of cycles spent busy (non-idle).
     */
    double runFor(uint64_t horizon);
    /** @} */

    uint64_t idleCycles() const { return idleCycleCount.value(); }
    uint64_t busyCycles() const { return busyCycleCount.value(); }

    /** @name Snapshot state
     * Task closures are boot-time constants (recreated by the same
     * deterministic boot); only each task's next-due deadline and the
     * accounting counters are dynamic. Deserialization requires the
     * same task list (count, names and periods) to be registered. @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    Counter contextSwitches;
    Counter idleCycleCount;
    Counter busyCycleCount;
    Counter admissionDeferrals;
    Counter timeCapDeferrals; ///< Dispatches refused by a Time cap.

    StatGroup &stats() { return stats_; }

  private:
    GuestContext &guest_;
    cap::Capability saveArea_;
    std::vector<Task> tasks_;
    std::function<bool(const Task &)> admissionGate_;
    TimeAuthority *timeAuthority_ = nullptr;
    /** Schedule-slot width for Time-capability checks. */
    uint64_t slotCycles_ = 4096;
    StatGroup stats_{"scheduler"};
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_SCHEDULER_H
