#include "rtos/heap_pressure.h"

#include "alloc/heap_allocator.h"

namespace cheriot::rtos
{

uint32_t
HeapPressureDevice::read32(uint32_t offset)
{
    switch (offset) {
      case kRegFreeBytes:
        return static_cast<uint32_t>(allocator_.freeBytes());
      case kRegQuarantinedBytes:
        return static_cast<uint32_t>(allocator_.quarantinedBytes());
      case kRegOldestEpochAge:
        return allocator_.oldestEpochAge();
      case kRegQuarantinedChunks:
        return allocator_.quarantinedChunks();
      case kRegHeapSize:
        return allocator_.heapEnd() - allocator_.heapBase();
      case kRegEpoch:
        return allocator_.epoch();
      case kRegBlockedMallocs:
        return static_cast<uint32_t>(allocator_.blockedMallocs.value());
      case kRegBackoffTimeouts:
        return static_cast<uint32_t>(allocator_.backoffTimeouts.value());
      case kRegQuotaDenials:
        return static_cast<uint32_t>(allocator_.quotaDenials.value());
      case kRegOomReturns:
        return static_cast<uint32_t>(allocator_.oomReturns.value());
      default:
        return 0;
    }
}

void
HeapPressureDevice::write32(uint32_t offset, uint32_t value)
{
    (void)offset;
    (void)value;
}

} // namespace cheriot::rtos
