/**
 * @file
 * The compartment switcher (paper §2.6, §5.2, §5.2.1).
 *
 * The switcher is the most trusted RTOS component: a few hundred
 * hand-written instructions that implement cross-compartment call and
 * return. On a call it saves the caller's register state to the
 * thread's trusted stack, chops the remaining stack for the callee
 * (narrowing the bounds of the stack capability), zeroes the portion
 * handed over, installs the callee's globals capability and interrupt
 * posture, and transfers control. On return it zeroes exactly the
 * stack the callee used, restores the caller, and clears residual
 * registers.
 *
 * With the stack high-water-mark CSRs enabled the zeroing is limited
 * to [mshwm, sp) instead of [stack base, sp), which Table 4 shows is
 * worth ~10% on allocation-heavy small-object workloads.
 */

#ifndef CHERIOT_RTOS_SWITCHER_H
#define CHERIOT_RTOS_SWITCHER_H

#include "rtos/compartment.h"
#include "rtos/guest_context.h"
#include "rtos/thread.h"
#include "util/stats.h"

#include <map>
#include <string>

namespace cheriot::debug
{
class SimStats;
} // namespace cheriot::debug

namespace cheriot::rtos
{

class Kernel;

class Switcher
{
  public:
    /** Instruction budgets for the hand-written entry/exit paths.
     * The full set of RTOS primitives is "a little over 300
     * hand-written instructions" (§2.6); the call/return pair
     * accounts for the bulk of them. @{ */
    static constexpr uint32_t kCallInstructions = 120;
    static constexpr uint32_t kReturnInstructions = 90;
    /** Switcher path that locates and enters an error handler. */
    static constexpr uint32_t kHandlerInstructions = 60;
    /** Caller registers spilled to / reloaded from the trusted stack. */
    static constexpr uint32_t kSavedCaps = 8;
    /** @} */

    explicit Switcher(GuestContext &guest) : guest_(guest)
    {
        stats_.registerCounter("calls", calls);
        stats_.registerCounter("faults", calleeFaults);
        stats_.registerCounter("bytesZeroed", bytesZeroed);
        stats_.registerCounter("handlerInvocations", handlerInvocations);
        stats_.registerCounter("forcedUnwindFrames", forcedUnwindFrames);
        stats_.registerCounter("rejectedCalls", rejectedCalls);
        stats_.registerCounter("compartmentSwitches", compartmentSwitches);
    }

    /**
     * Perform a cross-compartment call on @p thread into @p import,
     * passing @p args. @p trustedStackCap authorises the thread's
     * trusted-stack save area (kernel-owned; no compartment holds it).
     */
    CallResult call(Kernel &kernel, Thread &thread, const Import &import,
                    ArgVec &args, const cap::Capability &trustedStackCap);

    /** @name Snapshot state @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    Counter calls;
    Counter calleeFaults;
    Counter bytesZeroed;
    Counter handlerInvocations; ///< Error handlers entered.
    Counter forcedUnwindFrames; ///< Frames unwound past forcibly.
    Counter rejectedCalls;      ///< Fast-failed (unwind/quarantine).
    /** Compartment transitions observed (call entry + return each
     * count one). Diagnostic only — not serialized. */
    Counter compartmentSwitches;

    StatGroup &stats() { return stats_; }

    /**
     * Register the switcher's stat group and its dynamic
     * per-compartment cycle counters ("compartment.<name>.cycles")
     * with the machine-wide SimStats registry. Cycle attribution is
     * sampled at compartment switch: all cycles elapsed since the
     * previous switch are charged to the compartment that held the
     * core. Diagnostic only — none of this state is serialized.
     */
    void attachSimStats(debug::SimStats &stats);

    /** Name of the compartment currently holding the core ("kernel"
     * outside any cross-compartment call). For the debug stub's
     * qCheriot.compartment query. */
    const std::string &currentCompartment() const
    {
        return currentCompartment_;
    }

    /** Cycles attributed so far to @p name (0 if never scheduled). */
    uint64_t cyclesAttributedTo(const std::string &name) const;

  private:
    /** Charge cycles since the last switch to the outgoing
     * compartment and make @p name the attribution target. */
    void switchTo(const std::string &name);
    Counter &cyclesFor(const std::string &name);
    /** Zero the dirty part of the unused stack; returns bytes zeroed. */
    uint32_t zeroStack(Thread &thread, uint32_t sp);

    /**
     * Recovery path for a faulting callee (paper §5.2): charge the
     * fault to the watchdog, run the compartment's error handler if
     * it has one (and is allowed one), otherwise begin a forced
     * unwind back to the original caller.
     */
    CallResult handleCalleeFault(Kernel &kernel, Thread &thread,
                                 const Import &import,
                                 CompartmentContext &context,
                                 const CallResult &faultResult);

    GuestContext &guest_;
    StatGroup stats_{"switcher"};
    /** Per-compartment cycle attribution (std::map for stable Counter
     * addresses — SimStats holds pointers into it). */
    std::map<std::string, Counter> compartmentCycles_;
    std::string currentCompartment_{"kernel"};
    uint64_t attributionMark_ = 0;
    debug::SimStats *simStats_ = nullptr;
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_SWITCHER_H
