/**
 * @file
 * The boot loader / static-linker model (paper §2.6, §5.2).
 *
 * At build time, compartments from mutually distrusting parties are
 * statically linked into a single image; at boot, the loader runs
 * with the capability roots, carves SRAM into code, per-compartment
 * globals, stacks and the heap, derives each compartment's narrowed
 * capabilities (clearing Store-Local from globals pointers, marking
 * stacks local), resolves imports of exports, hands the revocation
 * bitmap window to the allocator compartment alone, and finally
 * erases the roots.
 */

#ifndef CHERIOT_RTOS_LOADER_H
#define CHERIOT_RTOS_LOADER_H

#include "cap/capability.h"
#include "sim/machine.h"

namespace cheriot::rtos
{

class Loader
{
  public:
    explicit Loader(sim::Machine &machine);

    /**
     * Carve @p bytes from the static region (SRAM below the heap
     * window). Returns the base address. Panics on exhaustion: image
     * layout is a build-time property.
     */
    uint32_t allocRegion(uint32_t bytes, uint32_t align = 8);

    /**
     * Carve a region whose capability bounds will be *exact*: the
     * base is aligned per CRAM and the size rounded per CRRL for the
     * requested size, so no compartment's capability can spill into a
     * neighbour's region (§3.2.3's representability rules applied at
     * link time). Returns the base; the rounded size via @p outSize.
     */
    uint32_t allocExactRegion(uint32_t bytes, uint32_t *outSize);

    /** @name Capability derivation from the (boot-held) roots @{ */

    /** Read/write data capability over [base, base+size).
     * @param storeLocal grant SL (stacks and register save areas
     *        only). @param global grant GL (false for stacks). */
    cap::Capability dataCap(uint32_t base, uint32_t size,
                            bool storeLocal = false, bool global = true);

    /** Execute capability over [base, base+size). @param systemRegs
     * grant SR (switcher / early boot only). */
    cap::Capability codeCap(uint32_t base, uint32_t size,
                            bool systemRegs = false);

    /** Capability over an MMIO window. */
    cap::Capability mmioCap(uint32_t base, uint32_t size);

    /** Sealing capability for one data otype. */
    cap::Capability sealerFor(uint8_t dataOtype);

    /** @} */

    /** Address space still unclaimed in the static region. */
    uint32_t remaining() const { return staticLimit_ - cursor_; }

    /**
     * Erase the roots: after boot completes no more capabilities can
     * be derived. Further derivation panics.
     */
    void finalise() { finalised_ = true; }
    bool finalised() const { return finalised_; }

  private:
    void checkLive() const;

    sim::Machine &machine_;
    uint32_t cursor_;      ///< Next free static address.
    uint32_t staticLimit_; ///< First heap address (static data stops).
    bool finalised_ = false;
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_LOADER_H
