/**
 * @file
 * Kernel object capabilities: revocable, derivable authority over
 * kernel objects, generalizing the sealed AllocatorCapability pattern
 * (paper §3.2.2) from heap memory to every delegable kernel resource.
 *
 * Three typed capabilities live in one kernel table:
 *
 *  - Time: a slice [begin, end) of the hart's schedule in scheduler
 *    slots. Children are carved out with s3k-style begin/mark/end
 *    semantics: deriving [b, e) requires mark <= b < e <= end and
 *    advances the parent's mark to e, so siblings can never overlap
 *    and a child can never exceed its parent's bounds.
 *  - Channel: send/receive endpoint authority over a
 *    MessageQueueService queue. The sealed queue handle stays inside
 *    the table entry; holders of a Channel cap can only reach the
 *    queue through the service, and derivation can only shed
 *    permissions, never add them.
 *  - Monitor: authority over another compartment's quarantine and
 *    restart, consumed by the Watchdog. Restart authority becomes a
 *    delegable, revocable token instead of ambient kernel privilege.
 *
 * Every capability is minted as a sealed token via the token library
 * (virtualized sealing) and tracked in a derivation tree. Revocation
 * is recursive in the PoisonCap style: revoking any node kills its
 * entire subtree, and a revoked token degrades to a typed refusal —
 * never a trap — at the consumer (scheduler slot gate, queue wait
 * loop, watchdog admission). Table entries carry a validate-on-use
 * canary (the FlowManager idiom): a scrambled entry is refused typed
 * and its subtree is killed fail-safe, so corruption can delete
 * authority but never forge it.
 */

#ifndef CHERIOT_RTOS_OBJECT_CAP_H
#define CHERIOT_RTOS_OBJECT_CAP_H

#include "alloc/heap_allocator.h"
#include "rtos/guest_context.h"
#include "rtos/token_library.h"
#include "util/stats.h"

#include <cstdint>
#include <vector>

namespace cheriot::fault
{
class FaultInjector;
}
namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::rtos
{

/** The kernel object a capability grants authority over. */
enum class ObjectCapType : uint8_t
{
    Time = 0,    ///< A [begin, end) slice of the schedule.
    Channel = 1, ///< Send/receive authority over one message queue.
    Monitor = 2, ///< Quarantine/restart authority over a compartment.
};

const char *objectCapTypeName(ObjectCapType type);

/** Typed outcome of every object-capability operation. Degradation
 * is always one of these values — never a trap. */
enum class CapResult : uint8_t
{
    Ok = 0,
    InvalidCap,      ///< Not a live object capability (bad token,
                     ///< reclaimed slot, or corrupt entry).
    Revoked,         ///< The entry exists but its authority is dead.
    BoundsViolation, ///< Requested slice escapes the parent's bounds.
    PermViolation,   ///< Wrong type, or permissions not a subset.
    Exhausted,       ///< Heap exhausted minting the record or token.
};

const char *capResultName(CapResult result);

/** Resolved Channel authority: the service routes through the queue
 * handle held inside the table, which never escapes to callers. */
struct ChannelGrant
{
    CapResult status = CapResult::InvalidCap;
    cap::Capability queue;
    bool canSend = false;
    bool canReceive = false;
};

/** @name Consumer-facing authority interfaces
 * Narrow views of the table, injected into the scheduler, queue
 * service and watchdog so those modules depend on the check they
 * need, not on the whole table. @{ */
class TimeAuthority
{
  public:
    virtual ~TimeAuthority() = default;
    /** Does @p token grant the current scheduler slot @p slot? */
    virtual CapResult checkTime(const cap::Capability &token,
                                uint64_t slot) = 0;
};

class ChannelAuthority
{
  public:
    virtual ~ChannelAuthority() = default;
    virtual ChannelGrant checkChannel(const cap::Capability &token) = 0;
};

class MonitorAuthority
{
  public:
    virtual ~MonitorAuthority() = default;
    /** Does @p token grant monitor authority over compartment index
     * @p targetIndex? */
    virtual CapResult checkMonitor(const cap::Capability &token,
                                   uint32_t targetIndex) = 0;
};
/** @} */

class ObjectCapTable final : public TimeAuthority,
                             public ChannelAuthority,
                             public MonitorAuthority
{
  public:
    static constexpr uint32_t kNoParent = 0xffffffffu;

    /** Record discriminator ('ocap'); layout: magic@0, id@4. */
    static constexpr uint32_t kRecordMagic = 0x6f636170;
    static constexpr uint32_t kRecordSize = 8;

    /**
     * @param guest     charged memory access (records live in heap).
     * @param tokens    virtualized sealing for the minted tokens.
     * @param allocator backing store for the per-cap records.
     */
    ObjectCapTable(GuestContext &guest, TokenLibrary &tokens,
                   alloc::HeapAllocator &allocator);

    /** @name Minting root capabilities (boot-time kernel API) @{ */
    cap::Capability mintTime(uint32_t ownerIndex, uint64_t beginSlot,
                             uint64_t endSlot);
    cap::Capability mintChannel(uint32_t ownerIndex,
                                const cap::Capability &queueHandle,
                                bool canSend, bool canReceive);
    cap::Capability mintMonitor(uint32_t ownerIndex,
                                uint32_t targetIndex);
    /** @} */

    /** @name Derivation (the tree grows)
     * Each returns the child token (untagged on refusal) and reports
     * why through @p why when non-null. @{ */

    /** Carve [beginSlot, endSlot) out of @p parent: requires
     * mark <= begin < end <= parent.end, advances parent's mark to
     * endSlot (s3k cap_util semantics). */
    cap::Capability deriveTime(const cap::Capability &parent,
                               uint64_t beginSlot, uint64_t endSlot,
                               CapResult *why = nullptr);
    /** Derive with a (non-empty) subset of the parent's send/receive
     * permissions. */
    cap::Capability deriveChannel(const cap::Capability &parent,
                                  bool canSend, bool canReceive,
                                  CapResult *why = nullptr);
    /** Delegate monitor authority over the same target. */
    cap::Capability deriveMonitor(const cap::Capability &parent,
                                  CapResult *why = nullptr);
    /** @} */

    /** Move @p token to a new owning compartment (the token itself is
     * unchanged; ownership is a table attribute the audit reads). */
    CapResult transfer(const cap::Capability &token,
                       uint32_t newOwnerIndex);

    /**
     * Revoke @p token and, transitively, every descendant (recursive
     * revoke). Idempotent: revoking an already-dead capability is Ok.
     */
    CapResult revoke(const cap::Capability &token);

    /**
     * Schedule @p token's revocation at machine cycle @p atCycle.
     * Delivery is lazy — applied at the next table access at or after
     * the deadline — which is exactly the next scheduling point /
     * backoff retry of every consumer, so "revoked mid-wait" and
     * "revoked mid-slice" land where the paper's model says they
     * must: at a check, never inside one.
     */
    CapResult scheduleRevoke(const cap::Capability &token,
                             uint64_t atCycle);

    /**
     * Free the records and token boxes of dead entries, returning
     * their heap memory. A reclaimed token thereafter fails unseal
     * and degrades from Revoked to InvalidCap — still typed. Returns
     * the number of entries reclaimed.
     */
    uint32_t reclaim();

    /** @name Authority checks (consumer interfaces) @{ */
    CapResult checkTime(const cap::Capability &token,
                        uint64_t slot) override;
    ChannelGrant checkChannel(const cap::Capability &token) override;
    CapResult checkMonitor(const cap::Capability &token,
                           uint32_t targetIndex) override;
    /** @} */

    /** @name Introspection (tests, audit, bench oracles) @{ */
    size_t size() const { return entries_.size(); }
    bool aliveAt(uint32_t id) const;
    ObjectCapType typeAt(uint32_t id) const;
    uint32_t parentOf(uint32_t id) const;
    uint32_t ownerOf(uint32_t id) const;
    /** Time-slice bounds; zeros for non-Time entries. */
    void timeBoundsAt(uint32_t id, uint64_t *begin, uint64_t *mark,
                      uint64_t *end) const;
    /** Resolve a token to its table id without consuming fault
     * injections (oracle use); kNoParent on failure. */
    uint32_t idOf(const cap::Capability &token);
    /** True iff no live descendant of @p id remains (the recursive
     * revoke postcondition the chaos bench asserts). */
    bool subtreeDead(uint32_t id) const;
    /** @} */

    /** Wire the fault injector (CapTableCorrupt site). */
    void attachInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** @name Snapshot state (entries, tree links, pending revocations
     * and counters; record/token boxes ride the machine image) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    Counter capsMinted;          ///< Root capabilities minted.
    Counter capsDerived;         ///< Children derived.
    Counter capsTransferred;     ///< Ownership transfers.
    Counter revocations;         ///< revoke() calls that killed a node.
    Counter descendantsRevoked;  ///< Nodes killed transitively.
    Counter scheduledRevocations;///< Deadline revocations delivered.
    Counter staleTokensRefused;  ///< Dead-entry presentations refused.
    Counter invalidTokensRefused;///< Unseal/record failures refused.
    Counter corruptEntriesRefused;///< Canary mismatches refused.

    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        ObjectCapType type = ObjectCapType::Time;
        bool alive = false;
        bool reclaimed = false;
        uint32_t parent = kNoParent;
        uint32_t ownerIndex = 0;
        std::vector<uint32_t> children;
        /** Time: slot bounds + derivation mark. */
        uint64_t begin = 0;
        uint64_t mark = 0;
        uint64_t end = 0;
        /** Channel: the wrapped (sealed) queue handle + permissions. */
        cap::Capability queue;
        bool canSend = false;
        bool canReceive = false;
        /** Monitor: target compartment index. */
        uint32_t target = 0;
        /** Validate-on-use canary over the identity fields. */
        uint32_t canary = 0;
        /** Heap record backing the sealed token. */
        cap::Capability record;
        /** The sealed token itself (kept for reclaim()). */
        cap::Capability token;
    };

    struct PendingRevoke
    {
        uint64_t atCycle;
        uint32_t id;
    };

    uint32_t canaryOf(const Entry &entry, uint32_t id) const;
    void resealCanary(uint32_t id);
    /** Apply a CapTableCorrupt scramble pattern to @p entry. */
    void scramble(Entry &entry, uint32_t pattern);

    /**
     * Resolve a token to a validated live-or-dead entry id; applies
     * due revocations, consumes fault injections, checks the canary.
     * Returns kNoParent and sets @p why on refusal.
     */
    uint32_t entryFor(const cap::Capability &token, CapResult *why);

    /** Kill @p id and its whole subtree (parent-pointer scan: robust
     * even when an entry's children list was scrambled). */
    void killSubtree(uint32_t id);
    void processDueRevocations();

    /** Allocate record + token for a fully-initialised prototype;
     * returns the sealed token (untagged on heap exhaustion). */
    cap::Capability commit(Entry proto, Counter &counter);

    GuestContext &guest_;
    TokenLibrary &tokens_;
    alloc::HeapAllocator &allocator_;
    cap::Capability key_; ///< Sealing key for object-cap tokens.
    std::vector<Entry> entries_;
    std::vector<PendingRevoke> pending_;
    fault::FaultInjector *injector_ = nullptr;

    StatGroup stats_{"object_caps"};
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_OBJECT_CAP_H
