#include "rtos/watchdog.h"

#include "snapshot/serializer.h"
#include "util/log.h"

namespace cheriot::rtos
{

bool
Watchdog::recordFault(Compartment &compartment, sim::TrapCause cause,
                      uint64_t nowCycle)
{
    FaultRecoveryState &state = compartment.faultState();
    state.faultsTotal++;
    state.faultsSinceRestart++;
    faultsObserved++;
    if (state.quarantined ||
        state.faultsSinceRestart < policy_.faultBudget) {
        return false;
    }
    state.quarantined = true;
    state.quarantines++;
    state.restartDueCycle = nowCycle + policy_.restartDelayCycles;
    quarantines++;
    warn("watchdog: compartment '%s' exhausted its fault budget "
         "(%u faults, last: %s) — quarantined for %llu cycles",
         compartment.name().c_str(), state.faultsSinceRestart,
         sim::trapCauseName(cause),
         static_cast<unsigned long long>(policy_.restartDelayCycles));
    return true;
}

bool
Watchdog::recordAllocFailure(Compartment &compartment,
                             alloc::AllocResult result,
                             uint64_t nowCycle)
{
    FaultRecoveryState &state = compartment.faultState();
    state.allocFailuresTotal++;
    state.allocFailuresSinceRestart++;
    allocFailuresObserved++;
    if (state.quarantined ||
        state.allocFailuresSinceRestart < policy_.allocFailureBudget) {
        return false;
    }
    state.quarantined = true;
    state.quarantines++;
    state.restartDueCycle = nowCycle + policy_.restartDelayCycles;
    quarantines++;
    overloadQuarantines++;
    warn("watchdog: compartment '%s' exhausted its allocation-failure "
         "budget (%u failures, last: %s) — quarantined for %llu cycles",
         compartment.name().c_str(), state.allocFailuresSinceRestart,
         alloc::allocResultName(result),
         static_cast<unsigned long long>(policy_.restartDelayCycles));
    return true;
}

bool
Watchdog::shouldReject(Compartment &compartment, uint64_t nowCycle)
{
    FaultRecoveryState &state = compartment.faultState();
    if (!state.quarantined) {
        return false;
    }
    if (nowCycle >= state.restartDueCycle) {
        restart(compartment);
        return false;
    }
    rejectedCalls++;
    return true;
}

uint32_t
Watchdog::budgetRemaining(const Compartment &compartment) const
{
    const FaultRecoveryState &state = compartment.faultState();
    if (state.quarantined ||
        state.faultsSinceRestart >= policy_.faultBudget) {
        return 0;
    }
    return policy_.faultBudget - state.faultsSinceRestart;
}

void
Watchdog::restart(Compartment &compartment)
{
    FaultRecoveryState &state = compartment.faultState();
    // A compartment's only persistent mutable state is its globals
    // (stacks are zeroed by the switcher on every call boundary), so
    // zeroing them re-creates the freshly loaded image.
    const cap::Capability &globals = compartment.globalsCap();
    guest_.chargeExecution(kRestartInstructions);
    guest_.zero(globals, globals.base(),
                static_cast<uint32_t>(globals.length()));
    state.quarantined = false;
    state.faultsSinceRestart = 0;
    state.allocFailuresSinceRestart = 0;
    state.handlerActive = false;
    state.restarts++;
    restarts++;
    logf(LogLevel::Info,
         "watchdog: compartment '%s' restarted (restart #%u)",
         compartment.name().c_str(), state.restarts);
}

CapResult
Watchdog::requestQuarantine(const cap::Capability &monitorCap,
                            Compartment &target, uint32_t targetIndex,
                            uint64_t nowCycle)
{
    const CapResult verdict =
        monitorAuthority_ == nullptr
            ? CapResult::InvalidCap
            : monitorAuthority_->checkMonitor(monitorCap, targetIndex);
    if (verdict != CapResult::Ok) {
        monitorActionsRefused++;
        return verdict;
    }
    FaultRecoveryState &state = target.faultState();
    state.quarantined = true;
    state.quarantines++;
    state.restartDueCycle = nowCycle + policy_.restartDelayCycles;
    quarantines++;
    monitorActionsGranted++;
    logf(LogLevel::Info,
         "watchdog: compartment '%s' quarantined by monitor capability",
         target.name().c_str());
    return CapResult::Ok;
}

CapResult
Watchdog::requestRestart(const cap::Capability &monitorCap,
                         Compartment &target, uint32_t targetIndex)
{
    const CapResult verdict =
        monitorAuthority_ == nullptr
            ? CapResult::InvalidCap
            : monitorAuthority_->checkMonitor(monitorCap, targetIndex);
    if (verdict != CapResult::Ok) {
        // A Monitor revoked mid-recovery degrades typed: the target
        // stays quarantined and heals through the ordinary lazy
        // restart path (shouldReject) when its delay elapses.
        monitorActionsRefused++;
        return verdict;
    }
    restart(target);
    monitorActionsGranted++;
    return CapResult::Ok;
}

void
Watchdog::serialize(snapshot::Writer &w) const
{
    w.u32(policy_.faultBudget);
    w.u64(policy_.restartDelayCycles);
    w.u32(policy_.allocFailureBudget);
    w.counter(faultsObserved);
    w.counter(quarantines);
    w.counter(restarts);
    w.counter(rejectedCalls);
    w.counter(allocFailuresObserved);
    w.counter(overloadQuarantines);
    w.counter(monitorActionsGranted);
    w.counter(monitorActionsRefused);
}

bool
Watchdog::deserialize(snapshot::Reader &r)
{
    policy_.faultBudget = r.u32();
    policy_.restartDelayCycles = r.u64();
    policy_.allocFailureBudget = r.u32();
    r.counter(faultsObserved);
    r.counter(quarantines);
    r.counter(restarts);
    r.counter(rejectedCalls);
    r.counter(allocFailuresObserved);
    r.counter(overloadQuarantines);
    r.counter(monitorActionsGranted);
    r.counter(monitorActionsRefused);
    return r.ok();
}

} // namespace cheriot::rtos
