#include "rtos/watchdog.h"

#include "util/log.h"

namespace cheriot::rtos
{

bool
Watchdog::recordFault(Compartment &compartment, sim::TrapCause cause,
                      uint64_t nowCycle)
{
    FaultRecoveryState &state = compartment.faultState();
    state.faultsTotal++;
    state.faultsSinceRestart++;
    faultsObserved++;
    if (state.quarantined ||
        state.faultsSinceRestart < policy_.faultBudget) {
        return false;
    }
    state.quarantined = true;
    state.quarantines++;
    state.restartDueCycle = nowCycle + policy_.restartDelayCycles;
    quarantines++;
    warn("watchdog: compartment '%s' exhausted its fault budget "
         "(%u faults, last: %s) — quarantined for %llu cycles",
         compartment.name().c_str(), state.faultsSinceRestart,
         sim::trapCauseName(cause),
         static_cast<unsigned long long>(policy_.restartDelayCycles));
    return true;
}

bool
Watchdog::shouldReject(Compartment &compartment, uint64_t nowCycle)
{
    FaultRecoveryState &state = compartment.faultState();
    if (!state.quarantined) {
        return false;
    }
    if (nowCycle >= state.restartDueCycle) {
        restart(compartment);
        return false;
    }
    rejectedCalls++;
    return true;
}

uint32_t
Watchdog::budgetRemaining(const Compartment &compartment) const
{
    const FaultRecoveryState &state = compartment.faultState();
    if (state.quarantined ||
        state.faultsSinceRestart >= policy_.faultBudget) {
        return 0;
    }
    return policy_.faultBudget - state.faultsSinceRestart;
}

void
Watchdog::restart(Compartment &compartment)
{
    FaultRecoveryState &state = compartment.faultState();
    // A compartment's only persistent mutable state is its globals
    // (stacks are zeroed by the switcher on every call boundary), so
    // zeroing them re-creates the freshly loaded image.
    const cap::Capability &globals = compartment.globalsCap();
    guest_.chargeExecution(kRestartInstructions);
    guest_.zero(globals, globals.base(),
                static_cast<uint32_t>(globals.length()));
    state.quarantined = false;
    state.faultsSinceRestart = 0;
    state.handlerActive = false;
    state.restarts++;
    restarts++;
    logf(LogLevel::Info,
         "watchdog: compartment '%s' restarted (restart #%u)",
         compartment.name().c_str(), state.restarts);
}

} // namespace cheriot::rtos
