#include "rtos/message_queue.h"

#include "util/bits.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::rtos
{

using cap::Capability;

const char *
MessageQueueService::resultName(Result result)
{
    switch (result) {
    case Result::Ok:
        return "Ok";
    case Result::InvalidHandle:
        return "InvalidHandle";
    case Result::InvalidBuffer:
        return "InvalidBuffer";
    case Result::Full:
        return "Full";
    case Result::Empty:
        return "Empty";
    case Result::Timeout:
        return "Timeout";
    case Result::Revoked:
        return "Revoked";
    case Result::NotPermitted:
        return "NotPermitted";
    }
    return "?";
}

MessageQueueService::MessageQueueService(GuestContext &guest,
                                         alloc::HeapAllocator &allocator,
                                         Capability sealer)
    : guest_(guest), allocator_(allocator), sealer_(sealer)
{
    if (!sealer.tag() || !sealer.perms().has(cap::PermSeal) ||
        !sealer.perms().has(cap::PermUnseal)) {
        fatal("message queue service needs seal+unseal authority");
    }
}

Capability
MessageQueueService::create(uint32_t elementBytes, uint32_t capacity)
{
    if (elementBytes == 0 || capacity == 0 ||
        elementBytes > 4096 || capacity > 4096) {
        return Capability();
    }
    const uint32_t elemStride = alignUp<uint32_t>(elementBytes, 4);
    const uint32_t bytes = kStorageOffset + elemStride * capacity;
    const Capability record = allocator_.malloc(bytes);
    if (!record.tag()) {
        return Capability();
    }
    guest_.storeWord(record, record.base() + kMagicOffset, kMagic);
    guest_.storeWord(record, record.base() + kElemOffset, elementBytes);
    guest_.storeWord(record, record.base() + kCapacityOffset, capacity);
    guest_.storeWord(record, record.base() + kHeadOffset, 0);
    guest_.storeWord(record, record.base() + kCountOffset, 0);
    const auto sealed = cap::seal(record, sealer_);
    if (!sealed) {
        panic("message queue: sealing a fresh queue failed");
    }
    guest_.chargeExecution(12);
    return *sealed;
}

Capability
MessageQueueService::open(const Capability &handle)
{
    const auto record = cap::unseal(handle, sealer_);
    if (!record) {
        return Capability();
    }
    guest_.chargeExecution(4);
    // A destroyed (freed) queue record was zeroed: the magic check
    // rejects it even before temporal reuse.
    uint32_t magic = 0;
    if (guest_.tryLoadWord(*record, record->base() + kMagicOffset,
                           &magic) != sim::TrapCause::None ||
        magic != kMagic) {
        return Capability();
    }
    return *record;
}

MessageQueueService::Result
MessageQueueService::send(const Capability &handle,
                          const Capability &message)
{
    const Capability record = open(handle);
    if (!record.tag()) {
        return Result::InvalidHandle;
    }
    const uint32_t elementBytes =
        guest_.loadWord(record, record.base() + kElemOffset);
    const uint32_t capacity =
        guest_.loadWord(record, record.base() + kCapacityOffset);
    const uint32_t head =
        guest_.loadWord(record, record.base() + kHeadOffset);
    const uint32_t count =
        guest_.loadWord(record, record.base() + kCountOffset);
    if (count == capacity) {
        return Result::Full;
    }

    const uint32_t elemStride = alignUp<uint32_t>(elementBytes, 4);
    const uint32_t slot = (head + count) % capacity;
    const uint32_t dst =
        record.base() + kStorageOffset + slot * elemStride;
    // Word-copy through the *caller's* capability: bounds and
    // permission failures surface as InvalidBuffer, and partial
    // copies never become visible (count is bumped last).
    for (uint32_t off = 0; off < elementBytes; off += 4) {
        uint32_t word = 0;
        if (guest_.tryLoadWord(message, message.base() + off, &word) !=
            sim::TrapCause::None) {
            return Result::InvalidBuffer;
        }
        guest_.storeWord(record, dst + off, word);
    }
    guest_.storeWord(record, record.base() + kCountOffset, count + 1);
    guest_.chargeExecution(10);
    return Result::Ok;
}

MessageQueueService::Result
MessageQueueService::receive(const Capability &handle,
                             const Capability &buffer)
{
    const Capability record = open(handle);
    if (!record.tag()) {
        return Result::InvalidHandle;
    }
    const uint32_t elementBytes =
        guest_.loadWord(record, record.base() + kElemOffset);
    const uint32_t capacity =
        guest_.loadWord(record, record.base() + kCapacityOffset);
    const uint32_t head =
        guest_.loadWord(record, record.base() + kHeadOffset);
    const uint32_t count =
        guest_.loadWord(record, record.base() + kCountOffset);
    if (count == 0) {
        return Result::Empty;
    }

    const uint32_t elemStride = alignUp<uint32_t>(elementBytes, 4);
    const uint32_t src =
        record.base() + kStorageOffset + head * elemStride;
    for (uint32_t off = 0; off < elementBytes; off += 4) {
        const uint32_t word = guest_.loadWord(record, src + off);
        if (guest_.tryStoreWord(buffer, buffer.base() + off, word) !=
            sim::TrapCause::None) {
            return Result::InvalidBuffer;
        }
    }
    guest_.storeWord(record, record.base() + kHeadOffset,
                     (head + 1) % capacity);
    guest_.storeWord(record, record.base() + kCountOffset, count - 1);
    guest_.chargeExecution(10);
    return Result::Ok;
}

MessageQueueService::Result
MessageQueueService::sendTimeout(const Capability &handle,
                                 const Capability &message,
                                 uint64_t timeoutCycles)
{
    sim::Machine &machine = guest_.machine();
    const uint64_t deadline = machine.cycles() + timeoutCycles;
    uint64_t backoff = kBackoffStartCycles;
    for (;;) {
        const Result result = send(handle, message);
        if (result != Result::Full) {
            return result;
        }
        const uint64_t now = machine.cycles();
        if (now >= deadline) {
            return Result::Timeout;
        }
        // Yield for the backoff window (clamped to the remaining
        // budget): the queue's counterpart only makes progress while
        // this waiter is off the core.
        machine.idle(std::min(backoff, deadline - now));
        backoff = std::min(backoff * 2, kBackoffCapCycles);
    }
}

MessageQueueService::Result
MessageQueueService::receiveTimeout(const Capability &handle,
                                    const Capability &buffer,
                                    uint64_t timeoutCycles)
{
    sim::Machine &machine = guest_.machine();
    const uint64_t deadline = machine.cycles() + timeoutCycles;
    uint64_t backoff = kBackoffStartCycles;
    for (;;) {
        const Result result = receive(handle, buffer);
        if (result != Result::Empty) {
            return result;
        }
        const uint64_t now = machine.cycles();
        if (now >= deadline) {
            return Result::Timeout;
        }
        machine.idle(std::min(backoff, deadline - now));
        backoff = std::min(backoff * 2, kBackoffCapCycles);
    }
}

ChannelGrant
MessageQueueService::resolveChannel(const Capability &channel,
                                    bool wantSend, Result *fail)
{
    ChannelGrant grant;
    if (channelAuthority_ == nullptr) {
        *fail = Result::InvalidHandle;
        return grant;
    }
    grant = channelAuthority_->checkChannel(channel);
    if (grant.status == CapResult::Revoked) {
        *fail = Result::Revoked;
        grant.status = CapResult::Revoked;
        grant.queue = Capability();
        return grant;
    }
    if (grant.status != CapResult::Ok) {
        *fail = Result::InvalidHandle;
        grant.queue = Capability();
        return grant;
    }
    if (wantSend ? !grant.canSend : !grant.canReceive) {
        *fail = Result::NotPermitted;
        grant.status = CapResult::PermViolation;
        grant.queue = Capability();
        return grant;
    }
    *fail = Result::Ok;
    return grant;
}

MessageQueueService::Result
MessageQueueService::sendVia(const Capability &channel,
                             const Capability &message)
{
    Result fail = Result::Ok;
    const ChannelGrant grant = resolveChannel(channel, true, &fail);
    if (fail != Result::Ok) {
        return fail;
    }
    return send(grant.queue, message);
}

MessageQueueService::Result
MessageQueueService::receiveVia(const Capability &channel,
                                const Capability &buffer)
{
    Result fail = Result::Ok;
    const ChannelGrant grant = resolveChannel(channel, false, &fail);
    if (fail != Result::Ok) {
        return fail;
    }
    return receive(grant.queue, buffer);
}

MessageQueueService::Result
MessageQueueService::sendViaTimeout(const Capability &channel,
                                    const Capability &message,
                                    uint64_t timeoutCycles)
{
    sim::Machine &machine = guest_.machine();
    const uint64_t deadline = machine.cycles() + timeoutCycles;
    uint64_t backoff = kBackoffStartCycles;
    for (;;) {
        // The grant is re-resolved on every retry: a Channel
        // capability revoked while this sender is blocked surfaces as
        // Result::Revoked at the very next backoff expiry.
        Result fail = Result::Ok;
        const ChannelGrant grant = resolveChannel(channel, true, &fail);
        if (fail != Result::Ok) {
            return fail;
        }
        const Result result = send(grant.queue, message);
        if (result != Result::Full) {
            return result;
        }
        const uint64_t now = machine.cycles();
        if (now >= deadline) {
            return Result::Timeout;
        }
        machine.idle(std::min(backoff, deadline - now));
        backoff = std::min(backoff * 2, kBackoffCapCycles);
    }
}

MessageQueueService::Result
MessageQueueService::receiveViaTimeout(const Capability &channel,
                                       const Capability &buffer,
                                       uint64_t timeoutCycles)
{
    sim::Machine &machine = guest_.machine();
    const uint64_t deadline = machine.cycles() + timeoutCycles;
    uint64_t backoff = kBackoffStartCycles;
    for (;;) {
        Result fail = Result::Ok;
        const ChannelGrant grant =
            resolveChannel(channel, false, &fail);
        if (fail != Result::Ok) {
            return fail;
        }
        const Result result = receive(grant.queue, buffer);
        if (result != Result::Empty) {
            return result;
        }
        const uint64_t now = machine.cycles();
        if (now >= deadline) {
            return Result::Timeout;
        }
        machine.idle(std::min(backoff, deadline - now));
        backoff = std::min(backoff * 2, kBackoffCapCycles);
    }
}

uint32_t
MessageQueueService::depth(const Capability &handle)
{
    const Capability record = open(handle);
    if (!record.tag()) {
        return 0;
    }
    return guest_.loadWord(record, record.base() + kCountOffset);
}

MessageQueueService::Result
MessageQueueService::destroy(const Capability &handle)
{
    const Capability record = open(handle);
    if (!record.tag()) {
        return Result::InvalidHandle;
    }
    // Clear the magic first so concurrent holders are rejected even
    // before the free's zeroing lands.
    guest_.storeWord(record, record.base() + kMagicOffset, 0);
    if (allocator_.free(record) != alloc::HeapAllocator::FreeResult::Ok) {
        return Result::InvalidHandle;
    }
    return Result::Ok;
}

} // namespace cheriot::rtos
