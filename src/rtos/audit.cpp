#include "rtos/audit.h"

#include "rtos/kernel.h"

#include <algorithm>
#include <cstdio>

namespace cheriot::rtos
{

std::vector<ExportAudit>
AuditReport::interruptsDisabledEntries() const
{
    std::vector<ExportAudit> result;
    for (const auto &entry : exports) {
        if (entry.interruptsDisabled) {
            result.push_back(entry);
        }
    }
    return result;
}

bool
AuditReport::structurallySound() const
{
    for (const auto &compartment : compartments) {
        if (compartment.globalsStoreLocal || compartment.codeWritable) {
            return false;
        }
    }
    return true;
}

std::string
AuditReport::toString() const
{
    std::string out = "=== compartment audit ===\n";
    char line[160];
    for (const auto &c : compartments) {
        std::snprintf(line, sizeof(line),
                      "%-12s code [%08x,+%x) globals [%08x,+%x) "
                      "exports=%zu%s%s\n",
                      c.name.c_str(), c.codeBase, c.codeSize,
                      c.globalsBase, c.globalsSize, c.exportCount,
                      c.globalsStoreLocal ? " !SL-GLOBALS" : "",
                      c.codeWritable ? " !WX" : "");
        out += line;
        for (const auto &window : c.mmioImports) {
            std::snprintf(line, sizeof(line), "    mmio %s%s\n",
                          window.window.c_str(),
                          window.writable ? "" : " (ro)");
            out += line;
        }
        for (const auto &edge : c.entryImports) {
            std::snprintf(line, sizeof(line), "    calls %s.%s\n",
                          edge.target.c_str(), edge.entry.c_str());
            out += line;
        }
        for (const auto &holding : c.tokenHoldings) {
            std::snprintf(line, sizeof(line), "    hold %s\n",
                          holding.c_str());
            out += line;
        }
    }
    out += "--- entries running with interrupts disabled ---\n";
    const auto critical = interruptsDisabledEntries();
    if (critical.empty()) {
        out += "(none)\n";
    }
    for (const auto &e : critical) {
        std::snprintf(line, sizeof(line), "%s.%s\n",
                      e.compartment.c_str(), e.entryPoint.c_str());
        out += line;
    }
    return out;
}

AuditReport
auditKernel(Kernel &kernel)
{
    AuditReport report;
    for (size_t i = 0; i < kernel.compartmentCount(); ++i) {
        Compartment &compartment = kernel.compartmentAt(i);

        CompartmentAudit audit;
        audit.name = compartment.name();
        audit.codeBase = compartment.codeCap().base();
        audit.codeSize =
            static_cast<uint32_t>(compartment.codeCap().length());
        audit.globalsBase = compartment.globalsCap().base();
        audit.globalsSize =
            static_cast<uint32_t>(compartment.globalsCap().length());
        audit.exportCount = compartment.exportCount();
        audit.globalsStoreLocal =
            compartment.globalsCap().perms().has(cap::PermStoreLocal);
        audit.codeWritable =
            compartment.codeCap().perms().has(cap::PermStore);
        for (const auto &imported : compartment.mmioImports()) {
            audit.mmioImports.push_back(
                {imported.window,
                 imported.cap.perms().has(cap::PermStore)});
        }
        for (const auto &imported : compartment.entryImports()) {
            audit.entryImports.push_back(
                {imported.target->name(), imported.entry});
        }
        report.compartments.push_back(std::move(audit));

        for (uint32_t e = 0; e < compartment.exportCount(); ++e) {
            const Export &exported = compartment.exportAt(e);
            report.exports.push_back({compartment.name(), exported.name,
                                      exported.interruptsDisabled});
        }
    }
    // Enumerate live object-capability holdings per compartment: the
    // audit reads the derivation table, so a *revoked* capability no
    // longer shows up as held authority.
    if (const ObjectCapTable *caps = kernel.objectCapsIfPresent()) {
        for (uint32_t id = 0; id < caps->size(); ++id) {
            if (!caps->aliveAt(id)) {
                continue;
            }
            const uint32_t owner = caps->ownerOf(id);
            if (owner >= report.compartments.size()) {
                continue;
            }
            auto &holdings = report.compartments[owner].tokenHoldings;
            const std::string name = objectCapTypeName(caps->typeAt(id));
            if (std::find(holdings.begin(), holdings.end(), name) ==
                holdings.end()) {
                holdings.push_back(name);
            }
        }
    }
    return report;
}

} // namespace cheriot::rtos
