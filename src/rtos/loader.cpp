#include "rtos/loader.h"

#include "cap/bounds.h"
#include "util/bits.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::rtos
{

using cap::Capability;

Loader::Loader(sim::Machine &machine)
    : machine_(machine), cursor_(mem::kSramBase),
      staticLimit_(machine.heapBase())
{
}

void
Loader::checkLive() const
{
    if (finalised_) {
        panic("loader: capability derivation after the roots were erased");
    }
}

uint32_t
Loader::allocRegion(uint32_t bytes, uint32_t align)
{
    checkLive();
    if (!isPowerOfTwo(align)) {
        panic("loader: alignment %u is not a power of two", align);
    }
    const uint32_t base = alignUp(cursor_, align);
    if (base + bytes > staticLimit_) {
        panic("loader: static region exhausted (%u bytes requested, "
              "%u available)", bytes, staticLimit_ - cursor_);
    }
    cursor_ = base + bytes;
    return base;
}

uint32_t
Loader::allocExactRegion(uint32_t bytes, uint32_t *outSize)
{
    const uint32_t rounded = static_cast<uint32_t>(
        cap::representableLength(std::max<uint32_t>(bytes, 8)));
    const uint32_t align = std::max<uint32_t>(
        8, ~cap::representableAlignmentMask(rounded) + 1);
    *outSize = rounded;
    return allocRegion(rounded, align);
}

Capability
Loader::dataCap(uint32_t base, uint32_t size, bool storeLocal, bool global)
{
    checkLive();
    Capability c = Capability::memoryRoot().withAddress(base);
    bool exact = true;
    c = c.withBounds(size, &exact);
    if (!c.tag()) {
        panic("loader: cannot bound data capability [0x%08x, +%u)", base,
              size);
    }
    uint16_t mask = cap::kAllPerms;
    if (!storeLocal) {
        mask &= static_cast<uint16_t>(~cap::PermStoreLocal);
    }
    if (!global) {
        mask &= static_cast<uint16_t>(~cap::PermGlobal);
    }
    return c.withPermsAnd(mask);
}

Capability
Loader::codeCap(uint32_t base, uint32_t size, bool systemRegs)
{
    checkLive();
    Capability c = Capability::executableRoot().withAddress(base);
    c = c.withBounds(size);
    if (!c.tag()) {
        panic("loader: cannot bound code capability [0x%08x, +%u)", base,
              size);
    }
    if (!systemRegs) {
        c = c.withPermsAnd(
            static_cast<uint16_t>(~cap::PermSystemRegs));
    }
    return c;
}

Capability
Loader::mmioCap(uint32_t base, uint32_t size)
{
    checkLive();
    Capability c = Capability::memoryRoot().withAddress(base);
    c = c.withBounds(size);
    if (!c.tag()) {
        panic("loader: cannot bound MMIO capability [0x%08x, +%u)", base,
              size);
    }
    // MMIO windows carry data permissions only: no capability traffic
    // and no store-local.
    return c.withPermsAnd(cap::PermGlobal | cap::PermLoad | cap::PermStore);
}

Capability
Loader::sealerFor(uint8_t dataOtype)
{
    checkLive();
    if (dataOtype < 1 || dataOtype >= cap::kOtypeCount) {
        panic("loader: data otype %u out of range", dataOtype);
    }
    Capability c = Capability::sealingRoot().withAddress(
        cap::kDataOtypeAddressBase + dataOtype);
    c = c.withBounds(1);
    if (!c.tag()) {
        panic("loader: cannot derive sealer for otype %u", dataOtype);
    }
    return c;
}

} // namespace cheriot::rtos
