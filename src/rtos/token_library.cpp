#include "rtos/token_library.h"

#include "snapshot/serializer.h"
#include "util/log.h"

namespace cheriot::rtos
{

using cap::Capability;

namespace
{
/** Discriminator words so keys and tokens cannot be confused. */
constexpr uint32_t kKindKey = 0x6b657931;   // 'key1'
constexpr uint32_t kKindToken = 0x746f6b31; // 'tok1'
constexpr uint32_t kKindOffset = 4;
} // namespace

TokenLibrary::TokenLibrary(GuestContext &guest,
                           alloc::HeapAllocator &allocator,
                           Capability sealer)
    : guest_(guest), allocator_(allocator), sealer_(sealer)
{
    if (!sealer.tag() || !sealer.perms().has(cap::PermSeal) ||
        !sealer.perms().has(cap::PermUnseal)) {
        fatal("token library needs seal+unseal authority");
    }
}

Capability
TokenLibrary::createKey()
{
    const Capability box = allocator_.malloc(kBoxSize);
    if (!box.tag()) {
        return Capability();
    }
    guest_.storeWord(box, box.base() + kKeyIdOffset, nextKeyId_++);
    guest_.storeWord(box, box.base() + kKindOffset, kKindKey);
    const auto sealed = cap::seal(box, sealer_);
    if (!sealed) {
        panic("token library: sealing a fresh key failed");
    }
    guest_.chargeExecution(8);
    return *sealed;
}

bool
TokenLibrary::keyIdOf(const Capability &key, uint32_t *keyId)
{
    const auto unsealed = cap::unseal(key, sealer_);
    if (!unsealed) {
        return false;
    }
    guest_.chargeExecution(4);
    if (guest_.loadWord(*unsealed, unsealed->base() + kKindOffset) !=
        kKindKey) {
        return false;
    }
    *keyId = guest_.loadWord(*unsealed, unsealed->base() + kKeyIdOffset);
    return true;
}

Capability
TokenLibrary::seal(const Capability &key, const Capability &payload)
{
    uint32_t keyId = 0;
    if (!keyIdOf(key, &keyId) || !payload.tag()) {
        return Capability();
    }
    const Capability box = allocator_.malloc(kBoxSize);
    if (!box.tag()) {
        return Capability();
    }
    guest_.storeWord(box, box.base() + kKeyIdOffset, keyId);
    guest_.storeWord(box, box.base() + kKindOffset, kKindToken);
    // Local payloads must not be capturable in a (heap) box: the
    // store-local check enforces the §2.6 information-flow rule.
    if (guest_.tryStoreCap(box, box.base() + kPayloadOffset, payload) !=
        sim::TrapCause::None) {
        (void)allocator_.free(box);
        return Capability();
    }
    const auto sealed = cap::seal(box, sealer_);
    if (!sealed) {
        panic("token library: sealing a token box failed");
    }
    guest_.chargeExecution(8);
    return *sealed;
}

Capability
TokenLibrary::unseal(const Capability &key, const Capability &token)
{
    uint32_t keyId = 0;
    if (!keyIdOf(key, &keyId)) {
        return Capability();
    }
    const auto box = cap::unseal(token, sealer_);
    if (!box) {
        return Capability();
    }
    guest_.chargeExecution(6);
    if (guest_.loadWord(*box, box->base() + kKindOffset) != kKindToken ||
        guest_.loadWord(*box, box->base() + kKeyIdOffset) != keyId) {
        return Capability();
    }
    return guest_.loadCap(*box, box->base() + kPayloadOffset);
}

bool
TokenLibrary::destroy(const Capability &key, const Capability &token)
{
    uint32_t keyId = 0;
    if (!keyIdOf(key, &keyId)) {
        return false;
    }
    const auto box = cap::unseal(token, sealer_);
    if (!box) {
        return false;
    }
    if (guest_.loadWord(*box, box->base() + kKindOffset) != kKindToken ||
        guest_.loadWord(*box, box->base() + kKeyIdOffset) != keyId) {
        return false;
    }
    return allocator_.free(*box) == alloc::HeapAllocator::FreeResult::Ok;
}

void
TokenLibrary::serialize(snapshot::Writer &w) const
{
    w.u32(nextKeyId_);
}

bool
TokenLibrary::deserialize(snapshot::Reader &r)
{
    nextKeyId_ = r.u32();
    return r.ok() && nextKeyId_ >= 1;
}

} // namespace cheriot::rtos
