/**
 * @file
 * Message-queue service, in the style of the CHERIoT RTOS queue
 * library: inter-thread/inter-compartment communication *by copy*
 * through a service compartment, with queue handles as sealed
 * capabilities.
 *
 * The paper's model (§2.2) deliberately communicates "via function
 * calls between compartments, not marshaled messages, at the lowest
 * levels" — the queue is exactly such a service built on those calls:
 * the queue storage lives in service-owned heap memory that clients
 * can never touch directly (their handle is sealed), and every
 * enqueue/dequeue copies through the caller-supplied, bounds-checked
 * buffer capability.
 */

#ifndef CHERIOT_RTOS_MESSAGE_QUEUE_H
#define CHERIOT_RTOS_MESSAGE_QUEUE_H

#include "alloc/heap_allocator.h"
#include "rtos/guest_context.h"
#include "rtos/object_cap.h"

namespace cheriot::rtos
{

class MessageQueueService
{
  public:
    /**
     * @param sealer sealing authority over one data otype, held only
     *               by this service.
     */
    MessageQueueService(GuestContext &guest,
                        alloc::HeapAllocator &allocator,
                        cap::Capability sealer);

    /**
     * Create a queue of @p capacity elements of @p elementBytes
     * each. Returns a sealed, opaque handle, untagged on failure.
     */
    cap::Capability create(uint32_t elementBytes, uint32_t capacity);

    /** Result of a queue operation. */
    enum class Result : uint8_t
    {
        Ok,
        InvalidHandle, ///< Not a live queue handle.
        InvalidBuffer, ///< Caller buffer fails the capability checks.
        Full,
        Empty,
        Timeout,       ///< Bounded wait expired (Full/Empty persisted).
        Revoked,       ///< The presented Channel capability died
                       ///< (possibly mid-wait): typed, never a trap.
        NotPermitted,  ///< Channel capability lacks the direction.
    };

    static const char *resultName(Result result);

    /** @name Bounded-wait backoff parameters
     * The wait loop idles between retries (yielding the memory port,
     * exactly like a blocked guest thread), doubling the idle window
     * from kBackoffStartCycles up to kBackoffCapCycles so a
     * persistently full/empty queue costs polls, not spin cycles. @{ */
    static constexpr uint64_t kBackoffStartCycles = 16;
    static constexpr uint64_t kBackoffCapCycles = 1024;
    /** @} */

    /** Copy one element from @p message (must cover elementBytes,
     * readable) to the tail of the queue. */
    Result send(const cap::Capability &handle,
                const cap::Capability &message);

    /** Copy one element from the head of the queue into @p buffer
     * (must cover elementBytes, writable). */
    Result receive(const cap::Capability &handle,
                   const cap::Capability &buffer);

    /** @name Bounded waits
     * As send()/receive(), but a Full/Empty condition is retried with
     * capped exponential backoff until it clears or @p timeoutCycles
     * machine cycles have elapsed, then reported as Timeout. Other
     * failures (bad handle/buffer) surface immediately. @{ */
    Result sendTimeout(const cap::Capability &handle,
                       const cap::Capability &message,
                       uint64_t timeoutCycles);
    Result receiveTimeout(const cap::Capability &handle,
                          const cap::Capability &buffer,
                          uint64_t timeoutCycles);
    /** @} */

    /** @name Channel object capabilities
     * With a ChannelAuthority wired, callers present a *Channel
     * capability* instead of the raw queue handle: the authority
     * resolves it to the wrapped handle plus direction permissions
     * (the handle itself never escapes to the caller). A dead
     * capability surfaces as Result::Revoked; a missing direction as
     * Result::NotPermitted. The bounded waits re-check the grant on
     * every backoff retry, so a capability revoked *mid-wait*
     * unblocks the sender at the next retry with a typed Revoked —
     * and, because the wait loop owns no heap, with zero leak. @{ */
    void setChannelAuthority(ChannelAuthority *authority)
    {
        channelAuthority_ = authority;
    }
    Result sendVia(const cap::Capability &channel,
                   const cap::Capability &message);
    Result receiveVia(const cap::Capability &channel,
                      const cap::Capability &buffer);
    Result sendViaTimeout(const cap::Capability &channel,
                          const cap::Capability &message,
                          uint64_t timeoutCycles);
    Result receiveViaTimeout(const cap::Capability &channel,
                             const cap::Capability &buffer,
                             uint64_t timeoutCycles);
    /** @} */

    /** Elements currently queued; 0 on a bad handle. */
    uint32_t depth(const cap::Capability &handle);

    /** Destroy the queue, releasing its storage to the heap. */
    Result destroy(const cap::Capability &handle);

  private:
    /** Record layout (heap-resident). @{ */
    static constexpr uint32_t kMagicOffset = 0;
    static constexpr uint32_t kElemOffset = 4;
    static constexpr uint32_t kCapacityOffset = 8;
    static constexpr uint32_t kHeadOffset = 12;
    static constexpr uint32_t kCountOffset = 16;
    static constexpr uint32_t kStorageOffset = 24;
    static constexpr uint32_t kMagic = 0x71756575; // 'queu'
    /** @} */

    /** Validate and unseal a handle; returns an untagged capability
     * on failure. */
    cap::Capability open(const cap::Capability &handle);

    /** Resolve a Channel capability for @p wantSend; Ok grant or a
     * typed refusal mapped into @p fail. */
    ChannelGrant resolveChannel(const cap::Capability &channel,
                                bool wantSend, Result *fail);

    GuestContext &guest_;
    alloc::HeapAllocator &allocator_;
    cap::Capability sealer_;
    ChannelAuthority *channelAuthority_ = nullptr;
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_MESSAGE_QUEUE_H
