/**
 * @file
 * The RTOS kernel façade: boots the system (loader), owns
 * compartments and threads, wires the switcher and scheduler, and
 * hosts the allocator compartment with its chosen temporal-safety
 * engine.
 */

#ifndef CHERIOT_RTOS_KERNEL_H
#define CHERIOT_RTOS_KERNEL_H

#include "alloc/heap_allocator.h"
#include "revoker/software_revoker.h"
#include "rtos/compartment.h"
#include "rtos/guest_context.h"
#include "rtos/heap_pressure.h"
#include "rtos/loader.h"
#include "rtos/object_cap.h"
#include "rtos/scheduler.h"
#include "rtos/switcher.h"
#include "rtos/thread.h"
#include "rtos/token_library.h"
#include "rtos/watchdog.h"

#include <memory>
#include <vector>

namespace cheriot::rtos
{

/**
 * Revoker interface over the background hardware engine: kicks and
 * polls through its MMIO registers and blocks through the scheduler
 * (context switching to the idle thread between polls, which is when
 * the engine gets the memory port to itself).
 */
class HardwareRevokerHandle : public revoker::Revoker
{
  public:
    HardwareRevokerHandle(GuestContext &guest, Scheduler &scheduler,
                          cap::Capability mmioCap, uint32_t sweepBase,
                          uint32_t sweepEnd)
        : guest_(guest), scheduler_(scheduler), mmioCap_(mmioCap),
          sweepBase_(sweepBase), sweepEnd_(sweepEnd)
    {}

    /** Polls of the completion predicate before the wait loop
     * suspects a wedged engine and kicks it (each poll costs
     * Scheduler::blockUntil's poll window of idle cycles). */
    static constexpr uint32_t kStallTimeoutPolls = 64;

    uint32_t epoch() const override;
    void requestSweep() override;
    void waitForCompletion() override;
    const char *kind() const override { return "hardware"; }

    Counter timeoutKicks; ///< Recovery kicks issued by the waiter.

  private:
    GuestContext &guest_;
    Scheduler &scheduler_;
    cap::Capability mmioCap_;
    uint32_t sweepBase_;
    uint32_t sweepEnd_;
};

class Kernel
{
  public:
    explicit Kernel(sim::Machine &machine);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** @name Access to the subsystems @{ */
    sim::Machine &machine() { return machine_; }
    GuestContext &guest() { return guest_; }
    Loader &loader() { return loader_; }
    Switcher &switcher() { return switcher_; }
    Scheduler &scheduler() { return *scheduler_; }
    Watchdog &watchdog() { return watchdog_; }
    /** Hardware-revoker handle, or null unless HardwareRevocation. */
    HardwareRevokerHandle *hardwareRevoker()
    {
        return hardwareRevoker_.get();
    }
    /** @} */

    /** @name System construction (boot time) @{ */
    Compartment &createCompartment(const std::string &name,
                                   uint32_t codeSize = 4096,
                                   uint32_t globalsSize = 4096);

    Thread &createThread(const std::string &name, uint8_t priority,
                         uint32_t stackSize);

    /** Register an externally constructed compartment verbatim (test
     * seam for building deliberately violating images; the normal
     * path is createCompartment, whose capabilities are always
     * well-formed). */
    Compartment &adoptCompartment(std::unique_ptr<Compartment> c);

    /**
     * Boot-time verification gate, called after the image is fully
     * assembled (compartments, threads, heap). Always runs the
     * §3.1.2 structural boot assertions over the audit manifest —
     * SL-free globals and W^X code for every compartment. When the
     * CHERIOT_VERIFY_ON_LOAD environment variable is set (non-empty),
     * additionally evaluates the default verify policy (MMIO-import
     * rules) and refuses to boot a violating image. Returns false and
     * fills @p whyNot instead of booting a bad image.
     */
    bool finalizeBoot(std::string *whyNot = nullptr);

    /** Resolve an import of @p compartment's export @p index. */
    Import importOf(Compartment &compartment, uint32_t exportIndex);

    /** @name Image introspection (audit support) @{ */
    size_t compartmentCount() const { return compartments_.size(); }
    Compartment &compartmentAt(size_t index)
    {
        return *compartments_.at(index);
    }
    size_t threadCount() const { return threads_.size(); }
    Thread &threadAt(size_t index) { return *threads_.at(index); }
    /** @} */

    /**
     * Initialise the shared heap with the given temporal-safety mode.
     * Creates the allocator compartment (the only holder of the
     * revocation-bitmap capability) and its malloc/free exports.
     */
    void initHeap(alloc::TemporalMode mode,
                  uint64_t quarantineThreshold = 0);

    /** @} */

    /** Make @p thread current: installs its stack base / high-water
     * CSRs. */
    void activate(Thread &thread);

    /** Cross-compartment call on behalf of @p thread. */
    CallResult call(Thread &thread, const Import &import, ArgVec args);

    /** @name Heap services, routed through the allocator compartment
     * as real cross-compartment calls @{ */
    cap::Capability malloc(Thread &thread, uint32_t size);
    alloc::HeapAllocator::FreeResult free(Thread &thread,
                                          const cap::Capability &ptr);
    /** heap_claim: keep @p ptr's allocation alive until a matching
     * free — the zero-copy lending contract between untrusting
     * compartments (the last release quarantines, not the first). */
    alloc::HeapAllocator::FreeResult claim(Thread &thread,
                                           const cap::Capability &ptr);
    /** Direct handle (tests / in-compartment use). */
    alloc::HeapAllocator &allocator() { return *allocator_; }
    bool hasHeap() const { return allocator_ != nullptr; }
    Compartment &allocatorCompartment() { return *allocCompartment_; }
    /** @} */

    /** @name Allocator capabilities (metered heap access)
     * The CHERIoT RTOS meters heap use through sealed *allocator
     * capabilities*: opaque tokens minted at boot, each naming a
     * quota-ledger entry and the compartment it was issued to. A
     * compartment allocates by presenting its token; the kernel
     * unseals it (virtualized sealing via the token library), runs
     * watchdog admission, and charges the quota. @{ */

    /**
     * Mint a sealed allocator capability granting @p owner up to
     * @p limitBytes of live heap. Boot-time API (the token box
     * itself lives in kernel-account heap memory).
     */
    cap::Capability mintAllocatorCapability(Compartment &owner,
                                            uint64_t limitBytes);

    /**
     * Metered malloc on behalf of @p thread: a real cross-compartment
     * call into the allocator compartment presenting @p allocCap.
     * Never aborts — every failure surfaces as an untagged return
     * plus a typed, recoverable @p result (Throttled when the owning
     * compartment is watchdog-quarantined for heap abuse).
     */
    cap::Capability mallocWith(Thread &thread,
                               const cap::Capability &allocCap,
                               uint32_t size,
                               alloc::AllocResult *result = nullptr);

    /** Token library (lazily created on first mint). */
    TokenLibrary &tokenLibrary();

    /** @name Kernel object capabilities (revocable authority)
     * The object-capability table generalizes the sealed-token
     * pattern to schedule slices (Time), queue endpoints (Channel)
     * and quarantine/restart authority (Monitor). Lazily created on
     * first use; creation wires the scheduler's slot gate and the
     * watchdog's monitor admission to the table. @{ */
    ObjectCapTable &objectCaps();
    /** Non-creating view (audit / snapshot). */
    ObjectCapTable *objectCapsIfPresent() { return objectCaps_.get(); }
    const ObjectCapTable *objectCapsIfPresent() const
    {
        return objectCaps_.get();
    }

    /** Position of @p compartment in the image (panics if foreign) —
     * the stable name object-capability records use for owners and
     * targets, resolved identically by a restored boot. */
    uint32_t compartmentIndexOf(const Compartment &compartment) const;

    /** Mint a Time capability covering schedule slots
     * [beginSlot, endSlot) for @p owner. */
    cap::Capability mintTimeCap(Compartment &owner, uint64_t beginSlot,
                                uint64_t endSlot);
    /** Mint a Channel capability wrapping @p queueHandle. */
    cap::Capability mintChannelCap(Compartment &owner,
                                   const cap::Capability &queueHandle,
                                   bool canSend, bool canReceive);
    /** Mint a Monitor capability over @p target for @p owner. */
    cap::Capability mintMonitorCap(Compartment &owner,
                                   Compartment &target);
    /** Move an object capability to @p newOwner's books. */
    CapResult transferObjectCap(const cap::Capability &token,
                                Compartment &newOwner);
    /** Watchdog actions under Monitor-capability authority. @{ */
    CapResult requestQuarantine(const cap::Capability &monitorCap,
                                Compartment &target);
    CapResult requestRestart(const cap::Capability &monitorCap,
                             Compartment &target);
    /** @} */
    /** @} */

    /** Capability over the heap-pressure MMIO window (read-only
     * telemetry for admission control); untagged before initHeap. */
    const cap::Capability &heapPressureCap() const
    {
        return heapPressureCap_;
    }
    /** @} */

    /** @name Snapshot state
     * The kernel's *structure* (compartments, exports, task closures,
     * trusted stacks) is rebuilt by re-running the same deterministic
     * boot sequence; serialize() captures only the dynamic state on
     * top of it — thread register/unwind state, per-compartment fault
     * recovery, watchdog/switcher accounting, scheduler deadlines and
     * allocator metadata mirrors. deserialize() must therefore be
     * called on a kernel booted identically to the one that saved,
     * and verifies the structural fingerprint (counts and names)
     * before restoring. @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    sim::Machine &machine_;
    GuestContext guest_;
    Loader loader_;
    Switcher switcher_;
    Watchdog watchdog_;
    std::unique_ptr<Scheduler> scheduler_;

    std::vector<std::unique_ptr<Compartment>> compartments_;
    std::vector<std::unique_ptr<Thread>> threads_;
    std::vector<cap::Capability> trustedStacks_;

    std::unique_ptr<SweepContext> sweepContext_;
    std::unique_ptr<revoker::SoftwareRevoker> softwareRevoker_;
    std::unique_ptr<HardwareRevokerHandle> hardwareRevoker_;
    std::unique_ptr<alloc::HeapAllocator> allocator_;
    Compartment *allocCompartment_ = nullptr;
    Import mallocImport_;
    Import freeImport_;
    Import claimImport_;
    Import mallocQuotaImport_;

    /** Allocator-capability machinery. @{ */
    /** Box discriminator ('aloc'): an allocator-capability payload. */
    static constexpr uint32_t kAllocCapMagic = 0x616c6f63;
    /** Record layout: magic@0, quotaId@4, ownerIndex@8, limit@12. */
    static constexpr uint32_t kAllocCapRecordSize = 16;
    std::unique_ptr<TokenLibrary> tokenLibrary_;
    cap::Capability allocKey_; ///< Sealing key for allocator caps.
    std::unique_ptr<ObjectCapTable> objectCaps_;
    std::unique_ptr<HeapPressureDevice> heapPressure_;
    cap::Capability heapPressureCap_;
    /** Unseal + validate an allocator capability; runs watchdog
     * admission and charges failures. The export body. */
    cap::Capability mallocSealed(const cap::Capability &token,
                                 uint32_t size, alloc::AllocResult *out);
    /** @} */
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_KERNEL_H
