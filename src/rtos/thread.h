/**
 * @file
 * Threads: the unit of scheduling, orthogonal to compartments
 * (paper §2.2). Each thread owns a stack region; at any moment the
 * processor runs one thread inside one compartment, with access to
 * that compartment's code/globals and this thread's stack.
 */

#ifndef CHERIOT_RTOS_THREAD_H
#define CHERIOT_RTOS_THREAD_H

#include "cap/capability.h"
#include "sim/csr.h"
#include "snapshot/serializer.h"
#include "util/stats.h"

#include <cstdint>
#include <string>

namespace cheriot::rtos
{

class Thread
{
  public:
    /**
     * @param stackBase lowest address of the stack region.
     * @param stackTop  one past the highest (initial stack pointer).
     * @param stackRoot capability covering exactly [base, top) with
     *                  SL and without GL (stacks are local, §2.6).
     */
    Thread(uint32_t id, std::string name, uint8_t priority,
           uint32_t stackBase, uint32_t stackTop,
           cap::Capability stackRoot)
        : id_(id), name_(std::move(name)), priority_(priority),
          stackBase_(stackBase), stackTop_(stackTop), sp_(stackTop),
          stackRoot_(stackRoot)
    {}

    uint32_t id() const { return id_; }
    const std::string &name() const { return name_; }
    uint8_t priority() const { return priority_; }

    uint32_t stackBase() const { return stackBase_; }
    uint32_t stackTop() const { return stackTop_; }
    uint32_t stackSize() const { return stackTop_ - stackBase_; }

    /** Current stack pointer (stacks grow downwards). */
    uint32_t sp() const { return sp_; }
    void setSp(uint32_t sp) { sp_ = sp; }

    const cap::Capability &stackRoot() const { return stackRoot_; }

    /** Nesting depth of cross-compartment calls (trusted stack). */
    uint32_t callDepth() const { return callDepth_; }
    void enterCall() { ++callDepth_; }
    void leaveCall() { --callDepth_; }

    /** @name Forced unwind (paper §5.2)
     * While unwinding, every trusted-stack frame between the fault
     * and the original caller returns faulted(unwindCause) and the
     * thread refuses new cross-compartment calls. @{ */
    bool unwinding() const { return unwinding_; }
    sim::TrapCause unwindCause() const { return unwindCause_; }
    void beginForcedUnwind(sim::TrapCause cause)
    {
        if (!unwinding_) {
            unwinding_ = true;
            unwindCause_ = cause;
        }
    }
    void endForcedUnwind()
    {
        unwinding_ = false;
        unwindCause_ = sim::TrapCause::None;
    }
    /** @} */

    /** @name Snapshot state (dynamic fields only; identity, stack
     * geometry and the stack root are boot-time constants) @{ */
    void serialize(snapshot::Writer &w) const
    {
        w.u32(sp_);
        w.u32(callDepth_);
        w.b(unwinding_);
        w.u32(static_cast<uint32_t>(unwindCause_));
        w.counter(crossCompartmentCalls);
        w.counter(stackBytesZeroed);
        w.counter(forcedUnwinds);
    }

    bool deserialize(snapshot::Reader &r)
    {
        sp_ = r.u32();
        callDepth_ = r.u32();
        unwinding_ = r.b();
        unwindCause_ = static_cast<sim::TrapCause>(r.u32());
        r.counter(crossCompartmentCalls);
        r.counter(stackBytesZeroed);
        r.counter(forcedUnwinds);
        return r.ok();
    }
    /** @} */

    Counter crossCompartmentCalls;
    Counter stackBytesZeroed;
    Counter forcedUnwinds; ///< Completed forced unwinds to depth 0.

  private:
    uint32_t id_;
    std::string name_;
    uint8_t priority_;
    uint32_t stackBase_;
    uint32_t stackTop_;
    uint32_t sp_;
    cap::Capability stackRoot_;
    uint32_t callDepth_ = 0;
    bool unwinding_ = false;
    sim::TrapCause unwindCause_ = sim::TrapCause::None;
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_THREAD_H
