#include "rtos/compartment.h"

#include "rtos/thread.h"
#include "util/bits.h"
#include "util/log.h"

namespace cheriot::rtos
{

using cap::Capability;

Capability
CompartmentContext::globals() const
{
    return compartment.globalsCap();
}

Capability
CompartmentContext::stackAlloc(uint32_t bytes)
{
    bytes = alignUp<uint32_t>(bytes, cap::kCapabilitySize);
    if (bytes > thread.sp() - thread.stackBase()) {
        // Stack exhausted: like hardware, hand back an untagged
        // value — the first dereference faults and the switcher
        // unwinds the compartment (§2.2's blast-radius limiting),
        // rather than taking the whole system down.
        mem.chargeExecution(2);
        return Capability();
    }
    const uint32_t newSp =
        alignDown<uint32_t>(thread.sp() - bytes, cap::kCapabilitySize);
    thread.setSp(newSp);
    sp = newSp;

    Capability block = stackCap.withAddress(newSp).withBoundsExact(bytes);
    if (!block.tag()) {
        panic("stackAlloc: could not derive exact bounds for %u bytes at "
              "0x%08x", bytes, newSp);
    }
    // The compiler emits a CIncAddr + CSetBoundsExact pair per
    // on-stack object whose address is taken.
    mem.chargeExecution(3);
    return block;
}

} // namespace cheriot::rtos
