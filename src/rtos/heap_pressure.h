/**
 * @file
 * Heap-pressure status device.
 *
 * A read-only MMIO window over the allocator's overload telemetry:
 * free bytes, quarantined bytes, the age of the oldest quarantine
 * epoch, and the failure counters of the quota/backpressure
 * machinery. The scheduler (or any compartment handed a capability
 * over the window) can consult it for admission control — deferring
 * elastic work while revocation is behind — without being able to
 * influence the allocator: MMIO carries no tags and every register
 * ignores writes.
 */

#ifndef CHERIOT_RTOS_HEAP_PRESSURE_H
#define CHERIOT_RTOS_HEAP_PRESSURE_H

#include "mem/mmio.h"

#include <cstdint>

namespace cheriot::alloc
{
class HeapAllocator;
}

namespace cheriot::rtos
{

class HeapPressureDevice : public mem::MmioDevice
{
  public:
    /** @name Register map (all read-only) @{ */
    static constexpr uint32_t kRegFreeBytes = 0x00;
    static constexpr uint32_t kRegQuarantinedBytes = 0x04;
    static constexpr uint32_t kRegOldestEpochAge = 0x08;
    static constexpr uint32_t kRegQuarantinedChunks = 0x0c;
    static constexpr uint32_t kRegHeapSize = 0x10;
    static constexpr uint32_t kRegEpoch = 0x14;
    static constexpr uint32_t kRegBlockedMallocs = 0x18;
    static constexpr uint32_t kRegBackoffTimeouts = 0x1c;
    static constexpr uint32_t kRegQuotaDenials = 0x20;
    static constexpr uint32_t kRegOomReturns = 0x24;
    /** @} */

    explicit HeapPressureDevice(alloc::HeapAllocator &allocator)
        : allocator_(allocator)
    {}

    std::string name() const override { return "heap-pressure"; }
    uint32_t read32(uint32_t offset) override;
    /** All registers are status: writes are silently ignored. */
    void write32(uint32_t offset, uint32_t value) override;

  private:
    alloc::HeapAllocator &allocator_;
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_HEAP_PRESSURE_H
