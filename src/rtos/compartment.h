/**
 * @file
 * Compartments, exports, and the cross-compartment call ABI
 * (paper §2.2, §2.6).
 *
 * A compartment is a contiguous region of code plus intra-compartment
 * global data, defined by a pair of capabilities: an execute-only
 * code capability and a globals capability that deliberately lacks
 * Store-Local (so references to stack memory can never be captured in
 * globals, §5.2). Compartments declare *exports* — entry points other
 * compartments may import; imports are materialised as sentry-sealed
 * entry capabilities so the importer can call but not inspect them.
 *
 * Entry bodies are host functions operating on the simulated machine
 * through a CompartmentContext; the protection state they run under
 * (globals capability, chopped stack, interrupt posture) is exactly
 * what the switcher installed.
 */

#ifndef CHERIOT_RTOS_COMPARTMENT_H
#define CHERIOT_RTOS_COMPARTMENT_H

#include "cap/capability.h"
#include "rtos/guest_context.h"
#include "sim/csr.h"
#include "snapshot/serializer.h"

#include <functional>
#include <string>
#include <vector>

namespace cheriot::rtos
{

class Kernel;
class Thread;
class Compartment;

/** Argument/return registers of a cross-compartment call (a0–a5). */
struct ArgVec
{
    static constexpr unsigned kMaxArgs = 6;
    cap::Capability values[kMaxArgs];

    cap::Capability &operator[](unsigned index) { return values[index]; }
    const cap::Capability &operator[](unsigned index) const
    {
        return values[index];
    }

    static ArgVec of(std::initializer_list<cap::Capability> args)
    {
        ArgVec v;
        unsigned i = 0;
        for (const auto &arg : args) {
            v.values[i++] = arg;
        }
        return v;
    }
};

/** Result of a cross-compartment call. */
struct CallResult
{
    cap::Capability value;                        ///< a0 on return.
    cap::Capability second;                       ///< a1 on return.
    sim::TrapCause fault = sim::TrapCause::None;  ///< Callee fault.

    bool ok() const { return fault == sim::TrapCause::None; }

    static CallResult ofInt(uint32_t v)
    {
        CallResult r;
        r.value = cap::Capability().withAddress(v);
        return r;
    }
    static CallResult ofCap(const cap::Capability &c)
    {
        CallResult r;
        r.value = c;
        return r;
    }
    static CallResult faulted(sim::TrapCause cause)
    {
        CallResult r;
        r.fault = cause;
        return r;
    }

    /** Human-readable fault cause for diagnostics and logs. */
    const char *faultName() const { return sim::trapCauseName(fault); }
};

/** Execution environment the switcher installs for a callee. */
struct CompartmentContext
{
    Kernel &kernel;
    Thread &thread;
    Compartment &compartment;
    GuestContext &mem;
    /** The chopped stack capability (SL, local) for this activation. */
    cap::Capability stackCap;
    /** Globals capability (no SL) of the running compartment. */
    cap::Capability globals() const;

    /**
     * Carve a block from this activation's stack. The returned
     * capability is local (no GL) with exact bounds; @p bytes is
     * rounded to capability alignment.
     */
    cap::Capability stackAlloc(uint32_t bytes);

    /** Current stack pointer within the activation. */
    uint32_t sp = 0;
};

/** Body of an exported entry point. */
using EntryFn = std::function<CallResult(CompartmentContext &, ArgVec &)>;

/**
 * What the switcher tells a compartment's error handler about a
 * fault in one of its (possibly nested) callees (paper §5.2).
 */
struct FaultInfo
{
    sim::TrapCause cause = sim::TrapCause::None;
    /** Trusted-stack depth at which the fault surfaced. */
    uint32_t depth = 0;
    /** Faults this compartment has accumulated (including this). */
    uint32_t faultCount = 0;
    /** Watchdog budget left before quarantine (0 = exhausted). */
    uint32_t budgetRemaining = 0;

    const char *causeName() const { return sim::trapCauseName(cause); }
};

/** An error handler's verdict. */
enum class ErrorRecovery : uint8_t
{
    /** Continue the forced unwind: the caller sees the fault. */
    ForceUnwind,
    /** The handler repaired enough state to synthesise a return
     * value; the caller observes a normal (degraded) return. */
    Handled,
};

struct HandlerDecision
{
    ErrorRecovery action = ErrorRecovery::ForceUnwind;
    CallResult result; ///< Returned to the caller when Handled.

    static HandlerDecision forceUnwind() { return {}; }
    static HandlerDecision handled(CallResult r)
    {
        HandlerDecision d;
        d.action = ErrorRecovery::Handled;
        d.result = std::move(r);
        return d;
    }
};

/**
 * Per-compartment error handler, invoked by the switcher in the
 * faulting compartment's own context (its globals, the already
 * chopped stack) when a call into it faults.
 */
using ErrorHandler =
    std::function<HandlerDecision(CompartmentContext &, const FaultInfo &)>;

/**
 * Per-compartment fault-recovery bookkeeping, owned by the kernel
 * watchdog. A compartment whose faults-since-restart figure exhausts
 * the watchdog's budget is *quarantined*: calls into it fail fast
 * with CompartmentQuarantined until the restart delay elapses, after
 * which the watchdog zeroes its globals and re-admits it.
 */
struct FaultRecoveryState
{
    uint32_t faultsTotal = 0;
    uint32_t faultsSinceRestart = 0;
    bool quarantined = false;
    uint64_t restartDueCycle = 0;
    uint32_t quarantines = 0;
    uint32_t restarts = 0;
    /** Re-entrancy latch: a handler that itself faults does not get
     * a second handler invocation (paper §5.2's double-fault rule). */
    bool handlerActive = false;
    /** @name Resource-abuse accounting
     * Quota-exceeded / heap-exhausted outcomes charged by the
     * watchdog: a compartment that keeps driving the heap into the
     * ground is quarantined and restarted like a faulting one. @{ */
    uint32_t allocFailuresTotal = 0;
    uint32_t allocFailuresSinceRestart = 0;
    /** @} */

    /** @name Snapshot state @{ */
    void serialize(snapshot::Writer &w) const
    {
        w.u32(faultsTotal);
        w.u32(faultsSinceRestart);
        w.b(quarantined);
        w.u64(restartDueCycle);
        w.u32(quarantines);
        w.u32(restarts);
        w.b(handlerActive);
        w.u32(allocFailuresTotal);
        w.u32(allocFailuresSinceRestart);
    }

    bool deserialize(snapshot::Reader &r)
    {
        faultsTotal = r.u32();
        faultsSinceRestart = r.u32();
        quarantined = r.b();
        restartDueCycle = r.u64();
        quarantines = r.u32();
        restarts = r.u32();
        handlerActive = r.b();
        allocFailuresTotal = r.u32();
        allocFailuresSinceRestart = r.u32();
        return r.ok();
    }
    /** @} */
};

/** An exported cross-compartment entry point. */
struct Export
{
    std::string name;
    EntryFn fn;
    /** Entry runs with interrupts disabled (a disable-sentry import)
     * — auditable per §3.1.2. */
    bool interruptsDisabled = false;
};

/**
 * A named MMIO window a compartment holds a capability over. Dangerous
 * authority (the revocation bitmap, device registers) is auditable by
 * window name, so policies like "only the allocator imports the
 * revocation bitmap" are checkable against the manifest (§3.1.2).
 */
struct MmioImport
{
    std::string window;
    cap::Capability cap;
};

/**
 * A recorded cross-compartment entry import: this compartment holds a
 * sentry capability for @p entry of @p target. The record exists for
 * the audit manifest — authority-reachability rules walk these edges
 * to compute which compartments can transitively invoke a holder of
 * dangerous authority (§3.1.2).
 */
struct EntryImportRecord
{
    const Compartment *target = nullptr;
    std::string entry;
};

class Compartment
{
  public:
    Compartment(std::string name, cap::Capability codeCap,
                cap::Capability globalsCap)
        : name_(std::move(name)), codeCap_(codeCap), globalsCap_(globalsCap)
    {}

    const std::string &name() const { return name_; }
    const cap::Capability &codeCap() const { return codeCap_; }
    const cap::Capability &globalsCap() const { return globalsCap_; }

    /** Declare an export; returns its index (import handle). */
    uint32_t addExport(Export exp)
    {
        exports_.push_back(std::move(exp));
        return static_cast<uint32_t>(exports_.size() - 1);
    }

    const Export &exportAt(uint32_t index) const
    {
        return exports_.at(index);
    }

    size_t exportCount() const { return exports_.size(); }

    /** @name Error handling (paper §5.2) @{ */
    void setErrorHandler(ErrorHandler handler)
    {
        errorHandler_ = std::move(handler);
    }
    bool hasErrorHandler() const
    {
        return static_cast<bool>(errorHandler_);
    }
    const ErrorHandler &errorHandler() const { return errorHandler_; }

    FaultRecoveryState &faultState() { return faultState_; }
    const FaultRecoveryState &faultState() const { return faultState_; }
    /** @} */

    /** @name MMIO imports (audit §3.1.2) @{ */
    void addMmioImport(const std::string &window,
                       const cap::Capability &cap)
    {
        mmioImports_.push_back({window, cap});
    }
    const std::vector<MmioImport> &mmioImports() const
    {
        return mmioImports_;
    }

    /** Record that this compartment imports @p entry of @p target
     * (feeds the reachability closure in verify/reach.h). */
    void addEntryImport(const Compartment &target,
                        const std::string &entry)
    {
        entryImports_.push_back({&target, entry});
    }
    const std::vector<EntryImportRecord> &entryImports() const
    {
        return entryImports_;
    }
    /** @} */

  private:
    std::string name_;
    cap::Capability codeCap_;
    cap::Capability globalsCap_;
    std::vector<Export> exports_;
    std::vector<MmioImport> mmioImports_;
    std::vector<EntryImportRecord> entryImports_;
    ErrorHandler errorHandler_;
    FaultRecoveryState faultState_;
};

/**
 * An import: a reference to another compartment's export. Opaque to
 * the importer (conceptually a sentry-sealed entry capability).
 */
struct Import
{
    Compartment *compartment = nullptr;
    uint32_t exportIndex = 0;

    bool valid() const { return compartment != nullptr; }
    const Export &target() const
    {
        return compartment->exportAt(exportIndex);
    }
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_COMPARTMENT_H
