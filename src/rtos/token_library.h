/**
 * @file
 * Virtualized sealing (paper §3.2.2, footnote 5).
 *
 * CHERIoT's otype field is only three bits, which "may seem like a
 * severe limitation, given our goal of fine-grained
 * compartmentalization", but "the RTOS is able to bootstrap a
 * virtualized sealing mechanism that ... suffices in all cases we
 * have encountered so far". This module is that mechanism:
 *
 *  - The token library is a privileged service holding exactly one
 *    hardware data otype (kOtypeToken) and private heap authority.
 *  - Compartments mint *software sealing keys* — opaque handles, each
 *    naming a fresh 32-bit key id. The supply is effectively
 *    unbounded.
 *  - seal(key, payload) boxes the payload capability together with
 *    the key id in token-library-owned heap memory and returns a
 *    capability to the box sealed with the hardware otype. The box is
 *    architecturally opaque: it cannot be dereferenced, modified, or
 *    forged by anyone but the library.
 *  - unseal(key, token) is the inverse, gated on the key id match.
 *
 * Like every RTOS service here, all state lives in simulated memory
 * and every access is capability-checked and cycle-charged.
 */

#ifndef CHERIOT_RTOS_TOKEN_LIBRARY_H
#define CHERIOT_RTOS_TOKEN_LIBRARY_H

#include "alloc/heap_allocator.h"
#include "rtos/guest_context.h"

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::rtos
{

class TokenLibrary
{
  public:
    /**
     * @param guest     charged memory access.
     * @param allocator backing store for token boxes.
     * @param sealer    sealing authority over the kOtypeToken data
     *                  otype (minted by the loader for this library
     *                  alone).
     */
    TokenLibrary(GuestContext &guest, alloc::HeapAllocator &allocator,
                 cap::Capability sealer);

    /**
     * Mint a new software sealing key. The returned capability is
     * itself sealed (opaque): holders can present it but not inspect
     * or alter it.
     */
    cap::Capability createKey();

    /**
     * Box @p payload under @p key. Returns the sealed token, or an
     * untagged capability if @p key is not a valid key or the heap
     * is exhausted.
     */
    cap::Capability seal(const cap::Capability &key,
                         const cap::Capability &payload);

    /**
     * Unbox @p token with @p key. Returns the original payload, or
     * an untagged capability on any mismatch (wrong key, not a
     * token, tampered).
     */
    cap::Capability unseal(const cap::Capability &key,
                           const cap::Capability &token);

    /**
     * Destroy a token, releasing its box back to the heap (the
     * payload itself is unaffected). Requires the matching key.
     */
    bool destroy(const cap::Capability &key,
                 const cap::Capability &token);

    uint32_t keysMinted() const { return nextKeyId_ - 1; }

    /** @name Snapshot state (box contents live in simulated heap
     * memory and ride the machine image; only the id counter is
     * host-side) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    /** Box layout in heap memory. @{ */
    static constexpr uint32_t kKeyIdOffset = 0;
    static constexpr uint32_t kPayloadOffset = 8;
    static constexpr uint32_t kBoxSize = 16;
    /** @} */

    /** Validate and read the key id out of a key handle. */
    bool keyIdOf(const cap::Capability &key, uint32_t *keyId);

    GuestContext &guest_;
    alloc::HeapAllocator &allocator_;
    cap::Capability sealer_;
    uint32_t nextKeyId_ = 1;
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_TOKEN_LIBRARY_H
