#include "rtos/switcher.h"

#include "cap/permissions.h"
#include "debug/stats.h"
#include "fault/fault_injector.h"
#include "rtos/kernel.h"
#include "rtos/watchdog.h"
#include "snapshot/serializer.h"
#include "util/bits.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::rtos
{

using cap::Capability;

void
Switcher::attachSimStats(debug::SimStats &stats)
{
    simStats_ = &stats;
    stats.attach(stats_);
    for (auto &entry : compartmentCycles_) {
        stats.attachCounter("compartment." + entry.first + ".cycles",
                            entry.second);
    }
}

Counter &
Switcher::cyclesFor(const std::string &name)
{
    auto it = compartmentCycles_.find(name);
    if (it == compartmentCycles_.end()) {
        it = compartmentCycles_.emplace(name, Counter{}).first;
        if (simStats_ != nullptr) {
            simStats_->attachCounter("compartment." + name + ".cycles",
                                     it->second);
        }
    }
    return it->second;
}

uint64_t
Switcher::cyclesAttributedTo(const std::string &name) const
{
    const auto it = compartmentCycles_.find(name);
    return it == compartmentCycles_.end() ? 0 : it->second.value();
}

void
Switcher::switchTo(const std::string &name)
{
    const uint64_t now = guest_.machine().cycles();
    cyclesFor(currentCompartment_) += now - attributionMark_;
    attributionMark_ = now;
    currentCompartment_ = name;
    compartmentSwitches++;
}

uint32_t
Switcher::zeroStack(Thread &thread, uint32_t sp)
{
    sim::Machine &machine = guest_.machine();
    uint32_t lo = thread.stackBase();
    if (machine.config().hwmEnabled) {
        // Only the region the hardware saw stores to is dirty.
        const uint32_t hwm = machine.csrs().mshwm;
        lo = std::max(lo, std::min(hwm, sp));
        // Reading mshwm/mshwmb and computing the range.
        guest_.chargeExecution(4);
    }
    if (lo >= sp) {
        if (machine.config().hwmEnabled) {
            machine.csrs().mshwm = sp;
        }
        return 0;
    }
    guest_.zero(thread.stackRoot(), lo, sp - lo);
    if (machine.config().hwmEnabled) {
        machine.csrs().mshwm = sp;
    }
    bytesZeroed += sp - lo;
    thread.stackBytesZeroed += sp - lo;
    return sp - lo;
}

CallResult
Switcher::call(Kernel &kernel, Thread &thread, const Import &import,
               ArgVec &args, const Capability &trustedStackCap)
{
    if (!import.valid()) {
        return CallResult::faulted(sim::TrapCause::CheriSealViolation);
    }
    sim::Machine &machine = guest_.machine();

    // Fail-fast gates, before any trusted-stack work (§5.2): a
    // thread in forced unwind cannot start new calls (each frame
    // must pop, not grow), and a quarantined compartment is never
    // entered at all — that is what keeps a crash-looping
    // compartment from consuming the system's cycles.
    if (thread.unwinding()) {
        rejectedCalls++;
        return CallResult::faulted(thread.unwindCause());
    }
    if (kernel.watchdog().shouldReject(*import.compartment,
                                       machine.cycles())) {
        rejectedCalls++;
        guest_.chargeExecution(8); // The entry check before bailing.
        return CallResult::faulted(
            sim::TrapCause::CompartmentQuarantined);
    }

    const Export &target = import.target();

    calls++;
    thread.crossCompartmentCalls++;
    thread.enterCall();

    // --- Entry path -----------------------------------------------------
    // Hand-written switcher prologue: validate the sealed entry,
    // bump the trusted stack, clear non-argument registers.
    guest_.chargeExecution(kCallInstructions);

    // Spill the caller's callee-saved capability registers to the
    // trusted stack (kernel-private memory).
    const uint32_t frameBase =
        trustedStackCap.base() +
        (thread.callDepth() - 1) * kSavedCaps * cap::kCapabilitySize;
    for (uint32_t i = 0; i < kSavedCaps; ++i) {
        guest_.storeCap(trustedStackCap,
                        frameBase + i * cap::kCapabilitySize, Capability());
    }

    const uint32_t callerSp = thread.sp();

    // Zero the unused stack before handing it over, bounded by the
    // high-water mark when available (§5.2.1).
    zeroStack(thread, callerSp);

    // Chop the stack: the callee receives [stackBase, callerSp) with
    // Store-Local, as the only place local capabilities can live.
    Capability calleeStack =
        thread.stackRoot().withAddress(thread.stackBase());
    calleeStack = calleeStack.withBounds(callerSp - thread.stackBase());
    calleeStack = calleeStack.withAddress(callerSp);
    if (!calleeStack.tag()) {
        panic("switcher: failed to derive callee stack [0x%08x, 0x%08x)",
              thread.stackBase(), callerSp);
    }

    // Interrupt posture follows the import's sentry type (§3.1.2).
    const bool savedPosture = machine.interruptsEnabled();
    if (target.interruptsDisabled) {
        machine.setInterruptsEnabled(false);
    }

    // Everything up to here (the switcher prologue) is charged to the
    // caller; from the switch until the matching return, cycles are
    // attributed to the callee — including any error handler it runs.
    const std::string attributionCaller = currentCompartment_;
    switchTo(import.compartment->name());

    // --- Callee runs ----------------------------------------------------
    CompartmentContext context{kernel, thread, *import.compartment, guest_,
                               calleeStack, callerSp};
    CallResult result;
    result = target.fn(context, args);

    // Fault injection: a spurious trap delivered while this
    // activation was on the core surfaces as a callee fault.
    if (result.ok() && machine.faultInjector() != nullptr) {
        uint32_t cause = 0;
        if (machine.faultInjector()->takeSpuriousFault(&cause)) {
            result =
                CallResult::faulted(static_cast<sim::TrapCause>(cause));
        }
    }

    // --- Return path ----------------------------------------------------
    machine.setInterruptsEnabled(savedPosture);

    if (!result.ok()) {
        // A faulting callee is unwound by the switcher; the caller
        // receives the error return rather than a trap (§2.2's
        // blast-radius limiting).
        calleeFaults++;
        result =
            handleCalleeFault(kernel, thread, import, context, result);
    }

    // The callee (and its error handler, if one ran) is done; the
    // switcher epilogue's cycles belong to the caller again.
    switchTo(attributionCaller);

    // Zero exactly the stack the callee used.
    thread.setSp(callerSp);
    zeroStack(thread, callerSp);

    // Reload spilled registers and return to the caller.
    for (uint32_t i = 0; i < kSavedCaps; ++i) {
        (void)guest_.loadCap(trustedStackCap,
                             frameBase + i * cap::kCapabilitySize);
    }
    guest_.chargeExecution(kReturnInstructions);

    thread.leaveCall();

    if (thread.unwinding()) {
        // Forced unwind in progress: this frame pops with the fault,
        // overriding whatever the intermediate body returned, until
        // the original caller (depth 0) is reached (§5.2).
        forcedUnwindFrames++;
        result = CallResult::faulted(thread.unwindCause());
        if (thread.callDepth() == 0) {
            thread.endForcedUnwind();
            thread.forcedUnwinds++;
        }
    }

    // Returned capabilities must not smuggle stack references: the
    // switcher strips anything local (the return registers are the
    // only channel back).
    if (result.value.tag() && result.value.isLocal()) {
        result.value = result.value.withTagCleared();
    }
    if (result.second.tag() && result.second.isLocal()) {
        result.second = result.second.withTagCleared();
    }
    return result;
}

CallResult
Switcher::handleCalleeFault(Kernel &kernel, Thread &thread,
                            const Import &import,
                            CompartmentContext &context,
                            const CallResult &faultResult)
{
    Compartment &compartment = *import.compartment;
    const sim::TrapCause cause = faultResult.fault;
    sim::Machine &machine = guest_.machine();

    if (thread.unwinding()) {
        // Already unwinding through this frame: no handler, just
        // keep popping with the original cause.
        return CallResult::faulted(thread.unwindCause());
    }

    logf(LogLevel::Debug, "switcher: callee fault in '%s' at depth %u: %s",
         compartment.name().c_str(), thread.callDepth(),
         faultResult.faultName());

    const bool quarantinedNow = kernel.watchdog().recordFault(
        compartment, cause, machine.cycles());
    FaultRecoveryState &state = compartment.faultState();

    if (!quarantinedNow && compartment.hasErrorHandler() &&
        !state.handlerActive) {
        // The handler runs in the faulting compartment's own context
        // — its globals, the already chopped stack — with the
        // switcher re-entering the compartment (§5.2). A handler
        // that itself faults gets no second handler (double-fault
        // rule), which handlerActive latches.
        guest_.chargeExecution(kHandlerInstructions);
        handlerInvocations++;
        FaultInfo info;
        info.cause = cause;
        info.depth = thread.callDepth();
        info.faultCount = state.faultsTotal;
        info.budgetRemaining =
            kernel.watchdog().budgetRemaining(compartment);
        state.handlerActive = true;
        HandlerDecision decision =
            compartment.errorHandler()(context, info);
        state.handlerActive = false;
        if (decision.action == ErrorRecovery::Handled &&
            decision.result.ok()) {
            return decision.result;
        }
    }

    thread.beginForcedUnwind(cause);
    return CallResult::faulted(cause);
}

void
Switcher::serialize(snapshot::Writer &w) const
{
    w.counter(calls);
    w.counter(calleeFaults);
    w.counter(bytesZeroed);
    w.counter(handlerInvocations);
    w.counter(forcedUnwindFrames);
    w.counter(rejectedCalls);
}

bool
Switcher::deserialize(snapshot::Reader &r)
{
    r.counter(calls);
    r.counter(calleeFaults);
    r.counter(bytesZeroed);
    r.counter(handlerInvocations);
    r.counter(forcedUnwindFrames);
    r.counter(rejectedCalls);
    return r.ok();
}

} // namespace cheriot::rtos
