#include "rtos/switcher.h"

#include "cap/permissions.h"
#include "util/bits.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::rtos
{

using cap::Capability;

uint32_t
Switcher::zeroStack(Thread &thread, uint32_t sp)
{
    sim::Machine &machine = guest_.machine();
    uint32_t lo = thread.stackBase();
    if (machine.config().hwmEnabled) {
        // Only the region the hardware saw stores to is dirty.
        const uint32_t hwm = machine.csrs().mshwm;
        lo = std::max(lo, std::min(hwm, sp));
        // Reading mshwm/mshwmb and computing the range.
        guest_.chargeExecution(4);
    }
    if (lo >= sp) {
        if (machine.config().hwmEnabled) {
            machine.csrs().mshwm = sp;
        }
        return 0;
    }
    guest_.zero(thread.stackRoot(), lo, sp - lo);
    if (machine.config().hwmEnabled) {
        machine.csrs().mshwm = sp;
    }
    bytesZeroed += sp - lo;
    thread.stackBytesZeroed += sp - lo;
    return sp - lo;
}

CallResult
Switcher::call(Kernel &kernel, Thread &thread, const Import &import,
               ArgVec &args, const Capability &trustedStackCap)
{
    if (!import.valid()) {
        return CallResult::faulted(sim::TrapCause::CheriSealViolation);
    }
    const Export &target = import.target();
    sim::Machine &machine = guest_.machine();

    calls++;
    thread.crossCompartmentCalls++;
    thread.enterCall();

    // --- Entry path -----------------------------------------------------
    // Hand-written switcher prologue: validate the sealed entry,
    // bump the trusted stack, clear non-argument registers.
    guest_.chargeExecution(kCallInstructions);

    // Spill the caller's callee-saved capability registers to the
    // trusted stack (kernel-private memory).
    const uint32_t frameBase =
        trustedStackCap.base() +
        (thread.callDepth() - 1) * kSavedCaps * cap::kCapabilitySize;
    for (uint32_t i = 0; i < kSavedCaps; ++i) {
        guest_.storeCap(trustedStackCap,
                        frameBase + i * cap::kCapabilitySize, Capability());
    }

    const uint32_t callerSp = thread.sp();

    // Zero the unused stack before handing it over, bounded by the
    // high-water mark when available (§5.2.1).
    zeroStack(thread, callerSp);

    // Chop the stack: the callee receives [stackBase, callerSp) with
    // Store-Local, as the only place local capabilities can live.
    Capability calleeStack =
        thread.stackRoot().withAddress(thread.stackBase());
    calleeStack = calleeStack.withBounds(callerSp - thread.stackBase());
    calleeStack = calleeStack.withAddress(callerSp);
    if (!calleeStack.tag()) {
        panic("switcher: failed to derive callee stack [0x%08x, 0x%08x)",
              thread.stackBase(), callerSp);
    }

    // Interrupt posture follows the import's sentry type (§3.1.2).
    const bool savedPosture = machine.interruptsEnabled();
    if (target.interruptsDisabled) {
        machine.setInterruptsEnabled(false);
    }

    // --- Callee runs ----------------------------------------------------
    CompartmentContext context{kernel, thread, *import.compartment, guest_,
                               calleeStack, callerSp};
    CallResult result;
    result = target.fn(context, args);

    // --- Return path ----------------------------------------------------
    machine.setInterruptsEnabled(savedPosture);

    if (!result.ok()) {
        // A faulting callee is unwound by the switcher; the caller
        // receives the error return rather than a trap (§2.2's
        // blast-radius limiting).
        calleeFaults++;
    }

    // Zero exactly the stack the callee used.
    thread.setSp(callerSp);
    zeroStack(thread, callerSp);

    // Reload spilled registers and return to the caller.
    for (uint32_t i = 0; i < kSavedCaps; ++i) {
        (void)guest_.loadCap(trustedStackCap,
                             frameBase + i * cap::kCapabilitySize);
    }
    guest_.chargeExecution(kReturnInstructions);

    thread.leaveCall();

    // Returned capabilities must not smuggle stack references: the
    // switcher strips anything local (the return registers are the
    // only channel back).
    if (result.value.tag() && result.value.isLocal()) {
        result.value = result.value.withTagCleared();
    }
    if (result.second.tag() && result.second.isLocal()) {
        result.second = result.second.withTagCleared();
    }
    return result;
}

} // namespace cheriot::rtos
