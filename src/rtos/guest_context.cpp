#include "rtos/guest_context.h"

#include "util/log.h"

namespace cheriot::rtos
{

using cap::Capability;
using sim::TrapCause;

uint32_t
GuestContext::loadWord(const Capability &auth, uint32_t addr)
{
    uint32_t value = 0;
    const TrapCause cause = machine_.loadData(auth, addr, 4, false, &value);
    if (cause != TrapCause::None) {
        panic("RTOS word load at 0x%08x faulted: %s (auth %s)", addr,
              sim::trapCauseName(cause), auth.toString().c_str());
    }
    return value;
}

void
GuestContext::storeWord(const Capability &auth, uint32_t addr,
                        uint32_t value)
{
    const TrapCause cause = machine_.storeData(auth, addr, 4, value);
    if (cause != TrapCause::None) {
        panic("RTOS word store at 0x%08x faulted: %s (auth %s)", addr,
              sim::trapCauseName(cause), auth.toString().c_str());
    }
}

Capability
GuestContext::loadCap(const Capability &auth, uint32_t addr)
{
    Capability value;
    const TrapCause cause = machine_.loadCap(auth, addr, &value);
    if (cause != TrapCause::None) {
        panic("RTOS capability load at 0x%08x faulted: %s", addr,
              sim::trapCauseName(cause));
    }
    return value;
}

void
GuestContext::storeCap(const Capability &auth, uint32_t addr,
                       const Capability &value)
{
    const TrapCause cause = machine_.storeCap(auth, addr, value);
    if (cause != TrapCause::None) {
        panic("RTOS capability store at 0x%08x faulted: %s", addr,
              sim::trapCauseName(cause));
    }
}

void
GuestContext::zero(const Capability &auth, uint32_t addr, uint32_t bytes)
{
    const TrapCause cause = machine_.zeroMemory(auth, addr, bytes);
    if (cause != TrapCause::None) {
        panic("RTOS zeroing of [0x%08x, +%u) faulted: %s", addr, bytes,
              sim::trapCauseName(cause));
    }
}

} // namespace cheriot::rtos
