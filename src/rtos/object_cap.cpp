#include "rtos/object_cap.h"

#include "fault/fault_injector.h"
#include "sim/machine.h"
#include "snapshot/serializer.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::rtos
{

using cap::Capability;

namespace
{

/** The FlowManager avalanche mix (two rounds of multiply-xorshift). */
uint32_t
mix(uint32_t v)
{
    v ^= v >> 16;
    v *= 0x7feb352du;
    v ^= v >> 15;
    v *= 0x846ca68bu;
    v ^= v >> 16;
    return v;
}

} // namespace

const char *
objectCapTypeName(ObjectCapType type)
{
    switch (type) {
    case ObjectCapType::Time:
        return "time";
    case ObjectCapType::Channel:
        return "channel";
    case ObjectCapType::Monitor:
        return "monitor";
    }
    return "?";
}

const char *
capResultName(CapResult result)
{
    switch (result) {
    case CapResult::Ok:
        return "Ok";
    case CapResult::InvalidCap:
        return "InvalidCap";
    case CapResult::Revoked:
        return "Revoked";
    case CapResult::BoundsViolation:
        return "BoundsViolation";
    case CapResult::PermViolation:
        return "PermViolation";
    case CapResult::Exhausted:
        return "Exhausted";
    }
    return "?";
}

ObjectCapTable::ObjectCapTable(GuestContext &guest, TokenLibrary &tokens,
                               alloc::HeapAllocator &allocator)
    : guest_(guest), tokens_(tokens), allocator_(allocator)
{
    key_ = tokens_.createKey();
    if (!key_.tag()) {
        fatal("object-cap table: minting the sealing key failed");
    }
    stats_.registerCounter("capsMinted", capsMinted);
    stats_.registerCounter("capsDerived", capsDerived);
    stats_.registerCounter("capsTransferred", capsTransferred);
    stats_.registerCounter("revocations", revocations);
    stats_.registerCounter("descendantsRevoked", descendantsRevoked);
    stats_.registerCounter("scheduledRevocations", scheduledRevocations);
    stats_.registerCounter("staleTokensRefused", staleTokensRefused);
    stats_.registerCounter("invalidTokensRefused", invalidTokensRefused);
    stats_.registerCounter("corruptEntriesRefused",
                           corruptEntriesRefused);
}

uint32_t
ObjectCapTable::canaryOf(const Entry &entry, uint32_t id) const
{
    uint32_t h = mix(id ^ 0x0bedc0deu);
    h = mix(h ^ static_cast<uint32_t>(entry.type));
    h = mix(h ^ entry.ownerIndex);
    h = mix(h ^ entry.parent);
    h = mix(h ^ static_cast<uint32_t>(entry.begin) ^
            static_cast<uint32_t>(entry.begin >> 32));
    h = mix(h ^ static_cast<uint32_t>(entry.end) ^
            static_cast<uint32_t>(entry.end >> 32));
    h = mix(h ^ static_cast<uint32_t>(entry.mark) ^
            static_cast<uint32_t>(entry.mark >> 32));
    h = mix(h ^ (entry.canSend ? 0x5u : 0x0u) ^
            (entry.canReceive ? 0xa0u : 0x0u));
    h = mix(h ^ entry.target);
    h = mix(h ^ static_cast<uint32_t>(entry.children.size()));
    for (const uint32_t child : entry.children) {
        h = mix(h ^ child);
    }
    return h;
}

void
ObjectCapTable::resealCanary(uint32_t id)
{
    entries_[id].canary = canaryOf(entries_[id], id);
}

void
ObjectCapTable::scramble(Entry &entry, uint32_t pattern)
{
    // Rotate the disturbance across the identity fields so a campaign
    // of injections exercises every canary term, including the tree
    // links (parent pointer and children list).
    switch (pattern % 6u) {
    case 0:
        entry.ownerIndex ^= pattern;
        break;
    case 1:
        entry.parent ^= pattern;
        break;
    case 2:
        entry.begin ^= pattern;
        entry.end ^= static_cast<uint64_t>(pattern) << 8;
        break;
    case 3:
        entry.target ^= pattern;
        break;
    case 4:
        entry.children.push_back(pattern);
        break;
    case 5:
        entry.type = static_cast<ObjectCapType>(
            (static_cast<uint32_t>(entry.type) + pattern) % 3u);
        entry.canSend = !entry.canSend;
        break;
    }
}

void
ObjectCapTable::processDueRevocations()
{
    if (pending_.empty()) {
        return;
    }
    const uint64_t now = guest_.machine().cycles();
    for (size_t i = 0; i < pending_.size();) {
        if (pending_[i].atCycle <= now) {
            const uint32_t id = pending_[i].id;
            pending_.erase(pending_.begin() +
                           static_cast<ptrdiff_t>(i));
            if (id < entries_.size() && entries_[id].alive) {
                killSubtree(id);
                revocations++;
                scheduledRevocations++;
            }
        } else {
            ++i;
        }
    }
}

void
ObjectCapTable::killSubtree(uint32_t id)
{
    // Kill by scanning parent pointers rather than walking children
    // lists: a scrambled child link can then never hide a descendant
    // from revocation (fail-safe in the delete-authority direction).
    std::vector<uint32_t> frontier{id};
    while (!frontier.empty()) {
        const uint32_t victim = frontier.back();
        frontier.pop_back();
        if (victim >= entries_.size()) {
            continue;
        }
        Entry &e = entries_[victim];
        if (e.alive) {
            e.alive = false;
            resealCanary(victim);
            if (victim != id) {
                descendantsRevoked++;
            }
        }
        for (uint32_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].parent == victim && entries_[i].alive) {
                frontier.push_back(i);
            }
        }
    }
    guest_.chargeExecution(8);
}

uint32_t
ObjectCapTable::entryFor(const Capability &token, CapResult *why)
{
    processDueRevocations();
    const Capability record = tokens_.unseal(key_, token);
    if (!record.tag()) {
        invalidTokensRefused++;
        *why = CapResult::InvalidCap;
        return kNoParent;
    }
    uint32_t magic = 0;
    uint32_t id = 0;
    if (guest_.tryLoadWord(record, record.base() + 0, &magic) !=
            sim::TrapCause::None ||
        guest_.tryLoadWord(record, record.base() + 4, &id) !=
            sim::TrapCause::None ||
        magic != kRecordMagic || id >= entries_.size() ||
        entries_[id].reclaimed) {
        invalidTokensRefused++;
        *why = CapResult::InvalidCap;
        return kNoParent;
    }
    Entry &e = entries_[id];
    if (injector_ != nullptr) {
        uint32_t pattern = 0;
        if (injector_->capTableTouched(&pattern)) {
            scramble(e, pattern);
        }
    }
    if (e.canary != canaryOf(e, id)) {
        // Corruption detected on use: refuse typed and delete the
        // authority — the entry and everything derived from it — so a
        // scrambled table can lose capabilities but never grant them.
        corruptEntriesRefused++;
        killSubtree(id);
        e.alive = false;
        resealCanary(id);
        *why = CapResult::InvalidCap;
        return kNoParent;
    }
    if (!e.alive) {
        staleTokensRefused++;
        *why = CapResult::Revoked;
        return kNoParent;
    }
    *why = CapResult::Ok;
    return id;
}

uint32_t
ObjectCapTable::idOf(const Capability &token)
{
    const Capability record = tokens_.unseal(key_, token);
    if (!record.tag()) {
        return kNoParent;
    }
    uint32_t magic = 0;
    uint32_t id = 0;
    if (guest_.tryLoadWord(record, record.base() + 0, &magic) !=
            sim::TrapCause::None ||
        guest_.tryLoadWord(record, record.base() + 4, &id) !=
            sim::TrapCause::None ||
        magic != kRecordMagic || id >= entries_.size()) {
        return kNoParent;
    }
    return id;
}

Capability
ObjectCapTable::commit(Entry proto, Counter &counter)
{
    const uint32_t id = static_cast<uint32_t>(entries_.size());
    const Capability record = allocator_.malloc(kRecordSize);
    if (!record.tag()) {
        return Capability();
    }
    guest_.storeWord(record, record.base() + 0, kRecordMagic);
    guest_.storeWord(record, record.base() + 4, id);
    const Capability token = tokens_.seal(key_, record);
    if (!token.tag()) {
        (void)allocator_.free(record);
        return Capability();
    }
    proto.alive = true;
    proto.record = record;
    proto.token = token;
    entries_.push_back(std::move(proto));
    resealCanary(id);
    if (entries_[id].parent != kNoParent) {
        entries_[entries_[id].parent].children.push_back(id);
        resealCanary(entries_[id].parent);
    }
    counter++;
    guest_.chargeExecution(12);
    return token;
}

Capability
ObjectCapTable::mintTime(uint32_t ownerIndex, uint64_t beginSlot,
                         uint64_t endSlot)
{
    if (beginSlot >= endSlot) {
        return Capability();
    }
    Entry e;
    e.type = ObjectCapType::Time;
    e.ownerIndex = ownerIndex;
    e.begin = beginSlot;
    e.mark = beginSlot;
    e.end = endSlot;
    return commit(std::move(e), capsMinted);
}

Capability
ObjectCapTable::mintChannel(uint32_t ownerIndex,
                            const Capability &queueHandle, bool canSend,
                            bool canReceive)
{
    if (!queueHandle.tag() || (!canSend && !canReceive)) {
        return Capability();
    }
    Entry e;
    e.type = ObjectCapType::Channel;
    e.ownerIndex = ownerIndex;
    e.queue = queueHandle;
    e.canSend = canSend;
    e.canReceive = canReceive;
    return commit(std::move(e), capsMinted);
}

Capability
ObjectCapTable::mintMonitor(uint32_t ownerIndex, uint32_t targetIndex)
{
    Entry e;
    e.type = ObjectCapType::Monitor;
    e.ownerIndex = ownerIndex;
    e.target = targetIndex;
    return commit(std::move(e), capsMinted);
}

Capability
ObjectCapTable::deriveTime(const Capability &parent, uint64_t beginSlot,
                           uint64_t endSlot, CapResult *why)
{
    CapResult status = CapResult::Ok;
    const uint32_t pid = entryFor(parent, &status);
    CapResult sink;
    CapResult &out = why != nullptr ? *why : sink;
    out = status;
    if (pid == kNoParent) {
        return Capability();
    }
    Entry &p = entries_[pid];
    if (p.type != ObjectCapType::Time) {
        out = CapResult::PermViolation;
        return Capability();
    }
    // s3k cap_util: a child [b, e) is derivable iff
    // mark <= b < e <= end; deriving it advances mark to e.
    if (!(p.mark <= beginSlot && beginSlot < endSlot &&
          endSlot <= p.end)) {
        out = CapResult::BoundsViolation;
        return Capability();
    }
    Entry child;
    child.type = ObjectCapType::Time;
    child.ownerIndex = p.ownerIndex;
    child.parent = pid;
    child.begin = beginSlot;
    child.mark = beginSlot;
    child.end = endSlot;
    const Capability token = commit(std::move(child), capsDerived);
    if (!token.tag()) {
        out = CapResult::Exhausted;
        return Capability();
    }
    entries_[pid].mark = endSlot;
    resealCanary(pid);
    out = CapResult::Ok;
    return token;
}

Capability
ObjectCapTable::deriveChannel(const Capability &parent, bool canSend,
                              bool canReceive, CapResult *why)
{
    CapResult status = CapResult::Ok;
    const uint32_t pid = entryFor(parent, &status);
    CapResult sink;
    CapResult &out = why != nullptr ? *why : sink;
    out = status;
    if (pid == kNoParent) {
        return Capability();
    }
    Entry &p = entries_[pid];
    if (p.type != ObjectCapType::Channel) {
        out = CapResult::PermViolation;
        return Capability();
    }
    // Monotone: the child's permissions must be a non-empty subset.
    if ((!canSend && !canReceive) || (canSend && !p.canSend) ||
        (canReceive && !p.canReceive)) {
        out = CapResult::PermViolation;
        return Capability();
    }
    Entry child;
    child.type = ObjectCapType::Channel;
    child.ownerIndex = p.ownerIndex;
    child.parent = pid;
    child.queue = p.queue;
    child.canSend = canSend;
    child.canReceive = canReceive;
    const Capability token = commit(std::move(child), capsDerived);
    if (!token.tag()) {
        out = CapResult::Exhausted;
        return Capability();
    }
    out = CapResult::Ok;
    return token;
}

Capability
ObjectCapTable::deriveMonitor(const Capability &parent, CapResult *why)
{
    CapResult status = CapResult::Ok;
    const uint32_t pid = entryFor(parent, &status);
    CapResult sink;
    CapResult &out = why != nullptr ? *why : sink;
    out = status;
    if (pid == kNoParent) {
        return Capability();
    }
    Entry &p = entries_[pid];
    if (p.type != ObjectCapType::Monitor) {
        out = CapResult::PermViolation;
        return Capability();
    }
    Entry child;
    child.type = ObjectCapType::Monitor;
    child.ownerIndex = p.ownerIndex;
    child.parent = pid;
    child.target = p.target;
    const Capability token = commit(std::move(child), capsDerived);
    if (!token.tag()) {
        out = CapResult::Exhausted;
        return Capability();
    }
    out = CapResult::Ok;
    return token;
}

CapResult
ObjectCapTable::transfer(const Capability &token, uint32_t newOwnerIndex)
{
    CapResult status = CapResult::Ok;
    const uint32_t id = entryFor(token, &status);
    if (id == kNoParent) {
        return status;
    }
    entries_[id].ownerIndex = newOwnerIndex;
    resealCanary(id);
    capsTransferred++;
    guest_.chargeExecution(4);
    return CapResult::Ok;
}

CapResult
ObjectCapTable::revoke(const Capability &token)
{
    CapResult status = CapResult::Ok;
    const uint32_t id = entryFor(token, &status);
    if (id == kNoParent) {
        // Idempotent: revoking an already-revoked capability is a
        // no-op success; anything else stays a typed refusal.
        return status == CapResult::Revoked ? CapResult::Ok : status;
    }
    killSubtree(id);
    revocations++;
    return CapResult::Ok;
}

CapResult
ObjectCapTable::scheduleRevoke(const Capability &token, uint64_t atCycle)
{
    CapResult status = CapResult::Ok;
    const uint32_t id = entryFor(token, &status);
    if (id == kNoParent) {
        return status;
    }
    pending_.push_back({atCycle, id});
    return CapResult::Ok;
}

uint32_t
ObjectCapTable::reclaim()
{
    processDueRevocations();
    uint32_t freed = 0;
    for (auto &e : entries_) {
        if (e.alive || e.reclaimed) {
            continue;
        }
        if (!tokens_.destroy(key_, e.token)) {
            panic("object-cap table: destroying a dead token failed");
        }
        if (allocator_.free(e.record) !=
            alloc::HeapAllocator::FreeResult::Ok) {
            panic("object-cap table: freeing a dead record failed");
        }
        e.record = Capability();
        e.token = Capability();
        e.reclaimed = true;
        freed++;
    }
    return freed;
}

CapResult
ObjectCapTable::checkTime(const Capability &token, uint64_t slot)
{
    CapResult status = CapResult::Ok;
    const uint32_t id = entryFor(token, &status);
    if (id == kNoParent) {
        return status;
    }
    const Entry &e = entries_[id];
    if (e.type != ObjectCapType::Time) {
        return CapResult::PermViolation;
    }
    if (slot < e.begin || slot >= e.end) {
        return CapResult::BoundsViolation;
    }
    return CapResult::Ok;
}

ChannelGrant
ObjectCapTable::checkChannel(const Capability &token)
{
    ChannelGrant grant;
    CapResult status = CapResult::Ok;
    const uint32_t id = entryFor(token, &status);
    if (id == kNoParent) {
        grant.status = status;
        return grant;
    }
    const Entry &e = entries_[id];
    if (e.type != ObjectCapType::Channel) {
        grant.status = CapResult::PermViolation;
        return grant;
    }
    grant.status = CapResult::Ok;
    grant.queue = e.queue;
    grant.canSend = e.canSend;
    grant.canReceive = e.canReceive;
    return grant;
}

CapResult
ObjectCapTable::checkMonitor(const Capability &token,
                             uint32_t targetIndex)
{
    CapResult status = CapResult::Ok;
    const uint32_t id = entryFor(token, &status);
    if (id == kNoParent) {
        return status;
    }
    const Entry &e = entries_[id];
    if (e.type != ObjectCapType::Monitor) {
        return CapResult::PermViolation;
    }
    if (e.target != targetIndex) {
        return CapResult::PermViolation;
    }
    return CapResult::Ok;
}

bool
ObjectCapTable::aliveAt(uint32_t id) const
{
    return id < entries_.size() && entries_[id].alive;
}

ObjectCapType
ObjectCapTable::typeAt(uint32_t id) const
{
    return entries_.at(id).type;
}

uint32_t
ObjectCapTable::parentOf(uint32_t id) const
{
    return entries_.at(id).parent;
}

uint32_t
ObjectCapTable::ownerOf(uint32_t id) const
{
    return entries_.at(id).ownerIndex;
}

void
ObjectCapTable::timeBoundsAt(uint32_t id, uint64_t *begin,
                             uint64_t *mark, uint64_t *end) const
{
    const Entry &e = entries_.at(id);
    *begin = e.begin;
    *mark = e.mark;
    *end = e.end;
}

bool
ObjectCapTable::subtreeDead(uint32_t id) const
{
    for (uint32_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].alive) {
            continue;
        }
        // Walk ancestors of the live node; bounded by the table size
        // so even a corrupted parent chain cannot loop forever.
        uint32_t cursor = i;
        for (size_t steps = 0;
             cursor != kNoParent && steps <= entries_.size(); ++steps) {
            if (cursor == id) {
                return false;
            }
            cursor = cursor < entries_.size() ? entries_[cursor].parent
                                              : kNoParent;
        }
    }
    return true;
}

void
ObjectCapTable::serialize(snapshot::Writer &w) const
{
    w.cap(key_);
    w.u32(static_cast<uint32_t>(entries_.size()));
    for (const auto &e : entries_) {
        w.u8(static_cast<uint8_t>(e.type));
        w.b(e.alive);
        w.b(e.reclaimed);
        w.u32(e.parent);
        w.u32(e.ownerIndex);
        w.u32(static_cast<uint32_t>(e.children.size()));
        for (const uint32_t child : e.children) {
            w.u32(child);
        }
        w.u64(e.begin);
        w.u64(e.mark);
        w.u64(e.end);
        w.cap(e.queue);
        w.b(e.canSend);
        w.b(e.canReceive);
        w.u32(e.target);
        w.u32(e.canary);
        w.cap(e.record);
        w.cap(e.token);
    }
    w.u32(static_cast<uint32_t>(pending_.size()));
    for (const auto &p : pending_) {
        w.u64(p.atCycle);
        w.u32(p.id);
    }
    w.counter(capsMinted);
    w.counter(capsDerived);
    w.counter(capsTransferred);
    w.counter(revocations);
    w.counter(descendantsRevoked);
    w.counter(scheduledRevocations);
    w.counter(staleTokensRefused);
    w.counter(invalidTokensRefused);
    w.counter(corruptEntriesRefused);
}

bool
ObjectCapTable::deserialize(snapshot::Reader &r)
{
    key_ = r.cap();
    const uint32_t count = r.u32();
    if (!r.ok()) {
        return false;
    }
    entries_.clear();
    entries_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        Entry e;
        e.type = static_cast<ObjectCapType>(r.u8());
        e.alive = r.b();
        e.reclaimed = r.b();
        e.parent = r.u32();
        e.ownerIndex = r.u32();
        const uint32_t childCount = r.u32();
        if (!r.ok() || childCount > count) {
            return false;
        }
        e.children.resize(childCount);
        for (uint32_t c = 0; c < childCount; ++c) {
            e.children[c] = r.u32();
        }
        e.begin = r.u64();
        e.mark = r.u64();
        e.end = r.u64();
        e.queue = r.cap();
        e.canSend = r.b();
        e.canReceive = r.b();
        e.target = r.u32();
        e.canary = r.u32();
        e.record = r.cap();
        e.token = r.cap();
        entries_.push_back(std::move(e));
    }
    const uint32_t pendingCount = r.u32();
    if (!r.ok() || pendingCount > 0x10000u) {
        return false;
    }
    pending_.clear();
    pending_.reserve(pendingCount);
    for (uint32_t i = 0; i < pendingCount; ++i) {
        PendingRevoke p;
        p.atCycle = r.u64();
        p.id = r.u32();
        pending_.push_back(p);
    }
    r.counter(capsMinted);
    r.counter(capsDerived);
    r.counter(capsTransferred);
    r.counter(revocations);
    r.counter(descendantsRevoked);
    r.counter(scheduledRevocations);
    r.counter(staleTokensRefused);
    r.counter(invalidTokensRefused);
    r.counter(corruptEntriesRefused);
    return r.ok();
}

} // namespace cheriot::rtos
