/**
 * @file
 * Charged, capability-checked memory access for RTOS-modelled code.
 *
 * The RTOS primitives (allocator, switcher, scheduler) are modelled
 * as host C++ that operates on the simulated machine exclusively
 * through this context: every access is authorised by a real
 * capability, passes through the load filter, snoops the background
 * revoker, and is charged cycles by the active core's timing model —
 * so the protection and performance behaviour match code compiled for
 * the guest ISA.
 *
 * Violations that occur while the RTOS manipulates *its own* state
 * are model bugs and panic; checks of caller-supplied capabilities
 * use the fallible variants and surface the fault.
 */

#ifndef CHERIOT_RTOS_GUEST_CONTEXT_H
#define CHERIOT_RTOS_GUEST_CONTEXT_H

#include "cap/capability.h"
#include "revoker/software_revoker.h"
#include "sim/machine.h"

namespace cheriot::rtos
{

class GuestContext
{
  public:
    explicit GuestContext(sim::Machine &machine) : machine_(machine) {}

    sim::Machine &machine() { return machine_; }

    /** @name Infallible accessors (panic on violation) @{ */
    uint32_t loadWord(const cap::Capability &auth, uint32_t addr);
    void storeWord(const cap::Capability &auth, uint32_t addr,
                   uint32_t value);
    cap::Capability loadCap(const cap::Capability &auth, uint32_t addr);
    void storeCap(const cap::Capability &auth, uint32_t addr,
                  const cap::Capability &value);
    void zero(const cap::Capability &auth, uint32_t addr, uint32_t bytes);
    /** @} */

    /** @name Fallible accessors @{ */
    sim::TrapCause tryLoadWord(const cap::Capability &auth, uint32_t addr,
                               uint32_t *out)
    {
        return machine_.loadData(auth, addr, 4, false, out);
    }
    sim::TrapCause tryStoreWord(const cap::Capability &auth, uint32_t addr,
                                uint32_t value)
    {
        return machine_.storeData(auth, addr, 4, value);
    }
    sim::TrapCause tryLoadCap(const cap::Capability &auth, uint32_t addr,
                              cap::Capability *out)
    {
        return machine_.loadCap(auth, addr, out);
    }
    sim::TrapCause tryStoreCap(const cap::Capability &auth, uint32_t addr,
                               const cap::Capability &value)
    {
        return machine_.storeCap(auth, addr, value);
    }
    /** @} */

    /** Charge @p instructions cycles of register-register work. */
    void chargeExecution(uint32_t instructions)
    {
        machine_.advance(instructions, 0);
    }

  private:
    sim::Machine &machine_;
};

/**
 * SweepPort implementation: lets the software revoker sweep a window
 * through the real load filter with real cycle charging.
 */
class SweepContext : public revoker::SweepPort
{
  public:
    SweepContext(GuestContext &guest, cap::Capability authority)
        : guest_(guest), authority_(authority)
    {}

    cap::Capability sweepLoadCap(uint32_t addr) override
    {
        return guest_.loadCap(authority_, addr);
    }

    void sweepStoreCap(uint32_t addr, const cap::Capability &value) override
    {
        guest_.storeCap(authority_, addr, value);
    }

    void sweepChargeExecution(uint32_t instructions) override
    {
        guest_.chargeExecution(instructions);
    }

    void sweepInterruptWindow() override
    {
        // Re-enable interrupts for a couple of cycles between batches
        // so the system stays responsive; modelled as a short idle.
        guest_.machine().idle(2);
    }

    void sweepLoadToUseStall() override
    {
        guest_.machine().advance(
            guest_.machine().config().loadToUsePenalty, 0);
    }

  private:
    GuestContext &guest_;
    cap::Capability authority_;
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_GUEST_CONTEXT_H
