/**
 * @file
 * Compartment audit reports (paper §3.1.2).
 *
 * "For auditing, it is far more useful to know which code runs with
 * interrupts disabled than it is to know which code may toggle
 * interrupts." CHERIoT's build system emits an audit manifest of the
 * linked image: every compartment, its exports (with their interrupt
 * posture — i.e. which sentry type the loader minted), the imports
 * each compartment holds, and which compartments hold dangerous
 * authority (MMIO windows, sealing keys). This module produces the
 * same report from a live kernel so policies can be checked in tests:
 * e.g. "only the allocator may reach the revocation bitmap", "no
 * third-party compartment runs with interrupts disabled".
 */

#ifndef CHERIOT_RTOS_AUDIT_H
#define CHERIOT_RTOS_AUDIT_H

#include "rtos/compartment.h"

#include <string>
#include <vector>

namespace cheriot::rtos
{

class Kernel;

/** One export's audit entry. */
struct ExportAudit
{
    std::string compartment;
    std::string entryPoint;
    bool interruptsDisabled;
};

/** One MMIO window import, with the access it grants. */
struct MmioImportAudit
{
    std::string window;
    bool writable = true; ///< The imported capability carries SD.
};

/** One cross-compartment entry import (an edge in the call graph the
 * reachability rules walk). */
struct EntryImportAudit
{
    std::string target; ///< Exporting compartment.
    std::string entry;  ///< Imported entry point.
};

/** One compartment's audit entry. */
struct CompartmentAudit
{
    std::string name;
    uint32_t codeBase;
    uint32_t codeSize;
    uint32_t globalsBase;
    uint32_t globalsSize;
    size_t exportCount;
    bool globalsStoreLocal; ///< Must always be false (§5.2).
    bool codeWritable;      ///< Must always be false (W^X).
    /** Named MMIO windows this compartment holds authority over. */
    std::vector<MmioImportAudit> mmioImports;
    /** Entry points of other compartments this one can invoke. */
    std::vector<EntryImportAudit> entryImports;
    /** Live object-capability types this compartment holds ("time",
     * "channel", "monitor") — the delegable kernel authority an
     * auditor wants enumerated next to the MMIO windows. */
    std::vector<std::string> tokenHoldings;
};

/** The whole image's audit manifest. */
struct AuditReport
{
    std::vector<CompartmentAudit> compartments;
    std::vector<ExportAudit> exports;

    /** Exports that run with interrupts disabled (the §3.1.2 list an
     * auditor actually reads). */
    std::vector<ExportAudit> interruptsDisabledEntries() const;

    /** True iff no compartment violates the structural invariants
     * (SL-free globals, W^X code). */
    bool structurallySound() const;

    /** Human-readable rendering. */
    std::string toString() const;
};

/** Produce the audit manifest for a kernel's current image. */
AuditReport auditKernel(Kernel &kernel);

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_AUDIT_H
