#include "rtos/scheduler.h"

#include "snapshot/serializer.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::rtos
{

void
Scheduler::contextSwitch()
{
    contextSwitches++;
    sim::Machine &machine = guest_.machine();

    // Save and restore the capability register file through real
    // (charged, tag-preserving) memory traffic.
    const uint32_t base = saveArea_.base();
    for (uint32_t i = 0; i < kSavedCapRegs; ++i) {
        guest_.storeCap(saveArea_, base + i * cap::kCapabilitySize,
                        cap::Capability());
    }
    for (uint32_t i = 0; i < kSavedCapRegs; ++i) {
        (void)guest_.loadCap(saveArea_, base + i * cap::kCapabilitySize);
    }
    guest_.chargeExecution(kSwitchInstructions);

    if (machine.config().hwmEnabled) {
        // The stack base and high-water-mark CSRs must be saved and
        // restored on every thread context switch (§5.2.1): two CSR
        // reads/writes plus two stores and two loads in the context
        // block — memory traffic that also keeps the port away from
        // the background revoker (visible in Table 4's 128 KiB Ibex
        // column).
        machine.advance(2 * kHwmCsrOps, 2 * kHwmCsrOps);
    }
}

void
Scheduler::blockUntil(const std::function<bool()> &done,
                      uint64_t pollCycles)
{
    while (!done()) {
        // Yield to the idle thread, sleep, and wake to re-check.
        contextSwitch();
        runIdle(pollCycles);
        contextSwitch();
    }
}

void
Scheduler::runIdle(uint64_t cycles)
{
    guest_.machine().idle(cycles);
    idleCycleCount += cycles;
}

void
Scheduler::addPeriodic(std::string name, uint64_t periodCycles,
                       uint8_t priority, std::function<void()> fn)
{
    addPeriodicWithDelay(std::move(name), periodCycles, periodCycles,
                         priority, std::move(fn));
}

void
Scheduler::addPeriodicWithDelay(std::string name, uint64_t periodCycles,
                                uint64_t firstDelay, uint8_t priority,
                                std::function<void()> fn)
{
    Task task;
    task.name = std::move(name);
    task.periodCycles = periodCycles;
    task.nextDue = guest_.machine().cycles() + firstDelay;
    task.priority = priority;
    task.fn = std::move(fn);
    tasks_.push_back(std::move(task));
}

bool
Scheduler::bindTimeCap(const std::string &name,
                       const cap::Capability &token)
{
    for (Task &task : tasks_) {
        if (task.name == name) {
            task.timeCap = token;
            return true;
        }
    }
    return false;
}

double
Scheduler::runFor(uint64_t horizon)
{
    sim::Machine &machine = guest_.machine();
    const uint64_t start = machine.cycles();
    const uint64_t idleStart = idleCycleCount.value();
    const uint64_t end = start + horizon;

    while (machine.cycles() < end) {
        // Find the next due task (highest priority wins ties).
        Task *next = nullptr;
        for (auto &task : tasks_) {
            if (next == nullptr || task.nextDue < next->nextDue ||
                (task.nextDue == next->nextDue &&
                 task.priority > next->priority)) {
                next = &task;
            }
        }
        if (next == nullptr) {
            runIdle(end - machine.cycles());
            break;
        }
        if (next->nextDue > machine.cycles()) {
            const uint64_t sleep =
                std::min(next->nextDue, end) - machine.cycles();
            runIdle(sleep);
            if (machine.cycles() >= end) {
                break;
            }
        }
        if (admissionGate_ && admissionGate_(*next)) {
            // Deferred, not run: the activation slides one period.
            admissionDeferrals++;
            next->nextDue += next->periodCycles;
            if (next->nextDue <= machine.cycles()) {
                next->nextDue = machine.cycles() + next->periodCycles;
            }
            continue;
        }
        if (next->timeCap.tag() && timeAuthority_ != nullptr &&
            timeAuthority_->checkTime(next->timeCap,
                                      slotAt(machine.cycles())) !=
                CapResult::Ok) {
            // No live Time capability for this slot: the task is
            // preempted at the scheduling point, exactly like an
            // admission-gate deferral — typed, one period, no trap.
            timeCapDeferrals++;
            next->nextDue += next->periodCycles;
            if (next->nextDue <= machine.cycles()) {
                next->nextDue = machine.cycles() + next->periodCycles;
            }
            continue;
        }
        contextSwitch();
        const uint64_t busyStart = machine.cycles();
        next->fn();
        busyCycleCount += machine.cycles() - busyStart;
        contextSwitch();
        next->nextDue += next->periodCycles;
        if (next->nextDue <= machine.cycles()) {
            // The activation overran its period; schedule from now to
            // avoid an unbounded catch-up burst.
            next->nextDue = machine.cycles() + next->periodCycles;
        }
    }

    const uint64_t total = machine.cycles() - start;
    const uint64_t idled = idleCycleCount.value() - idleStart;
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(idled) /
                                  static_cast<double>(total);
}

void
Scheduler::serialize(snapshot::Writer &w) const
{
    w.u32(static_cast<uint32_t>(tasks_.size()));
    for (const Task &task : tasks_) {
        w.str(task.name);
        w.u64(task.periodCycles);
        w.u64(task.nextDue);
    }
    w.counter(contextSwitches);
    w.counter(idleCycleCount);
    w.counter(busyCycleCount);
    w.counter(admissionDeferrals);
    w.counter(timeCapDeferrals);
    w.u64(slotCycles_);
}

bool
Scheduler::deserialize(snapshot::Reader &r)
{
    if (r.u32() != tasks_.size()) {
        return false;
    }
    for (Task &task : tasks_) {
        if (r.str() != task.name) {
            return false;
        }
        // A period mismatch means the resuming process registered a
        // *different* schedule (e.g. a horizon-dependent one-shot
        // period): its restored absolute deadline would silently fire
        // at the wrong time. Refuse up front instead.
        if (r.u64() != task.periodCycles) {
            return false;
        }
        task.nextDue = r.u64();
    }
    r.counter(contextSwitches);
    r.counter(idleCycleCount);
    r.counter(busyCycleCount);
    r.counter(admissionDeferrals);
    r.counter(timeCapDeferrals);
    slotCycles_ = r.u64();
    return r.ok() && slotCycles_ != 0;
}

} // namespace cheriot::rtos
