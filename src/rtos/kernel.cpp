#include "rtos/kernel.h"

#include "cap/sealing.h"
#include "mem/memory_map.h"
#include "rtos/audit.h"
#include "snapshot/serializer.h"
#include "util/log.h"
#include "verify/reach.h"
#include "verify/verifier.h"

#include <cstdlib>

namespace cheriot::rtos
{

using cap::Capability;

// --- HardwareRevokerHandle ---------------------------------------------

uint32_t
HardwareRevokerHandle::epoch() const
{
    // The epoch register is read constantly by the allocator; model
    // it as a register read (the charged accesses happen in
    // requestSweep and the polling loop).
    return guest_.machine().backgroundRevoker().epoch();
}

void
HardwareRevokerHandle::requestSweep()
{
    if (sweepInProgress()) {
        return;
    }
    // Program start/end and kick through the MMIO window.
    guest_.storeWord(mmioCap_, mmioCap_.base() + 0x0, sweepBase_);
    guest_.storeWord(mmioCap_, mmioCap_.base() + 0x4, sweepEnd_);
    guest_.storeWord(mmioCap_, mmioCap_.base() + 0xc, 1);
}

void
HardwareRevokerHandle::waitForCompletion()
{
    // Waiting with a watchdog timeout: a revoker that stops making
    // progress (stalled pipeline, stuck epoch) would otherwise block
    // the allocator forever. After kStallTimeoutPolls the waiter
    // kicks the engine through its MMIO kick register — the reset of
    // the engine's control path — and resumes waiting.
    uint32_t kicks = 0;
    while (sweepInProgress()) {
        uint32_t polls = 0;
        scheduler_.blockUntil([this, &polls] {
            return !sweepInProgress() || ++polls > kStallTimeoutPolls;
        });
        if (!sweepInProgress()) {
            break;
        }
        timeoutKicks++;
        warn("revoker: sweep made no visible progress in %u polls — "
             "kicking the engine (kick #%u)",
             kStallTimeoutPolls, ++kicks);
        guest_.storeWord(mmioCap_, mmioCap_.base() + 0xc, 1);
        if (kicks > 1000) {
            panic("revoker: engine wedged beyond recovery");
        }
    }
}

// --- Kernel -------------------------------------------------------------

Kernel::Kernel(sim::Machine &machine)
    : machine_(machine), guest_(machine), loader_(machine),
      switcher_(guest_), watchdog_(guest_)
{
    // Register save area for the scheduler: it stores whole register
    // files, including local (stack) capabilities, so it needs SL.
    const uint32_t saveBytes =
        Scheduler::kSavedCapRegs * cap::kCapabilitySize;
    const uint32_t saveBase = loader_.allocRegion(saveBytes, 8);
    scheduler_ = std::make_unique<Scheduler>(
        guest_, loader_.dataCap(saveBase, saveBytes, /*storeLocal=*/true));

    // Publish the switcher's counters (and its dynamic
    // per-compartment cycle attribution) to the machine-wide
    // stats registry the debug stub and bench harnesses read.
    switcher_.attachSimStats(machine_.simStats());
}

Kernel::~Kernel() = default;

Compartment &
Kernel::createCompartment(const std::string &name, uint32_t codeSize,
                          uint32_t globalsSize)
{
    const uint32_t codeBase = loader_.allocExactRegion(codeSize, &codeSize);
    const uint32_t globalsBase =
        loader_.allocExactRegion(globalsSize, &globalsSize);
    // Globals capabilities deliberately lack Store-Local (§5.2): a
    // compartment can never capture a stack reference in its globals.
    compartments_.push_back(std::make_unique<Compartment>(
        name, loader_.codeCap(codeBase, codeSize),
        loader_.dataCap(globalsBase, globalsSize, /*storeLocal=*/false)));
    return *compartments_.back();
}

Thread &
Kernel::createThread(const std::string &name, uint8_t priority,
                     uint32_t stackSize)
{
    const uint32_t stackBase = loader_.allocExactRegion(stackSize, &stackSize);
    // Stacks are local (no GL) and are the only SL-bearing memory.
    Capability stackRoot = loader_.dataCap(stackBase, stackSize,
                                           /*storeLocal=*/true,
                                           /*global=*/false);
    const uint32_t id = static_cast<uint32_t>(threads_.size());
    threads_.push_back(std::make_unique<Thread>(
        id, name, priority, stackBase, stackBase + stackSize, stackRoot));

    // Trusted stack (switcher-private spill area), 8 frames deep.
    const uint32_t tsBytes =
        Switcher::kSavedCaps * cap::kCapabilitySize * 8;
    const uint32_t tsBase = loader_.allocRegion(tsBytes, 8);
    trustedStacks_.push_back(
        loader_.dataCap(tsBase, tsBytes, /*storeLocal=*/true));
    return *threads_.back();
}

Compartment &
Kernel::adoptCompartment(std::unique_ptr<Compartment> c)
{
    compartments_.push_back(std::move(c));
    return *compartments_.back();
}

bool
Kernel::finalizeBoot(std::string *whyNot)
{
    const AuditReport report = auditKernel(*this);
    // §3.1.2 structural boot assertions: every image the loader built
    // satisfies these by construction; adopted or corrupted images
    // are refused here, before any thread runs.
    for (const auto &c : report.compartments) {
        if (c.globalsStoreLocal) {
            if (whyNot != nullptr) {
                *whyNot = "compartment '" + c.name +
                          "': globals capability carries Store-Local "
                          "(stack references could be captured, §5.2)";
            }
            return false;
        }
        if (c.codeWritable) {
            if (whyNot != nullptr) {
                *whyNot = "compartment '" + c.name +
                          "': code capability is writable (W^X)";
            }
            return false;
        }
    }
    // The static sharing lint is a boot assertion like SL/W^X: a
    // writable authority mutable from two domains without channel
    // discipline is a data race no runtime check will catch.
    for (const auto &issue :
         verify::AuthorityReach(report).sharedMutable()) {
        if (whyNot != nullptr) {
            *whyNot = issue.message;
        }
        return false;
    }
    const char *env = std::getenv("CHERIOT_VERIFY_ON_LOAD");
    if (env != nullptr && *env != '\0') {
        const verify::Report vr =
            verify::verifyKernel(*this, verify::Policy::defaultPolicy());
        if (!vr.ok()) {
            if (whyNot != nullptr) {
                *whyNot = vr.toString();
            }
            return false;
        }
    }
    return true;
}

Import
Kernel::importOf(Compartment &compartment, uint32_t exportIndex)
{
    Import import;
    import.compartment = &compartment;
    import.exportIndex = exportIndex;
    return import;
}

void
Kernel::activate(Thread &thread)
{
    machine_.csrs().mshwmb = thread.stackBase();
    machine_.csrs().mshwm = thread.stackTop();
}

CallResult
Kernel::call(Thread &thread, const Import &import, ArgVec args)
{
    if (thread.id() >= trustedStacks_.size()) {
        panic("kernel: thread %u has no trusted stack", thread.id());
    }
    return switcher_.call(*this, thread, import, args,
                          trustedStacks_[thread.id()]);
}

void
Kernel::initHeap(alloc::TemporalMode mode, uint64_t quarantineThreshold)
{
    if (allocator_ != nullptr) {
        fatal("kernel: heap initialised twice");
    }
    const uint32_t heapBase = machine_.heapBase();
    const uint32_t heapSize = machine_.machineConfig().heapSize;

    Capability heapCap = loader_.dataCap(heapBase, heapSize);
    Capability bitmapCap = loader_.mmioCap(
        mem::kRevocationBitmapBase, machine_.revocationBitmap().mmioSize());

    // Sweeps cover every byte of SRAM that can hold capabilities —
    // globals, stacks and heap alike — since stale heap pointers can
    // be stored anywhere.
    const uint32_t sweepBase = mem::kSramBase;
    const uint32_t sweepEnd =
        mem::kSramBase + machine_.machineConfig().sramSize;

    revoker::Revoker *revoker = nullptr;
    if (mode == alloc::TemporalMode::SoftwareRevocation) {
        // The software sweep needs to reload-and-store-back every
        // capability unchanged: full load perms (LG, LM) and SL for
        // stack regions.
        Capability sweepAuth = loader_.dataCap(
            sweepBase, sweepEnd - sweepBase, /*storeLocal=*/true);
        sweepContext_ = std::make_unique<SweepContext>(guest_, sweepAuth);
        softwareRevoker_ = std::make_unique<revoker::SoftwareRevoker>(
            *sweepContext_, sweepBase, sweepEnd - sweepBase);
        revoker = softwareRevoker_.get();
    } else if (mode == alloc::TemporalMode::HardwareRevocation) {
        Capability revokerMmio = loader_.mmioCap(mem::kRevokerMmioBase,
                                                 mem::kRevokerMmioSize);
        hardwareRevoker_ = std::make_unique<HardwareRevokerHandle>(
            guest_, *scheduler_, revokerMmio, sweepBase, sweepEnd);
        revoker = hardwareRevoker_.get();
    }

    alloc::AllocatorConfig config;
    config.mode = mode;
    config.quarantineThreshold = quarantineThreshold;
    allocator_ = std::make_unique<alloc::HeapAllocator>(
        guest_, heapCap, bitmapCap, machine_.revocationBitmap(), revoker,
        config);

    // Heap-pressure telemetry: a read-only MMIO window over the
    // allocator's health registers (free/quarantined bytes, oldest
    // epoch age, denial counters) so schedulers and admission gates
    // can observe overload without a cross-compartment call.
    heapPressure_ = std::make_unique<HeapPressureDevice>(*allocator_);
    machine_.memory().mmio().map(mem::kHeapPressureMmioBase,
                                 mem::kHeapPressureMmioSize,
                                 heapPressure_.get());
    heapPressureCap_ = loader_.mmioCap(mem::kHeapPressureMmioBase,
                                       mem::kHeapPressureMmioSize);

    // A blocking malloc must not spin on the memory port it is
    // waiting for the revoker to use: each backoff step yields to the
    // idle thread, exactly like the hardware revoker's wait loop.
    allocator_->setBackoffWait([this](uint64_t cycles) {
        scheduler_->contextSwitch();
        scheduler_->runIdle(cycles);
        scheduler_->contextSwitch();
    });

    // The allocator compartment: the sole holder of the bitmap
    // capability, exporting malloc and free.
    allocCompartment_ = &createCompartment("alloc", 2048, 1024);
    allocCompartment_->addMmioImport("revocation-bitmap", bitmapCap);
    const uint32_t mallocIndex = allocCompartment_->addExport(
        {"malloc",
         [this](CompartmentContext &ctx, ArgVec &args) {
             // dlmalloc's activation frame: saved registers and
             // locals spilled to the stack (moves the high-water
             // mark like compiled code would).
             const Capability frame = ctx.stackAlloc(96);
             if (!frame.tag()) {
                 return CallResult::faulted(
                     sim::TrapCause::CheriBoundsViolation);
             }
             ctx.mem.storeWord(frame, frame.base(), args[0].address());
             ctx.mem.storeWord(frame, frame.base() + 88, 0);
             const Capability result =
                 allocator_->malloc(args[0].address());
             return CallResult::ofCap(result);
         },
         /*interruptsDisabled=*/false});
    const uint32_t freeIndex = allocCompartment_->addExport(
        {"free",
         [this](CompartmentContext &ctx, ArgVec &args) {
             const Capability frame = ctx.stackAlloc(80);
             if (!frame.tag()) {
                 return CallResult::faulted(
                     sim::TrapCause::CheriBoundsViolation);
             }
             ctx.mem.storeWord(frame, frame.base(), 0);
             ctx.mem.storeWord(frame, frame.base() + 72, 0);
             const auto result = allocator_->free(args[0]);
             return CallResult::ofInt(static_cast<uint32_t>(result));
         },
         /*interruptsDisabled=*/false});
    const uint32_t claimIndex = allocCompartment_->addExport(
        {"claim",
         [this](CompartmentContext &ctx, ArgVec &args) {
             // Same shape as free: walk the chunk metadata, link a
             // claim record (spilled locals move the high-water mark).
             const Capability frame = ctx.stackAlloc(80);
             if (!frame.tag()) {
                 return CallResult::faulted(
                     sim::TrapCause::CheriBoundsViolation);
             }
             ctx.mem.storeWord(frame, frame.base(), 0);
             ctx.mem.storeWord(frame, frame.base() + 72, 0);
             const auto result = allocator_->claim(args[0]);
             return CallResult::ofInt(static_cast<uint32_t>(result));
         },
         /*interruptsDisabled=*/false});
    const uint32_t mallocQuotaIndex = allocCompartment_->addExport(
        {"malloc_quota",
         [this](CompartmentContext &ctx, ArgVec &args) {
             // Same dlmalloc frame as malloc, plus the unseal path.
             const Capability frame = ctx.stackAlloc(96);
             if (!frame.tag()) {
                 return CallResult::faulted(
                     sim::TrapCause::CheriBoundsViolation);
             }
             ctx.mem.storeWord(frame, frame.base(), args[1].address());
             ctx.mem.storeWord(frame, frame.base() + 88, 0);
             alloc::AllocResult res = alloc::AllocResult::Ok;
             const Capability result =
                 mallocSealed(args[0], args[1].address(), &res);
             CallResult out = CallResult::ofCap(result);
             out.second = Capability().withAddress(
                 static_cast<uint32_t>(res));
             return out;
         },
         /*interruptsDisabled=*/false});
    mallocImport_ = importOf(*allocCompartment_, mallocIndex);
    freeImport_ = importOf(*allocCompartment_, freeIndex);
    claimImport_ = importOf(*allocCompartment_, claimIndex);
    mallocQuotaImport_ = importOf(*allocCompartment_, mallocQuotaIndex);
}

Capability
Kernel::malloc(Thread &thread, uint32_t size)
{
    if (allocator_ == nullptr) {
        panic("kernel: malloc before initHeap");
    }
    ArgVec args = ArgVec::of({Capability().withAddress(size)});
    const CallResult result = call(thread, mallocImport_, args);
    return result.ok() ? result.value : Capability();
}

alloc::HeapAllocator::FreeResult
Kernel::free(Thread &thread, const Capability &ptr)
{
    if (allocator_ == nullptr) {
        panic("kernel: free before initHeap");
    }
    ArgVec args = ArgVec::of({ptr});
    const CallResult result = call(thread, freeImport_, args);
    if (!result.ok()) {
        return alloc::HeapAllocator::FreeResult::InvalidCap;
    }
    return static_cast<alloc::HeapAllocator::FreeResult>(
        result.value.address());
}

alloc::HeapAllocator::FreeResult
Kernel::claim(Thread &thread, const Capability &ptr)
{
    if (allocator_ == nullptr) {
        panic("kernel: claim before initHeap");
    }
    ArgVec args = ArgVec::of({ptr});
    const CallResult result = call(thread, claimImport_, args);
    if (!result.ok()) {
        return alloc::HeapAllocator::FreeResult::InvalidCap;
    }
    return static_cast<alloc::HeapAllocator::FreeResult>(
        result.value.address());
}

TokenLibrary &
Kernel::tokenLibrary()
{
    if (allocator_ == nullptr) {
        panic("kernel: token library before initHeap");
    }
    if (tokenLibrary_ == nullptr) {
        // Lazily bootstrapped on first use so systems that never mint
        // tokens keep their exact historical heap layout.
        tokenLibrary_ = std::make_unique<TokenLibrary>(
            guest_, *allocator_, loader_.sealerFor(cap::kOtypeToken));
        allocKey_ = tokenLibrary_->createKey();
    }
    return *tokenLibrary_;
}

uint32_t
Kernel::compartmentIndexOf(const Compartment &compartment) const
{
    for (size_t i = 0; i < compartments_.size(); ++i) {
        if (compartments_[i].get() == &compartment) {
            return static_cast<uint32_t>(i);
        }
    }
    panic("kernel: foreign compartment '%s' has no image index",
          compartment.name().c_str());
}

ObjectCapTable &
Kernel::objectCaps()
{
    if (objectCaps_ == nullptr) {
        objectCaps_ = std::make_unique<ObjectCapTable>(
            guest_, tokenLibrary(), *allocator_);
        objectCaps_->attachInjector(machine_.faultInjector());
        scheduler_->setTimeAuthority(objectCaps_.get());
        watchdog_.setMonitorAuthority(objectCaps_.get());
    }
    return *objectCaps_;
}

Capability
Kernel::mintTimeCap(Compartment &owner, uint64_t beginSlot,
                    uint64_t endSlot)
{
    return objectCaps().mintTime(compartmentIndexOf(owner), beginSlot,
                                 endSlot);
}

Capability
Kernel::mintChannelCap(Compartment &owner,
                       const Capability &queueHandle, bool canSend,
                       bool canReceive)
{
    return objectCaps().mintChannel(compartmentIndexOf(owner),
                                    queueHandle, canSend, canReceive);
}

Capability
Kernel::mintMonitorCap(Compartment &owner, Compartment &target)
{
    return objectCaps().mintMonitor(compartmentIndexOf(owner),
                                    compartmentIndexOf(target));
}

CapResult
Kernel::transferObjectCap(const Capability &token, Compartment &newOwner)
{
    return objectCaps().transfer(token, compartmentIndexOf(newOwner));
}

CapResult
Kernel::requestQuarantine(const Capability &monitorCap,
                          Compartment &target)
{
    return watchdog_.requestQuarantine(monitorCap, target,
                                       compartmentIndexOf(target),
                                       machine_.cycles());
}

CapResult
Kernel::requestRestart(const Capability &monitorCap, Compartment &target)
{
    return watchdog_.requestRestart(monitorCap, target,
                                    compartmentIndexOf(target));
}

Capability
Kernel::mintAllocatorCapability(Compartment &owner, uint64_t limitBytes)
{
    TokenLibrary &tokens = tokenLibrary();
    // The sealed record names the owner by position: a restore (same
    // deterministic boot) resolves it to the same compartment.
    const uint32_t ownerIndex = compartmentIndexOf(owner);
    const alloc::QuotaId id = allocator_->quota().create(limitBytes);
    // The record itself is kernel bookkeeping: unmetered.
    const Capability record = allocator_->malloc(kAllocCapRecordSize);
    if (!record.tag()) {
        panic("kernel: heap exhausted while minting an allocator "
              "capability at boot");
    }
    guest_.storeWord(record, record.base() + 0, kAllocCapMagic);
    guest_.storeWord(record, record.base() + 4, id);
    guest_.storeWord(record, record.base() + 8, ownerIndex);
    guest_.storeWord(record, record.base() + 12,
                     static_cast<uint32_t>(limitBytes));
    const Capability token = tokens.seal(allocKey_, record);
    if (!token.tag()) {
        panic("kernel: sealing an allocator capability failed");
    }
    return token;
}

Capability
Kernel::mallocSealed(const Capability &token, uint32_t size,
                     alloc::AllocResult *out)
{
    alloc::AllocResult scratch = alloc::AllocResult::Ok;
    alloc::AllocResult &res = out != nullptr ? *out : scratch;
    res = alloc::AllocResult::InvalidCapability;
    if (tokenLibrary_ == nullptr) {
        return Capability();
    }
    const Capability record = tokenLibrary_->unseal(allocKey_, token);
    if (!record.tag() ||
        guest_.loadWord(record, record.base()) != kAllocCapMagic) {
        return Capability();
    }
    const uint32_t quotaId = guest_.loadWord(record, record.base() + 4);
    const uint32_t ownerIndex =
        guest_.loadWord(record, record.base() + 8);
    if (ownerIndex >= compartments_.size() ||
        allocator_->quota().entry(quotaId) == nullptr) {
        return Capability();
    }
    Compartment &owner = *compartments_[ownerIndex];
    if (watchdog_.shouldReject(owner, machine_.cycles())) {
        // Quarantined for heap abuse: shed the request before it can
        // touch the allocator (or trigger a revocation sweep).
        res = alloc::AllocResult::Throttled;
        return Capability();
    }
    const Capability result =
        allocator_->mallocCharged(quotaId, size, &res);
    if (res == alloc::AllocResult::QuotaExceeded ||
        res == alloc::AllocResult::OutOfMemory) {
        watchdog_.recordAllocFailure(owner, res, machine_.cycles());
    }
    return result;
}

Capability
Kernel::mallocWith(Thread &thread, const Capability &allocCap,
                   uint32_t size, alloc::AllocResult *result)
{
    if (allocator_ == nullptr) {
        panic("kernel: mallocWith before initHeap");
    }
    ArgVec args =
        ArgVec::of({allocCap, Capability().withAddress(size)});
    const CallResult res = call(thread, mallocQuotaImport_, args);
    if (!res.ok()) {
        // The call itself failed (e.g. the allocator compartment is
        // quarantined): indistinguishable from throttling upstream.
        if (result != nullptr) {
            *result = alloc::AllocResult::Throttled;
        }
        return Capability();
    }
    if (result != nullptr) {
        *result = static_cast<alloc::AllocResult>(res.second.address());
    }
    return res.value;
}

void
Kernel::serialize(snapshot::Writer &w) const
{
    w.u32(static_cast<uint32_t>(threads_.size()));
    for (const auto &thread : threads_) {
        w.str(thread->name());
        thread->serialize(w);
    }
    w.u32(static_cast<uint32_t>(compartments_.size()));
    for (const auto &compartment : compartments_) {
        w.str(compartment->name());
        compartment->faultState().serialize(w);
    }
    watchdog_.serialize(w);
    switcher_.serialize(w);
    scheduler_->serialize(w);
    w.b(softwareRevoker_ != nullptr);
    if (softwareRevoker_ != nullptr) {
        softwareRevoker_->serialize(w);
    }
    w.b(hardwareRevoker_ != nullptr);
    if (hardwareRevoker_ != nullptr) {
        w.counter(hardwareRevoker_->timeoutKicks);
    }
    w.b(allocator_ != nullptr);
    if (allocator_ != nullptr) {
        allocator_->serialize(w);
    }
    w.b(tokenLibrary_ != nullptr);
    if (tokenLibrary_ != nullptr) {
        tokenLibrary_->serialize(w);
        w.cap(allocKey_);
    }
    w.b(objectCaps_ != nullptr);
    if (objectCaps_ != nullptr) {
        objectCaps_->serialize(w);
    }
}

bool
Kernel::deserialize(snapshot::Reader &r)
{
    if (r.u32() != threads_.size()) {
        return false;
    }
    for (auto &thread : threads_) {
        if (r.str() != thread->name() || !thread->deserialize(r)) {
            return false;
        }
    }
    if (r.u32() != compartments_.size()) {
        return false;
    }
    for (auto &compartment : compartments_) {
        if (r.str() != compartment->name() ||
            !compartment->faultState().deserialize(r)) {
            return false;
        }
    }
    if (!watchdog_.deserialize(r) || !switcher_.deserialize(r) ||
        !scheduler_->deserialize(r)) {
        return false;
    }
    if (r.b() != (softwareRevoker_ != nullptr)) {
        return false;
    }
    if (softwareRevoker_ != nullptr &&
        !softwareRevoker_->deserialize(r)) {
        return false;
    }
    if (r.b() != (hardwareRevoker_ != nullptr)) {
        return false;
    }
    if (hardwareRevoker_ != nullptr) {
        r.counter(hardwareRevoker_->timeoutKicks);
    }
    if (r.b() != (allocator_ != nullptr)) {
        return false;
    }
    if (allocator_ != nullptr && !allocator_->deserialize(r)) {
        return false;
    }
    if (r.b()) {
        // The saving run had minted tokens: their boxes and records
        // are already present in the restored heap image, so only the
        // host-side id counter and the kernel's key handle need to be
        // re-established — never re-mint (that would allocate).
        if (allocator_ == nullptr) {
            return false;
        }
        if (tokenLibrary_ == nullptr) {
            tokenLibrary_ = std::make_unique<TokenLibrary>(
                guest_, *allocator_,
                loader_.sealerFor(cap::kOtypeToken));
        }
        if (!tokenLibrary_->deserialize(r)) {
            return false;
        }
        allocKey_ = r.cap();
    } else if (tokenLibrary_ != nullptr) {
        return false;
    }
    if (r.b()) {
        // The saving boot created the object-cap table before the
        // snapshot; an identically booted kernel has it too (its
        // records and token boxes already live in the restored heap
        // image). A missing table means a structurally different
        // boot: refuse.
        if (objectCaps_ == nullptr || !objectCaps_->deserialize(r)) {
            return false;
        }
    } else if (objectCaps_ != nullptr) {
        return false;
    }
    return r.ok();
}

} // namespace cheriot::rtos
