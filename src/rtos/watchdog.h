/**
 * @file
 * Kernel watchdog: per-compartment fault budgets with
 * quarantine-and-restart (graceful degradation, paper §5).
 *
 * Error handlers and forced unwinds keep a single fault from taking
 * the system down, but a compartment that faults *persistently* —
 * corrupted state, a hot attack, broken hardware behind its driver —
 * would still burn the CPU in a crash loop. The watchdog closes that
 * hole: every callee fault is charged to the faulting compartment,
 * and when its faults-since-restart figure exhausts the budget the
 * compartment is quarantined. Calls into a quarantined compartment
 * fail fast with CompartmentQuarantined (no handler, no unwind
 * machinery, almost no cycles), so the rest of the system keeps its
 * schedule. After the restart delay the watchdog zeroes the
 * compartment's globals — a fresh boot image, since compartments
 * keep all mutable state in globals or on (switcher-zeroed) stacks —
 * and re-admits it with a full budget.
 */

#ifndef CHERIOT_RTOS_WATCHDOG_H
#define CHERIOT_RTOS_WATCHDOG_H

#include "alloc/alloc_result.h"
#include "rtos/compartment.h"
#include "rtos/guest_context.h"
#include "rtos/object_cap.h"
#include "util/stats.h"

namespace cheriot::rtos
{

class Watchdog
{
  public:
    struct Policy
    {
        /** Faults since the last restart before quarantine kicks in.
         * Generous by default: well-behaved systems that merely use
         * error returns as control flow must never trip it. */
        uint32_t faultBudget = 64;
        /** Quarantine duration before the compartment is restarted. */
        uint64_t restartDelayCycles = 4096;
        /** Quota-exceeded / heap-exhausted outcomes since the last
         * restart before the compartment is treated as a resource
         * abuser and quarantined. Generous: a well-behaved caller
         * that occasionally sees OutOfMemory and sheds load never
         * trips it; a malloc storm does within one burst. */
        uint32_t allocFailureBudget = 32;
    };

    /** Modelled instruction cost of the restart path (zeroing is
     * charged separately, at bus rate, by the zero itself). */
    static constexpr uint32_t kRestartInstructions = 150;

    explicit Watchdog(GuestContext &guest) : guest_(guest)
    {
        stats_.registerCounter("faultsObserved", faultsObserved);
        stats_.registerCounter("quarantines", quarantines);
        stats_.registerCounter("restarts", restarts);
        stats_.registerCounter("rejectedCalls", rejectedCalls);
        stats_.registerCounter("allocFailuresObserved",
                               allocFailuresObserved);
        stats_.registerCounter("overloadQuarantines",
                               overloadQuarantines);
        stats_.registerCounter("monitorActionsGranted",
                               monitorActionsGranted);
        stats_.registerCounter("monitorActionsRefused",
                               monitorActionsRefused);
    }

    const Policy &policy() const { return policy_; }
    void setPolicy(const Policy &policy) { policy_ = policy; }

    /**
     * Charge a callee fault to @p compartment. Returns true when this
     * fault exhausted the budget and the compartment is now
     * quarantined (the switcher then skips its error handler).
     */
    bool recordFault(Compartment &compartment, sim::TrapCause cause,
                     uint64_t nowCycle);

    /**
     * Charge a failed (quota-exceeded or out-of-memory) allocation
     * to @p compartment. Returns true when this failure exhausted
     * the alloc-failure budget and the compartment is now
     * quarantined — the overload analogue of recordFault.
     */
    bool recordAllocFailure(Compartment &compartment,
                            alloc::AllocResult result,
                            uint64_t nowCycle);

    /**
     * Call gate: true if a call into @p compartment must be rejected.
     * Performs a due restart as a side effect — quarantine release is
     * lazy, paid for by the first caller after the delay.
     */
    bool shouldReject(Compartment &compartment, uint64_t nowCycle);

    /** Budget remaining before quarantine (0 when quarantined). */
    uint32_t budgetRemaining(const Compartment &compartment) const;

    /** Zero globals and re-admit (also available to tests). */
    void restart(Compartment &compartment);

    /** @name Monitor object capabilities
     * With a MonitorAuthority wired, *requested* quarantines and
     * restarts — the supervisory actions a compartment may take over
     * another — are gated on a live Monitor capability naming the
     * target. Refusals are typed (InvalidCap / Revoked /
     * PermViolation), so revoking the Monitor mid-recovery degrades
     * the supervisor's authority without faulting anyone; the
     * internal budget-driven paths above stay ambient kernel
     * machinery. Without an authority wired, every request is
     * refused InvalidCap — monitor actions are opt-in. @{ */
    void setMonitorAuthority(MonitorAuthority *authority)
    {
        monitorAuthority_ = authority;
    }
    /** Quarantine @p target (index @p targetIndex) until the policy's
     * restart delay elapses, on the authority of @p monitorCap. */
    CapResult requestQuarantine(const cap::Capability &monitorCap,
                                Compartment &target,
                                uint32_t targetIndex,
                                uint64_t nowCycle);
    /** Restart @p target immediately on the authority of
     * @p monitorCap. */
    CapResult requestRestart(const cap::Capability &monitorCap,
                             Compartment &target, uint32_t targetIndex);
    /** @} */

    /** @name Snapshot state (policy + counters; per-compartment fault
     * state is serialized with each Compartment) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    Counter faultsObserved;
    Counter quarantines;
    Counter restarts;
    Counter rejectedCalls;
    Counter allocFailuresObserved; ///< Failed allocations charged.
    Counter overloadQuarantines;   ///< Quarantines for heap abuse.
    Counter monitorActionsGranted; ///< Monitor-capability actions run.
    Counter monitorActionsRefused; ///< Typed monitor refusals.

    StatGroup &stats() { return stats_; }

  private:
    GuestContext &guest_;
    Policy policy_;
    MonitorAuthority *monitorAuthority_ = nullptr;
    StatGroup stats_{"watchdog"};
};

} // namespace cheriot::rtos

#endif // CHERIOT_RTOS_WATCHDOG_H
