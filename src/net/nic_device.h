/**
 * @file
 * Simulated NIC MMIO device with RX/TX descriptor rings and DMA into
 * tagged SRAM.
 *
 * The device follows the classic descriptor-ring contract (e1000 /
 * riscv-vp++ style): the driver posts buffers by writing descriptors
 * into SRAM and advancing a free-running tail register; the device
 * consumes free slots in order, DMAs the payload, writes the
 * descriptor back with a DONE flag and advances its head register.
 * Head == tail means no free slot: the packet is dropped and counted —
 * that drop counter is the backpressure signal the stack feeds into
 * the admission-gate machinery.
 *
 * DMA goes through TaggedMemory's *data* write ports, so every landed
 * payload byte clears the covering capability micro-tag — the paper's
 * §4 tagged-bus rule falls out of the memory model for free: a device
 * can overwrite a capability but can never forge or preserve one.
 *
 * The device only ever touches SRAM inside the driver-programmed DMA
 * window [DMA_BASE, DMA_BASE + DMA_SIZE); descriptors or buffers
 * pointing elsewhere are refused and counted as errors, modelling an
 * IOMMU-less SoC whose bus fabric gates the DMA master.
 */

#ifndef CHERIOT_NET_NIC_DEVICE_H
#define CHERIOT_NET_NIC_DEVICE_H

#include "mem/mmio.h"
#include "mem/tagged_memory.h"

#include <cstdint>
#include <functional>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::fault
{
class FaultInjector;
}

namespace cheriot::net
{

class NicDevice : public mem::MmioDevice
{
  public:
    /** @name Register map (byte offsets within the MMIO window) @{ */
    static constexpr uint32_t kRegCtrl = 0x00;
    static constexpr uint32_t kRegIrqStatus = 0x04; ///< Write-1-to-clear.
    static constexpr uint32_t kRegIrqEnable = 0x08;
    static constexpr uint32_t kRegRxRingBase = 0x0c;
    static constexpr uint32_t kRegRxRingCount = 0x10;
    static constexpr uint32_t kRegRxHead = 0x14; ///< RO: device produce.
    static constexpr uint32_t kRegRxTail = 0x18; ///< Driver post marker.
    static constexpr uint32_t kRegDmaBase = 0x1c;
    static constexpr uint32_t kRegDmaSize = 0x20;
    static constexpr uint32_t kRegTxRingBase = 0x24;
    static constexpr uint32_t kRegTxRingCount = 0x28;
    static constexpr uint32_t kRegTxHead = 0x2c; ///< Driver post marker.
    static constexpr uint32_t kRegTxTail = 0x30; ///< RO: device consume.
    static constexpr uint32_t kRegTxKick = 0x34; ///< WO: process TX ring.
    /* Read-only counters. */
    static constexpr uint32_t kRegRxPackets = 0x40;
    static constexpr uint32_t kRegRxBytesLo = 0x44;
    static constexpr uint32_t kRegRxBytesHi = 0x48;
    static constexpr uint32_t kRegRxDrops = 0x4c;
    static constexpr uint32_t kRegRxErrors = 0x50;
    static constexpr uint32_t kRegTxPackets = 0x54;
    static constexpr uint32_t kRegTxBytesLo = 0x58;
    static constexpr uint32_t kRegTxBytesHi = 0x5c;
    /** Running XOR over transmitted payload words (the "wire"). */
    static constexpr uint32_t kRegTxChecksum = 0x60;
    /** @} */

    /** @name CTRL bits @{ */
    static constexpr uint32_t kCtrlRxEnable = 1u << 0;
    static constexpr uint32_t kCtrlTxEnable = 1u << 1;
    /** @} */

    /** @name IRQ_STATUS bits @{ */
    static constexpr uint32_t kIrqRxPacket = 1u << 0;
    static constexpr uint32_t kIrqRxOverflow = 1u << 1;
    static constexpr uint32_t kIrqTxDone = 1u << 2;
    static constexpr uint32_t kIrqRxError = 1u << 3;
    /** @} */

    /** @name Descriptor layout: 8 bytes in SRAM.
     * word0 = buffer address; word1 = len/capacity (bits 15:0) |
     * flags. The driver posts capacity with flags clear; the device
     * writes back the landed length with DONE (and ERROR on refusal).
     * @{ */
    static constexpr uint32_t kDescBytes = 8;
    static constexpr uint32_t kDescDone = 1u << 31;
    static constexpr uint32_t kDescError = 1u << 30;
    static constexpr uint32_t kDescLenMask = 0xffff;
    /** @} */

    explicit NicDevice(mem::TaggedMemory &sram) : sram_(sram) {}

    std::string name() const override { return "nic"; }
    uint32_t read32(uint32_t offset) override;
    void write32(uint32_t offset, uint32_t value) override;

    /**
     * Host-side packet arrival: DMA @p bytes of @p frame into the
     * next free RX descriptor's buffer. Returns false when the packet
     * was dropped (RX disabled or ring full — backpressure) or
     * refused (bad descriptor); counters and IRQs record which.
     */
    bool deliver(const uint8_t *frame, uint32_t bytes);

    /** Level-triggered interrupt line (status AND enable). */
    bool interruptPending() const
    {
        return (irqStatus_ & irqEnable_) != 0;
    }

    /** Fault campaigns corrupt descriptors/payloads mid-delivery. */
    void setFaultInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /**
     * Where transmitted frames go. Without a sink the wire is the
     * checksum accumulator alone (the single-machine stack); with one
     * (a fleet's virtual switch), processTx also hands every frame's
     * payload bytes to the sink. The checksum accumulator still runs —
     * the wire-conservation audit is sink-independent.
     */
    using TxSink = std::function<void(const uint8_t *, uint32_t)>;
    void setTxSink(TxSink sink) { txSink_ = std::move(sink); }

    /** @name Host-side introspection (tests, fault targeting) @{ */
    uint32_t rxRingBase() const { return rxRingBase_; }
    uint32_t rxRingCount() const { return rxRingCount_; }
    uint32_t lastRxAddr() const { return lastRxAddr_; }
    uint32_t lastRxBytes() const { return lastRxBytes_; }
    uint64_t rxPackets() const { return rxPackets_; }
    uint64_t rxDrops() const { return rxDrops_; }
    uint64_t rxErrors() const { return rxErrors_; }
    uint64_t txPackets() const { return txPackets_; }
    uint32_t txChecksum() const { return txChecksum_; }
    /** @} */

    /** @name Snapshot state (all registers and counters) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    /** Entirely inside the DMA window and backed by SRAM? */
    bool dmaOk(uint32_t addr, uint32_t bytes) const;
    void raise(uint32_t irqBits) { irqStatus_ |= irqBits; }
    /** Walk the TX ring from tail to head, transmitting each posted
     * descriptor onto the modelled wire (checksum accumulator). */
    void processTx();

    mem::TaggedMemory &sram_;
    fault::FaultInjector *injector_ = nullptr;
    TxSink txSink_;

    uint32_t ctrl_ = 0;
    uint32_t irqStatus_ = 0;
    uint32_t irqEnable_ = 0;
    uint32_t rxRingBase_ = 0;
    uint32_t rxRingCount_ = 0;
    uint32_t rxHead_ = 0; ///< Free-running filled-descriptor count.
    uint32_t rxTail_ = 0; ///< Free-running posted-descriptor count.
    uint32_t dmaBase_ = 0;
    uint32_t dmaSize_ = 0;
    uint32_t txRingBase_ = 0;
    uint32_t txRingCount_ = 0;
    uint32_t txHead_ = 0; ///< Free-running posted-descriptor count.
    uint32_t txTail_ = 0; ///< Free-running transmitted count.

    uint64_t rxPackets_ = 0;
    uint64_t rxBytes_ = 0;
    uint64_t rxDrops_ = 0;
    uint64_t rxErrors_ = 0;
    uint64_t txPackets_ = 0;
    uint64_t txBytes_ = 0;
    uint32_t txChecksum_ = 0;

    uint32_t lastRxAddr_ = 0;
    uint32_t lastRxBytes_ = 0;
};

} // namespace cheriot::net

#endif // CHERIOT_NET_NIC_DEVICE_H
