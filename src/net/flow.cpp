#include "net/flow.h"

#include "fault/fault_injector.h"
#include "rtos/kernel.h"
#include "sim/machine.h"
#include "snapshot/serializer.h"

namespace cheriot::net
{

using cap::Capability;
using rtos::ArgVec;
using rtos::CallResult;
using rtos::CompartmentContext;

const char *
closeReasonName(CloseReason reason)
{
    switch (reason) {
    case CloseReason::None:
        return "none";
    case CloseReason::PeerClose:
        return "peer-close";
    case CloseReason::Timeout:
        return "timeout";
    case CloseReason::Reset:
        return "reset";
    case CloseReason::StaleEpoch:
        return "stale-epoch";
    }
    return "?";
}

FlowCompartment
addFlowCompartment(rtos::Kernel &kernel)
{
    FlowCompartment parts;
    parts.flow = &kernel.createCompartment("flow");
    return parts;
}

FlowManager::FlowManager(rtos::Kernel &kernel, NetStack &stack,
                         const FlowCompartment &parts, FlowConfig config)
    : kernel_(kernel), stack_(stack), compartment_(*parts.flow),
      config_(config)
{
    if (config_.window == 0) {
        config_.window = 1;
    }
    if (config_.creditEvery == 0) {
        config_.creditEvery = 1;
    }
    if (config_.payloadWords < 4) {
        config_.payloadWords = 4;
    }
}

void
FlowManager::connect(const std::vector<FlowConsumer> &consumers)
{
    consumers_ = consumers;
    const uint32_t deliverIndex = compartment_.addExport(
        {"deliver",
         [this](CompartmentContext &ctx, ArgVec &args) {
             return deliverBody(ctx, args);
         },
         /*interruptsDisabled=*/false});
    deliverImport_ = {&compartment_, deliverIndex};
    // Audit-manifest wiring: reassembled messages fan out from the
    // flow compartment to every registered consumer entry.
    for (const auto &consumer : consumers_) {
        if (consumer.import.valid()) {
            compartment_.addEntryImport(*consumer.import.compartment,
                                        consumer.import.target().name);
        }
    }
}

uint32_t
FlowManager::mix(uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352du;
    x ^= x >> 15;
    x *= 0x846ca68bu;
    x ^= x >> 16;
    return x;
}

uint32_t
FlowManager::canaryOf(const Flow &f) const
{
    return mix(f.peer ^ (static_cast<uint32_t>(f.id) << 16) ^
               (static_cast<uint32_t>(f.cls) << 8) ^
               static_cast<uint32_t>(f.state) ^ 0x5F10A7u);
}

bool
FlowManager::validate(Flow &f)
{
    if (injector_ != nullptr) {
        uint32_t param = 0;
        if (injector_->flowStateTouched(&param)) {
            // The fault model: a stray store scrambles the entry. The
            // canary (identity + state) and the credit invariant are
            // the detection surface.
            f.state = static_cast<State>(param & 0xff);
            f.id = static_cast<uint16_t>(f.id ^ (param >> 8));
            f.credited ^= param;
        }
    }
    const bool stateOk = f.state == State::SynSent ||
                         f.state == State::Established ||
                         f.state == State::FinSent;
    return f.canary == canaryOf(f) && stateOk && f.credited <= f.sent;
}

void
FlowManager::resetFlow(std::map<uint32_t, Flow> &table, uint32_t peer,
                       CloseReason reason)
{
    const auto it = table.find(peer);
    if (it == table.end()) {
        return;
    }
    queueSegment(peer, FlowKind::Reset, it->second.cls, it->second.id,
                 static_cast<uint16_t>(reason), /*unreliable=*/true);
    if (&table == &txFlows_) {
        lastClose_[peer] = static_cast<uint8_t>(reason);
    }
    table.erase(it);
}

void
FlowManager::queueSegment(uint32_t dst, FlowKind kind, uint8_t cls,
                          uint16_t id, uint16_t arg, bool unreliable)
{
    if (kind == FlowKind::Reset) {
        resetsSent_++;
    }
    pendingSegments_.push_back({dst, kind, cls, id, arg, unreliable});
}

bool
FlowManager::sendSegment(rtos::Thread &thread, const PendingSegment &seg)
{
    const uint32_t w0 = flowHeaderWord(static_cast<uint8_t>(seg.kind),
                                       seg.cls);
    const uint32_t w1 = (static_cast<uint32_t>(seg.id) << 16) | seg.arg;
    if (seg.unreliable) {
        return stack_.sendUnreliable(thread, seg.dst, 4, w0, w1);
    }
    return stack_.sendMessage(thread, seg.dst, 4, w0, w1);
}

FlowManager::OpenResult
FlowManager::open(rtos::Thread &thread, uint32_t dstMac, FlowClass cls)
{
    if (txFlows_.count(dstMac) != 0) {
        return OpenResult::AlreadyOpen;
    }
    if (txFlows_.size() >= config_.maxFlows) {
        return OpenResult::TableFull;
    }
    const uint16_t id = static_cast<uint16_t>(nextFlowSeq_++);
    const uint32_t w0 = flowHeaderWord(
        static_cast<uint8_t>(FlowKind::Syn), static_cast<uint8_t>(cls));
    const uint32_t w1 = (static_cast<uint32_t>(id) << 16) |
                        (config_.epoch & 0xffffu);
    if (!stack_.sendMessage(thread, dstMac, 4, w0, w1)) {
        return OpenResult::Refused;
    }
    const uint64_t now = kernel_.machine().cycles();
    Flow f;
    f.peer = dstMac;
    f.id = id;
    f.cls = static_cast<uint8_t>(cls);
    f.state = State::SynSent;
    f.lastHeard = now;
    f.lastSent = now;
    seal(f);
    txFlows_[dstMac] = f;
    opens_++;
    return OpenResult::Ok;
}

FlowManager::SendResult
FlowManager::send(rtos::Thread &thread, uint32_t dstMac, uint32_t w2,
                  uint32_t w3)
{
    const auto it = txFlows_.find(dstMac);
    if (it == txFlows_.end()) {
        return SendResult::NoFlow;
    }
    Flow &f = it->second;
    if (!validate(f)) {
        corruptResets_++;
        resetFlow(txFlows_, dstMac, CloseReason::Reset);
        return SendResult::Refused;
    }
    if (f.state == State::SynSent) {
        return SendResult::NotEstablished;
    }
    if (f.state != State::Established) {
        return SendResult::Refused;
    }
    if (f.sent - f.credited >= f.peerWindow) {
        windowStalls_++;
        return SendResult::WindowClosed;
    }
    const uint32_t w0 = flowHeaderWord(
        static_cast<uint8_t>(FlowKind::Data), f.cls);
    const uint32_t w1 = (static_cast<uint32_t>(f.id) << 16) |
                        (f.sent & 0xffffu);
    if (!stack_.sendMessage(thread, dstMac, config_.payloadWords, w0,
                            w1, w2, w3)) {
        return SendResult::Refused;
    }
    f.sent++;
    f.lastSent = kernel_.machine().cycles();
    segmentsSent_++;
    return SendResult::Ok;
}

void
FlowManager::close(rtos::Thread &thread, uint32_t dstMac)
{
    const auto it = txFlows_.find(dstMac);
    if (it == txFlows_.end()) {
        return;
    }
    Flow &f = it->second;
    if (f.state == State::Established) {
        PendingSegment fin{dstMac, FlowKind::Fin, f.cls, f.id,
                           static_cast<uint16_t>(CloseReason::PeerClose),
                           /*unreliable=*/false};
        if (sendSegment(thread, fin)) {
            f.state = State::FinSent;
            seal(f);
            return; // State drops when the FIN-ACK arrives.
        }
    }
    // Not yet established (or the FIN was refused): drop locally.
    lastClose_[dstMac] = static_cast<uint8_t>(CloseReason::PeerClose);
    txFlows_.erase(it);
}

void
FlowManager::service(rtos::Thread &thread, bool emitKeepalives)
{
    // Flush replies queued inside the deliver body; handshake and
    // credit progress gates on this. Each queued segment gets one
    // attempt per pass — a reliable segment the ARQ backlog refuses
    // waits for the next pass, an unreliable one is dropped (that is
    // its contract).
    size_t attempts = pendingSegments_.size();
    while (attempts-- > 0 && !pendingSegments_.empty()) {
        const PendingSegment seg = pendingSegments_.front();
        pendingSegments_.pop_front();
        if (stack_.deviceQuarantined(seg.dst)) {
            // Shunned peer: the segment has no one to go to, and
            // re-queueing it would pin the reply queue forever.
            continue;
        }
        if (!sendSegment(thread, seg) && !seg.unreliable) {
            pendingSegments_.push_back(seg);
        }
    }

    const uint64_t now = kernel_.machine().cycles();
    for (auto &entry : txFlows_) {
        Flow &f = entry.second;
        if (emitKeepalives && f.state == State::Established &&
            now - f.lastSent >= config_.keepaliveIdleCycles) {
            const PendingSegment ka{entry.first, FlowKind::Keepalive,
                                    f.cls, f.id, 0,
                                    /*unreliable=*/true};
            if (sendSegment(thread, ka)) {
                keepalivesSent_++;
                f.lastSent = now;
            }
        }
    }

    if (config_.timeoutCycles == 0) {
        return;
    }
    std::vector<uint32_t> expired;
    for (const auto &entry : txFlows_) {
        if (now - entry.second.lastHeard > config_.timeoutCycles) {
            expired.push_back(entry.first);
        }
    }
    for (const uint32_t peer : expired) {
        timeouts_++;
        resetFlow(txFlows_, peer, CloseReason::Timeout);
    }
    expired.clear();
    for (const auto &entry : rxFlows_) {
        if (now - entry.second.lastHeard > config_.timeoutCycles) {
            expired.push_back(entry.first);
        }
    }
    for (const uint32_t peer : expired) {
        timeouts_++;
        resetFlow(rxFlows_, peer, CloseReason::Timeout);
    }
}

CallResult
FlowManager::deliverBody(CompartmentContext &ctx, ArgVec &args)
{
    // Flow activation frame: parse scratch on the chopped stack.
    const Capability frame = ctx.stackAlloc(64);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    const Capability payload = args[0];
    const uint32_t len = args[1].address();
    // Header + flow header word + argument word + checksum.
    const uint32_t minLen = (kFleetHeaderWords + 2 + 1) * 4;
    if (!payload.tag() || len < minLen || payload.length() < len) {
        nonFlowDrops_++;
        return CallResult::ofInt(0);
    }
    const uint32_t base = payload.base();
    const uint32_t src = ctx.mem.loadWord(payload, base + 4);
    const uint32_t w0 =
        ctx.mem.loadWord(payload, base + kFleetHeaderBytes);
    if (!isFlowHeaderWord(w0)) {
        // Raw (non-flow) data reaching an application-tier node:
        // counted and contained, never handed to stream consumers.
        nonFlowDrops_++;
        return CallResult::ofInt(0);
    }
    const uint8_t kind = static_cast<uint8_t>(w0 >> 8);
    const uint8_t cls = static_cast<uint8_t>(w0);
    const uint32_t w1 =
        ctx.mem.loadWord(payload, base + kFleetHeaderBytes + 4);
    const uint16_t id = static_cast<uint16_t>(w1 >> 16);
    const uint16_t arg = static_cast<uint16_t>(w1);
    const uint64_t now = ctx.kernel.machine().cycles();

    switch (static_cast<FlowKind>(kind)) {
    case FlowKind::Syn: {
        const auto it = rxFlows_.find(src);
        if (it != rxFlows_.end()) {
            Flow &f = it->second;
            if (!validate(f)) {
                corruptResets_++;
                resetFlow(rxFlows_, src, CloseReason::Reset);
                // Fresh accept below: the corrupted entry is gone.
            } else if (f.id == id) {
                // Duplicate SYN for the live flow: re-ack, no state.
                f.lastHeard = now;
                queueSegment(src, FlowKind::SynAck, f.cls, f.id,
                             static_cast<uint16_t>(config_.window),
                             /*unreliable=*/false);
                return CallResult::ofInt(1);
            } else if ((static_cast<uint16_t>(
                            arg - (f.peerEpoch & 0xffffu)) &
                        0x8000u) != 0) {
                // SYN from an *older* incarnation than the flow on
                // record: a replay. Refuse with a typed reason and
                // keep the live flow.
                staleEpochResets_++;
                queueSegment(src, FlowKind::Reset, cls, id,
                             static_cast<uint16_t>(
                                 CloseReason::StaleEpoch),
                             /*unreliable=*/true);
                return CallResult::ofInt(0);
            } else {
                // Same/newer incarnation, new flow id: the peer
                // reopened; the old receive state is superseded.
                rxFlows_.erase(it);
            }
        }
        if (rxFlows_.size() >= config_.maxFlows) {
            queueSegment(src, FlowKind::Reset, cls, id,
                         static_cast<uint16_t>(CloseReason::Reset),
                         /*unreliable=*/true);
            return CallResult::ofInt(0);
        }
        Flow f;
        f.peer = src;
        f.id = id;
        f.cls = cls;
        f.state = State::Established;
        f.peerEpoch = arg;
        f.lastHeard = now;
        f.lastSent = now;
        seal(f);
        rxFlows_[src] = f;
        accepts_++;
        queueSegment(src, FlowKind::SynAck, cls, id,
                     static_cast<uint16_t>(config_.window),
                     /*unreliable=*/false);
        return CallResult::ofInt(1);
    }
    case FlowKind::SynAck: {
        const auto it = txFlows_.find(src);
        if (it == txFlows_.end() || it->second.id != id) {
            unknownFlowResets_++;
            queueSegment(src, FlowKind::Reset, cls, id,
                         static_cast<uint16_t>(CloseReason::Reset),
                         /*unreliable=*/true);
            return CallResult::ofInt(0);
        }
        Flow &f = it->second;
        if (!validate(f)) {
            corruptResets_++;
            resetFlow(txFlows_, src, CloseReason::Reset);
            return CallResult::ofInt(0);
        }
        f.lastHeard = now;
        if (f.state == State::SynSent) {
            f.state = State::Established;
            f.peerWindow = arg != 0 ? arg : 1;
            seal(f);
        }
        return CallResult::ofInt(1);
    }
    case FlowKind::Data: {
        const auto it = rxFlows_.find(src);
        if (it == rxFlows_.end() || it->second.id != id) {
            // Data without a handshake (or for a torn-down flow):
            // refused with a typed reset, never delivered.
            unknownFlowResets_++;
            queueSegment(src, FlowKind::Reset, cls, id,
                         static_cast<uint16_t>(CloseReason::Reset),
                         /*unreliable=*/true);
            return CallResult::ofInt(0);
        }
        Flow &f = it->second;
        if (!validate(f)) {
            corruptResets_++;
            resetFlow(rxFlows_, src, CloseReason::Reset);
            return CallResult::ofInt(0);
        }
        f.lastHeard = now;
        f.delivered++;
        f.creditCountdown++;
        if (f.creditCountdown >= config_.creditEvery) {
            queueSegment(src, FlowKind::Window, f.cls, f.id,
                         static_cast<uint16_t>(f.creditCountdown),
                         /*unreliable=*/false);
            creditsSent_++;
            f.creditCountdown = 0;
        }
        segmentsDelivered_++;
        for (const auto &consumer : consumers_) {
            ArgVec consumerArgs = ArgVec::of(
                {payload, Capability().withAddress(len)});
            const CallResult result = ctx.kernel.call(
                ctx.thread, consumer.import, consumerArgs);
            if (!result.ok()) {
                return result;
            }
        }
        return CallResult::ofInt(1);
    }
    case FlowKind::Window: {
        const auto it = txFlows_.find(src);
        if (it == txFlows_.end() || it->second.id != id) {
            return CallResult::ofInt(0); // Credit for a gone flow.
        }
        Flow &f = it->second;
        if (!validate(f)) {
            corruptResets_++;
            resetFlow(txFlows_, src, CloseReason::Reset);
            return CallResult::ofInt(0);
        }
        f.lastHeard = now;
        f.credited += arg;
        creditsReceived_++;
        return CallResult::ofInt(1);
    }
    case FlowKind::Fin: {
        const auto it = rxFlows_.find(src);
        if (it != rxFlows_.end() && it->second.id == id) {
            rxFlows_.erase(it);
            peerCloses_++;
        }
        // Echo the FIN-ACK even without state: closes are idempotent.
        queueSegment(src, FlowKind::FinAck, cls, id, arg,
                     /*unreliable=*/false);
        return CallResult::ofInt(1);
    }
    case FlowKind::FinAck: {
        const auto it = txFlows_.find(src);
        if (it != txFlows_.end() && it->second.id == id &&
            it->second.state == State::FinSent) {
            lastClose_[src] =
                static_cast<uint8_t>(CloseReason::PeerClose);
            txFlows_.erase(it);
        }
        return CallResult::ofInt(1);
    }
    case FlowKind::Reset: {
        resetsReceived_++;
        const auto tt = txFlows_.find(src);
        if (tt != txFlows_.end() && tt->second.id == id) {
            lastClose_[src] = static_cast<uint8_t>(
                arg == static_cast<uint16_t>(CloseReason::StaleEpoch)
                    ? CloseReason::StaleEpoch
                    : CloseReason::Reset);
            txFlows_.erase(tt);
            return CallResult::ofInt(1);
        }
        const auto rt = rxFlows_.find(src);
        if (rt != rxFlows_.end() && rt->second.id == id) {
            rxFlows_.erase(rt);
        }
        return CallResult::ofInt(1);
    }
    case FlowKind::Keepalive: {
        const auto tt = txFlows_.find(src);
        if (tt != txFlows_.end() && tt->second.id == id) {
            // The echo coming back: liveness evidence, no reply
            // (replying would ping-pong forever).
            tt->second.lastHeard = now;
            keepalivesSeen_++;
            return CallResult::ofInt(1);
        }
        const auto rt = rxFlows_.find(src);
        if (rt != rxFlows_.end() && rt->second.id == id) {
            rt->second.lastHeard = now;
            keepalivesSeen_++;
            queueSegment(src, FlowKind::Keepalive, cls, id, 0,
                         /*unreliable=*/true);
        }
        return CallResult::ofInt(1);
    }
    }
    // Flow magic with a nonsense kind: protocol violation.
    unknownFlowResets_++;
    queueSegment(src, FlowKind::Reset, cls, id,
                 static_cast<uint16_t>(CloseReason::Reset),
                 /*unreliable=*/true);
    return CallResult::ofInt(0);
}

bool
FlowManager::txKnown(uint32_t dstMac) const
{
    return txFlows_.count(dstMac) != 0;
}

bool
FlowManager::txEstablished(uint32_t dstMac) const
{
    const auto it = txFlows_.find(dstMac);
    return it != txFlows_.end() &&
           it->second.state == State::Established;
}

uint32_t
FlowManager::txInflight(uint32_t dstMac) const
{
    const auto it = txFlows_.find(dstMac);
    return it == txFlows_.end() ? 0
                                : it->second.sent - it->second.credited;
}

bool
FlowManager::rxKnown(uint32_t srcMac) const
{
    return rxFlows_.count(srcMac) != 0;
}

CloseReason
FlowManager::lastClose(uint32_t dstMac) const
{
    const auto it = lastClose_.find(dstMac);
    return it == lastClose_.end()
               ? CloseReason::None
               : static_cast<CloseReason>(it->second);
}

void
FlowManager::serialize(snapshot::Writer &w) const
{
    const auto putFlow = [&w](const Flow &f) {
        w.u32(f.peer);
        w.u32(f.id);
        w.u32(f.cls);
        w.u32(static_cast<uint32_t>(f.state));
        w.u32(f.peerEpoch);
        w.u32(f.peerWindow);
        w.u32(f.sent);
        w.u32(f.credited);
        w.u32(f.delivered);
        w.u32(f.creditCountdown);
        w.u64(f.lastHeard);
        w.u64(f.lastSent);
        w.u32(f.canary);
    };
    w.u32(nextFlowSeq_);
    w.u32(static_cast<uint32_t>(txFlows_.size()));
    for (const auto &entry : txFlows_) {
        w.u32(entry.first);
        putFlow(entry.second);
    }
    w.u32(static_cast<uint32_t>(rxFlows_.size()));
    for (const auto &entry : rxFlows_) {
        w.u32(entry.first);
        putFlow(entry.second);
    }
    w.u32(static_cast<uint32_t>(lastClose_.size()));
    for (const auto &entry : lastClose_) {
        w.u32(entry.first);
        w.u32(entry.second);
    }
    w.u32(static_cast<uint32_t>(pendingSegments_.size()));
    for (const auto &seg : pendingSegments_) {
        w.u32(seg.dst);
        w.u32(static_cast<uint32_t>(seg.kind));
        w.u32(seg.cls);
        w.u32(seg.id);
        w.u32(seg.arg);
        w.b(seg.unreliable);
    }
    w.u64(opens_);
    w.u64(accepts_);
    w.u64(segmentsSent_);
    w.u64(segmentsDelivered_);
    w.u64(windowStalls_);
    w.u64(creditsSent_);
    w.u64(creditsReceived_);
    w.u64(keepalivesSent_);
    w.u64(keepalivesSeen_);
    w.u64(timeouts_);
    w.u64(resetsSent_);
    w.u64(resetsReceived_);
    w.u64(staleEpochResets_);
    w.u64(unknownFlowResets_);
    w.u64(corruptResets_);
    w.u64(nonFlowDrops_);
    w.u64(peerCloses_);
}

bool
FlowManager::deserialize(snapshot::Reader &r)
{
    const auto getFlow = [&r]() {
        Flow f;
        f.peer = r.u32();
        f.id = static_cast<uint16_t>(r.u32());
        f.cls = static_cast<uint8_t>(r.u32());
        f.state = static_cast<State>(r.u32());
        f.peerEpoch = r.u32();
        f.peerWindow = r.u32();
        f.sent = r.u32();
        f.credited = r.u32();
        f.delivered = r.u32();
        f.creditCountdown = r.u32();
        f.lastHeard = r.u64();
        f.lastSent = r.u64();
        f.canary = r.u32();
        return f;
    };
    nextFlowSeq_ = r.u32();
    txFlows_.clear();
    const uint32_t txCount = r.u32();
    for (uint32_t i = 0; i < txCount && r.ok(); ++i) {
        const uint32_t key = r.u32();
        txFlows_[key] = getFlow();
    }
    rxFlows_.clear();
    const uint32_t rxCount = r.u32();
    for (uint32_t i = 0; i < rxCount && r.ok(); ++i) {
        const uint32_t key = r.u32();
        rxFlows_[key] = getFlow();
    }
    lastClose_.clear();
    const uint32_t closeCount = r.u32();
    for (uint32_t i = 0; i < closeCount && r.ok(); ++i) {
        const uint32_t key = r.u32();
        lastClose_[key] = static_cast<uint8_t>(r.u32());
    }
    pendingSegments_.clear();
    const uint32_t pendingCount = r.u32();
    for (uint32_t i = 0; i < pendingCount && r.ok(); ++i) {
        PendingSegment seg;
        seg.dst = r.u32();
        seg.kind = static_cast<FlowKind>(r.u32());
        seg.cls = static_cast<uint8_t>(r.u32());
        seg.id = static_cast<uint16_t>(r.u32());
        seg.arg = static_cast<uint16_t>(r.u32());
        seg.unreliable = r.b();
        pendingSegments_.push_back(seg);
    }
    opens_ = r.u64();
    accepts_ = r.u64();
    segmentsSent_ = r.u64();
    segmentsDelivered_ = r.u64();
    windowStalls_ = r.u64();
    creditsSent_ = r.u64();
    creditsReceived_ = r.u64();
    keepalivesSent_ = r.u64();
    keepalivesSeen_ = r.u64();
    timeouts_ = r.u64();
    resetsSent_ = r.u64();
    resetsReceived_ = r.u64();
    staleEpochResets_ = r.u64();
    unknownFlowResets_ = r.u64();
    corruptResets_ = r.u64();
    nonFlowDrops_ = r.u64();
    peerCloses_ = r.u64();
    return r.ok();
}

} // namespace cheriot::net
