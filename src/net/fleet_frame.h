/**
 * @file
 * The fleet wire format: the frame layout every Machine in a fleet
 * puts on the virtual switch fabric.
 *
 * A frame is a whole number of little-endian 32-bit words:
 *
 *   word 0   destination node id ("MAC"; 0xffffffff broadcasts)
 *   word 1   source node id
 *   word 2   frame type (data / ack / probe)
 *   word 3   ARQ sequence number (data: the message's sequence;
 *            ack: the sequence being acknowledged; probe: receiver's
 *            contiguous-delivery base, informational)
 *   word 4+  payload words (data frames only)
 *   last     checksum word balancing the XOR of the whole frame to
 *            zero — the same invariant the PR-5 firewall already
 *            enforces, so corruption anywhere (header included) dies
 *            at the checksum, before the ARQ layer or any consumer
 *            sees a byte.
 *
 * The header is deliberately *data*, not capabilities: a frame
 * crosses the host-modelled wire as raw bytes, and the tagged-bus
 * rule (§4) guarantees the receiving NIC's DMA can never materialise
 * authority from them.
 */

#ifndef CHERIOT_NET_FLEET_FRAME_H
#define CHERIOT_NET_FLEET_FRAME_H

#include <cstdint>
#include <vector>

namespace cheriot::net
{

/** @name Fleet frame geometry @{ */
constexpr uint32_t kFleetHeaderWords = 4;
constexpr uint32_t kFleetHeaderBytes = kFleetHeaderWords * 4;
/** Header + checksum: the smallest well-formed fleet frame. */
constexpr uint32_t kFleetMinFrameBytes = kFleetHeaderBytes + 4;
constexpr uint32_t kFleetBroadcast = 0xffffffffu;
/** @} */

/** Frame types (word 2). */
enum class FleetFrameType : uint32_t
{
    Data = 1,  ///< Carries payload; ARQ-sequenced, acked, deduped.
    Ack = 2,   ///< Acknowledges one data sequence number.
    Probe = 3, ///< Liveness probe while a peer is presumed dead.
    /** Carries payload with *no* ARQ state: not sequenced, not acked,
     * not deduplicated — delivered at most once per copy the fabric
     * produces. The flow layer rides its idempotent control segments
     * (keepalives, resets) on these so replying to an unresponsive or
     * rogue peer never creates retransmit state toward it. */
    Unreliable = 4,
};

/** @name Flow-segment payload format
 * The flow layer rides inside fleet-frame payloads: payload word 0 is
 * the flow header (magic ≫ 16 | kind ≫ 8 | class), payload word 1 is
 * (flowId ≫ 16 | kind-specific 16-bit argument), payload words 2/3
 * are the application words. The magic lets the firewall classify a
 * frame's flow class without trusting anything else about it. @{ */
constexpr uint32_t kFlowMagic = 0xF10Au;

inline uint32_t
flowHeaderWord(uint8_t kind, uint8_t flowClass)
{
    return (kFlowMagic << 16) | (static_cast<uint32_t>(kind) << 8) |
           flowClass;
}

inline bool
isFlowHeaderWord(uint32_t w0)
{
    return (w0 >> 16) == kFlowMagic;
}
/** @} */

struct FleetFrameHeader
{
    uint32_t dst = 0;
    uint32_t src = 0;
    FleetFrameType type = FleetFrameType::Data;
    uint32_t seq = 0;
};

/** Read one little-endian word out of a raw frame. */
inline uint32_t
fleetFrameWord(const uint8_t *frame, uint32_t wordIndex)
{
    const uint8_t *p = frame + wordIndex * 4;
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

/** Destination id of a raw frame (the only field the switch needs;
 * undersized frames route as broadcast and die at the checksum). */
inline uint32_t
fleetFrameDst(const uint8_t *frame, uint32_t bytes)
{
    return bytes >= 4 ? fleetFrameWord(frame, 0) : kFleetBroadcast;
}

/** Source id of a raw frame (what the switch's MAC table learns). */
inline uint32_t
fleetFrameSrc(const uint8_t *frame, uint32_t bytes)
{
    return bytes >= 8 ? fleetFrameWord(frame, 1) : kFleetBroadcast;
}

/**
 * Build a checksum-balanced fleet frame on the host side (traffic
 * generators and tests; guest senders assemble the same layout word
 * by word through their capabilities).
 */
inline std::vector<uint8_t>
buildFleetFrame(const FleetFrameHeader &header,
                const std::vector<uint32_t> &payload)
{
    const uint32_t words =
        kFleetHeaderWords + static_cast<uint32_t>(payload.size()) + 1;
    std::vector<uint8_t> frame(words * 4);
    uint32_t checksum = 0;
    const auto put = [&](uint32_t index, uint32_t word) {
        checksum ^= word;
        frame[index * 4 + 0] = static_cast<uint8_t>(word);
        frame[index * 4 + 1] = static_cast<uint8_t>(word >> 8);
        frame[index * 4 + 2] = static_cast<uint8_t>(word >> 16);
        frame[index * 4 + 3] = static_cast<uint8_t>(word >> 24);
    };
    put(0, header.dst);
    put(1, header.src);
    put(2, static_cast<uint32_t>(header.type));
    put(3, header.seq);
    for (uint32_t i = 0; i < payload.size(); ++i) {
        put(kFleetHeaderWords + i, payload[i]);
    }
    put(words - 1, checksum);
    return frame;
}

} // namespace cheriot::net

#endif // CHERIOT_NET_FLEET_FRAME_H
