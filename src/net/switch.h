/**
 * @file
 * Virtual L2 switch: forwards fleet frames between the NIC devices
 * of independently-owned Machine instances.
 *
 * The switch is host-side fabric, not guest-visible state: a Machine
 * only ever sees frames arriving through its own NIC's descriptor
 * rings, exactly as in the single-machine stack. Ports are attached
 * to NicDevices; a frame transmitted by one NIC (captured via the
 * device's TX sink) enters the switch at its port, the MAC-learning
 * table picks the egress port (flooding on unknown/broadcast), and
 * the frame queues on that port's *bounded* egress queue. tick()
 * advances the fabric one round: due frames pass through the egress
 * link's fault model and land in the destination NIC via deliver().
 *
 * Every link owns a LinkFaultModel — a seeded per-link RNG stream
 * (Rng::forStream(switchSeed, portId), the FaultInjector discipline:
 * adding draws on one link never perturbs another) deciding per frame
 * whether the link drops, corrupts, duplicates, reorders or delays
 * it, plus a partition latch (drop everything until healed). Lossy
 * behaviour costs frames, never safety: a corrupted frame is still
 * just bytes, and the receiving guest's firewall checksum is where it
 * dies.
 *
 * A FaultInjector can additionally stall a whole port
 * (FaultSite::SwitchPortStall): the egress queue keeps filling while
 * delivery is frozen, overflow drops count, and the stall expires on
 * its own — an availability fault the ARQ layer above recovers from.
 */

#ifndef CHERIOT_NET_SWITCH_H
#define CHERIOT_NET_SWITCH_H

#include "net/fleet_frame.h"
#include "util/rng.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace cheriot::fault
{
class FaultInjector;
}

namespace cheriot::net
{

class NicDevice;

/** Per-link lossiness knobs, each a permille probability per frame. */
struct LinkFaultConfig
{
    uint32_t dropPermille = 0;
    uint32_t corruptPermille = 0;   ///< One flipped bit per corruption.
    uint32_t duplicatePermille = 0; ///< Frame delivered twice.
    uint32_t reorderPermille = 0;   ///< Swapped with the next due frame.
    uint32_t delayPermille = 0;     ///< Held back 1..maxDelayTicks.
    uint32_t maxDelayTicks = 4;

    bool lossless() const
    {
        return dropPermille == 0 && corruptPermille == 0 &&
               duplicatePermille == 0 && reorderPermille == 0 &&
               delayPermille == 0;
    }
};

/**
 * The seeded fault state of one link. All randomness comes from the
 * link's own stream, so a fleet campaign is reproducible bit-for-bit
 * from (switchSeed, linkId) regardless of what other links carry.
 */
class LinkFaultModel
{
  public:
    LinkFaultModel(uint64_t switchSeed, uint32_t linkId)
        : rng_(Rng::forStream(switchSeed, linkId))
    {}

    LinkFaultConfig config;
    bool partitioned = false;
    /** Directional partition halves: txBlocked eats frames the port's
     * node transmits (others never hear it); rxBlocked eats frames
     * destined for it (it hears nothing). `partitioned` is both. */
    bool txBlocked = false;
    bool rxBlocked = false;

    bool ingressBlocked() const { return partitioned || txBlocked; }
    bool egressBlocked() const { return partitioned || rxBlocked; }

    bool roll(uint32_t permille)
    {
        return permille != 0 && rng_.chance(permille, 1000);
    }
    uint32_t delayTicks()
    {
        return 1 + rng_.below(config.maxDelayTicks == 0
                                  ? 1
                                  : config.maxDelayTicks);
    }
    /** Pick the bit to flip in a corrupted frame of @p bytes. */
    uint32_t corruptBit(uint32_t bytes)
    {
        return rng_.below(bytes * 8);
    }

  private:
    Rng rng_;
};

class VirtualSwitch
{
  public:
    /** @param maxQueueDepth bound on each port's egress queue; the
     * overflow drop counter is the congestion signal. */
    explicit VirtualSwitch(uint64_t seed, uint32_t maxQueueDepth = 64)
        : seed_(seed), maxQueueDepth_(maxQueueDepth)
    {}

    /** Wire a new port to @p nic (may be null for a sniffer port);
     * returns the port id. */
    uint32_t addPort(NicDevice *nic);
    /** Re-point a port at a fresh NIC (device restarted). */
    void attachNic(uint32_t port, NicDevice *nic);
    uint32_t portCount() const
    {
        return static_cast<uint32_t>(ports_.size());
    }

    /**
     * A frame enters the fabric at @p port: learn the source MAC,
     * pick the egress port(s) and enqueue. Frames from or to a
     * partitioned port drop here.
     */
    void ingress(uint32_t port, const uint8_t *frame, uint32_t bytes);

    /**
     * Advance the fabric one round: expire stalls, then deliver every
     * due frame through its egress link's fault model into the
     * attached NIC.
     */
    void tick();
    uint64_t now() const { return now_; }

    /** @name Link fault control (chaos engine / tests) @{ */
    void setLinkFaults(uint32_t port, const LinkFaultConfig &config);
    const LinkFaultConfig &linkFaults(uint32_t port) const;
    /** Partition @p port from the fabric (drop both directions)
     * until healed. */
    void setPartitioned(uint32_t port, bool isolated);
    bool partitioned(uint32_t port) const;
    /**
     * Asymmetric partition: block only one direction of @p port's
     * link. @p txBlocked eats everything the attached node sends
     * (the rest of the fabric goes deaf to it); @p rxBlocked eats
     * everything addressed to it (the node itself goes deaf).
     */
    void setDirectionalPartition(uint32_t port, bool txBlocked,
                                 bool rxBlocked);
    /** Freeze @p port's egress for @p ticks rounds. */
    void stallPort(uint32_t port, uint32_t ticks);
    /** Armed SwitchPortStall plans fire through this injector. */
    void setFaultInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }
    /** @} */

    /** MAC table lookup (tests); -1 when unlearned. */
    int32_t learnedPort(uint32_t mac) const;

    /** Per-port counters. */
    struct PortCounters
    {
        uint64_t ingressFrames = 0;
        uint64_t forwarded = 0;  ///< Delivered into the attached NIC.
        uint64_t flooded = 0;    ///< Copies enqueued by flooding.
        uint64_t queueDrops = 0; ///< Bounded-queue overflow drops.
        uint64_t faultDrops = 0; ///< LinkFaultModel drop rolls.
        uint64_t corrupted = 0;
        uint64_t duplicated = 0;
        uint64_t reordered = 0;
        uint64_t delayed = 0;
        uint64_t partitionDrops = 0;
        uint64_t stallTicks = 0;
        uint64_t nicBackpressure = 0; ///< deliver() refused the frame.
    };
    const PortCounters &counters(uint32_t port) const
    {
        return ports_.at(port).counters;
    }
    uint64_t totalDelivered() const { return totalDelivered_; }
    /** Frames sitting in egress queues (the fleet drain probe). */
    uint64_t queuedFrames() const
    {
        uint64_t total = 0;
        for (const Port &port : ports_) {
            total += port.queue.size();
        }
        return total;
    }
    uint64_t seed() const { return seed_; }

  private:
    struct QueuedFrame
    {
        std::vector<uint8_t> bytes;
        uint64_t dueTick = 0;
    };

    struct Port
    {
        Port(NicDevice *device, uint64_t switchSeed, uint32_t id)
            : nic(device), link(switchSeed, id)
        {}
        NicDevice *nic;
        LinkFaultModel link;
        std::deque<QueuedFrame> queue;
        uint32_t stallTicksLeft = 0;
        PortCounters counters;
    };

    void enqueue(uint32_t port, const uint8_t *frame, uint32_t bytes);
    /** Deliver one frame through @p port's link fault model. */
    void deliverThroughLink(Port &port, std::vector<uint8_t> frame);
    void deliverToNic(Port &port, const std::vector<uint8_t> &frame);

    uint64_t seed_;
    uint32_t maxQueueDepth_;
    uint64_t now_ = 0;
    uint64_t totalDelivered_ = 0;
    std::vector<Port> ports_;
    std::unordered_map<uint32_t, uint32_t> macTable_;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace cheriot::net

#endif // CHERIOT_NET_SWITCH_H
