#include "net/broker.h"

#include "fault/fault_injector.h"
#include "net/fleet_frame.h"
#include "rtos/kernel.h"
#include "snapshot/serializer.h"

#include <algorithm>

namespace cheriot::net
{

using cap::Capability;
using rtos::ArgVec;
using rtos::CallResult;
using rtos::CompartmentContext;

BrokerCompartment
addBrokerCompartment(rtos::Kernel &kernel)
{
    BrokerCompartment parts;
    parts.broker = &kernel.createCompartment("telemetry_broker");
    return parts;
}

TelemetryBroker::TelemetryBroker(rtos::Kernel &kernel,
                                 const BrokerCompartment &parts,
                                 BrokerConfig config)
    : kernel_(kernel), compartment_(*parts.broker), config_(config)
{
    if (config_.queueDepth == 0) {
        config_.queueDepth = 1;
    }
    // Canary + srcMac + class + two application words.
    if (config_.recordBytes < 20) {
        config_.recordBytes = 20;
    }
}

void
TelemetryBroker::connect()
{
    allocCap_ = kernel_.mintAllocatorCapability(compartment_,
                                                config_.heapQuotaBytes);
    const uint32_t ingestIndex = compartment_.addExport(
        {"ingest",
         [this](CompartmentContext &ctx, ArgVec &args) {
             return ingestBody(ctx, args);
         },
         /*interruptsDisabled=*/false});
    ingestImport_ = {&compartment_, ingestIndex};
    const uint32_t pollIndex = compartment_.addExport(
        {"poll",
         [this](CompartmentContext &ctx, ArgVec &args) {
             return pollBody(ctx, args);
         },
         /*interruptsDisabled=*/false});
    pollImport_ = {&compartment_, pollIndex};
}

uint32_t
TelemetryBroker::subscribe(uint8_t classMask)
{
    Subscriber sub;
    sub.classMask = classMask;
    subscribers_.push_back(std::move(sub));
    return static_cast<uint32_t>(subscribers_.size() - 1);
}

uint32_t
TelemetryBroker::mix(uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352du;
    x ^= x >> 15;
    x *= 0x846ca68bu;
    x ^= x >> 16;
    return x;
}

uint32_t
TelemetryBroker::canaryOf(uint32_t srcMac, uint8_t cls, uint32_t w0,
                          uint32_t w1) const
{
    return mix(srcMac ^ (static_cast<uint32_t>(cls) << 24) ^
               mix(w0 ^ (w1 * 0x9e3779b9u)) ^ 0xB40CE2u);
}

void
TelemetryBroker::releaseEntry(CompartmentContext &ctx, const Entry &e)
{
    // One claim released per queue copy; the allocator quarantines
    // the record on the *last* release (the lending contract).
    ctx.kernel.free(ctx.thread, e.rec);
    if (credit_) {
        credit_(e.srcMac, config_.recordBytes);
    }
    heapBytesLive_ -= std::min<uint64_t>(heapBytesLive_,
                                         config_.recordBytes);
}

bool
TelemetryBroker::shedLowerClass(CompartmentContext &ctx,
                                Subscriber &sub, uint8_t cls)
{
    // Oldest record of the lowest class strictly below the incoming
    // one; control (the highest class) is never a shed victim.
    size_t victim = sub.queue.size();
    uint8_t victimCls = cls;
    for (size_t i = 0; i < sub.queue.size(); ++i) {
        if (sub.queue[i].cls < victimCls) {
            victim = i;
            victimCls = sub.queue[i].cls;
        }
    }
    if (victim >= sub.queue.size()) {
        return false;
    }
    releaseEntry(ctx, sub.queue[victim]);
    shedByClass_[victimCls < kClassCount ? victimCls : 0]++;
    sub.queue.erase(sub.queue.begin() + static_cast<long>(victim));
    return true;
}

CallResult
TelemetryBroker::ingestBody(CompartmentContext &ctx, ArgVec &args)
{
    // Broker activation frame.
    const Capability frame = ctx.stackAlloc(64);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    const Capability payload = args[0];
    const uint32_t len = args[1].address();
    // Fleet header + flow header + flow arg + two app words + checksum.
    const uint32_t minLen = (kFleetHeaderWords + 4 + 1) * 4;
    if (!payload.tag() || len < minLen || payload.length() < len) {
        return CallResult::ofInt(0);
    }
    const uint32_t base = payload.base();
    const uint32_t src = ctx.mem.loadWord(payload, base + 4);
    const uint32_t flowHdr =
        ctx.mem.loadWord(payload, base + kFleetHeaderBytes);
    if (!isFlowHeaderWord(flowHdr)) {
        return CallResult::ofInt(0);
    }
    // A lying class byte gets the *lowest* priority, not the highest.
    uint8_t cls = static_cast<uint8_t>(flowHdr);
    if (cls >= kClassCount) {
        cls = 0;
    }
    const uint32_t w0 =
        ctx.mem.loadWord(payload, base + kFleetHeaderBytes + 8);
    const uint32_t w1 =
        ctx.mem.loadWord(payload, base + kFleetHeaderBytes + 12);

    published_++;
    bool anyMatch = false;
    for (const Subscriber &sub : subscribers_) {
        if ((sub.classMask & (1u << cls)) != 0) {
            anyMatch = true;
        }
    }
    if (!anyMatch) {
        return CallResult::ofInt(1); // Published to nobody: a no-op.
    }

    // The record, metered against the broker's own quota.
    alloc::AllocResult res = alloc::AllocResult::Ok;
    Capability rec =
        ctx.kernel.mallocWith(ctx.thread, allocCap_,
                              config_.recordBytes, &res);
    if (!rec.tag()) {
        // Quota pressure: shed one lower-class record somewhere and
        // retry once, so control survives a heap full of telemetry.
        bool shedAny = false;
        for (Subscriber &sub : subscribers_) {
            if (shedLowerClass(ctx, sub, cls)) {
                shedAny = true;
                break;
            }
        }
        if (shedAny) {
            rec = ctx.kernel.mallocWith(ctx.thread, allocCap_,
                                        config_.recordBytes, &res);
        }
    }
    if (!rec.tag()) {
        heapDenials_++;
        if (cls == kClassCount - 1) {
            backpressureRefusals_++;
        } else {
            shedByClass_[cls]++;
        }
        return CallResult::ofInt(0);
    }
    const uint32_t canary = canaryOf(src, cls, w0, w1);
    ctx.mem.storeWord(rec, rec.base() + 0, canary);
    ctx.mem.storeWord(rec, rec.base() + 4, src);
    ctx.mem.storeWord(rec, rec.base() + 8, cls);
    ctx.mem.storeWord(rec, rec.base() + 12, w0);
    ctx.mem.storeWord(rec, rec.base() + 16, w1);

    uint32_t enqueued = 0;
    for (Subscriber &sub : subscribers_) {
        if ((sub.classMask & (1u << cls)) == 0) {
            continue;
        }
        if (sub.queue.size() >= config_.queueDepth &&
            !shedLowerClass(ctx, sub, cls)) {
            // Nothing below the incoming class to evict: the incoming
            // record is refused for this subscriber — typed for
            // control, a counted shed for data classes.
            if (cls == kClassCount - 1) {
                backpressureRefusals_++;
            } else {
                shedByClass_[cls]++;
            }
            continue;
        }
        if (charge_ && !charge_(src, config_.recordBytes)) {
            // The publisher is over its in-flight ceiling: its own
            // budget sheds it, not the broker's.
            chargeDenials_++;
            if (cls == kClassCount - 1) {
                backpressureRefusals_++;
            } else {
                shedByClass_[cls]++;
            }
            continue;
        }
        if (enqueued > 0) {
            // Additional queues claim; the first holds the
            // allocation itself.
            ctx.kernel.claim(ctx.thread, rec);
            claims_++;
        }
        Entry e;
        e.rec = rec;
        e.srcMac = src;
        e.cls = cls;
        e.w0 = w0;
        e.w1 = w1;
        e.canary = canary;
        if (injector_ != nullptr) {
            uint32_t param = 0;
            if (injector_->brokerQueueTouched(&param)) {
                // The fault model: a stray store scrambles the queue
                // entry; the record's stored canary is the witness.
                e.canary ^= param;
                e.w0 ^= param >> 8;
            }
        }
        sub.queue.push_back(e);
        heapBytesLive_ += config_.recordBytes;
        queueHighWater_ = std::max(
            queueHighWater_, static_cast<uint32_t>(sub.queue.size()));
        enqueued++;
    }
    if (enqueued == 0) {
        // Every matching queue refused it: release the allocation.
        ctx.kernel.free(ctx.thread, rec);
        return CallResult::ofInt(0);
    }
    return CallResult::ofInt(1);
}

CallResult
TelemetryBroker::pollBody(CompartmentContext &ctx, ArgVec &args)
{
    const Capability frame = ctx.stackAlloc(32);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    pollHit_ = false;
    const uint32_t index = args[0].address();
    if (index >= subscribers_.size()) {
        return CallResult::ofInt(0);
    }
    Subscriber &sub = subscribers_[index];
    if (sub.queue.empty()) {
        return CallResult::ofInt(0);
    }
    const Entry e = sub.queue.front();
    sub.queue.pop_front();
    const uint32_t stored = ctx.mem.loadWord(e.rec, e.rec.base());
    if (stored != e.canary ||
        e.canary != canaryOf(e.srcMac, e.cls, e.w0, e.w1)) {
        // A scrambled entry dies here — freed, credited, counted —
        // and the subscriber just sees one fewer record. Never a
        // trap.
        corruptDrops_++;
        releaseEntry(ctx, e);
        return CallResult::ofInt(0);
    }
    pollOut_.srcMac = e.srcMac;
    pollOut_.cls = e.cls;
    pollOut_.w0 = e.w0;
    pollOut_.w1 = e.w1;
    pollHit_ = true;
    releaseEntry(ctx, e);
    delivered_++;
    return CallResult::ofInt(1);
}

bool
TelemetryBroker::poll(rtos::Thread &thread, uint32_t subscriber,
                      Record *out)
{
    pollHit_ = false;
    ArgVec args =
        ArgVec::of({Capability().withAddress(subscriber)});
    const CallResult result = kernel_.call(thread, pollImport_, args);
    if (!result.ok() || result.value.address() != 1 || !pollHit_) {
        return false;
    }
    if (out != nullptr) {
        *out = pollOut_;
    }
    return true;
}

uint32_t
TelemetryBroker::queueDepth(uint32_t subscriber) const
{
    return subscriber < subscribers_.size()
               ? static_cast<uint32_t>(
                     subscribers_[subscriber].queue.size())
               : 0;
}

void
TelemetryBroker::serialize(snapshot::Writer &w) const
{
    w.u32(static_cast<uint32_t>(subscribers_.size()));
    for (const Subscriber &sub : subscribers_) {
        w.u32(sub.classMask);
        w.u32(static_cast<uint32_t>(sub.queue.size()));
        for (const Entry &e : sub.queue) {
            w.cap(e.rec);
            w.u32(e.srcMac);
            w.u32(e.cls);
            w.u32(e.w0);
            w.u32(e.w1);
            w.u32(e.canary);
        }
    }
    w.u64(published_);
    w.u64(delivered_);
    for (uint32_t c = 0; c < kClassCount; ++c) {
        w.u64(shedByClass_[c]);
    }
    w.u64(backpressureRefusals_);
    w.u64(heapDenials_);
    w.u64(corruptDrops_);
    w.u64(chargeDenials_);
    w.u64(claims_);
    w.u64(heapBytesLive_);
    w.u32(queueHighWater_);
}

bool
TelemetryBroker::deserialize(snapshot::Reader &r)
{
    subscribers_.clear();
    const uint32_t subCount = r.u32();
    for (uint32_t i = 0; i < subCount && r.ok(); ++i) {
        Subscriber sub;
        sub.classMask = static_cast<uint8_t>(r.u32());
        const uint32_t depth = r.u32();
        for (uint32_t j = 0; j < depth && r.ok(); ++j) {
            Entry e;
            e.rec = r.cap();
            e.srcMac = r.u32();
            e.cls = static_cast<uint8_t>(r.u32());
            e.w0 = r.u32();
            e.w1 = r.u32();
            e.canary = r.u32();
            sub.queue.push_back(e);
        }
        subscribers_.push_back(std::move(sub));
    }
    published_ = r.u64();
    delivered_ = r.u64();
    for (uint32_t c = 0; c < kClassCount; ++c) {
        shedByClass_[c] = r.u64();
    }
    backpressureRefusals_ = r.u64();
    heapDenials_ = r.u64();
    corruptDrops_ = r.u64();
    chargeDenials_ = r.u64();
    claims_ = r.u64();
    heapBytesLive_ = r.u64();
    queueHighWater_ = r.u32();
    return r.ok();
}

} // namespace cheriot::net
