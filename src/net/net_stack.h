/**
 * @file
 * Compartmentalized zero-copy network stack over the NIC.
 *
 * Two guest compartments own the receive path:
 *
 *  - `net_driver` — the *sole* importer of the NIC MMIO window (the
 *    audit manifest records that authority; cheriot-verify's default
 *    policy lints it). It allocates the descriptor rings and per-slot
 *    packet buffers from the shared heap, posts them to the device,
 *    and on every pump consumes DONE descriptors, cross-checking each
 *    against its own slot table — descriptor bytes are device-written
 *    data and carry no authority, so a corrupted descriptor can at
 *    worst lose a packet, never widen a capability.
 *
 *  - `firewall` — the parser. The driver lends it each landed packet
 *    as a *bounded, Global-less* capability: zero-copy, but holdable
 *    only in registers and on the (wiped) stack (§2.6, §5.2). The
 *    firewall `claim()`s the buffer so it survives the driver's own
 *    free (CHERIoT's heap_claim lending contract: the *last* release
 *    quarantines, not the first), validates the frame checksum, and
 *    hands the payload on to its consumers — mutating consumers (TLS
 *    decrypts records in place) get the write-capable view, everyone
 *    downstream gets a read-only one.
 *
 * Backpressure is physical: a consumed slot is reposted only after a
 * successful refill malloc, so when the heap is exhausted (or
 * quarantine is holding memory hostage) the ring shrinks until the
 * NIC starts dropping — the drop counter and the heap-pressure MMIO
 * window feed the PR-3 admission-gate machinery.
 */

#ifndef CHERIOT_NET_NET_STACK_H
#define CHERIOT_NET_NET_STACK_H

#include "net/nic_device.h"
#include "rtos/compartment.h"

#include <cstdint>
#include <vector>

namespace cheriot::rtos
{
class Kernel;
class Thread;
} // namespace cheriot::rtos

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::net
{

/**
 * Build a deterministic test frame: little-endian words derived from
 * @p seq with a trailing checksum word that XORs the whole frame to
 * zero. @p bytes is rounded up to a whole number of words, minimum 8.
 */
std::vector<uint8_t> buildFrame(uint32_t seq, uint32_t bytes);

/** The net compartments plus the NIC window capability (minted
 * before boot; the loader refuses new roots afterwards). */
struct NetCompartments
{
    rtos::Compartment *driver = nullptr;
    rtos::Compartment *firewall = nullptr;
    cap::Capability nicWindow;
};

/** Create `net_driver` (importing the NIC MMIO window by name) and
 * `firewall`. Call before Kernel::finalizeBoot — the import is part
 * of the audited image. */
NetCompartments addNetCompartments(rtos::Kernel &kernel);

/** A downstream packet consumer: an export called as (payload, len).
 * Mutating consumers receive the writable view of the buffer. */
struct NetConsumer
{
    rtos::Import import;
    bool mutates = false;
};

struct NetStackConfig
{
    uint32_t rxRingEntries = 8;
    uint32_t txRingEntries = 4;
    /** Per-slot buffer capacity (heap allocation size). */
    uint32_t bufBytes = 1536;
    /** Firewall transmits an ack for every Nth accepted packet
     * (0 = never): the TX direction of the claim contract. */
    uint32_t ackEveryN = 16;
    uint32_t ackBytes = 32;
};

class NetStack
{
  public:
    NetStack(rtos::Kernel &kernel, NicDevice &nic,
             const NetCompartments &compartments,
             NetStackConfig config = {});

    /** Add the driver/firewall exports and resolve imports. Call
     * after finalizeBoot (entry bodies are not part of the audited
     * structure), before start(). */
    void connect(const std::vector<NetConsumer> &consumers);

    /** Allocate rings and buffers, program and enable the NIC. Part
     * of the deterministic boot: runs before any snapshot restore. */
    void start(rtos::Thread &thread);

    /** Drain completed RX/TX descriptors — a real cross-compartment
     * call into the driver. Returns packets accepted this pump. */
    uint32_t pump(rtos::Thread &thread);

    /** Driver's tx export: (buffer, len), claims the buffer until
     * transmit completes. Returns 1 posted / 0 busy-or-refused. */
    const rtos::Import &txImport() const { return txImport_; }

    /** @name Stack counters @{ */
    uint64_t packetsAccepted() const { return packetsAccepted_; }
    uint64_t bytesAccepted() const { return bytesAccepted_; }
    uint64_t parseDrops() const { return parseDrops_; }
    uint64_t consumerRejects() const { return consumerRejects_; }
    uint64_t ringCorruptionsDetected() const
    {
        return ringCorruptionsDetected_;
    }
    uint64_t refillFailures() const { return refillFailures_; }
    uint64_t rxErrorsSeen() const { return rxErrorsSeen_; }
    uint64_t acksSent() const { return acksSent_; }
    uint64_t txCompleted() const { return txCompleted_; }
    /** @} */

    /** @name Snapshot state
     * The rings and the boot-time buffer posts are rebuilt by the
     * deterministic boot; this captures the dynamic state on top —
     * ring cursors, slot-table capabilities and counters. @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    uint32_t mmioRead(rtos::CompartmentContext &ctx, uint32_t reg);
    void mmioWrite(rtos::CompartmentContext &ctx, uint32_t reg,
                   uint32_t value);
    /** The driver pump body (RX consume + refill + TX reap). */
    rtos::CallResult pumpBody(rtos::CompartmentContext &ctx);
    rtos::CallResult txBody(rtos::CompartmentContext &ctx,
                            rtos::ArgVec &args);
    /** The firewall process body (claim, validate, consume, release). */
    rtos::CallResult processBody(rtos::CompartmentContext &ctx,
                                 rtos::ArgVec &args);
    void reapTx(rtos::CompartmentContext &ctx);

    rtos::Kernel &kernel_;
    NicDevice &nic_;
    rtos::Compartment &driver_;
    rtos::Compartment &firewall_;
    cap::Capability nicCap_;
    NetStackConfig config_;

    std::vector<NetConsumer> consumers_;
    rtos::Import pumpImport_;
    rtos::Import txImport_;
    rtos::Import processImport_;

    /** Driver state: rings and the authoritative slot table. @{ */
    cap::Capability rxRing_;
    cap::Capability txRing_;
    std::vector<cap::Capability> rxSlots_;
    std::vector<cap::Capability> txSlots_;
    uint32_t rxConsumed_ = 0; ///< Free-running consumed count.
    uint32_t rxPosted_ = 0;   ///< Free-running posted count (RX_TAIL).
    uint32_t pendingRefills_ = 0;
    uint32_t txPosted_ = 0; ///< Free-running posted count (TX_HEAD).
    uint32_t txReaped_ = 0; ///< Free-running reaped count.
    /** @} */

    uint64_t packetsAccepted_ = 0;
    uint64_t bytesAccepted_ = 0;
    uint64_t parseDrops_ = 0;
    uint64_t consumerRejects_ = 0;
    uint64_t ringCorruptionsDetected_ = 0;
    uint64_t refillFailures_ = 0;
    uint64_t rxErrorsSeen_ = 0;
    uint64_t acksSent_ = 0;
    uint64_t txCompleted_ = 0;
    uint32_t ackCountdown_ = 0;
};

} // namespace cheriot::net

#endif // CHERIOT_NET_NET_STACK_H
