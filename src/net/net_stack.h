/**
 * @file
 * Compartmentalized zero-copy network stack over the NIC.
 *
 * Two guest compartments own the receive path:
 *
 *  - `net_driver` — the *sole* importer of the NIC MMIO window (the
 *    audit manifest records that authority; cheriot-verify's default
 *    policy lints it). It allocates the descriptor rings and per-slot
 *    packet buffers from the shared heap, posts them to the device,
 *    and on every pump consumes DONE descriptors, cross-checking each
 *    against its own slot table — descriptor bytes are device-written
 *    data and carry no authority, so a corrupted descriptor can at
 *    worst lose a packet, never widen a capability.
 *
 *  - `firewall` — the parser. The driver lends it each landed packet
 *    as a *bounded, Global-less* capability: zero-copy, but holdable
 *    only in registers and on the (wiped) stack (§2.6, §5.2). The
 *    firewall `claim()`s the buffer so it survives the driver's own
 *    free (CHERIoT's heap_claim lending contract: the *last* release
 *    quarantines, not the first), validates the frame checksum, and
 *    hands the payload on to its consumers — mutating consumers (TLS
 *    decrypts records in place) get the write-capable view, everyone
 *    downstream gets a read-only one.
 *
 * Backpressure is physical: a consumed slot is reposted only after a
 * successful refill malloc, so when the heap is exhausted (or
 * quarantine is holding memory hostage) the ring shrinks until the
 * NIC starts dropping — the drop counter and the heap-pressure MMIO
 * window feed the PR-3 admission-gate machinery. The refill wait is
 * *bounded*: a typed RefillResult::Timeout (mirroring the PR-2
 * MessageQueueService pattern) caps how long a pump can stall on an
 * exhausted heap before yielding with the ring short.
 *
 * Reliable mode (the fleet ARQ layer, firewall-owned): between the
 * checksum and the consumers sits a selective-repeat protocol over
 * fleet frames (net/fleet_frame.h). Senders number data frames per
 * peer, hold them for retransmission with capped exponential backoff,
 * and declare a peer dead after the retry budget — degrading that
 * destination to local buffering (a bounded backlog) with periodic
 * probes; any frame heard from the peer rejoins it and the backlog
 * drains. Receivers ack every data frame (including duplicates) and
 * deduplicate through a window that exceeds the sender's in-flight
 * span, so consumers see each message exactly once per receiver
 * incarnation no matter what the link duplicates or reorders. A
 * corrupted frame never gets this far: the checksum rejects it while
 * it is still untrusted bytes.
 */

#ifndef CHERIOT_NET_NET_STACK_H
#define CHERIOT_NET_NET_STACK_H

#include "alloc/quota.h"
#include "net/fleet_frame.h"
#include "net/nic_device.h"
#include "rtos/compartment.h"

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

namespace cheriot::rtos
{
class Kernel;
class Thread;
} // namespace cheriot::rtos

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::net
{

/**
 * Build a deterministic test frame: little-endian words derived from
 * @p seq with a trailing checksum word that XORs the whole frame to
 * zero. @p bytes is rounded up to a whole number of words, minimum 8.
 */
std::vector<uint8_t> buildFrame(uint32_t seq, uint32_t bytes);

/** The net compartments plus the NIC window capability (minted
 * before boot; the loader refuses new roots afterwards). */
struct NetCompartments
{
    rtos::Compartment *driver = nullptr;
    rtos::Compartment *firewall = nullptr;
    cap::Capability nicWindow;
};

/** Create `net_driver` (importing the NIC MMIO window by name) and
 * `firewall`. Call before Kernel::finalizeBoot — the import is part
 * of the audited image. */
NetCompartments addNetCompartments(rtos::Kernel &kernel);

/** A downstream packet consumer: an export called as (payload, len).
 * Mutating consumers receive the writable view of the buffer. */
struct NetConsumer
{
    rtos::Import import;
    bool mutates = false;
};

/**
 * One declarative firewall admission rule. A frame is matched by
 * (source device, flow class); the first matching rule supplies the
 * device's token bucket and in-flight budget. Wildcards: srcMac 0
 * matches any device, flowClass 0xff matches any class.
 */
struct FirewallRule
{
    uint32_t srcMac = 0;      ///< 0 = any device.
    uint32_t flowClass = 0xff; ///< 0xff = any class.
    /** Token-bucket refill: data frames admitted per 1024 cycles,
     * in 1/256 frame units (256 = one frame per 1024 cycles). */
    uint32_t ratePer1KCycles256 = 16 * 256;
    uint32_t burstFrames = 32; ///< Bucket capacity.
    /** Ceiling on bytes this device may have in flight downstream
     * (charged against the stack's quota ledger at admission and by
     * the broker for queue residency). */
    uint64_t maxInflightBytes = 16 * 1024;
    /** Frames longer than this are an oversize violation. */
    uint32_t maxFrameBytes = 1536;
};

/**
 * Per-flow firewall admission (off by default: the plain PR-5/PR-6
 * stack behaves exactly as before). When enabled, every reliable-mode
 * frame passes rule lookup, token-bucket rate limiting and in-flight
 * quota accounting before it can touch ARQ state; violations get a
 * typed reject, cost the device a strike, and enough strikes
 * quarantine the device locally (every frame dropped) — the signal
 * the fleet runner escalates to fabric-level quarantine.
 */
struct FirewallConfig
{
    bool admission = false;
    uint32_t strikeBudget = 8;
    bool defaultDeny = false; ///< No matching rule: drop (and strike).
    std::vector<FirewallRule> rules;
};

struct NetStackConfig
{
    uint32_t rxRingEntries = 8;
    uint32_t txRingEntries = 4;
    /** Per-slot buffer capacity (heap allocation size). */
    uint32_t bufBytes = 1536;
    /** Firewall transmits an ack for every Nth accepted packet
     * (0 = never; unused in reliable mode, where every data frame is
     * acked individually): the TX direction of the claim contract. */
    uint32_t ackEveryN = 16;
    uint32_t ackBytes = 32;
    /** Bounded refill wait before a typed timeout (satellite of the
     * MessageQueueService bounded-block discipline). */
    uint64_t refillTimeoutCycles = 4096;

    /** @name Reliable-delivery (ARQ) layer @{ */
    bool reliable = false; ///< Parse fleet frames, run the ARQ.
    uint32_t localMac = 0; ///< This node's fleet id.
    /** Sender incarnation, stamped into the sequence-number high
     * byte. A restarted node announces itself through a new epoch, so
     * receivers restart their dedup window instead of mistaking the
     * fresh seq 0 for a stale duplicate (by sequence alone the two
     * are indistinguishable when little history exists). */
    uint32_t arqEpoch = 0;
    /** Max in-flight (unacked) data frames per peer. Must stay below
     * arqDedupWindow so a live sender can never outrun the receiver's
     * dedup span — only a receiver restart slides the window. */
    uint32_t arqWindow = 16;
    uint32_t arqDedupWindow = 64;
    uint64_t arqRtoStartCycles = 2048; ///< First retransmit timeout.
    uint64_t arqRtoCapCycles = 32768;  ///< Backoff doubling cap.
    /** Retries before the peer is presumed dead and the destination
     * degrades to local buffering + probes. */
    uint32_t arqMaxRetries = 8;
    uint64_t arqProbeIntervalCycles = 8192;
    uint32_t arqBacklogMax = 64; ///< Local-buffering depth per peer.
    /** @} */

    /** Per-flow admission rules (reliable mode only). */
    FirewallConfig firewall;
};

class NetStack
{
  public:
    /** Typed outcome of one RX slot refill. */
    enum class RefillResult : uint8_t
    {
        Ok = 0,
        Timeout, ///< Heap stayed exhausted past the bounded wait.
    };
    /** Refill backoff schedule (the MessageQueueService constants). */
    static constexpr uint32_t kRefillBackoffStartCycles = 16;
    static constexpr uint32_t kRefillBackoffCapCycles = 1024;

    /** Typed firewall admission outcome (reliable mode). */
    enum class AdmitResult : uint8_t
    {
        Ok = 0,
        Quarantined,      ///< Device already struck out; frame dropped.
        RateLimited,      ///< Token bucket empty.
        InflightExceeded, ///< In-flight byte quota denied the charge.
        Oversized,        ///< Frame longer than the rule allows.
        Malformed,        ///< Valid checksum, nonsense frame type.
        NoRule,           ///< defaultDeny and nothing matched.
    };
    /** Retransmit histogram buckets: retries 0..7, then 8+. */
    static constexpr uint32_t kRetxHistogramBuckets = 9;
    /** sendBody flag bit: build an Unreliable frame (no ARQ state). */
    static constexpr uint32_t kSendUnreliableFlag = 0x80000000u;

    NetStack(rtos::Kernel &kernel, NicDevice &nic,
             const NetCompartments &compartments,
             NetStackConfig config = {});

    /** Add the driver/firewall exports and resolve imports. Call
     * after finalizeBoot (entry bodies are not part of the audited
     * structure), before start(). */
    void connect(const std::vector<NetConsumer> &consumers);

    /** Allocate rings and buffers, program and enable the NIC. Part
     * of the deterministic boot: runs before any snapshot restore. */
    void start(rtos::Thread &thread);

    /** Drain completed RX/TX descriptors — a real cross-compartment
     * call into the driver — then, in reliable mode, run the ARQ
     * service pass (backlog flush, retransmit timers, probes).
     * Returns packets accepted this pump. */
    uint32_t pump(rtos::Thread &thread);

    /**
     * Reliable send to peer @p dst: the firewall builds a sequenced
     * data frame whose payload words are (@p w0, @p w1, then
     * deterministic filler) of @p payloadWords total, posts it inside
     * the ARQ window or backlogs it (peer dead / window full).
     * Returns true when accepted — an accepted message is delivered
     * exactly once to the peer's consumers, eventually, as long as
     * the peer heals; false only when the bounded backlog (or the
     * heap) refuses it, counted in arqSendDrops().
     */
    bool sendMessage(rtos::Thread &thread, uint32_t dst,
                     uint32_t payloadWords, uint32_t w0, uint32_t w1,
                     uint32_t w2 = 0, uint32_t w3 = 0);

    /**
     * Unreliable send: builds a checksum-balanced Unreliable frame
     * and posts it once — no sequence number, no retransmission, no
     * peer state. The flow layer's idempotent control segments ride
     * these. Returns true when the frame was posted.
     */
    bool sendUnreliable(rtos::Thread &thread, uint32_t dst,
                        uint32_t payloadWords, uint32_t w0, uint32_t w1,
                        uint32_t w2 = 0, uint32_t w3 = 0);

    /** Driver's tx export: (buffer, len), claims the buffer until
     * transmit completes. Returns 1 posted / 0 busy-or-refused. */
    const rtos::Import &txImport() const { return txImport_; }

    /** Firewall's send export (guest-context senders: the flow layer
     * replies from inside its deliver body through this). Args are
     * (dst, payloadWords [| kSendUnreliableFlag], w0, w1, w2, w3). */
    const rtos::Import &sendImport() const { return sendImport_; }

    /** @name Stack counters @{ */
    uint64_t packetsAccepted() const { return packetsAccepted_; }
    uint64_t bytesAccepted() const { return bytesAccepted_; }
    uint64_t parseDrops() const { return parseDrops_; }
    uint64_t consumerRejects() const { return consumerRejects_; }
    uint64_t ringCorruptionsDetected() const
    {
        return ringCorruptionsDetected_;
    }
    uint64_t refillFailures() const { return refillFailures_; }
    uint64_t refillTimeouts() const { return refillTimeouts_; }
    uint64_t rxErrorsSeen() const { return rxErrorsSeen_; }
    uint64_t acksSent() const { return acksSent_; }
    uint64_t txCompleted() const { return txCompleted_; }
    /** @} */

    /** @name ARQ counters @{ */
    uint64_t arqSent() const { return arqSent_; }
    uint64_t arqDelivered() const { return arqDelivered_; }
    uint64_t arqDuplicatesDropped() const
    {
        return arqDuplicatesDropped_;
    }
    uint64_t arqRetransmits() const { return arqRetransmits_; }
    uint64_t arqAcksSent() const { return arqAcksSent_; }
    uint64_t arqAcksReceived() const { return arqAcksReceived_; }
    uint64_t arqPeerDeaths() const { return arqPeerDeaths_; }
    uint64_t arqRejoins() const { return arqRejoins_; }
    uint64_t arqProbesSent() const { return arqProbesSent_; }
    uint64_t arqSendDrops() const { return arqSendDrops_; }
    uint64_t wrongDest() const { return wrongDest_; }
    uint64_t unreliableDelivered() const { return unreliableDelivered_; }
    /** Acked-message retry counts: bucket i = messages that needed i
     * retransmissions (last bucket is 8+). The chaos campaign exports
     * this so retransmit-behaviour regressions are diffable. */
    std::vector<uint64_t> retxHistogram() const;
    /** @} */

    /** @name Firewall admission (reliable mode) @{ */
    uint64_t fwAdmitted() const { return fwAdmitted_; }
    uint64_t fwRateLimited() const { return fwRateLimited_; }
    uint64_t fwInflightDenied() const { return fwInflightDenied_; }
    uint64_t fwOversized() const { return fwOversized_; }
    uint64_t fwMalformed() const { return fwMalformed_; }
    uint64_t fwStaleEpochs() const { return fwStaleEpochs_; }
    uint64_t fwQuarantineDrops() const { return fwQuarantineDrops_; }
    uint64_t fwStrikes() const { return fwStrikes_; }
    uint64_t fwQuarantines() const { return fwQuarantines_; }
    uint32_t deviceStrikes(uint32_t mac) const;
    bool deviceQuarantined(uint32_t mac) const;
    /** Devices this stack has locally struck out — the fleet runner's
     * escalation signal for fabric-level quarantine. */
    std::vector<uint32_t> quarantinedMacs() const;
    /** Fleet-level escalation entry: force-quarantine @p mac (no
     * strike accounting) and purge all ARQ state toward it, so a
     * fabric-partitioned rogue leaves no retransmit residue. */
    void quarantineMac(rtos::Thread &thread, uint32_t mac);
    /**
     * Downstream in-flight accounting: the broker charges a device's
     * budget while a record derived from its frame sits in a
     * subscriber queue, and credits it on delivery or shed. A denied
     * charge means the device is over its in-flight ceiling — the
     * broker sheds, and subsequent frames from the device are
     * rejected at admission.
     */
    bool chargeInflight(uint32_t srcMac, uint64_t bytes);
    void creditInflight(uint32_t srcMac, uint64_t bytes);
    /** @} */

    /** @name ARQ peer introspection (tests, fleet invariant gate) @{ */
    bool peerKnown(uint32_t mac) const;
    bool peerDead(uint32_t mac) const;
    uint32_t peerPending(uint32_t mac) const;
    uint32_t peerBacklog(uint32_t mac) const;
    /** Current retransmit timeout of the oldest pending message
     * (0 when nothing is pending) — the backoff-schedule probe. */
    uint64_t peerRto(uint32_t mac) const;
    uint32_t peerRetries(uint32_t mac) const;
    uint32_t peerRxBase(uint32_t mac) const;
    /** Every peer's pending and backlog queues are empty: the fleet
     * drain condition. */
    bool arqIdle() const;
    /** All peer ids this node has ARQ state for. */
    std::vector<uint32_t> peerMacs() const;
    /** @} */

    /** @name Snapshot state
     * The rings and the boot-time buffer posts are rebuilt by the
     * deterministic boot; this captures the dynamic state on top —
     * ring cursors, slot-table capabilities, ARQ peer state and
     * counters. @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    /** One ARQ data frame the sender still owns (in flight or
     * backlogged); buf is the sender's heap reference, freed when the
     * ack arrives. */
    struct ArqMessage
    {
        uint32_t seq = 0;
        cap::Capability buf;
        uint32_t len = 0;
        uint64_t sentAt = 0;
        uint64_t nextRetry = 0;
        uint64_t rto = 0;
        uint32_t retries = 0;
    };
    /** Per-peer ARQ state (both directions). std::map / std::set keep
     * iteration — and therefore serialization — deterministic. */
    struct ArqPeer
    {
        uint32_t nextSeq = 0;
        bool dead = false;
        uint64_t lastHeard = 0;
        uint64_t nextProbe = 0;
        std::deque<ArqMessage> pending;
        std::deque<ArqMessage> backlog;
        /** Receive side: everything below rxBase is delivered;
         * rxSeen holds the out-of-order seqs at or above it. rxEpoch
         * is the sender incarnation the window belongs to. */
        uint32_t rxBase = 0;
        uint32_t rxEpoch = 0;
        std::set<uint32_t> rxSeen;
    };

    uint32_t mmioRead(rtos::CompartmentContext &ctx, uint32_t reg);
    void mmioWrite(rtos::CompartmentContext &ctx, uint32_t reg,
                   uint32_t value);
    /** The driver pump body (RX consume + refill + TX reap). */
    rtos::CallResult pumpBody(rtos::CompartmentContext &ctx);
    rtos::CallResult txBody(rtos::CompartmentContext &ctx,
                            rtos::ArgVec &args);
    /** The firewall process body (claim, validate, consume, release). */
    rtos::CallResult processBody(rtos::CompartmentContext &ctx,
                                 rtos::ArgVec &args);
    /** The firewall ARQ bodies. @{ */
    rtos::CallResult sendBody(rtos::CompartmentContext &ctx,
                              rtos::ArgVec &args);
    rtos::CallResult serviceBody(rtos::CompartmentContext &ctx);
    rtos::CallResult handleReliable(rtos::CompartmentContext &ctx,
                                    const cap::Capability &payload,
                                    uint32_t len);
    /** @} */
    /** Fan the validated payload out to every consumer. */
    rtos::CallResult fanOut(rtos::CompartmentContext &ctx,
                            const cap::Capability &payload,
                            uint32_t len);
    /** Post a frame to the driver's tx export (claims the buffer). */
    bool postFrame(rtos::CompartmentContext &ctx,
                   const cap::Capability &buf, uint32_t len);
    /** Build and post a transient ack/probe frame to @p dst. */
    void sendControl(rtos::CompartmentContext &ctx, uint32_t dst,
                     FleetFrameType type, uint32_t seq);
    /** Allocate, post and record one RX slot buffer, with a bounded
     * backoff wait when the heap is exhausted. */
    RefillResult refillOne(rtos::CompartmentContext &ctx);
    void reapTx(rtos::CompartmentContext &ctx);

    /** Firewall admission state for one source device. */
    struct FwDevice
    {
        int32_t rule = -1; ///< Index into config rules; -1 = no match.
        alloc::QuotaId quota = alloc::kUnmeteredQuota;
        uint64_t tokens256 = 0; ///< Bucket level, 1/256 frame units.
        uint64_t lastRefill = 0;
        uint32_t strikes = 0;
        bool quarantined = false;
    };
    FwDevice &fwDeviceFor(uint32_t src, uint32_t flowClass);
    /** Token-bucket + quota admission for one frame; charges @p len
     * in-flight bytes on Ok (sets @p inflightCharged; the caller
     * credits it back when frame handling completes). */
    AdmitResult admitFrame(rtos::CompartmentContext &ctx, uint32_t src,
                           uint32_t type, uint32_t len,
                           uint32_t flowClass, bool *inflightCharged);
    /** A violation costs the device a strike; enough strikes
     * quarantine it. Returns true when this strike *newly*
     * quarantined the device — the caller then purges ARQ state. */
    bool strikeDevice(uint32_t src);
    /** Drop all ARQ state toward/from @p src (frees held buffers):
     * retransmit state toward a quarantined device would otherwise
     * keep the heap above baseline and the ARQ forever non-idle. */
    void purgePeer(rtos::Thread &thread, uint32_t src);
    /** Flow class of a reliable frame: payload word 0's class byte
     * when the flow magic is present, else 0. */
    uint32_t frameFlowClass(rtos::CompartmentContext &ctx,
                            const cap::Capability &payload,
                            uint32_t len);

    rtos::Kernel &kernel_;
    NicDevice &nic_;
    rtos::Compartment &driver_;
    rtos::Compartment &firewall_;
    cap::Capability nicCap_;
    NetStackConfig config_;

    std::vector<NetConsumer> consumers_;
    rtos::Import pumpImport_;
    rtos::Import txImport_;
    rtos::Import processImport_;
    rtos::Import sendImport_;
    rtos::Import serviceImport_;

    /** Driver state: rings and the authoritative slot table. @{ */
    cap::Capability rxRing_;
    cap::Capability txRing_;
    std::vector<cap::Capability> rxSlots_;
    std::vector<cap::Capability> txSlots_;
    uint32_t rxConsumed_ = 0; ///< Free-running consumed count.
    uint32_t rxPosted_ = 0;   ///< Free-running posted count (RX_TAIL).
    uint32_t pendingRefills_ = 0;
    uint32_t txPosted_ = 0; ///< Free-running posted count (TX_HEAD).
    uint32_t txReaped_ = 0; ///< Free-running reaped count.
    /** @} */

    /** Firewall ARQ state, keyed by peer id. */
    std::map<uint32_t, ArqPeer> peers_;

    uint64_t packetsAccepted_ = 0;
    uint64_t bytesAccepted_ = 0;
    uint64_t parseDrops_ = 0;
    uint64_t consumerRejects_ = 0;
    uint64_t ringCorruptionsDetected_ = 0;
    uint64_t refillFailures_ = 0;
    uint64_t refillTimeouts_ = 0;
    uint64_t rxErrorsSeen_ = 0;
    uint64_t acksSent_ = 0;
    uint64_t txCompleted_ = 0;
    uint32_t ackCountdown_ = 0;

    uint64_t arqSent_ = 0;
    uint64_t arqDelivered_ = 0;
    uint64_t arqDuplicatesDropped_ = 0;
    uint64_t arqRetransmits_ = 0;
    uint64_t arqAcksSent_ = 0;
    uint64_t arqAcksReceived_ = 0;
    uint64_t arqPeerDeaths_ = 0;
    uint64_t arqRejoins_ = 0;
    uint64_t arqProbesSent_ = 0;
    uint64_t arqSendDrops_ = 0;
    uint64_t wrongDest_ = 0;
    uint64_t unreliableDelivered_ = 0;
    uint64_t retxHistogram_[kRetxHistogramBuckets] = {};

    /** Firewall admission state (reliable mode, admission on). */
    std::map<uint32_t, FwDevice> fwDevices_;
    alloc::QuotaLedger fwLedger_;
    uint64_t fwAdmitted_ = 0;
    uint64_t fwRateLimited_ = 0;
    uint64_t fwInflightDenied_ = 0;
    uint64_t fwOversized_ = 0;
    uint64_t fwMalformed_ = 0;
    uint64_t fwStaleEpochs_ = 0;
    uint64_t fwQuarantineDrops_ = 0;
    uint64_t fwStrikes_ = 0;
    uint64_t fwQuarantines_ = 0;
};

} // namespace cheriot::net

#endif // CHERIOT_NET_NET_STACK_H
