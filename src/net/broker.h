/**
 * @file
 * MQTT-lite telemetry broker compartment: the application tier's
 * publish/subscribe hub, built to *degrade by policy* instead of by
 * accident.
 *
 * The broker subscribes to the flow layer: every delivered data
 * segment is a publication on the topic named by its flow class
 * (telemetry / event / control, doubling as QoS 0/1/2). Each
 * publication is copied into a heap *record* allocated through the
 * broker's own sealed allocator capability — so broker memory is
 * metered against the broker's quota, not the publisher's — and
 * fanned out to every matching subscriber queue under the strict
 * heap-claim discipline: the first queue holds the allocation itself,
 * every additional queue `claim()`s it, each dequeue (or shed)
 * releases one claim, and the *last* release quarantines the record.
 * A drained broker therefore returns its heap to the post-boot
 * baseline — the chaos campaign's heal gate.
 *
 * Degradation is priority-classed. When a subscriber queue is full or
 * the heap refuses a record, the broker sheds the *oldest,
 * lowest-class* queued record first (QoS 0 before QoS 1), and never
 * sheds control: a control publication that cannot be accepted is a
 * typed Backpressure refusal, visible in the metrics, not a silent
 * drop. Every shed credits the publisher's in-flight budget back to
 * the firewall (the `setInflightHooks` wiring), so a flooding device
 * fills its own ceiling, gets shed, and starves — honest publishers
 * keep flowing.
 *
 * Fault containment (FaultSite::BrokerQueueCorrupt): each queue entry
 * carries a canary stored *in the heap record*; a scrambled entry
 * fails the cross-check at poll time and is dropped (freed, credited,
 * counted) — the subscriber sees one missing record, never a trap.
 */

#ifndef CHERIOT_NET_BROKER_H
#define CHERIOT_NET_BROKER_H

#include "cap/capability.h"
#include "rtos/compartment.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace cheriot::rtos
{
class Kernel;
class Thread;
} // namespace cheriot::rtos

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::fault
{
class FaultInjector;
}

namespace cheriot::net
{

/** The broker guest compartment (created before finalizeBoot). */
struct BrokerCompartment
{
    rtos::Compartment *broker = nullptr;
};

BrokerCompartment addBrokerCompartment(rtos::Kernel &kernel);

struct BrokerConfig
{
    uint32_t queueDepth = 16; ///< Per-subscriber queue bound.
    /** Broker heap quota (the sealed allocator capability's limit). */
    uint64_t heapQuotaBytes = 8192;
    /** Heap record size per publication. */
    uint32_t recordBytes = 32;
};

class TelemetryBroker
{
  public:
    static constexpr uint32_t kClassCount = 3;

    /** One delivered publication, as a subscriber sees it. */
    struct Record
    {
        uint32_t srcMac = 0;
        uint8_t cls = 0;
        uint32_t w0 = 0;
        uint32_t w1 = 0;
    };

    /** Firewall in-flight accounting: charge while a record sits in a
     * queue, credit on delivery or shed. */
    using ChargeFn = std::function<bool(uint32_t, uint64_t)>;
    using CreditFn = std::function<void(uint32_t, uint64_t)>;

    TelemetryBroker(rtos::Kernel &kernel,
                    const BrokerCompartment &parts,
                    BrokerConfig config = {});

    /** Mint the allocator capability, add the ingest/poll exports.
     * Call after finalizeBoot (the heap must be live). */
    void connect();
    /** The flow-consumer entry point: (payload, len). */
    const rtos::Import &ingestImport() const { return ingestImport_; }
    void setFaultInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }
    void setInflightHooks(ChargeFn charge, CreditFn credit)
    {
        charge_ = std::move(charge);
        credit_ = std::move(credit);
    }

    /** Register a subscriber for every class whose bit is set in
     * @p classMask (bit c = FlowClass c). Returns the subscriber id. */
    uint32_t subscribe(uint8_t classMask);
    /** Dequeue one record for @p subscriber (a real call into the
     * broker compartment: validate, copy out, free, credit). */
    bool poll(rtos::Thread &thread, uint32_t subscriber, Record *out);
    uint32_t queueDepth(uint32_t subscriber) const;

    /** @name Degradation metrics @{ */
    uint64_t published() const { return published_; }
    uint64_t delivered() const { return delivered_; }
    uint64_t shedByClass(uint32_t cls) const
    {
        return cls < kClassCount ? shedByClass_[cls] : 0;
    }
    uint64_t backpressureRefusals() const
    {
        return backpressureRefusals_;
    }
    uint64_t heapDenials() const { return heapDenials_; }
    uint64_t corruptDrops() const { return corruptDrops_; }
    uint64_t chargeDenials() const { return chargeDenials_; }
    uint32_t queueHighWater() const { return queueHighWater_; }
    uint64_t claims() const { return claims_; }
    /** Bytes of broker heap currently held by queued records: 0 when
     * drained — the heal-gate baseline. */
    uint64_t heapBytesLive() const { return heapBytesLive_; }
    /** @} */

    /** @name Snapshot state @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    struct Entry
    {
        cap::Capability rec;
        uint32_t srcMac = 0;
        uint8_t cls = 0;
        uint32_t w0 = 0;
        uint32_t w1 = 0;
        uint32_t canary = 0; ///< Mirror of the record's canary word.
    };
    struct Subscriber
    {
        uint8_t classMask = 0;
        std::deque<Entry> queue;
    };

    static uint32_t mix(uint32_t x);
    uint32_t canaryOf(uint32_t srcMac, uint8_t cls, uint32_t w0,
                      uint32_t w1) const;

    rtos::CallResult ingestBody(rtos::CompartmentContext &ctx,
                                rtos::ArgVec &args);
    rtos::CallResult pollBody(rtos::CompartmentContext &ctx,
                              rtos::ArgVec &args);
    /** Release one queue reference to @p e's record (free + credit);
     * the last release quarantines the record. */
    void releaseEntry(rtos::CompartmentContext &ctx, const Entry &e);
    /** Shed the oldest queued record of the lowest class below
     * @p cls from @p sub; false when nothing shellable. */
    bool shedLowerClass(rtos::CompartmentContext &ctx, Subscriber &sub,
                        uint8_t cls);

    rtos::Kernel &kernel_;
    rtos::Compartment &compartment_;
    BrokerConfig config_;
    fault::FaultInjector *injector_ = nullptr;
    ChargeFn charge_;
    CreditFn credit_;

    cap::Capability allocCap_; ///< Sealed allocator token (minted in
                               ///< connect; rebuilt by the boot).
    rtos::Import ingestImport_;
    rtos::Import pollImport_;

    std::vector<Subscriber> subscribers_;
    Record pollOut_; ///< pollBody's out-parameter staging.
    bool pollHit_ = false;

    uint64_t published_ = 0;
    uint64_t delivered_ = 0;
    uint64_t shedByClass_[kClassCount] = {};
    uint64_t backpressureRefusals_ = 0;
    uint64_t heapDenials_ = 0;
    uint64_t corruptDrops_ = 0;
    uint64_t chargeDenials_ = 0;
    uint64_t claims_ = 0;
    uint64_t heapBytesLive_ = 0;
    uint32_t queueHighWater_ = 0;
};

} // namespace cheriot::net

#endif // CHERIOT_NET_BROKER_H
