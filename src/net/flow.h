/**
 * @file
 * Flow-level transport: a TCP-lite connection state machine layered
 * on the ARQ reliable-delivery window, so a consumer sees *streams*,
 * not frames.
 *
 * Flow segments ride inside fleet-frame payloads (the flow header is
 * payload word 0; see fleet_frame.h), which buys the hard part for
 * free: handshake, credit and teardown segments travel over the ARQ
 * exactly-once channel, so the state machine never has to reason
 * about a lost SYN or a duplicated credit. Only the two *idempotent*
 * segment kinds — keepalives and resets — ride Unreliable frames,
 * deliberately: a reset sent to a rogue or vanished peer must never
 * create retransmit state toward it.
 *
 * Per ordered peer pair there is one flow: the initiator's `open()`
 * sends a SYN carrying its incarnation epoch and a fresh flow id; the
 * responder installs receive state and answers with a SYN-ACK
 * carrying the receive window (in segments). Data sends then block —
 * with a *typed* WindowClosed, not a drop — once (sent - credited)
 * reaches that window; the receiver extends credit every
 * `creditEvery` delivered segments over the reliable channel, so
 * credit cannot be lost and the window cannot deadlock. Teardown is
 * typed three ways: FIN/FIN-ACK (peer close), idle timeout, and
 * reset (protocol violation, stale incarnation, or corrupted state).
 *
 * Epoch validation: a SYN from an older incarnation than the one on
 * record is a replay (the rogue workload's signature move) and is
 * refused with a StaleEpoch reset; a newer incarnation replaces the
 * stale flow — the flow-level mirror of the ARQ epoch rule.
 *
 * Fault containment (FaultSite::FlowStateCorrupt): every flow-table
 * entry carries a canary over its identity fields; a scrambled entry
 * fails validation on next touch and is torn down with a typed
 * CloseReason::Reset — never a consumer trap.
 *
 * The manager is host-orchestrated like NetStack: the `flow` guest
 * compartment owns the deliver entry point (registered as the
 * NetStack consumer); replies it decides on (SYN-ACKs, credits,
 * resets) are queued as plain data and flushed through the firewall's
 * send export on the next service pass, keeping compartment call
 * chains shallow and deterministic.
 */

#ifndef CHERIOT_NET_FLOW_H
#define CHERIOT_NET_FLOW_H

#include "net/net_stack.h"

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace cheriot::fault
{
class FaultInjector;
}

namespace cheriot::net
{

/** Segment kinds (flow header byte 1). */
enum class FlowKind : uint8_t
{
    Syn = 1,
    SynAck = 2,
    Data = 3,
    Fin = 4,
    FinAck = 5,
    Reset = 6,     ///< Unreliable, idempotent.
    Window = 7,    ///< Credit extension (delta, in segments).
    Keepalive = 8, ///< Unreliable, idempotent; rx side echoes it.
};

/** Flow classes double as broker QoS classes (0 sheds first). */
enum class FlowClass : uint8_t
{
    Telemetry = 0,
    Event = 1,
    Control = 2,
};

/** Typed teardown reasons. */
enum class CloseReason : uint8_t
{
    None = 0,
    PeerClose,  ///< Orderly FIN / FIN-ACK.
    Timeout,    ///< Idle past the configured window.
    Reset,      ///< Protocol violation or corrupted flow state.
    StaleEpoch, ///< Superseded-incarnation replay refused.
};

const char *closeReasonName(CloseReason reason);

/** The flow guest compartment (created before finalizeBoot). */
struct FlowCompartment
{
    rtos::Compartment *flow = nullptr;
};

FlowCompartment addFlowCompartment(rtos::Kernel &kernel);

/** A downstream stream consumer: called as (payload, len) with the
 * whole validated frame; application words are payload words 2/3. */
struct FlowConsumer
{
    rtos::Import import;
};

struct FlowConfig
{
    /** Receive window advertised in the SYN-ACK: max uncredited
     * segments a sender may have in flight on one flow. */
    uint32_t window = 8;
    /** Receiver extends credit every N delivered segments. */
    uint32_t creditEvery = 4;
    /** Idle tx flows emit a keepalive after this many cycles. */
    uint64_t keepaliveIdleCycles = 1u << 14;
    /** Flows idle (nothing heard) past this are torn down with a
     * typed Timeout; 0 disables the timer. */
    uint64_t timeoutCycles = 0;
    uint32_t maxFlows = 64;
    /** Local incarnation, carried in the SYN epoch field. */
    uint32_t epoch = 0;
    /** Total payload words per data segment (>= 4). */
    uint32_t payloadWords = 8;
};

class FlowManager
{
  public:
    enum class OpenResult : uint8_t
    {
        Ok = 0,
        AlreadyOpen,
        TableFull,
        Refused, ///< The ARQ layer refused the SYN.
    };
    enum class SendResult : uint8_t
    {
        Ok = 0,
        NoFlow,
        NotEstablished, ///< SYN sent, SYN-ACK not yet heard.
        WindowClosed,   ///< Receive window exhausted: typed stall.
        Refused,        ///< ARQ backlog full or flow reset.
    };

    FlowManager(rtos::Kernel &kernel, NetStack &stack,
                const FlowCompartment &parts, FlowConfig config = {});

    /** Add the deliver export and remember the stream consumers. */
    void connect(const std::vector<FlowConsumer> &consumers);
    /** Register this as the NetStack consumer. */
    const rtos::Import &deliverImport() const { return deliverImport_; }
    void setFaultInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** @name Host-side flow operations @{ */
    OpenResult open(rtos::Thread &thread, uint32_t dstMac,
                    FlowClass cls);
    SendResult send(rtos::Thread &thread, uint32_t dstMac, uint32_t w2,
                    uint32_t w3);
    /** Orderly close: FIN now, state dropped on the FIN-ACK. */
    void close(rtos::Thread &thread, uint32_t dstMac);
    /** Flush queued replies, emit keepalives, reap idle flows. Call
     * once per round after the stack pump. Pass @p emitKeepalives
     * false while quiescing: a fleet being drained must go silent,
     * and idle probes would keep the fabric awake forever. */
    void service(rtos::Thread &thread, bool emitKeepalives = true);
    /** @} */

    /** @name Introspection @{ */
    bool txKnown(uint32_t dstMac) const;
    bool txEstablished(uint32_t dstMac) const;
    uint32_t txInflight(uint32_t dstMac) const;
    bool rxKnown(uint32_t srcMac) const;
    /** Reason the tx flow to @p dstMac last closed (None if never). */
    CloseReason lastClose(uint32_t dstMac) const;
    uint64_t opens() const { return opens_; }
    uint64_t accepts() const { return accepts_; }
    uint64_t segmentsSent() const { return segmentsSent_; }
    uint64_t segmentsDelivered() const { return segmentsDelivered_; }
    uint64_t windowStalls() const { return windowStalls_; }
    uint64_t creditsSent() const { return creditsSent_; }
    uint64_t creditsReceived() const { return creditsReceived_; }
    uint64_t keepalivesSent() const { return keepalivesSent_; }
    uint64_t keepalivesSeen() const { return keepalivesSeen_; }
    uint64_t timeouts() const { return timeouts_; }
    uint64_t resetsSent() const { return resetsSent_; }
    uint64_t resetsReceived() const { return resetsReceived_; }
    uint64_t staleEpochResets() const { return staleEpochResets_; }
    uint64_t unknownFlowResets() const { return unknownFlowResets_; }
    uint64_t corruptResets() const { return corruptResets_; }
    uint64_t nonFlowDrops() const { return nonFlowDrops_; }
    uint64_t peerCloses() const { return peerCloses_; }
    /** @} */

    /** @name Snapshot state @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    enum class State : uint8_t
    {
        SynSent = 1,
        Established = 2,
        FinSent = 3,
    };

    struct Flow
    {
        uint32_t peer = 0;
        uint16_t id = 0;
        uint8_t cls = 0;
        State state = State::SynSent;
        uint32_t peerEpoch = 0;  ///< rx side: sender incarnation.
        uint32_t peerWindow = 1; ///< tx side: from the SYN-ACK.
        uint32_t sent = 0;       ///< tx: data segments sent.
        uint32_t credited = 0;   ///< tx: credit received (segments).
        uint32_t delivered = 0;  ///< rx: data segments delivered.
        uint32_t creditCountdown = 0;
        uint64_t lastHeard = 0;
        uint64_t lastSent = 0;
        uint32_t canary = 0; ///< Over the identity fields; a
                             ///< scrambled entry dies typed.
    };

    /** A reply decided inside the deliver body, flushed host-side. */
    struct PendingSegment
    {
        uint32_t dst = 0;
        FlowKind kind = FlowKind::Reset;
        uint8_t cls = 0;
        uint16_t id = 0;
        uint16_t arg = 0;
        bool unreliable = false;
    };

    static uint32_t mix(uint32_t x);
    uint32_t canaryOf(const Flow &f) const;
    void seal(Flow &f) const { f.canary = canaryOf(f); }
    /** Fault hook + invariant check; false means the entry is
     * corrupted and must be torn down with a typed Reset. */
    bool validate(Flow &f);
    /** Tear a corrupted/violated flow down: queue an unreliable
     * Reset, record the reason, erase the entry. */
    void resetFlow(std::map<uint32_t, Flow> &table, uint32_t peer,
                   CloseReason reason);

    rtos::CallResult deliverBody(rtos::CompartmentContext &ctx,
                                 rtos::ArgVec &args);
    void queueSegment(uint32_t dst, FlowKind kind, uint8_t cls,
                      uint16_t id, uint16_t arg, bool unreliable);
    bool sendSegment(rtos::Thread &thread, const PendingSegment &seg);

    rtos::Kernel &kernel_;
    NetStack &stack_;
    rtos::Compartment &compartment_;
    FlowConfig config_;
    fault::FaultInjector *injector_ = nullptr;

    std::vector<FlowConsumer> consumers_;
    rtos::Import deliverImport_;

    uint32_t nextFlowSeq_ = 0;
    /** Flows we opened (keyed by peer) / flows opened to us. std::map
     * keeps serialization canonical. */
    std::map<uint32_t, Flow> txFlows_;
    std::map<uint32_t, Flow> rxFlows_;
    std::map<uint32_t, uint8_t> lastClose_; ///< tx side, CloseReason.
    std::deque<PendingSegment> pendingSegments_;

    uint64_t opens_ = 0;
    uint64_t accepts_ = 0;
    uint64_t segmentsSent_ = 0;
    uint64_t segmentsDelivered_ = 0;
    uint64_t windowStalls_ = 0;
    uint64_t creditsSent_ = 0;
    uint64_t creditsReceived_ = 0;
    uint64_t keepalivesSent_ = 0;
    uint64_t keepalivesSeen_ = 0;
    uint64_t timeouts_ = 0;
    uint64_t resetsSent_ = 0;
    uint64_t resetsReceived_ = 0;
    uint64_t staleEpochResets_ = 0;
    uint64_t unknownFlowResets_ = 0;
    uint64_t corruptResets_ = 0;
    uint64_t nonFlowDrops_ = 0;
    uint64_t peerCloses_ = 0;
};

} // namespace cheriot::net

#endif // CHERIOT_NET_FLOW_H
