#include "net/nic_device.h"

#include "fault/fault_injector.h"
#include "snapshot/serializer.h"

#include <vector>

namespace cheriot::net
{

uint32_t
NicDevice::read32(uint32_t offset)
{
    switch (offset) {
      case kRegCtrl: return ctrl_;
      case kRegIrqStatus: return irqStatus_;
      case kRegIrqEnable: return irqEnable_;
      case kRegRxRingBase: return rxRingBase_;
      case kRegRxRingCount: return rxRingCount_;
      case kRegRxHead: return rxHead_;
      case kRegRxTail: return rxTail_;
      case kRegDmaBase: return dmaBase_;
      case kRegDmaSize: return dmaSize_;
      case kRegTxRingBase: return txRingBase_;
      case kRegTxRingCount: return txRingCount_;
      case kRegTxHead: return txHead_;
      case kRegTxTail: return txTail_;
      case kRegRxPackets: return static_cast<uint32_t>(rxPackets_);
      case kRegRxBytesLo: return static_cast<uint32_t>(rxBytes_);
      case kRegRxBytesHi: return static_cast<uint32_t>(rxBytes_ >> 32);
      case kRegRxDrops: return static_cast<uint32_t>(rxDrops_);
      case kRegRxErrors: return static_cast<uint32_t>(rxErrors_);
      case kRegTxPackets: return static_cast<uint32_t>(txPackets_);
      case kRegTxBytesLo: return static_cast<uint32_t>(txBytes_);
      case kRegTxBytesHi: return static_cast<uint32_t>(txBytes_ >> 32);
      case kRegTxChecksum: return txChecksum_;
      default: return 0;
    }
}

void
NicDevice::write32(uint32_t offset, uint32_t value)
{
    switch (offset) {
      case kRegCtrl: ctrl_ = value; break;
      case kRegIrqStatus: irqStatus_ &= ~value; break; // W1C
      case kRegIrqEnable: irqEnable_ = value; break;
      case kRegRxRingBase: rxRingBase_ = value; break;
      case kRegRxRingCount: rxRingCount_ = value; break;
      case kRegRxTail: rxTail_ = value; break;
      case kRegDmaBase: dmaBase_ = value; break;
      case kRegDmaSize: dmaSize_ = value; break;
      case kRegTxRingBase: txRingBase_ = value; break;
      case kRegTxRingCount: txRingCount_ = value; break;
      case kRegTxHead: txHead_ = value; break;
      case kRegTxKick: processTx(); break;
      default: break; // RO registers: writes ignored.
    }
}

bool
NicDevice::dmaOk(uint32_t addr, uint32_t bytes) const
{
    if (dmaSize_ == 0 || addr < dmaBase_ ||
        addr - dmaBase_ + bytes > dmaSize_) {
        return false;
    }
    return sram_.contains(addr, bytes);
}

bool
NicDevice::deliver(const uint8_t *frame, uint32_t bytes)
{
    if (injector_ != nullptr && injector_->nicLinkFrameArriving()) {
        // The link ate the frame before the device saw it
        // (NicLinkDrop): indistinguishable from ring-full loss to the
        // stack above, and recovered the same way — retransmission.
        rxDrops_++;
        raise(kIrqRxOverflow);
        return false;
    }
    if ((ctrl_ & kCtrlRxEnable) == 0 || rxRingCount_ == 0 ||
        bytes == 0 || bytes > kDescLenMask) {
        rxDrops_++;
        raise(kIrqRxOverflow);
        return false;
    }
    if (rxHead_ == rxTail_) {
        // No posted descriptor: the driver is behind. Drop on the
        // floor and latch the overflow interrupt — backpressure.
        rxDrops_++;
        raise(kIrqRxOverflow);
        return false;
    }

    const uint32_t slot = rxHead_ % rxRingCount_;
    const uint32_t descAddr = rxRingBase_ + slot * kDescBytes;
    if (!dmaOk(descAddr, kDescBytes)) {
        // The ring itself is outside the window: refuse outright
        // (cannot even write an error flag back).
        rxErrors_++;
        raise(kIrqRxError);
        return false;
    }
    if (injector_ != nullptr) {
        // A glitching bus may corrupt the descriptor the device is
        // about to fetch (NicRingCorrupt fires here).
        injector_->nicDeliveryStarting(descAddr);
    }

    const uint32_t bufAddr = sram_.read32(descAddr);
    const uint32_t word1 = sram_.read32(descAddr + 4);
    const uint32_t capacity = word1 & kDescLenMask;
    if ((word1 & kDescDone) != 0 || capacity < bytes ||
        (bufAddr & 3) != 0 || !dmaOk(bufAddr, capacity)) {
        // Bad descriptor: consume the slot with an error writeback so
        // the driver can detect, repair and repost it.
        sram_.write32(descAddr + 4, word1 | kDescDone | kDescError);
        rxHead_++;
        rxErrors_++;
        raise(kIrqRxError);
        return false;
    }

    // DMA the payload through the *data* ports: every touched granule
    // half loses its capability micro-tag (§4 tagged-bus rule).
    uint32_t off = 0;
    for (; off + 4 <= bytes; off += 4) {
        const uint32_t word = static_cast<uint32_t>(frame[off]) |
                              static_cast<uint32_t>(frame[off + 1]) << 8 |
                              static_cast<uint32_t>(frame[off + 2]) << 16 |
                              static_cast<uint32_t>(frame[off + 3]) << 24;
        sram_.write32(bufAddr + off, word);
    }
    for (; off < bytes; ++off) {
        sram_.write8(bufAddr + off, frame[off]);
    }

    sram_.write32(descAddr + 4, bytes | kDescDone);
    lastRxAddr_ = bufAddr;
    lastRxBytes_ = bytes;
    rxHead_++;
    rxPackets_++;
    rxBytes_ += bytes;
    raise(kIrqRxPacket);
    if (injector_ != nullptr) {
        // A glitching DMA engine may have written a corrupted beat
        // into the landed payload (NicDmaCorrupt fires here).
        injector_->nicDmaLanded(bufAddr, bytes);
    }
    return true;
}

void
NicDevice::processTx()
{
    if ((ctrl_ & kCtrlTxEnable) == 0 || txRingCount_ == 0) {
        return;
    }
    while (txTail_ != txHead_) {
        const uint32_t slot = txTail_ % txRingCount_;
        const uint32_t descAddr = txRingBase_ + slot * kDescBytes;
        if (!dmaOk(descAddr, kDescBytes)) {
            rxErrors_++;
            raise(kIrqRxError);
            break;
        }
        const uint32_t bufAddr = sram_.read32(descAddr);
        const uint32_t word1 = sram_.read32(descAddr + 4);
        const uint32_t len = word1 & kDescLenMask;
        if ((word1 & kDescDone) != 0 || len == 0 || (bufAddr & 3) != 0 ||
            !dmaOk(bufAddr, len)) {
            sram_.write32(descAddr + 4, word1 | kDescDone | kDescError);
            txTail_++;
            rxErrors_++;
            raise(kIrqRxError);
            continue;
        }
        // "Transmit": fold the payload into the wire checksum, and
        // hand the bytes to the sink (the fleet fabric) if wired.
        for (uint32_t off = 0; off + 4 <= len; off += 4) {
            txChecksum_ ^= sram_.read32(bufAddr + off);
        }
        if (txSink_) {
            std::vector<uint8_t> wire(len);
            for (uint32_t off = 0; off < len; ++off) {
                wire[off] = sram_.read8(bufAddr + off);
            }
            txSink_(wire.data(), len);
        }
        sram_.write32(descAddr + 4, len | kDescDone);
        txTail_++;
        txPackets_++;
        txBytes_ += len;
        raise(kIrqTxDone);
    }
}

void
NicDevice::serialize(snapshot::Writer &w) const
{
    w.u32(ctrl_);
    w.u32(irqStatus_);
    w.u32(irqEnable_);
    w.u32(rxRingBase_);
    w.u32(rxRingCount_);
    w.u32(rxHead_);
    w.u32(rxTail_);
    w.u32(dmaBase_);
    w.u32(dmaSize_);
    w.u32(txRingBase_);
    w.u32(txRingCount_);
    w.u32(txHead_);
    w.u32(txTail_);
    w.u64(rxPackets_);
    w.u64(rxBytes_);
    w.u64(rxDrops_);
    w.u64(rxErrors_);
    w.u64(txPackets_);
    w.u64(txBytes_);
    w.u32(txChecksum_);
    w.u32(lastRxAddr_);
    w.u32(lastRxBytes_);
}

bool
NicDevice::deserialize(snapshot::Reader &r)
{
    ctrl_ = r.u32();
    irqStatus_ = r.u32();
    irqEnable_ = r.u32();
    rxRingBase_ = r.u32();
    rxRingCount_ = r.u32();
    rxHead_ = r.u32();
    rxTail_ = r.u32();
    dmaBase_ = r.u32();
    dmaSize_ = r.u32();
    txRingBase_ = r.u32();
    txRingCount_ = r.u32();
    txHead_ = r.u32();
    txTail_ = r.u32();
    rxPackets_ = r.u64();
    rxBytes_ = r.u64();
    rxDrops_ = r.u64();
    rxErrors_ = r.u64();
    txPackets_ = r.u64();
    txBytes_ = r.u64();
    txChecksum_ = r.u32();
    lastRxAddr_ = r.u32();
    lastRxBytes_ = r.u32();
    return r.ok();
}

} // namespace cheriot::net
