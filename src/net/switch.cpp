#include "net/switch.h"

#include "fault/fault_injector.h"
#include "net/nic_device.h"

namespace cheriot::net
{

uint32_t
VirtualSwitch::addPort(NicDevice *nic)
{
    const uint32_t id = static_cast<uint32_t>(ports_.size());
    ports_.emplace_back(nic, seed_, id);
    return id;
}

void
VirtualSwitch::attachNic(uint32_t port, NicDevice *nic)
{
    ports_.at(port).nic = nic;
}

void
VirtualSwitch::setLinkFaults(uint32_t port, const LinkFaultConfig &config)
{
    ports_.at(port).link.config = config;
}

const LinkFaultConfig &
VirtualSwitch::linkFaults(uint32_t port) const
{
    return ports_.at(port).link.config;
}

void
VirtualSwitch::setPartitioned(uint32_t port, bool isolated)
{
    ports_.at(port).link.partitioned = isolated;
}

bool
VirtualSwitch::partitioned(uint32_t port) const
{
    return ports_.at(port).link.partitioned;
}

void
VirtualSwitch::setDirectionalPartition(uint32_t port, bool txBlocked,
                                       bool rxBlocked)
{
    Port &p = ports_.at(port);
    p.link.txBlocked = txBlocked;
    p.link.rxBlocked = rxBlocked;
}

void
VirtualSwitch::stallPort(uint32_t port, uint32_t ticks)
{
    Port &p = ports_.at(port);
    if (ticks > p.stallTicksLeft) {
        p.stallTicksLeft = ticks;
    }
}

int32_t
VirtualSwitch::learnedPort(uint32_t mac) const
{
    const auto it = macTable_.find(mac);
    return it == macTable_.end() ? -1
                                 : static_cast<int32_t>(it->second);
}

void
VirtualSwitch::ingress(uint32_t port, const uint8_t *frame,
                       uint32_t bytes)
{
    if (port >= ports_.size() || bytes == 0) {
        return;
    }
    Port &in = ports_[port];
    in.counters.ingressFrames++;
    if (in.link.ingressBlocked()) {
        in.counters.partitionDrops++;
        return;
    }

    const uint32_t src = fleetFrameSrc(frame, bytes);
    if (src != kFleetBroadcast) {
        macTable_[src] = port;
    }

    const uint32_t dst = fleetFrameDst(frame, bytes);
    const auto it = dst == kFleetBroadcast ? macTable_.end()
                                           : macTable_.find(dst);
    if (it != macTable_.end()) {
        if (it->second != port) {
            enqueue(it->second, frame, bytes);
        }
        return;
    }
    // Unknown unicast or broadcast: flood to every other port.
    for (uint32_t out = 0; out < ports_.size(); ++out) {
        if (out == port) {
            continue;
        }
        enqueue(out, frame, bytes);
        ports_[out].counters.flooded++;
    }
}

void
VirtualSwitch::enqueue(uint32_t port, const uint8_t *frame,
                       uint32_t bytes)
{
    Port &out = ports_[port];
    if (out.link.egressBlocked()) {
        out.counters.partitionDrops++;
        return;
    }
    if (out.queue.size() >= maxQueueDepth_) {
        out.counters.queueDrops++;
        return;
    }
    QueuedFrame queued;
    queued.bytes.assign(frame, frame + bytes);
    queued.dueTick = now_;
    if (out.link.roll(out.link.config.delayPermille)) {
        queued.dueTick = now_ + out.link.delayTicks();
        out.counters.delayed++;
    }
    out.queue.push_back(std::move(queued));
}

void
VirtualSwitch::tick()
{
    if (injector_ != nullptr) {
        uint32_t portSel = 0;
        uint32_t stallTicks = 0;
        if (injector_->switchTick(&portSel, &stallTicks) &&
            !ports_.empty()) {
            stallPort(portSel % ports_.size(), stallTicks);
        }
    }
    for (Port &port : ports_) {
        if (port.stallTicksLeft > 0) {
            port.stallTicksLeft--;
            port.counters.stallTicks++;
            continue; // Egress frozen; the queue keeps filling.
        }
        // Drain every frame due this tick. Delayed frames stay; a
        // reorder roll swaps the head with the next due frame before
        // it goes out.
        size_t scanned = 0;
        while (scanned < port.queue.size()) {
            if (port.queue[scanned].dueTick > now_) {
                scanned++;
                continue;
            }
            if (port.queue.size() - scanned > 1 &&
                port.link.roll(port.link.config.reorderPermille)) {
                // Find the next due frame behind this one and let it
                // jump the queue.
                for (size_t j = scanned + 1; j < port.queue.size();
                     ++j) {
                    if (port.queue[j].dueTick <= now_) {
                        std::swap(port.queue[scanned], port.queue[j]);
                        port.counters.reordered++;
                        break;
                    }
                }
            }
            std::vector<uint8_t> frame =
                std::move(port.queue[scanned].bytes);
            port.queue.erase(port.queue.begin() +
                             static_cast<long>(scanned));
            deliverThroughLink(port, std::move(frame));
        }
    }
    now_++;
}

void
VirtualSwitch::deliverThroughLink(Port &port, std::vector<uint8_t> frame)
{
    if (port.link.egressBlocked()) {
        port.counters.partitionDrops++;
        return;
    }
    if (port.link.roll(port.link.config.dropPermille)) {
        port.counters.faultDrops++;
        return;
    }
    if (port.link.roll(port.link.config.corruptPermille) &&
        !frame.empty()) {
        const uint32_t bit =
            port.link.corruptBit(static_cast<uint32_t>(frame.size()));
        frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        port.counters.corrupted++;
    }
    const bool duplicate =
        port.link.roll(port.link.config.duplicatePermille);
    deliverToNic(port, frame);
    if (duplicate) {
        port.counters.duplicated++;
        deliverToNic(port, frame);
    }
}

void
VirtualSwitch::deliverToNic(Port &port, const std::vector<uint8_t> &frame)
{
    if (port.nic == nullptr) {
        return;
    }
    if (port.nic->deliver(frame.data(),
                          static_cast<uint32_t>(frame.size()))) {
        port.counters.forwarded++;
        totalDelivered_++;
    } else {
        port.counters.nicBackpressure++;
    }
}

} // namespace cheriot::net
