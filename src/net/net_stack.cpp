#include "net/net_stack.h"

#include "mem/memory_map.h"
#include "rtos/kernel.h"
#include "snapshot/serializer.h"
#include "util/log.h"

namespace cheriot::net
{

using cap::Capability;
using rtos::ArgVec;
using rtos::CallResult;
using rtos::CompartmentContext;

namespace
{

/** Firewall parse budget on top of the per-word checksum loads. */
constexpr uint32_t kFirewallParseCyclesPerByte = 8;

/** Deterministic payload word for frame position @p i of frame
 * @p seq (the traffic generator and the ack builder share it). */
uint32_t
frameWord(uint32_t seq, uint32_t i)
{
    return (seq * 0x9e3779b9u) ^ (i * 0x85ebca6bu) ^ 0xc3a5c85cu;
}

} // namespace

std::vector<uint8_t>
buildFrame(uint32_t seq, uint32_t bytes)
{
    const uint32_t words = bytes < 8 ? 2 : (bytes + 3) / 4;
    std::vector<uint8_t> frame(words * 4);
    uint32_t checksum = 0;
    for (uint32_t i = 0; i < words; ++i) {
        // The final word balances the XOR of the whole frame to zero.
        const uint32_t word =
            i + 1 < words ? frameWord(seq, i) : checksum;
        checksum ^= word;
        frame[i * 4 + 0] = static_cast<uint8_t>(word);
        frame[i * 4 + 1] = static_cast<uint8_t>(word >> 8);
        frame[i * 4 + 2] = static_cast<uint8_t>(word >> 16);
        frame[i * 4 + 3] = static_cast<uint8_t>(word >> 24);
    }
    return frame;
}

NetCompartments
addNetCompartments(rtos::Kernel &kernel)
{
    NetCompartments parts;
    parts.nicWindow =
        kernel.loader().mmioCap(mem::kNicMmioBase, mem::kNicMmioSize);
    parts.driver = &kernel.createCompartment("net_driver");
    parts.driver->addMmioImport("nic", parts.nicWindow);
    parts.firewall = &kernel.createCompartment("firewall");
    return parts;
}

NetStack::NetStack(rtos::Kernel &kernel, NicDevice &nic,
                   const NetCompartments &compartments,
                   NetStackConfig config)
    : kernel_(kernel), nic_(nic), driver_(*compartments.driver),
      firewall_(*compartments.firewall),
      nicCap_(compartments.nicWindow), config_(config)
{
    if (config_.rxRingEntries == 0 || config_.txRingEntries == 0 ||
        config_.bufBytes < 16) {
        fatal("net: degenerate stack configuration");
    }
}

uint32_t
NetStack::mmioRead(CompartmentContext &ctx, uint32_t reg)
{
    return ctx.mem.loadWord(nicCap_, nicCap_.base() + reg);
}

void
NetStack::mmioWrite(CompartmentContext &ctx, uint32_t reg,
                    uint32_t value)
{
    ctx.mem.storeWord(nicCap_, nicCap_.base() + reg, value);
}

void
NetStack::connect(const std::vector<NetConsumer> &consumers)
{
    consumers_ = consumers;
    const uint32_t pumpIndex = driver_.addExport(
        {"pump",
         [this](CompartmentContext &ctx, ArgVec &) {
             return pumpBody(ctx);
         },
         /*interruptsDisabled=*/false});
    const uint32_t txIndex = driver_.addExport(
        {"tx",
         [this](CompartmentContext &ctx, ArgVec &args) {
             return txBody(ctx, args);
         },
         /*interruptsDisabled=*/false});
    const uint32_t processIndex = firewall_.addExport(
        {"process",
         [this](CompartmentContext &ctx, ArgVec &args) {
             return processBody(ctx, args);
         },
         /*interruptsDisabled=*/false});
    pumpImport_ = kernel_.importOf(driver_, pumpIndex);
    txImport_ = kernel_.importOf(driver_, txIndex);
    processImport_ = kernel_.importOf(firewall_, processIndex);
}

void
NetStack::start(rtos::Thread &thread)
{
    rtos::GuestContext &g = kernel_.guest();
    rxSlots_.assign(config_.rxRingEntries, Capability());
    txSlots_.assign(config_.txRingEntries, Capability());

    rxRing_ = kernel_.malloc(thread,
                             config_.rxRingEntries * NicDevice::kDescBytes);
    txRing_ = kernel_.malloc(thread,
                             config_.txRingEntries * NicDevice::kDescBytes);
    if (!rxRing_.tag() || !txRing_.tag()) {
        fatal("net: descriptor ring allocation failed");
    }
    for (uint32_t i = 0; i < config_.txRingEntries; ++i) {
        g.storeWord(txRing_, txRing_.base() + i * NicDevice::kDescBytes,
                    0);
        g.storeWord(txRing_,
                    txRing_.base() + i * NicDevice::kDescBytes + 4, 0);
    }

    // Post one freshly allocated buffer per RX slot.
    for (uint32_t i = 0; i < config_.rxRingEntries; ++i) {
        const Capability buf = kernel_.malloc(thread, config_.bufBytes);
        if (!buf.tag()) {
            fatal("net: boot-time RX buffer allocation failed");
        }
        rxSlots_[i] = buf;
        const uint32_t descAddr =
            rxRing_.base() + i * NicDevice::kDescBytes;
        g.storeWord(rxRing_, descAddr, buf.base());
        g.storeWord(rxRing_, descAddr + 4,
                    config_.bufBytes & NicDevice::kDescLenMask);
    }
    rxPosted_ = config_.rxRingEntries;

    // Program the device: rings, the heap-bounded DMA window, enables.
    const uint32_t base = nicCap_.base();
    const uint32_t heapBase = kernel_.machine().heapBase();
    const uint32_t heapSize =
        kernel_.machine().machineConfig().heapSize;
    g.storeWord(nicCap_, base + NicDevice::kRegRxRingBase,
                rxRing_.base());
    g.storeWord(nicCap_, base + NicDevice::kRegRxRingCount,
                config_.rxRingEntries);
    g.storeWord(nicCap_, base + NicDevice::kRegTxRingBase,
                txRing_.base());
    g.storeWord(nicCap_, base + NicDevice::kRegTxRingCount,
                config_.txRingEntries);
    g.storeWord(nicCap_, base + NicDevice::kRegDmaBase, heapBase);
    g.storeWord(nicCap_, base + NicDevice::kRegDmaSize, heapSize);
    g.storeWord(nicCap_, base + NicDevice::kRegRxTail, rxPosted_);
    g.storeWord(nicCap_, base + NicDevice::kRegIrqEnable,
                NicDevice::kIrqRxPacket | NicDevice::kIrqRxOverflow |
                    NicDevice::kIrqTxDone | NicDevice::kIrqRxError);
    g.storeWord(nicCap_, base + NicDevice::kRegCtrl,
                NicDevice::kCtrlRxEnable | NicDevice::kCtrlTxEnable);
}

uint32_t
NetStack::pump(rtos::Thread &thread)
{
    const CallResult result = kernel_.call(thread, pumpImport_, {});
    return result.ok() ? result.value.address() : 0;
}

CallResult
NetStack::pumpBody(CompartmentContext &ctx)
{
    // Driver activation frame (ISR bookkeeping spilled to the stack).
    const Capability frame = ctx.stackAlloc(64);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    // Acknowledge the level-triggered interrupt before draining.
    const uint32_t status = mmioRead(ctx, NicDevice::kRegIrqStatus);
    if (status != 0) {
        mmioWrite(ctx, NicDevice::kRegIrqStatus, status);
    }

    uint32_t accepted = 0;
    const uint32_t head = mmioRead(ctx, NicDevice::kRegRxHead);
    while (rxConsumed_ != head) {
        const uint32_t slot = rxConsumed_ % config_.rxRingEntries;
        const uint32_t descAddr =
            rxRing_.base() + slot * NicDevice::kDescBytes;
        const uint32_t w0 = ctx.mem.loadWord(rxRing_, descAddr);
        const uint32_t w1 = ctx.mem.loadWord(rxRing_, descAddr + 4);
        if ((w1 & NicDevice::kDescDone) == 0) {
            break; // Device has not filled this slot yet.
        }
        const Capability buf = rxSlots_[slot];
        const uint32_t len = w1 & NicDevice::kDescLenMask;
        bool deliverable = true;
        if (!buf.tag()) {
            ringCorruptionsDetected_++;
            deliverable = false;
        } else if ((w1 & NicDevice::kDescError) != 0) {
            rxErrorsSeen_++;
            deliverable = false;
        } else if (w0 != buf.base() || len < 8 || (len & 3) != 0 ||
                   len > config_.bufBytes) {
            // Descriptor bytes are device-written data with no
            // authority: the slot table is the ground truth, and a
            // mismatch means the ring was corrupted. The packet is
            // lost; nothing is dereferenced through the bad bytes.
            ringCorruptionsDetected_++;
            deliverable = false;
        }
        if (deliverable) {
            // Zero-copy lend: bounded to the landed frame, Global
            // stripped so the firewall can hold it only in registers
            // and on the wiped stack.
            Capability lent =
                buf.withAddress(buf.base()).withBounds(len);
            if (!lent.tag()) {
                lent = buf;
            }
            lent = lent.withPermsAnd(
                static_cast<uint16_t>(~cap::PermGlobal));
            ArgVec fwArgs = ArgVec::of(
                {lent, Capability().withAddress(len)});
            const CallResult handled =
                ctx.kernel.call(ctx.thread, processImport_, fwArgs);
            if (handled.ok() && handled.value.address() == 1) {
                accepted++;
                packetsAccepted_++;
                bytesAccepted_ += len;
            } else if (!handled.ok()) {
                consumerRejects_++;
            }
        }
        if (buf.tag()) {
            // Release the driver's ownership. If the firewall (or a
            // consumer beyond it) still holds a claim, the memory
            // stays live; the last release quarantines it.
            ctx.kernel.free(ctx.thread, buf);
        }
        rxSlots_[slot] = Capability();
        rxConsumed_++;
        pendingRefills_++;
    }

    // Repost consumed slots. A failed refill leaves the ring short —
    // the NIC drops until the heap recovers: physical backpressure.
    while (pendingRefills_ > 0) {
        const Capability buf =
            ctx.kernel.malloc(ctx.thread, config_.bufBytes);
        if (!buf.tag()) {
            refillFailures_++;
            break;
        }
        const uint32_t slot = rxPosted_ % config_.rxRingEntries;
        const uint32_t descAddr =
            rxRing_.base() + slot * NicDevice::kDescBytes;
        rxSlots_[slot] = buf;
        ctx.mem.storeWord(rxRing_, descAddr, buf.base());
        ctx.mem.storeWord(rxRing_, descAddr + 4,
                          config_.bufBytes & NicDevice::kDescLenMask);
        rxPosted_++;
        pendingRefills_--;
    }
    mmioWrite(ctx, NicDevice::kRegRxTail, rxPosted_);

    reapTx(ctx);
    return CallResult::ofInt(accepted);
}

void
NetStack::reapTx(CompartmentContext &ctx)
{
    const uint32_t tail = mmioRead(ctx, NicDevice::kRegTxTail);
    while (txReaped_ != tail) {
        const uint32_t slot = txReaped_ % config_.txRingEntries;
        if (txSlots_[slot].tag()) {
            // Transmit done: release the claim taken at post time.
            ctx.kernel.free(ctx.thread, txSlots_[slot]);
            txCompleted_++;
        }
        txSlots_[slot] = Capability();
        txReaped_++;
    }
}

CallResult
NetStack::txBody(CompartmentContext &ctx, ArgVec &args)
{
    const Capability frame = ctx.stackAlloc(48);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    reapTx(ctx); // Recycle completed slots before checking capacity.
    const Capability buf = args[0];
    const uint32_t len = args[1].address();
    if (!buf.tag() || len < 8 || (len & 3) != 0 ||
        len > NicDevice::kDescLenMask ||
        txPosted_ - txReaped_ >= config_.txRingEntries) {
        return CallResult::ofInt(0); // Busy or refused.
    }
    // Claim keeps the caller's buffer alive until transmit completes,
    // however quickly the caller frees its own reference.
    if (ctx.kernel.claim(ctx.thread, buf) !=
        alloc::HeapAllocator::FreeResult::Ok) {
        return CallResult::ofInt(0);
    }
    const uint32_t slot = txPosted_ % config_.txRingEntries;
    const uint32_t descAddr =
        txRing_.base() + slot * NicDevice::kDescBytes;
    txSlots_[slot] = buf;
    ctx.mem.storeWord(txRing_, descAddr, buf.base());
    ctx.mem.storeWord(txRing_, descAddr + 4, len);
    txPosted_++;
    mmioWrite(ctx, NicDevice::kRegTxHead, txPosted_);
    mmioWrite(ctx, NicDevice::kRegTxKick, 1);
    return CallResult::ofInt(1);
}

CallResult
NetStack::processBody(CompartmentContext &ctx, ArgVec &args)
{
    const Capability frame = ctx.stackAlloc(64);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    const Capability payload = args[0];
    const uint32_t len = args[1].address();
    if (!payload.tag() || len < 8 || (len & 3) != 0 ||
        payload.length() < len) {
        parseDrops_++;
        return CallResult::ofInt(0);
    }
    // heap_claim: from here the buffer outlives the driver's free.
    if (ctx.kernel.claim(ctx.thread, payload) !=
        alloc::HeapAllocator::FreeResult::Ok) {
        parseDrops_++;
        return CallResult::ofInt(0);
    }

    // Frame integrity: the XOR of every payload word must balance to
    // zero (the generator's trailing checksum word ensures it).
    uint32_t checksum = 0;
    for (uint32_t off = 0; off < len; off += 4) {
        checksum ^= ctx.mem.loadWord(payload, payload.base() + off);
    }
    ctx.mem.chargeExecution(len * kFirewallParseCyclesPerByte);
    if (checksum != 0) {
        parseDrops_++;
        ctx.kernel.free(ctx.thread, payload);
        return CallResult::ofInt(0);
    }

    // Mutating consumers (TLS decrypts records in place) keep the
    // writable view; everyone else sees read-only, non-capability
    // memory.
    const Capability readOnly = payload.withPermsAnd(
        static_cast<uint16_t>(~(cap::PermStore | cap::PermStoreLocal |
                                cap::PermMemCap)));
    for (const auto &consumer : consumers_) {
        ArgVec consumerArgs = ArgVec::of(
            {consumer.mutates ? payload : readOnly,
             Capability().withAddress(len)});
        const CallResult result =
            ctx.kernel.call(ctx.thread, consumer.import, consumerArgs);
        if (!result.ok()) {
            ctx.kernel.free(ctx.thread, payload);
            return result; // Propagate: the driver drops the packet.
        }
    }

    // Ack every Nth accepted packet: the TX half of the claim
    // contract — the driver claims the ack buffer, we free our own
    // reference immediately, and the memory lives until transmit
    // completes.
    if (config_.ackEveryN != 0 && ++ackCountdown_ >= config_.ackEveryN) {
        ackCountdown_ = 0;
        const Capability ack =
            ctx.kernel.malloc(ctx.thread, config_.ackBytes);
        if (ack.tag()) {
            const uint32_t words = config_.ackBytes / 4;
            uint32_t ackSum = 0;
            for (uint32_t i = 0; i + 1 < words; ++i) {
                const uint32_t word = frameWord(0xacu, i);
                ackSum ^= word;
                ctx.mem.storeWord(ack, ack.base() + i * 4, word);
            }
            ctx.mem.storeWord(ack, ack.base() + (words - 1) * 4, ackSum);
            ArgVec txArgs = ArgVec::of(
                {ack, Capability().withAddress(config_.ackBytes)});
            const CallResult sent =
                ctx.kernel.call(ctx.thread, txImport_, txArgs);
            if (sent.ok() && sent.value.address() == 1) {
                acksSent_++;
            }
            ctx.kernel.free(ctx.thread, ack);
        }
    }

    // Release the claim: the driver's free is now the last reference.
    ctx.kernel.free(ctx.thread, payload);
    return CallResult::ofInt(1);
}

void
NetStack::serialize(snapshot::Writer &w) const
{
    w.u32(config_.rxRingEntries);
    w.u32(config_.txRingEntries);
    w.u32(rxConsumed_);
    w.u32(rxPosted_);
    w.u32(pendingRefills_);
    w.u32(txPosted_);
    w.u32(txReaped_);
    w.u32(ackCountdown_);
    for (const Capability &slot : rxSlots_) {
        w.cap(slot);
    }
    for (const Capability &slot : txSlots_) {
        w.cap(slot);
    }
    w.u64(packetsAccepted_);
    w.u64(bytesAccepted_);
    w.u64(parseDrops_);
    w.u64(consumerRejects_);
    w.u64(ringCorruptionsDetected_);
    w.u64(refillFailures_);
    w.u64(rxErrorsSeen_);
    w.u64(acksSent_);
    w.u64(txCompleted_);
}

bool
NetStack::deserialize(snapshot::Reader &r)
{
    if (r.u32() != config_.rxRingEntries ||
        r.u32() != config_.txRingEntries) {
        return false;
    }
    rxConsumed_ = r.u32();
    rxPosted_ = r.u32();
    pendingRefills_ = r.u32();
    txPosted_ = r.u32();
    txReaped_ = r.u32();
    ackCountdown_ = r.u32();
    for (Capability &slot : rxSlots_) {
        slot = r.cap();
    }
    for (Capability &slot : txSlots_) {
        slot = r.cap();
    }
    packetsAccepted_ = r.u64();
    bytesAccepted_ = r.u64();
    parseDrops_ = r.u64();
    consumerRejects_ = r.u64();
    ringCorruptionsDetected_ = r.u64();
    refillFailures_ = r.u64();
    rxErrorsSeen_ = r.u64();
    acksSent_ = r.u64();
    txCompleted_ = r.u64();
    return r.ok();
}

} // namespace cheriot::net
