#include "net/net_stack.h"

#include "mem/memory_map.h"
#include "rtos/kernel.h"
#include "sim/machine.h"
#include "snapshot/serializer.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::net
{

using cap::Capability;
using rtos::ArgVec;
using rtos::CallResult;
using rtos::CompartmentContext;

namespace
{

/** Firewall parse budget on top of the per-word checksum loads. */
constexpr uint32_t kFirewallParseCyclesPerByte = 8;

/** Deterministic payload word for frame position @p i of frame
 * @p seq (the traffic generator and the ack builder share it). */
uint32_t
frameWord(uint32_t seq, uint32_t i)
{
    return (seq * 0x9e3779b9u) ^ (i * 0x85ebca6bu) ^ 0xc3a5c85cu;
}

} // namespace

std::vector<uint8_t>
buildFrame(uint32_t seq, uint32_t bytes)
{
    const uint32_t words = bytes < 8 ? 2 : (bytes + 3) / 4;
    std::vector<uint8_t> frame(words * 4);
    uint32_t checksum = 0;
    for (uint32_t i = 0; i < words; ++i) {
        // The final word balances the XOR of the whole frame to zero.
        const uint32_t word =
            i + 1 < words ? frameWord(seq, i) : checksum;
        checksum ^= word;
        frame[i * 4 + 0] = static_cast<uint8_t>(word);
        frame[i * 4 + 1] = static_cast<uint8_t>(word >> 8);
        frame[i * 4 + 2] = static_cast<uint8_t>(word >> 16);
        frame[i * 4 + 3] = static_cast<uint8_t>(word >> 24);
    }
    return frame;
}

NetCompartments
addNetCompartments(rtos::Kernel &kernel)
{
    NetCompartments parts;
    parts.nicWindow =
        kernel.loader().mmioCap(mem::kNicMmioBase, mem::kNicMmioSize);
    parts.driver = &kernel.createCompartment("net_driver");
    parts.driver->addMmioImport("nic", parts.nicWindow);
    parts.firewall = &kernel.createCompartment("firewall");
    return parts;
}

NetStack::NetStack(rtos::Kernel &kernel, NicDevice &nic,
                   const NetCompartments &compartments,
                   NetStackConfig config)
    : kernel_(kernel), nic_(nic), driver_(*compartments.driver),
      firewall_(*compartments.firewall),
      nicCap_(compartments.nicWindow), config_(config)
{
    if (config_.rxRingEntries == 0 || config_.txRingEntries == 0 ||
        config_.bufBytes < 16) {
        fatal("net: degenerate stack configuration");
    }
    if (config_.reliable &&
        (config_.arqWindow == 0 ||
         config_.arqWindow >= config_.arqDedupWindow)) {
        // The dedup span must exceed the in-flight span: a live
        // sender can then never push a fresh seq past the receiver's
        // window, so a far-ahead seq always means receiver restart.
        fatal("net: ARQ window must be positive and below the dedup "
              "window");
    }
}

uint32_t
NetStack::mmioRead(CompartmentContext &ctx, uint32_t reg)
{
    return ctx.mem.loadWord(nicCap_, nicCap_.base() + reg);
}

void
NetStack::mmioWrite(CompartmentContext &ctx, uint32_t reg,
                    uint32_t value)
{
    ctx.mem.storeWord(nicCap_, nicCap_.base() + reg, value);
}

void
NetStack::connect(const std::vector<NetConsumer> &consumers)
{
    consumers_ = consumers;
    const uint32_t pumpIndex = driver_.addExport(
        {"pump",
         [this](CompartmentContext &ctx, ArgVec &) {
             return pumpBody(ctx);
         },
         /*interruptsDisabled=*/false});
    const uint32_t txIndex = driver_.addExport(
        {"tx",
         [this](CompartmentContext &ctx, ArgVec &args) {
             return txBody(ctx, args);
         },
         /*interruptsDisabled=*/false});
    const uint32_t processIndex = firewall_.addExport(
        {"process",
         [this](CompartmentContext &ctx, ArgVec &args) {
             return processBody(ctx, args);
         },
         /*interruptsDisabled=*/false});
    const uint32_t sendIndex = firewall_.addExport(
        {"send",
         [this](CompartmentContext &ctx, ArgVec &args) {
             return sendBody(ctx, args);
         },
         /*interruptsDisabled=*/false});
    const uint32_t serviceIndex = firewall_.addExport(
        {"service",
         [this](CompartmentContext &ctx, ArgVec &) {
             return serviceBody(ctx);
         },
         /*interruptsDisabled=*/false});
    pumpImport_ = kernel_.importOf(driver_, pumpIndex);
    txImport_ = kernel_.importOf(driver_, txIndex);
    processImport_ = kernel_.importOf(firewall_, processIndex);
    sendImport_ = kernel_.importOf(firewall_, sendIndex);
    serviceImport_ = kernel_.importOf(firewall_, serviceIndex);
    // Record the wiring in the audit manifest: the driver hands every
    // frame to the firewall, the firewall calls back into the driver
    // to transmit and fans admitted frames out to the consumers.
    driver_.addEntryImport(firewall_, "process");
    firewall_.addEntryImport(driver_, "tx");
    for (const auto &consumer : consumers_) {
        if (consumer.import.valid()) {
            firewall_.addEntryImport(*consumer.import.compartment,
                                     consumer.import.target().name);
        }
    }
}

void
NetStack::start(rtos::Thread &thread)
{
    rtos::GuestContext &g = kernel_.guest();
    rxSlots_.assign(config_.rxRingEntries, Capability());
    txSlots_.assign(config_.txRingEntries, Capability());

    rxRing_ = kernel_.malloc(thread,
                             config_.rxRingEntries * NicDevice::kDescBytes);
    txRing_ = kernel_.malloc(thread,
                             config_.txRingEntries * NicDevice::kDescBytes);
    if (!rxRing_.tag() || !txRing_.tag()) {
        fatal("net: descriptor ring allocation failed");
    }
    for (uint32_t i = 0; i < config_.txRingEntries; ++i) {
        g.storeWord(txRing_, txRing_.base() + i * NicDevice::kDescBytes,
                    0);
        g.storeWord(txRing_,
                    txRing_.base() + i * NicDevice::kDescBytes + 4, 0);
    }

    // Post one freshly allocated buffer per RX slot.
    for (uint32_t i = 0; i < config_.rxRingEntries; ++i) {
        const Capability buf = kernel_.malloc(thread, config_.bufBytes);
        if (!buf.tag()) {
            fatal("net: boot-time RX buffer allocation failed");
        }
        rxSlots_[i] = buf;
        const uint32_t descAddr =
            rxRing_.base() + i * NicDevice::kDescBytes;
        g.storeWord(rxRing_, descAddr, buf.base());
        g.storeWord(rxRing_, descAddr + 4,
                    config_.bufBytes & NicDevice::kDescLenMask);
    }
    rxPosted_ = config_.rxRingEntries;

    // Program the device: rings, the heap-bounded DMA window, enables.
    const uint32_t base = nicCap_.base();
    const uint32_t heapBase = kernel_.machine().heapBase();
    const uint32_t heapSize =
        kernel_.machine().machineConfig().heapSize;
    g.storeWord(nicCap_, base + NicDevice::kRegRxRingBase,
                rxRing_.base());
    g.storeWord(nicCap_, base + NicDevice::kRegRxRingCount,
                config_.rxRingEntries);
    g.storeWord(nicCap_, base + NicDevice::kRegTxRingBase,
                txRing_.base());
    g.storeWord(nicCap_, base + NicDevice::kRegTxRingCount,
                config_.txRingEntries);
    g.storeWord(nicCap_, base + NicDevice::kRegDmaBase, heapBase);
    g.storeWord(nicCap_, base + NicDevice::kRegDmaSize, heapSize);
    g.storeWord(nicCap_, base + NicDevice::kRegRxTail, rxPosted_);
    g.storeWord(nicCap_, base + NicDevice::kRegIrqEnable,
                NicDevice::kIrqRxPacket | NicDevice::kIrqRxOverflow |
                    NicDevice::kIrqTxDone | NicDevice::kIrqRxError);
    g.storeWord(nicCap_, base + NicDevice::kRegCtrl,
                NicDevice::kCtrlRxEnable | NicDevice::kCtrlTxEnable);
}

uint32_t
NetStack::pump(rtos::Thread &thread)
{
    const CallResult result = kernel_.call(thread, pumpImport_, {});
    if (config_.reliable) {
        kernel_.call(thread, serviceImport_, {});
    }
    return result.ok() ? result.value.address() : 0;
}

bool
NetStack::sendMessage(rtos::Thread &thread, uint32_t dst,
                      uint32_t payloadWords, uint32_t w0, uint32_t w1,
                      uint32_t w2, uint32_t w3)
{
    ArgVec args = ArgVec::of({Capability().withAddress(dst),
                              Capability().withAddress(payloadWords),
                              Capability().withAddress(w0),
                              Capability().withAddress(w1),
                              Capability().withAddress(w2),
                              Capability().withAddress(w3)});
    const CallResult result = kernel_.call(thread, sendImport_, args);
    return result.ok() && result.value.address() == 1;
}

bool
NetStack::sendUnreliable(rtos::Thread &thread, uint32_t dst,
                         uint32_t payloadWords, uint32_t w0,
                         uint32_t w1, uint32_t w2, uint32_t w3)
{
    ArgVec args = ArgVec::of(
        {Capability().withAddress(dst),
         Capability().withAddress(payloadWords | kSendUnreliableFlag),
         Capability().withAddress(w0), Capability().withAddress(w1),
         Capability().withAddress(w2), Capability().withAddress(w3)});
    const CallResult result = kernel_.call(thread, sendImport_, args);
    return result.ok() && result.value.address() == 1;
}

CallResult
NetStack::pumpBody(CompartmentContext &ctx)
{
    // Driver activation frame (ISR bookkeeping spilled to the stack).
    const Capability frame = ctx.stackAlloc(64);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    // Acknowledge the level-triggered interrupt before draining.
    const uint32_t status = mmioRead(ctx, NicDevice::kRegIrqStatus);
    if (status != 0) {
        mmioWrite(ctx, NicDevice::kRegIrqStatus, status);
    }

    uint32_t accepted = 0;
    const uint32_t head = mmioRead(ctx, NicDevice::kRegRxHead);
    while (rxConsumed_ != head) {
        const uint32_t slot = rxConsumed_ % config_.rxRingEntries;
        const uint32_t descAddr =
            rxRing_.base() + slot * NicDevice::kDescBytes;
        const uint32_t w0 = ctx.mem.loadWord(rxRing_, descAddr);
        const uint32_t w1 = ctx.mem.loadWord(rxRing_, descAddr + 4);
        if ((w1 & NicDevice::kDescDone) == 0) {
            break; // Device has not filled this slot yet.
        }
        const Capability buf = rxSlots_[slot];
        const uint32_t len = w1 & NicDevice::kDescLenMask;
        bool deliverable = true;
        if (!buf.tag()) {
            ringCorruptionsDetected_++;
            deliverable = false;
        } else if ((w1 & NicDevice::kDescError) != 0) {
            rxErrorsSeen_++;
            deliverable = false;
        } else if (w0 != buf.base() || len < 8 || (len & 3) != 0 ||
                   len > config_.bufBytes) {
            // Descriptor bytes are device-written data with no
            // authority: the slot table is the ground truth, and a
            // mismatch means the ring was corrupted. The packet is
            // lost; nothing is dereferenced through the bad bytes.
            ringCorruptionsDetected_++;
            deliverable = false;
        }
        if (deliverable) {
            // Zero-copy lend: bounded to the landed frame, Global
            // stripped so the firewall can hold it only in registers
            // and on the wiped stack.
            Capability lent =
                buf.withAddress(buf.base()).withBounds(len);
            if (!lent.tag()) {
                lent = buf;
            }
            lent = lent.withPermsAnd(
                static_cast<uint16_t>(~cap::PermGlobal));
            ArgVec fwArgs = ArgVec::of(
                {lent, Capability().withAddress(len)});
            const CallResult handled =
                ctx.kernel.call(ctx.thread, processImport_, fwArgs);
            if (handled.ok() && handled.value.address() == 1) {
                accepted++;
                packetsAccepted_++;
                bytesAccepted_ += len;
            } else if (!handled.ok()) {
                consumerRejects_++;
            }
        }
        if (buf.tag()) {
            // Release the driver's ownership. If the firewall (or a
            // consumer beyond it) still holds a claim, the memory
            // stays live; the last release quarantines it.
            ctx.kernel.free(ctx.thread, buf);
        }
        rxSlots_[slot] = Capability();
        rxConsumed_++;
        pendingRefills_++;
    }

    // Repost consumed slots. A refill timeout leaves the ring short —
    // the NIC drops until the heap recovers: physical backpressure.
    while (pendingRefills_ > 0) {
        if (refillOne(ctx) != RefillResult::Ok) {
            refillFailures_++;
            refillTimeouts_++;
            break;
        }
        pendingRefills_--;
    }
    mmioWrite(ctx, NicDevice::kRegRxTail, rxPosted_);

    reapTx(ctx);
    return CallResult::ofInt(accepted);
}

NetStack::RefillResult
NetStack::refillOne(CompartmentContext &ctx)
{
    // Bounded wait, the MessageQueueService discipline: retry the
    // exhausted heap with doubling backoff, then yield with a *typed*
    // timeout instead of blocking the pump forever. The ring stays
    // short and the NIC's drop counter carries the backpressure.
    uint64_t waited = 0;
    uint32_t backoff = kRefillBackoffStartCycles;
    for (;;) {
        const Capability buf =
            ctx.kernel.malloc(ctx.thread, config_.bufBytes);
        if (buf.tag()) {
            const uint32_t slot = rxPosted_ % config_.rxRingEntries;
            const uint32_t descAddr =
                rxRing_.base() + slot * NicDevice::kDescBytes;
            rxSlots_[slot] = buf;
            ctx.mem.storeWord(rxRing_, descAddr, buf.base());
            ctx.mem.storeWord(rxRing_, descAddr + 4,
                              config_.bufBytes &
                                  NicDevice::kDescLenMask);
            rxPosted_++;
            return RefillResult::Ok;
        }
        if (waited >= config_.refillTimeoutCycles) {
            return RefillResult::Timeout;
        }
        ctx.mem.chargeExecution(backoff);
        waited += backoff;
        backoff = std::min(backoff * 2, kRefillBackoffCapCycles);
    }
}

void
NetStack::reapTx(CompartmentContext &ctx)
{
    const uint32_t tail = mmioRead(ctx, NicDevice::kRegTxTail);
    while (txReaped_ != tail) {
        const uint32_t slot = txReaped_ % config_.txRingEntries;
        if (txSlots_[slot].tag()) {
            // Transmit done: release the claim taken at post time.
            ctx.kernel.free(ctx.thread, txSlots_[slot]);
            txCompleted_++;
        }
        txSlots_[slot] = Capability();
        txReaped_++;
    }
}

CallResult
NetStack::txBody(CompartmentContext &ctx, ArgVec &args)
{
    const Capability frame = ctx.stackAlloc(48);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    reapTx(ctx); // Recycle completed slots before checking capacity.
    const Capability buf = args[0];
    const uint32_t len = args[1].address();
    if (!buf.tag() || len < 8 || (len & 3) != 0 ||
        len > NicDevice::kDescLenMask ||
        txPosted_ - txReaped_ >= config_.txRingEntries) {
        return CallResult::ofInt(0); // Busy or refused.
    }
    // Claim keeps the caller's buffer alive until transmit completes,
    // however quickly the caller frees its own reference.
    if (ctx.kernel.claim(ctx.thread, buf) !=
        alloc::HeapAllocator::FreeResult::Ok) {
        return CallResult::ofInt(0);
    }
    const uint32_t slot = txPosted_ % config_.txRingEntries;
    const uint32_t descAddr =
        txRing_.base() + slot * NicDevice::kDescBytes;
    txSlots_[slot] = buf;
    ctx.mem.storeWord(txRing_, descAddr, buf.base());
    ctx.mem.storeWord(txRing_, descAddr + 4, len);
    txPosted_++;
    mmioWrite(ctx, NicDevice::kRegTxHead, txPosted_);
    mmioWrite(ctx, NicDevice::kRegTxKick, 1);
    return CallResult::ofInt(1);
}

CallResult
NetStack::fanOut(CompartmentContext &ctx, const Capability &payload,
                 uint32_t len)
{
    // Mutating consumers (TLS decrypts records in place) keep the
    // writable view; everyone else sees read-only, non-capability
    // memory.
    const Capability readOnly = payload.withPermsAnd(
        static_cast<uint16_t>(~(cap::PermStore | cap::PermStoreLocal |
                                cap::PermMemCap)));
    for (const auto &consumer : consumers_) {
        ArgVec consumerArgs = ArgVec::of(
            {consumer.mutates ? payload : readOnly,
             Capability().withAddress(len)});
        const CallResult result =
            ctx.kernel.call(ctx.thread, consumer.import, consumerArgs);
        if (!result.ok()) {
            return result;
        }
    }
    return CallResult::ofInt(1);
}

CallResult
NetStack::processBody(CompartmentContext &ctx, ArgVec &args)
{
    const Capability frame = ctx.stackAlloc(64);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    const Capability payload = args[0];
    const uint32_t len = args[1].address();
    if (!payload.tag() || len < 8 || (len & 3) != 0 ||
        payload.length() < len) {
        parseDrops_++;
        return CallResult::ofInt(0);
    }
    // heap_claim: from here the buffer outlives the driver's free.
    if (ctx.kernel.claim(ctx.thread, payload) !=
        alloc::HeapAllocator::FreeResult::Ok) {
        parseDrops_++;
        return CallResult::ofInt(0);
    }

    // Frame integrity: the XOR of every payload word must balance to
    // zero (the generator's trailing checksum word ensures it). This
    // is where a link-corrupted frame dies: still untrusted bytes,
    // before the ARQ layer or any consumer capability touches it.
    uint32_t checksum = 0;
    for (uint32_t off = 0; off < len; off += 4) {
        checksum ^= ctx.mem.loadWord(payload, payload.base() + off);
    }
    ctx.mem.chargeExecution(len * kFirewallParseCyclesPerByte);
    if (checksum != 0) {
        parseDrops_++;
        ctx.kernel.free(ctx.thread, payload);
        return CallResult::ofInt(0);
    }

    if (config_.reliable) {
        if (len < kFleetMinFrameBytes) {
            parseDrops_++;
            ctx.kernel.free(ctx.thread, payload);
            return CallResult::ofInt(0);
        }
        return handleReliable(ctx, payload, len);
    }

    const CallResult consumed = fanOut(ctx, payload, len);
    if (!consumed.ok()) {
        ctx.kernel.free(ctx.thread, payload);
        return consumed; // Propagate: the driver drops the packet.
    }

    // Ack every Nth accepted packet: the TX half of the claim
    // contract — the driver claims the ack buffer, we free our own
    // reference immediately, and the memory lives until transmit
    // completes.
    if (config_.ackEveryN != 0 && ++ackCountdown_ >= config_.ackEveryN) {
        ackCountdown_ = 0;
        const Capability ack =
            ctx.kernel.malloc(ctx.thread, config_.ackBytes);
        if (ack.tag()) {
            const uint32_t words = config_.ackBytes / 4;
            uint32_t ackSum = 0;
            for (uint32_t i = 0; i + 1 < words; ++i) {
                const uint32_t word = frameWord(0xacu, i);
                ackSum ^= word;
                ctx.mem.storeWord(ack, ack.base() + i * 4, word);
            }
            ctx.mem.storeWord(ack, ack.base() + (words - 1) * 4, ackSum);
            ArgVec txArgs = ArgVec::of(
                {ack, Capability().withAddress(config_.ackBytes)});
            const CallResult sent =
                ctx.kernel.call(ctx.thread, txImport_, txArgs);
            if (sent.ok() && sent.value.address() == 1) {
                acksSent_++;
            }
            ctx.kernel.free(ctx.thread, ack);
        }
    }

    // Release the claim: the driver's free is now the last reference.
    ctx.kernel.free(ctx.thread, payload);
    return CallResult::ofInt(1);
}

bool
NetStack::postFrame(CompartmentContext &ctx, const Capability &buf,
                    uint32_t len)
{
    ArgVec txArgs =
        ArgVec::of({buf, Capability().withAddress(len)});
    const CallResult sent =
        ctx.kernel.call(ctx.thread, txImport_, txArgs);
    return sent.ok() && sent.value.address() == 1;
}

void
NetStack::sendControl(CompartmentContext &ctx, uint32_t dst,
                      FleetFrameType type, uint32_t seq)
{
    const Capability buf =
        ctx.kernel.malloc(ctx.thread, kFleetMinFrameBytes);
    if (!buf.tag()) {
        return; // Lost control frame: the ARQ retransmit absorbs it.
    }
    const uint32_t words[kFleetHeaderWords] = {
        dst, config_.localMac, static_cast<uint32_t>(type), seq};
    uint32_t checksum = 0;
    for (uint32_t i = 0; i < kFleetHeaderWords; ++i) {
        checksum ^= words[i];
        ctx.mem.storeWord(buf, buf.base() + i * 4, words[i]);
    }
    ctx.mem.storeWord(buf, buf.base() + kFleetHeaderWords * 4,
                      checksum);
    // The tx claim carries the frame through transmit; our reference
    // goes away now either way.
    postFrame(ctx, buf, kFleetMinFrameBytes);
    ctx.kernel.free(ctx.thread, buf);
}

CallResult
NetStack::handleReliable(CompartmentContext &ctx,
                         const Capability &payload, uint32_t len)
{
    const uint32_t base = payload.base();
    const uint32_t dst = ctx.mem.loadWord(payload, base);
    const uint32_t src = ctx.mem.loadWord(payload, base + 4);
    const uint32_t type = ctx.mem.loadWord(payload, base + 8);
    const uint32_t seq = ctx.mem.loadWord(payload, base + 12);

    if (dst != config_.localMac || src == config_.localMac) {
        // Flooded (unlearned MAC) or reflected traffic: not ours.
        wrongDest_++;
        ctx.kernel.free(ctx.thread, payload);
        return CallResult::ofInt(0);
    }

    // Firewall admission: rule lookup, rate limiting and in-flight
    // accounting happen *before* any ARQ state is touched, so a
    // rejected frame costs the stack nothing but the strike
    // bookkeeping against its source.
    bool inflightCharged = false;
    if (config_.firewall.admission) {
        const uint32_t flowClass = frameFlowClass(ctx, payload, len);
        const AdmitResult admit = admitFrame(ctx, src, type, len,
                                             flowClass,
                                             &inflightCharged);
        if (admit != AdmitResult::Ok) {
            ctx.kernel.free(ctx.thread, payload);
            return CallResult::ofInt(0);
        }
    }

    const uint64_t now = ctx.kernel.machine().cycles();
    ArqPeer &peer = peers_[src];
    peer.lastHeard = now;
    if (peer.dead) {
        // Heard from a presumed-dead peer: rejoin. Pending frames
        // restart their retransmit schedule from scratch; the backlog
        // drains on the next service pass.
        peer.dead = false;
        arqRejoins_++;
        for (ArqMessage &msg : peer.pending) {
            msg.retries = 0;
            msg.rto = config_.arqRtoStartCycles;
            msg.nextRetry = now;
        }
    }

    switch (static_cast<FleetFrameType>(type)) {
      case FleetFrameType::Ack: {
        arqAcksReceived_++;
        for (auto it = peer.pending.begin(); it != peer.pending.end();
             ++it) {
            if (it->seq == seq) {
                // Delivered: drop the sender's retransmit reference.
                retxHistogram_[std::min(it->retries,
                                        kRetxHistogramBuckets - 1)]++;
                ctx.kernel.free(ctx.thread, it->buf);
                peer.pending.erase(it);
                break;
            }
        }
        ctx.kernel.free(ctx.thread, payload);
        return CallResult::ofInt(1);
      }
      case FleetFrameType::Probe: {
        // Alive echo: an ack no data seq will ever match, so it only
        // updates liveness (kFleetBroadcast is never a data seq).
        sendControl(ctx, src, FleetFrameType::Ack, kFleetBroadcast);
        arqAcksSent_++;
        ctx.kernel.free(ctx.thread, payload);
        return CallResult::ofInt(1);
      }
      case FleetFrameType::Data: {
        bool fresh;
        const uint32_t epoch = seq >> 24;
        bool staleEpoch = false;
        if (epoch != peer.rxEpoch) {
            // Epochs are incarnation counters, so only ever move the
            // window *forward* (serial arithmetic on the 8-bit
            // epoch). Frames from a superseded incarnation can still
            // be in flight — delayed or duplicated by the fabric —
            // after a restart; regressing the window for them would
            // wipe the new epoch's delivery history and turn its
            // undelivered messages into "stale duplicates".
            if (((epoch - peer.rxEpoch) & 0xffu) < 0x80u) {
                // New sender incarnation: restart the dedup window at
                // the new epoch's *origin*, not at this frame — the
                // first frame to arrive may be a reordered later one,
                // and its undelivered predecessors must still
                // classify as fresh below.
                peer.rxEpoch = epoch;
                peer.rxSeen.clear();
                peer.rxBase = epoch << 24;
            } else {
                staleEpoch = true; // Dead incarnation: ack, no deliver.
                if (config_.firewall.admission) {
                    // Replaying a superseded incarnation is a
                    // signature rogue move, not normal reordering at
                    // this volume: it strikes.
                    fwStaleEpochs_++;
                    if (strikeDevice(src)) {
                        // The quarantining strike. No ack — the
                        // device is dead to us — and the ARQ purge
                        // invalidates `peer`, so the frame dies here.
                        if (inflightCharged) {
                            creditInflight(src, len);
                        }
                        ctx.kernel.free(ctx.thread, payload);
                        purgePeer(ctx.thread, src);
                        return CallResult::ofInt(0);
                    }
                }
            }
        }
        if (staleEpoch) {
            fresh = false;
        } else if (const uint32_t ahead = seq - peer.rxBase;
                   ahead < config_.arqDedupWindow) {
            // Serial-number arithmetic within the epoch: `ahead` and
            // `behind` are modular distances from the delivery base.
            // A live sender stays within the dedup window ahead
            // (in-flight span < window), link duplicates land within
            // it behind, and anything outside both horizons restarts
            // the window.
            if (peer.rxSeen.count(seq) != 0) {
                fresh = false;
            } else {
                peer.rxSeen.insert(seq);
                while (peer.rxSeen.count(peer.rxBase) != 0) {
                    peer.rxSeen.erase(peer.rxBase);
                    peer.rxBase++;
                }
                fresh = true;
            }
        } else if (peer.rxBase - seq <= config_.arqDedupWindow) {
            // Recently delivered: a duplicate or a retransmission
            // that crossed its own ack.
            fresh = false;
        } else {
            peer.rxSeen.clear();
            peer.rxBase = seq + 1;
            fresh = true;
        }
        // Ack duplicates too: the first ack may have been eaten by
        // the link, and only a fresh ack stops the retransmissions.
        sendControl(ctx, src, FleetFrameType::Ack, seq);
        arqAcksSent_++;
        if (!fresh) {
            arqDuplicatesDropped_++;
            if (inflightCharged) {
                creditInflight(src, len);
            }
            ctx.kernel.free(ctx.thread, payload);
            return CallResult::ofInt(0);
        }
        const CallResult consumed = fanOut(ctx, payload, len);
        if (inflightCharged) {
            // The admission charge covered the frame's walk through
            // the stack; any residency beyond this point (broker
            // queues) is charged separately by the holder.
            creditInflight(src, len);
        }
        ctx.kernel.free(ctx.thread, payload);
        if (!consumed.ok()) {
            return consumed;
        }
        arqDelivered_++;
        return CallResult::ofInt(1);
      }
      case FleetFrameType::Unreliable: {
        // No sequencing, no ack, no dedup: every copy the fabric
        // produced fans out. Only idempotent traffic belongs here.
        const CallResult consumed = fanOut(ctx, payload, len);
        if (inflightCharged) {
            creditInflight(src, len);
        }
        ctx.kernel.free(ctx.thread, payload);
        if (!consumed.ok()) {
            return consumed;
        }
        unreliableDelivered_++;
        return CallResult::ofInt(1);
      }
      default:
        parseDrops_++;
        ctx.kernel.free(ctx.thread, payload);
        return CallResult::ofInt(0);
    }
}

CallResult
NetStack::sendBody(CompartmentContext &ctx, ArgVec &args)
{
    const Capability frame = ctx.stackAlloc(48);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);

    const uint32_t dst = args[0].address();
    const uint32_t rawWords = args[1].address();
    const bool unreliable = (rawWords & kSendUnreliableFlag) != 0;
    const uint32_t payloadWords =
        std::max(rawWords & ~kSendUnreliableFlag, 2u);
    const uint32_t w0 = args[2].address();
    const uint32_t w1 = args[3].address();
    const uint32_t w2 = args[4].address();
    const uint32_t w3 = args[5].address();
    const uint32_t len = (kFleetHeaderWords + payloadWords + 1) * 4;
    if (!config_.reliable || dst == config_.localMac ||
        dst == kFleetBroadcast || len > config_.bufBytes) {
        arqSendDrops_++;
        return CallResult::ofInt(0);
    }
    if (config_.firewall.admission && deviceQuarantined(dst)) {
        // Shun on TX too: a reliable frame toward a quarantined
        // device would rebuild the retransmit state the purge just
        // removed, and no ack will ever clear it.
        fwQuarantineDrops_++;
        return CallResult::ofInt(0);
    }

    const auto build = [&](const Capability &buf, FleetFrameType type,
                           uint32_t seq) {
        const uint32_t header[kFleetHeaderWords] = {
            dst, config_.localMac, static_cast<uint32_t>(type), seq};
        uint32_t checksum = 0;
        uint32_t index = 0;
        const auto put = [&](uint32_t word) {
            checksum ^= word;
            ctx.mem.storeWord(buf, buf.base() + index * 4, word);
            index++;
        };
        for (uint32_t i = 0; i < kFleetHeaderWords; ++i) {
            put(header[i]);
        }
        for (uint32_t i = 0; i < payloadWords; ++i) {
            put(i == 0   ? w0
                : i == 1 ? w1
                : i == 2 ? w2
                : i == 3 ? w3
                         : frameWord(w1, i));
        }
        ctx.mem.storeWord(buf, buf.base() + index * 4, checksum);
    };

    if (unreliable) {
        // Fire-and-forget: one posted copy, no sequence, no peer
        // state — losing it must be acceptable to the caller.
        const Capability buf = ctx.kernel.malloc(ctx.thread, len);
        if (!buf.tag()) {
            arqSendDrops_++;
            return CallResult::ofInt(0);
        }
        build(buf, FleetFrameType::Unreliable, 0);
        const bool posted = postFrame(ctx, buf, len);
        ctx.kernel.free(ctx.thread, buf);
        return CallResult::ofInt(posted ? 1 : 0);
    }

    ArqPeer &peer = peers_[dst];
    const bool windowOpen = !peer.dead && peer.backlog.empty() &&
                            peer.pending.size() < config_.arqWindow;
    if (!windowOpen && peer.backlog.size() >= config_.arqBacklogMax) {
        // Local-buffering mode is bounded; beyond it the send is
        // refused and the caller sees the drop.
        arqSendDrops_++;
        return CallResult::ofInt(0);
    }

    const Capability buf = ctx.kernel.malloc(ctx.thread, len);
    if (!buf.tag()) {
        arqSendDrops_++;
        return CallResult::ofInt(0);
    }
    ArqMessage msg;
    // The epoch (sender incarnation) rides in the sequence high byte:
    // a receiver distinguishes "restarted sender, fresh seq 0" from
    // "stale duplicate" by epoch, not by guessing from distance.
    msg.seq = ((config_.arqEpoch & 0xffu) << 24) |
              (peer.nextSeq++ & 0xffffffu);
    msg.buf = buf;
    msg.len = len;
    build(buf, FleetFrameType::Data, msg.seq);

    if (windowOpen) {
        const uint64_t now = ctx.kernel.machine().cycles();
        msg.sentAt = now;
        msg.rto = config_.arqRtoStartCycles;
        msg.nextRetry = now + msg.rto;
        postFrame(ctx, buf, len); // Busy tx: the retry timer covers it.
        arqSent_++;
        peer.pending.push_back(msg);
    } else {
        peer.backlog.push_back(msg);
    }
    return CallResult::ofInt(1);
}

CallResult
NetStack::serviceBody(CompartmentContext &ctx)
{
    const Capability frame = ctx.stackAlloc(48);
    if (!frame.tag()) {
        return CallResult::faulted(sim::TrapCause::CheriBoundsViolation);
    }
    ctx.mem.storeWord(frame, frame.base(), 0);
    if (!config_.reliable) {
        return CallResult::ofInt(0);
    }

    const uint64_t now = ctx.kernel.machine().cycles();
    for (auto &[mac, peer] : peers_) {
        // Flush the backlog into the window while there is room.
        while (!peer.dead && !peer.backlog.empty() &&
               peer.pending.size() < config_.arqWindow) {
            ArqMessage msg = peer.backlog.front();
            peer.backlog.pop_front();
            msg.sentAt = now;
            msg.rto = config_.arqRtoStartCycles;
            msg.nextRetry = now + msg.rto;
            postFrame(ctx, msg.buf, msg.len);
            arqSent_++;
            peer.pending.push_back(msg);
        }
        if (peer.dead) {
            if (now >= peer.nextProbe) {
                sendControl(ctx, mac, FleetFrameType::Probe,
                            peer.rxBase);
                arqProbesSent_++;
                peer.nextProbe = now + config_.arqProbeIntervalCycles;
            }
            continue;
        }
        // Retransmit expired in-flight frames with doubling backoff;
        // past the retry budget the peer is presumed dead and the
        // destination degrades to local buffering + probes.
        for (ArqMessage &msg : peer.pending) {
            if (now < msg.nextRetry) {
                continue;
            }
            if (msg.retries >= config_.arqMaxRetries) {
                peer.dead = true;
                arqPeerDeaths_++;
                peer.nextProbe = now + config_.arqProbeIntervalCycles;
                break;
            }
            postFrame(ctx, msg.buf, msg.len);
            arqRetransmits_++;
            msg.retries++;
            msg.rto = std::min(msg.rto * 2, config_.arqRtoCapCycles);
            msg.nextRetry = now + msg.rto;
        }
    }
    return CallResult::ofInt(0);
}

bool
NetStack::peerKnown(uint32_t mac) const
{
    return peers_.count(mac) != 0;
}

bool
NetStack::peerDead(uint32_t mac) const
{
    const auto it = peers_.find(mac);
    return it != peers_.end() && it->second.dead;
}

uint32_t
NetStack::peerPending(uint32_t mac) const
{
    const auto it = peers_.find(mac);
    return it == peers_.end()
               ? 0
               : static_cast<uint32_t>(it->second.pending.size());
}

uint32_t
NetStack::peerBacklog(uint32_t mac) const
{
    const auto it = peers_.find(mac);
    return it == peers_.end()
               ? 0
               : static_cast<uint32_t>(it->second.backlog.size());
}

uint64_t
NetStack::peerRto(uint32_t mac) const
{
    const auto it = peers_.find(mac);
    return it == peers_.end() || it->second.pending.empty()
               ? 0
               : it->second.pending.front().rto;
}

uint32_t
NetStack::peerRetries(uint32_t mac) const
{
    const auto it = peers_.find(mac);
    return it == peers_.end() || it->second.pending.empty()
               ? 0
               : it->second.pending.front().retries;
}

uint32_t
NetStack::peerRxBase(uint32_t mac) const
{
    const auto it = peers_.find(mac);
    return it == peers_.end() ? 0 : it->second.rxBase;
}

std::vector<uint32_t>
NetStack::peerMacs() const
{
    std::vector<uint32_t> macs;
    macs.reserve(peers_.size());
    for (const auto &[mac, peer] : peers_) {
        macs.push_back(mac);
    }
    return macs;
}

std::vector<uint64_t>
NetStack::retxHistogram() const
{
    return std::vector<uint64_t>(retxHistogram_,
                                 retxHistogram_ +
                                     kRetxHistogramBuckets);
}

NetStack::FwDevice &
NetStack::fwDeviceFor(uint32_t src, uint32_t flowClass)
{
    const auto it = fwDevices_.find(src);
    if (it != fwDevices_.end()) {
        return it->second;
    }
    // First contact binds the device to the first matching rule; its
    // in-flight ledger entry is minted against that rule's ceiling.
    FwDevice dev;
    for (size_t i = 0; i < config_.firewall.rules.size(); ++i) {
        const FirewallRule &rule = config_.firewall.rules[i];
        if ((rule.srcMac == 0 || rule.srcMac == src) &&
            (rule.flowClass == 0xff || rule.flowClass == flowClass)) {
            dev.rule = static_cast<int32_t>(i);
            dev.tokens256 =
                static_cast<uint64_t>(rule.burstFrames) * 256;
            dev.quota = fwLedger_.create(rule.maxInflightBytes);
            break;
        }
    }
    return fwDevices_.emplace(src, dev).first->second;
}

bool
NetStack::strikeDevice(uint32_t src)
{
    const auto it = fwDevices_.find(src);
    if (it == fwDevices_.end()) {
        return false;
    }
    FwDevice &dev = it->second;
    fwStrikes_++;
    dev.strikes++;
    if (!dev.quarantined &&
        dev.strikes >= config_.firewall.strikeBudget) {
        dev.quarantined = true;
        fwQuarantines_++;
        return true;
    }
    return false;
}

void
NetStack::purgePeer(rtos::Thread &thread, uint32_t src)
{
    const auto it = peers_.find(src);
    if (it == peers_.end()) {
        return;
    }
    for (ArqMessage &msg : it->second.pending) {
        kernel_.free(thread, msg.buf);
    }
    for (ArqMessage &msg : it->second.backlog) {
        kernel_.free(thread, msg.buf);
    }
    peers_.erase(it);
}

void
NetStack::quarantineMac(rtos::Thread &thread, uint32_t mac)
{
    FwDevice &dev = fwDeviceFor(mac, 0);
    if (!dev.quarantined) {
        dev.quarantined = true;
        fwQuarantines_++;
    }
    purgePeer(thread, mac);
}

uint32_t
NetStack::frameFlowClass(CompartmentContext &ctx,
                         const Capability &payload, uint32_t len)
{
    if (len < (kFleetHeaderWords + 2) * 4) {
        return 0;
    }
    const uint32_t w0 =
        ctx.mem.loadWord(payload, payload.base() + kFleetHeaderBytes);
    return isFlowHeaderWord(w0) ? (w0 & 0xffu) : 0;
}

NetStack::AdmitResult
NetStack::admitFrame(CompartmentContext &ctx, uint32_t src,
                     uint32_t type, uint32_t len, uint32_t flowClass,
                     bool *inflightCharged)
{
    *inflightCharged = false;
    FwDevice &dev = fwDeviceFor(src, flowClass);
    if (dev.quarantined) {
        fwQuarantineDrops_++;
        return AdmitResult::Quarantined;
    }
    // A checksum-valid frame with a nonsense type is deliberate
    // garbage, not line noise (noise dies at the checksum).
    if (type < static_cast<uint32_t>(FleetFrameType::Data) ||
        type > static_cast<uint32_t>(FleetFrameType::Unreliable)) {
        fwMalformed_++;
        if (strikeDevice(src)) {
            purgePeer(ctx.thread, src);
        }
        return AdmitResult::Malformed;
    }
    if (dev.rule < 0) {
        if (config_.firewall.defaultDeny) {
            if (strikeDevice(src)) {
                purgePeer(ctx.thread, src);
            }
            return AdmitResult::NoRule;
        }
        fwAdmitted_++;
        return AdmitResult::Ok; // Open (unmetered) by default.
    }
    const FirewallRule &rule =
        config_.firewall.rules[static_cast<size_t>(dev.rule)];
    if (len > rule.maxFrameBytes) {
        fwOversized_++;
        if (strikeDevice(src)) {
            purgePeer(ctx.thread, src);
        }
        return AdmitResult::Oversized;
    }
    const bool carriesPayload =
        type == static_cast<uint32_t>(FleetFrameType::Data) ||
        type == static_cast<uint32_t>(FleetFrameType::Unreliable);
    if (carriesPayload) {
        // Token bucket: rate is per 1024 cycles in 1/256-frame units;
        // acks and probes are protocol echoes and stay unmetered.
        const uint64_t now = ctx.kernel.machine().cycles();
        if (now > dev.lastRefill) {
            const uint64_t cap =
                static_cast<uint64_t>(rule.burstFrames) * 256;
            dev.tokens256 += (now - dev.lastRefill) *
                             rule.ratePer1KCycles256 / 1024;
            dev.tokens256 = std::min(dev.tokens256, cap);
            dev.lastRefill = now;
        }
        if (dev.tokens256 < 256) {
            fwRateLimited_++;
            if (strikeDevice(src)) {
                purgePeer(ctx.thread, src);
            }
            return AdmitResult::RateLimited;
        }
        dev.tokens256 -= 256;
        if (!fwLedger_.charge(dev.quota, len)) {
            fwInflightDenied_++;
            if (strikeDevice(src)) {
                purgePeer(ctx.thread, src);
            }
            return AdmitResult::InflightExceeded;
        }
        *inflightCharged = true;
    }
    fwAdmitted_++;
    return AdmitResult::Ok;
}

bool
NetStack::chargeInflight(uint32_t srcMac, uint64_t bytes)
{
    const auto it = fwDevices_.find(srcMac);
    if (it == fwDevices_.end() ||
        it->second.quota == alloc::kUnmeteredQuota) {
        return true;
    }
    return fwLedger_.charge(it->second.quota, bytes);
}

void
NetStack::creditInflight(uint32_t srcMac, uint64_t bytes)
{
    const auto it = fwDevices_.find(srcMac);
    if (it == fwDevices_.end() ||
        it->second.quota == alloc::kUnmeteredQuota) {
        return;
    }
    fwLedger_.credit(it->second.quota, bytes);
}

uint32_t
NetStack::deviceStrikes(uint32_t mac) const
{
    const auto it = fwDevices_.find(mac);
    return it == fwDevices_.end() ? 0 : it->second.strikes;
}

bool
NetStack::deviceQuarantined(uint32_t mac) const
{
    const auto it = fwDevices_.find(mac);
    return it != fwDevices_.end() && it->second.quarantined;
}

std::vector<uint32_t>
NetStack::quarantinedMacs() const
{
    std::vector<uint32_t> macs;
    for (const auto &[mac, dev] : fwDevices_) {
        if (dev.quarantined) {
            macs.push_back(mac);
        }
    }
    return macs;
}

bool
NetStack::arqIdle() const
{
    for (const auto &[mac, peer] : peers_) {
        if (!peer.pending.empty() || !peer.backlog.empty()) {
            return false;
        }
    }
    return true;
}

void
NetStack::serialize(snapshot::Writer &w) const
{
    w.u32(config_.rxRingEntries);
    w.u32(config_.txRingEntries);
    w.u32(rxConsumed_);
    w.u32(rxPosted_);
    w.u32(pendingRefills_);
    w.u32(txPosted_);
    w.u32(txReaped_);
    w.u32(ackCountdown_);
    for (const Capability &slot : rxSlots_) {
        w.cap(slot);
    }
    for (const Capability &slot : txSlots_) {
        w.cap(slot);
    }
    w.u64(packetsAccepted_);
    w.u64(bytesAccepted_);
    w.u64(parseDrops_);
    w.u64(consumerRejects_);
    w.u64(ringCorruptionsDetected_);
    w.u64(refillFailures_);
    w.u64(refillTimeouts_);
    w.u64(rxErrorsSeen_);
    w.u64(acksSent_);
    w.u64(txCompleted_);
    w.u64(arqSent_);
    w.u64(arqDelivered_);
    w.u64(arqDuplicatesDropped_);
    w.u64(arqRetransmits_);
    w.u64(arqAcksSent_);
    w.u64(arqAcksReceived_);
    w.u64(arqPeerDeaths_);
    w.u64(arqRejoins_);
    w.u64(arqProbesSent_);
    w.u64(arqSendDrops_);
    w.u64(wrongDest_);
    // Peer map: std::map iteration order is the MAC order, so equal
    // logical state always serializes to equal bytes (the canonical-
    // image property the snapshot invariants rest on).
    w.u32(static_cast<uint32_t>(peers_.size()));
    for (const auto &[mac, peer] : peers_) {
        w.u32(mac);
        w.u32(peer.nextSeq);
        w.b(peer.dead);
        w.u64(peer.lastHeard);
        w.u64(peer.nextProbe);
        w.u32(peer.rxBase);
        w.u32(peer.rxEpoch);
        w.u32(static_cast<uint32_t>(peer.rxSeen.size()));
        for (const uint32_t seq : peer.rxSeen) {
            w.u32(seq);
        }
        for (const auto *queue : {&peer.pending, &peer.backlog}) {
            w.u32(static_cast<uint32_t>(queue->size()));
            for (const ArqMessage &msg : *queue) {
                w.u32(msg.seq);
                w.cap(msg.buf);
                w.u32(msg.len);
                w.u64(msg.sentAt);
                w.u64(msg.nextRetry);
                w.u64(msg.rto);
                w.u32(msg.retries);
            }
        }
    }
    // Firewall admission state + retransmit histogram (appended after
    // the PR-6 layout; symmetric with deserialize below).
    w.u64(unreliableDelivered_);
    for (uint32_t i = 0; i < kRetxHistogramBuckets; ++i) {
        w.u64(retxHistogram_[i]);
    }
    w.u64(fwAdmitted_);
    w.u64(fwRateLimited_);
    w.u64(fwInflightDenied_);
    w.u64(fwOversized_);
    w.u64(fwMalformed_);
    w.u64(fwStaleEpochs_);
    w.u64(fwQuarantineDrops_);
    w.u64(fwStrikes_);
    w.u64(fwQuarantines_);
    w.u32(static_cast<uint32_t>(fwDevices_.size()));
    for (const auto &[mac, dev] : fwDevices_) {
        w.u32(mac);
        w.u32(static_cast<uint32_t>(dev.rule));
        w.u32(dev.quota);
        w.u64(dev.tokens256);
        w.u64(dev.lastRefill);
        w.u32(dev.strikes);
        w.b(dev.quarantined);
    }
    fwLedger_.serialize(w);
}

bool
NetStack::deserialize(snapshot::Reader &r)
{
    if (r.u32() != config_.rxRingEntries ||
        r.u32() != config_.txRingEntries) {
        return false;
    }
    rxConsumed_ = r.u32();
    rxPosted_ = r.u32();
    pendingRefills_ = r.u32();
    txPosted_ = r.u32();
    txReaped_ = r.u32();
    ackCountdown_ = r.u32();
    for (Capability &slot : rxSlots_) {
        slot = r.cap();
    }
    for (Capability &slot : txSlots_) {
        slot = r.cap();
    }
    packetsAccepted_ = r.u64();
    bytesAccepted_ = r.u64();
    parseDrops_ = r.u64();
    consumerRejects_ = r.u64();
    ringCorruptionsDetected_ = r.u64();
    refillFailures_ = r.u64();
    refillTimeouts_ = r.u64();
    rxErrorsSeen_ = r.u64();
    acksSent_ = r.u64();
    txCompleted_ = r.u64();
    arqSent_ = r.u64();
    arqDelivered_ = r.u64();
    arqDuplicatesDropped_ = r.u64();
    arqRetransmits_ = r.u64();
    arqAcksSent_ = r.u64();
    arqAcksReceived_ = r.u64();
    arqPeerDeaths_ = r.u64();
    arqRejoins_ = r.u64();
    arqProbesSent_ = r.u64();
    arqSendDrops_ = r.u64();
    wrongDest_ = r.u64();
    peers_.clear();
    const uint32_t peerCount = r.u32();
    for (uint32_t p = 0; p < peerCount && r.ok(); ++p) {
        const uint32_t mac = r.u32();
        ArqPeer &peer = peers_[mac];
        peer.nextSeq = r.u32();
        peer.dead = r.b();
        peer.lastHeard = r.u64();
        peer.nextProbe = r.u64();
        peer.rxBase = r.u32();
        peer.rxEpoch = r.u32();
        const uint32_t seen = r.u32();
        for (uint32_t i = 0; i < seen && r.ok(); ++i) {
            peer.rxSeen.insert(r.u32());
        }
        for (auto *queue : {&peer.pending, &peer.backlog}) {
            const uint32_t depth = r.u32();
            for (uint32_t i = 0; i < depth && r.ok(); ++i) {
                ArqMessage msg;
                msg.seq = r.u32();
                msg.buf = r.cap();
                msg.len = r.u32();
                msg.sentAt = r.u64();
                msg.nextRetry = r.u64();
                msg.rto = r.u64();
                msg.retries = r.u32();
                queue->push_back(msg);
            }
        }
    }
    unreliableDelivered_ = r.u64();
    for (uint32_t i = 0; i < kRetxHistogramBuckets; ++i) {
        retxHistogram_[i] = r.u64();
    }
    fwAdmitted_ = r.u64();
    fwRateLimited_ = r.u64();
    fwInflightDenied_ = r.u64();
    fwOversized_ = r.u64();
    fwMalformed_ = r.u64();
    fwStaleEpochs_ = r.u64();
    fwQuarantineDrops_ = r.u64();
    fwStrikes_ = r.u64();
    fwQuarantines_ = r.u64();
    fwDevices_.clear();
    const uint32_t devCount = r.u32();
    for (uint32_t i = 0; i < devCount && r.ok(); ++i) {
        const uint32_t mac = r.u32();
        FwDevice &dev = fwDevices_[mac];
        dev.rule = static_cast<int32_t>(r.u32());
        dev.quota = r.u32();
        dev.tokens256 = r.u64();
        dev.lastRefill = r.u64();
        dev.strikes = r.u32();
        dev.quarantined = r.b();
    }
    if (!fwLedger_.deserialize(r)) {
        return false;
    }
    return r.ok();
}

} // namespace cheriot::net
