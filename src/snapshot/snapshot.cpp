#include "snapshot/snapshot.h"

#include <cstdio>
#include <cstring>

namespace cheriot::snapshot
{

Writer &
SnapshotWriter::beginSection(const std::string &name)
{
    if (open_) {
        endSection();
    }
    currentName_ = name;
    current_ = Writer{};
    open_ = true;
    return current_;
}

void
SnapshotWriter::endSection()
{
    if (!open_) {
        return;
    }
    sections_.push_back({currentName_, current_.take()});
    open_ = false;
}

SnapshotImage
SnapshotWriter::finish()
{
    endSection();
    Writer out;
    out.u32(kSnapshotMagic);
    out.u32(kSnapshotVersion);
    out.u32(static_cast<uint32_t>(sections_.size()));
    for (const Section &section : sections_) {
        out.str(section.name);
        out.u32(static_cast<uint32_t>(section.payload.size()));
        out.u32(crc32(section.payload.data(), section.payload.size()));
        out.bytes(section.payload.data(), section.payload.size());
    }
    const uint32_t imageCrc = crc32(out.buffer().data(), out.size());
    out.u32(imageCrc);
    SnapshotImage image;
    image.data = out.take();
    sections_.clear();
    return image;
}

SnapshotReader::SnapshotReader(const SnapshotImage &image) : image_(image)
{
    const size_t size = image.data.size();
    // Smallest possible image: header (12) + image CRC (4).
    if (size < 16) {
        error_ = "image too small";
        return;
    }
    Reader trailer(image.data.data() + size - 4, 4);
    const uint32_t storedCrc = trailer.u32();
    if (crc32(image.data.data(), size - 4) != storedCrc) {
        error_ = "image CRC mismatch";
        return;
    }
    Reader r(image.data.data(), size - 4);
    if (r.u32() != kSnapshotMagic) {
        error_ = "bad magic";
        return;
    }
    const uint32_t version = r.u32();
    if (version != kSnapshotVersion) {
        error_ = "unsupported version " + std::to_string(version);
        return;
    }
    const uint32_t count = r.u32();
    for (uint32_t i = 0; i < count; ++i) {
        Entry entry;
        entry.name = r.str();
        entry.size = r.u32();
        const uint32_t sectionCrc = r.u32();
        if (!r.ok() || r.remaining() < entry.size) {
            error_ = "truncated manifest";
            return;
        }
        entry.offset = (size - 4) - r.remaining();
        if (crc32(image.data.data() + entry.offset, entry.size) !=
            sectionCrc) {
            error_ = "section '" + entry.name + "' CRC mismatch";
            return;
        }
        r.skip(entry.size);
        entries_.push_back(entry);
        names_.push_back(entry.name);
    }
    if (!r.exhausted()) {
        error_ = "trailing bytes after manifest";
        return;
    }
    valid_ = true;
}

bool
SnapshotReader::hasSection(const std::string &name) const
{
    for (const Entry &entry : entries_) {
        if (entry.name == name) {
            return true;
        }
    }
    return false;
}

Reader
SnapshotReader::section(const std::string &name) const
{
    if (valid_) {
        for (const Entry &entry : entries_) {
            if (entry.name == name) {
                return Reader(image_.data.data() + entry.offset,
                              entry.size);
            }
        }
    }
    // Missing section: an empty reader whose first read latches !ok().
    return Reader(nullptr, 0);
}

bool
saveImageToFile(const SnapshotImage &image, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        return false;
    }
    const size_t written =
        image.data.empty()
            ? 0
            : std::fwrite(image.data.data(), 1, image.data.size(), f);
    const bool flushed = std::fflush(f) == 0;
    const bool closed = std::fclose(f) == 0;
    if (written != image.data.size() || !flushed || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
loadImageFromFile(const std::string &path, SnapshotImage *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return false;
    }
    std::vector<uint8_t> data;
    uint8_t chunk[4096];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
        data.insert(data.end(), chunk, chunk + got);
    }
    const bool readOk = std::ferror(f) == 0;
    std::fclose(f);
    if (!readOk) {
        return false;
    }
    SnapshotImage image;
    image.data = std::move(data);
    SnapshotReader reader(image);
    if (!reader.valid()) {
        return false;
    }
    *out = std::move(image);
    return true;
}

} // namespace cheriot::snapshot
