/**
 * @file
 * Lockstep divergence checking: step two Machine instances through
 * the same program together and report the first architectural
 * divergence, in the spirit of the CHERIoT-Ibex observational-
 * correctness check (core vs golden model, step by step).
 *
 * After every paired step the *architectural* state is compared:
 * register file (value bits and tags), PCC, CSRs/SCRs and halt
 * status. Cycle counts are deliberately excluded so that two timing
 * models (Flute-config vs Ibex-config) can run in lockstep over a
 * cycle-independent program; memory contents and micro-tags are
 * compared by digest at a configurable instruction interval and at
 * the end. Both machines carry a RingTracer, so a divergence report
 * includes the recent instruction window on each side.
 */

#ifndef CHERIOT_SNAPSHOT_LOCKSTEP_H
#define CHERIOT_SNAPSHOT_LOCKSTEP_H

#include "sim/machine.h"
#include "sim/tracer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::snapshot
{

struct LockstepReport
{
    bool diverged = false;
    /** Both machines halted with no divergence. */
    bool completed = false;
    /** Paired steps executed when the divergence was detected
     * (1-based: N means the N-th instruction diverged). */
    uint64_t divergenceStep = 0;
    /** What differed (register, PCC, CSR, memory digest, halt). */
    std::string detail;
    /** Recent instruction windows at the point of divergence. */
    std::vector<std::string> traceA;
    std::vector<std::string> traceB;
};

class LockstepRunner
{
  public:
    LockstepRunner(sim::Machine &a, sim::Machine &b,
                   size_t traceDepth = 16);

    /**
     * Step both machines once and compare architectural state.
     * Returns false on divergence (the report is then final).
     */
    bool stepBoth();

    /**
     * Run until both machines halt, divergence, or @p maxInstructions
     * paired steps. @p memoryCheckInterval is the instruction period
     * of the full memory-digest compare (0 disables periodic checks;
     * one is always performed at the end).
     */
    const LockstepReport &run(uint64_t maxInstructions,
                              uint64_t memoryCheckInterval = 4096);

    const LockstepReport &report() const { return report_; }
    uint64_t steps() const { return steps_; }

  private:
    bool compareArchitecturalState();
    bool compareMemory();
    void recordDivergence(const std::string &detail);

    sim::Machine &a_;
    sim::Machine &b_;
    sim::RingTracer tracerA_;
    sim::RingTracer tracerB_;
    LockstepReport report_;
    uint64_t steps_ = 0;
};

} // namespace cheriot::snapshot

#endif // CHERIOT_SNAPSHOT_LOCKSTEP_H
