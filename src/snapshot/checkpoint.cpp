#include "snapshot/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

namespace fs = std::filesystem;

namespace cheriot::snapshot
{

namespace
{

/** Parse `<name>.<seq>.snap`; returns false for foreign files. */
bool
parseSequence(const std::string &filename, const std::string &name,
              uint64_t *seq)
{
    const std::string prefix = name + ".";
    const std::string suffix = ".snap";
    if (filename.size() <= prefix.size() + suffix.size() ||
        filename.compare(0, prefix.size(), prefix) != 0 ||
        filename.compare(filename.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
        return false;
    }
    const std::string digits = filename.substr(
        prefix.size(), filename.size() - prefix.size() - suffix.size());
    if (digits.empty()) {
        return false;
    }
    uint64_t value = 0;
    for (char c : digits) {
        if (c < '0' || c > '9') {
            return false;
        }
        value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    *seq = value;
    return true;
}

std::vector<uint64_t>
existingSequences(const std::string &directory, const std::string &name)
{
    std::vector<uint64_t> seqs;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(directory, ec)) {
        uint64_t seq;
        if (parseSequence(entry.path().filename().string(), name, &seq)) {
            seqs.push_back(seq);
        }
    }
    std::sort(seqs.begin(), seqs.end());
    return seqs;
}

} // namespace

CheckpointManager::CheckpointManager(std::string directory, std::string name)
    : directory_(std::move(directory)), name_(std::move(name))
{
    std::error_code ec;
    fs::create_directories(directory_, ec);
    const std::vector<uint64_t> seqs = existingSequences(directory_, name_);
    if (!seqs.empty()) {
        nextSeq_ = seqs.back() + 1;
    }
}

std::string
CheckpointManager::pathFor(uint64_t seq) const
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%06llu",
                  static_cast<unsigned long long>(seq));
    return directory_ + "/" + name_ + "." + buffer + ".snap";
}

bool
CheckpointManager::store(const SnapshotImage &image)
{
    const uint64_t seq = nextSeq_;
    if (!saveImageToFile(image, pathFor(seq))) {
        return false;
    }
    nextSeq_ = seq + 1;
    // Prune everything but the newest kKeep generations; the previous
    // one is kept so a torn write of the next store never strands us.
    for (uint64_t old : existingSequences(directory_, name_)) {
        if (old + kKeep < nextSeq_) {
            std::remove(pathFor(old).c_str());
        }
    }
    return true;
}

int64_t
CheckpointManager::loadLatest(SnapshotImage *out) const
{
    std::vector<uint64_t> seqs = existingSequences(directory_, name_);
    for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
        if (loadImageFromFile(pathFor(*it), out)) {
            return static_cast<int64_t>(*it);
        }
    }
    return -1;
}

} // namespace cheriot::snapshot
