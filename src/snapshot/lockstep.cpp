#include "snapshot/lockstep.h"

#include <cstdio>

namespace cheriot::snapshot
{

namespace
{

std::string
describeCap(const cap::Capability &c)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%016llx tag=%d",
                  static_cast<unsigned long long>(c.toBits()),
                  c.tag() ? 1 : 0);
    return buffer;
}

bool
sameCap(const cap::Capability &x, const cap::Capability &y)
{
    return x.toBits() == y.toBits() && x.tag() == y.tag();
}

} // namespace

LockstepRunner::LockstepRunner(sim::Machine &a, sim::Machine &b,
                               size_t traceDepth)
    : a_(a), b_(b), tracerA_(traceDepth), tracerB_(traceDepth)
{
    tracerA_.attach(a_);
    tracerB_.attach(b_);
}

void
LockstepRunner::recordDivergence(const std::string &detail)
{
    report_.diverged = true;
    report_.divergenceStep = steps_;
    report_.detail = detail;
    report_.traceA = tracerA_.format();
    report_.traceB = tracerB_.format();
}

bool
LockstepRunner::compareArchitecturalState()
{
    for (unsigned i = 1; i < isa::kNumRegs; ++i) {
        const cap::Capability ra = a_.readReg(i);
        const cap::Capability rb = b_.readReg(i);
        if (!sameCap(ra, rb)) {
            recordDivergence("c" + std::to_string(i) + ": A=" +
                             describeCap(ra) + " B=" + describeCap(rb));
            return false;
        }
    }
    if (!sameCap(a_.pcc(), b_.pcc())) {
        recordDivergence("pcc: A=" + describeCap(a_.pcc()) +
                         " B=" + describeCap(b_.pcc()));
        return false;
    }
    sim::CsrFile &ca = a_.csrs();
    sim::CsrFile &cb = b_.csrs();
    if (ca.mie != cb.mie || ca.mpie != cb.mpie ||
        ca.mcause != cb.mcause || ca.mtval != cb.mtval ||
        ca.mshwm != cb.mshwm || ca.mshwmb != cb.mshwmb) {
        recordDivergence("csr state differs (mcause A=" +
                         std::to_string(ca.mcause) +
                         " B=" + std::to_string(cb.mcause) + ")");
        return false;
    }
    if (!sameCap(ca.mtcc, cb.mtcc) || !sameCap(ca.mtdc, cb.mtdc) ||
        !sameCap(ca.mscratchc, cb.mscratchc) ||
        !sameCap(ca.mepcc, cb.mepcc)) {
        recordDivergence("special capability registers differ");
        return false;
    }
    if (a_.halted() != b_.halted()) {
        recordDivergence(std::string("halt state: A=") +
                         (a_.halted() ? "halted" : "running") +
                         " B=" + (b_.halted() ? "halted" : "running"));
        return false;
    }
    return true;
}

bool
LockstepRunner::compareMemory()
{
    const uint32_t da = a_.memory().sram().contentsDigest();
    const uint32_t db = b_.memory().sram().contentsDigest();
    if (da != db) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer),
                      "memory digest: A=%08x B=%08x", da, db);
        recordDivergence(buffer);
        return false;
    }
    return true;
}

bool
LockstepRunner::stepBoth()
{
    if (report_.diverged) {
        return false;
    }
    a_.step();
    b_.step();
    ++steps_;
    return compareArchitecturalState();
}

const LockstepReport &
LockstepRunner::run(uint64_t maxInstructions, uint64_t memoryCheckInterval)
{
    while (!report_.diverged && steps_ < maxInstructions) {
        if (a_.halted() && b_.halted()) {
            break;
        }
        if (!stepBoth()) {
            return report_;
        }
        if (memoryCheckInterval != 0 &&
            steps_ % memoryCheckInterval == 0 && !compareMemory()) {
            return report_;
        }
    }
    if (!compareMemory()) {
        return report_;
    }
    report_.completed = a_.halted() && b_.halted();
    return report_;
}

} // namespace cheriot::snapshot
