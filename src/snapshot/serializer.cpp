#include "snapshot/serializer.h"

#include <array>
#include <cstring>

namespace cheriot::snapshot
{

namespace
{

std::array<uint32_t, 256>
buildCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t size, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = buildCrcTable();
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < size; ++i) {
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    }
    return c ^ 0xffffffffu;
}

void
Writer::u16(uint16_t value)
{
    u8(static_cast<uint8_t>(value));
    u8(static_cast<uint8_t>(value >> 8));
}

void
Writer::u32(uint32_t value)
{
    u16(static_cast<uint16_t>(value));
    u16(static_cast<uint16_t>(value >> 16));
}

void
Writer::u64(uint64_t value)
{
    u32(static_cast<uint32_t>(value));
    u32(static_cast<uint32_t>(value >> 32));
}

void
Writer::bytes(const uint8_t *data, size_t size)
{
    buffer_.insert(buffer_.end(), data, data + size);
}

void
Writer::str(const std::string &value)
{
    u32(static_cast<uint32_t>(value.size()));
    bytes(reinterpret_cast<const uint8_t *>(value.data()), value.size());
}

bool
Reader::take(size_t count)
{
    if (!ok_ || size_ - offset_ < count) {
        ok_ = false;
        return false;
    }
    return true;
}

uint8_t
Reader::u8()
{
    if (!take(1)) {
        return 0;
    }
    return data_[offset_++];
}

uint16_t
Reader::u16()
{
    const uint16_t lo = u8();
    const uint16_t hi = u8();
    return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t
Reader::u32()
{
    const uint32_t lo = u16();
    const uint32_t hi = u16();
    return lo | (hi << 16);
}

uint64_t
Reader::u64()
{
    const uint64_t lo = u32();
    const uint64_t hi = u32();
    return lo | (hi << 32);
}

void
Reader::bytes(uint8_t *out, size_t size)
{
    if (!take(size)) {
        std::memset(out, 0, size);
        return;
    }
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
}

void
Reader::skip(size_t size)
{
    if (take(size)) {
        offset_ += size;
    }
}

std::string
Reader::str()
{
    const uint32_t size = u32();
    if (!take(size)) {
        return {};
    }
    std::string value(reinterpret_cast<const char *>(data_ + offset_),
                      size);
    offset_ += size;
    return value;
}

} // namespace cheriot::snapshot
