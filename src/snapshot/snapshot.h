/**
 * @file
 * Versioned, checksummed system-snapshot images.
 *
 * An image is a manifest of named *sections*, one per stateful
 * component ("machine", "sram", "revoker", "kernel", …), each
 * independently CRC-protected, followed by a whole-image CRC:
 *
 *   u32 magic 'CHSN'   u32 version   u32 sectionCount
 *   sectionCount × { str name, u32 payloadSize, u32 payloadCrc,
 *                    payload bytes }
 *   u32 imageCrc       (over everything above)
 *
 * The component manifest makes partial restores and forward
 * compatibility explicit: a reader knows exactly which components an
 * image carries before touching any state, and a version bump or a
 * flipped bit is rejected up front rather than surfacing as a
 * half-restored machine.
 *
 * File writes are crash-consistent: the image is written to a
 * temporary sibling and atomically renamed over the target, so a
 * checkpoint file is either the complete old image or the complete
 * new one, never a tear.
 */

#ifndef CHERIOT_SNAPSHOT_SNAPSHOT_H
#define CHERIOT_SNAPSHOT_SNAPSHOT_H

#include "snapshot/serializer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::snapshot
{

/** Current image format version.
 * v2: quota ledger + chunk-owner map + heap-pressure counters in the
 * allocator stream; alloc-failure budget in FaultRecoveryState.
 * v3: refill-timeout counter + ARQ peer state (sequence/retransmit/
 * dedup queues) in the net-stack stream.
 * v4: object-capability table (entries, derivation tree, pending
 * revocations, counters) in the kernel stream; time-cap deferral
 * counter + slot width in the scheduler stream; monitor-action
 * counters in the watchdog stream. */
constexpr uint32_t kSnapshotVersion = 4;
/** 'CHSN' little-endian. */
constexpr uint32_t kSnapshotMagic = 0x4e534843;

/** A complete serialized system image. */
struct SnapshotImage
{
    std::vector<uint8_t> data;

    bool empty() const { return data.empty(); }
    /**
     * Digest of the image contents; state-equality when canonical.
     * The image's own trailing CRC is excluded: CRC-32 over a message
     * with its CRC appended is the fixed residue 0x2144df1c for
     * *every* valid image, which would make the digest constant. The
     * trailing CRC already covers all preceding bytes, so it *is* the
     * content digest.
     */
    uint32_t digest() const
    {
        if (data.size() < 4) {
            return crc32(data.data(), data.size());
        }
        const size_t n = data.size();
        return static_cast<uint32_t>(data[n - 4]) |
               (static_cast<uint32_t>(data[n - 3]) << 8) |
               (static_cast<uint32_t>(data[n - 2]) << 16) |
               (static_cast<uint32_t>(data[n - 1]) << 24);
    }
};

/** Builds an image section by section. */
class SnapshotWriter
{
  public:
    /** Start a named section; returns the Writer for its payload. */
    Writer &beginSection(const std::string &name);

    /** Finish the current section (computes its CRC). */
    void endSection();

    /** Seal the image (appends the whole-image CRC). */
    SnapshotImage finish();

  private:
    struct Section
    {
        std::string name;
        std::vector<uint8_t> payload;
    };

    std::vector<Section> sections_;
    Writer current_;
    std::string currentName_;
    bool open_ = false;
};

/**
 * Parses and validates an image: magic, version, manifest geometry,
 * per-section CRCs and the image CRC are all checked on construction;
 * valid() gates everything else.
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const SnapshotImage &image);

    bool valid() const { return valid_; }
    /** Why validation failed (diagnostics). */
    const std::string &error() const { return error_; }

    /** Component manifest, in image order. */
    const std::vector<std::string> &sectionNames() const
    {
        return names_;
    }
    bool hasSection(const std::string &name) const;

    /** Reader over a section's payload; overruns latch on a missing
     * section so callers can check Reader::ok() uniformly. */
    Reader section(const std::string &name) const;

  private:
    struct Entry
    {
        std::string name;
        size_t offset;
        size_t size;
    };

    const SnapshotImage &image_;
    std::vector<Entry> entries_;
    std::vector<std::string> names_;
    bool valid_ = false;
    std::string error_;
};

/** @name Crash-consistent file I/O (write-temp + atomic rename) @{ */
bool saveImageToFile(const SnapshotImage &image, const std::string &path);
/** Loads and fully validates; false on I/O error or corruption. */
bool loadImageFromFile(const std::string &path, SnapshotImage *out);
/** @} */

} // namespace cheriot::snapshot

#endif // CHERIOT_SNAPSHOT_SNAPSHOT_H
