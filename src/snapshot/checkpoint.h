/**
 * @file
 * Crash-consistent periodic checkpointing.
 *
 * A CheckpointManager owns a directory of sequence-numbered snapshot
 * files for one run. store() writes each image atomically
 * (write-temp + rename) and prunes all but the newest two
 * generations, so at every instant the directory contains at least
 * one complete, validated image even if the process dies mid-write.
 * loadLatest() walks the generations newest-first and returns the
 * first one whose CRCs check out, silently skipping torn or corrupt
 * files — the recovery path a killed-and-restarted workload driver
 * uses to resume bit-exactly.
 */

#ifndef CHERIOT_SNAPSHOT_CHECKPOINT_H
#define CHERIOT_SNAPSHOT_CHECKPOINT_H

#include "snapshot/snapshot.h"

#include <cstdint>
#include <string>

namespace cheriot::snapshot
{

class CheckpointManager
{
  public:
    /** Generations kept on disk. */
    static constexpr unsigned kKeep = 2;

    /**
     * @param directory created if missing.
     * @param name      run identifier; files are
     *                  `<directory>/<name>.<seq>.snap`.
     * Existing checkpoints for @p name are adopted: the next store()
     * continues the sequence rather than overwriting history.
     */
    CheckpointManager(std::string directory, std::string name);

    /** Persist @p image as the next generation; prunes old ones. */
    bool store(const SnapshotImage &image);

    /**
     * Load the newest generation that validates; corrupt files fall
     * back to the previous one. Returns the generation's sequence
     * number, or -1 if none is loadable.
     */
    int64_t loadLatest(SnapshotImage *out) const;

    uint64_t nextSequence() const { return nextSeq_; }
    std::string pathFor(uint64_t seq) const;

  private:
    std::string directory_;
    std::string name_;
    uint64_t nextSeq_ = 0;
};

} // namespace cheriot::snapshot

#endif // CHERIOT_SNAPSHOT_CHECKPOINT_H
