/**
 * @file
 * Binary serialization primitives for system snapshots.
 *
 * Writer appends fixed-width little-endian fields to a growable byte
 * buffer; Reader consumes them with bounds checking. Serialization is
 * *canonical*: a given logical state always produces the same bytes,
 * so byte-equality of two images is state-equality — the property the
 * snapshot round-trip invariant (save → restore → save is the
 * identity on images) and the lockstep digest comparison both rest
 * on. A CRC-32 over every section makes torn or corrupted images
 * detectable before any state is overwritten.
 */

#ifndef CHERIOT_SNAPSHOT_SERIALIZER_H
#define CHERIOT_SNAPSHOT_SERIALIZER_H

#include "cap/capability.h"
#include "util/stats.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::snapshot
{

/** CRC-32 (IEEE, reflected) over @p size bytes. */
uint32_t crc32(const uint8_t *data, size_t size, uint32_t seed = 0);

class Writer
{
  public:
    void u8(uint8_t value) { buffer_.push_back(value); }
    void u16(uint16_t value);
    void u32(uint32_t value);
    void u64(uint64_t value);
    void b(bool value) { u8(value ? 1 : 0); }
    void bytes(const uint8_t *data, size_t size);
    void str(const std::string &value);

    /** A capability: packed 64-bit image plus the out-of-band tag.
     * toBits()/fromBits() are exact inverses, so this is lossless. */
    void cap(const cap::Capability &value)
    {
        u64(value.toBits());
        b(value.tag());
    }

    /** A monotonic counter's current value. */
    void counter(const Counter &value) { u64(value.value()); }

    const std::vector<uint8_t> &buffer() const { return buffer_; }
    std::vector<uint8_t> take() { return std::move(buffer_); }
    size_t size() const { return buffer_.size(); }

  private:
    std::vector<uint8_t> buffer_;
};

/**
 * Bounds-checked reader over a byte span. Overruns latch the error
 * flag and yield zeros rather than touching out-of-range memory, so
 * restore paths can run to completion and check ok() once.
 */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    bool b() { return u8() != 0; }
    void bytes(uint8_t *out, size_t size);
    void skip(size_t size);
    std::string str();

    cap::Capability cap()
    {
        const uint64_t bits = u64();
        const bool tag = b();
        return cap::Capability::fromBits(bits, tag);
    }

    void counter(Counter &value)
    {
        value.set(u64());
    }

    /** False once any read has run past the end of the span. */
    bool ok() const { return ok_; }
    /** True when every byte has been consumed (and no overrun). */
    bool exhausted() const { return ok_ && offset_ == size_; }
    size_t remaining() const { return size_ - offset_; }

  private:
    bool take(size_t count);

    const uint8_t *data_;
    size_t size_;
    size_t offset_ = 0;
    bool ok_ = true;
};

} // namespace cheriot::snapshot

#endif // CHERIOT_SNAPSHOT_SERIALIZER_H
