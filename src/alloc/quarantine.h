/**
 * @file
 * Epoch-stamped quarantine lists (paper §5.1).
 *
 * Freed chunks are not returned to the free lists immediately: they
 * sit in a quarantine list stamped with the revocation epoch at which
 * they were freed. A chunk may be reused only after a complete
 * revocation sweep has run since its bits were painted — at which
 * point no stale capability to it can exist anywhere in memory
 * (§3.3.2's invariant). The allocator tracks at most three lists with
 * distinct epochs; if a fourth is needed the two oldest merge
 * (conservatively keeping the younger stamp).
 *
 * Lists are linked through the quarantined chunks' fd capabilities in
 * simulated memory; the link targets are chunk headers, whose
 * revocation bits are never painted, so the links survive sweeps.
 */

#ifndef CHERIOT_ALLOC_QUARANTINE_H
#define CHERIOT_ALLOC_QUARANTINE_H

#include "alloc/chunk.h"
#include "revoker/revoker.h"

#include <array>
#include <cstdint>
#include <functional>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::alloc
{

class Quarantine
{
  public:
    explicit Quarantine(ChunkView &view) : view_(&view) {}

    /** Add a freed chunk under the current @p epoch. */
    void add(uint32_t chunk, uint32_t size, uint32_t epoch);

    /**
     * Release every chunk whose quarantine epoch is provably covered
     * by a completed sweep at @p currentEpoch, invoking @p release
     * for each (in no particular order).
     */
    void drain(uint32_t currentEpoch,
               const std::function<void(uint32_t chunk, uint32_t size)>
                   &release);

    /** Bytes currently held in quarantine. */
    uint64_t bytes() const { return totalBytes_; }
    uint32_t chunkCount() const { return totalChunks_; }
    bool empty() const { return totalChunks_ == 0; }

    /** Oldest epoch stamp held, or ~0u when empty. */
    uint32_t oldestEpoch() const;

    /** Distinct epoch lists currently in use (≤ kMaxLists). */
    unsigned activeListCount() const
    {
        unsigned count = 0;
        for (const auto &list : lists_) {
            count += list.active ? 1 : 0;
        }
        return count;
    }

    /** @name Snapshot state (list heads; links live in guest SRAM) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    struct List
    {
        bool active = false;
        uint32_t epoch = 0;
        uint32_t head = 0;
        uint64_t bytes = 0;
        uint32_t chunks = 0;
    };

    static constexpr unsigned kMaxLists = 3;

    List *listFor(uint32_t epoch);

    ChunkView *view_;
    std::array<List, kMaxLists> lists_;
    uint64_t totalBytes_ = 0;
    uint32_t totalChunks_ = 0;
};

} // namespace cheriot::alloc

#endif // CHERIOT_ALLOC_QUARANTINE_H
