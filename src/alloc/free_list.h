/**
 * @file
 * Segregated free lists over boundary-tagged chunks.
 *
 * Small chunks (24..256 bytes) live in exact-size bins; everything
 * larger lives on one list kept sorted by size, so first-fit is
 * best-fit. List heads are allocator-compartment globals (charged as
 * such); the links themselves are capabilities inside the free
 * chunks' payloads.
 */

#ifndef CHERIOT_ALLOC_FREE_LIST_H
#define CHERIOT_ALLOC_FREE_LIST_H

#include "alloc/chunk.h"

#include <array>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::alloc
{

class FreeList
{
  public:
    explicit FreeList(ChunkView &view) : view_(&view) {}

    /** Insert a free chunk (head flags must already be correct). */
    void insert(uint32_t chunk, uint32_t size);

    /** Remove a specific chunk (for coalescing). */
    void remove(uint32_t chunk, uint32_t size);

    /**
     * Find and remove a chunk of at least @p size whose payload can
     * hold an aligned block: the chunk must be able to provide
     * @p size usable bytes at an address where
     * (payload & alignMask) == payload, possibly after a leading
     * split of at least kMinChunkSize. Returns 0 if none.
     */
    uint32_t takeFit(uint32_t size, uint32_t alignMask);

    /** Total free bytes tracked (diagnostics). */
    uint64_t freeBytes() const { return freeBytes_; }
    uint32_t chunkCount() const { return chunks_; }

    /** @name Snapshot state (bin heads; links live in guest SRAM) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    static constexpr uint32_t kSmallBinCount = 30; // 24..256 step 8
    static constexpr uint32_t kMaxSmallSize = 24 + (kSmallBinCount - 1) * 8;

    static bool isSmall(uint32_t size) { return size <= kMaxSmallSize; }
    static uint32_t binIndex(uint32_t size) { return (size - 24) / 8; }

    /** Leading padding needed to align @p chunk's payload. */
    static uint32_t alignPad(uint32_t chunk, uint32_t alignMask);

    bool fits(uint32_t chunk, uint32_t chunkSize, uint32_t need,
              uint32_t alignMask) const;

    void unlink(uint32_t chunk, uint32_t *head);

    ChunkView *view_;
    /** Bin heads: chunk addresses, 0 = empty (compartment globals). */
    std::array<uint32_t, kSmallBinCount> smallBins_ = {};
    uint32_t largeHead_ = 0;
    uint64_t freeBytes_ = 0;
    uint32_t chunks_ = 0;
};

} // namespace cheriot::alloc

#endif // CHERIOT_ALLOC_FREE_LIST_H
