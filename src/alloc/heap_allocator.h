/**
 * @file
 * The shared heap allocator compartment (paper §5.1).
 *
 * A dlmalloc-flavoured boundary-tag allocator augmented for CHERIoT:
 *
 *  - malloc() returns a capability with *exact* bounds over the
 *    allocation; sizes are rounded with CRRL and bases aligned with
 *    CRAM so the bounds always encode precisely (§3.2.3).
 *  - free() paints the payload's revocation bits (through the
 *    memory-mapped bitmap window only this compartment can reach),
 *    zeroes the payload, and places the chunk on an epoch-stamped
 *    quarantine list. From that instant the hardware load filter
 *    makes any use-after-free impossible (§3.3.2).
 *  - Chunks leave quarantine only after a full revocation sweep, so
 *    allocations can never temporally alias.
 *
 * Four temporal-safety modes reproduce the paper's Table 4
 * configurations: Baseline (spatial only), MetadataOnly (bitmap
 * maintained, no sweeps), SoftwareRevocation (synchronous sweep
 * loop) and HardwareRevocation (background engine).
 */

#ifndef CHERIOT_ALLOC_HEAP_ALLOCATOR_H
#define CHERIOT_ALLOC_HEAP_ALLOCATOR_H

#include "alloc/alloc_result.h"
#include "alloc/chunk.h"
#include "alloc/free_list.h"
#include "alloc/quarantine.h"
#include "alloc/quota.h"
#include "revoker/revocation_bitmap.h"
#include "revoker/revoker.h"
#include "util/stats.h"

#include <functional>
#include <map>
#include <vector>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::alloc
{

/** Table 4's four temporal-safety configurations. */
enum class TemporalMode : uint8_t
{
    None,               ///< Baseline: spatial safety only.
    MetadataOnly,       ///< Revocation bits updated, no sweeping.
    SoftwareRevocation, ///< Sweeps run in the software loop.
    HardwareRevocation, ///< Sweeps run on the background engine.
};

const char *temporalModeName(TemporalMode mode);

struct AllocatorConfig
{
    TemporalMode mode = TemporalMode::SoftwareRevocation;
    /** Quarantined bytes that trigger a sweep (0 = heapSize/2). */
    uint64_t quarantineThreshold = 0;

    /** @name Blocking-malloc backoff (the backpressure loop)
     * On exhaustion malloc kicks the revoker and waits with capped
     * exponential backoff for quarantine to become releasable. The
     * attempt budget is charged only to waits during which the
     * revocation epoch made *no* progress — a healthy engine always
     * advances and eventually empties quarantine, so the loop exits
     * for a reason (memory found, or nothing left to reclaim); only
     * a stalled engine burns the budget and forces OutOfMemory. @{ */
    uint32_t backoffMaxAttempts = 16;
    uint64_t backoffInitialCycles = 256;
    uint64_t backoffCapCycles = 16384;
    /** No-progress waits with a sweep stuck in flight before the
     * loop escalates to the synchronous waiter (whose timeout kick
     * is the engine-reset path for a wedged revoker). */
    uint32_t backoffStallEscalation = 4;
    /** @} */
};

class HeapAllocator
{
  public:
    /**
     * @param guest      charged memory access.
     * @param heapCap    capability over [heapBase, heapEnd), LD/SD/MC,
     *                   no SL (heap memory must not hold locals).
     * @param bitmapCap  capability over the revocation bitmap MMIO
     *                   window (only the allocator compartment gets
     *                   one, enforced by the loader).
     * @param bitmap     bitmap geometry (base/granule).
     * @param revoker    sweep engine; may be null for None/Metadata.
     */
    HeapAllocator(rtos::GuestContext &guest, cap::Capability heapCap,
                  cap::Capability bitmapCap,
                  const revoker::RevocationBitmap &bitmap,
                  revoker::Revoker *revoker, AllocatorConfig config);

    /**
     * Allocate @p size bytes; returns an exactly bounded, unsealed,
     * global capability, or an untagged null on exhaustion. Unmetered
     * (kernel-account) variant of mallocCharged.
     */
    cap::Capability malloc(uint32_t size);

    /**
     * Allocate @p size bytes charged against quota entry @p owner.
     * The chunk's full footprint (payload plus boundary-tag overhead
     * after representability rounding) is charged at admission and
     * credited back only when the memory really returns to the free
     * lists — for the revocation modes, when it leaves quarantine, so
     * quarantined bytes keep counting against their owner.
     *
     * Never aborts on resource exhaustion: on failure the returned
     * capability is untagged and @p result (if non-null) explains
     * why with a recoverable, typed code.
     */
    cap::Capability mallocCharged(QuotaId owner, uint32_t size,
                                  AllocResult *result);

    /** Allocate @p count × @p size zeroed bytes (overflow-checked). */
    cap::Capability calloc(uint32_t count, uint32_t size);

    /**
     * Resize @p ptr to @p size bytes: allocate-copy-free (bounds are
     * immutable, so growth can never be in place). Returns the new
     * capability; on failure returns untagged and leaves @p ptr
     * live. realloc(valid, 0) frees and returns untagged.
     */
    cap::Capability realloc(const cap::Capability &ptr, uint32_t size);

    /** Error codes returned by free(). */
    enum class FreeResult : uint8_t
    {
        Ok,
        InvalidCap,    ///< Untagged, sealed, or not a heap pointer.
        NotAllocated,  ///< Header is not a live allocation (double
                       ///< free or interior pointer).
        AlreadyFreed,  ///< Revocation bits already painted.
    };

    FreeResult free(const cap::Capability &ptr);

    /**
     * Claim: keep @p ptr's allocation alive until a matching free()
     * (the CHERIoT RTOS heap_claim API). A compartment that receives
     * a heap buffer from an untrusting peer claims it so the peer's
     * free() cannot revoke it mid-use; each free() releases one
     * claim and the memory is quarantined only when the last claim
     * (including the allocator's implicit one from malloc) drops.
     * Claim records live in allocator-private heap memory.
     */
    FreeResult claim(const cap::Capability &ptr);

    /** Outstanding explicit claims on @p ptr's allocation. */
    uint32_t claimCount(const cap::Capability &ptr);

    /** @name Introspection @{ */
    uint64_t freeBytes() const { return freeList_.freeBytes(); }
    /**
     * Bytes of placement slack currently held by live chunks: a
     * split remainder below kMinChunkSize cannot stand as its own
     * free chunk, so it stays attached to the allocation and leaves
     * the free lists until that chunk is released. Heal audits that
     * compare freeBytes() against a baseline must add this, or a
     * live long-lived buffer that landed on a slacked chunk reads as
     * a (phantom) 8- or 16-byte leak.
     */
    uint64_t slackBytes() const { return slackBytes_; }
    /**
     * Walk every chunk's boundary tag from the heap base to the top
     * sentinel, calling @p cb(addr, size, inUse, internal) for each.
     * `internal` marks allocator-private chunks (claim records).
     * Diagnostics: leak audits use it to name what is still live.
     * Stops early on a corrupt tag rather than looping.
     */
    void forEachChunk(
        const std::function<void(uint32_t addr, uint32_t size,
                                 bool inUse, bool internal)> &cb);
    uint64_t quarantinedBytes() const { return quarantine_.bytes(); }
    uint32_t quarantinedChunks() const
    {
        return quarantine_.chunkCount();
    }
    uint32_t heapBase() const { return heapBase_; }
    uint32_t heapEnd() const { return heapEnd_; }
    TemporalMode mode() const { return config_.mode; }
    /** Current revocation epoch (0 without a revoker). */
    uint32_t epoch() const { return currentEpoch(); }
    /** Epochs the oldest quarantined chunk has waited (0 if empty). */
    uint32_t oldestEpochAge() const;
    /** @} */

    /** @name Quota accounting @{ */
    QuotaLedger &quota() { return quota_; }
    const QuotaLedger &quota() const { return quota_; }
    /** @} */

    /**
     * Install the wait primitive for the backoff loop (the kernel
     * routes it through the scheduler so the idle thread — and with
     * it the background revoker — owns the memory port while the
     * blocked malloc sleeps). Default: raw machine idle.
     */
    void setBackoffWait(std::function<void(uint64_t)> wait)
    {
        backoffWait_ = std::move(wait);
    }

    /** Force a sweep + quarantine drain now (used by idle logic). */
    void synchronise();

    /** @name Snapshot state
     * Host-side metadata mirrors (free lists, quarantine, claim list
     * head, allocation-start bitmaps, counters). Chunk headers and
     * list links live in guest SRAM and are covered by the machine
     * image; restoring both sides re-establishes consistency. @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    Counter mallocs;
    Counter frees;
    Counter failedMallocs;
    Counter rejectedFrees;
    Counter sweepsTriggered;
    Counter chunksReleased;
    /** @name Overload observability (heap-pressure registers) @{ */
    Counter quotaDenials;     ///< Mallocs refused at admission.
    Counter blockedMallocs;   ///< Mallocs that entered the backoff loop.
    Counter backoffWaitCycles;///< Cycles spent waiting in backoff.
    Counter backoffTimeouts;  ///< Backoff budgets exhausted.
    Counter oomReturns;       ///< OutOfMemory results surfaced.
    /** @} */

    StatGroup &stats() { return stats_; }

  private:
    /** Paint or clear revocation bits over [addr, addr+bytes). */
    void paintBits(uint32_t addr, uint32_t bytes, bool set);

    /** Clear bits, coalesce, and return a chunk to the free lists. */
    void releaseChunk(uint32_t chunk, uint32_t size, bool clearBits);

    /** Drain quarantine lists whose sweep has completed. */
    void drainQuarantine();

    /**
     * The backpressure loop shared by the memory and quota
     * exhaustion paths: kick the revoker and sleep in growing slices,
     * re-trying @p satisfied after each quarantine drain. Returns
     * true when it held; false when quarantine emptied without it
     * holding (revocation has nothing more to give) or the budget
     * expired with the epoch frozen (stalled engine). The attempt
     * budget burns only on no-progress waits, so a healthy engine
     * can never time the loop out.
     */
    bool backoffUntil(const std::function<bool()> &satisfied);

    /**
     * Exhaustion path: drain what a completed sweep already made
     * safe, then wait through backoffUntil for quarantine to become
     * releasable. Returns a chunk fitting @p need, or 0 when the
     * heap is exhausted for real — never blocks unboundedly.
     */
    uint32_t reclaimWithBackoff(uint32_t need, uint32_t alignMask);

    /**
     * Quota admission with the same backpressure: a charge that
     * fails while the owner's own frees sit in quarantine (still
     * charged) waits for revocation to credit them back before the
     * denial becomes final. A live working set over the limit drains
     * quarantine and is then denied fast.
     */
    bool chargeWithBackoff(QuotaId owner, uint32_t need);

    /** Kick (and for the software engine, run) a sweep. */
    void triggerSweep(bool waitForCompletion);

    uint32_t currentEpoch() const;

    /** Validate that @p ptr names a live allocation; yields its
     * chunk address. */
    FreeResult checkLive(const cap::Capability &ptr, uint32_t *chunk);

    /** Find the claim record for @p chunk; returns the record
     * payload address (0 if none) and the predecessor record (0 if
     * it is the list head). */
    uint32_t findClaimRecord(uint32_t chunk, uint32_t *prev);

    /** Unlink and release a claim record. */
    void removeClaimRecord(uint32_t record, uint32_t prev);

    rtos::GuestContext &guest_;
    ChunkView view_;
    FreeList freeList_;
    Quarantine quarantine_;
    cap::Capability bitmapCap_;
    uint32_t bitmapGranule_;
    uint32_t heapBase_;
    uint32_t heapEnd_;
    revoker::Revoker *revoker_;
    AllocatorConfig config_;
    QuotaLedger quota_;
    /**
     * Chunk address → quota entry paying for it. Entries persist
     * through quarantine and are settled (credited and erased) only
     * when releaseChunk returns the memory to the free lists.
     * Ordered map: snapshot serialization must be canonical.
     */
    std::map<uint32_t, QuotaId> chunkOwners_;
    /**
     * Chunk address → absorbed split remainder (bytes). Settled at
     * releaseChunk like chunkOwners_; the sum is slackBytes_.
     * Ordered map: snapshot serialization must be canonical.
     */
    std::map<uint32_t, uint32_t> chunkSlack_;
    uint64_t slackBytes_ = 0;
    std::function<void(uint64_t)> backoffWait_;
    /** Head of the claim-record list (payload address; 0 = empty). */
    uint32_t claimsHead_ = 0;
    /**
     * Allocation-start bitmap (allocator-private globals): one bit
     * per granule, set while a live allocation's payload begins
     * there. free()/claim() accept a pointer only if its base is a
     * recorded allocation start — so an attacker who writes a fake
     * chunk header into their own buffer and derives an interior
     * capability still cannot confuse the allocator.
     */
    std::vector<uint8_t> allocStartBits_;
    bool isAllocStart(uint32_t base) const;
    void setAllocStart(uint32_t base, bool value);
    /** Allocator-internal allocations (claim records): rejected by
     * checkLive so no caller-supplied capability can free them. */
    std::vector<uint8_t> internalBits_;
    bool isInternal(uint32_t base) const;
    void setInternal(uint32_t base, bool value);
    StatGroup stats_{"allocator"};
};

/** Human-readable free() result name for diagnostics and logs. */
const char *freeResultName(HeapAllocator::FreeResult result);

} // namespace cheriot::alloc

#endif // CHERIOT_ALLOC_HEAP_ALLOCATOR_H
