#include "alloc/heap_allocator.h"

#include "cap/bounds.h"
#include "fault/fault_injector.h"
#include "sim/machine.h"
#include "snapshot/serializer.h"
#include "util/bits.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::alloc
{

using cap::Capability;

const char *
temporalModeName(TemporalMode mode)
{
    switch (mode) {
      case TemporalMode::None: return "baseline";
      case TemporalMode::MetadataOnly: return "metadata";
      case TemporalMode::SoftwareRevocation: return "software";
      case TemporalMode::HardwareRevocation: return "hardware";
    }
    return "?";
}

const char *
freeResultName(HeapAllocator::FreeResult result)
{
    switch (result) {
      case HeapAllocator::FreeResult::Ok: return "ok";
      case HeapAllocator::FreeResult::InvalidCap:
        return "invalid-capability";
      case HeapAllocator::FreeResult::NotAllocated:
        return "not-allocated";
      case HeapAllocator::FreeResult::AlreadyFreed:
        return "already-freed";
    }
    return "?";
}

HeapAllocator::HeapAllocator(rtos::GuestContext &guest, Capability heapCap,
                             Capability bitmapCap,
                             const revoker::RevocationBitmap &bitmap,
                             revoker::Revoker *revoker,
                             AllocatorConfig config)
    : guest_(guest), view_(guest, heapCap), freeList_(view_),
      quarantine_(view_), bitmapCap_(bitmapCap),
      bitmapGranule_(bitmap.granule()),
      heapBase_(static_cast<uint32_t>(heapCap.base())),
      heapEnd_(static_cast<uint32_t>(heapCap.top())), revoker_(revoker),
      config_(config)
{
    if ((config.mode == TemporalMode::SoftwareRevocation ||
         config.mode == TemporalMode::HardwareRevocation) &&
        revoker == nullptr) {
        fatal("allocator: %s mode requires a revoker",
              temporalModeName(config.mode));
    }
    if (config_.quarantineThreshold == 0) {
        // The software sweep stops the world, so batch as much freed
        // memory as possible per pass; the background engine costs
        // almost nothing to kick, so start it early and keep more
        // heap headroom to absorb frees while it runs (§3.3.3).
        const uint32_t heapSize = heapEnd_ - heapBase_;
        config_.quarantineThreshold =
            config_.mode == TemporalMode::HardwareRevocation
                ? heapSize / 2
                : heapSize / 4 * 3;
    }

    allocStartBits_.assign(
        ((heapEnd_ - heapBase_) / bitmapGranule_ + 7) / 8, 0);
    internalBits_.assign(allocStartBits_.size(), 0);

    stats_.registerCounter("mallocs", mallocs);
    stats_.registerCounter("frees", frees);
    stats_.registerCounter("failedMallocs", failedMallocs);
    stats_.registerCounter("rejectedFrees", rejectedFrees);
    stats_.registerCounter("sweeps", sweepsTriggered);
    stats_.registerCounter("released", chunksReleased);
    stats_.registerCounter("quotaDenials", quotaDenials);
    stats_.registerCounter("blockedMallocs", blockedMallocs);
    stats_.registerCounter("backoffWaitCycles", backoffWaitCycles);
    stats_.registerCounter("backoffTimeouts", backoffTimeouts);
    stats_.registerCounter("oomReturns", oomReturns);

    // Establish the initial layout: one big free chunk and a
    // permanently in-use zero-size sentinel at the very top, so
    // coalescing never walks off the heap.
    const uint32_t sentinel = heapEnd_ - kChunkOverhead;
    const uint32_t initialSize = sentinel - heapBase_;
    view_.setHead(heapBase_, initialSize | kPinuse);
    view_.setHead(sentinel, kCinuse | kPinuse);
    view_.setPrevFoot(sentinel, initialSize);
    view_.setHead(sentinel, view_.head(sentinel) & ~kPinuse);
    freeList_.insert(heapBase_, initialSize);
}

uint32_t
HeapAllocator::currentEpoch() const
{
    return revoker_ != nullptr ? revoker_->epoch() : 0;
}

bool
HeapAllocator::isAllocStart(uint32_t base) const
{
    const uint32_t index = (base - heapBase_) / bitmapGranule_;
    return (allocStartBits_[index / 8] >> (index % 8)) & 1;
}

void
HeapAllocator::setAllocStart(uint32_t base, bool value)
{
    const uint32_t index = (base - heapBase_) / bitmapGranule_;
    if (value) {
        allocStartBits_[index / 8] |= 1u << (index % 8);
    } else {
        allocStartBits_[index / 8] &= ~(1u << (index % 8));
    }
}

bool
HeapAllocator::isInternal(uint32_t base) const
{
    const uint32_t index = (base - heapBase_) / bitmapGranule_;
    return (internalBits_[index / 8] >> (index % 8)) & 1;
}

void
HeapAllocator::setInternal(uint32_t base, bool value)
{
    const uint32_t index = (base - heapBase_) / bitmapGranule_;
    if (value) {
        internalBits_[index / 8] |= 1u << (index % 8);
    } else {
        internalBits_[index / 8] &= ~(1u << (index % 8));
    }
}

void
HeapAllocator::paintBits(uint32_t addr, uint32_t bytes, bool set)
{
    if (bytes == 0) {
        return;
    }
    // The bitmap is a memory-mapped array of 32-bit words; the
    // allocator reaches it only through its dedicated capability.
    const uint32_t firstBit = (addr - heapBase_) / bitmapGranule_;
    const uint32_t lastBit = (addr + bytes - 1 - heapBase_) / bitmapGranule_;
    uint32_t bitIndex = firstBit;
    while (bitIndex <= lastBit) {
        const uint32_t wordIndex = bitIndex / 32;
        const uint32_t wordAddr = bitmapCap_.base() + wordIndex * 4;
        const uint32_t lo = bitIndex % 32;
        const uint32_t hi = std::min(lastBit - wordIndex * 32, 31u);
        uint32_t mask = (hi == 31 ? ~uint32_t{0} : ((1u << (hi + 1)) - 1));
        mask &= ~((1u << lo) - 1);
        if (mask == ~uint32_t{0}) {
            // Full word: a single store.
            guest_.storeWord(bitmapCap_, wordAddr, set ? mask : 0);
        } else {
            const uint32_t old = guest_.loadWord(bitmapCap_, wordAddr);
            guest_.storeWord(bitmapCap_, wordAddr,
                             set ? (old | mask) : (old & ~mask));
        }
        bitIndex = (wordIndex + 1) * 32;
    }
    guest_.chargeExecution(4); // Index arithmetic.
}

Capability
HeapAllocator::malloc(uint32_t size)
{
    return mallocCharged(kUnmeteredQuota, size, nullptr);
}

uint32_t
HeapAllocator::oldestEpochAge() const
{
    const uint32_t oldest = quarantine_.oldestEpoch();
    if (oldest == ~uint32_t{0}) {
        return 0;
    }
    const uint32_t now = currentEpoch();
    return now > oldest ? now - oldest : 0;
}

void
HeapAllocator::forEachChunk(
    const std::function<void(uint32_t addr, uint32_t size, bool inUse,
                             bool internal)> &cb)
{
    const uint32_t sentinel = heapEnd_ - kChunkOverhead;
    uint32_t chunk = heapBase_;
    while (chunk < sentinel) {
        const uint32_t size = view_.sizeOf(chunk);
        if (size < kMinChunkSize || chunk + size > sentinel) {
            break; // Corrupt boundary tag: stop, don't loop.
        }
        cb(chunk, size, view_.inUse(chunk),
           isInternal(chunk + kPayloadOffset));
        chunk += size;
    }
}

uint32_t
HeapAllocator::reclaimWithBackoff(uint32_t need, uint32_t alignMask)
{
    if (revoker_ == nullptr) {
        return 0;
    }
    // Cheap first: claim whatever a completed sweep already released.
    drainQuarantine();
    uint32_t chunk = freeList_.takeFit(need, alignMask);
    if (chunk != 0 || quarantine_.empty()) {
        return chunk;
    }

    // Blocking path: wait for the oldest quarantine epoch to become
    // releasable. On timeout or a truly exhausted heap the caller
    // sees a recoverable OutOfMemory — never an abort.
    blockedMallocs++;
    (void)backoffUntil([this, &chunk, need, alignMask] {
        chunk = freeList_.takeFit(need, alignMask);
        return chunk != 0;
    });
    return chunk;
}

bool
HeapAllocator::backoffUntil(const std::function<bool()> &satisfied)
{
    sim::Machine &machine = guest_.machine();
    if (fault::FaultInjector *injector = machine.faultInjector()) {
        injector->mallocBackoffStarted(machine.cycles());
    }
    uint64_t wait = config_.backoffInitialCycles;
    uint32_t staleAttempts = 0;
    while (staleAttempts < config_.backoffMaxAttempts) {
        const uint32_t epochBefore = currentEpoch();
        triggerSweep(/*waitForCompletion=*/false);
        if (backoffWait_) {
            backoffWait_(wait);
        } else {
            machine.idle(wait);
        }
        backoffWaitCycles += wait;
        wait = std::min(wait * 2, config_.backoffCapCycles);
        drainQuarantine();
        if (satisfied()) {
            return true;
        }
        if (quarantine_.empty()) {
            // Everything quarantined came back and the condition
            // still fails: revocation has nothing more to give.
            return false;
        }
        staleAttempts =
            currentEpoch() == epochBefore ? staleAttempts + 1 : 0;
        if (staleAttempts == config_.backoffStallEscalation &&
            revoker_->sweepInProgress()) {
            // A frozen epoch with a sweep in flight suggests a wedged
            // engine: escalate to the synchronous waiter, whose
            // timeout kick is the modelled engine-reset path. On
            // success the epoch moves and the loop resumes making
            // progress; the budget expires (recoverable OutOfMemory)
            // only if even that cannot revive it.
            triggerSweep(/*waitForCompletion=*/true);
            drainQuarantine();
            if (satisfied()) {
                return true;
            }
            if (quarantine_.empty()) {
                return false;
            }
        }
    }
    backoffTimeouts++;
    warn("allocator: blocking malloc gave up after %u stale backoff "
         "attempts (epoch frozen at %u, %llu bytes quarantined)",
         config_.backoffMaxAttempts, currentEpoch(),
         static_cast<unsigned long long>(quarantine_.bytes()));
    return false;
}

bool
HeapAllocator::chargeWithBackoff(QuotaId owner, uint32_t need)
{
    if (quota_.charge(owner, need)) {
        return true;
    }
    if (revoker_ == nullptr) {
        return false;
    }
    // The owner's quota may be pinned by its own frees still sitting
    // in quarantine (charged until the memory really returns): drain
    // and wait for revocation before making the denial final.
    drainQuarantine();
    if (quota_.charge(owner, need)) {
        return true;
    }
    if (quarantine_.empty()) {
        return false;
    }
    blockedMallocs++;
    return backoffUntil(
        [this, owner, need] { return quota_.charge(owner, need); });
}

Capability
HeapAllocator::mallocCharged(QuotaId owner, uint32_t size,
                             AllocResult *result)
{
    AllocResult scratch = AllocResult::Ok;
    AllocResult &out = result != nullptr ? *result : scratch;
    out = AllocResult::Ok;
    mallocs++;
    guest_.chargeExecution(24); // Entry, argument checks, size maths.

    if (size == 0) {
        size = 1;
    }
    const uint32_t heapSize = heapEnd_ - heapBase_;
    if (size > heapSize) {
        failedMallocs++;
        out = AllocResult::SizeTooLarge;
        return Capability();
    }

    // CHERIoT sizing: the payload must be exactly representable, so
    // round with CRRL and align the base with CRAM (§3.2.3).
    const uint32_t rawPayload =
        std::max<uint32_t>(alignUp<uint32_t>(size, 8), 16);
    const uint32_t payload =
        static_cast<uint32_t>(cap::representableLength(rawPayload));
    const uint32_t alignMask = cap::representableAlignmentMask(rawPayload);
    const uint32_t need = payload + kChunkOverhead;

    // Quota admission: the full chunk footprint is charged before any
    // heap work; every failure below rolls the charge back. A charge
    // blocked only by the owner's quarantined frees waits for
    // revocation (same backpressure as heap exhaustion).
    if (!chargeWithBackoff(owner, need)) {
        failedMallocs++;
        quotaDenials++;
        out = AllocResult::QuotaExceeded;
        return Capability();
    }

    uint32_t chunk = freeList_.takeFit(need, alignMask);
    if (chunk == 0) {
        chunk = reclaimWithBackoff(need, alignMask);
    }
    if (chunk == 0) {
        quota_.credit(owner, need);
        failedMallocs++;
        oomReturns++;
        out = AllocResult::OutOfMemory;
        return Capability();
    }

    uint32_t chunkSize = view_.sizeOf(chunk);
    const bool prevInUse = view_.prevInUse(chunk);

    // Leading split to satisfy CHERI base alignment.
    const uint32_t align = ~alignMask + 1;
    uint32_t pad = 0;
    if (align > cap::kCapabilitySize) {
        const uint32_t payloadAddr = chunk + kPayloadOffset;
        pad = alignUp(payloadAddr, align) - payloadAddr;
        while (pad != 0 && pad < kMinChunkSize) {
            pad += align;
        }
    }
    if (pad != 0) {
        view_.setHead(chunk, pad | (prevInUse ? kPinuse : 0));
        view_.setPrevFoot(chunk + pad, pad);
        freeList_.insert(chunk, pad);
        chunk += pad;
        chunkSize -= pad;
        view_.setHead(chunk, chunkSize); // PINUSE clear: pad is free.
    }

    // Trailing split.
    if (chunkSize - need >= kMinChunkSize) {
        const uint32_t remainder = chunk + need;
        const uint32_t remainderSize = chunkSize - need;
        view_.setHead(remainder, remainderSize | kPinuse);
        view_.setPrevFoot(remainder + remainderSize, remainderSize);
        // Next chunk's PINUSE stays clear (remainder is free).
        freeList_.insert(remainder, remainderSize);
        chunkSize = need;
    }

    view_.setHead(chunk, chunkSize | kCinuse |
                             (view_.head(chunk) & kPinuse) |
                             (pad != 0 ? 0 : (prevInUse ? kPinuse : 0)));
    const uint32_t nextChunk = chunk + chunkSize;
    view_.setHead(nextChunk, view_.head(nextChunk) | kPinuse);

    // A remainder too small to split back stays part of the chunk;
    // track it so heal audits can tell held slack from a leak.
    if (chunkSize != need) {
        chunkSlack_[chunk] = chunkSize - need;
        slackBytes_ += chunkSize - need;
    }
    if (owner != kUnmeteredQuota) {
        // Charge the slop too, so the release-time credit (which
        // settles the real chunk size) balances exactly.
        quota_.chargeUnchecked(owner, chunkSize - need);
        chunkOwners_[chunk] = owner;
    }

    // Derive the user capability with exact bounds over the payload
    // (spatial safety: no access can reach the header or a
    // neighbour).
    const uint32_t payloadAddr = chunk + kPayloadOffset;
    Capability user = view_.heapCap().withAddress(payloadAddr);
    user = user.withBoundsExact(payload);
    if (!user.tag()) {
        panic("malloc: bounds [0x%08x, +%u) unexpectedly inexact",
              payloadAddr, payload);
    }
    setAllocStart(payloadAddr, true);
    guest_.chargeExecution(8); // CSetAddr + CSetBoundsExact + bookkeeping.
    return user;
}

Capability
HeapAllocator::calloc(uint32_t count, uint32_t size)
{
    const uint64_t total = static_cast<uint64_t>(count) * size;
    if (total > (uint64_t{1} << 31)) {
        failedMallocs++;
        return Capability();
    }
    const Capability ptr = malloc(static_cast<uint32_t>(total));
    if (ptr.tag()) {
        // Freed memory is already zeroed in the temporal modes, but
        // calloc must guarantee it regardless of the chunk's origin.
        guest_.zero(ptr, ptr.base(), static_cast<uint32_t>(ptr.length()));
    }
    return ptr;
}

Capability
HeapAllocator::realloc(const Capability &ptr, uint32_t size)
{
    if (!ptr.tag()) {
        return malloc(size);
    }
    if (size == 0) {
        (void)free(ptr);
        return Capability();
    }
    const Capability fresh = malloc(size);
    if (!fresh.tag()) {
        return Capability(); // Old allocation stays live.
    }
    const uint32_t copyBytes = static_cast<uint32_t>(
        std::min<uint64_t>(ptr.length(), fresh.length()));
    for (uint32_t off = 0; off + 4 <= copyBytes; off += 4) {
        guest_.storeWord(fresh, fresh.base() + off,
                         guest_.loadWord(ptr, ptr.base() + off));
    }
    guest_.chargeExecution(8);
    if (free(ptr) != FreeResult::Ok) {
        // The caller handed us something that was not a live
        // allocation after all; undo the new allocation.
        (void)free(fresh);
        return Capability();
    }
    return fresh;
}

HeapAllocator::FreeResult
HeapAllocator::checkLive(const Capability &ptr, uint32_t *chunkOut)
{
    if (!ptr.tag() || ptr.isSealed()) {
        return FreeResult::InvalidCap;
    }
    const uint32_t base = ptr.base();
    if (base < heapBase_ + kPayloadOffset || base >= heapEnd_ ||
        base % 8 != 0) {
        return FreeResult::InvalidCap;
    }
    const uint32_t chunk = base - kPayloadOffset;
    const uint32_t head = view_.head(chunk);
    const uint32_t size = head & kSizeMask;
    if (!(head & kCinuse) || size < kMinChunkSize ||
        chunk + size > heapEnd_) {
        return FreeResult::NotAllocated;
    }
    // The authoritative liveness record: an allocation must have
    // begun at exactly this base (allocator-private bookkeeping, so
    // fake headers inside user buffers cannot forge it).
    guest_.chargeExecution(3);
    if (!isAllocStart(base) || isInternal(base)) {
        return FreeResult::NotAllocated;
    }
    if (config_.mode != TemporalMode::None) {
        // The revocation bitmap doubles as the freed/partial-object
        // detector (§7.2.2 footnote): painted bits mean this memory
        // is already on its way through quarantine.
        const uint32_t probe = guest_.loadWord(
            bitmapCap_,
            bitmapCap_.base() +
                ((base - heapBase_) / bitmapGranule_ / 32) * 4);
        if (probe & (1u << ((base - heapBase_) / bitmapGranule_ % 32))) {
            return FreeResult::AlreadyFreed;
        }
    }
    *chunkOut = chunk;
    return FreeResult::Ok;
}

uint32_t
HeapAllocator::findClaimRecord(uint32_t chunk, uint32_t *prev)
{
    *prev = 0;
    uint32_t record = claimsHead_;
    uint32_t guard = 0;
    while (record != 0) {
        if (++guard > (heapEnd_ - heapBase_) / 16) {
            panic("allocator: claim list cycle (corruption)");
        }
        guest_.chargeExecution(3);
        if (guest_.loadWord(view_.heapCap(), record) == chunk) {
            return record;
        }
        *prev = record;
        const Capability next =
            guest_.loadCap(view_.heapCap(), record + 8);
        record = next.tag() ? next.address() : 0;
    }
    return 0;
}

void
HeapAllocator::removeClaimRecord(uint32_t record, uint32_t prev)
{
    const Capability next = guest_.loadCap(view_.heapCap(), record + 8);
    if (prev == 0) {
        claimsHead_ = next.tag() ? next.address() : 0;
    } else {
        guest_.storeCap(view_.heapCap(), prev + 8, next);
    }
    // Release the record box itself: lift the internal protection,
    // then free (records carry no claims, so the recursion
    // terminates immediately).
    setInternal(record, false);
    const Capability box = view_.heapCap()
                               .withAddress(record)
                               .withBoundsExact(16);
    if (free(box) != FreeResult::Ok) {
        panic("allocator: claim-record release failed");
    }
}

HeapAllocator::FreeResult
HeapAllocator::claim(const Capability &ptr)
{
    guest_.chargeExecution(16);
    uint32_t chunk = 0;
    const FreeResult live = checkLive(ptr, &chunk);
    if (live != FreeResult::Ok) {
        return live;
    }
    uint32_t prev = 0;
    const uint32_t record = findClaimRecord(chunk, &prev);
    if (record != 0) {
        const uint32_t count =
            guest_.loadWord(view_.heapCap(), record + 4);
        guest_.storeWord(view_.heapCap(), record + 4, count + 1);
        return FreeResult::Ok;
    }
    const Capability box = malloc(16);
    if (!box.tag()) {
        return FreeResult::InvalidCap; // Allocator exhausted.
    }
    setInternal(box.base(), true);
    guest_.storeWord(box, box.base(), chunk);
    guest_.storeWord(box, box.base() + 4, 1);
    guest_.storeCap(box, box.base() + 8,
                    claimsHead_ == 0
                        ? Capability()
                        : view_.heapCap().withAddress(claimsHead_));
    claimsHead_ = box.base();
    return FreeResult::Ok;
}

uint32_t
HeapAllocator::claimCount(const Capability &ptr)
{
    uint32_t chunk = 0;
    if (checkLive(ptr, &chunk) != FreeResult::Ok) {
        return 0;
    }
    uint32_t prev = 0;
    const uint32_t record = findClaimRecord(chunk, &prev);
    return record == 0 ? 0
                       : guest_.loadWord(view_.heapCap(), record + 4);
}

HeapAllocator::FreeResult
HeapAllocator::free(const Capability &ptr)
{
    frees++;
    guest_.chargeExecution(20); // Entry and pointer checks.

    uint32_t chunk = 0;
    const FreeResult live = checkLive(ptr, &chunk);
    if (live != FreeResult::Ok) {
        rejectedFrees++;
        return live;
    }
    const uint32_t base = chunk + kPayloadOffset;
    const uint32_t size = view_.sizeOf(chunk);

    // Claims (heap_claim): each free releases one claim; the memory
    // is only really freed when the last claim drops.
    {
        uint32_t prev = 0;
        const uint32_t record = findClaimRecord(chunk, &prev);
        if (record != 0) {
            const uint32_t count =
                guest_.loadWord(view_.heapCap(), record + 4);
            if (count > 0) {
                guest_.storeWord(view_.heapCap(), record + 4, count - 1);
                if (count == 1) {
                    removeClaimRecord(record, prev);
                }
                return FreeResult::Ok;
            }
        }
    }

    setAllocStart(base, false);

    const uint32_t payloadBytes = size - kChunkOverhead;

    if (config_.mode == TemporalMode::None) {
        // Spatial safety only: straight back to the free lists.
        releaseChunk(chunk, size, /*clearBits=*/false);
        return FreeResult::Ok;
    }

    // Paint the revocation bits, then zero the freed memory (§3.3.1);
    // from here on no capability with a base inside the payload can
    // survive a load.
    paintBits(base, payloadBytes, /*set=*/true);
    guest_.zero(view_.heapCap(), base, payloadBytes);

    if (config_.mode == TemporalMode::MetadataOnly) {
        // Bitmap maintained but no sweeps: reuse immediately (the
        // Table 4 "Metadata" configuration isolates bitmap cost).
        releaseChunk(chunk, size, /*clearBits=*/true);
        return FreeResult::Ok;
    }

    quarantine_.add(chunk, size, currentEpoch());

    if (quarantine_.bytes() >= config_.quarantineThreshold) {
        triggerSweep(/*waitForCompletion=*/false);
        drainQuarantine();
    }
    return FreeResult::Ok;
}

void
HeapAllocator::releaseChunk(uint32_t chunk, uint32_t size, bool clearBits)
{
    chunksReleased++;
    // Settle the quota: only now — with the memory really back on the
    // free lists, after any quarantine hold — does the owner stop
    // paying for it.
    const auto owner = chunkOwners_.find(chunk);
    if (owner != chunkOwners_.end()) {
        quota_.credit(owner->second, size);
        chunkOwners_.erase(owner);
    }
    const auto slack = chunkSlack_.find(chunk);
    if (slack != chunkSlack_.end()) {
        slackBytes_ -= slack->second;
        chunkSlack_.erase(slack);
    }
    if (clearBits) {
        paintBits(chunk + kPayloadOffset, size - kChunkOverhead, false);
    }

    // Coalesce with a free successor.
    const uint32_t sentinel = heapEnd_ - kChunkOverhead;
    uint32_t next = chunk + size;
    if (next < sentinel && !view_.inUse(next)) {
        const uint32_t nextSize = view_.sizeOf(next);
        freeList_.remove(next, nextSize);
        size += nextSize;
    }
    // Coalesce with a free predecessor.
    bool prevInUse = view_.prevInUse(chunk);
    if (!prevInUse) {
        const uint32_t prevSize = view_.prevFoot(chunk);
        const uint32_t prev = chunk - prevSize;
        freeList_.remove(prev, prevSize);
        prevInUse = view_.prevInUse(prev);
        chunk = prev;
        size += prevSize;
    }

    view_.setHead(chunk, size | (prevInUse ? kPinuse : 0));
    const uint32_t after = chunk + size;
    view_.setPrevFoot(after, size);
    view_.setHead(after, view_.head(after) & ~kPinuse);
    freeList_.insert(chunk, size);
}

void
HeapAllocator::drainQuarantine()
{
    quarantine_.drain(currentEpoch(), [this](uint32_t chunk,
                                             uint32_t size) {
        releaseChunk(chunk, size, /*clearBits=*/true);
    });
}

void
HeapAllocator::triggerSweep(bool waitForCompletion)
{
    if (revoker_ == nullptr) {
        return;
    }
    sweepsTriggered++;
    revoker_->requestSweep();
    if (waitForCompletion ||
        config_.mode == TemporalMode::SoftwareRevocation) {
        revoker_->waitForCompletion();
    }
}

void
HeapAllocator::synchronise()
{
    if (revoker_ == nullptr || quarantine_.empty()) {
        return;
    }
    triggerSweep(true);
    drainQuarantine();
}

void
HeapAllocator::serialize(snapshot::Writer &w) const
{
    freeList_.serialize(w);
    quarantine_.serialize(w);
    w.u32(claimsHead_);
    w.bytes(allocStartBits_.data(), allocStartBits_.size());
    w.bytes(internalBits_.data(), internalBits_.size());
    w.counter(mallocs);
    w.counter(frees);
    w.counter(failedMallocs);
    w.counter(rejectedFrees);
    w.counter(sweepsTriggered);
    w.counter(chunksReleased);
    quota_.serialize(w);
    w.u32(static_cast<uint32_t>(chunkOwners_.size()));
    for (const auto &[chunk, owner] : chunkOwners_) {
        w.u32(chunk);
        w.u32(owner);
    }
    w.u32(static_cast<uint32_t>(chunkSlack_.size()));
    for (const auto &[chunk, bytes] : chunkSlack_) {
        w.u32(chunk);
        w.u32(bytes);
    }
    w.u64(slackBytes_);
    w.counter(quotaDenials);
    w.counter(blockedMallocs);
    w.counter(backoffWaitCycles);
    w.counter(backoffTimeouts);
    w.counter(oomReturns);
}

bool
HeapAllocator::deserialize(snapshot::Reader &r)
{
    if (!freeList_.deserialize(r) || !quarantine_.deserialize(r)) {
        return false;
    }
    claimsHead_ = r.u32();
    r.bytes(allocStartBits_.data(), allocStartBits_.size());
    r.bytes(internalBits_.data(), internalBits_.size());
    r.counter(mallocs);
    r.counter(frees);
    r.counter(failedMallocs);
    r.counter(rejectedFrees);
    r.counter(sweepsTriggered);
    r.counter(chunksReleased);
    if (!quota_.deserialize(r)) {
        return false;
    }
    chunkOwners_.clear();
    const uint32_t owners = r.u32();
    for (uint32_t i = 0; i < owners; ++i) {
        const uint32_t chunk = r.u32();
        chunkOwners_[chunk] = r.u32();
    }
    chunkSlack_.clear();
    const uint32_t slacked = r.u32();
    for (uint32_t i = 0; i < slacked; ++i) {
        const uint32_t chunk = r.u32();
        chunkSlack_[chunk] = r.u32();
    }
    slackBytes_ = r.u64();
    r.counter(quotaDenials);
    r.counter(blockedMallocs);
    r.counter(backoffWaitCycles);
    r.counter(backoffTimeouts);
    r.counter(oomReturns);
    return r.ok();
}

} // namespace cheriot::alloc
