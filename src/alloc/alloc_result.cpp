#include "alloc/alloc_result.h"

namespace cheriot::alloc
{

const char *
allocResultName(AllocResult result)
{
    switch (result) {
      case AllocResult::Ok: return "ok";
      case AllocResult::SizeTooLarge: return "size-too-large";
      case AllocResult::QuotaExceeded: return "quota-exceeded";
      case AllocResult::OutOfMemory: return "out-of-memory";
      case AllocResult::Throttled: return "throttled";
      case AllocResult::InvalidCapability: return "invalid-capability";
    }
    return "?";
}

} // namespace cheriot::alloc
