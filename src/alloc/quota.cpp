#include "alloc/quota.h"

#include "snapshot/serializer.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::alloc
{

QuotaId
QuotaLedger::create(uint64_t limitBytes)
{
    Entry entry;
    entry.limit = limitBytes;
    entries_.push_back(entry);
    return static_cast<QuotaId>(entries_.size());
}

bool
QuotaLedger::charge(QuotaId id, uint64_t bytes)
{
    if (id == kUnmeteredQuota) {
        return true;
    }
    if (id > entries_.size()) {
        return false;
    }
    Entry &entry = entries_[id - 1];
    if (entry.used + bytes > entry.limit) {
        entry.denials++;
        return false;
    }
    entry.used += bytes;
    entry.peak = std::max(entry.peak, entry.used);
    return true;
}

void
QuotaLedger::chargeUnchecked(QuotaId id, uint64_t bytes)
{
    if (id == kUnmeteredQuota || id > entries_.size()) {
        return;
    }
    Entry &entry = entries_[id - 1];
    entry.used += bytes;
    entry.peak = std::max(entry.peak, entry.used);
}

void
QuotaLedger::credit(QuotaId id, uint64_t bytes)
{
    if (id == kUnmeteredQuota || id > entries_.size()) {
        return;
    }
    Entry &entry = entries_[id - 1];
    if (entry.used < bytes) {
        panic("quota: credit of %llu bytes exceeds the %llu charged "
              "to entry %u (accounting corruption)",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(entry.used), id);
    }
    entry.used -= bytes;
}

const QuotaLedger::Entry *
QuotaLedger::entry(QuotaId id) const
{
    if (id == kUnmeteredQuota || id > entries_.size()) {
        return nullptr;
    }
    return &entries_[id - 1];
}

uint64_t
QuotaLedger::totalUsed() const
{
    uint64_t total = 0;
    for (const Entry &entry : entries_) {
        total += entry.used;
    }
    return total;
}

uint64_t
QuotaLedger::totalDenials() const
{
    uint64_t total = 0;
    for (const Entry &entry : entries_) {
        total += entry.denials;
    }
    return total;
}

void
QuotaLedger::serialize(snapshot::Writer &w) const
{
    w.u32(static_cast<uint32_t>(entries_.size()));
    for (const Entry &entry : entries_) {
        w.u64(entry.limit);
        w.u64(entry.used);
        w.u64(entry.peak);
        w.u32(entry.denials);
    }
}

bool
QuotaLedger::deserialize(snapshot::Reader &r)
{
    entries_.assign(r.u32(), Entry{});
    for (Entry &entry : entries_) {
        entry.limit = r.u64();
        entry.used = r.u64();
        entry.peak = r.u64();
        entry.denials = r.u32();
    }
    return r.ok();
}

} // namespace cheriot::alloc
