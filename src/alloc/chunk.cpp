// ChunkView is header-only; this file anchors the translation unit.
#include "alloc/chunk.h"
