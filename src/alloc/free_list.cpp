#include "alloc/free_list.h"

#include "snapshot/serializer.h"
#include "util/bits.h"
#include "util/log.h"

namespace cheriot::alloc
{

uint32_t
FreeList::alignPad(uint32_t chunk, uint32_t alignMask)
{
    const uint32_t align = ~alignMask + 1; // Low set bit of the mask.
    if (align <= cap::kCapabilitySize) {
        return 0; // Payloads are always 8-aligned.
    }
    const uint32_t payload = chunk + kPayloadOffset;
    uint32_t pad = alignUp(payload, align) - payload;
    // A nonzero pad must itself form a legal free chunk.
    while (pad != 0 && pad < kMinChunkSize) {
        pad += align;
    }
    return pad;
}

bool
FreeList::fits(uint32_t chunk, uint32_t chunkSize, uint32_t need,
               uint32_t alignMask) const
{
    const uint32_t pad = alignPad(chunk, alignMask);
    return chunkSize >= pad && chunkSize - pad >= need;
}

void
FreeList::insert(uint32_t chunk, uint32_t size)
{
    // Bin-head access is a load+store of a compartment global.
    view_->guest().chargeExecution(3);
    freeBytes_ += size;
    chunks_++;

    if (isSmall(size)) {
        uint32_t &head = smallBins_[binIndex(size)];
        view_->setFd(chunk, head);
        view_->setBk(chunk, 0);
        if (head != 0) {
            view_->setBk(head, chunk);
        }
        head = chunk;
        return;
    }

    // Sorted insertion into the large list (ascending size).
    uint32_t prev = 0;
    uint32_t cursor = largeHead_;
    while (cursor != 0 && view_->sizeOf(cursor) < size) {
        prev = cursor;
        cursor = view_->fd(cursor);
    }
    view_->setFd(chunk, cursor);
    view_->setBk(chunk, prev);
    if (cursor != 0) {
        view_->setBk(cursor, chunk);
    }
    if (prev != 0) {
        view_->setFd(prev, chunk);
    } else {
        largeHead_ = chunk;
    }
}

void
FreeList::unlink(uint32_t chunk, uint32_t *head)
{
    const uint32_t fd = view_->fd(chunk);
    const uint32_t bk = view_->bk(chunk);
    if (bk != 0) {
        view_->setFd(bk, fd);
    } else {
        *head = fd;
    }
    if (fd != 0) {
        view_->setBk(fd, bk);
    }
}

void
FreeList::remove(uint32_t chunk, uint32_t size)
{
    view_->guest().chargeExecution(3);
    freeBytes_ -= size;
    chunks_--;
    uint32_t *head = isSmall(size) ? &smallBins_[binIndex(size)]
                                   : &largeHead_;
    unlink(chunk, head);
}

uint32_t
FreeList::takeFit(uint32_t size, uint32_t alignMask)
{
    view_->guest().chargeExecution(6); // Bin index + scan setup.

    if (isSmall(size)) {
        // Exact bin first, then progressively larger bins.
        for (uint32_t bin = binIndex(size); bin < kSmallBinCount; ++bin) {
            view_->guest().chargeExecution(1);
            uint32_t chunk = smallBins_[bin];
            while (chunk != 0) {
                const uint32_t chunkSize = view_->sizeOf(chunk);
                if (fits(chunk, chunkSize, size, alignMask)) {
                    remove(chunk, chunkSize);
                    return chunk;
                }
                chunk = view_->fd(chunk);
            }
        }
    }

    // Large list is sorted, so the first fit is the best fit.
    uint32_t chunk = largeHead_;
    while (chunk != 0) {
        const uint32_t chunkSize = view_->sizeOf(chunk);
        if (fits(chunk, chunkSize, size, alignMask)) {
            remove(chunk, chunkSize);
            return chunk;
        }
        chunk = view_->fd(chunk);
    }
    return 0;
}

void
FreeList::serialize(snapshot::Writer &w) const
{
    for (uint32_t head : smallBins_) {
        w.u32(head);
    }
    w.u32(largeHead_);
    w.u64(freeBytes_);
    w.u32(chunks_);
}

bool
FreeList::deserialize(snapshot::Reader &r)
{
    for (uint32_t &head : smallBins_) {
        head = r.u32();
    }
    largeHead_ = r.u32();
    freeBytes_ = r.u64();
    chunks_ = r.u32();
    return r.ok();
}

} // namespace cheriot::alloc
