/**
 * @file
 * First-class allocation outcomes.
 *
 * The CHERIoT RTOS treats heap exhaustion as a *recoverable* error,
 * not a fatal one: a malloc that cannot be satisfied after revocation
 * has had a bounded chance to release quarantine returns OutOfMemory
 * to its caller, which is expected to shed load or retry later. Quota
 * denial is distinct from exhaustion — the heap may be nearly empty
 * and the caller's allocator capability still spent — so callers (and
 * the watchdog) can tell a noisy neighbour from a full heap.
 */

#ifndef CHERIOT_ALLOC_ALLOC_RESULT_H
#define CHERIOT_ALLOC_ALLOC_RESULT_H

#include <cstdint>

namespace cheriot::alloc
{

/** Why an allocation succeeded or failed (CallResult-style codes). */
enum class AllocResult : uint8_t
{
    Ok = 0,
    /** Request exceeds what the heap could ever satisfy. */
    SizeTooLarge,
    /** The caller's allocator capability has no quota left. */
    QuotaExceeded,
    /** Heap exhausted even after bounded revocation backoff. */
    OutOfMemory,
    /** The caller's compartment is watchdog-quarantined. */
    Throttled,
    /** The presented allocator capability failed to unseal. */
    InvalidCapability,
};

/** Human-readable result name for diagnostics and logs. */
const char *allocResultName(AllocResult result);

} // namespace cheriot::alloc

#endif // CHERIOT_ALLOC_ALLOC_RESULT_H
