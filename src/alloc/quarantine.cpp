#include "alloc/quarantine.h"

#include "snapshot/serializer.h"
#include "util/log.h"

namespace cheriot::alloc
{

Quarantine::List *
Quarantine::listFor(uint32_t epoch)
{
    for (auto &list : lists_) {
        if (list.active && list.epoch == epoch) {
            return &list;
        }
    }
    for (auto &list : lists_) {
        if (!list.active) {
            list.active = true;
            list.epoch = epoch;
            list.head = 0;
            list.bytes = 0;
            list.chunks = 0;
            return &list;
        }
    }
    // All three lists busy with older epochs: merge the two oldest,
    // conservatively stamping the merged list with the younger epoch
    // (it can only delay reuse, never allow it too early).
    List *oldest = &lists_[0];
    List *second = nullptr;
    for (auto &list : lists_) {
        if (list.epoch < oldest->epoch) {
            oldest = &list;
        }
    }
    for (auto &list : lists_) {
        if (&list != oldest &&
            (second == nullptr || list.epoch < second->epoch)) {
            second = &list;
        }
    }
    // Append oldest's chain onto second's.
    if (oldest->head != 0) {
        uint32_t tail = oldest->head;
        while (view_->fd(tail) != 0) {
            tail = view_->fd(tail);
        }
        view_->setFd(tail, second->head);
        second->head = oldest->head;
    }
    second->bytes += oldest->bytes;
    second->chunks += oldest->chunks;
    oldest->active = true;
    oldest->epoch = epoch;
    oldest->head = 0;
    oldest->bytes = 0;
    oldest->chunks = 0;
    return oldest;
}

void
Quarantine::add(uint32_t chunk, uint32_t size, uint32_t epoch)
{
    List *list = listFor(epoch);
    view_->setFd(chunk, list->head);
    list->head = chunk;
    list->bytes += size;
    list->chunks++;
    totalBytes_ += size;
    totalChunks_++;
    view_->guest().chargeExecution(4);
}

void
Quarantine::drain(uint32_t currentEpoch,
                  const std::function<void(uint32_t, uint32_t)> &release)
{
    for (auto &list : lists_) {
        if (!list.active ||
            !revoker::Revoker::safeToReuse(list.epoch, currentEpoch)) {
            continue;
        }
        uint32_t chunk = list.head;
        while (chunk != 0) {
            const uint32_t next = view_->fd(chunk);
            const uint32_t size = view_->sizeOf(chunk);
            release(chunk, size);
            chunk = next;
        }
        totalBytes_ -= list.bytes;
        totalChunks_ -= list.chunks;
        list = List{};
    }
}

uint32_t
Quarantine::oldestEpoch() const
{
    uint32_t oldest = ~uint32_t{0};
    for (const auto &list : lists_) {
        if (list.active && list.epoch < oldest) {
            oldest = list.epoch;
        }
    }
    return oldest;
}

void
Quarantine::serialize(snapshot::Writer &w) const
{
    for (const List &list : lists_) {
        w.b(list.active);
        w.u32(list.epoch);
        w.u32(list.head);
        w.u64(list.bytes);
        w.u32(list.chunks);
    }
    w.u64(totalBytes_);
    w.u32(totalChunks_);
}

bool
Quarantine::deserialize(snapshot::Reader &r)
{
    for (List &list : lists_) {
        list.active = r.b();
        list.epoch = r.u32();
        list.head = r.u32();
        list.bytes = r.u64();
        list.chunks = r.u32();
    }
    totalBytes_ = r.u64();
    totalChunks_ = r.u32();
    return r.ok();
}

} // namespace cheriot::alloc
