/**
 * @file
 * Per-compartment heap quota ledger (the accounting half of CHERIoT's
 * allocator capabilities).
 *
 * Every allocator capability minted by the kernel names one ledger
 * entry. malloc charges the *chunk* size (payload plus boundary-tag
 * overhead, after CHERI representability rounding) against the entry;
 * the charge is released only when the memory actually returns to the
 * free lists. Under the revocation modes that is when the chunk
 * leaves quarantine — so a compartment that floods the quarantine
 * keeps paying for those bytes until a sweep completes, which is the
 * backpressure that stops a free/reallocate storm from starving its
 * neighbours while hiding behind "but I freed it".
 *
 * Entry 0 (kUnmeteredQuota) is the kernel's own unmetered account:
 * charges against it always succeed and are not tracked.
 */

#ifndef CHERIOT_ALLOC_QUOTA_H
#define CHERIOT_ALLOC_QUOTA_H

#include <cstdint>
#include <vector>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::alloc
{

/** Ledger entry handle carried inside a sealed allocator capability. */
using QuotaId = uint32_t;

/** The kernel's unmetered account (no limit, no tracking). */
constexpr QuotaId kUnmeteredQuota = 0;

class QuotaLedger
{
  public:
    struct Entry
    {
        uint64_t limit = 0; ///< Byte ceiling.
        uint64_t used = 0;  ///< Bytes currently charged.
        uint64_t peak = 0;  ///< High-water mark of used.
        uint32_t denials = 0; ///< Charges refused for this entry.
    };

    /** Mint a new entry with a @p limitBytes ceiling; returns its id. */
    QuotaId create(uint64_t limitBytes);

    /**
     * Charge @p bytes against @p id. Returns false (and counts a
     * denial) if the charge would exceed the limit; the ledger is
     * unchanged in that case. kUnmeteredQuota always succeeds.
     */
    bool charge(QuotaId id, uint64_t bytes);

    /**
     * Charge without admission control: used for the sub-minimum-
     * chunk slop the allocator cannot split off, so the eventual
     * credit (which is based on the real chunk size) balances.
     */
    void chargeUnchecked(QuotaId id, uint64_t bytes);

    /** Release @p bytes previously charged to @p id. */
    void credit(QuotaId id, uint64_t bytes);

    /** Entry for @p id, or null for kUnmeteredQuota / unknown ids. */
    const Entry *entry(QuotaId id) const;

    /** Number of minted entries (excluding the unmetered account). */
    uint32_t count() const
    {
        return static_cast<uint32_t>(entries_.size());
    }

    /** Bytes currently charged across every metered entry. */
    uint64_t totalUsed() const;

    /** Charges refused across every metered entry. */
    uint64_t totalDenials() const;

    /** @name Snapshot state @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

  private:
    /** Entry i backs QuotaId i+1 (0 is the unmetered account). */
    std::vector<Entry> entries_;
};

} // namespace cheriot::alloc

#endif // CHERIOT_ALLOC_QUOTA_H
