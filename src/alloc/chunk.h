/**
 * @file
 * dlmalloc-style chunk layout with boundary tags (paper §5.1).
 *
 * Boundary tagging with in-band metadata is preferred on embedded
 * devices over size-class or buddy allocators for its low memory
 * overhead. A chunk at address A (8-byte aligned) looks like:
 *
 *   A+0  prevFoot  size of the previous chunk — valid only when the
 *                  previous chunk is free (its boundary tag)
 *   A+4  head      chunkSize | PINUSE | CINUSE
 *   A+8  payload   (user memory; for free chunks, the fd/bk link
 *                  capabilities; for quarantined chunks, the fd link)
 *
 * chunkSize covers the 8-byte header plus the payload and is a
 * multiple of 8. The minimum chunk is 8 + 16 bytes so a free chunk
 * can hold its two link capabilities. Link capabilities address chunk
 * *headers*, which are never painted in the revocation bitmap, so
 * allocator-internal links always survive the load filter while user
 * pointers into freed payloads do not.
 *
 * All metadata traffic goes through the (charged, checked)
 * GuestContext, so allocator costs are part of every benchmark.
 */

#ifndef CHERIOT_ALLOC_CHUNK_H
#define CHERIOT_ALLOC_CHUNK_H

#include "cap/capability.h"
#include "rtos/guest_context.h"

#include <cstdint>

namespace cheriot::alloc
{

/** Chunk header flags (low bits of the head word). */
constexpr uint32_t kPinuse = 0x1; ///< Previous chunk is in use.
constexpr uint32_t kCinuse = 0x2; ///< This chunk is in use.
constexpr uint32_t kSizeMask = ~uint32_t{0x7};

/** Fixed overhead per chunk. */
constexpr uint32_t kChunkOverhead = 8;

/** Smallest legal chunk (header + fd/bk capabilities). */
constexpr uint32_t kMinChunkSize = 24;

/** Payload offset from the chunk address. */
constexpr uint32_t kPayloadOffset = 8;

/**
 * Accessor for chunk metadata in simulated heap memory.
 *
 * Holds the allocator compartment's heap capability; every header
 * read/write is an authorised, cycle-charged access.
 */
class ChunkView
{
  public:
    ChunkView(rtos::GuestContext &guest, cap::Capability heapCap)
        : guest_(&guest), heapCap_(heapCap)
    {}

    const cap::Capability &heapCap() const { return heapCap_; }

    /** @name Header access @{ */
    uint32_t head(uint32_t chunk) const
    {
        return guest_->loadWord(heapCap_, chunk + 4);
    }
    void setHead(uint32_t chunk, uint32_t value)
    {
        guest_->storeWord(heapCap_, chunk + 4, value);
    }
    uint32_t prevFoot(uint32_t chunk) const
    {
        return guest_->loadWord(heapCap_, chunk);
    }
    void setPrevFoot(uint32_t chunk, uint32_t value)
    {
        guest_->storeWord(heapCap_, chunk, value);
    }
    /** @} */

    /** @name Decoded fields @{ */
    uint32_t sizeOf(uint32_t chunk) const { return head(chunk) & kSizeMask; }
    bool inUse(uint32_t chunk) const { return head(chunk) & kCinuse; }
    bool prevInUse(uint32_t chunk) const { return head(chunk) & kPinuse; }
    uint32_t next(uint32_t chunk) const { return chunk + sizeOf(chunk); }
    uint32_t payload(uint32_t chunk) const { return chunk + kPayloadOffset; }
    /** @} */

    /** Mark @p chunk free: clear CINUSE, write the boundary tag into
     * the next chunk's prevFoot, and clear the next chunk's PINUSE. */
    void markFree(uint32_t chunk)
    {
        const uint32_t size = sizeOf(chunk);
        setHead(chunk, head(chunk) & ~kCinuse);
        const uint32_t nextChunk = chunk + size;
        setPrevFoot(nextChunk, size);
        setHead(nextChunk, head(nextChunk) & ~kPinuse);
    }

    /** Mark @p chunk in use and set the next chunk's PINUSE. */
    void markInUse(uint32_t chunk)
    {
        setHead(chunk, head(chunk) | kCinuse);
        const uint32_t nextChunk = next(chunk);
        setHead(nextChunk, head(nextChunk) | kPinuse);
    }

    /** @name Free-list links, stored as real capabilities @{ */
    cap::Capability linkCapTo(uint32_t chunk) const
    {
        // Links address chunk headers (see file comment).
        return heapCap_.withAddress(chunk);
    }
    uint32_t fd(uint32_t chunk) const
    {
        const cap::Capability link =
            guest_->loadCap(heapCap_, chunk + kPayloadOffset);
        return link.tag() ? link.address() : 0;
    }
    void setFd(uint32_t chunk, uint32_t target)
    {
        guest_->storeCap(heapCap_, chunk + kPayloadOffset,
                         target == 0 ? cap::Capability()
                                     : linkCapTo(target));
    }
    uint32_t bk(uint32_t chunk) const
    {
        const cap::Capability link =
            guest_->loadCap(heapCap_, chunk + kPayloadOffset + 8);
        return link.tag() ? link.address() : 0;
    }
    void setBk(uint32_t chunk, uint32_t target)
    {
        guest_->storeCap(heapCap_, chunk + kPayloadOffset + 8,
                         target == 0 ? cap::Capability()
                                     : linkCapTo(target));
    }
    /** @} */

    rtos::GuestContext &guest() { return *guest_; }

  private:
    rtos::GuestContext *guest_;
    cap::Capability heapCap_;
};

/** Chunk size needed for a payload of @p payloadBytes. */
constexpr uint32_t
chunkSizeForPayload(uint32_t payloadBytes)
{
    const uint32_t size = kChunkOverhead +
                          ((payloadBytes + 7) & ~uint32_t{7});
    return size < kMinChunkSize ? kMinChunkSize : size;
}

} // namespace cheriot::alloc

#endif // CHERIOT_ALLOC_CHUNK_H
