#include "sim/core_config.h"

namespace cheriot::sim
{

CoreConfig
CoreConfig::flute()
{
    CoreConfig c;
    c.kind = CoreKind::Flute5;
    c.name = "flute";
    c.bus = mem::BusWidth::Wide65;
    // Five stages with full bypassing: loads occupy one cycle but a
    // dependent instruction in the shadow stalls one cycle. The
    // revocation lookup overlaps MEM→WB, so the filter is free.
    c.loadBaseCycles = 1;
    c.storeBaseCycles = 1;
    c.loadToUsePenalty = 1;
    c.capLoadFilterPenalty = 0;
    // Branches resolve in EXE: two dead fetch slots when taken.
    c.takenBranchPenalty = 2;
    c.jumpPenalty = 2;
    c.mulCycles = 2;
    c.divCycles = 34;
    return c;
}

CoreConfig
CoreConfig::ibex()
{
    CoreConfig c;
    c.kind = CoreKind::Ibex;
    c.name = "ibex";
    c.bus = mem::BusWidth::Narrow33;
    // Ibex executes loads in two cycles and stores in two; there is
    // no load shadow (the pipeline stalls inside the load itself).
    // The narrow bus adds a beat per capability. The area-optimised
    // core reuses the load-capability logic rather than dedicating a
    // revocation read port (§7.2.2), so the load filter's lookup
    // serialises behind the data beats: two extra cycles on every
    // capability load (visible in Table 3's 21.28% overhead).
    c.loadBaseCycles = 2;
    c.storeBaseCycles = 2;
    c.loadToUsePenalty = 0;
    c.capLoadFilterPenalty = 2;
    c.takenBranchPenalty = 2;
    c.jumpPenalty = 1;
    c.mulCycles = 3;
    c.divCycles = 37;
    return c;
}

} // namespace cheriot::sim
