/**
 * @file
 * Core configurations for the two implementations evaluated in the
 * paper (§4): a Flute-like five-stage core with a 65-bit memory bus,
 * and an area-optimised Ibex-like core with a 33-bit bus.
 *
 * The timing parameters capture the microarchitectural properties the
 * paper's evaluation depends on:
 *  - On Flute the load filter's revocation lookup hides entirely in
 *    the MEM→WB stages, so it costs nothing; on Ibex's short pipeline
 *    it adds a cycle to every capability load (Table 3).
 *  - On Ibex a capability occupies two bus beats, so capability
 *    loads/stores and memory zeroing are proportionately slower
 *    (§7.2.2).
 */

#ifndef CHERIOT_SIM_CORE_CONFIG_H
#define CHERIOT_SIM_CORE_CONFIG_H

#include "mem/bus.h"

#include <cstdint>
#include <string>

namespace cheriot::sim
{

enum class CoreKind : uint8_t
{
    Flute5, ///< 5-stage in-order prototype core.
    Ibex,   ///< 2/3-stage area-optimised production core.
};

struct CoreConfig
{
    CoreKind kind = CoreKind::Ibex;
    std::string name = "ibex";

    /** @name Feature knobs (benchmark configurations) @{ */
    bool cheriEnabled = true;      ///< False: plain RV32E baseline.
    bool loadFilterEnabled = true; ///< Revocation lookup on cap loads.
    bool hwmEnabled = true;        ///< Stack high-water-mark CSRs.
    /** @} */

    mem::BusWidth bus = mem::BusWidth::Narrow33;

    /** @name Timing parameters (cycles) @{ */
    unsigned loadBaseCycles = 2;      ///< Word load occupancy.
    unsigned storeBaseCycles = 2;     ///< Word store occupancy.
    unsigned loadToUsePenalty = 0;    ///< Consumer-in-shadow stall.
    unsigned capLoadFilterPenalty = 1;///< Extra cycles w/ load filter.
    unsigned takenBranchPenalty = 2;  ///< On top of the base cycle.
    unsigned jumpPenalty = 1;         ///< On top of the base cycle.
    unsigned mulCycles = 3;
    unsigned divCycles = 37;
    /** @} */

    /** The five-stage Flute-like prototype. */
    static CoreConfig flute();

    /** The area-optimised Ibex-like production core. */
    static CoreConfig ibex();

    /** Cycles a load of @p bytes of data occupies the pipeline. */
    unsigned dataLoadCycles(unsigned bytes) const
    {
        return loadBaseCycles + (mem::dataBeats(bus, bytes) - 1);
    }

    unsigned dataStoreCycles(unsigned bytes) const
    {
        return storeBaseCycles + (mem::dataBeats(bus, bytes) - 1);
    }

    /** Cycles a capability load occupies, including the filter. */
    unsigned capLoadCycles() const
    {
        return loadBaseCycles + (mem::capBeats(bus) - 1) +
               (loadFilterEnabled ? capLoadFilterPenalty : 0);
    }

    unsigned capStoreCycles() const
    {
        return storeBaseCycles + (mem::capBeats(bus) - 1);
    }
};

} // namespace cheriot::sim

#endif // CHERIOT_SIM_CORE_CONFIG_H
