/**
 * @file
 * The CHERIoT machine: one core (Flute- or Ibex-flavoured timing),
 * tagged SRAM, the revocation bitmap and load filter, the background
 * revoker, and the console/timer devices, advancing on a shared cycle
 * clock.
 *
 * The machine exposes *checked* memory operations (capability
 * authorised, cycle charged, load-filtered, snooped) that are used
 * both by the instruction executor and by the RTOS layer, so the
 * architectural protection and the temporal-safety machinery behave
 * identically whether code runs as guest instructions or as modelled
 * RTOS primitives.
 */

#ifndef CHERIOT_SIM_MACHINE_H
#define CHERIOT_SIM_MACHINE_H

#include "cap/capability.h"
#include "debug/stats.h"
#include "isa/encoding.h"
#include "mem/bus.h"
#include "mem/memory_map.h"
#include "revoker/background_revoker.h"
#include "revoker/load_filter.h"
#include "revoker/revocation_bitmap.h"
#include "sim/core_config.h"
#include "sim/csr.h"
#include "util/stats.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cheriot::fault
{
class FaultInjector;
}

namespace cheriot::debug
{
class RunControl;
}

namespace cheriot::snapshot
{
class Writer;
class Reader;
class SnapshotWriter;
class SnapshotReader;
struct SnapshotImage;
} // namespace cheriot::snapshot

namespace cheriot::sim
{

/** Console + power-control MMIO device for guest programs. */
class ConsoleDevice : public mem::MmioDevice
{
  public:
    std::string name() const override { return "console"; }
    uint32_t read32(uint32_t offset) override;
    void write32(uint32_t offset, uint32_t value) override;

    const std::string &output() const { return output_; }
    bool exitRequested() const { return exitRequested_; }
    uint32_t exitCode() const { return exitCode_; }
    void reset();

    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);

  private:
    std::string output_;
    bool exitRequested_ = false;
    uint32_t exitCode_ = 0;
};

/** Cycle-driven timer with a compare interrupt. */
class TimerDevice : public mem::MmioDevice
{
  public:
    std::string name() const override { return "timer"; }
    uint32_t read32(uint32_t offset) override;
    void write32(uint32_t offset, uint32_t value) override;

    void tick(uint64_t now) { now_ = now; }
    bool interruptPending() const
    {
        return armed_ && now_ >= compare_;
    }
    void disarm() { armed_ = false; }

    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);

  private:
    uint64_t now_ = 0;
    uint64_t compare_ = ~uint64_t{0};
    bool armed_ = false;
};

struct MachineConfig
{
    CoreConfig core = CoreConfig::ibex();
    uint32_t sramSize = 1u << 20; ///< 1 MiB.
    /** Heap window (covered by revocation bits); offsets within SRAM. */
    uint32_t heapOffset = 512u << 10;
    uint32_t heapSize = 256u << 10;
    uint32_t revocationGranule = 8;
    /** Optional fault-injection engine; the machine attaches it to
     * the SRAM / bitmap / revoker and polls it every cycle. */
    fault::FaultInjector *injector = nullptr;
};

/** Why run()/step() stopped. */
enum class HaltReason : uint8_t
{
    Running,      ///< Not halted.
    ConsoleExit,  ///< Guest wrote the exit register.
    Breakpoint,   ///< EBREAK retired.
    DoubleTrap,   ///< Trap taken with an unusable trap vector.
    InstrLimit,   ///< run() hit its instruction budget.
};

struct RunResult
{
    HaltReason reason;
    uint64_t instructions;
    uint64_t cycles;
};

class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /** @name Architectural register file (c0 is hard-wired null) @{ */
    cap::Capability readReg(unsigned index) const;
    void writeReg(unsigned index, const cap::Capability &value);
    void writeRegInt(unsigned index, uint32_t value);
    uint32_t readRegInt(unsigned index) const
    {
        return readReg(index).address();
    }
    /** @} */

    /** @name PCC and interrupt posture @{ */
    const cap::Capability &pcc() const { return pcc_; }
    void setPcc(const cap::Capability &pcc) { pcc_ = pcc; }
    bool interruptsEnabled() const { return csrs_.mie; }
    void setInterruptsEnabled(bool enabled) { csrs_.mie = enabled; }
    /** @} */

    CsrFile &csrs() { return csrs_; }
    const CoreConfig &config() const { return config_.core; }
    CoreConfig &mutableConfig() { return config_.core; }
    const MachineConfig &machineConfig() const { return config_; }

    /** @name Components @{ */
    mem::PhysicalMemory &memory() { return memory_; }
    revoker::RevocationBitmap &revocationBitmap() { return bitmap_; }
    revoker::LoadFilter &loadFilter() { return filter_; }
    revoker::BackgroundRevoker &backgroundRevoker() { return bgRevoker_; }
    ConsoleDevice &console() { return console_; }
    TimerDevice &timer() { return timer_; }
    mem::Bus &bus() { return bus_; }
    /** Attached fault injector, or null. */
    fault::FaultInjector *faultInjector() { return injector_; }
    /** @} */

    /** Heap window in architectural addresses. */
    uint32_t heapBase() const;
    uint32_t heapEnd() const { return heapBase() + config_.heapSize; }

    /** @name Time @{ */
    uint64_t cycles() const { return cycles_; }
    uint64_t instructions() const { return instructions_; }
    /**
     * Advance the clock. The first @p memPortBusy cycles have the
     * load-store unit occupied by the main pipeline; remaining cycles
     * leave it free for the background revoker.
     */
    void advance(uint64_t cycleCount, uint64_t memPortBusy = 0);
    /** Idle cycles: the port is entirely free. */
    void idle(uint64_t cycleCount) { advance(cycleCount, 0); }
    /** @} */

    /** @name Checked memory operations
     * All return TrapCause::None on success. @p charge controls
     * whether simulated cycles are consumed. @{ */
    TrapCause loadData(const cap::Capability &auth, uint32_t addr,
                       unsigned bytes, bool signExtend, uint32_t *out,
                       bool charge = true);
    TrapCause storeData(const cap::Capability &auth, uint32_t addr,
                        unsigned bytes, uint32_t value, bool charge = true);
    TrapCause loadCap(const cap::Capability &auth, uint32_t addr,
                      cap::Capability *out, bool charge = true);
    TrapCause storeCap(const cap::Capability &auth, uint32_t addr,
                       const cap::Capability &value, bool charge = true);
    /** @} */

    /** Zero [addr, addr+bytes) via @p auth, at bus speed. */
    TrapCause zeroMemory(const cap::Capability &auth, uint32_t addr,
                         uint32_t bytes, bool charge = true);

    /** @name Execution @{ */
    /** Execute one instruction (taking pending interrupts first). */
    void step();
    /** Run until halt, trap-to-nowhere, or @p maxInstructions. */
    RunResult run(uint64_t maxInstructions);
    /**
     * Run under debugger control: like run(), but the installed
     * RunControl's breakpoints are checked against the next PC before
     * each instruction, watchpoint/capability-fault stops recorded by
     * the memory/trap hooks end the loop after the current
     * instruction, and @p singleStep retires exactly one instruction.
     * The loop never executes the instruction at the resume PC's
     * breakpoint (gdb resumes *from* a breakpoint; the first
     * iteration is exempt). Requires setRunControl().
     */
    RunResult runControl(uint64_t maxInstructions, bool singleStep);
    bool halted() const { return halt_ != HaltReason::Running; }
    HaltReason haltReason() const { return halt_; }
    void clearHalt() { halt_ = HaltReason::Running; }
    /** Cause of the most recent trap (diagnostics). */
    TrapCause lastTrap() const { return lastTrap_; }
    uint64_t trapCount() const { return traps_.value(); }
    /** Typed diagnosis of the most recent undecodable fetch (why the
     * word was reserved/malformed); ok() until one occurs. */
    const isa::DecodeError &lastDecodeError() const
    {
        return lastDecodeError_;
    }
    /** @} */

    /** @name Program loading @{ */
    /** Copy @p words into SRAM at @p addr and flush the decode cache. */
    void loadProgram(const std::vector<uint32_t> &words, uint32_t addr);
    /**
     * Reset architectural state for a fresh run: PCC is an
     * executable-root capability at @p entry, the memory root is in
     * a0 and the sealing root in a1 (§3.1.1: all three roots are
     * present in registers on reset).
     */
    void resetCpu(uint32_t entry);
    /** @} */

    /** Raise a trap (also used by the RTOS layer for fatal errors). */
    void raiseTrap(TrapCause cause, uint32_t tval);

    /** @name Snapshot / restore
     * save() captures every architecturally visible piece of machine
     * state — registers, PCC, CSRs, tagged SRAM with micro-tags, the
     * revocation bitmap, the background revoker's pipeline, devices
     * and counters — as sections of a snapshot image. restore() is its
     * exact inverse: it refuses images whose configuration section
     * does not match this machine, validates every section before
     * mutating anything, and leaves the machine bit-identical to the
     * one that saved. The fault injector is deliberately *not* part of
     * the image; replay reconstructs it from the recorded seed. @{ */
    void save(snapshot::SnapshotWriter &out) const;
    bool restore(const snapshot::SnapshotReader &in);
    /** Convenience wrappers over a whole image. */
    snapshot::SnapshotImage saveImage() const;
    bool restoreImage(const snapshot::SnapshotImage &image);
    /** CRC-32 of the canonical image: equal digests ⇔ equal state. */
    uint32_t stateDigest() const;
    /** @} */

    /** Per-retired-instruction hook (tracing); null disables. */
    using TraceHook = std::function<void(uint32_t pc,
                                         const isa::Inst &inst)>;
    void setTraceHook(TraceHook hook) { traceHook_ = std::move(hook); }

    /** @name Debugger seam
     * The installed RunControl observes checked memory accesses
     * (watchpoints), capability-check failures and traps; it never
     * mutates machine state and is not serialized. Null detaches. @{ */
    void setRunControl(debug::RunControl *rc) { runControl_ = rc; }
    debug::RunControl *runControlHook() { return runControl_; }
    /**
     * Debugger memory read/write over SRAM, bypassing the bus, the
     * access counters and the charge model (a JTAG-style back door;
     * MMIO is refused — device reads have side effects). Writes obey
     * the tag-clearing rule and invalidate touched decode-cache
     * entries. False when the range is not SRAM.
     */
    bool debugReadMem(uint32_t addr, uint32_t len,
                      std::vector<uint8_t> *out) const;
    bool debugWriteMem(uint32_t addr, const std::vector<uint8_t> &data);
    /** @} */

    /** Unified counter registry over this machine's components (the
     * kernel attaches its groups when it boots on this machine). */
    debug::SimStats &simStats() { return simStats_; }
    const debug::SimStats &simStats() const { return simStats_; }

    Counter instructionsRetired;
    Counter loads;
    Counter stores;
    Counter capLoads;
    Counter capStores;
    Counter traps_;
    /** Decode-cache fills. Diagnostic only — deliberately not
     * serialized: fills happen at restore-history-dependent points
     * (see decodeAt), so a resumed run legitimately diverges here. */
    Counter decodeFills;

  private:
    friend class Executor;

    void execute(const isa::Inst &inst, uint32_t pc);
    bool takePendingInterrupt();
    const isa::Inst &decodeAt(uint32_t pc);

    /** Common access validation; returns None when allowed. */
    TrapCause checkAccess(const cap::Capability &auth, uint32_t addr,
                          unsigned bytes, uint16_t needPerm);

    MachineConfig config_;
    mem::PhysicalMemory memory_;
    revoker::RevocationBitmap bitmap_;
    revoker::LoadFilter filter_;
    revoker::BackgroundRevoker bgRevoker_;
    ConsoleDevice console_;
    TimerDevice timer_;
    mem::Bus bus_;
    fault::FaultInjector *injector_ = nullptr;

    cap::Capability regs_[isa::kNumRegs];
    cap::Capability pcc_;
    CsrFile csrs_;

    uint64_t cycles_ = 0;
    uint64_t instructions_ = 0;
    HaltReason halt_ = HaltReason::Running;
    TrapCause lastTrap_ = TrapCause::None;
    isa::DecodeError lastDecodeError_;

    /** Register written by the immediately preceding load (for the
     * load-to-use stall model); kNumRegs means none. */
    unsigned pendingLoadReg_ = isa::kNumRegs;

    /** Lazily filled decode cache over SRAM. */
    std::vector<isa::Inst> decodeCache_;
    std::vector<bool> decodeValid_;

    TraceHook traceHook_;
    debug::RunControl *runControl_ = nullptr;

    StatGroup stats_;
    debug::SimStats simStats_;
};

} // namespace cheriot::sim

#endif // CHERIOT_SIM_MACHINE_H
