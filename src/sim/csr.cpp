#include "sim/csr.h"

#include "snapshot/serializer.h"

namespace cheriot::sim
{

const char *
trapCauseName(TrapCause cause)
{
    switch (cause) {
      case TrapCause::None: return "none";
      case TrapCause::InstrAccessFault: return "instruction access fault";
      case TrapCause::IllegalInstruction: return "illegal instruction";
      case TrapCause::Breakpoint: return "breakpoint";
      case TrapCause::LoadAccessFault: return "load access fault";
      case TrapCause::StoreAccessFault: return "store access fault";
      case TrapCause::EcallM: return "ecall";
      case TrapCause::CheriTagViolation: return "CHERI tag violation";
      case TrapCause::CheriSealViolation: return "CHERI seal violation";
      case TrapCause::CheriPermViolation: return "CHERI permission violation";
      case TrapCause::CheriBoundsViolation: return "CHERI bounds violation";
      case TrapCause::CheriStoreLocalViolation:
        return "CHERI store-local violation";
      case TrapCause::MisalignedAccess: return "misaligned access";
      case TrapCause::CompartmentQuarantined:
        return "compartment quarantined";
      case TrapCause::TimerInterrupt: return "timer interrupt";
      case TrapCause::RevokerInterrupt: return "revoker interrupt";
    }
    return "unknown";
}

bool
CsrFile::read(uint16_t csr, uint64_t cycle, uint32_t *value) const
{
    switch (csr) {
      case isa::kCsrMstatus:
        *value = (mie ? 1u << 3 : 0) | (mpie ? 1u << 7 : 0);
        return true;
      case isa::kCsrMcause:
        *value = mcause;
        return true;
      case isa::kCsrMtval:
        *value = mtval;
        return true;
      case isa::kCsrMshwm:
        *value = mshwm;
        return true;
      case isa::kCsrMshwmb:
        *value = mshwmb;
        return true;
      case isa::kCsrMcycle:
        *value = static_cast<uint32_t>(cycle);
        return true;
      case isa::kCsrMcycleH:
        *value = static_cast<uint32_t>(cycle >> 32);
        return true;
      default:
        return false;
    }
}

bool
CsrFile::write(uint16_t csr, uint32_t value)
{
    switch (csr) {
      case isa::kCsrMstatus:
        mie = (value & (1u << 3)) != 0;
        mpie = (value & (1u << 7)) != 0;
        return true;
      case isa::kCsrMcause:
        mcause = value;
        return true;
      case isa::kCsrMtval:
        mtval = value;
        return true;
      case isa::kCsrMshwm:
        mshwm = value & ~3u;
        return true;
      case isa::kCsrMshwmb:
        mshwmb = value & ~3u;
        return true;
      case isa::kCsrMcycle:
      case isa::kCsrMcycleH:
        return false; // Read-only in this model.
      default:
        return false;
    }
}

bool
CsrFile::requiresSystemRegs(uint16_t csr)
{
    // The cycle counters are readable by any code; everything else is
    // reserved for SR holders (the switcher and early boot).
    return csr != isa::kCsrMcycle && csr != isa::kCsrMcycleH;
}

cap::Capability *
CsrFile::scr(isa::Scr which)
{
    switch (which) {
      case isa::Scr::Mtcc: return &mtcc;
      case isa::Scr::Mtdc: return &mtdc;
      case isa::Scr::MScratchC: return &mscratchc;
      case isa::Scr::Mepcc: return &mepcc;
    }
    return nullptr;
}

void
CsrFile::serialize(snapshot::Writer &w) const
{
    w.b(mie);
    w.b(mpie);
    w.u32(mcause);
    w.u32(mtval);
    w.u32(mshwm);
    w.u32(mshwmb);
    w.cap(mtcc);
    w.cap(mtdc);
    w.cap(mscratchc);
    w.cap(mepcc);
}

bool
CsrFile::deserialize(snapshot::Reader &r)
{
    mie = r.b();
    mpie = r.b();
    mcause = r.u32();
    mtval = r.u32();
    mshwm = r.u32();
    mshwmb = r.u32();
    mtcc = r.cap();
    mtdc = r.cap();
    mscratchc = r.cap();
    mepcc = r.cap();
    return r.ok();
}

} // namespace cheriot::sim
