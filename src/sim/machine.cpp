#include "sim/machine.h"

#include "debug/run_control.h"
#include "fault/fault_injector.h"
#include "snapshot/snapshot.h"
#include "util/bits.h"
#include "util/log.h"

#include <algorithm>

namespace cheriot::sim
{

using cap::Capability;
using cap::PermSet;

// --- ConsoleDevice ---------------------------------------------------

uint32_t
ConsoleDevice::read32(uint32_t offset)
{
    switch (offset) {
      case 0x0: return 0;
      case 0x4: return exitCode_;
      default: return 0;
    }
}

void
ConsoleDevice::write32(uint32_t offset, uint32_t value)
{
    switch (offset) {
      case 0x0:
        output_.push_back(static_cast<char>(value & 0xff));
        break;
      case 0x4:
        exitRequested_ = true;
        exitCode_ = value;
        break;
      default:
        break;
    }
}

void
ConsoleDevice::reset()
{
    output_.clear();
    exitRequested_ = false;
    exitCode_ = 0;
}

void
ConsoleDevice::serialize(snapshot::Writer &w) const
{
    w.str(output_);
    w.b(exitRequested_);
    w.u32(exitCode_);
}

bool
ConsoleDevice::deserialize(snapshot::Reader &r)
{
    output_ = r.str();
    exitRequested_ = r.b();
    exitCode_ = r.u32();
    return r.ok();
}

// --- TimerDevice ------------------------------------------------------

uint32_t
TimerDevice::read32(uint32_t offset)
{
    switch (offset) {
      case 0x0: return static_cast<uint32_t>(now_);
      case 0x4: return static_cast<uint32_t>(now_ >> 32);
      case 0x8: return static_cast<uint32_t>(compare_);
      case 0xc: return static_cast<uint32_t>(compare_ >> 32);
      default: return 0;
    }
}

void
TimerDevice::write32(uint32_t offset, uint32_t value)
{
    switch (offset) {
      case 0x8:
        compare_ = (compare_ & 0xffffffff00000000ull) | value;
        armed_ = true;
        break;
      case 0xc:
        compare_ = (compare_ & 0xffffffffull) |
                   (static_cast<uint64_t>(value) << 32);
        armed_ = true;
        break;
      default:
        break;
    }
}

void
TimerDevice::serialize(snapshot::Writer &w) const
{
    w.u64(now_);
    w.u64(compare_);
    w.b(armed_);
}

bool
TimerDevice::deserialize(snapshot::Reader &r)
{
    now_ = r.u64();
    compare_ = r.u64();
    armed_ = r.b();
    return r.ok();
}

// --- Machine ----------------------------------------------------------

Machine::Machine(const MachineConfig &config)
    : config_(config), memory_(config.sramSize),
      bitmap_(mem::kSramBase + config.heapOffset, config.heapSize,
              config.revocationGranule),
      filter_(&bitmap_),
      bgRevoker_(memory_.sram(), bitmap_, config.core.bus),
      bus_(config.core.bus), injector_(config.injector),
      stats_("machine")
{
    if (config.heapOffset + config.heapSize > config.sramSize) {
        fatal("heap window [0x%x, +0x%x) exceeds SRAM of 0x%x bytes",
              config.heapOffset, config.heapSize, config.sramSize);
    }
    memory_.mmio().map(mem::kRevocationBitmapBase, bitmap_.mmioSize(),
                       &bitmap_);
    memory_.mmio().map(mem::kRevokerMmioBase, mem::kRevokerMmioSize,
                       &bgRevoker_);
    memory_.mmio().map(mem::kConsoleMmioBase, mem::kConsoleMmioSize,
                       &console_);
    memory_.mmio().map(mem::kTimerMmioBase, mem::kTimerMmioSize, &timer_);

    filter_.setEnabled(config.core.loadFilterEnabled);

    if (injector_ != nullptr) {
        injector_->attachMemory(&memory_.sram());
        injector_->attachBitmap(&bitmap_);
        bgRevoker_.setFaultInjector(injector_);
    }

    decodeCache_.resize(config.sramSize / 4);
    decodeValid_.resize(config.sramSize / 4, false);

    stats_.registerCounter("instructions", instructionsRetired);
    stats_.registerCounter("loads", loads);
    stats_.registerCounter("stores", stores);
    stats_.registerCounter("capLoads", capLoads);
    stats_.registerCounter("capStores", capStores);
    stats_.registerCounter("traps", traps_);
    stats_.registerCounter("decodeFills", decodeFills);

    // The unified registry: every component's group in one directory,
    // queryable by bench harnesses and the GDB stub alike. The kernel
    // attaches the RTOS-side groups when it boots on this machine.
    simStats_.attach(stats_);
    simStats_.attach(memory_.sram().stats());
    simStats_.attach(bus_.stats());
    simStats_.attach(bitmap_.stats());
    simStats_.attach(filter_.stats());
    simStats_.attach(bgRevoker_.stats());
}

uint32_t
Machine::heapBase() const
{
    return mem::kSramBase + config_.heapOffset;
}

Capability
Machine::readReg(unsigned index) const
{
    if (index == 0) {
        return Capability();
    }
    return regs_[index];
}

void
Machine::writeReg(unsigned index, const Capability &value)
{
    if (index == 0 || index >= isa::kNumRegs) {
        return;
    }
    regs_[index] = value;
}

void
Machine::writeRegInt(unsigned index, uint32_t value)
{
    // Writing an integer result to a merged register file produces an
    // untagged value whose metadata is null.
    writeReg(index, Capability().withAddress(value));
}

void
Machine::advance(uint64_t cycleCount, uint64_t memPortBusy)
{
    for (uint64_t i = 0; i < cycleCount; ++i) {
        const bool portFree = i >= memPortBusy;
        bgRevoker_.tick(portFree);
        ++cycles_;
        if (injector_ != nullptr) {
            injector_->tick(cycles_);
        }
    }
    timer_.tick(cycles_);
}

TrapCause
Machine::checkAccess(const Capability &auth, uint32_t addr, unsigned bytes,
                     uint16_t needPerm)
{
    if (!config_.core.cheriEnabled) {
        // Baseline RV32E: no architectural checks beyond mapping.
        if (!memory_.isMapped(addr, bytes)) {
            return needPerm == cap::PermStore ? TrapCause::StoreAccessFault
                                              : TrapCause::LoadAccessFault;
        }
        if (addr % bytes != 0) {
            return TrapCause::MisalignedAccess;
        }
        return TrapCause::None;
    }
    if (!auth.tag()) {
        return TrapCause::CheriTagViolation;
    }
    if (auth.isSealed()) {
        return TrapCause::CheriSealViolation;
    }
    if (!auth.perms().has(needPerm)) {
        return TrapCause::CheriPermViolation;
    }
    if (!auth.inBounds(addr, bytes)) {
        return TrapCause::CheriBoundsViolation;
    }
    if (addr % bytes != 0) {
        return TrapCause::MisalignedAccess;
    }
    if (!memory_.isMapped(addr, bytes)) {
        return needPerm == cap::PermStore ? TrapCause::StoreAccessFault
                                          : TrapCause::LoadAccessFault;
    }
    return TrapCause::None;
}

TrapCause
Machine::loadData(const Capability &auth, uint32_t addr, unsigned bytes,
                  bool signExtend, uint32_t *out, bool charge)
{
    const TrapCause cause = checkAccess(auth, addr, bytes, cap::PermLoad);
    if (cause != TrapCause::None) {
        if (runControl_ != nullptr) {
            runControl_->noteCapCheckFail(cause, addr, pcc_.address());
        }
        return cause;
    }
    if (runControl_ != nullptr) {
        runControl_->noteMemAccess(/*isWrite=*/false, addr, bytes);
    }
    const unsigned beats = mem::dataBeats(config_.core.bus, bytes);
    mem::BusResult bt;
    if (charge) {
        bt = bus_.transact(beats, injector_);
        if (!bt.ok) {
            // Retries exhausted: the cycles burnt replaying are real,
            // the data never arrives.
            advance(config_.core.dataLoadCycles(bytes) + bt.extraCycles,
                    beats + bt.extraCycles);
            return TrapCause::LoadAccessFault;
        }
    }
    uint32_t raw = 0;
    switch (bytes) {
      case 1: raw = memory_.read8(addr); break;
      case 2: raw = memory_.read16(addr); break;
      case 4: raw = memory_.read32(addr); break;
      default: panic("loadData: bad size %u", bytes);
    }
    if (signExtend && bytes < 4) {
        raw = static_cast<uint32_t>(signExtend32(raw, bytes * 8));
    }
    *out = raw;
    loads++;
    if (charge) {
        advance(config_.core.dataLoadCycles(bytes) + bt.extraCycles,
                beats + bt.extraCycles);
    }
    return TrapCause::None;
}

TrapCause
Machine::storeData(const Capability &auth, uint32_t addr, unsigned bytes,
                   uint32_t value, bool charge)
{
    const TrapCause cause = checkAccess(auth, addr, bytes, cap::PermStore);
    if (cause != TrapCause::None) {
        if (runControl_ != nullptr) {
            runControl_->noteCapCheckFail(cause, addr, pcc_.address());
        }
        return cause;
    }
    if (runControl_ != nullptr) {
        runControl_->noteMemAccess(/*isWrite=*/true, addr, bytes);
    }
    const unsigned beats = mem::dataBeats(config_.core.bus, bytes);
    mem::BusResult bt;
    if (charge) {
        bt = bus_.transact(beats, injector_);
        if (!bt.ok) {
            // The write never reached the SRAM.
            advance(config_.core.dataStoreCycles(bytes) + bt.extraCycles,
                    beats + bt.extraCycles);
            return TrapCause::StoreAccessFault;
        }
    }
    switch (bytes) {
      case 1: memory_.write8(addr, static_cast<uint8_t>(value)); break;
      case 2: memory_.write16(addr, static_cast<uint16_t>(value)); break;
      case 4: memory_.write32(addr, value); break;
      default: panic("storeData: bad size %u", bytes);
    }
    stores++;
    bgRevoker_.snoopStore(addr, bytes);
    if (config_.core.hwmEnabled) {
        csrs_.noteStore(addr);
    }
    if (charge) {
        advance(config_.core.dataStoreCycles(bytes) + bt.extraCycles,
                beats + bt.extraCycles);
    }
    return TrapCause::None;
}

TrapCause
Machine::loadCap(const Capability &auth, uint32_t addr, Capability *out,
                 bool charge)
{
    const TrapCause cause = checkAccess(auth, addr, 8, cap::PermLoad);
    if (cause != TrapCause::None) {
        if (runControl_ != nullptr) {
            runControl_->noteCapCheckFail(cause, addr, pcc_.address());
        }
        return cause;
    }
    if (runControl_ != nullptr) {
        runControl_->noteMemAccess(/*isWrite=*/false, addr, 8);
    }
    const unsigned beats = mem::capBeats(config_.core.bus);
    mem::BusResult bt;
    if (charge) {
        bt = bus_.transact(beats, injector_);
        if (!bt.ok) {
            advance(config_.core.capLoadCycles() + bt.extraCycles,
                    beats + bt.extraCycles);
            return TrapCause::LoadAccessFault;
        }
    }
    const auto raw = memory_.readCap(addr);
    Capability loaded = Capability::fromBits(raw.bits, raw.tag);
    if (!auth.perms().has(cap::PermMemCap)) {
        // Data-only authority: the value arrives untagged.
        loaded = loaded.withTagCleared();
    }
    loaded = loaded.attenuatedForLoad(auth.perms());
    loaded = filter_.filter(loaded);
    if (injector_ != nullptr && loaded.tag() &&
        injector_->isPoisoned(addr)) {
        // The safety oracle: a corrupted granule produced a
        // valid-looking capability that every architectural defence
        // (micro-tags, attenuation, load filter) failed to strip.
        injector_->noteSafetyViolation(addr);
    }
    *out = loaded;
    capLoads++;
    if (charge) {
        advance(config_.core.capLoadCycles() + bt.extraCycles,
                beats + bt.extraCycles);
    }
    return TrapCause::None;
}

TrapCause
Machine::storeCap(const Capability &auth, uint32_t addr,
                  const Capability &value, bool charge)
{
    TrapCause cause = checkAccess(auth, addr, 8, cap::PermStore);
    if (cause == TrapCause::None && value.tag()) {
        if (!auth.perms().has(cap::PermMemCap)) {
            cause = TrapCause::CheriPermViolation;
        } else if (value.isLocal() &&
                   !auth.perms().has(cap::PermStoreLocal)) {
            // The 1-bit information-flow scheme (§2.6): local
            // capabilities may only be stored through SL authority
            // (in practice: only onto stacks).
            cause = TrapCause::CheriStoreLocalViolation;
        }
    }
    if (cause != TrapCause::None) {
        if (runControl_ != nullptr) {
            runControl_->noteCapCheckFail(cause, addr, pcc_.address());
        }
        return cause;
    }
    if (runControl_ != nullptr) {
        runControl_->noteMemAccess(/*isWrite=*/true, addr, 8);
    }
    const unsigned beats = mem::capBeats(config_.core.bus);
    mem::BusResult bt;
    if (charge) {
        bt = bus_.transact(beats, injector_);
        if (!bt.ok) {
            advance(config_.core.capStoreCycles() + bt.extraCycles,
                    beats + bt.extraCycles);
            return TrapCause::StoreAccessFault;
        }
    }
    memory_.writeCap(addr, value.toBits(), value.tag());
    if (injector_ != nullptr) {
        // A full-width rewrite replaces every corrupted bit.
        injector_->notePoisonRepaired(addr);
    }
    capStores++;
    bgRevoker_.snoopStore(addr, 8);
    if (config_.core.hwmEnabled) {
        csrs_.noteStore(addr);
    }
    if (charge) {
        advance(config_.core.capStoreCycles() + bt.extraCycles,
                beats + bt.extraCycles);
    }
    return TrapCause::None;
}

TrapCause
Machine::zeroMemory(const Capability &auth, uint32_t addr, uint32_t bytes,
                    bool charge)
{
    if (bytes == 0) {
        return TrapCause::None;
    }
    TrapCause cause = checkAccess(auth, addr, 1, cap::PermStore);
    if (cause == TrapCause::None && !auth.inBounds(addr, bytes)) {
        cause = TrapCause::CheriBoundsViolation;
    }
    if (cause != TrapCause::None) {
        if (runControl_ != nullptr) {
            runControl_->noteCapCheckFail(cause, addr, pcc_.address());
        }
        return cause;
    }
    if (!memory_.isSram(addr, bytes)) {
        return TrapCause::StoreAccessFault;
    }
    if (runControl_ != nullptr) {
        runControl_->noteMemAccess(/*isWrite=*/true, addr, bytes);
    }
    memory_.sram().zeroRange(addr, bytes);
    bgRevoker_.snoopStore(addr, bytes);
    if (config_.core.hwmEnabled) {
        csrs_.noteStore(addr);
    }
    if (charge) {
        // Zeroing proceeds at bus rate: one beat per bus word, plus a
        // small loop overhead per beat (fused store+bump, modelled as
        // busy port each cycle).
        const unsigned beats = mem::zeroBeats(config_.core.bus, bytes);
        advance(beats, beats);
    }
    return TrapCause::None;
}

void
Machine::raiseTrap(TrapCause cause, uint32_t tval)
{
    traps_++;
    lastTrap_ = cause;
    if (runControl_ != nullptr) {
        // Idempotent with the checked-op hook: the first recorded
        // stop wins, so the executor raising the trap for a failure
        // the memory op already reported does not double-stop.
        runControl_->noteTrap(cause, tval, pcc_.address());
    }
    logf(LogLevel::Debug, "machine: trap %s (tval=0x%08x) at pc=0x%08x",
         trapCauseName(cause), tval, pcc_.address());
    csrs_.mcause = static_cast<uint32_t>(cause);
    csrs_.mtval = tval;
    csrs_.mepcc = pcc_;
    csrs_.mpie = csrs_.mie;
    csrs_.mie = false;
    if (!csrs_.mtcc.tag() || !csrs_.mtcc.perms().has(cap::PermExecute)) {
        halt_ = HaltReason::DoubleTrap;
        return;
    }
    pcc_ = csrs_.mtcc.unsealedCopy();
    // Trap entry costs a pipeline flush.
    advance(config_.core.takenBranchPenalty + 1, 0);
}

void
Machine::loadProgram(const std::vector<uint32_t> &words, uint32_t addr)
{
    for (size_t i = 0; i < words.size(); ++i) {
        memory_.sram().write32(addr + static_cast<uint32_t>(i) * 4,
                               words[i]);
    }
    std::fill(decodeValid_.begin(), decodeValid_.end(), false);
}

void
Machine::resetCpu(uint32_t entry)
{
    for (auto &reg : regs_) {
        reg = Capability();
    }
    pcc_ = Capability::executableRoot().withAddress(entry);
    // All three roots are present in registers on reset (§3.1.1).
    writeReg(isa::A0, Capability::memoryRoot());
    writeReg(isa::A1, Capability::sealingRoot());
    csrs_ = CsrFile{};
    halt_ = HaltReason::Running;
    lastTrap_ = TrapCause::None;
    pendingLoadReg_ = isa::kNumRegs;
    console_.reset();
}

bool
Machine::takePendingInterrupt()
{
    if (!csrs_.mie) {
        return false;
    }
    if (bgRevoker_.takeCompletionIrq()) {
        raiseTrap(TrapCause::RevokerInterrupt, 0);
        return true;
    }
    if (timer_.interruptPending()) {
        timer_.disarm();
        raiseTrap(TrapCause::TimerInterrupt, 0);
        return true;
    }
    return false;
}

const isa::Inst &
Machine::decodeAt(uint32_t pc)
{
    const uint32_t index = (pc - mem::kSramBase) / 4;
    if (!decodeValid_[index]) {
        // peek32, not read32: the cache fills lazily, so which fetches
        // miss depends on restore history — a counted read here would
        // make resumed runs diverge from straight ones in the
        // serialized access counters.
        isa::DecodeError error;
        decodeCache_[index] =
            isa::decode(memory_.sram().peek32(pc), &error);
        decodeValid_[index] = true;
        decodeFills++;
        if (!error.ok()) {
            // Keep the typed diagnosis so the illegal-instruction trap
            // can say precisely which field was reserved/malformed.
            lastDecodeError_ = error;
        }
    } else if (decodeCache_[index].op == isa::Op::Illegal) {
        isa::DecodeError error;
        isa::decode(memory_.sram().peek32(pc), &error);
        lastDecodeError_ = error;
    }
    return decodeCache_[index];
}

RunResult
Machine::runControl(uint64_t maxInstructions, bool singleStep)
{
    if (runControl_ == nullptr) {
        panic("runControl: no RunControl installed");
    }
    debug::RunControl &rc = *runControl_;
    rc.clearStop();
    const uint64_t startInstructions = instructions_;
    const uint64_t startCycles = cycles_;
    bool first = true;
    while (!halted() &&
           instructions_ - startInstructions < maxInstructions) {
        const uint32_t pc = pcc_.address();
        // gdb resumes *from* a stop: a breakpoint at the resume PC
        // must not re-fire before the first instruction executes.
        if (!first && rc.hitsBreakpoint(pc)) {
            rc.stopWith(rc.hitsHwBreakpoint(pc)
                            ? debug::StopReason::HwBreakpoint
                            : debug::StopReason::SwBreakpoint,
                        pc);
            break;
        }
        first = false;
        step();
        if (rc.stopPending()) {
            // A watchpoint or capability fault fired inside step();
            // the instruction (and any trap entry) has completed.
            break;
        }
        if (halted() && halt_ == HaltReason::Breakpoint) {
            // Guest EBREAK: hand control to the debugger instead of
            // staying halted — gdb treats it as a soft breakpoint.
            clearHalt();
            rc.stopWith(debug::StopReason::SwBreakpoint,
                        pcc_.address());
            break;
        }
        if (singleStep) {
            rc.stopWith(debug::StopReason::Step, pcc_.address());
            break;
        }
        if (rc.takeInterrupt()) {
            rc.stopWith(debug::StopReason::Interrupt, pcc_.address());
            break;
        }
    }
    if (!rc.stopPending() && halted()) {
        rc.stopWith(debug::StopReason::Halted, pcc_.address());
    }
    RunResult result;
    result.reason = halted() ? halt_ : HaltReason::InstrLimit;
    result.instructions = instructions_ - startInstructions;
    result.cycles = cycles_ - startCycles;
    return result;
}

bool
Machine::debugReadMem(uint32_t addr, uint32_t len,
                      std::vector<uint8_t> *out) const
{
    if (len == 0 || !memory_.sram().contains(addr, len)) {
        return false;
    }
    out->clear();
    out->reserve(len);
    for (uint32_t i = 0; i < len; ++i) {
        out->push_back(memory_.sram().peek8(addr + i));
    }
    return true;
}

bool
Machine::debugWriteMem(uint32_t addr, const std::vector<uint8_t> &data)
{
    const uint32_t len = static_cast<uint32_t>(data.size());
    if (len == 0 || !memory_.sram().contains(addr, len)) {
        return false;
    }
    for (uint32_t i = 0; i < len; ++i) {
        memory_.sram().debugWrite8(addr + i, data[i]);
    }
    // The bytes may overlap cached decodes.
    const uint32_t firstWord = (addr - mem::kSramBase) / 4;
    const uint32_t lastWord = (addr + len - 1 - mem::kSramBase) / 4;
    for (uint32_t w = firstWord;
         w <= lastWord && w < decodeValid_.size(); ++w) {
        decodeValid_[w] = false;
    }
    return true;
}

RunResult
Machine::run(uint64_t maxInstructions)
{
    const uint64_t startInstructions = instructions_;
    const uint64_t startCycles = cycles_;
    while (!halted() &&
           instructions_ - startInstructions < maxInstructions) {
        step();
    }
    RunResult result;
    result.reason = halted() ? halt_ : HaltReason::InstrLimit;
    result.instructions = instructions_ - startInstructions;
    result.cycles = cycles_ - startCycles;
    return result;
}

void
Machine::step()
{
    if (halted()) {
        return;
    }
    if (injector_ != nullptr) {
        // Spurious traps / trap storms hit the core between
        // instructions, exactly like a glitched interrupt line.
        uint32_t cause = 0;
        if (injector_->takeSpuriousFault(&cause)) {
            raiseTrap(static_cast<TrapCause>(cause), pcc_.address());
            return;
        }
    }
    if (takePendingInterrupt()) {
        return;
    }

    const uint32_t pc = pcc_.address();

    // Instruction fetch checks: PCC must be a valid, unsealed (the
    // sentry unsealing happened at the jump), executable capability
    // covering the fetch.
    if (config_.core.cheriEnabled) {
        if (!pcc_.tag() || pcc_.isSealed() ||
            !pcc_.perms().has(cap::PermExecute) || !pcc_.inBounds(pc, 4)) {
            raiseTrap(TrapCause::InstrAccessFault, pc);
            return;
        }
    }
    if (!memory_.isSram(pc, 4) || pc % 4 != 0) {
        raiseTrap(TrapCause::InstrAccessFault, pc);
        return;
    }

    const isa::Inst &inst = decodeAt(pc);
    instructions_++;
    instructionsRetired++;
    if (traceHook_) {
        traceHook_(pc, inst);
    }
    execute(inst, pc);

    if (halt_ == HaltReason::Running && console_.exitRequested()) {
        halt_ = HaltReason::ConsoleExit;
    }
}

// --- Snapshot / restore ----------------------------------------------

void
Machine::save(snapshot::SnapshotWriter &out) const
{
    {
        snapshot::Writer &w = out.beginSection("config");
        w.u8(static_cast<uint8_t>(config_.core.kind));
        w.str(config_.core.name);
        w.b(config_.core.cheriEnabled);
        w.b(config_.core.loadFilterEnabled);
        w.b(config_.core.hwmEnabled);
        w.u8(static_cast<uint8_t>(config_.core.bus));
        w.u32(config_.sramSize);
        w.u32(config_.heapOffset);
        w.u32(config_.heapSize);
        w.u32(config_.revocationGranule);
    }
    {
        snapshot::Writer &w = out.beginSection("cpu");
        for (unsigned i = 1; i < isa::kNumRegs; ++i) {
            w.cap(regs_[i]);
        }
        w.cap(pcc_);
        csrs_.serialize(w);
        w.u64(cycles_);
        w.u64(instructions_);
        w.u8(static_cast<uint8_t>(halt_));
        w.u32(static_cast<uint32_t>(lastTrap_));
        w.u32(pendingLoadReg_);
        w.counter(instructionsRetired);
        w.counter(loads);
        w.counter(stores);
        w.counter(capLoads);
        w.counter(capStores);
        w.counter(traps_);
    }
    memory_.sram().serialize(out.beginSection("sram"));
    bitmap_.serialize(out.beginSection("bitmap"));
    bgRevoker_.serialize(out.beginSection("revoker"));
    filter_.serialize(out.beginSection("filter"));
    console_.serialize(out.beginSection("console"));
    timer_.serialize(out.beginSection("timer"));
    bus_.serialize(out.beginSection("bus"));
    out.endSection();
}

bool
Machine::restore(const snapshot::SnapshotReader &in)
{
    if (!in.valid()) {
        return false;
    }
    static const char *const kSections[] = {
        "config", "cpu",     "sram",  "bitmap",
        "revoker", "filter", "console", "timer", "bus",
    };
    for (const char *name : kSections) {
        if (!in.hasSection(name)) {
            return false;
        }
    }
    {
        // The image must describe *this* machine: restoring into a
        // different core or memory geometry is meaningless.
        snapshot::Reader r = in.section("config");
        const bool match =
            r.u8() == static_cast<uint8_t>(config_.core.kind) &&
            r.str() == config_.core.name &&
            r.b() == config_.core.cheriEnabled &&
            r.b() == config_.core.loadFilterEnabled &&
            r.b() == config_.core.hwmEnabled &&
            r.u8() == static_cast<uint8_t>(config_.core.bus) &&
            r.u32() == config_.sramSize &&
            r.u32() == config_.heapOffset &&
            r.u32() == config_.heapSize &&
            r.u32() == config_.revocationGranule;
        if (!match || !r.exhausted()) {
            return false;
        }
    }
    {
        snapshot::Reader r = in.section("cpu");
        for (unsigned i = 1; i < isa::kNumRegs; ++i) {
            regs_[i] = r.cap();
        }
        pcc_ = r.cap();
        if (!csrs_.deserialize(r)) {
            return false;
        }
        cycles_ = r.u64();
        instructions_ = r.u64();
        halt_ = static_cast<HaltReason>(r.u8());
        lastTrap_ = static_cast<TrapCause>(r.u32());
        pendingLoadReg_ = r.u32();
        r.counter(instructionsRetired);
        r.counter(loads);
        r.counter(stores);
        r.counter(capLoads);
        r.counter(capStores);
        r.counter(traps_);
        if (!r.exhausted()) {
            return false;
        }
    }
    snapshot::Reader sram = in.section("sram");
    snapshot::Reader bitmap = in.section("bitmap");
    snapshot::Reader rev = in.section("revoker");
    snapshot::Reader filter = in.section("filter");
    snapshot::Reader console = in.section("console");
    snapshot::Reader timer = in.section("timer");
    snapshot::Reader bus = in.section("bus");
    if (!memory_.sram().deserialize(sram) || !bitmap_.deserialize(bitmap) ||
        !bgRevoker_.deserialize(rev) || !filter_.deserialize(filter) ||
        !console_.deserialize(console) || !timer_.deserialize(timer) ||
        !bus_.deserialize(bus)) {
        return false;
    }
    // SRAM contents changed under the decode cache.
    std::fill(decodeValid_.begin(), decodeValid_.end(), false);
    return true;
}

snapshot::SnapshotImage
Machine::saveImage() const
{
    snapshot::SnapshotWriter out;
    save(out);
    return out.finish();
}

bool
Machine::restoreImage(const snapshot::SnapshotImage &image)
{
    snapshot::SnapshotReader reader(image);
    return restore(reader);
}

uint32_t
Machine::stateDigest() const
{
    return saveImage().digest();
}

} // namespace cheriot::sim
