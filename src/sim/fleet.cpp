#include "sim/fleet.h"

#include "mem/memory_map.h"
#include "util/log.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace cheriot::sim
{

using rtos::ArgVec;
using rtos::CallResult;
using rtos::CompartmentContext;

namespace
{

/** Stream ids under the fleet master seed. Node streams are indexed
 * so that every node's traffic and injector draws are independent of
 * every other node's (the per-site discipline, fleet-scaled). */
constexpr uint64_t kStreamTrafficBase = 0x71a0000;
constexpr uint64_t kStreamInjectorBase = 0x1213000;
constexpr uint64_t kStreamSwitch = 0x5717c4;
constexpr uint64_t kStreamFabricInjector = 0xfab41c;

MachineConfig
nodeMachineConfig(const FleetConfig &config,
                  fault::FaultInjector *injector)
{
    MachineConfig c;
    c.core = config.core;
    c.sramSize = config.sramSize;
    c.heapOffset = config.heapOffset;
    c.heapSize = config.heapSize;
    c.injector = injector;
    return c;
}

} // namespace

// --- FleetNode ------------------------------------------------------

FleetNode::Rig::Rig(FleetNode &node, const FleetConfig &config)
    : injector(Rng::deriveStreamSeed(config.seed,
                                     kStreamInjectorBase + node.id())),
      machine(nodeMachineConfig(config, &injector)), kernel(machine),
      nic(machine.memory().sram())
{
    kernel.initHeap(alloc::TemporalMode::HardwareRevocation);
    machine.memory().mmio().map(mem::kNicMmioBase, mem::kNicMmioSize,
                                &nic);
    nic.setFaultInjector(&injector);
    // TX frames leave the node through its outbox; the fleet's serial
    // phase moves them into the switch in port order, which is what
    // keeps a multithreaded fleet deterministic.
    nic.setTxSink([&node](const uint8_t *frame, uint32_t bytes) {
        node.outbox_.emplace_back(frame, frame + bytes);
    });
    parts = net::addNetCompartments(kernel);
    if (config.appTier) {
        flowParts = net::addFlowCompartment(kernel);
        brokerParts = net::addBrokerCompartment(kernel);
    }
    consumer = &kernel.createCompartment("consumer");
    const uint32_t handleIndex = consumer->addExport(
        {"handle",
         [&node](CompartmentContext &ctx, ArgVec &args) {
             const cap::Capability payload = args[0];
             const uint32_t len = args[1].address();
             // Plain mode: 4 header words, >= 2 payload words
             // (sentRound, msgId), 1 checksum word. App tier: the two
             // application words sit behind the 2-word flow header.
             const bool appTier = node.config_.appTier;
             const uint32_t appWords = appTier ? 4u : 2u;
             if (len < (net::kFleetHeaderWords + appWords + 1) * 4) {
                 return CallResult::ofInt(0);
             }
             const uint32_t base = payload.base();
             const uint32_t appBase =
                 base + (net::kFleetHeaderWords + appWords - 2) * 4;
             const uint32_t src = ctx.mem.loadWord(payload, base + 4);
             const uint32_t sentRound =
                 ctx.mem.loadWord(payload, appBase);
             const uint32_t msgId =
                 ctx.mem.loadWord(payload, appBase + 4);
             if (appTier && (msgId >> 20) != src - 1) {
                 // Forged provenance: the msgId namespace is the
                 // sender's node id, and this frame's source MAC
                 // does not own it.
                 node.spoofDrops_++;
                 return CallResult::ofInt(0);
             }
             node.onDelivered(src, msgId, sentRound);
             return CallResult::ofInt(1);
         },
         /*interruptsDisabled=*/false});
    thread = &kernel.createThread("fleet", 2, 4096);
    std::string error;
    if (!kernel.finalizeBoot(&error)) {
        fatal("fleet: node %u boot failed: %s", node.id(),
              error.c_str());
    }
    kernel.activate(*thread);

    net::NetStackConfig stackConfig = config.stack;
    stackConfig.reliable = true;
    stackConfig.localMac = node.mac();
    // Each boot is a new epoch: receivers distinguish this
    // incarnation's fresh sequence space from the old one's.
    stackConfig.arqEpoch = node.incarnation();
    stack = std::make_unique<net::NetStack>(kernel, nic, parts,
                                            stackConfig);
    if (config.appTier) {
        net::FlowConfig flowConfig = config.flow;
        flowConfig.epoch = node.incarnation();
        flowMgr = std::make_unique<net::FlowManager>(
            kernel, *stack, flowParts, flowConfig);
        flowMgr->setFaultInjector(&injector);
        broker = std::make_unique<net::TelemetryBroker>(
            kernel, brokerParts, config.broker);
        broker->setFaultInjector(&injector);
        broker->connect();
        net::NetStack *stackPtr = stack.get();
        broker->setInflightHooks(
            [stackPtr](uint32_t mac, uint64_t bytes) {
                return stackPtr->chargeInflight(mac, bytes);
            },
            [stackPtr](uint32_t mac, uint64_t bytes) {
                stackPtr->creditInflight(mac, bytes);
            });
        // Delivered flow segments fan out to the broker (as
        // publications) and to the recording consumer.
        flowMgr->connect(
            {{broker->ingestImport()},
             {kernel.importOf(*consumer, handleIndex)}});
        stack->connect({{flowMgr->deliverImport(), false}});
        brokerSub = broker->subscribe(0x7);
    } else {
        stack->connect(
            {{kernel.importOf(*consumer, handleIndex), false}});
    }
    stack->start(*thread);
}

FleetNode::FleetNode(const FleetConfig &config, uint32_t id)
    : config_(config), id_(id),
      trafficRng_(Rng::forStream(config.seed, kStreamTrafficBase + id))
{
    rig_ = std::make_unique<Rig>(*this, config_);
    captureBaseline();
}

void
FleetNode::runSlice(uint32_t round, const FleetTraffic &traffic,
                    uint32_t fleetNodes)
{
    currentRound_ = round;
    const bool isRogue =
        config_.rogueNode >= 0 &&
        static_cast<uint32_t>(config_.rogueNode) == id_;
    const bool rogueElsewhere =
        config_.rogueNode >= 0 && !isRogue &&
        static_cast<uint32_t>(config_.rogueNode) < fleetNodes;
    const uint32_t honestOthers =
        fleetNodes - 1 - (rogueElsewhere ? 1 : 0);
    if (!isRogue && honestOthers > 0 && traffic.sendPermille > 0 &&
        trafficRng_.chance(traffic.sendPermille, 1000)) {
        // Uniform destination among the *other* nodes.
        uint32_t dst = trafficRng_.below(fleetNodes - 1);
        if (dst >= id_) {
            dst++;
        }
        // Honest devices have no business talking to the rogue; remap
        // deterministically so the exactly-once gate stays clean.
        if (rogueElsewhere &&
            dst == static_cast<uint32_t>(config_.rogueNode)) {
            do {
                dst = (dst + 1) % fleetNodes;
            } while (dst == id_ ||
                     dst == static_cast<uint32_t>(config_.rogueNode));
        }
        const uint32_t dstMac = dst + 1;
        const uint32_t msgId = (id_ << 20) | (nextMsg_++ & 0xfffff);
        if (config_.appTier) {
            net::FlowManager &fm = *rig_->flowMgr;
            if (!fm.txKnown(dstMac)) {
                fm.open(*rig_->thread, dstMac,
                        static_cast<net::FlowClass>((id_ ^ dst) % 3));
            }
            const auto result =
                fm.send(*rig_->thread, dstMac, round, msgId);
            if (result == net::FlowManager::SendResult::Ok) {
                sends_.push_back({dstMac, msgId, round});
            } else {
                sendRefusals_++;
            }
        } else if (rig_->stack->sendMessage(*rig_->thread, dstMac,
                                            traffic.payloadWords,
                                            round, msgId)) {
            sends_.push_back({dstMac, msgId, round});
        } else {
            sendRefusals_++;
        }
    }
    rig_->stack->pump(*rig_->thread);
    if (config_.appTier) {
        // Quiesce (drain) rounds go silent: no keepalive probes.
        rig_->flowMgr->service(*rig_->thread,
                               traffic.sendPermille != 0);
        // A slow-but-live subscriber: drain up to two broker records
        // per round, so queues bound under load and empty at drain.
        net::TelemetryBroker::Record record;
        for (int i = 0; i < 2; ++i) {
            if (!rig_->broker->poll(*rig_->thread, rig_->brokerSub,
                                    &record)) {
                break;
            }
        }
    }
    rig_->machine.idle(config_.idleCyclesPerRound);
}

bool
FleetNode::sendNow(uint32_t dstMac, uint32_t payloadWords,
                   uint32_t round)
{
    const uint32_t msgId = (id_ << 20) | (nextMsg_++ & 0xfffff);
    if (!rig_->stack->sendMessage(*rig_->thread, dstMac, payloadWords,
                                  round, msgId)) {
        sendRefusals_++;
        return false;
    }
    sends_.push_back({dstMac, msgId, round});
    return true;
}

void
FleetNode::restart()
{
    // The old incarnation's accepted-but-unacked sends lose their
    // delivery guarantee (the ARQ state that backed them is gone):
    // they move to the amnesty log, where the invariant gate demands
    // "at most once" instead of "exactly once".
    amnestySends_.insert(amnestySends_.end(), sends_.begin(),
                         sends_.end());
    sends_.clear();
    // Per-incarnation dedup restarts from scratch too.
    deliveryCounts_.clear();
    outbox_.clear();
    incarnation_++;
    rig_.reset(); // Tear down before the replacement boots.
    rig_ = std::make_unique<Rig>(*this, config_);
    captureBaseline();
}

snapshot::SnapshotImage
FleetNode::saveImage() const
{
    snapshot::SnapshotWriter out;
    rig_->machine.save(out);
    snapshot::Writer &kw = out.beginSection("kernel");
    rig_->kernel.serialize(kw);
    out.endSection();
    snapshot::Writer &fw = out.beginSection("fleet");
    rig_->nic.serialize(fw);
    rig_->stack->serialize(fw);
    if (config_.appTier) {
        rig_->flowMgr->serialize(fw);
        rig_->broker->serialize(fw);
    }
    fw.u32(currentRound_);
    fw.u32(nextMsg_);
    uint32_t rngState[4];
    trafficRng_.getState(rngState);
    for (uint32_t word : rngState) {
        fw.u32(word);
    }
    out.endSection();
    return out.finish();
}

bool
FleetNode::restoreImage(const snapshot::SnapshotImage &image)
{
    // Deterministic boot first, then lay the dynamic state over it —
    // the same discipline as every other snapshot consumer.
    rig_.reset();
    rig_ = std::make_unique<Rig>(*this, config_);
    snapshot::SnapshotReader in(image);
    if (!in.valid() || !rig_->machine.restore(in)) {
        return false;
    }
    snapshot::Reader kr = in.section("kernel");
    if (!rig_->kernel.deserialize(kr) || !kr.exhausted()) {
        return false;
    }
    snapshot::Reader fr = in.section("fleet");
    if (!rig_->nic.deserialize(fr) || !rig_->stack->deserialize(fr)) {
        return false;
    }
    if (config_.appTier &&
        (!rig_->flowMgr->deserialize(fr) ||
         !rig_->broker->deserialize(fr))) {
        return false;
    }
    currentRound_ = fr.u32();
    nextMsg_ = fr.u32();
    uint32_t rngState[4];
    for (auto &word : rngState) {
        word = fr.u32();
    }
    trafficRng_.setState(rngState);
    return fr.exhausted();
}

void
FleetNode::onDelivered(uint32_t srcMac, uint32_t msgId,
                       uint32_t sentRound)
{
    deliveries_.push_back({srcMac, msgId, sentRound, currentRound_});
    deliveryCounts_[msgId]++;
    allTimeDeliveryCounts_[msgId]++;
}

void
FleetNode::captureBaseline()
{
    rig_->kernel.allocator().synchronise();
    baselineFree_ = rig_->kernel.allocator().freeBytes() +
                    rig_->kernel.allocator().slackBytes();
}

uint64_t
FleetNode::freeBytesNow()
{
    // Sweep until the quarantine is empty so the audit compares like
    // with like (freed-but-unswept chunks are latency, not leaks).
    // Slack held by live chunks counts as healable for the same
    // reason: a recycled ring buffer that landed on a chunk with an
    // absorbed sub-minimum remainder is placement, not a leak.
    for (int i = 0; i < 8; ++i) {
        rig_->kernel.allocator().synchronise();
        if (rig_->kernel.allocator().quarantinedBytes() == 0) {
            break;
        }
    }
    return rig_->kernel.allocator().freeBytes() +
           rig_->kernel.allocator().slackBytes();
}

// --- ChaosEngine ----------------------------------------------------

void
ChaosEngine::record(uint32_t round, const char *kind, uint32_t target,
                    uint32_t param)
{
    ChaosEventRecord event;
    event.index = static_cast<uint32_t>(history_.size());
    event.round = round;
    event.kind = kind;
    event.target = target;
    event.param = param;
    history_.push_back(event);
}

void
ChaosEngine::apply(uint32_t round, Fleet &fleet)
{
    net::VirtualSwitch &fabric = fleet.fabric();
    const uint32_t ports = fabric.portCount();

    // Heal due partitions first (heals can land after endRound).
    for (auto it = partitionHeals_.begin();
         it != partitionHeals_.end();) {
        if (round >= it->second) {
            fabric.setPartitioned(it->first, false);
            record(round, "heal", it->first, 0);
            it = partitionHeals_.erase(it);
        } else {
            ++it;
        }
    }

    if (round == config_.startRound && ports > 0) {
        for (uint32_t port = 0; port < ports; ++port) {
            fabric.setLinkFaults(port, config_.linkFaults);
        }
        record(round, "link-faults-on", ports,
               config_.linkFaults.dropPermille);
    }
    if (round == config_.endRound && ports > 0) {
        const net::LinkFaultConfig lossless;
        for (uint32_t port = 0; port < ports; ++port) {
            fabric.setLinkFaults(port, lossless);
        }
        // Everything still isolated heals now: the reconvergence
        // clock starts here.
        for (const auto &[port, healRound] : partitionHeals_) {
            fabric.setPartitioned(port, false);
            record(round, "heal", port, 0);
        }
        partitionHeals_.clear();
        record(round, "link-faults-off", ports, 0);
    }

    const bool inWindow =
        round >= config_.startRound && round < config_.endRound;
    if (inWindow && ports > 0) {
        const uint32_t offset = round - config_.startRound;
        if (config_.partitionPeriod != 0 && offset != 0 &&
            offset % config_.partitionPeriod == 0) {
            const uint32_t port = rng_.below(ports);
            if (!fabric.partitioned(port)) {
                fabric.setPartitioned(port, true);
                partitionHeals_[port] =
                    round + std::max(1u, config_.partitionLength);
                record(round, "partition", port,
                       config_.partitionLength);
            }
        }
        if (config_.stallPeriod != 0 && offset != 0 &&
            offset % config_.stallPeriod == 0) {
            fault::FaultPlan plan;
            plan.site = fault::FaultSite::SwitchPortStall;
            plan.triggerTransaction = 0; // Next fabric tick.
            plan.addr = rng_.next();
            plan.param = 1 + rng_.below(16);
            fleet.fabricInjector().arm(plan);
            record(round, "port-stall", plan.addr % ports, plan.param);
        }
        if (config_.linkDropPeriod != 0 && offset != 0 &&
            offset % config_.linkDropPeriod == 0) {
            const uint32_t target = rng_.below(fleet.size());
            fault::FaultPlan plan;
            plan.site = fault::FaultSite::NicLinkDrop;
            plan.triggerTransaction = 0; // Next arriving frame.
            plan.param = 1 + rng_.below(4);
            fleet.node(target).injector().arm(plan);
            record(round, "nic-link-drop", target, plan.param);
        }
    }

    if (config_.quarantineNode >= 0 &&
        static_cast<uint32_t>(config_.quarantineNode) < fleet.size()) {
        const uint32_t target =
            static_cast<uint32_t>(config_.quarantineNode);
        if (!quarantineArmed_ && round == config_.quarantineRound) {
            fault::FaultPlan plan;
            plan.site = config_.quarantineSite;
            plan.triggerTransaction = 0;
            plan.triggerCycle = fleet.node(target).machine().cycles();
            plan.addr = rng_.next();
            plan.param = rng_.next();
            fleet.node(target).injector().arm(plan);
            quarantineArmed_ = true;
            record(round, "quarantine-fault", target,
                   static_cast<uint32_t>(plan.site));
        }
        if (quarantineArmed_ && !restartDone_ &&
            round >= config_.quarantineRound + config_.restartDelay) {
            fleet.restartNode(target);
            restartDone_ = true;
            record(round, "restart", target,
                   fleet.node(target).incarnation());
        }
    }
}

// --- Fleet ----------------------------------------------------------

Fleet::Fleet(const FleetConfig &config)
    : config_(config),
      switch_(Rng::deriveStreamSeed(config.seed, kStreamSwitch),
              config.switchQueueDepth),
      fabricInjector_(
          Rng::deriveStreamSeed(config.seed, kStreamFabricInjector))
{
    switch_.setFaultInjector(&fabricInjector_);
    for (uint32_t id = 0; id < config.nodes; ++id) {
        nodes_.push_back(std::make_unique<FleetNode>(config, id));
        ports_.push_back(switch_.addPort(&nodes_[id]->nic()));
    }
}

void
Fleet::parallelPhase(const FleetTraffic &traffic)
{
    const uint32_t count = size();
    uint32_t workers = config_.threads != 0
                           ? config_.threads
                           : std::thread::hardware_concurrency();
    workers = std::max(1u, std::min(workers, count));
    if (workers <= 1 || count <= 1) {
        for (auto &node : nodes_) {
            if (debugHeld(node->id())) {
                continue;
            }
            node->runSlice(round_, traffic, count);
        }
        return;
    }
    // Work-stealing over node ids: each node is touched by exactly
    // one thread, and nodes never share state, so any host schedule
    // produces the same fleet state at the barrier.
    std::atomic<uint32_t> cursor{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (uint32_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (;;) {
                const uint32_t id =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (id >= count) {
                    return;
                }
                if (debugHeld(id)) {
                    continue;
                }
                nodes_[id]->runSlice(round_, traffic, count);
            }
        });
    }
    for (std::thread &worker : pool) {
        worker.join();
    }
}

void
Fleet::serialPhase()
{
    if (chaos_ != nullptr) {
        chaos_->apply(round_, *this);
    }
    // Fabric-level quarantine: when enough independent nodes have
    // locally struck a MAC out, partition its port and have every
    // node shun it — one compromised device cannot outvote the fleet,
    // and two colluding local false-positives are the floor.
    if (config_.fabricQuarantineVotes > 0 &&
        config_.stack.firewall.admission) {
        std::map<uint32_t, uint32_t> votes;
        for (auto &node : nodes_) {
            for (uint32_t mac : node->stack().quarantinedMacs()) {
                votes[mac]++;
            }
        }
        for (const auto &[mac, count] : votes) {
            if (count < config_.fabricQuarantineVotes || mac == 0 ||
                mac > nodes_.size() ||
                std::find(fabricQuarantines_.begin(),
                          fabricQuarantines_.end(),
                          mac) != fabricQuarantines_.end()) {
                continue;
            }
            switch_.setPartitioned(ports_.at(mac - 1), true);
            for (auto &node : nodes_) {
                node->quarantineMac(mac);
            }
            fabricQuarantines_.push_back(mac);
        }
    }
    for (uint32_t id = 0; id < nodes_.size(); ++id) {
        auto &outbox = nodes_[id]->outbox();
        for (const std::vector<uint8_t> &frame : outbox) {
            switch_.ingress(ports_[id], frame.data(),
                            static_cast<uint32_t>(frame.size()));
        }
        outbox.clear();
    }
    switch_.tick();
}

void
Fleet::run(uint32_t rounds, const FleetTraffic &traffic)
{
    for (uint32_t r = 0; r < rounds; ++r) {
        parallelPhase(traffic);
        serialPhase();
        round_++;
    }
}

bool
Fleet::drain(uint32_t maxRounds)
{
    FleetTraffic quiet;
    quiet.sendPermille = 0;
    // Idle must hold for a few consecutive rounds: a drained ARQ can
    // still have stray acks/duplicates in NIC rings whose processing
    // emits one more control frame.
    uint32_t idleStreak = 0;
    for (uint32_t r = 0; r < maxRounds; ++r) {
        bool idle = switch_.queuedFrames() == 0;
        for (auto &node : nodes_) {
            idle = idle && node->stack().arqIdle();
        }
        idleStreak = idle ? idleStreak + 1 : 0;
        if (idleStreak >= 3) {
            return true;
        }
        parallelPhase(quiet);
        serialPhase();
        round_++;
    }
    return false;
}

void
Fleet::restartNode(uint32_t id)
{
    nodes_.at(id)->restart();
    switch_.attachNic(ports_.at(id), &nodes_[id]->nic());
}

void
Fleet::debugAttach(uint32_t id)
{
    if (id >= size()) {
        panic("fleet: debugAttach to nonexistent node %u", id);
    }
    if (debugHeld_ != -1) {
        panic("fleet: node %d is already debug-held", debugHeld_);
    }
    debugHeld_ = static_cast<int32_t>(id);
}

uint64_t
Fleet::totalSafetyViolations()
{
    uint64_t total = fabricInjector_.safetyViolations.value();
    for (auto &node : nodes_) {
        total += node->safetyViolations();
    }
    return total;
}

bool
Fleet::anyPeerDead()
{
    for (auto &node : nodes_) {
        for (uint32_t mac : node->stack().peerMacs()) {
            if (node->stack().peerDead(mac)) {
                return true;
            }
        }
    }
    return false;
}

} // namespace cheriot::sim
