/**
 * @file
 * Execution tracing: an optional per-instruction hook on the machine
 * plus a ring-buffer tracer that renders the recent instruction
 * stream — the tool you want when a guest program misbehaves.
 */

#ifndef CHERIOT_SIM_TRACER_H
#define CHERIOT_SIM_TRACER_H

#include "isa/encoding.h"
#include "sim/machine.h"

#include <deque>
#include <string>
#include <vector>

namespace cheriot::sim
{

/** One retired instruction. */
struct TraceRecord
{
    uint64_t cycle;
    uint32_t pc;
    isa::Inst inst;
};

/**
 * Keeps the last N retired instructions of a machine.
 *
 * Attach with attach(); the tracer unhooks itself on destruction.
 */
class RingTracer
{
  public:
    explicit RingTracer(size_t depth = 64) : depth_(depth) {}

    ~RingTracer() { detach(); }

    void attach(Machine &machine)
    {
        // Rebinding must not leave our hook on the old machine.
        detach();
        machine_ = &machine;
        machine.setTraceHook([this](uint32_t pc, const isa::Inst &inst) {
            if (records_.size() == depth_) {
                records_.pop_front();
            }
            records_.push_back({machine_->cycles(), pc, inst});
        });
    }

    /** Unhook from the current machine (keeps the recorded window). */
    void detach()
    {
        if (machine_ != nullptr) {
            machine_->setTraceHook(nullptr);
            machine_ = nullptr;
        }
    }

    const std::deque<TraceRecord> &records() const { return records_; }

    void clear() { records_.clear(); }

    /** Render the buffer, one "cycle pc: disassembly" line each. */
    std::vector<std::string> format() const;

  private:
    size_t depth_;
    Machine *machine_ = nullptr;
    std::deque<TraceRecord> records_;
};

} // namespace cheriot::sim

#endif // CHERIOT_SIM_TRACER_H
