/**
 * @file
 * Control and status registers, including the CHERIoT special
 * capability registers (SCRs) and the stack high-water-mark pair
 * (paper §5.2.1).
 *
 * Access to most CSRs/SCRs requires the SR permission on PCC. The
 * stack high-water mark (mshwm) and stack base (mshwmb) are likewise
 * SR-protected — only the compartment switcher may touch them — but
 * the *hardware* updates mshwm on every store: a store whose address
 * falls inside [mshwmb, mshwm) lowers mshwm to that address, so
 * mshwm always tracks the lowest stack address the current thread
 * has written (stacks grow downwards).
 */

#ifndef CHERIOT_SIM_CSR_H
#define CHERIOT_SIM_CSR_H

#include "cap/capability.h"
#include "isa/encoding.h"

#include <cstdint>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::sim
{

/** Trap and interrupt causes (mcause values). */
enum class TrapCause : uint32_t
{
    None = 0,
    InstrAccessFault = 1,
    IllegalInstruction = 2,
    Breakpoint = 3,
    LoadAccessFault = 5,
    StoreAccessFault = 7,
    EcallM = 11,
    // CHERI-specific causes (values chosen in the reserved range).
    CheriTagViolation = 28,
    CheriSealViolation = 29,
    CheriPermViolation = 30,
    CheriBoundsViolation = 31,
    CheriStoreLocalViolation = 32,
    MisalignedAccess = 33,
    /** Synthesised by the switcher (not a hardware mcause): the call
     * target compartment is quarantined by the kernel watchdog. */
    CompartmentQuarantined = 34,
    // Interrupts (bit 31 set in mcause).
    TimerInterrupt = 0x80000007,
    RevokerInterrupt = 0x8000000b,
};

const char *trapCauseName(TrapCause cause);

/** True for interrupt causes. */
constexpr bool
isInterrupt(TrapCause cause)
{
    return (static_cast<uint32_t>(cause) & 0x80000000u) != 0;
}

class CsrFile
{
  public:
    /** @name Machine status @{ */
    bool mie = false;  ///< Global interrupt enable.
    bool mpie = false; ///< Previous MIE, stacked on trap entry.
    uint32_t mcause = 0;
    uint32_t mtval = 0;
    /** @} */

    /** @name Stack high-water mark (§5.2.1) @{ */
    uint32_t mshwm = 0;  ///< Lowest stack address stored to.
    uint32_t mshwmb = 0; ///< Stack base (lower limit).
    /** @} */

    /** @name Special capability registers @{ */
    cap::Capability mtcc;      ///< Trap vector.
    cap::Capability mtdc;      ///< Trap data.
    cap::Capability mscratchc; ///< Scratch.
    cap::Capability mepcc;     ///< Exception PC.
    /** @} */

    /**
     * Hardware-side high-water-mark update on a store to @p addr.
     * Returns true if the mark moved.
     */
    bool noteStore(uint32_t addr)
    {
        if (addr >= mshwmb && addr < mshwm) {
            mshwm = addr & ~3u; // Word-granular mark.
            return true;
        }
        return false;
    }

    /**
     * Read a numeric CSR. @p cycle supplies mcycle. Returns false for
     * unknown CSR numbers.
     */
    bool read(uint16_t csr, uint64_t cycle, uint32_t *value) const;

    /** Write a numeric CSR. Returns false for unknown/read-only. */
    bool write(uint16_t csr, uint32_t value);

    /** Does access to @p csr require the SR permission? */
    static bool requiresSystemRegs(uint16_t csr);

    /** @name Snapshot state @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    cap::Capability *scr(isa::Scr which);
};

} // namespace cheriot::sim

#endif // CHERIOT_SIM_CSR_H
