/**
 * @file
 * Fleet runner: tens-to-hundreds of independently-owned Machines on a
 * virtual switch fabric, executed deterministically on host threads.
 *
 * Each FleetNode is a complete system — its own FaultInjector,
 * Machine, kernel, NIC and reliable (ARQ-mode) network stack, plus a
 * consumer compartment that records every delivered fleet message for
 * the invariant gate. Nothing is shared between nodes except the
 * switch fabric.
 *
 * Execution is round-based with a barrier, which is what makes a
 * multithreaded fleet bit-reproducible from a single seed:
 *
 *  - parallel phase: every node runs its slice (generate traffic,
 *    pump, idle) touching only its *own* Machine; frames its NIC
 *    transmits land in a node-local outbox via the TX sink.
 *  - serial phase: the chaos engine applies this round's scheduled
 *    events, outboxes drain into the switch in port order, and the
 *    switch ticks — delivering frames (through each link's seeded
 *    fault model) into destination NICs.
 *
 * The schedule of host threads can never reorder anything observable:
 * all cross-node interaction happens in the serial phase, in a fixed
 * order, from seeded streams. A fleet_chaos failure therefore replays
 * from (seed, event index) alone.
 *
 * The ChaosEngine turns one seed into a recorded schedule of link
 * faults, partitions, port stalls, NIC link drops and one device
 * quarantine/restart; every event is appended to a history with its
 * injection index, so a failing campaign prints exactly which event
 * to replay.
 */

#ifndef CHERIOT_SIM_FLEET_H
#define CHERIOT_SIM_FLEET_H

#include "fault/fault_injector.h"
#include "net/broker.h"
#include "net/flow.h"
#include "net/net_stack.h"
#include "net/nic_device.h"
#include "net/switch.h"
#include "rtos/kernel.h"
#include "sim/machine.h"
#include "snapshot/snapshot.h"
#include "util/rng.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cheriot::sim
{

struct FleetConfig
{
    uint32_t nodes = 8;
    uint64_t seed = 1;
    /** Per-node machine sizing (every node is identical hardware). */
    CoreConfig core = CoreConfig::ibex();
    uint32_t sramSize = 192u << 10;
    uint32_t heapOffset = 64u << 10;
    uint32_t heapSize = 128u << 10;
    /** Guest cycles idled per round on top of the pump/send work, so
     * ARQ timers (cycle-denominated) advance at a steady rate. */
    uint32_t idleCyclesPerRound = 512;
    /** Host threads for the parallel phase (0 = hardware default). */
    uint32_t threads = 0;
    /** Bound on each switch port's egress queue. */
    uint32_t switchQueueDepth = 64;
    net::NetStackConfig stack; ///< reliable/localMac are set per node.
    /** Application tier: every node runs a FlowManager (traffic rides
     * flows, not raw sends) and a TelemetryBroker subscribed to it. */
    bool appTier = false;
    /** Node id driven by a host-side RogueDevice instead of honest
     * traffic (-1: none). Honest nodes never pick it as destination. */
    int32_t rogueNode = -1;
    net::FlowConfig flow;     ///< epoch is set per node incarnation.
    net::BrokerConfig broker; ///< Per-node broker sizing.
    /** Fleet-level escalation: when this many distinct nodes have
     * locally quarantined the same MAC, the serial phase partitions
     * its switch port and every node shuns it (0 disables). */
    uint32_t fabricQuarantineVotes = 2;
};

/** Per-round traffic generation knobs. */
struct FleetTraffic
{
    /** Permille chance per node per round of sending one message. */
    uint32_t sendPermille = 500;
    uint32_t payloadWords = 8;
};

/** One message delivery observed by a node's consumer compartment. */
struct FleetDelivery
{
    uint32_t srcMac = 0;
    uint32_t msgId = 0;
    uint32_t sentRound = 0;
    uint32_t recvRound = 0;
};

/** One message accepted by a node's ARQ send path. */
struct FleetSend
{
    uint32_t dstMac = 0;
    uint32_t msgId = 0;
    uint32_t round = 0;
};

class FleetNode
{
  public:
    FleetNode(const FleetConfig &config, uint32_t id);

    uint32_t id() const { return id_; }
    uint32_t mac() const { return id_ + 1; }
    uint32_t incarnation() const { return incarnation_; }

    /** One parallel-phase slice: maybe send, pump, idle. Touches only
     * this node's Machine; TX frames land in outbox(). */
    void runSlice(uint32_t round, const FleetTraffic &traffic,
                  uint32_t fleetNodes);

    /** Directed send (tests drive specific flows); logged like a
     * traffic send. Returns true when the ARQ accepted it. */
    bool sendNow(uint32_t dstMac, uint32_t payloadWords,
                 uint32_t round);

    /** Tear the whole system down and boot a fresh incarnation (the
     * quarantine/restart path). Persistent identity — MAC, traffic
     * stream, message-id counter, send/delivery logs — carries over;
     * ARQ and dedup state start from scratch. */
    void restart();

    /** @name Snapshot (machine + kernel + NIC + stack sections) @{ */
    snapshot::SnapshotImage saveImage() const;
    bool restoreImage(const snapshot::SnapshotImage &image);
    /** @} */

    /** @name Fabric wiring @{ */
    net::NicDevice &nic() { return rig_->nic; }
    std::vector<std::vector<uint8_t>> &outbox() { return outbox_; }
    /** @} */

    /** @name System access @{ */
    sim::Machine &machine() { return rig_->machine; }
    rtos::Kernel &kernel() { return rig_->kernel; }
    /** The node's service thread (tests drive flow/broker calls). */
    rtos::Thread &thread() { return *rig_->thread; }
    net::NetStack &stack() { return *rig_->stack; }
    fault::FaultInjector &injector() { return rig_->injector; }
    /** Application tier (null unless config.appTier). @{ */
    net::FlowManager *flowManager() { return rig_->flowMgr.get(); }
    net::TelemetryBroker *broker() { return rig_->broker.get(); }
    uint32_t brokerSubscriber() const { return rig_->brokerSub; }
    /** @} */
    /** Fleet-escalation hook: shun @p mac (quarantine + ARQ purge). */
    void quarantineMac(uint32_t mac)
    {
        rig_->stack->quarantineMac(*rig_->thread, mac);
    }
    /** @} */

    /** @name Invariant-gate observations @{ */
    const std::vector<FleetSend> &sends() const { return sends_; }
    /** Sends accepted by an earlier incarnation: delivery amnesty —
     * the restart wiped the ARQ state that guaranteed them. */
    const std::vector<FleetSend> &amnestySends() const
    {
        return amnestySends_;
    }
    uint64_t sendRefusals() const { return sendRefusals_; }
    /** Deliveries dropped because the embedded msgId did not match
     * the frame's source MAC (app tier only: forged provenance). */
    uint64_t spoofDrops() const { return spoofDrops_; }
    const std::vector<FleetDelivery> &deliveries() const
    {
        return deliveries_;
    }
    /** msgId → delivery count, this incarnation (exactly-once means
     * every value is 1). */
    const std::map<uint32_t, uint32_t> &deliveryCounts() const
    {
        return deliveryCounts_;
    }
    /** Deliveries across all incarnations (liveness: every accepted
     * message to this node lands at least once, eventually). */
    const std::map<uint32_t, uint32_t> &allTimeDeliveryCounts() const
    {
        return allTimeDeliveryCounts_;
    }
    /** Post-boot heap baseline (recaptured on restart). */
    uint64_t baselineFreeBytes() const { return baselineFree_; }
    uint64_t freeBytesNow();
    uint64_t safetyViolations() const
    {
        return rig_->injector.safetyViolations.value();
    }
    /** @} */

  private:
    /** Everything torn down and rebuilt by restart(). Order matters:
     * members boot in declaration order. */
    struct Rig
    {
        Rig(FleetNode &node, const FleetConfig &config);
        fault::FaultInjector injector;
        sim::Machine machine;
        rtos::Kernel kernel;
        net::NicDevice nic;
        net::NetCompartments parts;
        net::FlowCompartment flowParts;     ///< appTier only.
        net::BrokerCompartment brokerParts; ///< appTier only.
        rtos::Compartment *consumer = nullptr;
        rtos::Thread *thread = nullptr;
        std::unique_ptr<net::NetStack> stack;
        std::unique_ptr<net::FlowManager> flowMgr; ///< appTier only.
        std::unique_ptr<net::TelemetryBroker> broker;
        uint32_t brokerSub = 0;
    };

    void onDelivered(uint32_t srcMac, uint32_t msgId,
                     uint32_t sentRound);
    void captureBaseline();

    FleetConfig config_;
    uint32_t id_;
    uint32_t incarnation_ = 0;
    uint32_t currentRound_ = 0;
    uint32_t nextMsg_ = 0;
    Rng trafficRng_;
    std::unique_ptr<Rig> rig_;
    std::vector<std::vector<uint8_t>> outbox_;
    std::vector<FleetSend> sends_;
    std::vector<FleetSend> amnestySends_;
    uint64_t sendRefusals_ = 0;
    uint64_t spoofDrops_ = 0;
    std::vector<FleetDelivery> deliveries_;
    std::map<uint32_t, uint32_t> deliveryCounts_;
    std::map<uint32_t, uint32_t> allTimeDeliveryCounts_;
    uint64_t baselineFree_ = 0;
};

/** One recorded chaos-engine event (the repro breadcrumb). */
struct ChaosEventRecord
{
    uint32_t index = 0; ///< Injection index within the campaign.
    uint32_t round = 0;
    std::string kind;
    uint32_t target = 0; ///< Port / node id.
    uint32_t param = 0;
};

struct ChaosConfig
{
    uint32_t startRound = 0;
    uint32_t endRound = 0; ///< Faults clear and partitions heal here.
    /** Lossy-link profile applied to every port during the window. */
    net::LinkFaultConfig linkFaults;
    /** Every N rounds, partition one seeded-random port for
     * partitionLength rounds (0 disables). */
    uint32_t partitionPeriod = 0;
    uint32_t partitionLength = 16;
    /** Every N rounds, arm a SwitchPortStall on the fabric injector
     * (0 disables). */
    uint32_t stallPeriod = 0;
    /** Every N rounds, arm a NicLinkDrop burst on one seeded-random
     * node's injector (0 disables). */
    uint32_t linkDropPeriod = 0;
    /** Device-fault quarantine: arm quarantineSite on this node at
     * quarantineRound, restart it restartDelay rounds later
     * (-1 disables). */
    int32_t quarantineNode = -1;
    uint32_t quarantineRound = 0;
    uint32_t restartDelay = 4;
    fault::FaultSite quarantineSite = fault::FaultSite::NicRingCorrupt;
};

class Fleet;

/** Seeded, recorded schedule of fleet-level fault events. */
class ChaosEngine
{
  public:
    ChaosEngine(uint64_t seed, ChaosConfig config)
        : config_(config), rng_(Rng::forStream(seed, 0xc4a05))
    {}

    /** Serial phase hook: apply everything scheduled for @p round. */
    void apply(uint32_t round, Fleet &fleet);

    const std::vector<ChaosEventRecord> &history() const
    {
        return history_;
    }
    const ChaosConfig &config() const { return config_; }

  private:
    void record(uint32_t round, const char *kind, uint32_t target,
                uint32_t param);

    ChaosConfig config_;
    Rng rng_;
    std::vector<ChaosEventRecord> history_;
    /** port → heal round for open partitions. */
    std::map<uint32_t, uint32_t> partitionHeals_;
    bool quarantineArmed_ = false;
    bool restartDone_ = false;
};

class Fleet
{
  public:
    explicit Fleet(const FleetConfig &config);

    uint32_t size() const
    {
        return static_cast<uint32_t>(nodes_.size());
    }
    FleetNode &node(uint32_t id) { return *nodes_.at(id); }
    net::VirtualSwitch &fabric() { return switch_; }
    fault::FaultInjector &fabricInjector() { return fabricInjector_; }
    uint32_t round() const { return round_; }
    const FleetConfig &config() const { return config_; }

    /** Attach the chaos engine driven from the serial phase. */
    void setChaos(ChaosEngine *chaos) { chaos_ = chaos; }

    /** Run @p rounds barrier rounds of @p traffic. */
    void run(uint32_t rounds, const FleetTraffic &traffic);
    /** Quiesce: no new traffic, pump/retransmit until every node's
     * ARQ is idle and the fabric is empty (or the round budget runs
     * out). Returns true when fully drained. */
    bool drain(uint32_t maxRounds);

    /** Restart @p id in place and re-point its switch port at the
     * fresh NIC (the ChaosEngine quarantine path). */
    void restartNode(uint32_t id);

    /** @name Debugger attach (round-barrier safe)
     * While a node is held, run()/drain() park it: its slice is
     * skipped (the debugger owns that Machine between rounds), while
     * its outbox still drains and its NIC still receives — the rest
     * of the fleet keeps its deterministic schedule. Attach/detach
     * may only happen between rounds, which is the only time the
     * caller holds control anyway (run() is synchronous). @{ */
    void debugAttach(uint32_t id);
    void debugDetach() { debugHeld_ = -1; }
    bool debugHeld(uint32_t id) const
    {
        return debugHeld_ == static_cast<int32_t>(id);
    }
    /** @} */

    /** Fleet-wide invariant probes. @{ */
    uint64_t totalSafetyViolations();
    bool anyPeerDead();
    /** @} */

    /** MACs escalated to fabric-level quarantine (port partitioned
     * and shunned by every node), in escalation order. */
    const std::vector<uint32_t> &fabricQuarantines() const
    {
        return fabricQuarantines_;
    }

  private:
    void parallelPhase(const FleetTraffic &traffic);
    void serialPhase();

    FleetConfig config_;
    net::VirtualSwitch switch_;
    fault::FaultInjector fabricInjector_;
    std::vector<std::unique_ptr<FleetNode>> nodes_;
    std::vector<uint32_t> ports_;
    ChaosEngine *chaos_ = nullptr;
    uint32_t round_ = 0;
    /** Node id parked for a debugger, or -1. Not serialized: the
     * debugger is an observer, not fleet state. */
    int32_t debugHeld_ = -1;
    std::vector<uint32_t> fabricQuarantines_;
};

} // namespace cheriot::sim

#endif // CHERIOT_SIM_FLEET_H
