#include "sim/tracer.h"

#include <cinttypes>
#include <cstdio>

namespace cheriot::sim
{

std::vector<std::string>
RingTracer::format() const
{
    std::vector<std::string> lines;
    lines.reserve(records_.size());
    for (const TraceRecord &record : records_) {
        char buffer[128];
        std::snprintf(buffer, sizeof(buffer),
                      "%10" PRIu64 "  %08x: %s", record.cycle, record.pc,
                      isa::disassemble(record.inst, record.pc).c_str());
        lines.emplace_back(buffer);
    }
    return lines;
}

} // namespace cheriot::sim
