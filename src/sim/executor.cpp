/**
 * @file
 * Instruction semantics and per-instruction timing for the CHERIoT
 * core models.
 */

#include "sim/machine.h"

#include "util/bits.h"
#include "util/log.h"

namespace cheriot::sim
{

using cap::Capability;
using isa::Inst;
using isa::Op;

namespace
{

/** Registers read by an instruction (for the load-to-use model). */
bool
readsReg(const Inst &inst, unsigned reg)
{
    if (reg == 0) {
        return false;
    }
    switch (inst.op) {
      case Op::Lui: case Op::Auipc: case Op::Jal: case Op::Ecall:
      case Op::Ebreak: case Op::Mret: case Op::Csrrwi: case Op::Csrrsi:
      case Op::Csrrci: case Op::Illegal:
        return false;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
      case Op::Sb: case Op::Sh: case Op::Sw: case Op::Csc:
      case Op::Add: case Op::Sub: case Op::Sll: case Op::Slt:
      case Op::Sltu: case Op::Xor: case Op::Srl: case Op::Sra:
      case Op::Or: case Op::And:
      case Op::Mul: case Op::Mulh: case Op::Mulhsu: case Op::Mulhu:
      case Op::Div: case Op::Divu: case Op::Rem: case Op::Remu:
      case Op::CSeal: case Op::CUnseal: case Op::CAndPerm:
      case Op::CSetAddr: case Op::CIncAddr: case Op::CSetBounds:
      case Op::CSetBoundsExact: case Op::CTestSubset:
      case Op::CSetEqualExact:
        return inst.rs1 == reg || inst.rs2 == reg;
      default:
        return inst.rs1 == reg;
    }
}

} // namespace

void
Machine::execute(const Inst &inst, uint32_t pc)
{
    const CoreConfig &cc = config_.core;
    const bool cheri = cc.cheriEnabled;

    // Load-to-use stall: a consumer immediately in a load's shadow.
    if (pendingLoadReg_ != isa::kNumRegs &&
        readsReg(inst, pendingLoadReg_)) {
        advance(cc.loadToUsePenalty, 0);
    }
    pendingLoadReg_ = isa::kNumRegs;

    const uint32_t nextPc = pc + 4;
    const Capability rs1 = readReg(inst.rs1);
    const Capability rs2 = readReg(inst.rs2);
    const uint32_t v1 = rs1.address();
    const uint32_t v2 = rs2.address();

    // Common tails -----------------------------------------------------
    auto fallthrough = [&](unsigned cycleCount) {
        pcc_ = pcc_.withAddress(nextPc);
        advance(cycleCount, 0);
    };
    auto intResult = [&](uint32_t value) {
        writeRegInt(inst.rd, value);
        fallthrough(1);
    };
    auto capResult = [&](const Capability &value) {
        writeReg(inst.rd, value);
        fallthrough(1);
    };
    auto trap = [&](TrapCause cause, uint32_t tval) {
        raiseTrap(cause, tval);
    };

    // Memory authorities: in baseline RV32E mode an almighty implicit
    // capability stands in for the absent checks.
    auto authority = [&]() -> Capability {
        return cheri ? rs1 : Capability::memoryRoot().withAddress(v1);
    };

    switch (inst.op) {
      case Op::Illegal:
        trap(TrapCause::IllegalInstruction, 0);
        return;

      case Op::Lui:
        intResult(static_cast<uint32_t>(inst.imm));
        return;

      case Op::Auipc:
        // AUIPCC: derive a PCC-relative capability (plain integer in
        // baseline mode).
        if (cheri) {
            capResult(pcc_.withAddress(pc + inst.imm));
        } else {
            intResult(pc + inst.imm);
        }
        return;

      case Op::Jal: {
        if (inst.rd != 0) {
            if (cheri) {
                // Link is sealed as a return sentry capturing the
                // current interrupt posture (§3.1.2).
                Capability link = pcc_.withAddress(nextPc);
                link = link.sealedWith(cap::returnSentryFor(csrs_.mie));
                writeReg(inst.rd, link);
            } else {
                writeRegInt(inst.rd, nextPc);
            }
        }
        pcc_ = pcc_.withAddress(pc + inst.imm);
        advance(1 + cc.jumpPenalty, 0);
        return;
      }

      case Op::Jalr: {
        if (!cheri) {
            if (inst.rd != 0) {
                writeRegInt(inst.rd, nextPc);
            }
            pcc_ = pcc_.withAddress((v1 + inst.imm) & ~1u);
            advance(1 + cc.jumpPenalty, 0);
            return;
        }
        Capability target = rs1;
        if (!target.tag()) {
            trap(TrapCause::CheriTagViolation, inst.rs1);
            return;
        }
        bool setPosture = false;
        bool newPosture = csrs_.mie;
        if (target.isSealed()) {
            if (target.isForwardSentry()) {
                if (inst.imm != 0) {
                    trap(TrapCause::CheriSealViolation, inst.rs1);
                    return;
                }
                const auto posture = cap::sentryPosture(target.otype());
                if (posture != cap::InterruptPosture::Inherit) {
                    setPosture = true;
                    newPosture =
                        posture == cap::InterruptPosture::Enabled;
                }
                target = target.unsealedCopy();
            } else if (target.isReturnSentry()) {
                if (inst.imm != 0) {
                    trap(TrapCause::CheriSealViolation, inst.rs1);
                    return;
                }
                setPosture = true;
                newPosture =
                    cap::returnSentryEnablesInterrupts(target.otype());
                target = target.unsealedCopy();
            } else {
                trap(TrapCause::CheriSealViolation, inst.rs1);
                return;
            }
        }
        if (!target.perms().has(cap::PermExecute)) {
            trap(TrapCause::CheriPermViolation, inst.rs1);
            return;
        }
        if (inst.rd != 0) {
            Capability link = pcc_.withAddress(nextPc);
            link = link.sealedWith(cap::returnSentryFor(csrs_.mie));
            writeReg(inst.rd, link);
        }
        if (setPosture) {
            csrs_.mie = newPosture;
        }
        pcc_ = target.withAddress((target.address() + inst.imm) & ~1u);
        advance(1 + cc.jumpPenalty, 0);
        return;
      }

      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu: {
        bool taken = false;
        switch (inst.op) {
          case Op::Beq: taken = v1 == v2; break;
          case Op::Bne: taken = v1 != v2; break;
          case Op::Blt:
            taken = static_cast<int32_t>(v1) < static_cast<int32_t>(v2);
            break;
          case Op::Bge:
            taken = static_cast<int32_t>(v1) >= static_cast<int32_t>(v2);
            break;
          case Op::Bltu: taken = v1 < v2; break;
          case Op::Bgeu: taken = v1 >= v2; break;
          default: break;
        }
        pcc_ = pcc_.withAddress(taken ? pc + inst.imm : nextPc);
        advance(taken ? 1 + cc.takenBranchPenalty : 1, 0);
        return;
      }

      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu: {
        const unsigned bytes =
            (inst.op == Op::Lb || inst.op == Op::Lbu) ? 1
            : (inst.op == Op::Lh || inst.op == Op::Lhu) ? 2 : 4;
        const bool sign = inst.op == Op::Lb || inst.op == Op::Lh;
        const uint32_t addr = v1 + inst.imm;
        uint32_t value = 0;
        const TrapCause cause =
            loadData(authority(), addr, bytes, sign, &value);
        if (cause != TrapCause::None) {
            trap(cause, addr);
            return;
        }
        writeRegInt(inst.rd, value);
        pendingLoadReg_ = inst.rd;
        pcc_ = pcc_.withAddress(nextPc);
        return;
      }

      case Op::Sb: case Op::Sh: case Op::Sw: {
        const unsigned bytes = inst.op == Op::Sb ? 1
                               : inst.op == Op::Sh ? 2 : 4;
        const uint32_t addr = v1 + inst.imm;
        const TrapCause cause = storeData(authority(), addr, bytes, v2);
        if (cause != TrapCause::None) {
            trap(cause, addr);
            return;
        }
        pcc_ = pcc_.withAddress(nextPc);
        return;
      }

      case Op::Clc: {
        if (!cheri) {
            trap(TrapCause::IllegalInstruction, 0);
            return;
        }
        const uint32_t addr = v1 + inst.imm;
        Capability value;
        const TrapCause cause = loadCap(rs1, addr, &value);
        if (cause != TrapCause::None) {
            trap(cause, addr);
            return;
        }
        writeReg(inst.rd, value);
        pendingLoadReg_ = inst.rd;
        pcc_ = pcc_.withAddress(nextPc);
        return;
      }

      case Op::Csc: {
        if (!cheri) {
            trap(TrapCause::IllegalInstruction, 0);
            return;
        }
        const uint32_t addr = v1 + inst.imm;
        const TrapCause cause = storeCap(rs1, addr, rs2);
        if (cause != TrapCause::None) {
            trap(cause, addr);
            return;
        }
        pcc_ = pcc_.withAddress(nextPc);
        return;
      }

      case Op::Addi: intResult(v1 + inst.imm); return;
      case Op::Slti:
        intResult(static_cast<int32_t>(v1) < inst.imm ? 1 : 0);
        return;
      case Op::Sltiu:
        intResult(v1 < static_cast<uint32_t>(inst.imm) ? 1 : 0);
        return;
      case Op::Xori: intResult(v1 ^ inst.imm); return;
      case Op::Ori: intResult(v1 | inst.imm); return;
      case Op::Andi: intResult(v1 & inst.imm); return;
      case Op::Slli: intResult(v1 << inst.imm); return;
      case Op::Srli: intResult(v1 >> inst.imm); return;
      case Op::Srai:
        intResult(static_cast<uint32_t>(static_cast<int32_t>(v1) >>
                                        inst.imm));
        return;
      case Op::Add: intResult(v1 + v2); return;
      case Op::Sub: intResult(v1 - v2); return;
      case Op::Sll: intResult(v1 << (v2 & 31)); return;
      case Op::Slt:
        intResult(static_cast<int32_t>(v1) < static_cast<int32_t>(v2) ? 1
                                                                      : 0);
        return;
      case Op::Sltu: intResult(v1 < v2 ? 1 : 0); return;
      case Op::Xor: intResult(v1 ^ v2); return;
      case Op::Srl: intResult(v1 >> (v2 & 31)); return;
      case Op::Sra:
        intResult(static_cast<uint32_t>(static_cast<int32_t>(v1) >>
                                        (v2 & 31)));
        return;
      case Op::Or: intResult(v1 | v2); return;
      case Op::And: intResult(v1 & v2); return;

      case Op::Mul:
        writeRegInt(inst.rd, v1 * v2);
        fallthrough(cc.mulCycles);
        return;
      case Op::Mulh: {
        const int64_t product = static_cast<int64_t>(
                                    static_cast<int32_t>(v1)) *
                                static_cast<int32_t>(v2);
        writeRegInt(inst.rd, static_cast<uint32_t>(product >> 32));
        fallthrough(cc.mulCycles);
        return;
      }
      case Op::Mulhsu: {
        const int64_t product =
            static_cast<int64_t>(static_cast<int32_t>(v1)) * v2;
        writeRegInt(inst.rd, static_cast<uint32_t>(product >> 32));
        fallthrough(cc.mulCycles);
        return;
      }
      case Op::Mulhu: {
        const uint64_t product = static_cast<uint64_t>(v1) * v2;
        writeRegInt(inst.rd, static_cast<uint32_t>(product >> 32));
        fallthrough(cc.mulCycles);
        return;
      }
      case Op::Div: {
        int32_t result;
        if (v2 == 0) {
            result = -1;
        } else if (v1 == 0x80000000u && v2 == 0xffffffffu) {
            result = static_cast<int32_t>(0x80000000u);
        } else {
            result = static_cast<int32_t>(v1) / static_cast<int32_t>(v2);
        }
        writeRegInt(inst.rd, static_cast<uint32_t>(result));
        fallthrough(cc.divCycles);
        return;
      }
      case Op::Divu:
        writeRegInt(inst.rd, v2 == 0 ? 0xffffffffu : v1 / v2);
        fallthrough(cc.divCycles);
        return;
      case Op::Rem: {
        int32_t result;
        if (v2 == 0) {
            result = static_cast<int32_t>(v1);
        } else if (v1 == 0x80000000u && v2 == 0xffffffffu) {
            result = 0;
        } else {
            result = static_cast<int32_t>(v1) % static_cast<int32_t>(v2);
        }
        writeRegInt(inst.rd, static_cast<uint32_t>(result));
        fallthrough(cc.divCycles);
        return;
      }
      case Op::Remu:
        writeRegInt(inst.rd, v2 == 0 ? v1 : v1 % v2);
        fallthrough(cc.divCycles);
        return;

      case Op::Ecall:
        trap(TrapCause::EcallM, 0);
        return;
      case Op::Ebreak:
        halt_ = HaltReason::Breakpoint;
        return;
      case Op::Mret:
        if (cheri && !pcc_.perms().has(cap::PermSystemRegs)) {
            trap(TrapCause::CheriPermViolation, 0);
            return;
        }
        csrs_.mie = csrs_.mpie;
        pcc_ = csrs_.mepcc.unsealedCopy();
        advance(1 + cc.jumpPenalty, 0);
        return;

      case Op::Csrrw: case Op::Csrrs: case Op::Csrrc:
      case Op::Csrrwi: case Op::Csrrsi: case Op::Csrrci: {
        if (cheri && CsrFile::requiresSystemRegs(inst.csr) &&
            !pcc_.perms().has(cap::PermSystemRegs)) {
            trap(TrapCause::CheriPermViolation, inst.csr);
            return;
        }
        uint32_t old = 0;
        if (!csrs_.read(inst.csr, cycles_, &old)) {
            trap(TrapCause::IllegalInstruction, inst.csr);
            return;
        }
        const bool isImm = inst.op == Op::Csrrwi ||
                           inst.op == Op::Csrrsi || inst.op == Op::Csrrci;
        const uint32_t operand =
            isImm ? static_cast<uint32_t>(inst.imm) : v1;
        uint32_t newValue = old;
        bool doWrite = true;
        switch (inst.op) {
          case Op::Csrrw: case Op::Csrrwi:
            newValue = operand;
            break;
          case Op::Csrrs: case Op::Csrrsi:
            newValue = old | operand;
            doWrite = operand != 0;
            break;
          case Op::Csrrc: case Op::Csrrci:
            newValue = old & ~operand;
            doWrite = operand != 0;
            break;
          default: break;
        }
        if (doWrite) {
            csrs_.write(inst.csr, newValue);
        }
        intResult(old);
        return;
      }

      // --- CHERIoT capability instructions ---------------------------
      case Op::CGetPerm: intResult(rs1.perms().mask()); return;
      case Op::CGetType: {
        const uint32_t type =
            rs1.isSealed()
                ? rs1.otype() +
                      (rs1.isExecutable() ? cap::kExecOtypeAddressBase : 0)
                : 0;
        intResult(type);
        return;
      }
      case Op::CGetBase: intResult(rs1.base()); return;
      case Op::CGetLen: {
        const uint64_t length = rs1.length();
        intResult(length > 0xffffffffull
                      ? 0xffffffffu
                      : static_cast<uint32_t>(length));
        return;
      }
      case Op::CGetTop: {
        const uint64_t top = rs1.top();
        intResult(top > 0xffffffffull ? 0xffffffffu
                                      : static_cast<uint32_t>(top));
        return;
      }
      case Op::CGetTag: intResult(rs1.tag() ? 1 : 0); return;
      case Op::CGetAddr: intResult(v1); return;

      case Op::CSeal: {
        const auto sealed = cap::seal(rs1, rs2);
        capResult(sealed ? *sealed : rs1.withTagCleared());
        return;
      }
      case Op::CUnseal: {
        const auto unsealed = cap::unseal(rs1, rs2);
        capResult(unsealed ? *unsealed : rs1.withTagCleared());
        return;
      }
      case Op::CAndPerm:
        capResult(rs1.withPermsAnd(static_cast<uint16_t>(v2)));
        return;
      case Op::CSetAddr: capResult(rs1.withAddress(v2)); return;
      case Op::CIncAddr: capResult(rs1.withAddressOffset(v2)); return;
      case Op::CIncAddrImm:
        capResult(rs1.withAddressOffset(inst.imm));
        return;
      case Op::CSetBounds: capResult(rs1.withBounds(v2)); return;
      case Op::CSetBoundsExact: capResult(rs1.withBoundsExact(v2)); return;
      case Op::CSetBoundsImm:
        capResult(rs1.withBounds(static_cast<uint32_t>(inst.imm)));
        return;
      case Op::CTestSubset:
        intResult(cap::isSubsetOf(rs2, rs1) ? 1 : 0);
        return;
      case Op::CSetEqualExact: intResult(rs1 == rs2 ? 1 : 0); return;
      case Op::CMove: capResult(rs1); return;
      case Op::CClearTag: capResult(rs1.withTagCleared()); return;
      case Op::CRrl:
        intResult(static_cast<uint32_t>(cap::representableLength(v1)));
        return;
      case Op::CRam: intResult(cap::representableAlignmentMask(v1)); return;
      case Op::CSealEntry: {
        const auto posture = static_cast<cap::InterruptPosture>(inst.imm);
        const auto sentry = cap::makeSentry(rs1, posture);
        capResult(sentry ? *sentry : rs1.withTagCleared());
        return;
      }
      case Op::CSpecialRw: {
        if (cheri && !pcc_.perms().has(cap::PermSystemRegs)) {
            trap(TrapCause::CheriPermViolation, inst.imm);
            return;
        }
        Capability *scr = csrs_.scr(static_cast<isa::Scr>(inst.imm));
        if (scr == nullptr) {
            trap(TrapCause::IllegalInstruction, inst.imm);
            return;
        }
        const Capability old = *scr;
        if (inst.rs1 != 0) {
            *scr = rs1;
        }
        capResult(old);
        return;
      }
    }
    panic("execute: unhandled op %s", isa::opName(inst.op));
}

} // namespace cheriot::sim
