#include "mem/memory_map.h"

#include "util/log.h"

namespace cheriot::mem
{

uint8_t
PhysicalMemory::read8(uint32_t addr)
{
    if (isSram(addr, 1)) {
        return sram_.read8(addr);
    }
    // Sub-word MMIO access reads the containing register and extracts.
    const uint32_t word = mmio_.read32(addr & ~3u);
    return static_cast<uint8_t>(word >> ((addr & 3u) * 8));
}

uint16_t
PhysicalMemory::read16(uint32_t addr)
{
    if (isSram(addr, 2)) {
        return sram_.read16(addr);
    }
    const uint32_t word = mmio_.read32(addr & ~3u);
    return static_cast<uint16_t>(word >> ((addr & 2u) * 8));
}

uint32_t
PhysicalMemory::read32(uint32_t addr)
{
    if (isSram(addr, 4)) {
        return sram_.read32(addr);
    }
    return mmio_.read32(addr);
}

void
PhysicalMemory::write8(uint32_t addr, uint8_t value)
{
    if (isSram(addr, 1)) {
        sram_.write8(addr, value);
        return;
    }
    // Read-modify-write for sub-word MMIO stores.
    const uint32_t aligned = addr & ~3u;
    uint32_t word = mmio_.read32(aligned);
    const unsigned shift = (addr & 3u) * 8;
    word = (word & ~(0xffu << shift)) | (uint32_t{value} << shift);
    mmio_.write32(aligned, word);
}

void
PhysicalMemory::write16(uint32_t addr, uint16_t value)
{
    if (isSram(addr, 2)) {
        sram_.write16(addr, value);
        return;
    }
    const uint32_t aligned = addr & ~3u;
    uint32_t word = mmio_.read32(aligned);
    const unsigned shift = (addr & 2u) * 8;
    word = (word & ~(0xffffu << shift)) | (uint32_t{value} << shift);
    mmio_.write32(aligned, word);
}

void
PhysicalMemory::write32(uint32_t addr, uint32_t value)
{
    if (isSram(addr, 4)) {
        sram_.write32(addr, value);
        return;
    }
    mmio_.write32(addr, value);
}

RawCapBits
PhysicalMemory::readCap(uint32_t addr)
{
    if (isSram(addr, 8)) {
        return sram_.readCap(addr);
    }
    const uint32_t lo = mmio_.read32(addr);
    const uint32_t hi = mmio_.read32(addr + 4);
    RawCapBits out;
    out.bits = (static_cast<uint64_t>(hi) << 32) | lo;
    out.tag = false;
    out.halfTag0 = false;
    out.halfTag1 = false;
    return out;
}

void
PhysicalMemory::writeCap(uint32_t addr, uint64_t capBits, bool tag)
{
    if (isSram(addr, 8)) {
        sram_.writeCap(addr, capBits, tag);
        return;
    }
    (void)tag; // Tags never reach MMIO.
    mmio_.write32(addr, static_cast<uint32_t>(capBits));
    mmio_.write32(addr + 4, static_cast<uint32_t>(capBits >> 32));
}

} // namespace cheriot::mem
