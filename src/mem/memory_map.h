/**
 * @file
 * The SoC physical memory map and the PhysicalMemory front-end that
 * routes accesses between tagged SRAM and MMIO devices.
 *
 * The layout mirrors a small CHERIoT SoC: one tightly coupled SRAM
 * bank holding code, globals, stacks and heap, plus MMIO windows for
 * the revocation bitmap (accessible only to the allocator
 * compartment; the loader enforces that), the background revoker, a
 * console, and a timer.
 */

#ifndef CHERIOT_MEM_MEMORY_MAP_H
#define CHERIOT_MEM_MEMORY_MAP_H

#include "mem/mmio.h"
#include "mem/tagged_memory.h"

namespace cheriot::mem
{

/** @name Fixed window bases @{ */
constexpr uint32_t kSramBase = 0x20000000;
constexpr uint32_t kRevocationBitmapBase = 0x30000000;
constexpr uint32_t kRevokerMmioBase = 0x30010000;
constexpr uint32_t kRevokerMmioSize = 0x100;
constexpr uint32_t kConsoleMmioBase = 0x30020000;
constexpr uint32_t kConsoleMmioSize = 0x100;
constexpr uint32_t kTimerMmioBase = 0x30030000;
constexpr uint32_t kTimerMmioSize = 0x100;
/** Read-only allocator/quarantine telemetry (admission control). */
constexpr uint32_t kHeapPressureMmioBase = 0x30040000;
constexpr uint32_t kHeapPressureMmioSize = 0x100;
/** NIC with DMA descriptor rings (driver compartment only). */
constexpr uint32_t kNicMmioBase = 0x30050000;
constexpr uint32_t kNicMmioSize = 0x100;
/** @} */

/**
 * Aggregates SRAM and MMIO behind one access interface.
 *
 * All accesses are *physical*: the capability/permission checks have
 * already been performed by the core. Accesses that hit neither SRAM
 * nor a device report failure so the core can raise a bus-error trap.
 */
class PhysicalMemory
{
  public:
    explicit PhysicalMemory(uint32_t sramSize)
        : sram_(kSramBase, sramSize)
    {}

    TaggedMemory &sram() { return sram_; }
    const TaggedMemory &sram() const { return sram_; }
    MmioBus &mmio() { return mmio_; }

    bool isSram(uint32_t addr, uint32_t bytes) const
    {
        return sram_.contains(addr, bytes);
    }
    bool isMmio(uint32_t addr, uint32_t bytes) const
    {
        return mmio_.covers(addr, bytes);
    }
    bool isMapped(uint32_t addr, uint32_t bytes) const
    {
        return isSram(addr, bytes) || isMmio(addr, bytes);
    }

    /** @name Routed data access @{ */
    uint8_t read8(uint32_t addr);
    uint16_t read16(uint32_t addr);
    uint32_t read32(uint32_t addr);
    void write8(uint32_t addr, uint8_t value);
    void write16(uint32_t addr, uint16_t value);
    void write32(uint32_t addr, uint32_t value);
    /** @} */

    /** Capability granule read; MMIO reads are always untagged. */
    RawCapBits readCap(uint32_t addr);
    /** Capability granule write; tags never reach MMIO. */
    void writeCap(uint32_t addr, uint64_t bits, bool tag);

  private:
    TaggedMemory sram_;
    MmioBus mmio_;
};

} // namespace cheriot::mem

#endif // CHERIOT_MEM_MEMORY_MAP_H
