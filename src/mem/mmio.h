/**
 * @file
 * Memory-mapped I/O device interface and routing.
 *
 * MMIO regions carry no capability tags: capability loads from MMIO
 * always return untagged values and capability stores strip the tag,
 * so devices can never launder authority.
 */

#ifndef CHERIOT_MEM_MMIO_H
#define CHERIOT_MEM_MMIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::mem
{

/** A device mapped into the physical address space. */
class MmioDevice
{
  public:
    virtual ~MmioDevice() = default;

    /** Device name for diagnostics. */
    virtual std::string name() const = 0;

    /** 32-bit register read at byte @p offset within the region. */
    virtual uint32_t read32(uint32_t offset) = 0;

    /** 32-bit register write at byte @p offset within the region. */
    virtual void write32(uint32_t offset, uint32_t value) = 0;
};

/** Routes physical addresses to registered MMIO devices. */
class MmioBus
{
  public:
    /** Map @p device at [base, base + size). Ranges must not overlap. */
    void map(uint32_t base, uint32_t size, MmioDevice *device);

    /** Device covering @p addr, or nullptr. */
    MmioDevice *deviceAt(uint32_t addr, uint32_t *regionBase = nullptr) const;

    bool covers(uint32_t addr, uint32_t bytes) const;

    uint32_t read32(uint32_t addr) const;
    void write32(uint32_t addr, uint32_t value) const;

  private:
    struct Mapping
    {
        uint32_t base;
        uint32_t size;
        MmioDevice *device;
    };
    std::vector<Mapping> mappings_;
};

} // namespace cheriot::mem

#endif // CHERIOT_MEM_MMIO_H
