#include "mem/tagged_memory.h"

#include "snapshot/serializer.h"
#include "util/bits.h"
#include "util/log.h"

#include <cstring>

namespace cheriot::mem
{

TaggedMemory::TaggedMemory(uint32_t base, uint32_t size)
    : base_(base), size_(size), data_(size, 0),
      microTags_((size + 7) / 8, 0), stats_("sram")
{
    if (size % 8 != 0) {
        fatal("TaggedMemory size 0x%x is not a multiple of the 8-byte "
              "capability granule", size);
    }
    stats_.registerCounter("reads", reads);
    stats_.registerCounter("writes", writes);
    stats_.registerCounter("capReads", capReads);
    stats_.registerCounter("capWrites", capWrites);
    stats_.registerCounter("tagClears", tagClears);
}

uint32_t
TaggedMemory::offsetOf(uint32_t addr, uint32_t bytes, uint32_t align) const
{
    if (!contains(addr, bytes)) {
        panic("SRAM access at 0x%08x (+%u) outside [0x%08x, 0x%08x)", addr,
              bytes, base_, base_ + size_);
    }
    if (addr % align != 0) {
        panic("SRAM access at 0x%08x not %u-byte aligned", addr, align);
    }
    return addr - base_;
}

uint8_t
TaggedMemory::read8(uint32_t addr) const
{
    const uint32_t off = offsetOf(addr, 1, 1);
    const_cast<Counter &>(reads)++;
    return data_[off];
}

uint16_t
TaggedMemory::read16(uint32_t addr) const
{
    const uint32_t off = offsetOf(addr, 2, 2);
    const_cast<Counter &>(reads)++;
    uint16_t value;
    std::memcpy(&value, &data_[off], sizeof(value));
    return value;
}

uint32_t
TaggedMemory::read32(uint32_t addr) const
{
    const uint32_t off = offsetOf(addr, 4, 4);
    const_cast<Counter &>(reads)++;
    uint32_t value;
    std::memcpy(&value, &data_[off], sizeof(value));
    return value;
}

uint32_t
TaggedMemory::peek32(uint32_t addr) const
{
    const uint32_t off = offsetOf(addr, 4, 4);
    uint32_t value;
    std::memcpy(&value, &data_[off], sizeof(value));
    return value;
}

uint8_t
TaggedMemory::peek8(uint32_t addr) const
{
    return data_[offsetOf(addr, 1, 1)];
}

void
TaggedMemory::debugWrite8(uint32_t addr, uint8_t value)
{
    const uint32_t off = offsetOf(addr, 1, 1);
    data_[off] = value;
    // The tag-clearing rule is architectural, not a counter: a
    // debugger poke still invalidates the half-granule it disturbs
    // (no back door for forging capabilities), but the access
    // counters stay untouched so a detach leaves the serialized
    // machine state bit-identical to an undebugged run.
    microTags_[off / 8] &= static_cast<uint8_t>(
        ~((off % 8) < 4 ? 0x1 : 0x2));
}

void
TaggedMemory::write8(uint32_t addr, uint8_t value)
{
    const uint32_t off = offsetOf(addr, 1, 1);
    writes++;
    data_[off] = value;
    const uint32_t granule = off / 8;
    const uint8_t halfMask = (off % 8) < 4 ? 0x1 : 0x2;
    if (microTags_[granule] & halfMask) {
        tagClears++;
    }
    microTags_[granule] &= ~halfMask;
}

void
TaggedMemory::write16(uint32_t addr, uint16_t value)
{
    const uint32_t off = offsetOf(addr, 2, 2);
    writes++;
    std::memcpy(&data_[off], &value, sizeof(value));
    const uint32_t granule = off / 8;
    const uint8_t halfMask = (off % 8) < 4 ? 0x1 : 0x2;
    if (microTags_[granule] & halfMask) {
        tagClears++;
    }
    microTags_[granule] &= ~halfMask;
}

void
TaggedMemory::write32(uint32_t addr, uint32_t value)
{
    const uint32_t off = offsetOf(addr, 4, 4);
    writes++;
    std::memcpy(&data_[off], &value, sizeof(value));
    const uint32_t granule = off / 8;
    const uint8_t halfMask = (off % 8) < 4 ? 0x1 : 0x2;
    if (microTags_[granule] & halfMask) {
        tagClears++;
    }
    microTags_[granule] &= ~halfMask;
}

RawCapBits
TaggedMemory::readCap(uint32_t addr) const
{
    const uint32_t off = offsetOf(addr, 8, 8);
    const_cast<Counter &>(capReads)++;
    uint64_t bits;
    std::memcpy(&bits, &data_[off], sizeof(bits));
    const uint8_t tags = microTags_[off / 8];
    RawCapBits out;
    out.bits = bits;
    out.halfTag0 = (tags & 0x1) != 0;
    out.halfTag1 = (tags & 0x2) != 0;
    out.tag = out.halfTag0 && out.halfTag1;
    return out;
}

void
TaggedMemory::writeCap(uint32_t addr, uint64_t capBits, bool tag)
{
    const uint32_t off = offsetOf(addr, 8, 8);
    capWrites++;
    std::memcpy(&data_[off], &capBits, sizeof(capBits));
    microTags_[off / 8] = tag ? 0x3 : 0x0;
}

void
TaggedMemory::clearCapTag(uint32_t addr)
{
    const uint32_t off = offsetOf(addr, 8, 8);
    capWrites++;
    microTags_[off / 8] = 0;
}

bool
TaggedMemory::tagAt(uint32_t addr) const
{
    const uint32_t off = offsetOf(alignDown<uint32_t>(addr, 8), 8, 8);
    return microTags_[off / 8] == 0x3;
}

void
TaggedMemory::zeroRange(uint32_t addr, uint32_t bytes)
{
    if (bytes == 0) {
        return;
    }
    const uint32_t off = offsetOf(addr, bytes, 1);
    std::memset(&data_[off], 0, bytes);
    const uint32_t firstGranule = off / 8;
    const uint32_t lastGranule = (off + bytes - 1) / 8;
    for (uint32_t g = firstGranule; g <= lastGranule; ++g) {
        // Zeroing clears micro-tags for any half the range overlaps.
        const uint32_t granuleStart = g * 8;
        if (off < granuleStart + 4 && off + bytes > granuleStart) {
            microTags_[g] &= ~0x1;
        }
        if (off < granuleStart + 8 && off + bytes > granuleStart + 4) {
            microTags_[g] &= ~0x2;
        }
    }
}

void
TaggedMemory::injectDataFlip(uint32_t addr, uint32_t bit, bool failSafe)
{
    const uint32_t off = offsetOf(alignDown<uint32_t>(addr, 8), 8, 8);
    data_[off + (bit / 8) % 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    if (failSafe) {
        const uint8_t halfMask = (bit % 64) < 32 ? 0x1 : 0x2;
        if (microTags_[off / 8] & halfMask) {
            tagClears++;
        }
        microTags_[off / 8] &= ~halfMask;
    }
}

void
TaggedMemory::injectTagClear(uint32_t addr)
{
    const uint32_t off = offsetOf(alignDown<uint32_t>(addr, 8), 8, 8);
    if (microTags_[off / 8] != 0) {
        tagClears++;
    }
    microTags_[off / 8] = 0;
}

void
TaggedMemory::serialize(snapshot::Writer &w) const
{
    w.u32(base_);
    w.u32(size_);
    w.bytes(data_.data(), data_.size());
    w.bytes(microTags_.data(), microTags_.size());
    w.counter(reads);
    w.counter(writes);
    w.counter(capReads);
    w.counter(capWrites);
    w.counter(tagClears);
}

uint32_t
TaggedMemory::contentsDigest() const
{
    const uint32_t dataCrc =
        snapshot::crc32(data_.data(), data_.size());
    return snapshot::crc32(microTags_.data(), microTags_.size(), dataCrc);
}

bool
TaggedMemory::deserialize(snapshot::Reader &r)
{
    if (r.u32() != base_ || r.u32() != size_) {
        return false;
    }
    r.bytes(data_.data(), data_.size());
    r.bytes(microTags_.data(), microTags_.size());
    r.counter(reads);
    r.counter(writes);
    r.counter(capReads);
    r.counter(capWrites);
    r.counter(tagClears);
    return r.ok();
}

} // namespace cheriot::mem
