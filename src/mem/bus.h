/**
 * @file
 * Data-bus width models (paper §4).
 *
 * Flute has a 65-bit memory bus (64 data bits plus the tag), so a
 * capability moves in one beat. CHERIoT-Ibex keeps the original Ibex
 * 32-bit interface widened only to 33 bits (32 data + a micro-tag),
 * so a capability needs two beats; this is why capability-heavy code
 * shows larger overheads on Ibex (Table 3) and why zeroing is
 * proportionately more expensive there (§7.2.2).
 */

#ifndef CHERIOT_MEM_BUS_H
#define CHERIOT_MEM_BUS_H

#include <cstdint>

namespace cheriot::mem
{

/** Width of the data bus between core and tightly coupled SRAM. */
enum class BusWidth : uint8_t
{
    Wide65,   ///< 64-bit data + tag (Flute).
    Narrow33, ///< 32-bit data + micro-tag (Ibex).
};

/** Bus beats to move one capability (8 bytes + tag). */
constexpr unsigned
capBeats(BusWidth width)
{
    return width == BusWidth::Wide65 ? 1 : 2;
}

/** Bus beats to move @p bytes of ordinary data (max 8). */
constexpr unsigned
dataBeats(BusWidth width, unsigned bytes)
{
    const unsigned beatBytes = width == BusWidth::Wide65 ? 8 : 4;
    return (bytes + beatBytes - 1) / beatBytes;
}

/** Bus beats to zero @p bytes of memory. */
constexpr unsigned
zeroBeats(BusWidth width, uint32_t bytes)
{
    const unsigned beatBytes = width == BusWidth::Wide65 ? 8 : 4;
    return (bytes + beatBytes - 1) / beatBytes;
}

const char *busWidthName(BusWidth width);

} // namespace cheriot::mem

#endif // CHERIOT_MEM_BUS_H
