/**
 * @file
 * Data-bus width models (paper §4).
 *
 * Flute has a 65-bit memory bus (64 data bits plus the tag), so a
 * capability moves in one beat. CHERIoT-Ibex keeps the original Ibex
 * 32-bit interface widened only to 33 bits (32 data + a micro-tag),
 * so a capability needs two beats; this is why capability-heavy code
 * shows larger overheads on Ibex (Table 3) and why zeroing is
 * proportionately more expensive there (§7.2.2).
 */

#ifndef CHERIOT_MEM_BUS_H
#define CHERIOT_MEM_BUS_H

#include "util/stats.h"

#include <cstdint>

namespace cheriot::fault
{
class FaultInjector;
}

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::mem
{

/** Width of the data bus between core and tightly coupled SRAM. */
enum class BusWidth : uint8_t
{
    Wide65,   ///< 64-bit data + tag (Flute).
    Narrow33, ///< 32-bit data + micro-tag (Ibex).
};

/** Bus beats to move one capability (8 bytes + tag). */
constexpr unsigned
capBeats(BusWidth width)
{
    return width == BusWidth::Wide65 ? 1 : 2;
}

/** Bus beats to move @p bytes of ordinary data (max 8). */
constexpr unsigned
dataBeats(BusWidth width, unsigned bytes)
{
    const unsigned beatBytes = width == BusWidth::Wide65 ? 8 : 4;
    return (bytes + beatBytes - 1) / beatBytes;
}

/** Bus beats to zero @p bytes of memory. */
constexpr unsigned
zeroBeats(BusWidth width, uint32_t bytes)
{
    const unsigned beatBytes = width == BusWidth::Wide65 ? 8 : 4;
    return (bytes + beatBytes - 1) / beatBytes;
}

const char *busWidthName(BusWidth width);

/** Outcome of one bus transaction through the retry machinery. */
struct BusResult
{
    bool ok = true;           ///< False: retries exhausted (bus error).
    uint32_t extraCycles = 0; ///< Cycles beyond the fault-free cost.
    uint32_t retries = 0;     ///< Replays performed.
};

/**
 * Transaction-level bus model with bounded retry + backoff.
 *
 * The fault-free path is free: timing stays exactly the beat counts
 * the cycle model already charges. When a fault injector reports a
 * dropped transaction the initiator replays it, doubling a small
 * backoff each attempt (glitches from e.g. supply noise are bursty,
 * so immediate replay tends to fail again); after kMaxRetries the
 * transaction errors out and the core sees an access fault. Late
 * (delayed) transactions simply stretch the port-busy window.
 */
class Bus
{
  public:
    /** Replays before a transaction is declared dead. */
    static constexpr uint32_t kMaxRetries = 4;
    /** First-retry backoff in cycles; doubles per attempt. */
    static constexpr uint32_t kBackoffBase = 2;

    explicit Bus(BusWidth width) : width_(width)
    {
        stats_.registerCounter("transactions", transactions);
        stats_.registerCounter("retries", retries);
        stats_.registerCounter("delayCycles", delayCycles);
        stats_.registerCounter("errors", errors);
        stats_.registerCounter("beats", beats);
    }

    BusWidth width() const { return width_; }

    /**
     * Run one transaction of @p beats beats. @p injector may inject
     * drops (replayed with backoff) or latency; null means fault-free.
     */
    BusResult transact(unsigned beats, fault::FaultInjector *injector);

    /** @name Snapshot state (the bus itself is stateless; counters) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    Counter transactions; ///< Transactions initiated.
    Counter retries;      ///< Replays after drops.
    Counter delayCycles;  ///< Cycles lost to delays and backoff.
    Counter errors;       ///< Transactions that exhausted retries.
    /** Data beats moved on the core's load-store port. Diagnostic
     * only — not serialized, so snapshot layout and determinism
     * digests are unchanged. */
    Counter beats;

    StatGroup &stats() { return stats_; }

  private:
    BusWidth width_;
    StatGroup stats_{"bus"};
};

} // namespace cheriot::mem

#endif // CHERIOT_MEM_BUS_H
