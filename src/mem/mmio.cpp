#include "mem/mmio.h"

#include "util/log.h"

namespace cheriot::mem
{

void
MmioBus::map(uint32_t base, uint32_t size, MmioDevice *device)
{
    for (const auto &mapping : mappings_) {
        const bool overlaps =
            base < mapping.base + mapping.size && mapping.base < base + size;
        if (overlaps) {
            fatal("MMIO mapping for %s at 0x%08x overlaps %s at 0x%08x",
                  device->name().c_str(), base,
                  mapping.device->name().c_str(), mapping.base);
        }
    }
    mappings_.push_back({base, size, device});
}

MmioDevice *
MmioBus::deviceAt(uint32_t addr, uint32_t *regionBase) const
{
    for (const auto &mapping : mappings_) {
        if (addr >= mapping.base && addr < mapping.base + mapping.size) {
            if (regionBase != nullptr) {
                *regionBase = mapping.base;
            }
            return mapping.device;
        }
    }
    return nullptr;
}

bool
MmioBus::covers(uint32_t addr, uint32_t bytes) const
{
    uint32_t base = 0;
    const MmioDevice *device = deviceAt(addr, &base);
    if (device == nullptr) {
        return false;
    }
    // The whole access must fall within one device's region.
    return deviceAt(addr + bytes - 1) == device;
}

uint32_t
MmioBus::read32(uint32_t addr) const
{
    uint32_t base = 0;
    MmioDevice *device = deviceAt(addr, &base);
    if (device == nullptr) {
        panic("MMIO read from unmapped address 0x%08x", addr);
    }
    return device->read32(addr - base);
}

void
MmioBus::write32(uint32_t addr, uint32_t value) const
{
    uint32_t base = 0;
    MmioDevice *device = deviceAt(addr, &base);
    if (device == nullptr) {
        panic("MMIO write to unmapped address 0x%08x", addr);
    }
    device->write32(addr - base, value);
}

} // namespace cheriot::mem
