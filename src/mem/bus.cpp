#include "mem/bus.h"

#include "fault/fault_injector.h"
#include "snapshot/serializer.h"

namespace cheriot::mem
{

BusResult
Bus::transact(unsigned beats, fault::FaultInjector *injector)
{
    transactions++;
    this->beats += beats;
    if (injector == nullptr) {
        return BusResult{};
    }
    BusResult result;
    uint32_t extraBeats = 0;
    uint32_t drops = injector->busTransactionFaults(&extraBeats);
    result.extraCycles += extraBeats;
    delayCycles += extraBeats;

    uint32_t backoff = kBackoffBase;
    while (drops > 0 && result.retries < kMaxRetries) {
        --drops;
        ++result.retries;
        retries++;
        // The replay re-moves every beat, after the backoff wait.
        result.extraCycles += backoff + beats;
        delayCycles += backoff;
        backoff *= 2;
    }
    if (drops > 0) {
        errors++;
        result.ok = false;
    }
    return result;
}

const char *
busWidthName(BusWidth width)
{
    switch (width) {
      case BusWidth::Wide65: return "65-bit";
      case BusWidth::Narrow33: return "33-bit";
    }
    return "?";
}

void
Bus::serialize(snapshot::Writer &w) const
{
    w.counter(transactions);
    w.counter(retries);
    w.counter(delayCycles);
    w.counter(errors);
}

bool
Bus::deserialize(snapshot::Reader &r)
{
    r.counter(transactions);
    r.counter(retries);
    r.counter(delayCycles);
    r.counter(errors);
    return r.ok();
}

} // namespace cheriot::mem
