#include "mem/bus.h"

namespace cheriot::mem
{

const char *
busWidthName(BusWidth width)
{
    switch (width) {
      case BusWidth::Wide65: return "65-bit";
      case BusWidth::Narrow33: return "33-bit";
    }
    return "?";
}

} // namespace cheriot::mem
