/**
 * @file
 * Tagged SRAM model.
 *
 * Capabilities occupy 8-byte granules guarded by a validity tag held
 * out of band. Following the CHERIoT-Ibex design (paper §4), the tag
 * is modelled as two *micro-tags*, one per 32-bit half of the granule;
 * the architectural tag is their AND. A 32-bit (or narrower) data
 * write therefore only needs to clear the micro-tag of the half it
 * touches — exactly the trick that lets Ibex keep a 33-bit data bus —
 * while a capability store sets both. The wide-bus Flute core simply
 * always touches both micro-tags at once.
 */

#ifndef CHERIOT_MEM_TAGGED_MEMORY_H
#define CHERIOT_MEM_TAGGED_MEMORY_H

#include "util/stats.h"

#include <cstdint>
#include <vector>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::mem
{

/** A capability image read from memory. */
struct RawCapBits
{
    uint64_t bits;
    bool tag;      ///< Architectural tag (AND of the micro-tags).
    bool halfTag0; ///< Micro-tag of the low 32-bit half.
    bool halfTag1; ///< Micro-tag of the high 32-bit half.
};

/**
 * Byte-addressable SRAM with per-granule capability micro-tags.
 *
 * Addresses are *physical offsets within this SRAM's window*; routing
 * from the 32-bit architectural address space happens in
 * PhysicalMemory. All accesses must be naturally aligned and in
 * range; violations are internal errors (the caller is responsible
 * for architectural checks) and panic.
 */
class TaggedMemory
{
  public:
    /** @param base architectural base address. @param size bytes,
     * must be a multiple of 8. */
    TaggedMemory(uint32_t base, uint32_t size);

    uint32_t base() const { return base_; }
    uint32_t size() const { return size_; }
    bool contains(uint32_t addr, uint32_t bytes) const
    {
        return addr >= base_ && addr - base_ + bytes <= size_;
    }

    /** @name Data access (clears the touched half's micro-tag on
     * write) @{ */
    uint8_t read8(uint32_t addr) const;
    uint16_t read16(uint32_t addr) const;
    uint32_t read32(uint32_t addr) const;
    /**
     * Word read that bypasses the access counters. For simulator
     * plumbing whose access *timing* is not architectural — decode
     * cache fills in particular happen at different points in a
     * straight run versus a restored one, and must not perturb
     * counters that are part of the serialized machine state.
     */
    uint32_t peek32(uint32_t addr) const;
    /** Byte read bypassing the access counters (debugger reads must
     * not perturb serialized counter state). */
    uint8_t peek8(uint32_t addr) const;
    /**
     * Debugger byte write: stores the byte and clears the covering
     * half's micro-tag (the tag-clearing rule holds for debugger
     * pokes too — there is no back door that forges capabilities),
     * but bypasses the access counters so the only serialized state
     * that changes is the memory the debugger explicitly asked to
     * change.
     */
    void debugWrite8(uint32_t addr, uint8_t value);
    void write8(uint32_t addr, uint8_t value);
    void write16(uint32_t addr, uint16_t value);
    void write32(uint32_t addr, uint32_t value);
    /** @} */

    /** @name Capability access (8-byte aligned granules) @{ */
    RawCapBits readCap(uint32_t addr) const;
    /** Store a capability image; sets both micro-tags to @p tag. */
    void writeCap(uint32_t addr, uint64_t bits, bool tag);
    /** Clear the granule's tag without touching data (revoker
     * writeback optimization: a single tag-clearing write). */
    void clearCapTag(uint32_t addr);
    /** @} */

    /** Architectural tag of the granule containing @p addr. */
    bool tagAt(uint32_t addr) const;

    /** Zero a byte range (also clears covered micro-tags). */
    void zeroRange(uint32_t addr, uint32_t bytes);

    /** @name Fault-injection back door (FaultInjector only) @{ */
    /**
     * Flip bit @p bit (0–63) of the granule containing @p addr.
     * With @p failSafe the covering half's micro-tag is cleared, as
     * any narrow disturbance of the storage array does on real
     * CHERIoT-Ibex — corrupted capabilities lose their validity
     * instead of becoming forgeries. @p failSafe=false models
     * hardware without micro-tag protection (oracle testing only).
     */
    void injectDataFlip(uint32_t addr, uint32_t bit, bool failSafe);
    /** Clear both micro-tags of the granule containing @p addr
     * without touching data (a particle strike on the tag array;
     * 1→0 only — the tag bit cell cannot be set by disturbance). */
    void injectTagClear(uint32_t addr);
    /** @} */

    /** @name Snapshot state (contents, micro-tags, counters) @{ */
    void serialize(snapshot::Writer &w) const;
    /** False on geometry mismatch or a short payload. */
    bool deserialize(snapshot::Reader &r);
    /** CRC-32 over contents and micro-tags only (no counters), so
     * machines with different timing models can still be compared. */
    uint32_t contentsDigest() const;
    /** @} */

    StatGroup &stats() { return stats_; }

    Counter reads;      ///< Data read accesses.
    Counter writes;     ///< Data write accesses.
    Counter capReads;   ///< Capability granule reads.
    Counter capWrites;  ///< Capability granule writes.
    Counter tagClears;  ///< Tags cleared by data writes.

  private:
    uint32_t offsetOf(uint32_t addr, uint32_t bytes, uint32_t align) const;

    uint32_t base_;
    uint32_t size_;
    std::vector<uint8_t> data_;
    /** Two micro-tag bits per 8-byte granule. */
    std::vector<uint8_t> microTags_;
    StatGroup stats_;
};

} // namespace cheriot::mem

#endif // CHERIOT_MEM_TAGGED_MEMORY_H
