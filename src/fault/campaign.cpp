#include "fault/campaign.h"

#include "mem/memory_map.h"
#include "util/log.h"
#include "workloads/coremark/coremark.h"
#include "workloads/iot/iot_app.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

namespace cheriot::fault
{

namespace
{

/** IoT campaign run: short horizon, busy packet schedule, handlers
 * installed, tight watchdog budget. */
workloads::IotAppConfig
iotCampaignConfig(const CampaignConfig &campaign, FaultInjector *injector)
{
    workloads::IotAppConfig config;
    config.simSeconds = 0.25;
    config.packetsPerSec = 50;
    config.injector = injector;
    config.installErrorHandlers = true;
    config.watchdogFaultBudget = campaign.faultBudget;
    config.watchdogRestartDelayCycles = campaign.restartDelayCycles;
    return config;
}

/** CoreMark campaign run: a few iterations, capability mode. */
workloads::CoreMarkConfig
coreMarkCampaignConfig(FaultInjector *injector, uint64_t maxInstructions)
{
    workloads::CoreMarkConfig config;
    config.iterations = 4;
    config.injector = injector;
    config.maxInstructions = maxInstructions;
    return config;
}

/** Any recovery machinery visibly reacted during the IoT run? */
bool
iotRecoveryObserved(const workloads::IotAppResult &run,
                    const workloads::IotAppResult &ref)
{
    return run.calleeFaults > ref.calleeFaults ||
           run.handlerInvocations > ref.handlerInvocations ||
           run.forcedUnwinds > ref.forcedUnwinds ||
           run.watchdogQuarantines > 0 || run.watchdogRestarts > 0 ||
           run.revokerKicks > 0 || run.busRetries > 0 ||
           run.trapsTaken > ref.trapsTaken ||
           // NIC-path detectors: a corrupted descriptor or payload is
           // contained by dropping the packet, and these counters are
           // the visible evidence.
           run.nicRxDrops > ref.nicRxDrops ||
           run.nicRxErrors > ref.nicRxErrors ||
           run.netParseDrops > ref.netParseDrops ||
           run.netRingCorruptionsDetected > ref.netRingCorruptionsDetected;
}

Outcome
classifyIot(const workloads::IotAppResult &run,
            const workloads::IotAppResult &ref, bool fired)
{
    const bool observed = iotRecoveryObserved(run, ref);
    const bool matches = run.ok &&
                         run.packetsProcessed == ref.packetsProcessed &&
                         run.jsTicks == ref.jsTicks &&
                         run.finalLedState == ref.finalLedState;
    if (!fired && !observed) {
        return Outcome::NotTriggered;
    }
    if (matches) {
        return observed ? Outcome::Recovered : Outcome::Benign;
    }
    if (!run.ok) {
        return Outcome::Detected;
    }
    return observed ? Outcome::Degraded : Outcome::SilentDataCorruption;
}

Outcome
classifyCoreMark(const workloads::CoreMarkResult &run,
                 const workloads::CoreMarkResult &ref, bool fired)
{
    const bool observed = run.busRetries > 0 || run.trapsTaken > 0;
    const bool matches = run.valid && run.checksum == ref.checksum;
    if (!fired && !observed) {
        return Outcome::NotTriggered;
    }
    if (matches) {
        return observed ? Outcome::Recovered : Outcome::Benign;
    }
    if (!run.valid) {
        // InstrLimit (hang), DoubleTrap (trap with no handler) and
        // the like: the failure is loud, so the fault is contained.
        return Outcome::Detected;
    }
    return observed ? Outcome::Degraded : Outcome::SilentDataCorruption;
}

/** Uninjected reference results every injection is classified
 * against, plus the campaign bounds derived from them. */
struct CampaignReferences
{
    workloads::IotAppResult iotRef;
    workloads::CoreMarkResult cmRef;
    uint64_t cmBudget = 0;
    uint64_t iotHorizon = 0;
};

CampaignReferences
computeReferences(const CampaignConfig &config)
{
    CampaignReferences refs;
    refs.iotRef = runIotApp(iotCampaignConfig(config, nullptr));
    if (!refs.iotRef.ok) {
        fatal("campaign: IoT reference run failed");
    }
    refs.cmRef =
        runCoreMark(coreMarkCampaignConfig(nullptr, 0), "reference");
    if (!refs.cmRef.valid) {
        fatal("campaign: CoreMark reference run failed");
    }
    // A run that exceeds 4x the reference instruction count has hung;
    // the machine halts it with InstrLimit, which counts as detected.
    refs.cmBudget = refs.cmRef.instructions * 4 + 10'000;
    refs.iotHorizon = refs.iotRef.cycles;
    return refs;
}

/** Memory-fault target windows. @{ */
constexpr uint32_t kIotSramSize = 160u << 10;
// CoreMark's live image: program text from +0x1000, arena up to
// +0x20000. Aiming the memory faults there keeps most of them
// consequential rather than landing in never-touched SRAM.
constexpr uint32_t kCmMemSize = 0x20000;
/** @} */

/**
 * Execute injection @p index: derive its seed, draw and arm a plan,
 * run the workload with the injector wired in, classify.
 * @p preFaultOut, when non-null, receives the system state at the
 * start of the run (before the plan can fire).
 */
CampaignRun
executeInjection(const CampaignConfig &config,
                 const CampaignReferences &refs, uint32_t index,
                 snapshot::SnapshotImage *preFaultOut)
{
    CampaignRun run;
    run.index = index;
    run.seed = Rng::deriveStreamSeed(config.seed, index);
    run.workload = config.workload == CampaignWorkload::Both
                       ? (index % 2 == 0 ? CampaignWorkload::Iot
                                         : CampaignWorkload::CoreMark)
                       : config.workload;

    FaultInjector injector(run.seed);
    if (run.workload == CampaignWorkload::Iot) {
        run.plan = injector.planNext(refs.iotHorizon, mem::kSramBase,
                                     kIotSramSize);
        injector.arm(run.plan);
        auto workload = iotCampaignConfig(config, &injector);
        workload.preRunSnapshotOut = preFaultOut;
        const auto result = runIotApp(workload);
        run.fired = injector.fired();
        run.outcome = classifyIot(result, refs.iotRef, run.fired);
    } else {
        run.plan = injector.planNext(refs.cmRef.cycles, mem::kSramBase,
                                     kCmMemSize);
        injector.arm(run.plan);
        auto workload = coreMarkCampaignConfig(&injector, refs.cmBudget);
        workload.preRunSnapshotOut = preFaultOut;
        const auto result = runCoreMark(workload, "injected");
        run.fired = injector.fired();
        run.outcome = classifyCoreMark(result, refs.cmRef, run.fired);
    }
    run.safetyViolations = injector.safetyViolations.value();
    return run;
}

/** A failing injection: the smoke test would exit non-zero on the
 * safety violation, and silent corruption is the outcome replay
 * exists to debug. */
bool
isFailingRun(const CampaignRun &run)
{
    return run.safetyViolations > 0 ||
           run.outcome == Outcome::SilentDataCorruption;
}

} // namespace

const char *
campaignWorkloadName(CampaignWorkload workload)
{
    switch (workload) {
      case CampaignWorkload::Both: return "both";
      case CampaignWorkload::Iot: return "iot";
      case CampaignWorkload::CoreMark: return "coremark";
    }
    return "unknown";
}

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::NotTriggered: return "not-triggered";
      case Outcome::Benign: return "benign";
      case Outcome::Recovered: return "recovered";
      case Outcome::Degraded: return "degraded";
      case Outcome::Detected: return "detected";
      case Outcome::SilentDataCorruption: return "silent-corruption";
      case Outcome::kCount: break;
    }
    return "unknown";
}

CampaignReport
runFaultCampaign(const CampaignConfig &config)
{
    CampaignReport report;
    report.config = config;

    // Clean reference runs: identical configuration, no injector.
    const CampaignReferences refs = computeReferences(config);

    const bool captureSnapshots = !config.reproDir.empty();
    if (captureSnapshots) {
        std::error_code ec;
        std::filesystem::create_directories(config.reproDir, ec);
        if (ec) {
            fatal("campaign: cannot create repro directory %s",
                  config.reproDir.c_str());
        }
    }
    for (uint32_t n = 0; n < config.injections; ++n) {
        const uint32_t i = config.startIndex + n;
        snapshot::SnapshotImage preFault;
        const CampaignRun run = executeInjection(
            config, refs, i, captureSnapshots ? &preFault : nullptr);

        report.runs++;
        report.fired += run.fired ? 1 : 0;
        report.safetyViolations += run.safetyViolations;
        report.matrix[static_cast<uint32_t>(run.plan.site)]
                     [static_cast<uint32_t>(run.outcome)]++;
        report.totals[static_cast<uint32_t>(run.outcome)]++;
        report.details.push_back(run);

        if (isFailingRun(run) && report.firstFailingIndex < 0) {
            report.firstFailingIndex = i;
            report.firstFailingSeed = run.seed;
            report.firstFailingWorkload = run.workload;
        }
        if (captureSnapshots &&
            (isFailingRun(run) || config.reproAll)) {
            ReproRecord record;
            record.campaignSeed = config.seed;
            record.injectionIndex = i;
            record.runSeed = run.seed;
            record.workload = run.workload;
            record.plan = run.plan;
            record.outcome = run.outcome;
            record.safetyViolations = run.safetyViolations;
            record.faultBudget = config.faultBudget;
            record.restartDelayCycles = config.restartDelayCycles;
            record.cmBudget = refs.cmBudget;
            record.iotRef.ok = refs.iotRef.ok;
            record.iotRef.packetsProcessed = refs.iotRef.packetsProcessed;
            record.iotRef.jsTicks = refs.iotRef.jsTicks;
            record.iotRef.finalLedState = refs.iotRef.finalLedState;
            record.iotRef.calleeFaults = refs.iotRef.calleeFaults;
            record.iotRef.handlerInvocations =
                refs.iotRef.handlerInvocations;
            record.iotRef.forcedUnwinds = refs.iotRef.forcedUnwinds;
            record.iotRef.trapsTaken = refs.iotRef.trapsTaken;
            record.iotRef.nicRxDrops = refs.iotRef.nicRxDrops;
            record.iotRef.nicRxErrors = refs.iotRef.nicRxErrors;
            record.iotRef.netParseDrops = refs.iotRef.netParseDrops;
            record.iotRef.netRingCorruptionsDetected =
                refs.iotRef.netRingCorruptionsDetected;
            record.cmRef.valid = refs.cmRef.valid;
            record.cmRef.checksum = refs.cmRef.checksum;
            record.preFaultImage = std::move(preFault);

            char name[64];
            std::snprintf(name, sizeof(name), "repro-%06u.snap", i);
            const std::string path = config.reproDir + "/" + name;
            if (writeReproRecord(record, path)) {
                report.reproPaths.push_back(path);
            } else {
                warn("campaign: could not write repro record %s",
                     path.c_str());
            }
        }

        if (config.verbose) {
            inform("campaign: run %4u %-8s %-14s -> %-17s "
                   "(seed 0x%016" PRIx64 ")",
                   i, campaignWorkloadName(run.workload),
                   faultSiteName(run.plan.site), outcomeName(run.outcome),
                   run.seed);
        }
    }
    return report;
}

bool
writeReproRecord(const ReproRecord &record, const std::string &path)
{
    snapshot::SnapshotWriter out;
    snapshot::Writer &w = out.beginSection("repro");
    w.u64(record.campaignSeed);
    w.u32(record.injectionIndex);
    w.u64(record.runSeed);
    w.u8(static_cast<uint8_t>(record.workload));
    w.u8(static_cast<uint8_t>(record.plan.site));
    w.u64(record.plan.triggerCycle);
    w.u64(record.plan.triggerTransaction);
    w.u32(record.plan.addr);
    w.u32(record.plan.param);
    w.u8(static_cast<uint8_t>(record.outcome));
    w.u64(record.safetyViolations);
    w.u32(record.faultBudget);
    w.u64(record.restartDelayCycles);
    w.u64(record.cmBudget);
    w.b(record.iotRef.ok);
    w.u64(record.iotRef.packetsProcessed);
    w.u64(record.iotRef.jsTicks);
    w.u32(record.iotRef.finalLedState);
    w.u64(record.iotRef.calleeFaults);
    w.u64(record.iotRef.handlerInvocations);
    w.u64(record.iotRef.forcedUnwinds);
    w.u64(record.iotRef.trapsTaken);
    w.u64(record.iotRef.nicRxDrops);
    w.u64(record.iotRef.nicRxErrors);
    w.u64(record.iotRef.netParseDrops);
    w.u64(record.iotRef.netRingCorruptionsDetected);
    w.b(record.cmRef.valid);
    w.u32(record.cmRef.checksum);
    out.endSection();
    snapshot::Writer &pw = out.beginSection("prefault");
    pw.u32(static_cast<uint32_t>(record.preFaultImage.data.size()));
    pw.bytes(record.preFaultImage.data.data(),
             record.preFaultImage.data.size());
    out.endSection();
    return snapshot::saveImageToFile(out.finish(), path);
}

bool
readReproRecord(const std::string &path, ReproRecord *out)
{
    snapshot::SnapshotImage image;
    if (!snapshot::loadImageFromFile(path, &image)) {
        return false;
    }
    snapshot::SnapshotReader in(image);
    if (!in.valid() || !in.hasSection("repro") ||
        !in.hasSection("prefault")) {
        return false;
    }
    snapshot::Reader r = in.section("repro");
    out->campaignSeed = r.u64();
    out->injectionIndex = r.u32();
    out->runSeed = r.u64();
    out->workload = static_cast<CampaignWorkload>(r.u8());
    out->plan.site = static_cast<FaultSite>(r.u8());
    out->plan.triggerCycle = r.u64();
    out->plan.triggerTransaction = r.u64();
    out->plan.addr = r.u32();
    out->plan.param = r.u32();
    out->outcome = static_cast<Outcome>(r.u8());
    out->safetyViolations = r.u64();
    out->faultBudget = r.u32();
    out->restartDelayCycles = r.u64();
    out->cmBudget = r.u64();
    out->iotRef.ok = r.b();
    out->iotRef.packetsProcessed = r.u64();
    out->iotRef.jsTicks = r.u64();
    out->iotRef.finalLedState = r.u32();
    out->iotRef.calleeFaults = r.u64();
    out->iotRef.handlerInvocations = r.u64();
    out->iotRef.forcedUnwinds = r.u64();
    out->iotRef.trapsTaken = r.u64();
    out->iotRef.nicRxDrops = r.u64();
    out->iotRef.nicRxErrors = r.u64();
    out->iotRef.netParseDrops = r.u64();
    out->iotRef.netRingCorruptionsDetected = r.u64();
    out->cmRef.valid = r.b();
    out->cmRef.checksum = r.u32();
    if (!r.exhausted()) {
        return false;
    }
    snapshot::Reader pr = in.section("prefault");
    const uint32_t size = pr.u32();
    if (size > pr.remaining()) {
        return false;
    }
    out->preFaultImage.data.assign(size, 0);
    pr.bytes(out->preFaultImage.data.data(), size);
    return pr.exhausted();
}

ReplayResult
replayRepro(const ReproRecord &record)
{
    // The injector is deliberately absent from snapshots: rebuild it
    // from the recorded seed and re-arm the recorded plan. The replay
    // re-executes the same deterministic boot prefix, so the injector
    // reaches the state it had when the pre-fault image was captured,
    // and the restored run evolves exactly as the original did.
    FaultInjector injector(record.runSeed);
    injector.arm(record.plan);

    ReplayResult result;
    if (record.workload == CampaignWorkload::Iot) {
        CampaignConfig campaign;
        campaign.faultBudget = record.faultBudget;
        campaign.restartDelayCycles = record.restartDelayCycles;
        auto workload = iotCampaignConfig(campaign, &injector);
        workload.resumeImage = &record.preFaultImage;
        const auto run = runIotApp(workload);

        workloads::IotAppResult ref;
        ref.ok = record.iotRef.ok;
        ref.packetsProcessed = record.iotRef.packetsProcessed;
        ref.jsTicks = record.iotRef.jsTicks;
        ref.finalLedState = record.iotRef.finalLedState;
        ref.calleeFaults = record.iotRef.calleeFaults;
        ref.handlerInvocations = record.iotRef.handlerInvocations;
        ref.forcedUnwinds = record.iotRef.forcedUnwinds;
        ref.trapsTaken = record.iotRef.trapsTaken;
        ref.nicRxDrops = record.iotRef.nicRxDrops;
        ref.nicRxErrors = record.iotRef.nicRxErrors;
        ref.netParseDrops = record.iotRef.netParseDrops;
        ref.netRingCorruptionsDetected =
            record.iotRef.netRingCorruptionsDetected;
        result.outcome = classifyIot(run, ref, injector.fired());
    } else {
        auto workload =
            coreMarkCampaignConfig(&injector, record.cmBudget);
        workload.resumeImage = &record.preFaultImage;
        const auto run = runCoreMark(workload, "replay");

        workloads::CoreMarkResult ref;
        ref.valid = record.cmRef.valid;
        ref.checksum = record.cmRef.checksum;
        result.outcome = classifyCoreMark(run, ref, injector.fired());
    }
    result.fired = injector.fired();
    result.safetyViolations = injector.safetyViolations.value();
    result.matchesRecorded = result.outcome == record.outcome &&
                             result.safetyViolations ==
                                 record.safetyViolations;
    return result;
}

void
printCampaignReport(const CampaignReport &report)
{
    std::printf("\nfault campaign: %" PRIu64 " runs (seed 0x%" PRIx64
                ", workload %s), %" PRIu64 " faults fired\n\n",
                report.runs, report.config.seed,
                campaignWorkloadName(report.config.workload),
                report.fired);

    std::printf("%-16s", "site");
    for (uint32_t o = 0; o < kOutcomeCount; ++o) {
        std::printf("%18s", outcomeName(static_cast<Outcome>(o)));
    }
    std::printf("\n");
    for (uint32_t s = 0; s < kFaultSiteCount; ++s) {
        std::printf("%-16s", faultSiteName(static_cast<FaultSite>(s)));
        for (uint32_t o = 0; o < kOutcomeCount; ++o) {
            std::printf("%18" PRIu64, report.matrix[s][o]);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "total");
    for (uint32_t o = 0; o < kOutcomeCount; ++o) {
        std::printf("%18" PRIu64, report.totals[o]);
    }
    std::printf("\n\n");

    std::printf("memory-safety violations (corrupted capability "
                "dereferenced): %" PRIu64 "\n",
                report.safetyViolations);
    std::printf("invariant %s\n",
                report.invariantHolds()
                    ? "HOLDS: every injected fault was contained by the "
                      "capability system"
                    : "VIOLATED: a corrupted capability was dereferenced");

    if (report.firstFailingIndex >= 0) {
        std::printf("\nfirst failing injection: index %" PRId64
                    ", run seed 0x%016" PRIx64 ", workload %s\n",
                    report.firstFailingIndex, report.firstFailingSeed,
                    campaignWorkloadName(report.firstFailingWorkload));
        std::printf("reproduce with: fault_campaign --seed 0x%" PRIx64
                    " --start-index %" PRId64
                    " --injections 1 --workload %s --verbose\n",
                    report.config.seed, report.firstFailingIndex,
                    campaignWorkloadName(report.config.workload));
    }
    for (const std::string &path : report.reproPaths) {
        std::printf("repro record: %s (replay with: replay %s)\n",
                    path.c_str(), path.c_str());
    }
}

} // namespace cheriot::fault
