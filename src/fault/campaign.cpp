#include "fault/campaign.h"

#include "mem/memory_map.h"
#include "util/log.h"
#include "workloads/coremark/coremark.h"
#include "workloads/iot/iot_app.h"

#include <cinttypes>
#include <cstdio>

namespace cheriot::fault
{

namespace
{

/** IoT campaign run: short horizon, busy packet schedule, handlers
 * installed, tight watchdog budget. */
workloads::IotAppConfig
iotCampaignConfig(const CampaignConfig &campaign, FaultInjector *injector)
{
    workloads::IotAppConfig config;
    config.simSeconds = 0.25;
    config.packetsPerSec = 50;
    config.injector = injector;
    config.installErrorHandlers = true;
    config.watchdogFaultBudget = campaign.faultBudget;
    config.watchdogRestartDelayCycles = campaign.restartDelayCycles;
    return config;
}

/** CoreMark campaign run: a few iterations, capability mode. */
workloads::CoreMarkConfig
coreMarkCampaignConfig(FaultInjector *injector, uint64_t maxInstructions)
{
    workloads::CoreMarkConfig config;
    config.iterations = 4;
    config.injector = injector;
    config.maxInstructions = maxInstructions;
    return config;
}

/** Any recovery machinery visibly reacted during the IoT run? */
bool
iotRecoveryObserved(const workloads::IotAppResult &run,
                    const workloads::IotAppResult &ref)
{
    return run.calleeFaults > ref.calleeFaults ||
           run.handlerInvocations > ref.handlerInvocations ||
           run.forcedUnwinds > ref.forcedUnwinds ||
           run.watchdogQuarantines > 0 || run.watchdogRestarts > 0 ||
           run.revokerKicks > 0 || run.busRetries > 0 ||
           run.trapsTaken > ref.trapsTaken;
}

Outcome
classifyIot(const workloads::IotAppResult &run,
            const workloads::IotAppResult &ref, bool fired)
{
    const bool observed = iotRecoveryObserved(run, ref);
    const bool matches = run.ok &&
                         run.packetsProcessed == ref.packetsProcessed &&
                         run.jsTicks == ref.jsTicks &&
                         run.finalLedState == ref.finalLedState;
    if (!fired && !observed) {
        return Outcome::NotTriggered;
    }
    if (matches) {
        return observed ? Outcome::Recovered : Outcome::Benign;
    }
    if (!run.ok) {
        return Outcome::Detected;
    }
    return observed ? Outcome::Degraded : Outcome::SilentDataCorruption;
}

Outcome
classifyCoreMark(const workloads::CoreMarkResult &run,
                 const workloads::CoreMarkResult &ref, bool fired)
{
    const bool observed = run.busRetries > 0 || run.trapsTaken > 0;
    const bool matches = run.valid && run.checksum == ref.checksum;
    if (!fired && !observed) {
        return Outcome::NotTriggered;
    }
    if (matches) {
        return observed ? Outcome::Recovered : Outcome::Benign;
    }
    if (!run.valid) {
        // InstrLimit (hang), DoubleTrap (trap with no handler) and
        // the like: the failure is loud, so the fault is contained.
        return Outcome::Detected;
    }
    return observed ? Outcome::Degraded : Outcome::SilentDataCorruption;
}

} // namespace

const char *
campaignWorkloadName(CampaignWorkload workload)
{
    switch (workload) {
      case CampaignWorkload::Both: return "both";
      case CampaignWorkload::Iot: return "iot";
      case CampaignWorkload::CoreMark: return "coremark";
    }
    return "unknown";
}

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::NotTriggered: return "not-triggered";
      case Outcome::Benign: return "benign";
      case Outcome::Recovered: return "recovered";
      case Outcome::Degraded: return "degraded";
      case Outcome::Detected: return "detected";
      case Outcome::SilentDataCorruption: return "silent-corruption";
      case Outcome::kCount: break;
    }
    return "unknown";
}

CampaignReport
runFaultCampaign(const CampaignConfig &config)
{
    CampaignReport report;
    report.config = config;

    // Clean reference runs: identical configuration, no injector.
    const workloads::IotAppResult iotRef =
        runIotApp(iotCampaignConfig(config, nullptr));
    if (!iotRef.ok) {
        fatal("campaign: IoT reference run failed");
    }
    const workloads::CoreMarkResult cmRef =
        runCoreMark(coreMarkCampaignConfig(nullptr, 0), "reference");
    if (!cmRef.valid) {
        fatal("campaign: CoreMark reference run failed");
    }
    // A run that exceeds 4x the reference instruction count has hung;
    // the machine halts it with InstrLimit, which counts as detected.
    const uint64_t cmBudget = cmRef.instructions * 4 + 10'000;

    const uint64_t iotHorizon = iotRef.cycles;
    const uint32_t iotSramSize = 160u << 10;
    // CoreMark's live image: program text from +0x1000, arena up to
    // +0x20000. Aiming the memory faults there keeps most of them
    // consequential rather than landing in never-touched SRAM.
    const uint32_t cmMemSize = 0x20000;

    for (uint32_t i = 0; i < config.injections; ++i) {
        CampaignRun run;
        run.index = i;
        run.seed = Rng::deriveStreamSeed(config.seed, i);
        run.workload = config.workload == CampaignWorkload::Both
                           ? (i % 2 == 0 ? CampaignWorkload::Iot
                                         : CampaignWorkload::CoreMark)
                           : config.workload;

        FaultInjector injector(run.seed);
        if (run.workload == CampaignWorkload::Iot) {
            run.plan = injector.planNext(iotHorizon, mem::kSramBase,
                                         iotSramSize);
            injector.arm(run.plan);
            const auto result =
                runIotApp(iotCampaignConfig(config, &injector));
            run.fired = injector.fired();
            run.outcome = classifyIot(result, iotRef, run.fired);
        } else {
            run.plan = injector.planNext(cmRef.cycles, mem::kSramBase,
                                         cmMemSize);
            injector.arm(run.plan);
            const auto result = runCoreMark(
                coreMarkCampaignConfig(&injector, cmBudget), "injected");
            run.fired = injector.fired();
            run.outcome = classifyCoreMark(result, cmRef, run.fired);
        }
        run.safetyViolations = injector.safetyViolations.value();

        report.runs++;
        report.fired += run.fired ? 1 : 0;
        report.safetyViolations += run.safetyViolations;
        report.matrix[static_cast<uint32_t>(run.plan.site)]
                     [static_cast<uint32_t>(run.outcome)]++;
        report.totals[static_cast<uint32_t>(run.outcome)]++;
        report.details.push_back(run);

        if (config.verbose) {
            inform("campaign: run %4u %-8s %-14s -> %-17s "
                   "(seed 0x%016" PRIx64 ")",
                   i, campaignWorkloadName(run.workload),
                   faultSiteName(run.plan.site), outcomeName(run.outcome),
                   run.seed);
        }
    }
    return report;
}

void
printCampaignReport(const CampaignReport &report)
{
    std::printf("\nfault campaign: %" PRIu64 " runs (seed 0x%" PRIx64
                ", workload %s), %" PRIu64 " faults fired\n\n",
                report.runs, report.config.seed,
                campaignWorkloadName(report.config.workload),
                report.fired);

    std::printf("%-16s", "site");
    for (uint32_t o = 0; o < kOutcomeCount; ++o) {
        std::printf("%18s", outcomeName(static_cast<Outcome>(o)));
    }
    std::printf("\n");
    for (uint32_t s = 0; s < kFaultSiteCount; ++s) {
        std::printf("%-16s", faultSiteName(static_cast<FaultSite>(s)));
        for (uint32_t o = 0; o < kOutcomeCount; ++o) {
            std::printf("%18" PRIu64, report.matrix[s][o]);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "total");
    for (uint32_t o = 0; o < kOutcomeCount; ++o) {
        std::printf("%18" PRIu64, report.totals[o]);
    }
    std::printf("\n\n");

    std::printf("memory-safety violations (corrupted capability "
                "dereferenced): %" PRIu64 "\n",
                report.safetyViolations);
    std::printf("invariant %s\n",
                report.invariantHolds()
                    ? "HOLDS: every injected fault was contained by the "
                      "capability system"
                    : "VIOLATED: a corrupted capability was dereferenced");
}

} // namespace cheriot::fault
