/**
 * @file
 * Deterministic fault-injection engine.
 *
 * A FaultInjector owns one plan at a time — a single hardware or
 * software fault scheduled at a cycle (or bus-transaction) trigger —
 * and the hook points threaded through the machine deliver it:
 *
 *  - tagged SRAM: capability-tag clears and data bit flips;
 *  - the data bus: dropped and late transactions, recovered by the
 *    bus model's bounded retry + backoff;
 *  - the background revoker: stalled sweeps and stuck epochs,
 *    recovered by the RTOS kick/timeout path;
 *  - the revocation bitmap: spuriously painted granules
 *    (over-revocation: an availability fault, never a safety one);
 *  - the core: spurious traps and trap storms, absorbed by the
 *    switcher's error-handler / forced-unwind machinery.
 *
 * All randomness comes from per-site streams split off a single
 * 64-bit seed (Rng::forStream), so a campaign of N injections is
 * reproducible bit-for-bit from (seed, index).
 *
 * Fail-safe corruption model: memory disturbances follow the
 * CHERIoT-Ibex micro-tag design — any flip landing in a tagged
 * granule also clears the covering micro-tag, exactly as a narrow
 * data write does (paper §4), so injected corruption can *revoke*
 * a capability's validity but never forge one. The injector still
 * tracks every disturbed granule as *poisoned* and the machine
 * reports a safety violation if a tagged capability is ever loaded
 * from a poisoned granule — the invariant the campaign asserts. A
 * test-only forgery mode leaves the micro-tags intact to prove the
 * oracle actually fires.
 */

#ifndef CHERIOT_FAULT_FAULT_INJECTOR_H
#define CHERIOT_FAULT_FAULT_INJECTOR_H

#include "util/rng.h"
#include "util/stats.h"

#include <cstdint>
#include <unordered_set>

namespace cheriot::mem
{
class TaggedMemory;
}
namespace cheriot::revoker
{
class RevocationBitmap;
}

namespace cheriot::fault
{

/** Where a fault is injected. */
enum class FaultSite : uint8_t
{
    TagClear = 0,         ///< Clear a granule's capability tag.
    DataFlip,             ///< Flip one data bit (clears micro-tag).
    BusDrop,              ///< Drop bus transactions (bounded burst).
    BusDelay,             ///< Delay a bus transaction by extra beats.
    RevokerStall,         ///< Background sweep stops making progress.
    RevokerStuckEpoch,    ///< Sweep completes but the epoch stays odd.
    BitmapCorrupt,        ///< Paint a spurious revocation bit.
    SpuriousFault,        ///< One spurious trap / callee fault.
    FaultStorm,           ///< A burst of spurious faults.
    MallocStall,          ///< Revoker stalls as a blocking malloc
                          ///< enters its backoff loop (exercises the
                          ///< bounded-backoff / OutOfMemory path).
    NicDmaCorrupt,        ///< NIC DMA writes a corrupted beat into a
                          ///< landing packet payload.
    NicRingCorrupt,       ///< A bit flips in the RX descriptor the
                          ///< NIC is about to fetch.
    NicLinkDrop,          ///< The link eats a burst of arriving
                          ///< frames before the NIC sees them.
    SwitchPortStall,      ///< A switch port's egress freezes for a
                          ///< window; its bounded queue backs up.
    FlowStateCorrupt,     ///< A bit pattern scrambles a flow-table
                          ///< entry; the flow layer must detect it
                          ///< and die with a typed reset.
    BrokerQueueCorrupt,   ///< A queued broker record's metadata is
                          ///< disturbed; the broker must drop the
                          ///< record, never trap a subscriber.
    CapTableCorrupt,      ///< An object-capability table entry (or
                          ///< its tree links) is scrambled; the table
                          ///< must refuse it typed on use and kill
                          ///< the subtree, never grant authority.
    kCount,
};

constexpr uint32_t kFaultSiteCount =
    static_cast<uint32_t>(FaultSite::kCount);

const char *faultSiteName(FaultSite site);

/** One scheduled injection. */
struct FaultPlan
{
    FaultSite site = FaultSite::TagClear;
    /** Cycle at which cycle-triggered sites fire. */
    uint64_t triggerCycle = 0;
    /** Bus-transaction ordinal at which bus sites fire. */
    uint64_t triggerTransaction = 0;
    /** Target address for memory/bitmap sites. */
    uint32_t addr = 0;
    /** Site-specific payload (bit index, burst length, delay…). */
    uint32_t param = 0;
};

class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed);

    /** @name Planning @{ */
    /**
     * Draw the next plan from the per-site streams. @p horizonCycles
     * bounds the trigger; [@p memBase, @p memBase + @p memSize) is
     * the target window for memory faults.
     */
    FaultPlan planNext(uint64_t horizonCycles, uint32_t memBase,
                       uint32_t memSize);
    void arm(const FaultPlan &plan);
    const FaultPlan &armedPlan() const { return plan_; }
    bool armed() const { return armed_; }
    /** Has the armed plan delivered its fault? */
    bool fired() const { return fired_; }
    /** @} */

    /** @name Wiring (done by the machine constructor) @{ */
    void attachMemory(mem::TaggedMemory *sram) { sram_ = sram; }
    void attachBitmap(revoker::RevocationBitmap *bitmap)
    {
        bitmap_ = bitmap;
    }
    /** @} */

    /** @name Machine hooks @{ */
    /** Cycle hook: delivers cycle-triggered faults. */
    void tick(uint64_t nowCycle);
    /**
     * Consume a pending spurious fault. Polled both by the guest-ISA
     * step loop (trap) and by the switcher on callee return (callee
     * fault), whichever observes it first.
     */
    bool takeSpuriousFault(uint32_t *cause);
    /** @} */

    /** @name Bus hooks @{ */
    /**
     * Called once per charged bus transaction. Returns the number of
     * consecutive drops injected into this transaction (0 normally)
     * and adds any injected latency to @p extraBeats.
     */
    uint32_t busTransactionFaults(uint32_t *extraBeats);
    /** @} */

    /** @name Revoker hooks @{ */
    bool revokerStalled() const { return stalled_; }
    bool suppressEpochIncrement() const { return epochStuck_; }
    /** MMIO kick observed: clears stall and stuck-epoch states. */
    void revokerKicked();
    /**
     * Allocator hook: a malloc exhausted the free lists and is about
     * to enter its bounded backoff loop. An armed MallocStall plan
     * fires here — opening a stall window at the worst possible
     * moment, while the blocked malloc waits on sweep progress.
     */
    void mallocBackoffStarted(uint64_t nowCycle);
    /** @} */

    /** @name NIC hooks (called by NicDevice mid-delivery)
     * Both NIC sites are event-triggered on the Nth packet delivery
     * (plan.triggerTransaction counts deliveries), so the corruption
     * always lands while the device owns the target granule — exactly
     * the transient a glitching DMA engine or descriptor fetch
     * produces. Flips go through TaggedMemory's fail-safe back door:
     * they can revoke a capability's validity but never forge one. @{ */
    /** Descriptor at @p descAddr is about to be fetched; an armed
     * NicRingCorrupt plan flips a bit in that granule. */
    void nicDeliveryStarting(uint32_t descAddr);
    /** Payload landed at [@p addr, @p addr + @p bytes); an armed
     * NicDmaCorrupt plan flips a bit in one landed granule. */
    void nicDmaLanded(uint32_t addr, uint32_t bytes);
    /**
     * A frame is arriving on the wire, before the NIC sees it. An
     * armed NicLinkDrop plan returns true for a burst of plan.param
     * frames starting at the plan's arrival ordinal: the link ate
     * them. Counts its own ordinal stream (arrivals, not deliveries)
     * so arming it never shifts the NIC corruption sites' triggers.
     */
    bool nicLinkFrameArriving();
    /** @} */

    /** @name Switch hook (called by VirtualSwitch::tick) @{ */
    /**
     * An armed SwitchPortStall plan fires on the Nth fabric tick:
     * returns true once with the port selector (reduce modulo the
     * port count) and the stall window length in ticks.
     */
    bool switchTick(uint32_t *portSel, uint32_t *stallTicks);
    /** @} */

    /** @name Application-tier hooks (flow manager / broker) @{ */
    /**
     * The flow layer is about to act on a flow-table entry. An armed
     * FlowStateCorrupt plan fires on the Nth touch: returns true once
     * with a scramble pattern in @p param. Counts its own ordinal
     * stream so arming it never shifts the NIC or switch triggers.
     */
    bool flowStateTouched(uint32_t *param);
    /**
     * The broker enqueued (or is about to deliver) a record. An armed
     * BrokerQueueCorrupt plan fires on the Nth touch: returns true
     * once with a scramble pattern in @p param.
     */
    bool brokerQueueTouched(uint32_t *param);
    /**
     * The object-capability table is about to validate an entry. An
     * armed CapTableCorrupt plan fires on the Nth touch: returns true
     * once with a scramble pattern in @p param, applied to the entry
     * *before* its canary is checked. Counts its own ordinal stream
     * so arming it never shifts any other site's triggers.
     */
    bool capTableTouched(uint32_t *param);
    /** @} */

    /** @name Safety oracle @{ */
    /** Is the granule containing @p addr corrupted-but-unrepaired? */
    bool isPoisoned(uint32_t addr) const;
    /** A legitimate capability store rewrote the granule. */
    void notePoisonRepaired(uint32_t addr);
    /** A tagged capability was dereferenced out of a poisoned
     * granule: the one outcome the system must never produce. */
    void noteSafetyViolation(uint32_t addr);
    /**
     * Testing only: deliver flips *without* the fail-safe micro-tag
     * clear, modelling hardware without the micro-tag protection.
     * Proves the oracle is falsifiable.
     */
    void setAllowForgery(bool allow) { allowForgery_ = allow; }
    bool allowForgery() const { return allowForgery_; }
    /** @} */

    uint64_t seed() const { return seed_; }
    StatGroup &stats() { return stats_; }

    Counter faultsInjected;     ///< Total faults delivered.
    Counter tagsCleared;        ///< Injected tag clears.
    Counter bitsFlipped;        ///< Injected data bit flips.
    Counter busDrops;           ///< Dropped bus transactions.
    Counter busDelays;          ///< Delayed bus transactions.
    Counter revokerStalls;      ///< Stall windows opened.
    Counter mallocStalls;       ///< Stalls landed on blocked mallocs.
    Counter epochsStuck;        ///< Stuck-epoch faults armed.
    Counter bitmapBitsPainted;  ///< Spurious revocation bits set.
    Counter spuriousFaults;     ///< Spurious traps delivered.
    Counter kicksObserved;      ///< Recovery kicks that cleared us.
    Counter nicPayloadFlips;    ///< Corrupted NIC payload beats.
    Counter nicDescriptorFlips; ///< Corrupted NIC RX descriptors.
    Counter nicLinkDrops;       ///< Frames eaten by the link.
    Counter switchPortStalls;   ///< Switch-port stall windows opened.
    Counter flowStateFlips;     ///< Scrambled flow-table entries.
    Counter brokerQueueFlips;   ///< Scrambled broker queue records.
    Counter capTableFlips;      ///< Scrambled object-cap entries.
    Counter safetyViolations;   ///< MUST stay zero outside forgery mode.

  private:
    void fire(uint64_t nowCycle);

    uint64_t seed_;
    Rng streams_[kFaultSiteCount];
    Rng selector_;

    FaultPlan plan_;
    bool armed_ = false;
    bool fired_ = false;
    bool allowForgery_ = false;

    mem::TaggedMemory *sram_ = nullptr;
    revoker::RevocationBitmap *bitmap_ = nullptr;

    /** Delivery state. */
    uint64_t busTransactions_ = 0;
    uint64_t nicDeliveries_ = 0;
    uint64_t nicArrivals_ = 0;
    uint64_t switchTicks_ = 0;
    uint64_t flowTouches_ = 0;
    uint64_t brokerTouches_ = 0;
    uint64_t capTouches_ = 0;
    uint32_t linkDropBurstLeft_ = 0;
    uint32_t pendingSpurious_ = 0;
    uint32_t spuriousCause_ = 0;
    bool stalled_ = false;
    uint64_t stallDeadline_ = 0;
    bool epochStuck_ = false;

    /** Granules disturbed by injection and not yet rewritten. */
    std::unordered_set<uint32_t> poisoned_;

    StatGroup stats_{"fault_injector"};
};

} // namespace cheriot::fault

#endif // CHERIOT_FAULT_FAULT_INJECTOR_H
