#include "fault/fault_injector.h"

#include "mem/bus.h"
#include "mem/tagged_memory.h"
#include "revoker/revocation_bitmap.h"
#include "sim/csr.h"
#include "util/log.h"

namespace cheriot::fault
{

namespace
{

/** Causes a glitched core can plausibly raise spuriously. */
constexpr sim::TrapCause kSpuriousCauses[] = {
    sim::TrapCause::CheriTagViolation,
    sim::TrapCause::CheriBoundsViolation,
    sim::TrapCause::CheriPermViolation,
    sim::TrapCause::LoadAccessFault,
    sim::TrapCause::IllegalInstruction,
};
constexpr uint32_t kSpuriousCauseCount =
    sizeof(kSpuriousCauses) / sizeof(kSpuriousCauses[0]);

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::TagClear: return "tag-clear";
      case FaultSite::DataFlip: return "data-flip";
      case FaultSite::BusDrop: return "bus-drop";
      case FaultSite::BusDelay: return "bus-delay";
      case FaultSite::RevokerStall: return "revoker-stall";
      case FaultSite::RevokerStuckEpoch: return "stuck-epoch";
      case FaultSite::BitmapCorrupt: return "bitmap-corrupt";
      case FaultSite::SpuriousFault: return "spurious-fault";
      case FaultSite::FaultStorm: return "fault-storm";
      case FaultSite::MallocStall: return "malloc-stall";
      case FaultSite::NicDmaCorrupt: return "nic-dma-corrupt";
      case FaultSite::NicRingCorrupt: return "nic-ring-corrupt";
      case FaultSite::NicLinkDrop: return "nic-link-drop";
      case FaultSite::SwitchPortStall: return "switch-port-stall";
      case FaultSite::FlowStateCorrupt: return "flow-state-corrupt";
      case FaultSite::BrokerQueueCorrupt: return "broker-queue-corrupt";
      case FaultSite::CapTableCorrupt: return "cap-table-corrupt";
      case FaultSite::kCount: break;
    }
    return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed)
    : seed_(seed), selector_(Rng::forStream(seed, kFaultSiteCount))
{
    for (uint32_t i = 0; i < kFaultSiteCount; ++i) {
        streams_[i] = Rng::forStream(seed, i);
    }
    stats_.registerCounter("faultsInjected", faultsInjected);
    stats_.registerCounter("tagsCleared", tagsCleared);
    stats_.registerCounter("bitsFlipped", bitsFlipped);
    stats_.registerCounter("busDrops", busDrops);
    stats_.registerCounter("busDelays", busDelays);
    stats_.registerCounter("revokerStalls", revokerStalls);
    stats_.registerCounter("mallocStalls", mallocStalls);
    stats_.registerCounter("epochsStuck", epochsStuck);
    stats_.registerCounter("bitmapBitsPainted", bitmapBitsPainted);
    stats_.registerCounter("spuriousFaults", spuriousFaults);
    stats_.registerCounter("kicksObserved", kicksObserved);
    stats_.registerCounter("nicPayloadFlips", nicPayloadFlips);
    stats_.registerCounter("nicDescriptorFlips", nicDescriptorFlips);
    stats_.registerCounter("nicLinkDrops", nicLinkDrops);
    stats_.registerCounter("switchPortStalls", switchPortStalls);
    stats_.registerCounter("flowStateFlips", flowStateFlips);
    stats_.registerCounter("brokerQueueFlips", brokerQueueFlips);
    stats_.registerCounter("capTableFlips", capTableFlips);
    stats_.registerCounter("safetyViolations", safetyViolations);
}

FaultPlan
FaultInjector::planNext(uint64_t horizonCycles, uint32_t memBase,
                        uint32_t memSize)
{
    FaultPlan plan;
    plan.site = static_cast<FaultSite>(selector_.below(kFaultSiteCount));
    Rng &rng = streams_[static_cast<uint32_t>(plan.site)];

    // Land the trigger in the middle 80% of the horizon so the fault
    // hits a warmed-up system but leaves time to observe recovery.
    const uint64_t lo = horizonCycles / 10;
    const uint64_t span = horizonCycles - 2 * lo;
    plan.triggerCycle = lo + rng.next64() % (span == 0 ? 1 : span);

    switch (plan.site) {
      case FaultSite::TagClear:
      case FaultSite::DataFlip:
        plan.addr = memBase + (rng.below(memSize) & ~7u);
        plan.param = rng.below(64); // Bit index within the granule.
        break;
      case FaultSite::BusDrop:
        // Burst length never exceeds the bus retry budget, modelling
        // transient glitches; a permanently dead bus is out of scope.
        plan.triggerTransaction = rng.next64() % 4096;
        plan.param = 1 + rng.below(mem::Bus::kMaxRetries);
        break;
      case FaultSite::BusDelay:
        plan.triggerTransaction = rng.next64() % 4096;
        plan.param = 1 + rng.below(16); // Extra beats of latency.
        break;
      case FaultSite::RevokerStall:
        plan.param = 1024 + rng.below(64 * 1024); // Stall duration.
        break;
      case FaultSite::MallocStall:
        // Stall windows from "a hiccup the backoff absorbs" to "far
        // beyond the backoff budget" so both the recovered-retry and
        // the bounded-timeout → OutOfMemory paths get exercised.
        plan.param = 4096 + rng.below(512 * 1024);
        break;
      case FaultSite::NicDmaCorrupt:
      case FaultSite::NicRingCorrupt:
        // Fires on the Nth packet delivery; the short count keeps the
        // trigger inside a campaign run's modest packet budget. The
        // param picks the granule and bit at delivery time.
        plan.triggerTransaction = rng.below(16);
        plan.param = static_cast<uint32_t>(rng.next64());
        break;
      case FaultSite::NicLinkDrop:
        // Fires on the Nth frame arrival; a short burst, so a
        // retransmitting sender always gets through eventually.
        plan.triggerTransaction = rng.below(64);
        plan.param = 1 + rng.below(4);
        break;
      case FaultSite::SwitchPortStall:
        // Fires on the Nth fabric tick; addr selects the port
        // (reduced modulo the port count at delivery).
        plan.triggerTransaction = rng.below(256);
        plan.addr = rng.next();
        plan.param = 1 + rng.below(32); // Stall window in ticks.
        break;
      case FaultSite::FlowStateCorrupt:
      case FaultSite::BrokerQueueCorrupt:
      case FaultSite::CapTableCorrupt:
        // Fires on the Nth flow-table / broker-queue / cap-table
        // touch; the param is the scramble pattern applied to the
        // targeted entry.
        plan.triggerTransaction = rng.below(32);
        plan.param = static_cast<uint32_t>(rng.next64() | 1u);
        break;
      case FaultSite::RevokerStuckEpoch:
        break;
      case FaultSite::BitmapCorrupt:
        plan.addr = memBase + (rng.below(memSize) & ~7u);
        break;
      case FaultSite::SpuriousFault:
        plan.param = rng.below(kSpuriousCauseCount);
        break;
      case FaultSite::FaultStorm:
        // Burst length × cause: a storm of identical spurious traps.
        plan.param = (rng.below(kSpuriousCauseCount) << 8) |
                     (4 + rng.below(12));
        break;
      case FaultSite::kCount:
        break;
    }
    return plan;
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    plan_ = plan;
    armed_ = true;
    fired_ = false;
}

void
FaultInjector::fire(uint64_t nowCycle)
{
    fired_ = true;
    faultsInjected++;
    switch (plan_.site) {
      case FaultSite::TagClear:
        if (sram_ != nullptr) {
            sram_->injectTagClear(plan_.addr);
            tagsCleared++;
        }
        break;
      case FaultSite::DataFlip:
        if (sram_ != nullptr) {
            // Poison before the flip: the granule counts as disturbed
            // whether or not the fail-safe micro-tag clear applies.
            if (sram_->tagAt(plan_.addr)) {
                poisoned_.insert(plan_.addr & ~7u);
            }
            sram_->injectDataFlip(plan_.addr, plan_.param,
                                  /*failSafe=*/!allowForgery_);
            bitsFlipped++;
        }
        break;
      case FaultSite::RevokerStall:
        stalled_ = true;
        stallDeadline_ = nowCycle + plan_.param;
        revokerStalls++;
        break;
      case FaultSite::RevokerStuckEpoch:
        epochStuck_ = true;
        epochsStuck++;
        break;
      case FaultSite::BitmapCorrupt:
        if (bitmap_ != nullptr && bitmap_->covers(plan_.addr)) {
            // Fail-safe direction only: painting a bit over-revokes
            // (availability fault); clearing one would need ECC and
            // is out of the modelled threat.
            bitmap_->setRange(plan_.addr, 1);
            bitmapBitsPainted++;
        }
        break;
      case FaultSite::SpuriousFault:
        pendingSpurious_ = 1;
        spuriousCause_ = static_cast<uint32_t>(
            kSpuriousCauses[plan_.param % kSpuriousCauseCount]);
        break;
      case FaultSite::FaultStorm:
        pendingSpurious_ = plan_.param & 0xff;
        spuriousCause_ = static_cast<uint32_t>(
            kSpuriousCauses[(plan_.param >> 8) % kSpuriousCauseCount]);
        break;
      case FaultSite::BusDrop:
      case FaultSite::BusDelay:
      case FaultSite::MallocStall:
      case FaultSite::NicDmaCorrupt:
      case FaultSite::NicRingCorrupt:
      case FaultSite::NicLinkDrop:
      case FaultSite::SwitchPortStall:
      case FaultSite::FlowStateCorrupt:
      case FaultSite::BrokerQueueCorrupt:
      case FaultSite::CapTableCorrupt:
      case FaultSite::kCount:
        break; // Event-triggered: delivered by their own hooks.
    }
}

void
FaultInjector::tick(uint64_t nowCycle)
{
    // Backstop: a stall window expires by itself even if nothing
    // kicks the engine, so an idle system cannot wedge forever.
    if (stalled_ && nowCycle >= stallDeadline_) {
        stalled_ = false;
    }
    if (!armed_ || fired_) {
        return;
    }
    if (plan_.site == FaultSite::BusDrop ||
        plan_.site == FaultSite::BusDelay ||
        plan_.site == FaultSite::MallocStall ||
        plan_.site == FaultSite::NicDmaCorrupt ||
        plan_.site == FaultSite::NicRingCorrupt ||
        plan_.site == FaultSite::NicLinkDrop ||
        plan_.site == FaultSite::SwitchPortStall ||
        plan_.site == FaultSite::FlowStateCorrupt ||
        plan_.site == FaultSite::BrokerQueueCorrupt ||
        plan_.site == FaultSite::CapTableCorrupt) {
        return; // Event-triggered, not cycle-triggered.
    }
    if (nowCycle >= plan_.triggerCycle) {
        fire(nowCycle);
    }
}

bool
FaultInjector::takeSpuriousFault(uint32_t *cause)
{
    if (pendingSpurious_ == 0) {
        return false;
    }
    --pendingSpurious_;
    spuriousFaults++;
    *cause = spuriousCause_;
    return true;
}

uint32_t
FaultInjector::busTransactionFaults(uint32_t *extraBeats)
{
    const uint64_t ordinal = busTransactions_++;
    if (!armed_ || fired_) {
        return 0;
    }
    if (plan_.site == FaultSite::BusDrop &&
        ordinal >= plan_.triggerTransaction) {
        fired_ = true;
        faultsInjected++;
        busDrops += plan_.param;
        return plan_.param;
    }
    if (plan_.site == FaultSite::BusDelay &&
        ordinal >= plan_.triggerTransaction) {
        fired_ = true;
        faultsInjected++;
        busDelays++;
        *extraBeats += plan_.param;
    }
    return 0;
}

void
FaultInjector::mallocBackoffStarted(uint64_t nowCycle)
{
    if (!armed_ || fired_ || plan_.site != FaultSite::MallocStall) {
        return;
    }
    fired_ = true;
    faultsInjected++;
    mallocStalls++;
    revokerStalls++;
    stalled_ = true;
    stallDeadline_ = nowCycle + plan_.param;
}

void
FaultInjector::nicDeliveryStarting(uint32_t descAddr)
{
    const uint64_t ordinal = nicDeliveries_++;
    if (!armed_ || fired_ || sram_ == nullptr ||
        plan_.site != FaultSite::NicRingCorrupt ||
        ordinal < plan_.triggerTransaction) {
        return;
    }
    fired_ = true;
    faultsInjected++;
    nicDescriptorFlips++;
    // The descriptor is exactly one granule; flip a bit of it right
    // before the device fetches it.
    if (sram_->tagAt(descAddr)) {
        poisoned_.insert(descAddr & ~7u);
    }
    sram_->injectDataFlip(descAddr, plan_.param % 64,
                          /*failSafe=*/!allowForgery_);
}

void
FaultInjector::nicDmaLanded(uint32_t addr, uint32_t bytes)
{
    if (!armed_ || fired_ || sram_ == nullptr || bytes == 0 ||
        plan_.site != FaultSite::NicDmaCorrupt ||
        nicDeliveries_ <= plan_.triggerTransaction) {
        return;
    }
    fired_ = true;
    faultsInjected++;
    nicPayloadFlips++;
    const uint32_t granules = (bytes + 7) / 8;
    const uint32_t target = (addr & ~7u) + 8 * (plan_.param % granules);
    if (sram_->tagAt(target)) {
        poisoned_.insert(target & ~7u);
    }
    sram_->injectDataFlip(target, (plan_.param >> 8) % 64,
                          /*failSafe=*/!allowForgery_);
}

bool
FaultInjector::nicLinkFrameArriving()
{
    const uint64_t ordinal = nicArrivals_++;
    if (linkDropBurstLeft_ > 0) {
        linkDropBurstLeft_--;
        nicLinkDrops++;
        return true;
    }
    if (!armed_ || fired_ || plan_.site != FaultSite::NicLinkDrop ||
        ordinal < plan_.triggerTransaction) {
        return false;
    }
    fired_ = true;
    faultsInjected++;
    nicLinkDrops++;
    linkDropBurstLeft_ = plan_.param > 0 ? plan_.param - 1 : 0;
    return true;
}

bool
FaultInjector::switchTick(uint32_t *portSel, uint32_t *stallTicks)
{
    const uint64_t ordinal = switchTicks_++;
    if (!armed_ || fired_ || plan_.site != FaultSite::SwitchPortStall ||
        ordinal < plan_.triggerTransaction) {
        return false;
    }
    fired_ = true;
    faultsInjected++;
    switchPortStalls++;
    *portSel = plan_.addr;
    *stallTicks = plan_.param;
    return true;
}

bool
FaultInjector::flowStateTouched(uint32_t *param)
{
    const uint64_t ordinal = flowTouches_++;
    if (!armed_ || fired_ || plan_.site != FaultSite::FlowStateCorrupt ||
        ordinal < plan_.triggerTransaction) {
        return false;
    }
    fired_ = true;
    faultsInjected++;
    flowStateFlips++;
    *param = plan_.param;
    return true;
}

bool
FaultInjector::brokerQueueTouched(uint32_t *param)
{
    const uint64_t ordinal = brokerTouches_++;
    if (!armed_ || fired_ ||
        plan_.site != FaultSite::BrokerQueueCorrupt ||
        ordinal < plan_.triggerTransaction) {
        return false;
    }
    fired_ = true;
    faultsInjected++;
    brokerQueueFlips++;
    *param = plan_.param;
    return true;
}

bool
FaultInjector::capTableTouched(uint32_t *param)
{
    const uint64_t ordinal = capTouches_++;
    if (!armed_ || fired_ ||
        plan_.site != FaultSite::CapTableCorrupt ||
        ordinal < plan_.triggerTransaction) {
        return false;
    }
    fired_ = true;
    faultsInjected++;
    capTableFlips++;
    *param = plan_.param;
    return true;
}

void
FaultInjector::revokerKicked()
{
    if (stalled_ || epochStuck_) {
        kicksObserved++;
    }
    stalled_ = false;
    epochStuck_ = false;
}

bool
FaultInjector::isPoisoned(uint32_t addr) const
{
    return poisoned_.count(addr & ~7u) != 0;
}

void
FaultInjector::notePoisonRepaired(uint32_t addr)
{
    poisoned_.erase(addr & ~7u);
}

void
FaultInjector::noteSafetyViolation(uint32_t addr)
{
    safetyViolations++;
    warn("fault: tagged capability dereferenced from poisoned granule "
         "0x%08x (memory-safety violation)",
         addr & ~7u);
}

} // namespace cheriot::fault
