/**
 * @file
 * Seeded fault-injection campaign over the paper's workloads.
 *
 * A campaign executes N independent runs. Run i constructs a fresh
 * FaultInjector seeded with Rng::deriveStreamSeed(campaignSeed, i),
 * draws one fault plan, arms it, and executes a workload (the IoT
 * application of §7.2.3 or the CoreMark guest of §7.2.1) with the
 * injector wired into the machine. Each run's output is compared
 * against an uninjected reference run and classified.
 *
 * The headline invariant — the reason the campaign exists — is that
 * no injected fault ever yields a successful dereference of a
 * corrupted capability: the injector's safety oracle (poisoned
 * granules vs. tagged loads) must report zero violations across the
 * whole campaign. Plain-data corruption that slips through without
 * tripping any detector is reported separately: it is an
 * ECC-class availability problem, not a memory-safety escape.
 */

#ifndef CHERIOT_FAULT_CAMPAIGN_H
#define CHERIOT_FAULT_CAMPAIGN_H

#include "fault/fault_injector.h"

#include <cstdint>
#include <vector>

namespace cheriot::fault
{

/** Which workloads the campaign alternates between. */
enum class CampaignWorkload : uint8_t
{
    Both = 0, ///< Alternate IoT and CoreMark runs.
    Iot,
    CoreMark,
};

const char *campaignWorkloadName(CampaignWorkload workload);

/** How one injected run ended, relative to the clean reference. */
enum class Outcome : uint8_t
{
    NotTriggered = 0, ///< The plan never fired (trigger past the run).
    Benign,           ///< Fired; output identical, nothing reacted.
    Recovered,        ///< Fired; output identical after visible recovery.
    Degraded,         ///< Output differs, but a detector saw the fault.
    Detected,         ///< Run failed visibly (fault contained, not silent).
    SilentDataCorruption, ///< Output differs with no detector firing.
    kCount,
};

constexpr uint32_t kOutcomeCount = static_cast<uint32_t>(Outcome::kCount);

const char *outcomeName(Outcome outcome);

struct CampaignConfig
{
    uint64_t seed = 0xc8e210a5u;
    uint32_t injections = 100;
    CampaignWorkload workload = CampaignWorkload::Both;
    bool verbose = false;
    /** Watchdog policy for the IoT runs: a tight budget so campaigns
     * exercise quarantine + restart, not just handlers. */
    uint32_t faultBudget = 4;
    uint64_t restartDelayCycles = 2048;
};

/** One run's record (kept for verbose reporting / debugging). */
struct CampaignRun
{
    uint32_t index = 0;
    uint64_t seed = 0;
    CampaignWorkload workload = CampaignWorkload::Iot;
    FaultPlan plan;
    bool fired = false;
    Outcome outcome = Outcome::NotTriggered;
    uint64_t safetyViolations = 0;
};

struct CampaignReport
{
    CampaignConfig config;
    /** Injected-site × outcome matrix. */
    uint64_t matrix[kFaultSiteCount][kOutcomeCount] = {};
    uint64_t totals[kOutcomeCount] = {};
    uint64_t runs = 0;
    uint64_t fired = 0;
    /** Safety-oracle trips summed over every run. MUST be zero. */
    uint64_t safetyViolations = 0;
    std::vector<CampaignRun> details;

    /** The campaign's assertion: corrupted capabilities are never
     * successfully dereferenced. */
    bool invariantHolds() const { return safetyViolations == 0; }
    uint64_t outcomes(Outcome outcome) const
    {
        return totals[static_cast<uint32_t>(outcome)];
    }
};

CampaignReport runFaultCampaign(const CampaignConfig &config);

/** Human-readable summary (site × outcome matrix + verdict). */
void printCampaignReport(const CampaignReport &report);

} // namespace cheriot::fault

#endif // CHERIOT_FAULT_CAMPAIGN_H
