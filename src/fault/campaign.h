/**
 * @file
 * Seeded fault-injection campaign over the paper's workloads.
 *
 * A campaign executes N independent runs. Run i constructs a fresh
 * FaultInjector seeded with Rng::deriveStreamSeed(campaignSeed, i),
 * draws one fault plan, arms it, and executes a workload (the IoT
 * application of §7.2.3 or the CoreMark guest of §7.2.1) with the
 * injector wired into the machine. Each run's output is compared
 * against an uninjected reference run and classified.
 *
 * The headline invariant — the reason the campaign exists — is that
 * no injected fault ever yields a successful dereference of a
 * corrupted capability: the injector's safety oracle (poisoned
 * granules vs. tagged loads) must report zero violations across the
 * whole campaign. Plain-data corruption that slips through without
 * tripping any detector is reported separately: it is an
 * ECC-class availability problem, not a memory-safety escape.
 */

#ifndef CHERIOT_FAULT_CAMPAIGN_H
#define CHERIOT_FAULT_CAMPAIGN_H

#include "fault/fault_injector.h"
#include "snapshot/snapshot.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::fault
{

/** Which workloads the campaign alternates between. */
enum class CampaignWorkload : uint8_t
{
    Both = 0, ///< Alternate IoT and CoreMark runs.
    Iot,
    CoreMark,
};

const char *campaignWorkloadName(CampaignWorkload workload);

/** How one injected run ended, relative to the clean reference. */
enum class Outcome : uint8_t
{
    NotTriggered = 0, ///< The plan never fired (trigger past the run).
    Benign,           ///< Fired; output identical, nothing reacted.
    Recovered,        ///< Fired; output identical after visible recovery.
    Degraded,         ///< Output differs, but a detector saw the fault.
    Detected,         ///< Run failed visibly (fault contained, not silent).
    SilentDataCorruption, ///< Output differs with no detector firing.
    kCount,
};

constexpr uint32_t kOutcomeCount = static_cast<uint32_t>(Outcome::kCount);

const char *outcomeName(Outcome outcome);

struct CampaignConfig
{
    uint64_t seed = 0xc8e210a5u;
    uint32_t injections = 100;
    CampaignWorkload workload = CampaignWorkload::Both;
    bool verbose = false;
    /** Watchdog policy for the IoT runs: a tight budget so campaigns
     * exercise quarantine + restart, not just handlers. */
    uint32_t faultBudget = 4;
    uint64_t restartDelayCycles = 2048;
    /** First injection index: run indices [startIndex, startIndex +
     * injections). Seeds derive from the absolute index, so
     * `--start-index I --injections 1` reproduces injection I of a
     * larger campaign exactly. */
    uint32_t startIndex = 0;
    /** When non-empty, every failing injection (safety violation or
     * silent corruption) writes a replayable repro record —
     * pre-fault snapshot included — into this directory. */
    std::string reproDir;
    /** Record *every* injection, not only failing ones (reproDir must
     * be set). Lets any run of a campaign be replayed in isolation —
     * and lets CI assert replay fidelity on healthy campaigns, whose
     * failing-injection set is empty by design. */
    bool reproAll = false;
};

/** One run's record (kept for verbose reporting / debugging). */
struct CampaignRun
{
    uint32_t index = 0;
    uint64_t seed = 0;
    CampaignWorkload workload = CampaignWorkload::Iot;
    FaultPlan plan;
    bool fired = false;
    Outcome outcome = Outcome::NotTriggered;
    uint64_t safetyViolations = 0;
};

struct CampaignReport
{
    CampaignConfig config;
    /** Injected-site × outcome matrix. */
    uint64_t matrix[kFaultSiteCount][kOutcomeCount] = {};
    uint64_t totals[kOutcomeCount] = {};
    uint64_t runs = 0;
    uint64_t fired = 0;
    /** Safety-oracle trips summed over every run. MUST be zero. */
    uint64_t safetyViolations = 0;
    std::vector<CampaignRun> details;

    /** @name First failing injection (safety violation or silent
     * corruption), for exact one-line reproduction @{ */
    int64_t firstFailingIndex = -1;
    uint64_t firstFailingSeed = 0;
    CampaignWorkload firstFailingWorkload = CampaignWorkload::Iot;
    /** @} */
    /** Repro records written this campaign (reproDir set). */
    std::vector<std::string> reproPaths;

    /** The campaign's assertion: corrupted capabilities are never
     * successfully dereferenced. */
    bool invariantHolds() const { return safetyViolations == 0; }
    uint64_t outcomes(Outcome outcome) const
    {
        return totals[static_cast<uint32_t>(outcome)];
    }
};

CampaignReport runFaultCampaign(const CampaignConfig &config);

/** Human-readable summary (site × outcome matrix + verdict). */
void printCampaignReport(const CampaignReport &report);

/**
 * Everything needed to replay one injection in isolation: the
 * identifying seeds, the armed plan, the reference summary the
 * classifier compared against, and the pre-fault system snapshot the
 * replayed run resumes from. Serialized as a two-section snapshot
 * image ("repro" metadata + "prefault" state), so files get the same
 * versioning and CRC protection as checkpoints.
 */
struct ReproRecord
{
    uint64_t campaignSeed = 0;
    uint32_t injectionIndex = 0;
    uint64_t runSeed = 0;
    CampaignWorkload workload = CampaignWorkload::Iot;
    FaultPlan plan;
    Outcome outcome = Outcome::NotTriggered;
    uint64_t safetyViolations = 0;

    /** Campaign knobs the workload configuration depends on. */
    uint32_t faultBudget = 4;
    uint64_t restartDelayCycles = 2048;
    uint64_t cmBudget = 0; ///< CoreMark instruction budget.

    /** Reference-run summary the classifier needs. @{ */
    struct IotReference
    {
        bool ok = false;
        uint64_t packetsProcessed = 0;
        uint64_t jsTicks = 0;
        uint32_t finalLedState = 0;
        uint64_t calleeFaults = 0;
        uint64_t handlerInvocations = 0;
        uint64_t forcedUnwinds = 0;
        uint64_t trapsTaken = 0;
        uint64_t nicRxDrops = 0;
        uint64_t nicRxErrors = 0;
        uint64_t netParseDrops = 0;
        uint64_t netRingCorruptionsDetected = 0;
    } iotRef;
    struct CoreMarkReference
    {
        bool valid = false;
        uint32_t checksum = 0;
    } cmRef;
    /** @} */

    /** System state at the start of the injected run, before the
     * armed plan can fire. */
    snapshot::SnapshotImage preFaultImage;
};

/** @name Repro record file I/O (crash-consistent, CRC-validated) @{ */
bool writeReproRecord(const ReproRecord &record, const std::string &path);
bool readReproRecord(const std::string &path, ReproRecord *out);
/** @} */

/** Outcome of replaying a repro record. */
struct ReplayResult
{
    Outcome outcome = Outcome::NotTriggered;
    bool fired = false;
    uint64_t safetyViolations = 0;
    /** Replay reproduced the recorded classification. */
    bool matchesRecorded = false;
};

/**
 * Replay a recorded injection in isolation: rebuild the injector from
 * the recorded seed, arm the recorded plan, resume the workload from
 * the pre-fault snapshot and classify against the recorded reference.
 */
ReplayResult replayRepro(const ReproRecord &record);

} // namespace cheriot::fault

#endif // CHERIOT_FAULT_CAMPAIGN_H
