/**
 * @file
 * Lightweight statistics counters for the simulator.
 *
 * Modules register named counters on a StatGroup; benchmark harnesses
 * snapshot and diff them around regions of interest, in the same spirit
 * as gem5's stats package (though far smaller).
 */

#ifndef CHERIOT_UTIL_STATS_H
#define CHERIOT_UTIL_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cheriot
{

/**
 * Percentile of @p samples with linear interpolation between closest
 * ranks (the R-7 estimator: rank = p/100 * (n-1)). Unlike the
 * truncating nearest-rank picks the bench harnesses used to hand-roll,
 * small sample counts do not collapse the tail — p99 of 10 samples
 * interpolates between the two largest values instead of simply
 * returning the maximum. @p samples need not be sorted; a sorted copy
 * is taken. Returns 0 for an empty set.
 */
double percentileInterpolated(std::vector<uint64_t> samples, double p);

/**
 * Sampled-value distribution: records every observation and reports
 * count/min/max/mean plus interpolated percentiles. Used by bench
 * harnesses for latency distributions; not part of any snapshot.
 */
class Histogram
{
  public:
    void record(uint64_t value);

    uint64_t count() const { return samples_.size(); }
    uint64_t min() const;
    uint64_t max() const;
    double mean() const;
    /** Interpolated percentile (see percentileInterpolated). */
    double percentile(double p) const;
    /** Percentile rounded to the nearest integer (JSON-friendly). */
    uint64_t percentileRounded(double p) const;

    const std::vector<uint64_t> &samples() const { return samples_; }

  private:
    std::vector<uint64_t> samples_;
};

/** A named monotonically increasing 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    void operator+=(uint64_t delta) { value_ += delta; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    /** Overwrite the value; only for snapshot restore. */
    void set(uint64_t value) { value_ = value; }

  private:
    uint64_t value_ = 0;
};

/**
 * A collection of counters owned by one simulated component.
 *
 * Counters are registered by pointer so the owning component can bump
 * them without any lookup cost on the simulation fast path.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p name; returns @p counter. */
    Counter &registerCounter(const std::string &name, Counter &counter);

    /** Snapshot of all counters as name → value. */
    std::map<std::string, uint64_t> snapshot() const;

    /** Reset every registered counter to zero. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, Counter *>> counters_;
};

} // namespace cheriot

#endif // CHERIOT_UTIL_STATS_H
