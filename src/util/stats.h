/**
 * @file
 * Lightweight statistics counters for the simulator.
 *
 * Modules register named counters on a StatGroup; benchmark harnesses
 * snapshot and diff them around regions of interest, in the same spirit
 * as gem5's stats package (though far smaller).
 */

#ifndef CHERIOT_UTIL_STATS_H
#define CHERIOT_UTIL_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cheriot
{

/** A named monotonically increasing 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    void operator+=(uint64_t delta) { value_ += delta; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    /** Overwrite the value; only for snapshot restore. */
    void set(uint64_t value) { value_ = value; }

  private:
    uint64_t value_ = 0;
};

/**
 * A collection of counters owned by one simulated component.
 *
 * Counters are registered by pointer so the owning component can bump
 * them without any lookup cost on the simulation fast path.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p name; returns @p counter. */
    Counter &registerCounter(const std::string &name, Counter &counter);

    /** Snapshot of all counters as name → value. */
    std::map<std::string, uint64_t> snapshot() const;

    /** Reset every registered counter to zero. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, Counter *>> counters_;
};

} // namespace cheriot

#endif // CHERIOT_UTIL_STATS_H
