/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() is for internal model bugs
 * ("should never happen regardless of user input"), fatal() is for user
 * errors (bad configuration), warn()/inform() are advisory.
 */

#ifndef CHERIOT_UTIL_LOG_H
#define CHERIOT_UTIL_LOG_H

#include <cstdarg>
#include <string>

namespace cheriot
{

/** Severity levels for log messages. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/** Set the minimum level that is actually printed (default Warn). */
void setLogLevel(LogLevel level);

/** Current minimum printed level. */
LogLevel logLevel();

/** printf-style log at an explicit level. */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Advisory message about surprising but tolerable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Status message with no connotation of incorrectness. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to an internal model bug. Never returns.
 * Calls abort() so a debugger or core dump can capture state.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to a user/configuration error. Never returns.
 * Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list args);

} // namespace cheriot

#endif // CHERIOT_UTIL_LOG_H
