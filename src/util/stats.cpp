#include "util/stats.h"

namespace cheriot
{

Counter &
StatGroup::registerCounter(const std::string &name, Counter &counter)
{
    counters_.emplace_back(name, &counter);
    return counter;
}

std::map<std::string, uint64_t>
StatGroup::snapshot() const
{
    std::map<std::string, uint64_t> result;
    for (const auto &[name, counter] : counters_) {
        result[name_ + "." + name] = counter->value();
    }
    return result;
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : counters_) {
        (void)name;
        counter->reset();
    }
}

} // namespace cheriot
