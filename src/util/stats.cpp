#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace cheriot
{

double
percentileInterpolated(std::vector<uint64_t> samples, double p)
{
    if (samples.empty()) {
        return 0.0;
    }
    std::sort(samples.begin(), samples.end());
    p = std::clamp(p, 0.0, 100.0);
    const double rank =
        p / 100.0 * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<double>(samples[lo]) +
           frac * (static_cast<double>(samples[hi]) -
                   static_cast<double>(samples[lo]));
}

void
Histogram::record(uint64_t value)
{
    samples_.push_back(value);
}

uint64_t
Histogram::min() const
{
    if (samples_.empty()) {
        return 0;
    }
    return *std::min_element(samples_.begin(), samples_.end());
}

uint64_t
Histogram::max() const
{
    if (samples_.empty()) {
        return 0;
    }
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Histogram::mean() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (uint64_t s : samples_) {
        sum += static_cast<double>(s);
    }
    return sum / static_cast<double>(samples_.size());
}

double
Histogram::percentile(double p) const
{
    return percentileInterpolated(samples_, p);
}

uint64_t
Histogram::percentileRounded(double p) const
{
    return static_cast<uint64_t>(std::llround(percentile(p)));
}

Counter &
StatGroup::registerCounter(const std::string &name, Counter &counter)
{
    counters_.emplace_back(name, &counter);
    return counter;
}

std::map<std::string, uint64_t>
StatGroup::snapshot() const
{
    std::map<std::string, uint64_t> result;
    for (const auto &[name, counter] : counters_) {
        result[name_ + "." + name] = counter->value();
    }
    return result;
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : counters_) {
        (void)name;
        counter->reset();
    }
}

} // namespace cheriot
