/**
 * @file
 * Bit-manipulation helpers used throughout the CHERIoT model.
 *
 * These mirror the small utility layer every hardware model needs:
 * field extraction/insertion, sign extension, alignment, and population
 * counts, all constexpr so the capability codec can be evaluated at
 * compile time in tests.
 */

#ifndef CHERIOT_UTIL_BITS_H
#define CHERIOT_UTIL_BITS_H

#include <cstdint>
#include <type_traits>

namespace cheriot
{

/** Extract bits [lo, lo+width) of @p value. */
template <typename T>
constexpr T
bits(T value, unsigned lo, unsigned width)
{
    static_assert(std::is_unsigned_v<T>, "bits() requires unsigned types");
    if (width >= sizeof(T) * 8) {
        return value >> lo;
    }
    return (value >> lo) & ((T{1} << width) - 1);
}

/** Extract a single bit of @p value. */
template <typename T>
constexpr bool
bit(T value, unsigned index)
{
    return ((value >> index) & T{1}) != 0;
}

/** Return @p value with bits [lo, lo+width) replaced by @p field. */
template <typename T>
constexpr T
insertBits(T value, unsigned lo, unsigned width, T field)
{
    const T mask = width >= sizeof(T) * 8 ? ~T{0} : ((T{1} << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr int32_t
signExtend32(uint32_t value, unsigned width)
{
    const unsigned shift = 32 - width;
    return static_cast<int32_t>(value << shift) >> shift;
}

/** Round @p value down to a multiple of @p align (a power of two). */
template <typename T>
constexpr T
alignDown(T value, T align)
{
    return value & ~(align - 1);
}

/** Round @p value up to a multiple of @p align (a power of two). */
template <typename T>
constexpr T
alignUp(T value, T align)
{
    return (value + align - 1) & ~(align - 1);
}

/** True iff @p value is a power of two (zero is not). */
template <typename T>
constexpr bool
isPowerOfTwo(T value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Number of bits needed to represent @p value (0 needs 0 bits). */
constexpr unsigned
bitWidth(uint64_t value)
{
    unsigned width = 0;
    while (value != 0) {
        ++width;
        value >>= 1;
    }
    return width;
}

/** Count of set bits. */
constexpr unsigned
popcount(uint64_t value)
{
    unsigned count = 0;
    while (value != 0) {
        count += value & 1;
        value >>= 1;
    }
    return count;
}

} // namespace cheriot

#endif // CHERIOT_UTIL_BITS_H
