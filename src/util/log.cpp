#include "util/log.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cheriot
{

namespace
{
LogLevel g_level = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
emit(LogLevel level, const char *fmt, va_list args)
{
    if (level < g_level) {
        return;
    }
    va_list copy;
    va_copy(copy, args);
    std::string body = vformat(fmt, copy);
    va_end(copy);
    std::fprintf(stderr, "[cheriot:%s] %s\n", levelName(level), body.c_str());
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0) {
        return "<format error>";
    }
    std::vector<char> buffer(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buffer.data(), buffer.size(), fmt, args);
    return std::string(buffer.data(), static_cast<size_t>(needed));
}

void
logf(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(level, fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit(LogLevel::Info, fmt, args);
    va_end(args);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string body = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "[cheriot:panic] %s\n", body.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string body = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "[cheriot:fatal] %s\n", body.c_str());
    std::exit(1);
}

} // namespace cheriot
