/**
 * @file
 * Deterministic pseudo-random number generation for workloads and
 * property tests.
 *
 * We use xoshiro128** rather than std::mt19937 so that workload streams
 * are reproducible across standard-library implementations and cheap to
 * seed per-test.
 */

#ifndef CHERIOT_UTIL_RNG_H
#define CHERIOT_UTIL_RNG_H

#include <cstdint>

namespace cheriot
{

/** Small, fast, deterministic PRNG (xoshiro128**). */
class Rng
{
  public:
    explicit constexpr Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the state words.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = static_cast<uint32_t>(z ^ (z >> 31));
        }
    }

    /**
     * Derive a 64-bit seed for an independent child stream.
     *
     * The (seed, streamId) pair is run through the SplitMix64
     * finaliser, whose avalanche guarantees that adjacent stream ids
     * land in unrelated regions of the state space. Fault campaigns
     * use one stream per injection site so that adding draws at one
     * site never perturbs another — the property that makes a
     * campaign reproducible bit-for-bit from a single master seed.
     */
    static constexpr uint64_t
    deriveStreamSeed(uint64_t seed, uint64_t streamId)
    {
        uint64_t z = seed + (streamId + 1) * 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** An independent generator for stream @p streamId under @p seed. */
    static constexpr Rng
    forStream(uint64_t seed, uint64_t streamId)
    {
        return Rng(deriveStreamSeed(seed, streamId));
    }

    /** Next raw 32-bit value. */
    constexpr uint32_t
    next()
    {
        const uint32_t result = rotl(state_[1] * 5, 7) * 9;
        const uint32_t t = state_[1] << 9;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 11);
        return result;
    }

    /** Next raw 64-bit value (two 32-bit draws). */
    constexpr uint64_t
    next64()
    {
        const uint64_t hi = next();
        return (hi << 32) | next();
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    constexpr uint32_t
    below(uint32_t bound)
    {
        // Lemire-style rejection-free multiply-shift; slight bias is
        // irrelevant for workload generation.
        return static_cast<uint32_t>(
            (static_cast<uint64_t>(next()) * bound) >> 32);
    }

    /** Uniform value in [lo, hi] inclusive. */
    constexpr uint32_t
    range(uint32_t lo, uint32_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability @p numer / @p denom. */
    constexpr bool
    chance(uint32_t numer, uint32_t denom)
    {
        return below(denom) < numer;
    }

    /** @name Raw state access, for snapshot save/restore only. @{ */
    constexpr void
    getState(uint32_t out[4]) const
    {
        for (int i = 0; i < 4; ++i) {
            out[i] = state_[i];
        }
    }

    constexpr void
    setState(const uint32_t in[4])
    {
        for (int i = 0; i < 4; ++i) {
            state_[i] = in[i];
        }
    }
    /** @} */

  private:
    static constexpr uint32_t
    rotl(uint32_t x, int k)
    {
        return (x << k) | (x >> (32 - k));
    }

    uint32_t state_[4] = {};
};

} // namespace cheriot

#endif // CHERIOT_UTIL_RNG_H
