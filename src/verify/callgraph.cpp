#include "verify/callgraph.h"

#include "verify/verifier.h"

#include <cstdio>
#include <optional>

namespace cheriot::verify
{

CallGraph
CallGraph::recover(const ProgramImage &image)
{
    CallGraph graph;
    // Per-register pending address of an auipcc-derived value. The
    // pattern tracked is auipcc rd, then any chain of cincaddrimm,
    // ending in csealentry: the classic static sentry mint. Any other
    // write to a tracked register invalidates it.
    std::optional<uint32_t> pending[isa::kNumRegs];
    for (size_t i = 0; i < image.words.size(); ++i) {
        const uint32_t pc = image.base + static_cast<uint32_t>(i) * 4;
        const isa::Inst inst = isa::decode(image.words[i]);
        switch (inst.op) {
          case isa::Op::Auipc:
            pending[inst.rd] = pc + inst.imm;
            continue;
          case isa::Op::CIncAddrImm:
            if (pending[inst.rs1].has_value()) {
                pending[inst.rd] = *pending[inst.rs1] + inst.imm;
            } else {
                pending[inst.rd].reset();
            }
            continue;
          case isa::Op::CSealEntry:
            if (pending[inst.rs1].has_value()) {
                graph.addNode(*pending[inst.rs1] & ~1u,
                              /*root=*/false, /*staticSentry=*/true);
            }
            pending[inst.rd].reset();
            continue;
          case isa::Op::Jal:
            if (inst.rd != 0) {
                graph.addEdge({pc, pc + inst.imm, /*viaSentry=*/false,
                               /*direct=*/true});
                graph.addNode(pc + inst.imm, false, false);
            }
            pending[inst.rd].reset();
            continue;
          default:
            // Anything else writing rd drops the tracked value. Loads,
            // stores and branches have rd == 0 in this encoding, so
            // clearing pending[rd] unconditionally is safe (x0 is
            // never tracked).
            pending[inst.rd].reset();
            continue;
        }
    }
    return graph;
}

void
CallGraph::addNode(uint32_t entry, bool root, bool staticSentry)
{
    CallGraphNode &node = nodes_[entry];
    node.entry = entry;
    node.root |= root;
    node.staticSentry |= staticSentry;
}

void
CallGraph::addEdge(const CallEdge &edge)
{
    const uint64_t key =
        (static_cast<uint64_t>(edge.sitePc) << 32) | edge.target;
    if (!edgeKeys_.insert(key).second) {
        return;
    }
    edges_.push_back(edge);
    addNode(edge.target, false, false);
}

uint32_t
CallGraph::functionOf(uint32_t pc) const
{
    auto it = nodes_.upper_bound(pc);
    if (it == nodes_.begin()) {
        return 0;
    }
    return std::prev(it)->first;
}

std::string
CallGraph::toDot(const std::string &name) const
{
    std::string out = "digraph \"" + name + "\" {\n";
    char line[160];
    for (const auto &[entry, node] : nodes_) {
        const char *shape = node.root ? "doubleoctagon"
                            : node.staticSentry ? "octagon"
                                                : "box";
        std::snprintf(line, sizeof(line),
                      "  f%08x [label=\"%08x%s\", shape=%s];\n", entry,
                      entry, node.staticSentry ? "\\n(sentry)" : "",
                      shape);
        out += line;
    }
    for (const auto &edge : edges_) {
        std::snprintf(line, sizeof(line),
                      "  f%08x -> f%08x [label=\"@%08x\"%s];\n",
                      functionOf(edge.sitePc), edge.target, edge.sitePc,
                      edge.viaSentry ? ", style=bold, color=red" : "");
        out += line;
    }
    out += "}\n";
    return out;
}

std::string
CallGraph::toJson(const std::string &name) const
{
    std::string out = "{\"image\": \"" + name + "\", \"functions\": [";
    char item[128];
    bool first = true;
    for (const auto &[entry, node] : nodes_) {
        std::snprintf(item, sizeof(item),
                      "%s{\"entry\": %u, \"root\": %s, "
                      "\"static_sentry\": %s}",
                      first ? "" : ", ", entry,
                      node.root ? "true" : "false",
                      node.staticSentry ? "true" : "false");
        out += item;
        first = false;
    }
    out += "], \"edges\": [";
    first = true;
    for (const auto &edge : edges_) {
        std::snprintf(item, sizeof(item),
                      "%s{\"site\": %u, \"caller\": %u, \"target\": %u, "
                      "\"via_sentry\": %s, \"direct\": %s}",
                      first ? "" : ", ", edge.sitePc,
                      functionOf(edge.sitePc), edge.target,
                      edge.viaSentry ? "true" : "false",
                      edge.direct ? "true" : "false");
        out += item;
        first = false;
    }
    out += "]}";
    return out;
}

} // namespace cheriot::verify
