/**
 * @file
 * Seeded-violation corpus for cheriot-verify.
 *
 * Each case is a small assembled guest program: half contain exactly
 * one deliberate capability-discipline violation (with the expected
 * finding class and PC recorded at assembly time), the other half are
 * "clean twins" exercising the same instruction patterns correctly.
 * The detection contract is 100%/0%: every violating case must yield
 * its expected finding, every clean case must yield none.
 */

#ifndef CHERIOT_VERIFY_CORPUS_H
#define CHERIOT_VERIFY_CORPUS_H

#include "verify/verifier.h"

#include <functional>

namespace cheriot::verify
{

struct CorpusCase
{
    std::string name;
    ProgramImage image;
    bool violating = false;
    /** Expected finding class and PC (valid iff violating). */
    FindingClass expected = FindingClass::Monotonicity;
    uint32_t expectedPc = 0;
};

/** The full corpus (violating cases and clean twins, stable order). */
const std::vector<CorpusCase> &corpus();

/**
 * A manifest-level lint case: boots a whole kernel image and lints it
 * against the default policy (kernels are not copyable, so each case
 * carries a builder instead of a prebuilt image). Violating cases
 * must yield at least one Lint finding; clean twins must yield none —
 * the same 100%/0% contract as the instruction corpus.
 */
struct LintCorpusCase
{
    std::string name;
    bool violating = false;
    /** Finding class a violating case must produce (Lint for policy
     * rules, SharedMutable for the sharing lint). */
    FindingClass expected = FindingClass::Lint;
    /** Build the image and return its lint report. */
    std::function<Report()> run;
};

/** Manifest lint corpus (violating images and clean twins). */
const std::vector<LintCorpusCase> &lintCorpus();

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_CORPUS_H
