#include "verify/corpus.h"

#include "cap/permissions.h"
#include "cap/sealing.h"
#include "isa/assembler.h"
#include "mem/memory_map.h"
#include "rtos/kernel.h"
#include "rtos/message_queue.h"
#include "verify/policy.h"

namespace cheriot::verify
{

namespace
{

using isa::A0;
using isa::A1;
using isa::A2;
using isa::A3;
using isa::A4;
using isa::Assembler;
using isa::Ra;
using isa::S0;
using isa::T0;
using isa::T1;
using isa::Zero;

constexpr uint32_t kCorpusBase = mem::kSramBase + 0x1000;

CorpusCase
finishCase(std::string name, Assembler &a, bool violating,
           FindingClass expected, uint32_t expectedPc)
{
    CorpusCase c;
    c.name = std::move(name);
    c.image.name = c.name;
    c.image.base = a.baseAddress();
    c.image.entry = a.baseAddress();
    c.image.words = a.finish();
    c.violating = violating;
    c.expected = expected;
    c.expectedPc = expectedPc;
    return c;
}

/** Narrow the memory root, then request wider bounds than the
 * narrowed capability carries. */
CorpusCase
boundsWiden()
{
    Assembler a(kCorpusBase);
    a.csetboundsimm(A2, A0, 16); // a2 = [0,+16) slice of the root.
    a.li(A3, 64);
    const uint32_t bad = a.pc();
    a.csetbounds(A4, A2, A3); // Requests [0,+64): escapes a2's bounds.
    a.ebreak();
    return finishCase("bounds-widen", a, true, FindingClass::Monotonicity,
                      bad);
}

CorpusCase
cleanBounds()
{
    Assembler a(kCorpusBase);
    a.csetboundsimm(A2, A0, 64);
    a.csetboundsimm(A3, A2, 16); // Further narrowing: monotone.
    a.sw(Zero, A3, 0);
    a.sw(Zero, A3, 12);
    a.ebreak();
    return finishCase("clean-bounds", a, false, FindingClass::Monotonicity,
                      0);
}

/** Store a local (GL-stripped) capability through an authority that
 * lacks Store-Local: the §5.2 stack-capability leak. */
CorpusCase
stackLeak()
{
    Assembler a(kCorpusBase);
    a.li(T1, cap::kAllPerms & ~cap::PermGlobal);
    a.candperm(A2, A0, T1); // a2: a local capability.
    a.li(T1, cap::kAllPerms & ~cap::PermStoreLocal);
    a.candperm(A3, A0, T1); // a3: authority without SL.
    const uint32_t bad = a.pc();
    a.csc(A2, A3, 0); // Local value, no-SL authority: leaks.
    a.ebreak();
    return finishCase("stack-leak", a, true, FindingClass::StackLeak, bad);
}

CorpusCase
cleanStore()
{
    Assembler a(kCorpusBase);
    a.li(T1, cap::kAllPerms & ~cap::PermGlobal);
    a.candperm(A2, A0, T1);
    a.csc(A2, A0, 0); // Local value, but the root *has* SL: fine.
    a.li(T1, cap::kAllPerms & ~cap::PermStoreLocal);
    a.candperm(A3, A0, T1);
    a.csc(A0, A3, 8); // Global value through no-SL authority: fine.
    a.ebreak();
    return finishCase("clean-store", a, false, FindingClass::StackLeak, 0);
}

/** Cross-compartment call with a capability left live in a register
 * the switcher ABI requires the caller to clear. */
CorpusCase
missingClear()
{
    Assembler a(kCorpusBase);
    a.auipcc(A2, 0); // PCC-derived executable capability.
    a.csealentry(A2, A2,
                 static_cast<int32_t>(cap::InterruptPosture::Inherit));
    a.cmove(S0, A0); // The root stays live in s0 across the call.
    const uint32_t bad = a.pc();
    a.jalr(Ra, A2, 0); // Sentry call site: s0 leaks to the callee.
    a.ebreak();
    return finishCase("missing-clear", a, true, FindingClass::SwitcherAbi,
                      bad);
}

CorpusCase
cleanCall()
{
    Assembler a(kCorpusBase);
    a.auipcc(A2, 0);
    a.csealentry(A2, A2,
                 static_cast<int32_t>(cap::InterruptPosture::Inherit));
    a.cmove(A3, A0); // Argument registers may carry capabilities.
    a.jalr(Ra, A2, 0);
    a.ebreak();
    return finishCase("clean-call", a, false, FindingClass::SwitcherAbi, 0);
}

/** Jump through a data-sealed capability: the otype grants no
 * invocation right (only unsealing with matching authority does). */
CorpusCase
sealedJump()
{
    Assembler a(kCorpusBase);
    a.li(T0, cap::kOtypeAllocator);
    a.csetaddr(A2, A1, T0); // Sealing key for data otype 1.
    a.cseal(A3, A0, A2);    // a3: sealed (non-sentry) capability.
    const uint32_t bad = a.pc();
    a.jalr(Zero, A3, 0);
    a.ebreak();
    return finishCase("sealed-jump", a, true, FindingClass::Sealing, bad);
}

CorpusCase
cleanSeal()
{
    Assembler a(kCorpusBase);
    a.li(T0, cap::kOtypeAllocator);
    a.csetaddr(A2, A1, T0);
    a.cseal(A3, A0, A2);   // Seal ...
    a.cunseal(A4, A3, A2); // ... and unseal with matching authority.
    a.sw(Zero, A4, 0);     // The unsealed result is usable again.
    a.ebreak();
    return finishCase("clean-seal", a, false, FindingClass::Sealing, 0);
}

/** Loop with a join point: the fixpoint must converge without
 * spurious findings (back-edge states degrade Exact to Unknown). */
CorpusCase
cleanLoop()
{
    Assembler a(kCorpusBase);
    a.csetboundsimm(A2, A0, 32);
    a.li(T0, 0);
    a.li(T1, 4);
    const Assembler::Label loop = a.here();
    a.sw(Zero, A2, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, T1, loop);
    a.ebreak();
    return finishCase("clean-loop", a, false, FindingClass::Monotonicity,
                      0);
}

/** Interprocedural taint: a helper destroys the tag of a capability
 * argument, the caller uses it as load authority after the call. The
 * violation is only visible through the callee's summary. */
CorpusCase
interprocTaint()
{
    Assembler a(kCorpusBase);
    const Assembler::Label helper = a.newLabel();
    a.call(helper); // Summary: a2 comes back definitely untagged.
    const uint32_t bad = a.pc();
    a.lw(T0, A2, 0); // Load through the untagged residue.
    a.ebreak();
    a.bind(helper);
    a.ccleartag(A2, A2);
    a.ret();
    return finishCase("interproc-taint", a, true,
                      FindingClass::Monotonicity, bad);
}

/** The clean twin: the helper preserves its capability argument, and
 * the caller's post-call store is exactly as safe as before the call
 * (the summary's Param pass-through keeps a2 precise). */
CorpusCase
interprocClean()
{
    Assembler a(kCorpusBase);
    const Assembler::Label helper = a.newLabel();
    a.csetboundsimm(A2, A0, 16);
    a.call(helper);
    a.sw(Zero, A2, 0); // a2 survives the call untouched.
    a.ebreak();
    a.bind(helper);
    a.cmove(A3, A2);
    a.ret();
    return finishCase("interproc-clean", a, false,
                      FindingClass::Monotonicity, 0);
}

} // namespace

const std::vector<CorpusCase> &
corpus()
{
    static const std::vector<CorpusCase> cases = [] {
        std::vector<CorpusCase> v;
        v.push_back(boundsWiden());
        v.push_back(cleanBounds());
        v.push_back(stackLeak());
        v.push_back(cleanStore());
        v.push_back(missingClear());
        v.push_back(cleanCall());
        v.push_back(sealedJump());
        v.push_back(cleanSeal());
        v.push_back(cleanLoop());
        v.push_back(interprocTaint());
        v.push_back(interprocClean());
        return v;
    }();
    return cases;
}

namespace
{

/** Boot a minimal image with the NIC window imported by @p importers
 * (plus @p bystanders, compartments that import nothing) and lint it
 * against the default policy. */
Report
lintNicImage(const std::string &imageName,
             const std::vector<std::string> &importers,
             const std::vector<std::string> &bystanders = {})
{
    sim::MachineConfig mc;
    mc.sramSize = 96u << 10;
    mc.heapOffset = 64u << 10;
    mc.heapSize = 32u << 10;
    sim::Machine machine(mc);
    rtos::Kernel kernel(machine);
    kernel.initHeap(alloc::TemporalMode::HardwareRevocation);
    const cap::Capability nicWindow =
        kernel.loader().mmioCap(mem::kNicMmioBase, mem::kNicMmioSize);
    for (const auto &name : importers) {
        kernel.createCompartment(name).addMmioImport("nic", nicWindow);
    }
    for (const auto &name : bystanders) {
        kernel.createCompartment(name);
    }
    kernel.createCompartment("js");
    kernel.createThread("main", 1, 1024);
    Report report = verifyKernel(kernel, Policy::defaultPolicy());
    report.image = imageName;
    return report;
}

/**
 * Boot a minimal supervised image — a supervisor compartment holding
 * Monitor (and Time) object capabilities over a worker — and lint it
 * against the default policy extended with
 * `hold monitor only supervisor`. When @p rogueHoldsMonitor, the
 * worker is also handed a Monitor capability over the supervisor:
 * delegable restart authority in the wrong hands, which the hold
 * rule must flag.
 */
Report
lintHoldImage(const std::string &imageName, bool rogueHoldsMonitor)
{
    sim::MachineConfig mc;
    mc.sramSize = 96u << 10;
    mc.heapOffset = 64u << 10;
    mc.heapSize = 32u << 10;
    sim::Machine machine(mc);
    rtos::Kernel kernel(machine);
    kernel.initHeap(alloc::TemporalMode::HardwareRevocation);
    rtos::Compartment &supervisor =
        kernel.createCompartment("supervisor");
    rtos::Compartment &worker = kernel.createCompartment("worker");
    kernel.createThread("main", 1, 1024);
    kernel.mintMonitorCap(supervisor, worker);
    kernel.mintTimeCap(supervisor, 0, 4096);
    if (rogueHoldsMonitor) {
        kernel.mintMonitorCap(worker, supervisor);
    }
    std::string error;
    const auto policy =
        Policy::parse(Policy::defaultPolicy().toString() +
                          "hold monitor only supervisor\n",
                      &error);
    Report report = verifyKernel(kernel, *policy);
    report.image = imageName;
    return report;
}

/**
 * Boot an image where two compartments share a writable MMIO window
 * ("dma-scratch" — deliberately not covered by any mmio possession
 * rule, so only the sharing lint can see it). Variants: the second
 * importer writable (the race) or read-only (clean), and both writers
 * holding Channel capabilities over a shared queue (disciplined —
 * also clean).
 */
Report
lintSharedImage(const std::string &imageName, bool secondWritable,
                bool channelDiscipline)
{
    sim::MachineConfig mc;
    mc.sramSize = 96u << 10;
    mc.heapOffset = 64u << 10;
    mc.heapSize = 32u << 10;
    sim::Machine machine(mc);
    rtos::Kernel kernel(machine);
    kernel.initHeap(alloc::TemporalMode::HardwareRevocation);
    const cap::Capability window = kernel.loader().mmioCap(
        mem::kConsoleMmioBase, mem::kConsoleMmioSize);
    rtos::Compartment &logger = kernel.createCompartment("logger");
    rtos::Compartment &sampler = kernel.createCompartment("sampler");
    logger.addMmioImport("dma-scratch", window);
    sampler.addMmioImport(
        "dma-scratch",
        secondWritable
            ? window
            : window.withPermsAnd(static_cast<uint16_t>(
                  cap::kAllPerms & ~cap::PermStore)));
    if (channelDiscipline) {
        rtos::MessageQueueService service(
            kernel.guest(), kernel.allocator(),
            kernel.loader().sealerFor(cap::kDataOtypeFree0));
        const cap::Capability queue = service.create(8, 4);
        kernel.mintChannelCap(logger, queue, true, false);
        kernel.mintChannelCap(sampler, queue, false, true);
    }
    kernel.createThread("main", 1, 1024);
    Report report = verifyKernel(kernel, Policy::defaultPolicy());
    report.image = imageName;
    return report;
}

/**
 * Boot an image where an application compartment imports the
 * allocator's malloc entry directly (instead of using the ambient
 * kernel API): it can now invoke the holder of the revocation bitmap,
 * so the default `reach revocation-bitmap only alloc` rule must flag
 * it. The clean twin has no such edge.
 */
Report
lintReachImage(const std::string &imageName, bool rogueEdge)
{
    sim::MachineConfig mc;
    mc.sramSize = 96u << 10;
    mc.heapOffset = 64u << 10;
    mc.heapSize = 32u << 10;
    sim::Machine machine(mc);
    rtos::Kernel kernel(machine);
    kernel.initHeap(alloc::TemporalMode::HardwareRevocation);
    rtos::Compartment &app = kernel.createCompartment("app");
    kernel.createCompartment("logger");
    if (rogueEdge) {
        app.addEntryImport(kernel.allocatorCompartment(), "malloc");
    }
    kernel.createThread("main", 1, 1024);
    Report report = verifyKernel(kernel, Policy::defaultPolicy());
    report.image = imageName;
    return report;
}

} // namespace

const std::vector<LintCorpusCase> &
lintCorpus()
{
    static const std::vector<LintCorpusCase> cases = [] {
        std::vector<LintCorpusCase> v;
        // A rogue application compartment imports the NIC MMIO window
        // beside the legitimate driver: the default policy's
        // `mmio nic only net_driver` rule must flag it.
        v.push_back({"nic-rogue-import", true, FindingClass::Lint, [] {
                         return lintNicImage("nic-rogue-import",
                                             {"net_driver", "app"});
                     }});
        // The clean twin: the driver alone holds the window.
        v.push_back({"nic-clean-twin", false, FindingClass::Lint, [] {
                         return lintNicImage("nic-clean-twin",
                                             {"net_driver"});
                     }});
        // The application tier rides entirely on cross-compartment
        // calls: a telemetry_broker (or flow) compartment holding the
        // NIC MMIO window could read frames before firewall admission
        // and bypass the heap-claim discipline, so the same
        // `mmio nic only net_driver` rule must flag it.
        v.push_back({"broker-rogue-import", true, FindingClass::Lint,
                     [] {
                         return lintNicImage(
                             "broker-rogue-import",
                             {"net_driver", "telemetry_broker"},
                             {"flow", "firewall"});
                     }});
        // The clean twin is the shipped app-tier layout: flow,
        // firewall and broker present, only the driver imports the
        // window.
        v.push_back({"broker-clean-twin", false, FindingClass::Lint,
                     [] {
                         return lintNicImage(
                             "broker-clean-twin", {"net_driver"},
                             {"flow", "firewall",
                              "telemetry_broker"});
                     }});
        // Object-capability holdings: a worker compartment holding a
        // live Monitor capability over its supervisor is delegated
        // restart authority flowing the wrong way; the
        // `hold monitor only supervisor` rule must flag it.
        v.push_back({"hold-rogue-monitor", true, FindingClass::Lint,
                     [] {
                         return lintHoldImage("hold-rogue-monitor",
                                              true);
                     }});
        // The clean twin: only the supervisor holds Monitor (and
        // Time) capabilities.
        v.push_back({"hold-clean-twin", false, FindingClass::Lint, [] {
                         return lintHoldImage("hold-clean-twin",
                                              false);
                     }});
        // Two compartments mutate the same MMIO window from separate
        // protection domains without any channel between them: the
        // static race the sharing lint exists for.
        v.push_back({"shared-mutable-rogue", true,
                     FindingClass::SharedMutable, [] {
                         return lintSharedImage("shared-mutable-rogue",
                                                true, false);
                     }});
        // Clean twin: the second importer only reads the window.
        v.push_back({"shared-mutable-clean-twin", false,
                     FindingClass::SharedMutable, [] {
                         return lintSharedImage(
                             "shared-mutable-clean-twin", false,
                             false);
                     }});
        // Disciplined twin: both importers write, but both hold
        // Channel capabilities over a shared queue — the sharing is
        // mediated, so the lint stays quiet.
        v.push_back({"shared-mutable-channel-twin", false,
                     FindingClass::SharedMutable, [] {
                         return lintSharedImage(
                             "shared-mutable-channel-twin", true,
                             true);
                     }});
        // An app compartment with a direct entry import into the
        // allocator can reach the revocation bitmap transitively: the
        // default reach rule pins that authority to `alloc` alone.
        v.push_back({"reach-rogue-edge", true, FindingClass::Lint, [] {
                         return lintReachImage("reach-rogue-edge",
                                               true);
                     }});
        // Clean twin: no edge, no transitive authority.
        v.push_back({"reach-clean-twin", false, FindingClass::Lint,
                     [] {
                         return lintReachImage("reach-clean-twin",
                                               false);
                     }});
        return v;
    }();
    return cases;
}

} // namespace cheriot::verify
