#include "verify/lattice.h"

#include <cstdio>

namespace cheriot::verify
{

const char *
triName(Tri t)
{
    switch (t) {
      case Tri::No: return "no";
      case Tri::Yes: return "yes";
      case Tri::Maybe: return "?";
    }
    return "?";
}

AbstractCap
AbstractCap::join(const AbstractCap &other) const
{
    if (isExact() && other.isExact() && value == other.value) {
        return *this;
    }
    if (isParam() && other.isParam() && paramIndex == other.paramIndex) {
        return *this;
    }
    return unknown(joinTri(tagged(), other.tagged()),
                   joinTri(local(), other.local()),
                   joinTri(sealed(), other.sealed()));
}

bool
AbstractCap::operator==(const AbstractCap &other) const
{
    if (kind != other.kind) {
        return false;
    }
    if (isExact()) {
        return value == other.value;
    }
    if (isParam()) {
        return paramIndex == other.paramIndex;
    }
    return taggedAttr == other.taggedAttr &&
           localAttr == other.localAttr && sealedAttr == other.sealedAttr;
}

std::string
AbstractCap::toString() const
{
    if (isExact()) {
        return "exact " + value.toString();
    }
    char buffer[64];
    if (isParam()) {
        std::snprintf(buffer, sizeof(buffer), "entry(%s)",
                      isa::regName(paramIndex));
        return buffer;
    }
    std::snprintf(buffer, sizeof(buffer),
                  "unknown tag=%s local=%s sealed=%s",
                  triName(taggedAttr), triName(localAttr),
                  triName(sealedAttr));
    return buffer;
}

AbstractState
AbstractState::join(const AbstractState &other) const
{
    AbstractState result;
    for (unsigned i = 0; i < isa::kNumRegs; ++i) {
        result.regs[i] = regs[i].join(other.regs[i]);
    }
    result.pcc = pcc.join(other.pcc);
    return result;
}

bool
AbstractState::operator==(const AbstractState &other) const
{
    for (unsigned i = 0; i < isa::kNumRegs; ++i) {
        if (!(regs[i] == other.regs[i])) {
            return false;
        }
    }
    return pcc == other.pcc;
}

std::string
AbstractState::toString() const
{
    std::string out;
    const AbstractCap null = AbstractCap::exact(cap::Capability());
    for (unsigned i = 1; i < isa::kNumRegs; ++i) {
        if (regs[i] == null) {
            continue;
        }
        out += "  ";
        out += isa::regName(static_cast<uint8_t>(i));
        out += ": ";
        out += regs[i].toString();
        out += "\n";
    }
    return out;
}

} // namespace cheriot::verify
