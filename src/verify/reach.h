/**
 * @file
 * Authority reachability and the static sharing lint (paper §3.1.2).
 *
 * The audit manifest names who *directly* holds dangerous authority
 * (MMIO windows, kernel object capabilities). An auditor usually
 * needs the transitive question instead: which compartments can
 * *reach* that authority — hold it, or invoke (directly or through a
 * chain of entry imports) a compartment that holds it? AuthorityReach
 * computes that closure over the manifest's entry-import edges, so
 * policies can pin blast radius ("reach revocation-bitmap only
 * alloc") rather than mere possession.
 *
 * The same manifest also supports a static sharing/race lint: a
 * writable authority (an MMIO window imported with SD) mutated from
 * two compartments — or from both interrupt postures of one
 * compartment (task vs ISR-like entries) — is a data race waiting to
 * happen unless every writer follows a message-passing discipline,
 * which in this model is witnessed by holding a kernel "channel"
 * object capability. Sharing is judged over *direct* importers only:
 * a caller of the driver does not itself own the window.
 */

#ifndef CHERIOT_VERIFY_REACH_H
#define CHERIOT_VERIFY_REACH_H

#include "verify/finding.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cheriot::rtos
{
struct AuditReport;
}

namespace cheriot::verify
{

/** One shared-mutable-authority diagnostic. */
struct SharedMutableIssue
{
    std::string authority; ///< The shared window.
    std::vector<std::string> writers; ///< Compartments importing it
                                      ///< with SD.
    /** At least one writer mutates from both interrupt postures
     * (enabled and disabled entries), i.e. races with itself. */
    bool postureSplit = false;
    std::string message;
};

class AuthorityReach
{
  public:
    explicit AuthorityReach(const rtos::AuditReport &audit);

    /** Every authority named in the manifest (MMIO windows and object-
     * capability types), sorted. */
    std::vector<std::string> authorities() const;

    /** Compartments that hold @p authority or can transitively invoke
     * a holder. */
    const std::set<std::string> &reachers(
        const std::string &authority) const;

    bool reaches(const std::string &compartment,
                 const std::string &authority) const;

    /** The sharing lint: writable authorities mutated from >=2
     * domains whose writers lack channel discipline. */
    std::vector<SharedMutableIssue> sharedMutable() const;

    /** Graphviz rendering: compartments, call edges, authorities and
     * holder edges. */
    std::string toDot() const;

    /** Machine-readable rendering for tooling diffs. */
    std::string toJson() const;

  private:
    /** authority name -> compartments that reach it (closure). */
    std::map<std::string, std::set<std::string>> reach_;
    /** authority -> direct writable importers. */
    std::map<std::string, std::vector<std::string>> writers_;
    /** compartment -> invoked compartments (entry-import edges). */
    std::map<std::string, std::set<std::string>> calls_;
    /** compartments holding a live "channel" object capability. */
    std::set<std::string> channelHolders_;
    /** compartments exporting entries under both interrupt postures. */
    std::set<std::string> postureSplit_;
};

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_REACH_H
