/**
 * @file
 * The abstract capability lattice for static capability-flow analysis
 * (cheriot-verify).
 *
 * Each register holds an AbstractCap: either an *Exact* capability —
 * the analyzer knows the precise architectural value, and transfer
 * functions are the concrete guarded-manipulation operations from
 * cap::Capability — or *Unknown*, a summary tracking only three-valued
 * attributes (tagged? local? sealed?). Joining unequal Exact values
 * degrades to Unknown with merged attributes, so the lattice has
 * finite height and the fixpoint terminates.
 *
 * The interprocedural summary layer adds a third kind, *Param*: "the
 * value this register (or some other register) held on entry to the
 * function under summary analysis". Param values survive only CMove
 * (every real manipulation degrades them to Unknown), so a register
 * whose value is Param(i) at every return point is *definitely* the
 * caller's entry value of register i — the fact function summaries
 * are built from. Joining two different Params, or a Param with
 * anything else, degrades to Unknown, preserving finite height.
 *
 * The zero-false-positive discipline rests on this split: checks fire
 * only on facts that hold on *every* execution reaching a program
 * point (an Exact value, or a definite Yes/No attribute), never on a
 * Maybe.
 */

#ifndef CHERIOT_VERIFY_LATTICE_H
#define CHERIOT_VERIFY_LATTICE_H

#include "cap/capability.h"
#include "isa/encoding.h"

#include <string>

namespace cheriot::verify
{

/** Three-valued truth: definitely no, definitely yes, or unknown. */
enum class Tri : uint8_t
{
    No,
    Yes,
    Maybe,
};

/** Least upper bound of two three-valued facts. */
constexpr Tri
joinTri(Tri a, Tri b)
{
    return a == b ? a : Tri::Maybe;
}

constexpr Tri
triOf(bool value)
{
    return value ? Tri::Yes : Tri::No;
}

const char *triName(Tri t);

/** One register's abstract value. */
struct AbstractCap
{
    enum class Kind : uint8_t
    {
        Exact,   ///< value is the precise architectural capability.
        Unknown, ///< only the tri-state attributes are known.
        Param,   ///< the entry value of register paramIndex (summary
                 ///< analysis only; never appears in a finding pass
                 ///< entry state).
    };

    Kind kind = Kind::Exact;
    cap::Capability value; ///< Valid iff kind == Exact.
    uint8_t paramIndex = 0; ///< Valid iff kind == Param.

    /** Attributes when Unknown or Param (derived from value when
     * Exact). A Param's attributes are all Maybe: nothing is known
     * about the caller's entry values. */
    Tri taggedAttr = Tri::Maybe;
    Tri localAttr = Tri::Maybe;
    Tri sealedAttr = Tri::Maybe;

    /** The null capability (what register clearing produces). */
    static AbstractCap exact(const cap::Capability &c)
    {
        AbstractCap a;
        a.kind = Kind::Exact;
        a.value = c;
        return a;
    }

    /** An integer result: untagged, addressable value if known. */
    static AbstractCap integer(uint32_t value = 0)
    {
        return exact(cap::Capability().withAddress(value));
    }

    /** A fully unknown value. */
    static AbstractCap unknown(Tri tagged = Tri::Maybe,
                               Tri local = Tri::Maybe,
                               Tri sealed = Tri::Maybe)
    {
        AbstractCap a;
        a.kind = Kind::Unknown;
        a.taggedAttr = tagged;
        a.localAttr = local;
        a.sealedAttr = sealed;
        return a;
    }

    /** An unknown *integer* (untagged data of unknown value). */
    static AbstractCap unknownInt()
    {
        return unknown(Tri::No, Tri::No, Tri::No);
    }

    /** The entry value of register @p index (summary analysis). */
    static AbstractCap param(uint8_t index)
    {
        AbstractCap a;
        a.kind = Kind::Param;
        a.paramIndex = index;
        return a;
    }

    bool isExact() const { return kind == Kind::Exact; }
    bool isParam() const { return kind == Kind::Param; }
    bool isParamOf(uint8_t index) const
    {
        return kind == Kind::Param && paramIndex == index;
    }

    /** @name Definite facts (valid regardless of kind) @{ */
    Tri tagged() const
    {
        return isExact() ? triOf(value.tag()) : taggedAttr;
    }
    Tri local() const
    {
        return isExact() ? triOf(value.isLocal()) : localAttr;
    }
    Tri sealed() const
    {
        return isExact() ? triOf(value.isSealed()) : sealedAttr;
    }
    bool definitelyTagged() const { return tagged() == Tri::Yes; }
    bool definitelyUntagged() const { return tagged() == Tri::No; }
    bool definitelyLocal() const { return local() == Tri::Yes; }
    bool definitelySealed() const { return sealed() == Tri::Yes; }
    bool definitelyUnsealed() const { return sealed() == Tri::No; }
    /** @} */

    /** Integer view: the address when Exact. */
    bool hasKnownAddress() const { return isExact(); }
    uint32_t address() const { return value.address(); }

    /** Least upper bound. */
    AbstractCap join(const AbstractCap &other) const;

    bool operator==(const AbstractCap &other) const;

    /** Compact rendering for diagnostics ("exact <cap>" / "tag=? ..."). */
    std::string toString() const;
};

/** The abstract machine state at one program point: the 16-entry
 * register file plus the program counter capability. */
struct AbstractState
{
    AbstractCap regs[isa::kNumRegs];
    AbstractCap pcc;

    AbstractCap &reg(unsigned index) { return regs[index]; }
    const AbstractCap &reg(unsigned index) const { return regs[index]; }

    /** Writes respect the hard-wired zero register. */
    void write(unsigned index, const AbstractCap &value)
    {
        if (index != 0) {
            regs[index] = value;
        }
    }

    AbstractState join(const AbstractState &other) const;
    bool operator==(const AbstractState &other) const;

    /** Multi-line rendering of all non-null registers. */
    std::string toString() const;
};

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_LATTICE_H
