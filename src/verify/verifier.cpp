#include "verify/verifier.h"

#include "cap/capability.h"
#include "rtos/audit.h"
#include "rtos/kernel.h"
#include "sim/csr.h"

#include <cstdio>
#include <deque>
#include <map>
#include <set>

namespace cheriot::verify
{

namespace
{

using cap::Capability;
using isa::Inst;
using isa::Op;

/** The registers a caller must clear before a sentry jump so no
 * capability leaks into the callee compartment: everything that is
 * neither an argument register (a0–a5), the stack (chopped by the
 * switcher), nor the link/target of the jump itself. */
constexpr uint8_t kMustClearAtCall[] = {isa::Gp, isa::Tp, isa::T0,
                                        isa::T1, isa::T2, isa::S0,
                                        isa::S1};

/** A link register's abstract value: a tagged, global return sentry
 * (the otype depends on the untracked interrupt posture, so the value
 * is Unknown rather than Exact). */
AbstractCap
linkValue()
{
    return AbstractCap::unknown(Tri::Yes, Tri::No, Tri::Yes);
}

struct Interp;

/**
 * One fixpoint over one verification root. Every root gets its own
 * state map: sentry roots run under a worst-case (all-Unknown) entry
 * state, and sharing a map with the main root would join that
 * pessimism into the precise entry states and mask real findings.
 * Findings, budget, summaries and the call graph live in the shared
 * Interp so facts are deduplicated across roots.
 *
 * In summary mode the same transfer functions run over a Param entry
 * state (regs[i] = Param(i)); findings still fire (a definite fact
 * derived under the fully abstract entry holds for every concrete
 * call), and every escaping path is classified: a definite return
 * through Param(ra) contributes to the summary out-state, a definite
 * trap ends the path, and anything else poisons the summary back to
 * the conservative havoc.
 */
struct Analyzer
{
    Interp &interp;
    const uint32_t rootEntry;
    const bool summaryMode;

    std::map<uint32_t, AbstractState> states;
    std::deque<uint32_t> worklist;

    /** Join of the register file over all definite return points
     * (summary mode only). */
    AbstractState returnOut;
    bool sawReturn = false;
    /** An escape the analysis cannot classify as return-or-trap was
     * reached: the summary degrades to havoc. */
    bool poisoned = false;

    Analyzer(Interp &owner, uint32_t root, bool summary)
        : interp(owner), rootEntry(root), summaryMode(summary)
    {}

    bool inImage(uint32_t pc) const;
    uint32_t wordAt(uint32_t pc) const;
    void finding(FindingClass cls, uint32_t pc,
                 const std::string &message, const AbstractState &st);

    /** Join @p st into the stored state at @p pc and (re)enqueue on
     * change. Targets outside the image end the path (and poison a
     * summary: leaving the image is an unclassifiable escape). */
    void post(uint32_t pc, const AbstractState &st);

    /** Post-call continuation fallback: a callee may clobber every
     * register (arguments, temporaries, even callee-saves — the
     * analyzer makes no calling-convention assumptions), so all 15
     * registers havoc. Only PCC survives. */
    static AbstractState havocked(const AbstractState &st)
    {
        AbstractState out;
        out.pcc = st.pcc;
        for (unsigned i = 1; i < isa::kNumRegs; ++i) {
            out.regs[i] = AbstractCap::unknown();
        }
        return out;
    }

    void checkCallSiteClears(uint32_t pc, const AbstractState &st,
                             uint8_t targetReg, uint8_t linkReg)
    {
        for (uint8_t r : kMustClearAtCall) {
            if (r == targetReg || r == linkReg) {
                continue;
            }
            if (st.reg(r).definitelyTagged()) {
                finding(FindingClass::SwitcherAbi, pc,
                        std::string("capability register ") +
                            isa::regName(r) +
                            " live across a sentry call: callee can "
                            "capture the caller's authority",
                        st);
            }
        }
    }

    /** Refine the continuation of a call to @p target using the
     * callee's summary (havoc when no usable summary exists). */
    void applyCall(uint32_t target, const AbstractState &st,
                   uint8_t linkReg, uint32_t nextPc);

    bool memAccessFaults(uint32_t pc, const AbstractState &st,
                         const AbstractCap &auth, int32_t imm,
                         unsigned bytes, bool isStore, bool capStore,
                         const AbstractCap &stored);

    void step(uint32_t pc, AbstractState st);

    void run(const AbstractState &entryState);
};

/** Shared interprocedural context: report, budget, finding dedup,
 * memoized function summaries, discovered verification roots, and the
 * call graph under recovery. */
struct Interp
{
    const ProgramImage &image;
    const AnalyzerOptions &options;
    Report report;
    CallGraph graph;

    std::set<std::string> dedup;
    std::set<uint32_t> visited;
    std::map<uint32_t, FunctionSummary> summaries;
    std::set<uint32_t> inProgress;
    std::deque<uint32_t> pendingRoots;
    std::set<uint32_t> knownRoots;

    Interp(const ProgramImage &img, const AnalyzerOptions &opts)
        : image(img), options(opts)
    {
        report.image = img.name;
    }

    bool inImage(uint32_t pc) const
    {
        return pc >= image.base && (pc & 3) == 0 &&
               (pc - image.base) / 4 < image.words.size();
    }

    uint32_t wordAt(uint32_t pc) const
    {
        return image.words[(pc - image.base) / 4];
    }

    void finding(FindingClass cls, uint32_t pc,
                 const std::string &message, const AbstractState &st)
    {
        char key[32];
        std::snprintf(key, sizeof(key), "%u@%08x:",
                      static_cast<unsigned>(cls), pc);
        if (!dedup.insert(key + message).second) {
            return;
        }
        Finding f;
        f.cls = cls;
        f.compartment = image.name;
        f.pc = pc;
        f.message = message;
        f.latticeState = st.toString();
        report.findings.push_back(std::move(f));
    }

    /** Register an analysis-discovered sentry entry as a verification
     * root (analyzed later under a worst-case entry state). */
    void addRoot(uint32_t entry)
    {
        if (!inImage(entry)) {
            return;
        }
        if (knownRoots.insert(entry).second) {
            pendingRoots.push_back(entry);
        }
    }

    /** Memoized per-entry summary. Recursive requests (an entry whose
     * summary is still being computed) fall back to havoc, which is
     * always sound. */
    const FunctionSummary &summaryFor(uint32_t entry)
    {
        static const FunctionSummary kHavoc{};
        if (!inImage(entry)) {
            return kHavoc;
        }
        auto it = summaries.find(entry);
        if (it != summaries.end()) {
            return it->second;
        }
        if (!inProgress.insert(entry).second) {
            return kHavoc;
        }
        Analyzer analyzer(*this, entry, /*summary=*/true);
        AbstractState init;
        for (unsigned i = 1; i < isa::kNumRegs; ++i) {
            init.regs[i] = AbstractCap::param(static_cast<uint8_t>(i));
        }
        init.pcc = AbstractCap::exact(
            Capability::executableRoot().withAddress(entry));
        analyzer.run(init);
        FunctionSummary summary;
        if (analyzer.poisoned || report.budgetExhausted) {
            summary.kind = FunctionSummary::Kind::Havoc;
        } else if (!analyzer.sawReturn) {
            summary.kind = FunctionSummary::Kind::NoReturn;
        } else {
            summary.kind = FunctionSummary::Kind::Returns;
            summary.out = analyzer.returnOut;
        }
        inProgress.erase(entry);
        ++report.summariesComputed;
        return summaries.emplace(entry, summary).first->second;
    }

    Report run()
    {
        graph = CallGraph::recover(image);
        graph.addNode(image.entry, /*root=*/true, false);
        knownRoots.insert(image.entry);

        // Main root: the §3.1.1 reset state.
        {
            Analyzer analyzer(*this, image.entry, /*summary=*/false);
            AbstractState init;
            init.write(isa::A0,
                       AbstractCap::exact(Capability::memoryRoot()));
            init.write(isa::A1,
                       AbstractCap::exact(Capability::sealingRoot()));
            init.pcc = AbstractCap::exact(
                Capability::executableRoot().withAddress(image.entry));
            analyzer.run(init);
        }

        // Discovered sentry entries: in-image sentry calls execute
        // without the switcher, so the callee sees whatever the
        // caller left in the registers — the sound entry state is
        // all-Unknown, not all-zero.
        while (!pendingRoots.empty() && !report.budgetExhausted) {
            const uint32_t root = pendingRoots.front();
            pendingRoots.pop_front();
            graph.addNode(root, /*root=*/true, false);
            Analyzer analyzer(*this, root, /*summary=*/false);
            AbstractState init;
            for (unsigned i = 1; i < isa::kNumRegs; ++i) {
                init.regs[i] = AbstractCap::unknown();
            }
            init.pcc = AbstractCap::exact(
                Capability::executableRoot().withAddress(root));
            analyzer.run(init);
        }

        report.instructionsAnalyzed = visited.size();
        report.callGraphFunctions = graph.nodeCount();
        report.callGraphEdges = graph.edgeCount();
        return std::move(report);
    }
};

bool
Analyzer::inImage(uint32_t pc) const
{
    return interp.inImage(pc);
}

uint32_t
Analyzer::wordAt(uint32_t pc) const
{
    return interp.wordAt(pc);
}

void
Analyzer::finding(FindingClass cls, uint32_t pc,
                  const std::string &message, const AbstractState &st)
{
    interp.finding(cls, pc, message, st);
}

void
Analyzer::post(uint32_t pc, const AbstractState &st)
{
    if (!inImage(pc)) {
        if (summaryMode) {
            poisoned = true;
        }
        return;
    }
    if (interp.report.statesExplored >= interp.options.maxStateUpdates) {
        interp.report.budgetExhausted = true;
        if (summaryMode) {
            poisoned = true;
        }
        return;
    }
    auto it = states.find(pc);
    if (it == states.end()) {
        states.emplace(pc, st);
    } else {
        AbstractState joined = it->second.join(st);
        if (joined == it->second) {
            return;
        }
        it->second = joined;
    }
    ++interp.report.statesExplored;
    worklist.push_back(pc);
}

void
Analyzer::applyCall(uint32_t target, const AbstractState &st,
                    uint8_t linkReg, uint32_t nextPc)
{
    const FunctionSummary &summary = interp.summaryFor(target);
    switch (summary.kind) {
      case FunctionSummary::Kind::Havoc:
        post(nextPc, havocked(st));
        return;
      case FunctionSummary::Kind::NoReturn:
        // Every path through the callee definitely traps: the
        // continuation is unreachable.
        return;
      case FunctionSummary::Kind::Returns: {
        ++interp.report.summaryApplications;
        // Param out-values name the callee's entry registers, i.e.
        // the caller's state *after* the link write.
        AbstractState atEntry = st;
        atEntry.write(linkReg, linkValue());
        AbstractState cont;
        cont.pcc = st.pcc;
        for (unsigned i = 1; i < isa::kNumRegs; ++i) {
            const AbstractCap &out = summary.out.regs[i];
            cont.regs[i] =
                out.isParam() ? atEntry.regs[out.paramIndex] : out;
        }
        post(nextPc, cont);
        return;
      }
    }
}

/**
 * Model the checked-memory-access rules of Machine::checkAccess /
 * storeCap. Returns true when the access *definitely* traps (the
 * finding is recorded and the path ends). @p stored is the value
 * operand for capability stores (Csc), else ignored.
 */
bool
Analyzer::memAccessFaults(uint32_t pc, const AbstractState &st,
                          const AbstractCap &auth, int32_t imm,
                          unsigned bytes, bool isStore, bool capStore,
                          const AbstractCap &stored)
{
    const char *what = isStore ? "store" : "load";
    if (auth.definitelyUntagged()) {
        finding(FindingClass::Monotonicity, pc,
                std::string(what) +
                    " through untagged capability (authority was "
                    "destroyed by a non-monotone manipulation)",
                st);
        return true;
    }
    if (auth.definitelySealed()) {
        finding(FindingClass::Sealing, pc,
                std::string(what) + " through sealed capability", st);
        return true;
    }
    if (!auth.isExact()) {
        return false; // No definite fact: assume the access is fine.
    }
    const Capability &c = auth.value; // Tagged and unsealed here.
    const uint16_t need = isStore ? cap::PermStore : cap::PermLoad;
    if (!c.perms().has(need)) {
        finding(FindingClass::Monotonicity, pc,
                std::string(what) + " authority lacks " +
                    (isStore ? "SD" : "LD") + " permission",
                st);
        return true;
    }
    const uint32_t addr = c.address() + imm;
    if (!c.inBounds(addr, bytes)) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "out-of-bounds %s: [%08x,+%u) outside "
                      "[%08x,%08x)",
                      what, addr, bytes, c.base(),
                      static_cast<uint32_t>(c.top()));
        finding(FindingClass::Monotonicity, pc, msg, st);
        return true;
    }
    if ((addr & (bytes - 1)) != 0) {
        finding(FindingClass::Monotonicity, pc,
                std::string("misaligned ") + what, st);
        return true;
    }
    if (capStore && isStore && stored.definitelyTagged()) {
        if (!c.perms().has(cap::PermMemCap)) {
            finding(FindingClass::Monotonicity, pc,
                    "capability store through data-only (no MC) "
                    "authority",
                    st);
            return true;
        }
        if (stored.definitelyLocal() &&
            !c.perms().has(cap::PermStoreLocal)) {
            finding(FindingClass::StackLeak, pc,
                    "local (stack-derived) capability stored "
                    "through authority without Store-Local: the "
                    "§5.2 stack-capability leak",
                    st);
            return true;
        }
    }
    return false;
}

void
Analyzer::run(const AbstractState &entryState)
{
    post(rootEntry, entryState);
    while (!worklist.empty() && !interp.report.budgetExhausted) {
        const uint32_t pc = worklist.front();
        worklist.pop_front();
        ++interp.report.fixpointIterations;
        interp.visited.insert(pc);
        step(pc, states.at(pc));
    }
}

void
Analyzer::step(uint32_t pc, AbstractState st)
{
    const Inst inst = isa::decode(wordAt(pc));
    const uint32_t nextPc = pc + 4;
    const AbstractCap aRs1 = st.reg(inst.rs1);
    const AbstractCap aRs2 = st.reg(inst.rs2);
    const bool exact1 = aRs1.isExact();
    const bool exact12 = exact1 && aRs2.isExact();
    const uint32_t v1 = exact1 ? aRs1.address() : 0;
    const uint32_t v2 = aRs2.isExact() ? aRs2.address() : 0;

    auto intResult = [&](bool known, uint32_t value) {
        st.write(inst.rd, known ? AbstractCap::integer(value)
                                : AbstractCap::unknownInt());
    };
    auto goNext = [&]() { post(nextPc, st); };

    /** Attribute pass-through for address-only edits (CSetAddr /
     * CIncAddr): tag may clear, GL and otype are untouched. */
    auto addressEdit = [&]() {
        return AbstractCap::unknown(aRs1.definitelyUntagged()
                                        ? Tri::No
                                        : Tri::Maybe,
                                    aRs1.local(), aRs1.sealed());
    };

    switch (inst.op) {
      case Op::Illegal:
        return; // Illegal-instruction trap: the path ends.

      case Op::Lui:
        intResult(true, static_cast<uint32_t>(inst.imm));
        goNext();
        return;

      case Op::Auipc:
        if (st.pcc.isExact()) {
            st.write(inst.rd, AbstractCap::exact(
                                  st.pcc.value.withAddress(pc + inst.imm)));
        } else {
            st.write(inst.rd, AbstractCap::unknown());
        }
        goNext();
        return;

      case Op::Jal: {
        const uint32_t target = pc + inst.imm;
        if (inst.rd != 0) {
            // A call: analyze the callee inline with the precise
            // call-site state (and a sealed link value), and refine
            // the continuation through the callee's summary.
            interp.graph.addEdge(
                {pc, target, /*viaSentry=*/false, /*direct=*/true});
            AbstractState callee = st;
            callee.write(inst.rd, linkValue());
            post(target, callee);
            applyCall(target, st, inst.rd, nextPc);
        } else {
            post(target, st);
        }
        return;
      }

      case Op::Jalr: {
        if (aRs1.definitelyUntagged()) {
            finding(FindingClass::Monotonicity, pc,
                    "jump through untagged capability", st);
            return;
        }
        if (aRs1.isExact()) {
            const Capability c = aRs1.value; // Tagged here.
            if (c.isForwardSentry()) {
                if (inst.imm != 0) {
                    finding(FindingClass::Sealing, pc,
                            "sentry jump with non-zero offset (sealed "
                            "entry addresses are immutable)",
                            st);
                    return;
                }
                // A cross-compartment call site: the switcher ABI
                // requires every non-argument capability register to
                // be dead here.
                checkCallSiteClears(pc, st, inst.rs1, inst.rd);
                const uint32_t dest = c.address() & ~1u;
                interp.graph.addEdge(
                    {pc, dest, /*viaSentry=*/true, /*direct=*/false});
                // The callee becomes its own verification root,
                // analyzed under a worst-case entry state.
                interp.addRoot(dest);
                if (inst.rd != 0) {
                    applyCall(dest, st, inst.rd, nextPc);
                } else if (summaryMode) {
                    // Tail sentry call: the callee returns to *our*
                    // caller with a register file this summary cannot
                    // describe.
                    poisoned = true;
                }
                return;
            }
            if (c.isReturnSentry()) {
                if (inst.imm != 0) {
                    finding(FindingClass::Sealing, pc,
                            "return-sentry jump with non-zero offset",
                            st);
                }
                if (summaryMode) {
                    // An exact return sentry cannot be the entry link
                    // value (that is Param(ra)): unknown continuation.
                    poisoned = true;
                }
                return; // Return: the path leaves this activation.
            }
            if (c.isSealed()) {
                finding(FindingClass::Sealing, pc,
                        "jump through sealed non-sentry capability "
                        "(otype grants no invocation right)",
                        st);
                return;
            }
            if (!c.perms().has(cap::PermExecute)) {
                finding(FindingClass::Monotonicity, pc,
                        "jump through non-executable capability", st);
                return;
            }
            const uint32_t dest = (c.address() + inst.imm) & ~1u;
            if (inst.rd != 0) {
                interp.graph.addEdge(
                    {pc, dest, /*viaSentry=*/false, /*direct=*/false});
                AbstractState callee = st;
                callee.write(inst.rd, linkValue());
                post(dest, callee);
                applyCall(dest, st, inst.rd, nextPc);
            } else {
                post(dest, st);
            }
            return;
        }
        // Non-exact target.
        if (inst.rd == 0) {
            if (summaryMode) {
                if (aRs1.isParamOf(isa::Ra) && inst.imm == 0) {
                    // A definite return: the jump target is exactly
                    // the caller-provided return sentry.
                    returnOut = sawReturn ? returnOut.join(st) : st;
                    sawReturn = true;
                } else {
                    poisoned = true;
                }
            }
            // Finding pass: typically a return through a havocked
            // link register — the jump leaves the analyzed region.
            return;
        }
        // A call-shaped jump through an unknown target still has a
        // post-return continuation (with no usable summary).
        post(nextPc, havocked(st));
        return;
      }

      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu: {
        const uint32_t target = pc + inst.imm;
        if (exact12) {
            // Both operands known: fold the branch so dead arms do not
            // pollute the fixpoint (and cannot cause false positives).
            bool taken = false;
            switch (inst.op) {
              case Op::Beq: taken = v1 == v2; break;
              case Op::Bne: taken = v1 != v2; break;
              case Op::Blt:
                taken = static_cast<int32_t>(v1) <
                        static_cast<int32_t>(v2);
                break;
              case Op::Bge:
                taken = static_cast<int32_t>(v1) >=
                        static_cast<int32_t>(v2);
                break;
              case Op::Bltu: taken = v1 < v2; break;
              case Op::Bgeu: taken = v1 >= v2; break;
              default: break;
            }
            post(taken ? target : nextPc, st);
        } else {
            post(target, st);
            post(nextPc, st);
        }
        return;
      }

      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu: {
        const unsigned bytes =
            (inst.op == Op::Lb || inst.op == Op::Lbu) ? 1
            : (inst.op == Op::Lh || inst.op == Op::Lhu) ? 2 : 4;
        if (memAccessFaults(pc, st, aRs1, inst.imm, bytes, false, false,
                            AbstractCap())) {
            return;
        }
        intResult(false, 0); // Memory contents are not modelled.
        goNext();
        return;
      }

      case Op::Sb: case Op::Sh: case Op::Sw: {
        const unsigned bytes = inst.op == Op::Sb ? 1
                               : inst.op == Op::Sh ? 2 : 4;
        if (memAccessFaults(pc, st, aRs1, inst.imm, bytes, true, false,
                            AbstractCap())) {
            return;
        }
        goNext();
        return;
      }

      case Op::Clc: {
        if (memAccessFaults(pc, st, aRs1, inst.imm, 8, false, false,
                            AbstractCap())) {
            return;
        }
        // The loaded value is unknown, but the authority's load-side
        // attenuation (§3.1.1) gives definite attribute facts: no MC
        // means the value arrives untagged; no LG means it arrives
        // local.
        Tri tagged = Tri::Maybe;
        Tri local = Tri::Maybe;
        if (exact1) {
            if (!aRs1.value.perms().has(cap::PermMemCap)) {
                tagged = Tri::No;
            }
            if (!aRs1.value.perms().has(cap::PermLoadGlobal)) {
                local = Tri::Yes;
            }
        }
        st.write(inst.rd, AbstractCap::unknown(tagged, local, Tri::Maybe));
        goNext();
        return;
      }

      case Op::Csc: {
        if (memAccessFaults(pc, st, aRs1, inst.imm, 8, true, true,
                            aRs2)) {
            return;
        }
        goNext();
        return;
      }

      case Op::Addi: intResult(exact1, v1 + inst.imm); goNext(); return;
      case Op::Slti:
        intResult(exact1, static_cast<int32_t>(v1) < inst.imm ? 1 : 0);
        goNext();
        return;
      case Op::Sltiu:
        intResult(exact1,
                  v1 < static_cast<uint32_t>(inst.imm) ? 1 : 0);
        goNext();
        return;
      case Op::Xori: intResult(exact1, v1 ^ inst.imm); goNext(); return;
      case Op::Ori: intResult(exact1, v1 | inst.imm); goNext(); return;
      case Op::Andi: intResult(exact1, v1 & inst.imm); goNext(); return;
      case Op::Slli: intResult(exact1, v1 << inst.imm); goNext(); return;
      case Op::Srli: intResult(exact1, v1 >> inst.imm); goNext(); return;
      case Op::Srai:
        intResult(exact1, static_cast<uint32_t>(
                              static_cast<int32_t>(v1) >> inst.imm));
        goNext();
        return;
      case Op::Add: intResult(exact12, v1 + v2); goNext(); return;
      case Op::Sub: intResult(exact12, v1 - v2); goNext(); return;
      case Op::Sll: intResult(exact12, v1 << (v2 & 31)); goNext(); return;
      case Op::Slt:
        intResult(exact12, static_cast<int32_t>(v1) <
                                   static_cast<int32_t>(v2)
                               ? 1
                               : 0);
        goNext();
        return;
      case Op::Sltu: intResult(exact12, v1 < v2 ? 1 : 0); goNext(); return;
      case Op::Xor: intResult(exact12, v1 ^ v2); goNext(); return;
      case Op::Srl: intResult(exact12, v1 >> (v2 & 31)); goNext(); return;
      case Op::Sra:
        intResult(exact12, static_cast<uint32_t>(
                               static_cast<int32_t>(v1) >> (v2 & 31)));
        goNext();
        return;
      case Op::Or: intResult(exact12, v1 | v2); goNext(); return;
      case Op::And: intResult(exact12, v1 & v2); goNext(); return;

      case Op::Mul: intResult(exact12, v1 * v2); goNext(); return;
      case Op::Mulh:
        intResult(exact12,
                  static_cast<uint32_t>(
                      (static_cast<int64_t>(static_cast<int32_t>(v1)) *
                       static_cast<int32_t>(v2)) >>
                      32));
        goNext();
        return;
      case Op::Mulhsu:
        intResult(exact12,
                  static_cast<uint32_t>(
                      (static_cast<int64_t>(static_cast<int32_t>(v1)) *
                       v2) >>
                      32));
        goNext();
        return;
      case Op::Mulhu:
        intResult(exact12, static_cast<uint32_t>(
                               (static_cast<uint64_t>(v1) * v2) >> 32));
        goNext();
        return;
      case Op::Div: {
        int32_t r;
        if (v2 == 0) {
            r = -1;
        } else if (v1 == 0x80000000u && v2 == 0xffffffffu) {
            r = static_cast<int32_t>(0x80000000u);
        } else {
            r = static_cast<int32_t>(v1) / static_cast<int32_t>(v2);
        }
        intResult(exact12, static_cast<uint32_t>(r));
        goNext();
        return;
      }
      case Op::Divu:
        intResult(exact12, v2 == 0 ? 0xffffffffu : v1 / v2);
        goNext();
        return;
      case Op::Rem: {
        int32_t r;
        if (v2 == 0) {
            r = static_cast<int32_t>(v1);
        } else if (v1 == 0x80000000u && v2 == 0xffffffffu) {
            r = 0;
        } else {
            r = static_cast<int32_t>(v1) % static_cast<int32_t>(v2);
        }
        intResult(exact12, static_cast<uint32_t>(r));
        goNext();
        return;
      }
      case Op::Remu:
        intResult(exact12, v2 == 0 ? v1 : v1 % v2);
        goNext();
        return;

      case Op::Ecall:
      case Op::Ebreak:
        return; // Trap / halt: the path ends (a definite non-return).
      case Op::Mret:
        if (st.pcc.isExact() &&
            !st.pcc.value.perms().has(cap::PermSystemRegs)) {
            finding(FindingClass::Monotonicity, pc,
                    "mret without SystemRegs permission on PCC", st);
        }
        if (summaryMode) {
            poisoned = true; // Resumes at MEPCC, which is not tracked.
        }
        return;

      case Op::Csrrw: case Op::Csrrs: case Op::Csrrc:
      case Op::Csrrwi: case Op::Csrrsi: case Op::Csrrci:
        if (st.pcc.isExact() &&
            sim::CsrFile::requiresSystemRegs(inst.csr) &&
            !st.pcc.value.perms().has(cap::PermSystemRegs)) {
            finding(FindingClass::Monotonicity, pc,
                    "privileged CSR access without SystemRegs "
                    "permission on PCC",
                    st);
            return;
        }
        intResult(false, 0);
        goNext();
        return;

      case Op::CGetPerm:
        intResult(exact1, exact1 ? aRs1.value.perms().mask() : 0);
        goNext();
        return;
      case Op::CGetType: {
        uint32_t type = 0;
        if (exact1 && aRs1.value.isSealed()) {
            type = aRs1.value.otype() +
                   (aRs1.value.isExecutable() ? cap::kExecOtypeAddressBase
                                              : 0);
        }
        intResult(exact1, type);
        goNext();
        return;
      }
      case Op::CGetBase:
        intResult(exact1, exact1 ? aRs1.value.base() : 0);
        goNext();
        return;
      case Op::CGetLen: {
        const uint64_t length = exact1 ? aRs1.value.length() : 0;
        intResult(exact1, length > 0xffffffffull
                              ? 0xffffffffu
                              : static_cast<uint32_t>(length));
        goNext();
        return;
      }
      case Op::CGetTop: {
        const uint64_t top = exact1 ? aRs1.value.top() : 0;
        intResult(exact1, top > 0xffffffffull
                              ? 0xffffffffu
                              : static_cast<uint32_t>(top));
        goNext();
        return;
      }
      case Op::CGetTag:
        if (aRs1.tagged() != Tri::Maybe) {
            intResult(true, aRs1.tagged() == Tri::Yes ? 1 : 0);
        } else {
            intResult(false, 0);
        }
        goNext();
        return;
      case Op::CGetAddr: intResult(exact1, v1); goNext(); return;

      case Op::CSeal: {
        if (exact12) {
            const auto sealed = cap::seal(aRs1.value, aRs2.value);
            if (!sealed && aRs1.value.tag() && aRs2.value.tag()) {
                finding(FindingClass::Sealing, pc,
                        "seal with authority whose otype/permission "
                        "does not cover the target",
                        st);
            }
            st.write(inst.rd,
                     AbstractCap::exact(sealed
                                            ? *sealed
                                            : aRs1.value.withTagCleared()));
        } else {
            st.write(inst.rd, AbstractCap::unknown(
                                  Tri::Maybe, aRs1.local(), Tri::Maybe));
        }
        goNext();
        return;
      }
      case Op::CUnseal: {
        if (exact12) {
            const auto unsealed = cap::unseal(aRs1.value, aRs2.value);
            if (!unsealed && aRs1.value.tag() && aRs2.value.tag()) {
                finding(FindingClass::Sealing, pc,
                        "unseal with authority whose otype/permission "
                        "does not match the target's seal",
                        st);
            }
            st.write(inst.rd,
                     AbstractCap::exact(
                         unsealed ? *unsealed
                                  : aRs1.value.withTagCleared()));
        } else {
            st.write(inst.rd, AbstractCap::unknown(
                                  Tri::Maybe, aRs1.local(), Tri::Maybe));
        }
        goNext();
        return;
      }
      case Op::CAndPerm:
        if (exact12) {
            st.write(inst.rd,
                     AbstractCap::exact(aRs1.value.withPermsAnd(
                         static_cast<uint16_t>(v2))));
        } else {
            // Permissions only shed: a definitely-local input stays
            // local.
            st.write(inst.rd,
                     AbstractCap::unknown(
                         aRs1.definitelyUntagged() ? Tri::No : Tri::Maybe,
                         aRs1.local() == Tri::Yes ? Tri::Yes : Tri::Maybe,
                         aRs1.sealed()));
        }
        goNext();
        return;
      case Op::CSetAddr:
        if (exact12) {
            st.write(inst.rd,
                     AbstractCap::exact(aRs1.value.withAddress(v2)));
        } else {
            st.write(inst.rd, addressEdit());
        }
        goNext();
        return;
      case Op::CIncAddr:
        if (exact12) {
            st.write(inst.rd, AbstractCap::exact(
                                  aRs1.value.withAddressOffset(v2)));
        } else {
            st.write(inst.rd, addressEdit());
        }
        goNext();
        return;
      case Op::CIncAddrImm:
        if (exact1) {
            st.write(inst.rd, AbstractCap::exact(
                                  aRs1.value.withAddressOffset(inst.imm)));
        } else {
            st.write(inst.rd, addressEdit());
        }
        goNext();
        return;

      case Op::CSetBounds:
      case Op::CSetBoundsExact:
      case Op::CSetBoundsImm: {
        const bool immForm = inst.op == Op::CSetBoundsImm;
        const bool lengthKnown = immForm || aRs2.isExact();
        const uint64_t length =
            immForm ? static_cast<uint32_t>(inst.imm) : v2;
        if (exact1 && lengthKnown && aRs1.value.tag() &&
            !aRs1.value.isSealed()) {
            const uint64_t reqBase = aRs1.value.address();
            const uint64_t reqTop = reqBase + length;
            if (reqBase < aRs1.value.base() ||
                reqTop > aRs1.value.top()) {
                char msg[112];
                std::snprintf(
                    msg, sizeof(msg),
                    "bounds widening: requested [%08x,+%llx) escapes "
                    "[%08x,%08x)",
                    static_cast<uint32_t>(reqBase),
                    static_cast<unsigned long long>(length),
                    aRs1.value.base(),
                    static_cast<uint32_t>(aRs1.value.top()));
                finding(FindingClass::Monotonicity, pc, msg, st);
            }
        }
        if (exact1 && lengthKnown) {
            const Capability result =
                inst.op == Op::CSetBoundsExact
                    ? aRs1.value.withBoundsExact(length)
                    : aRs1.value.withBounds(length);
            st.write(inst.rd, AbstractCap::exact(result));
        } else {
            st.write(inst.rd,
                     AbstractCap::unknown(
                         aRs1.definitelyUntagged() ? Tri::No : Tri::Maybe,
                         aRs1.local(), aRs1.sealed()));
        }
        goNext();
        return;
      }

      case Op::CTestSubset:
        intResult(exact12,
                  exact12 && cap::isSubsetOf(aRs2.value, aRs1.value) ? 1
                                                                     : 0);
        goNext();
        return;
      case Op::CSetEqualExact:
        intResult(exact12, exact12 && aRs1.value == aRs2.value ? 1 : 0);
        goNext();
        return;
      case Op::CMove: st.write(inst.rd, aRs1); goNext(); return;
      case Op::CClearTag:
        if (exact1) {
            st.write(inst.rd,
                     AbstractCap::exact(aRs1.value.withTagCleared()));
        } else {
            st.write(inst.rd, AbstractCap::unknown(Tri::No, aRs1.local(),
                                                   aRs1.sealed()));
        }
        goNext();
        return;
      case Op::CRrl:
        intResult(exact1, static_cast<uint32_t>(
                              cap::representableLength(v1)));
        goNext();
        return;
      case Op::CRam:
        intResult(exact1, cap::representableAlignmentMask(v1));
        goNext();
        return;

      case Op::CSealEntry: {
        const auto posture =
            static_cast<cap::InterruptPosture>(inst.imm);
        if (exact1) {
            const auto sentry = cap::makeSentry(aRs1.value, posture);
            if (!sentry && aRs1.value.tag()) {
                finding(FindingClass::Sealing, pc,
                        "sentry minted from a sealed or non-executable "
                        "capability",
                        st);
            }
            st.write(inst.rd,
                     AbstractCap::exact(sentry
                                            ? *sentry
                                            : aRs1.value.withTagCleared()));
        } else {
            st.write(inst.rd, AbstractCap::unknown(
                                  Tri::Maybe, aRs1.local(), Tri::Maybe));
        }
        goNext();
        return;
      }

      case Op::CSpecialRw:
        if (st.pcc.isExact() &&
            !st.pcc.value.perms().has(cap::PermSystemRegs)) {
            finding(FindingClass::Monotonicity, pc,
                    "special-register access without SystemRegs "
                    "permission on PCC",
                    st);
            return;
        }
        // SCR contents are not tracked.
        st.write(inst.rd, AbstractCap::unknown());
        goNext();
        return;
    }
}

} // namespace

const char *
findingClassName(FindingClass cls)
{
    switch (cls) {
      case FindingClass::Monotonicity: return "monotonicity";
      case FindingClass::SwitcherAbi: return "switcher-abi";
      case FindingClass::StackLeak: return "stack-leak";
      case FindingClass::Sealing: return "sealing";
      case FindingClass::Lint: return "lint";
      case FindingClass::SharedMutable: return "shared-mutable";
    }
    return "?";
}

std::string
Finding::toString() const
{
    char head[96];
    if (pc != 0) {
        std::snprintf(head, sizeof(head), "[%s] %s @%08x: ",
                      findingClassName(cls), compartment.c_str(), pc);
    } else {
        std::snprintf(head, sizeof(head), "[%s] %s: ",
                      findingClassName(cls), compartment.c_str());
    }
    std::string out = head + message;
    if (!latticeState.empty()) {
        out += "\n";
        out += latticeState;
    }
    return out;
}

bool
Report::hasClass(FindingClass cls) const
{
    for (const auto &f : findings) {
        if (f.cls == cls) {
            return true;
        }
    }
    return false;
}

std::string
Report::toString() const
{
    char head[224];
    std::snprintf(
        head, sizeof(head),
        "cheriot-verify %s: %zu finding(s), %llu state "
        "update(s), %llu instruction(s), %llu function(s), "
        "%llu edge(s), %llu summar%s%s\n",
        image.c_str(), findings.size(),
        static_cast<unsigned long long>(statesExplored),
        static_cast<unsigned long long>(instructionsAnalyzed),
        static_cast<unsigned long long>(callGraphFunctions),
        static_cast<unsigned long long>(callGraphEdges),
        static_cast<unsigned long long>(summariesComputed),
        summariesComputed == 1 ? "y" : "ies",
        budgetExhausted ? " [budget exhausted]" : "");
    std::string out = head;
    for (const auto &f : findings) {
        out += f.toString();
        if (out.back() != '\n') {
            out += "\n";
        }
    }
    return out;
}

Report
analyzeProgram(const ProgramImage &image, const AnalyzerOptions &options,
               CallGraph *graphOut)
{
    Interp interp(image, options);
    Report report = interp.run();
    if (graphOut != nullptr) {
        *graphOut = std::move(interp.graph);
    }
    return report;
}

Report
verifyKernel(rtos::Kernel &kernel, const Policy &policy)
{
    Report report;
    report.image = "kernel";
    const rtos::AuditReport audit = rtos::auditKernel(kernel);
    for (const auto &violation : policy.evaluate(audit)) {
        Finding f;
        f.cls = violation.cls;
        f.compartment = violation.compartment;
        f.pc = 0;
        f.message = violation.message + " [" + violation.rule + "]";
        report.findings.push_back(std::move(f));
    }
    return report;
}

} // namespace cheriot::verify
