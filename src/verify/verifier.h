/**
 * @file
 * cheriot-verify: static capability-flow analysis and image linting
 * for compartment binaries (paper §3.1.2, §5.2, §5.3).
 *
 * The analyzer abstract-interprets a linked program image through the
 * real decoder, tracking an AbstractCap lattice per register (see
 * lattice.h), and reports four classes of violation:
 *
 *  1. Monotonicity — instruction sequences that attempt to widen
 *     bounds relative to the loader-derived roots, or that use the
 *     untagged residue of a non-monotone manipulation as authority.
 *  2. Switcher ABI — cross-compartment call sites (jumps through
 *     forward sentries) that leave non-argument capability registers
 *     live, leaking caller capabilities into the callee compartment.
 *  3. Store-Local discipline — a definitely-local (stack-derived)
 *     capability stored through an authority that definitely lacks
 *     Store-Local: the §5.2 stack-capability-leak pattern.
 *  4. Sealing — jumps through sealed non-sentry capabilities,
 *     seal/unseal without matching otype authority, sentry minting
 *     from sealed or non-executable inputs.
 *
 * The analysis is *interprocedural*: call sites are resolved into a
 * call graph (callgraph.h), every discovered callee is summarized
 * once over the Param lattice kind, and the summary is applied at
 * each call-site continuation — so the checkers fire through calls
 * instead of stopping at them. Exact forward-sentry targets become
 * additional verification roots, analyzed under a worst-case
 * (all-Unknown) entry state. Checks still fire only on *definite*
 * facts (Exact lattice values or definite tri-state attributes), so
 * correct images — including every shipped workload — produce zero
 * findings. Kernel-booted images are additionally linted against the
 * audit manifest via a declarative Policy (policy.h) including the
 * authority-reachability and sharing rules (reach.h).
 */

#ifndef CHERIOT_VERIFY_VERIFIER_H
#define CHERIOT_VERIFY_VERIFIER_H

#include "verify/callgraph.h"
#include "verify/finding.h"
#include "verify/lattice.h"
#include "verify/policy.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::rtos
{
class Kernel;
}

namespace cheriot::verify
{

/** Result of verifying one image. */
struct Report
{
    std::string image;
    std::vector<Finding> findings;
    uint64_t statesExplored = 0;       ///< Worklist state updates.
    uint64_t instructionsAnalyzed = 0; ///< Distinct PCs visited.
    uint64_t fixpointIterations = 0;   ///< Worklist pops, all roots.
    uint64_t callGraphFunctions = 0;   ///< Recovered function entries.
    uint64_t callGraphEdges = 0;       ///< Recovered call sites.
    uint64_t summariesComputed = 0;    ///< Distinct callees summarized.
    uint64_t summaryApplications = 0;  ///< Call continuations refined.
    bool budgetExhausted = false;

    bool ok() const { return findings.empty(); }
    bool hasClass(FindingClass cls) const;
    std::string toString() const;
};

/** A linked guest program image to analyze. */
struct ProgramImage
{
    std::string name;
    std::vector<uint32_t> words;
    uint32_t base = 0;  ///< Load address of words[0].
    uint32_t entry = 0; ///< Analysis entry point (reset PC).
};

struct AnalyzerOptions
{
    /** Abort (budgetExhausted) after this many state updates. */
    uint64_t maxStateUpdates = 1u << 20;
};

/**
 * Abstract-interpret @p image from its entry point with the §3.1.1
 * reset state (memory root in a0, sealing root in a1, PCC at entry),
 * then from every discovered sentry entry under a worst-case state.
 * When @p graphOut is non-null it receives the recovered call graph
 * (static peephole scan merged with analysis-discovered edges).
 */
Report analyzeProgram(const ProgramImage &image,
                      const AnalyzerOptions &options = {},
                      CallGraph *graphOut = nullptr);

/**
 * Verify a kernel-booted image: evaluate @p policy over the audit
 * manifest (W^X, SL-free globals, MMIO-import, interrupt-posture,
 * authority-reachability and sharing rules). Compartment entry bodies
 * in this model are host functions, so the instruction-level walk
 * applies to guest program images via analyzeProgram; the kernel
 * surface is covered by the manifest lint.
 */
Report verifyKernel(rtos::Kernel &kernel, const Policy &policy);

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_VERIFIER_H
