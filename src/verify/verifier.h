/**
 * @file
 * cheriot-verify: static capability-flow analysis and image linting
 * for compartment binaries (paper §3.1.2, §5.2, §5.3).
 *
 * The analyzer abstract-interprets a linked program image through the
 * real decoder, tracking an AbstractCap lattice per register (see
 * lattice.h), and reports four classes of violation:
 *
 *  1. Monotonicity — instruction sequences that attempt to widen
 *     bounds relative to the loader-derived roots, or that use the
 *     untagged residue of a non-monotone manipulation as authority.
 *  2. Switcher ABI — cross-compartment call sites (jumps through
 *     forward sentries) that leave non-argument capability registers
 *     live, leaking caller capabilities into the callee compartment.
 *  3. Store-Local discipline — a definitely-local (stack-derived)
 *     capability stored through an authority that definitely lacks
 *     Store-Local: the §5.2 stack-capability-leak pattern.
 *  4. Sealing — jumps through sealed non-sentry capabilities,
 *     seal/unseal without matching otype authority, sentry minting
 *     from sealed or non-executable inputs.
 *
 * Checks fire only on *definite* facts (Exact lattice values or
 * definite tri-state attributes), so correct images — including every
 * shipped workload — produce zero findings. Kernel-booted images are
 * additionally linted against the audit manifest via a declarative
 * Policy (see policy.h): W^X, SL-free globals, MMIO-import and
 * interrupt-posture rules.
 */

#ifndef CHERIOT_VERIFY_VERIFIER_H
#define CHERIOT_VERIFY_VERIFIER_H

#include "verify/lattice.h"
#include "verify/policy.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::rtos
{
class Kernel;
}

namespace cheriot::verify
{

/** The four violation classes (plus image lint). */
enum class FindingClass : uint8_t
{
    Monotonicity, ///< Bounds widening / authority insufficient.
    SwitcherAbi,  ///< Missing register clear at a call site.
    StackLeak,    ///< Store-Local discipline violation.
    Sealing,      ///< Sentry/otype misuse.
    Lint,         ///< Structural/policy violation from the manifest.
};

const char *findingClassName(FindingClass cls);

/** One diagnostic: class, compartment (or image), PC, and the lattice
 * state that proves the violation. */
struct Finding
{
    FindingClass cls = FindingClass::Lint;
    std::string compartment;
    uint32_t pc = 0; ///< 0 for lint findings (no code location).
    std::string message;
    std::string latticeState; ///< Register lattice at the site.

    std::string toString() const;
};

/** Result of verifying one image. */
struct Report
{
    std::string image;
    std::vector<Finding> findings;
    uint64_t statesExplored = 0;      ///< Worklist state updates.
    uint64_t instructionsAnalyzed = 0; ///< Distinct PCs visited.
    bool budgetExhausted = false;

    bool ok() const { return findings.empty(); }
    bool hasClass(FindingClass cls) const;
    std::string toString() const;
};

/** A linked guest program image to analyze. */
struct ProgramImage
{
    std::string name;
    std::vector<uint32_t> words;
    uint32_t base = 0;  ///< Load address of words[0].
    uint32_t entry = 0; ///< Analysis entry point (reset PC).
};

struct AnalyzerOptions
{
    /** Abort (budgetExhausted) after this many state updates. */
    uint64_t maxStateUpdates = 1u << 20;
};

/**
 * Abstract-interpret @p image from its entry point with the §3.1.1
 * reset state (memory root in a0, sealing root in a1, PCC at entry).
 */
Report analyzeProgram(const ProgramImage &image,
                      const AnalyzerOptions &options = {});

/**
 * Verify a kernel-booted image: evaluate @p policy over the audit
 * manifest (W^X, SL-free globals, MMIO-import and interrupt-posture
 * rules). Compartment entry bodies in this model are host functions,
 * so the instruction-level walk applies to guest program images via
 * analyzeProgram; the kernel surface is covered by the manifest lint.
 */
Report verifyKernel(rtos::Kernel &kernel, const Policy &policy);

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_VERIFIER_H
