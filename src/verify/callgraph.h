/**
 * @file
 * Call-graph recovery and per-function capability summaries for the
 * interprocedural analyzer.
 *
 * Two recovery layers feed the same graph:
 *
 *  - A *static* peephole scan over the linked image recognises the
 *    sentry-minting idiom (auipcc, an optional cincaddrimm chain,
 *    csealentry) and records the minted entry addresses. The scan is
 *    metadata only — a branch into the middle of the pattern could
 *    misidentify an address, so static results are never used as
 *    verification roots, only to label the graph dump.
 *
 *  - The abstract interpreter records *definite* facts as it runs:
 *    every direct jal call, every exact resolved jalr target and
 *    every exact forward-sentry call site becomes an edge, and exact
 *    sentry targets become verification roots. Only this layer feeds
 *    the checkers, preserving the zero-false-positive contract.
 *
 * Function summaries (see FunctionSummary) describe a callee's effect
 * on the register file in terms of the Param lattice kind: a register
 * whose summary out-value is Param(i) definitely holds the caller's
 * entry value of register i on every return path.
 */

#ifndef CHERIOT_VERIFY_CALLGRAPH_H
#define CHERIOT_VERIFY_CALLGRAPH_H

#include "verify/lattice.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cheriot::verify
{

struct ProgramImage;

/** One recovered call site. */
struct CallEdge
{
    uint32_t sitePc = 0;    ///< Address of the jal/jalr instruction.
    uint32_t target = 0;    ///< Resolved callee entry.
    bool viaSentry = false; ///< Through a forward sentry (cross-
                            ///< compartment ABI applies).
    bool direct = false;    ///< jal with an immediate target.
};

/** One known function entry. */
struct CallGraphNode
{
    uint32_t entry = 0;
    bool root = false;         ///< Served as a verification root.
    bool staticSentry = false; ///< Found by the static peephole scan.
};

/**
 * The effect of calling a function, expressed over the summary
 * lattice. Built by abstract-interpreting the callee once with
 * Param(i) in every register; memoized per entry point.
 */
struct FunctionSummary
{
    enum class Kind : uint8_t
    {
        /** No usable summary: apply the conservative havoc (every
         * register Unknown after the call). Used for recursion,
         * escapes the analysis cannot classify, and budget
         * exhaustion. */
        Havoc,
        /** Every escaping path is a definite return; @c out describes
         * the register file at return (Param values refer to the
         * caller's state at the call site). */
        Returns,
        /** Every escaping path definitely traps: the call never
         * returns and the continuation is unreachable. */
        NoReturn,
    };

    Kind kind = Kind::Havoc;
    AbstractState out; ///< Valid iff kind == Returns.
};

class CallGraph
{
  public:
    /** Static recovery: scan @p image for the sentry-minting peephole
     * and direct jal call sites. */
    static CallGraph recover(const ProgramImage &image);

    void addNode(uint32_t entry, bool root, bool staticSentry);
    void addEdge(const CallEdge &edge); ///< Dedups by (sitePc, target).

    const std::map<uint32_t, CallGraphNode> &nodes() const
    {
        return nodes_;
    }
    const std::vector<CallEdge> &edges() const { return edges_; }
    size_t nodeCount() const { return nodes_.size(); }
    size_t edgeCount() const { return edges_.size(); }

    /** The function a site belongs to: the greatest known entry at or
     * below @p pc (0 when none is known). */
    uint32_t functionOf(uint32_t pc) const;

    /** Graphviz rendering (one node per function, edges labelled with
     * their call-site PC). */
    std::string toDot(const std::string &name) const;

    /** Machine-readable rendering for tooling diffs. */
    std::string toJson(const std::string &name) const;

  private:
    std::map<uint32_t, CallGraphNode> nodes_;
    std::vector<CallEdge> edges_;
    std::set<uint64_t> edgeKeys_;
};

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_CALLGRAPH_H
