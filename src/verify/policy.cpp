#include "verify/policy.h"

#include "verify/reach.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace cheriot::verify
{

namespace
{

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    for (char c : text) {
        if (c == ',') {
            if (!current.empty()) {
                parts.push_back(current);
                current.clear();
            }
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            current += c;
        }
    }
    if (!current.empty()) {
        parts.push_back(current);
    }
    return parts;
}

bool
allows(const std::vector<std::string> &allowed, const std::string &name)
{
    return std::find(allowed.begin(), allowed.end(), name) !=
           allowed.end();
}

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

bool
parseLine(const std::string &line, unsigned lineNo,
          const std::string &sourceName, std::vector<PolicyRule> &rules,
          std::string *error)
{
    std::istringstream in(line);
    std::string keyword;
    in >> keyword;

    const std::string where =
        sourceName + ":" + std::to_string(lineNo) + ": ";

    PolicyRule rule;
    rule.text = line;

    if (keyword == "require") {
        std::string what;
        in >> what;
        if (what == "globals-no-store-local") {
            rule.kind = PolicyRule::Kind::RequireGlobalsNoStoreLocal;
        } else if (what == "code-not-writable") {
            rule.kind = PolicyRule::Kind::RequireCodeNotWritable;
        } else if (what == "no-shared-mutable") {
            rule.kind = PolicyRule::Kind::RequireNoSharedMutable;
        } else {
            return fail(error, where + "unknown requirement '" + what +
                                   "'");
        }
    } else if (keyword == "mmio" || keyword == "reach") {
        std::string window, only, list;
        in >> window >> only;
        std::getline(in, list);
        if (window.empty() || only != "only") {
            return fail(error, where + "expected '" + keyword +
                                   " <window> only "
                                   "<compartments|none>', got '" +
                                   (only.empty() ? window : only) + "'");
        }
        rule.kind = keyword == "mmio" ? PolicyRule::Kind::MmioOnly
                                      : PolicyRule::Kind::ReachOnly;
        rule.window = window;
        rule.allowed = splitList(list);
        if (rule.allowed.size() == 1 && rule.allowed[0] == "none") {
            rule.allowed.clear();
        } else if (rule.allowed.empty()) {
            return fail(error, where + keyword +
                                   " rule needs a compartment list "
                                   "or 'none'");
        }
    } else if (keyword == "hold") {
        std::string type, only, list;
        in >> type >> only;
        std::getline(in, list);
        if ((type != "time" && type != "channel" && type != "monitor") ||
            only != "only") {
            return fail(error, where + "expected 'hold "
                                   "<time|channel|monitor> only "
                                   "<compartments|none>', got '" +
                                   type + (only.empty() ? "" : " ") +
                                   only + "'");
        }
        rule.kind = PolicyRule::Kind::HoldOnly;
        rule.window = type;
        rule.allowed = splitList(list);
        if (rule.allowed.size() == 1 && rule.allowed[0] == "none") {
            rule.allowed.clear();
        } else if (rule.allowed.empty()) {
            return fail(error, where + std::string(
                                   "hold rule needs a compartment list "
                                   "or 'none'"));
        }
    } else if (keyword == "interrupts-disabled") {
        std::string only, list;
        in >> only;
        std::getline(in, list);
        if (only != "only") {
            return fail(error, where + "expected 'interrupts-disabled "
                                   "only <compartments|none>', got '" +
                                   only + "'");
        }
        rule.kind = PolicyRule::Kind::InterruptsDisabledOnly;
        rule.allowed = splitList(list);
        if (rule.allowed.size() == 1 && rule.allowed[0] == "none") {
            rule.allowed.clear();
        } else if (rule.allowed.empty()) {
            return fail(error,
                        where + std::string(
                                    "interrupts-disabled rule needs a "
                                    "compartment list or 'none'"));
        }
    } else {
        return fail(error, where + "unknown keyword '" + keyword + "'");
    }

    rules.push_back(std::move(rule));
    return true;
}

} // namespace

std::optional<Policy>
Policy::parse(const std::string &text, std::string *error,
              const std::string &sourceName)
{
    Policy policy;
    std::istringstream in(text);
    std::string line;
    unsigned lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        const auto firstNonSpace = line.find_first_not_of(" \t\r");
        if (firstNonSpace == std::string::npos) {
            continue;
        }
        if (!parseLine(line, lineNo, sourceName, policy.rules_, error)) {
            return std::nullopt;
        }
    }
    return policy;
}

Policy
Policy::defaultPolicy()
{
    auto policy = parse("require globals-no-store-local\n"
                        "require code-not-writable\n"
                        "require no-shared-mutable\n"
                        "mmio revocation-bitmap only alloc\n"
                        "mmio nic only net_driver\n"
                        "reach revocation-bitmap only alloc\n",
                        nullptr, "default-policy");
    return *policy;
}

std::vector<PolicyViolation>
Policy::evaluate(const rtos::AuditReport &report) const
{
    std::vector<PolicyViolation> violations;
    // The reachability closure is shared by every reach/sharing rule;
    // build it lazily so purely structural policies stay cheap.
    std::optional<AuthorityReach> reach;
    auto reachability = [&]() -> const AuthorityReach & {
        if (!reach) {
            reach.emplace(report);
        }
        return *reach;
    };
    for (const auto &rule : rules_) {
        switch (rule.kind) {
          case PolicyRule::Kind::RequireGlobalsNoStoreLocal:
            for (const auto &c : report.compartments) {
                if (c.globalsStoreLocal) {
                    violations.push_back(
                        {rule.text, c.name,
                         "globals capability carries Store-Local: stack "
                         "references could be captured (§5.2)"});
                }
            }
            break;
          case PolicyRule::Kind::RequireCodeNotWritable:
            for (const auto &c : report.compartments) {
                if (c.codeWritable) {
                    violations.push_back(
                        {rule.text, c.name,
                         "code capability is writable: W^X violated"});
                }
            }
            break;
          case PolicyRule::Kind::MmioOnly:
            for (const auto &c : report.compartments) {
                for (const auto &window : c.mmioImports) {
                    if (window.window == rule.window &&
                        !allows(rule.allowed, c.name)) {
                        violations.push_back(
                            {rule.text, c.name,
                             "imports MMIO window '" + window.window +
                                 "' but is not on the allow list"});
                    }
                }
            }
            break;
          case PolicyRule::Kind::ReachOnly:
            for (const auto &name :
                 reachability().reachers(rule.window)) {
                if (!allows(rule.allowed, name)) {
                    violations.push_back(
                        {rule.text, name,
                         "can reach authority '" + rule.window +
                             "' (holds it or can invoke a holder) but "
                             "is not on the allow list"});
                }
            }
            break;
          case PolicyRule::Kind::RequireNoSharedMutable:
            for (const auto &issue : reachability().sharedMutable()) {
                std::string writers;
                for (const auto &writer : issue.writers) {
                    if (!writers.empty()) {
                        writers += ",";
                    }
                    writers += writer;
                }
                violations.push_back({rule.text, writers, issue.message,
                                      FindingClass::SharedMutable});
            }
            break;
          case PolicyRule::Kind::HoldOnly:
            for (const auto &c : report.compartments) {
                for (const auto &holding : c.tokenHoldings) {
                    if (holding == rule.window &&
                        !allows(rule.allowed, c.name)) {
                        violations.push_back(
                            {rule.text, c.name,
                             "holds a live '" + holding +
                                 "' object capability but is not on "
                                 "the allow list"});
                    }
                }
            }
            break;
          case PolicyRule::Kind::InterruptsDisabledOnly:
            for (const auto &e : report.exports) {
                if (e.interruptsDisabled &&
                    !allows(rule.allowed, e.compartment)) {
                    violations.push_back(
                        {rule.text, e.compartment,
                         "export '" + e.entryPoint +
                             "' runs with interrupts disabled but the "
                             "compartment is not on the allow list"});
                }
            }
            break;
        }
    }
    return violations;
}

std::string
Policy::toString() const
{
    std::string out;
    for (const auto &rule : rules_) {
        out += rule.text;
        out += "\n";
    }
    return out;
}

} // namespace cheriot::verify
