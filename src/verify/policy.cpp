#include "verify/policy.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace cheriot::verify
{

namespace
{

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    for (char c : text) {
        if (c == ',') {
            if (!current.empty()) {
                parts.push_back(current);
                current.clear();
            }
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            current += c;
        }
    }
    if (!current.empty()) {
        parts.push_back(current);
    }
    return parts;
}

bool
allows(const std::vector<std::string> &allowed, const std::string &name)
{
    return std::find(allowed.begin(), allowed.end(), name) !=
           allowed.end();
}

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

bool
parseLine(const std::string &line, unsigned lineNo,
          std::vector<PolicyRule> &rules, std::string *error)
{
    std::istringstream in(line);
    std::string keyword;
    in >> keyword;

    char where[32];
    std::snprintf(where, sizeof(where), "line %u: ", lineNo);

    PolicyRule rule;
    rule.text = line;

    if (keyword == "require") {
        std::string what;
        in >> what;
        if (what == "globals-no-store-local") {
            rule.kind = PolicyRule::Kind::RequireGlobalsNoStoreLocal;
        } else if (what == "code-not-writable") {
            rule.kind = PolicyRule::Kind::RequireCodeNotWritable;
        } else {
            return fail(error, where + ("unknown requirement '" + what +
                                        "'"));
        }
    } else if (keyword == "mmio") {
        std::string window, only, list;
        in >> window >> only;
        std::getline(in, list);
        if (window.empty() || only != "only") {
            return fail(error,
                        where +
                            std::string("expected 'mmio <window> only "
                                        "<compartments|none>'"));
        }
        rule.kind = PolicyRule::Kind::MmioOnly;
        rule.window = window;
        rule.allowed = splitList(list);
        if (rule.allowed.size() == 1 && rule.allowed[0] == "none") {
            rule.allowed.clear();
        } else if (rule.allowed.empty()) {
            return fail(error, where + std::string(
                                   "mmio rule needs a compartment list "
                                   "or 'none'"));
        }
    } else if (keyword == "hold") {
        std::string type, only, list;
        in >> type >> only;
        std::getline(in, list);
        if ((type != "time" && type != "channel" && type != "monitor") ||
            only != "only") {
            return fail(error,
                        where + std::string(
                                    "expected 'hold "
                                    "<time|channel|monitor> only "
                                    "<compartments|none>'"));
        }
        rule.kind = PolicyRule::Kind::HoldOnly;
        rule.window = type;
        rule.allowed = splitList(list);
        if (rule.allowed.size() == 1 && rule.allowed[0] == "none") {
            rule.allowed.clear();
        } else if (rule.allowed.empty()) {
            return fail(error, where + std::string(
                                   "hold rule needs a compartment list "
                                   "or 'none'"));
        }
    } else if (keyword == "interrupts-disabled") {
        std::string only, list;
        in >> only;
        std::getline(in, list);
        if (only != "only") {
            return fail(error,
                        where + std::string(
                                    "expected 'interrupts-disabled only "
                                    "<compartments|none>'"));
        }
        rule.kind = PolicyRule::Kind::InterruptsDisabledOnly;
        rule.allowed = splitList(list);
        if (rule.allowed.size() == 1 && rule.allowed[0] == "none") {
            rule.allowed.clear();
        } else if (rule.allowed.empty()) {
            return fail(error,
                        where + std::string(
                                    "interrupts-disabled rule needs a "
                                    "compartment list or 'none'"));
        }
    } else {
        return fail(error, where + ("unknown keyword '" + keyword + "'"));
    }

    rules.push_back(std::move(rule));
    return true;
}

} // namespace

std::optional<Policy>
Policy::parse(const std::string &text, std::string *error)
{
    Policy policy;
    std::istringstream in(text);
    std::string line;
    unsigned lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        const auto firstNonSpace = line.find_first_not_of(" \t\r");
        if (firstNonSpace == std::string::npos) {
            continue;
        }
        if (!parseLine(line, lineNo, policy.rules_, error)) {
            return std::nullopt;
        }
    }
    return policy;
}

Policy
Policy::defaultPolicy()
{
    auto policy = parse("require globals-no-store-local\n"
                        "require code-not-writable\n"
                        "mmio revocation-bitmap only alloc\n"
                        "mmio nic only net_driver\n");
    return *policy;
}

std::vector<PolicyViolation>
Policy::evaluate(const rtos::AuditReport &report) const
{
    std::vector<PolicyViolation> violations;
    for (const auto &rule : rules_) {
        switch (rule.kind) {
          case PolicyRule::Kind::RequireGlobalsNoStoreLocal:
            for (const auto &c : report.compartments) {
                if (c.globalsStoreLocal) {
                    violations.push_back(
                        {rule.text, c.name,
                         "globals capability carries Store-Local: stack "
                         "references could be captured (§5.2)"});
                }
            }
            break;
          case PolicyRule::Kind::RequireCodeNotWritable:
            for (const auto &c : report.compartments) {
                if (c.codeWritable) {
                    violations.push_back(
                        {rule.text, c.name,
                         "code capability is writable: W^X violated"});
                }
            }
            break;
          case PolicyRule::Kind::MmioOnly:
            for (const auto &c : report.compartments) {
                for (const auto &window : c.mmioImports) {
                    if (window == rule.window &&
                        !allows(rule.allowed, c.name)) {
                        violations.push_back(
                            {rule.text, c.name,
                             "imports MMIO window '" + window +
                                 "' but is not on the allow list"});
                    }
                }
            }
            break;
          case PolicyRule::Kind::HoldOnly:
            for (const auto &c : report.compartments) {
                for (const auto &holding : c.tokenHoldings) {
                    if (holding == rule.window &&
                        !allows(rule.allowed, c.name)) {
                        violations.push_back(
                            {rule.text, c.name,
                             "holds a live '" + holding +
                                 "' object capability but is not on "
                                 "the allow list"});
                    }
                }
            }
            break;
          case PolicyRule::Kind::InterruptsDisabledOnly:
            for (const auto &e : report.exports) {
                if (e.interruptsDisabled &&
                    !allows(rule.allowed, e.compartment)) {
                    violations.push_back(
                        {rule.text, e.compartment,
                         "export '" + e.entryPoint +
                             "' runs with interrupts disabled but the "
                             "compartment is not on the allow list"});
                }
            }
            break;
        }
    }
    return violations;
}

std::string
Policy::toString() const
{
    std::string out;
    for (const auto &rule : rules_) {
        out += rule.text;
        out += "\n";
    }
    return out;
}

} // namespace cheriot::verify
