/**
 * @file
 * Finding types shared by the cheriot-verify layers.
 *
 * The instruction-level analyzer (verifier.h), the manifest policy
 * engine (policy.h) and the authority-reachability / sharing lint
 * (reach.h) all report through the same Finding record; keeping the
 * class enum here lets policy rules carry a finding class without
 * pulling the whole analyzer interface into every consumer.
 */

#ifndef CHERIOT_VERIFY_FINDING_H
#define CHERIOT_VERIFY_FINDING_H

#include <cstdint>
#include <string>

namespace cheriot::verify
{

/** The violation classes (four capability-flow classes plus the
 * manifest lint and the static sharing lint). */
enum class FindingClass : uint8_t
{
    Monotonicity, ///< Bounds widening / authority insufficient.
    SwitcherAbi,  ///< Missing register clear at a call site.
    StackLeak,    ///< Store-Local discipline violation.
    Sealing,      ///< Sentry/otype misuse.
    Lint,         ///< Structural/policy violation from the manifest.
    SharedMutable, ///< Writable authority shared by >=2 mutator
                   ///< domains without channel discipline.
};

const char *findingClassName(FindingClass cls);

/** One diagnostic: class, compartment (or image), PC, and the lattice
 * state that proves the violation. */
struct Finding
{
    FindingClass cls = FindingClass::Lint;
    std::string compartment;
    uint32_t pc = 0; ///< 0 for lint findings (no code location).
    std::string message;
    std::string latticeState; ///< Register lattice at the site.

    std::string toString() const;
};

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_FINDING_H
