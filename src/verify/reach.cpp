#include "verify/reach.h"

#include "rtos/audit.h"

#include <algorithm>

namespace cheriot::verify
{

AuthorityReach::AuthorityReach(const rtos::AuditReport &audit)
{
    // Direct holders. Kernel services consumed through the ambient
    // allocator API (malloc/free/claim) are not edges: only authority
    // the manifest can name participates.
    for (const auto &compartment : audit.compartments) {
        for (const auto &window : compartment.mmioImports) {
            reach_[window.window].insert(compartment.name);
            if (window.writable) {
                writers_[window.window].push_back(compartment.name);
            }
        }
        for (const auto &holding : compartment.tokenHoldings) {
            reach_[holding].insert(compartment.name);
            if (holding == "channel") {
                channelHolders_.insert(compartment.name);
            }
        }
        for (const auto &edge : compartment.entryImports) {
            calls_[compartment.name].insert(edge.target);
        }
    }

    // Interrupt-posture split per compartment.
    std::map<std::string, uint8_t> postures;
    for (const auto &exported : audit.exports) {
        postures[exported.compartment] |=
            exported.interruptsDisabled ? 2 : 1;
    }
    for (const auto &[name, mask] : postures) {
        if (mask == 3) {
            postureSplit_.insert(name);
        }
    }

    // Transitive closure: a caller reaches whatever its callees
    // reach. Iterate to fixpoint (manifest graphs are tiny).
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &[authority, reachers] : reach_) {
            for (const auto &[caller, callees] : calls_) {
                if (reachers.count(caller) != 0) {
                    continue;
                }
                for (const auto &callee : callees) {
                    if (reachers.count(callee) != 0) {
                        reachers.insert(caller);
                        changed = true;
                        break;
                    }
                }
            }
        }
    }
}

std::vector<std::string>
AuthorityReach::authorities() const
{
    std::vector<std::string> out;
    out.reserve(reach_.size());
    for (const auto &[authority, reachers] : reach_) {
        out.push_back(authority);
    }
    return out;
}

const std::set<std::string> &
AuthorityReach::reachers(const std::string &authority) const
{
    static const std::set<std::string> kEmpty;
    auto it = reach_.find(authority);
    return it == reach_.end() ? kEmpty : it->second;
}

bool
AuthorityReach::reaches(const std::string &compartment,
                        const std::string &authority) const
{
    return reachers(authority).count(compartment) != 0;
}

std::vector<SharedMutableIssue>
AuthorityReach::sharedMutable() const
{
    std::vector<SharedMutableIssue> issues;
    for (const auto &[authority, writers] : writers_) {
        // Mutator domains: one per writing compartment, plus one for
        // each writer that mutates from both interrupt postures (its
        // enabled entries race its disabled ones).
        size_t domains = writers.size();
        bool split = false;
        for (const auto &writer : writers) {
            if (postureSplit_.count(writer) != 0) {
                domains += 1;
                split = true;
            }
        }
        if (domains < 2) {
            continue;
        }
        // Channel discipline: every writer provably serialises its
        // mutations through a kernel channel.
        bool disciplined = true;
        for (const auto &writer : writers) {
            if (channelHolders_.count(writer) == 0) {
                disciplined = false;
                break;
            }
        }
        if (disciplined) {
            continue;
        }
        SharedMutableIssue issue;
        issue.authority = authority;
        issue.writers = writers;
        issue.postureSplit = split;
        std::string list;
        for (const auto &writer : writers) {
            if (!list.empty()) {
                list += ", ";
            }
            list += writer;
        }
        issue.message = "writable authority '" + authority +
                        "' is mutable from " +
                        std::to_string(domains) + " domains (" + list +
                        (split ? "; task+ISR posture split" : "") +
                        ") without channel discipline";
        issues.push_back(std::move(issue));
    }
    return issues;
}

std::string
AuthorityReach::toDot() const
{
    std::string out = "digraph authority_reach {\n";
    std::set<std::string> compartments;
    for (const auto &[caller, callees] : calls_) {
        compartments.insert(caller);
        compartments.insert(callees.begin(), callees.end());
    }
    for (const auto &[authority, reachers] : reach_) {
        compartments.insert(reachers.begin(), reachers.end());
    }
    for (const auto &name : compartments) {
        out += "  \"" + name + "\" [shape=ellipse];\n";
    }
    for (const auto &[authority, reachers] : reach_) {
        out += "  \"#" + authority + "\" [shape=box, style=filled];\n";
    }
    for (const auto &[caller, callees] : calls_) {
        for (const auto &callee : callees) {
            out += "  \"" + caller + "\" -> \"" + callee + "\";\n";
        }
    }
    for (const auto &[authority, writers] : writers_) {
        for (const auto &writer : writers) {
            out += "  \"" + writer + "\" -> \"#" + authority +
                   "\" [style=bold];\n";
        }
    }
    out += "}\n";
    return out;
}

std::string
AuthorityReach::toJson() const
{
    std::string out = "{\"authorities\": [";
    bool firstAuthority = true;
    for (const auto &[authority, reachers] : reach_) {
        if (!firstAuthority) {
            out += ", ";
        }
        firstAuthority = false;
        out += "{\"name\": \"" + authority + "\", \"reachers\": [";
        bool first = true;
        for (const auto &name : reachers) {
            if (!first) {
                out += ", ";
            }
            first = false;
            out += "\"" + name + "\"";
        }
        out += "]}";
    }
    out += "], \"calls\": [";
    bool firstEdge = true;
    for (const auto &[caller, callees] : calls_) {
        for (const auto &callee : callees) {
            if (!firstEdge) {
                out += ", ";
            }
            firstEdge = false;
            out += "{\"from\": \"" + caller + "\", \"to\": \"" + callee +
                   "\"}";
        }
    }
    out += "]}";
    return out;
}

} // namespace cheriot::verify
