/**
 * @file
 * Declarative lint policies over the audit manifest (paper §3.1.2).
 *
 * A policy is a small line-based document an auditor can read and
 * diff: structural requirements (SL-free globals, W^X code) plus
 * authority rules naming which compartments may hold a given MMIO
 * window or run entries with interrupts disabled. Policies are
 * evaluated against rtos::AuditReport; each violated rule yields a
 * PolicyViolation the verifier surfaces as a Lint finding.
 *
 * Grammar (one rule per line; '#' comments and blank lines ignored):
 *
 *   require globals-no-store-local
 *   require code-not-writable
 *   mmio <window> only <comp>[,<comp>...] | none
 *   interrupts-disabled only <comp>[,<comp>...] | none
 *   hold <time|channel|monitor> only <comp>[,<comp>...] | none
 */

#ifndef CHERIOT_VERIFY_POLICY_H
#define CHERIOT_VERIFY_POLICY_H

#include "rtos/audit.h"

#include <optional>
#include <string>
#include <vector>

namespace cheriot::verify
{

/** One parsed policy rule. */
struct PolicyRule
{
    enum class Kind : uint8_t
    {
        /** Every compartment's globals capability lacks SL (§5.2). */
        RequireGlobalsNoStoreLocal,
        /** Every compartment's code capability lacks Store (W^X). */
        RequireCodeNotWritable,
        /** Only listed compartments may import the named window. */
        MmioOnly,
        /** Only listed compartments may export IRQ-disabled entries. */
        InterruptsDisabledOnly,
        /** Only listed compartments may hold live object capabilities
         * of the named type (time/channel/monitor). */
        HoldOnly,
    };

    Kind kind;
    std::string window;               ///< MmioOnly window / HoldOnly
                                      ///< capability type.
    std::vector<std::string> allowed; ///< MmioOnly / IRQ / Hold rules.
    std::string text;                 ///< Source line, for diagnostics.
};

/** One rule violation: which rule, which compartment, why. */
struct PolicyViolation
{
    std::string rule;
    std::string compartment;
    std::string message;
};

class Policy
{
  public:
    /** Parse a policy document; nullopt (and *error) on bad syntax. */
    static std::optional<Policy> parse(const std::string &text,
                                       std::string *error = nullptr);

    /** The policy every shipped image must satisfy: structural
     * invariants plus "only the allocator touches the revocation
     * bitmap". */
    static Policy defaultPolicy();

    /** Check every rule against @p report; empty means compliant. */
    std::vector<PolicyViolation>
    evaluate(const rtos::AuditReport &report) const;

    const std::vector<PolicyRule> &rules() const { return rules_; }

    /** Canonical rendering (re-parseable). */
    std::string toString() const;

  private:
    std::vector<PolicyRule> rules_;
};

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_POLICY_H
