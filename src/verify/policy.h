/**
 * @file
 * Declarative lint policies over the audit manifest (paper §3.1.2).
 *
 * A policy is a small line-based document an auditor can read and
 * diff: structural requirements (SL-free globals, W^X code) plus
 * authority rules naming which compartments may hold a given MMIO
 * window or run entries with interrupts disabled. Policies are
 * evaluated against rtos::AuditReport; each violated rule yields a
 * PolicyViolation the verifier surfaces as a Lint finding.
 *
 * Grammar (one rule per line; '#' comments and blank lines ignored):
 *
 *   require globals-no-store-local
 *   require code-not-writable
 *   require no-shared-mutable
 *   mmio <window> only <comp>[,<comp>...] | none
 *   reach <window|token> only <comp>[,<comp>...] | none
 *   interrupts-disabled only <comp>[,<comp>...] | none
 *   hold <time|channel|monitor> only <comp>[,<comp>...] | none
 *
 * `mmio` constrains *direct* possession; `reach` constrains the
 * transitive closure over entry imports (see reach.h) — who could
 * exercise the authority by calling into a holder. `require
 * no-shared-mutable` runs the static sharing lint: no writable
 * authority mutable from two compartments (or from both interrupt
 * postures of one) without channel discipline.
 *
 * Parse diagnostics carry the source name, line number and offending
 * token ("boot-policy:3: unknown keyword 'requrie'") so a rejected
 * policy file points at the exact edit that broke it.
 */

#ifndef CHERIOT_VERIFY_POLICY_H
#define CHERIOT_VERIFY_POLICY_H

#include "rtos/audit.h"
#include "verify/finding.h"

#include <optional>
#include <string>
#include <vector>

namespace cheriot::verify
{

/** One parsed policy rule. */
struct PolicyRule
{
    enum class Kind : uint8_t
    {
        /** Every compartment's globals capability lacks SL (§5.2). */
        RequireGlobalsNoStoreLocal,
        /** Every compartment's code capability lacks Store (W^X). */
        RequireCodeNotWritable,
        /** Only listed compartments may import the named window. */
        MmioOnly,
        /** Only listed compartments may export IRQ-disabled entries. */
        InterruptsDisabledOnly,
        /** Only listed compartments may hold live object capabilities
         * of the named type (time/channel/monitor). */
        HoldOnly,
        /** Only listed compartments may *reach* the named authority,
         * transitively through entry imports. */
        ReachOnly,
        /** No writable authority shared across mutator domains
         * without channel discipline (the static race lint). */
        RequireNoSharedMutable,
    };

    Kind kind;
    std::string window;               ///< MmioOnly window / HoldOnly
                                      ///< capability type.
    std::vector<std::string> allowed; ///< MmioOnly / IRQ / Hold rules.
    std::string text;                 ///< Source line, for diagnostics.
};

/** One rule violation: which rule, which compartment, why. */
struct PolicyViolation
{
    std::string rule;
    std::string compartment;
    std::string message;
    /** Finding class the verifier should report this under (Lint for
     * structural/authority rules, SharedMutable for the race lint). */
    FindingClass cls = FindingClass::Lint;
};

class Policy
{
  public:
    /** Parse a policy document; nullopt (and *error) on bad syntax.
     * @p sourceName labels diagnostics ("<source>:<line>: ..."). */
    static std::optional<Policy>
    parse(const std::string &text, std::string *error = nullptr,
          const std::string &sourceName = "policy");

    /** The policy every shipped image must satisfy: structural
     * invariants, the sharing lint, and "only the allocator touches
     * (or can reach) the revocation bitmap". */
    static Policy defaultPolicy();

    /** Check every rule against @p report; empty means compliant. */
    std::vector<PolicyViolation>
    evaluate(const rtos::AuditReport &report) const;

    const std::vector<PolicyRule> &rules() const { return rules_; }

    /** Canonical rendering (re-parseable). */
    std::string toString() const;

  private:
    std::vector<PolicyRule> rules_;
};

} // namespace cheriot::verify

#endif // CHERIOT_VERIFY_POLICY_H
