#include "cap/permissions.h"

#include "util/bits.h"
#include "util/log.h"

#include <array>

namespace cheriot::cap
{

namespace
{

constexpr uint8_t kGlBit = 1u << 5;

/**
 * Decode the low five bits of the compressed field (everything except
 * GL) into an architectural mask (excluding GL).
 */
constexpr uint16_t
decodeLow5(uint8_t low5)
{
    const bool b4 = bit(low5, 4);
    const bool b3 = bit(low5, 3);
    const bool b2 = bit(low5, 2);
    const bool b1 = bit(low5, 1);
    const bool b0 = bit(low5, 0);

    if (b4 && b3) {
        // 1 1 SL LM LG : read/write memory, capability-bearing.
        uint16_t mask = PermLoad | PermMemCap | PermStore;
        if (b2) mask |= PermStoreLocal;
        if (b1) mask |= PermLoadMutable;
        if (b0) mask |= PermLoadGlobal;
        return mask;
    }
    if (b4 && !b3 && b2) {
        // 1 0 1 LM LG : read-only memory, capability-bearing.
        uint16_t mask = PermLoad | PermMemCap;
        if (b1) mask |= PermLoadMutable;
        if (b0) mask |= PermLoadGlobal;
        return mask;
    }
    if (b4 && !b3 && !b2) {
        if (!b1 && !b0) {
            // 1 0 0 0 0 : write-only capability-bearing memory.
            return PermStore | PermMemCap;
        }
        // 1 0 0 LD SD : data-only memory (no capability traffic).
        uint16_t mask = 0;
        if (b1) mask |= PermLoad;
        if (b0) mask |= PermStore;
        return mask;
    }
    if (!b4 && b3) {
        // 0 1 SR LM LG : executable.
        uint16_t mask = PermExecute | PermLoad | PermMemCap;
        if (b2) mask |= PermSystemRegs;
        if (b1) mask |= PermLoadMutable;
        if (b0) mask |= PermLoadGlobal;
        return mask;
    }
    // 0 0 U0 SE US : sealing (or the empty set when all clear).
    uint16_t mask = 0;
    if (b2) mask |= PermUser0;
    if (b1) mask |= PermSeal;
    if (b0) mask |= PermUnseal;
    return mask;
}

/**
 * Try to encode @p noGl (an architectural mask with GL removed) in one
 * specific format. Returns the representable subset achievable in that
 * format and writes the low-5-bit encoding to @p low5Out. A format is
 * usable only if all of its implied permissions are present in the
 * request (an encoding must never grant more than was asked for).
 * Returns 0 and leaves @p low5Out untouched when unusable.
 */
uint16_t
tryFormat(PermFormat format, uint16_t noGl, uint8_t *low5Out)
{
    switch (format) {
      case PermFormat::MemCapRW: {
        constexpr uint16_t implied = PermLoad | PermMemCap | PermStore;
        if ((noGl & implied) != implied) {
            return 0;
        }
        uint8_t low5 = 0b11000;
        uint16_t mask = implied;
        if (noGl & PermStoreLocal) { low5 |= 0b100; mask |= PermStoreLocal; }
        if (noGl & PermLoadMutable) { low5 |= 0b010; mask |= PermLoadMutable; }
        if (noGl & PermLoadGlobal) { low5 |= 0b001; mask |= PermLoadGlobal; }
        *low5Out = low5;
        return mask;
      }
      case PermFormat::MemCapRO: {
        constexpr uint16_t implied = PermLoad | PermMemCap;
        if ((noGl & implied) != implied) {
            return 0;
        }
        uint8_t low5 = 0b10100;
        uint16_t mask = implied;
        if (noGl & PermLoadMutable) { low5 |= 0b010; mask |= PermLoadMutable; }
        if (noGl & PermLoadGlobal) { low5 |= 0b001; mask |= PermLoadGlobal; }
        *low5Out = low5;
        return mask;
      }
      case PermFormat::MemCapWO: {
        constexpr uint16_t implied = PermStore | PermMemCap;
        if ((noGl & implied) != implied) {
            return 0;
        }
        *low5Out = 0b10000;
        return implied;
      }
      case PermFormat::MemDataOnly: {
        uint8_t low5 = 0b10000;
        uint16_t mask = 0;
        if (noGl & PermLoad) { low5 |= 0b010; mask |= PermLoad; }
        if (noGl & PermStore) { low5 |= 0b001; mask |= PermStore; }
        if (mask == 0) {
            // 10000 means MemCapWO; data-only needs LD or SD.
            return 0;
        }
        *low5Out = low5;
        return mask;
      }
      case PermFormat::Executable: {
        constexpr uint16_t implied = PermExecute | PermLoad | PermMemCap;
        if ((noGl & implied) != implied) {
            return 0;
        }
        uint8_t low5 = 0b01000;
        uint16_t mask = implied;
        if (noGl & PermSystemRegs) { low5 |= 0b100; mask |= PermSystemRegs; }
        if (noGl & PermLoadMutable) { low5 |= 0b010; mask |= PermLoadMutable; }
        if (noGl & PermLoadGlobal) { low5 |= 0b001; mask |= PermLoadGlobal; }
        *low5Out = low5;
        return mask;
      }
      case PermFormat::Sealing: {
        uint8_t low5 = 0b00000;
        uint16_t mask = 0;
        if (noGl & PermUser0) { low5 |= 0b100; mask |= PermUser0; }
        if (noGl & PermSeal) { low5 |= 0b010; mask |= PermSeal; }
        if (noGl & PermUnseal) { low5 |= 0b001; mask |= PermUnseal; }
        // Always usable: with all optionals clear it encodes the empty
        // permission set, the terminal fallback.
        *low5Out = low5;
        return mask;
      }
    }
    return 0;
}

constexpr std::array<PermFormat, 6> kFormatOrder = {
    PermFormat::MemCapRW,   PermFormat::MemCapRO,   PermFormat::MemCapWO,
    PermFormat::MemDataOnly, PermFormat::Executable, PermFormat::Sealing,
};

} // namespace

PermSet
decompressPerms(uint8_t encoded)
{
    uint16_t mask = decodeLow5(encoded & 0x1f);
    if (encoded & kGlBit) {
        mask |= PermGlobal;
    }
    return PermSet(mask);
}

uint8_t
compressPerms(PermSet perms)
{
    const uint16_t noGl = perms.mask() & static_cast<uint16_t>(~PermGlobal);

    uint8_t bestLow5 = 0;
    unsigned bestCount = 0;
    bool found = false;
    for (PermFormat format : kFormatOrder) {
        uint8_t low5 = 0;
        const uint16_t mask = tryFormat(format, noGl, &low5);
        if (mask == 0 && format != PermFormat::Sealing) {
            continue;
        }
        const unsigned count = popcount(mask);
        if (!found || count > bestCount) {
            found = true;
            bestCount = count;
            bestLow5 = low5;
            if (mask == noGl) {
                break; // Exact representation; formats are ordered by
                       // preference so the first exact hit wins.
            }
        }
    }

    uint8_t encoded = bestLow5;
    if (perms.has(PermGlobal)) {
        encoded |= kGlBit;
    }
    return encoded;
}

PermFormat
formatOf(uint8_t encoded)
{
    const uint8_t low5 = encoded & 0x1f;
    const bool b4 = bit(low5, 4);
    const bool b3 = bit(low5, 3);
    const bool b2 = bit(low5, 2);
    if (b4 && b3) return PermFormat::MemCapRW;
    if (b4 && b2) return PermFormat::MemCapRO;
    if (b4 && (low5 & 0b00011) == 0) return PermFormat::MemCapWO;
    if (b4) return PermFormat::MemDataOnly;
    if (b3) return PermFormat::Executable;
    return PermFormat::Sealing;
}

bool
isRepresentablePerms(PermSet perms)
{
    return decompressPerms(compressPerms(perms)) == perms;
}

std::string
permsToString(PermSet perms)
{
    struct Entry
    {
        uint16_t bit;
        const char *name;
    };
    static constexpr Entry kEntries[] = {
        {PermGlobal, "GL"},      {PermLoad, "LD"},
        {PermStore, "SD"},       {PermMemCap, "MC"},
        {PermStoreLocal, "SL"},  {PermLoadGlobal, "LG"},
        {PermLoadMutable, "LM"}, {PermExecute, "EX"},
        {PermSystemRegs, "SR"},  {PermSeal, "SE"},
        {PermUnseal, "US"},      {PermUser0, "U0"},
    };
    std::string out;
    for (const auto &entry : kEntries) {
        if (perms.has(entry.bit)) {
            if (!out.empty()) {
                out += ' ';
            }
            out += entry.name;
        }
    }
    if (out.empty()) {
        out = "-";
    }
    return out;
}

} // namespace cheriot::cap
