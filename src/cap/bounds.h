/**
 * @file
 * CHERIoT bounds encoding and decoding (paper §3.2.3, Fig. 3).
 *
 * Bounds are stored as 9-bit base (B) and top (T) fields plus a 4-bit
 * exponent (E), all relative to the capability's 32-bit address. The
 * decoded base and top are 2^e-aligned values reconstructed by
 * splicing B/T into the address at bit e, with small corrections (cb,
 * ct) when base/top land in a different 2^(e+9)-aligned region than
 * the address.
 *
 * E = 0xF denotes an exponent of 24 so a single capability can span
 * the whole 32-bit address space (the root capabilities); other E
 * values map directly. Objects up to 511 bytes are always precisely
 * representable; larger objects round to 2^e alignment, giving the
 * paper's ~0.19% average internal fragmentation (vs. 12.5% for the
 * 3-bit-precision encodings of prior 32-bit CHERI adaptations).
 *
 * Unlike CHERI Concentrate there is no guaranteed representable range
 * beyond the bounds: moving the address far enough that the decoded
 * bounds would change invalidates the capability.
 */

#ifndef CHERIOT_CAP_BOUNDS_H
#define CHERIOT_CAP_BOUNDS_H

#include <cstdint>

namespace cheriot::cap
{

/** Raw encoded bounds fields as stored in the capability word. */
struct EncodedBounds
{
    uint8_t exponent; ///< E field: 0..14 literal, 0xF means 24.
    uint16_t base9;   ///< B field, 9 bits.
    uint16_t top9;    ///< T field, 9 bits.

    constexpr bool operator==(const EncodedBounds &) const = default;
};

/** Decoded architectural bounds: [base, top), top may be 2^32. */
struct DecodedBounds
{
    uint32_t base;
    uint64_t top; ///< 33-bit value; top == 2^32 covers the full space.

    constexpr uint64_t length() const { return top - base; }
    constexpr bool operator==(const DecodedBounds &) const = default;
};

/** Result of a setBounds request. */
struct BoundsEncodeResult
{
    EncodedBounds encoded;
    DecodedBounds decoded; ///< What the encoding actually represents.
    bool exact;            ///< True iff decoded == requested.
};

/** Effective exponent for an E field value (0xF maps to 24). */
constexpr unsigned
effectiveExponent(uint8_t eField)
{
    return eField == 0xf ? 24 : eField;
}

/** Largest exponent directly encodable (besides the 0xF ⇒ 24 escape). */
constexpr unsigned kMaxDirectExponent = 14;

/** The escape exponent selected by E == 0xF. */
constexpr unsigned kEscapeExponent = 24;

/**
 * Decode bounds fields relative to @p address (Fig. 3).
 */
DecodedBounds decodeBounds(const EncodedBounds &encoded, uint32_t address);

/**
 * Encode the tightest representable bounds containing
 * [@p requestedBase, @p requestedBase + @p requestedLength).
 *
 * The result's decoded window always contains the request; `exact` is
 * false when alignment forced the window to grow. Lengths up to 2^32
 * are supported.
 */
BoundsEncodeResult encodeBounds(uint32_t requestedBase,
                                uint64_t requestedLength);

/**
 * Representable-limit check: true iff decoding @p encoded at
 * @p newAddress yields the same bounds as decoding at @p oldAddress.
 * Address updates that fail this check must clear the tag (§3.2.3).
 */
bool addressPreservesBounds(const EncodedBounds &encoded,
                            uint32_t oldAddress, uint32_t newAddress);

/**
 * CRRL: round @p length up to the next representable length (the
 * length malloc must actually reserve so bounds can be exact).
 */
uint64_t representableLength(uint64_t length);

/**
 * CRAM: alignment mask required for the base of an object of
 * @p length bytes to be exactly representable. The base must satisfy
 * (base & ~mask) == 0 ... i.e. base & representableAlignmentMask is
 * the aligned base.
 */
uint32_t representableAlignmentMask(uint64_t length);

} // namespace cheriot::cap

#endif // CHERIOT_CAP_BOUNDS_H
