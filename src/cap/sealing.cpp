#include "cap/sealing.h"

#include "util/log.h"

namespace cheriot::cap
{

InterruptPosture
sentryPosture(uint8_t otype)
{
    switch (otype) {
      case kSentryInherit: return InterruptPosture::Inherit;
      case kSentryEnable: return InterruptPosture::Enabled;
      case kSentryDisable: return InterruptPosture::Disabled;
      default:
        panic("sentryPosture: otype %u is not a forward sentry", otype);
    }
}

uint8_t
forwardSentryFor(InterruptPosture posture)
{
    switch (posture) {
      case InterruptPosture::Inherit: return kSentryInherit;
      case InterruptPosture::Enabled: return kSentryEnable;
      case InterruptPosture::Disabled: return kSentryDisable;
    }
    panic("forwardSentryFor: bad posture");
}

uint8_t
returnSentryFor(bool interruptsEnabled)
{
    return interruptsEnabled ? kReturnSentryEnable : kReturnSentryDisable;
}

bool
returnSentryEnablesInterrupts(uint8_t otype)
{
    switch (otype) {
      case kReturnSentryEnable: return true;
      case kReturnSentryDisable: return false;
      default:
        panic("returnSentryEnablesInterrupts: otype %u is not a return "
              "sentry", otype);
    }
}

} // namespace cheriot::cap
