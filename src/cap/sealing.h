/**
 * @file
 * CHERIoT object types (otypes) and sealed-entry ("sentry") capability
 * classification (paper §3.1.2, §3.2.2).
 *
 * The otype field is 3 bits; otype 0 means unsealed. The remaining
 * seven values form two disjoint namespaces selected by the execute
 * permission:
 *
 *  - Executable otypes. Five are consumed by (or reserved for)
 *    sentries — forward sentries that set the interrupt posture to
 *    inherited / enabled / disabled, and two return sentries that
 *    restore an enabled or disabled posture — leaving two for
 *    software.
 *  - Data otypes. None has hardware significance; the RTOS allocates
 *    four for core components, leaving three free.
 *
 * The sealing root capability's bounds cover a small otype address
 * space; by convention data otypes occupy addresses 1..7 and
 * executable otypes addresses 9..15 (the architectural otype is the
 * address minus 8 for the executable set).
 */

#ifndef CHERIOT_CAP_SEALING_H
#define CHERIOT_CAP_SEALING_H

#include <cstdint>

namespace cheriot::cap
{

/** The unsealed otype value. */
constexpr uint8_t kOtypeUnsealed = 0;

/** Executable-namespace otypes with hardware meaning. */
enum ExecOtype : uint8_t
{
    kSentryInherit = 1,       ///< Jump target; keeps interrupt posture.
    kSentryEnable = 2,        ///< Jump target; enables interrupts.
    kSentryDisable = 3,       ///< Jump target; disables interrupts.
    kReturnSentryEnable = 4,  ///< Link value; restores enabled posture.
    kReturnSentryDisable = 5, ///< Link value; restores disabled posture.
    kExecOtypeSoftware0 = 6,  ///< Free for software use.
    kExecOtypeSoftware1 = 7,  ///< Free for software use.
};

/** Data-namespace otypes allocated by the RTOS (§3.2.2). */
enum DataOtype : uint8_t
{
    kOtypeAllocator = 1, ///< Sealed allocation handles.
    kOtypeSwitcher = 2,  ///< Cross-compartment export entries.
    kOtypeScheduler = 3, ///< Thread/queue handles.
    kOtypeToken = 4,     ///< Generic sealed-token API.
    kDataOtypeFree0 = 5,
    kDataOtypeFree1 = 6,
    kDataOtypeFree2 = 7,
};

/** Number of distinct otype values in each namespace (incl. unsealed). */
constexpr uint8_t kOtypeCount = 8;

/**
 * Address-space layout of otypes as seen by the sealing root: data
 * otype o lives at address o, executable otype o at address o + 8.
 */
constexpr uint32_t kDataOtypeAddressBase = 0;
constexpr uint32_t kExecOtypeAddressBase = 8;
constexpr uint32_t kOtypeAddressSpaceSize = 16;

/** Interrupt posture requested by a sentry jump. */
enum class InterruptPosture : uint8_t
{
    Inherit, ///< Keep the current posture.
    Enabled,
    Disabled,
};

/** True iff @p otype (executable namespace) is a forward sentry. */
constexpr bool
isForwardSentry(uint8_t otype)
{
    return otype >= kSentryInherit && otype <= kSentryDisable;
}

/** True iff @p otype (executable namespace) is a return sentry. */
constexpr bool
isReturnSentry(uint8_t otype)
{
    return otype == kReturnSentryEnable || otype == kReturnSentryDisable;
}

/** True iff @p otype is any hardware-interpreted sentry. */
constexpr bool
isSentry(uint8_t otype)
{
    return isForwardSentry(otype) || isReturnSentry(otype);
}

/** Posture a forward sentry requests when jumped through. */
InterruptPosture sentryPosture(uint8_t otype);

/** The forward-sentry otype for a posture. */
uint8_t forwardSentryFor(InterruptPosture posture);

/**
 * The return-sentry otype that captures @p interruptsEnabled, used by
 * jump-and-link to seal the link register (§3.1.2).
 */
uint8_t returnSentryFor(bool interruptsEnabled);

/** Posture restored by a return sentry. */
bool returnSentryEnablesInterrupts(uint8_t otype);

} // namespace cheriot::cap

#endif // CHERIOT_CAP_SEALING_H
