/**
 * @file
 * The CHERIoT architectural capability (paper Fig. 1).
 *
 * A capability is a 64-bit value — a 32-bit metadata word holding a
 * reserved bit, 6-bit compressed permissions, 3-bit otype and the
 * E/B/T bounds fields, plus a 32-bit address — guarded by an
 * out-of-band validity tag. All manipulation is *monotone*: bounds may
 * narrow but never widen or move, permissions may be shed but never
 * regained, and the tag may be cleared but never set. Operations that
 * would violate monotonicity or representability yield an untagged
 * (invalid) result rather than trapping, matching guarded-manipulation
 * semantics; the instruction layer decides when an untagged value is a
 * trap.
 *
 * Metadata word layout (bit boundaries from Fig. 1):
 *   [31]    R    reserved
 *   [30:25] p'6  compressed permissions
 *   [24:22] o'3  otype
 *   [21:18] E'4  bounds exponent
 *   [17:9]  B'9  bounds base
 *   [8:0]   T'9  bounds top
 */

#ifndef CHERIOT_CAP_CAPABILITY_H
#define CHERIOT_CAP_CAPABILITY_H

#include "cap/bounds.h"
#include "cap/permissions.h"
#include "cap/sealing.h"

#include <cstdint>
#include <optional>
#include <string>

namespace cheriot::cap
{

/** Size and alignment of a capability in memory. */
constexpr uint32_t kCapabilitySize = 8;

class Capability
{
  public:
    /** The null capability: untagged, all fields zero. */
    constexpr Capability() = default;

    /** @name Root construction (§3.1.1)
     * On CPU reset three roots are present in registers: one for
     * read/write memory, one for executable memory, and one for
     * sealing. Early boot derives everything from these and erases
     * them.
     * @{ */
    static Capability memoryRoot();
    static Capability executableRoot();
    static Capability sealingRoot();
    /** @} */

    /** Reconstruct a capability from its packed memory image. */
    static Capability fromBits(uint64_t bits, bool tag);

    /** Pack into the 64-bit memory image (tag carried out of band). */
    uint64_t toBits() const;

    /** @name Field accessors @{ */
    bool tag() const { return tag_; }
    uint32_t address() const { return address_; }
    PermSet perms() const { return decompressPerms(permsField_); }
    uint8_t permsField() const { return permsField_; }
    uint8_t otype() const { return otype_; }
    bool isSealed() const { return otype_ != kOtypeUnsealed; }
    const EncodedBounds &encodedBounds() const { return bounds_; }
    uint32_t base() const;
    uint64_t top() const;
    uint64_t length() const;
    /** @} */

    /** True iff the permissions use the executable format (and thus
     * the otype, if any, lives in the executable namespace). */
    bool isExecutable() const { return perms().has(PermExecute); }

    /** A capability is local iff it lacks the Global permission. */
    bool isLocal() const { return !perms().has(PermGlobal); }

    /** Forward sentry: sealed executable with a sentry otype. */
    bool isForwardSentry() const
    {
        return isExecutable() && cap::isForwardSentry(otype_);
    }

    /** Return sentry: sealed executable with a return-sentry otype. */
    bool isReturnSentry() const
    {
        return isExecutable() && cap::isReturnSentry(otype_);
    }

    /** @name In-bounds checks for memory access @{ */
    bool inBounds(uint32_t addr, uint32_t size) const;
    /** @} */

    /** @name Guarded manipulation (monotone; may clear the tag) @{ */

    /** Replace the address; untag if sealed or unrepresentable. */
    Capability withAddress(uint32_t newAddress) const;

    /** Add a (signed) offset to the address. */
    Capability withAddressOffset(int64_t offset) const;

    /**
     * Narrow bounds to [address, address + length). Untag if the
     * request is not fully inside the current bounds or the
     * capability is sealed/untagged. If the encoding must round, the
     * result covers the rounded window, still within the original
     * bounds when possible (rounding may *grow* the window; if growth
     * escapes the original bounds, untag). @p exactOut reports
     * whether rounding occurred.
     */
    Capability withBounds(uint64_t length, bool *exactOut = nullptr) const;

    /** As withBounds but untag unless exactly representable. */
    Capability withBoundsExact(uint64_t length) const;

    /** Intersect permissions with @p mask (CAndPerm). */
    Capability withPermsAnd(uint16_t mask) const;

    /** Clear the validity tag. */
    Capability withTagCleared() const;

    /**
     * Apply the recursive load side effects of §3.1.1: when loaded
     * through an authority lacking LG, the result loses GL and LG;
     * when loaded through an authority lacking LM (and the result is
     * not executable), it loses SD and LM.
     */
    Capability attenuatedForLoad(PermSet authorityPerms) const;

    /** @} */

    /** @name Sealing (raw field edits; authority checks live in the
     * instruction layer) @{ */
    Capability sealedWith(uint8_t otype) const;
    Capability unsealedCopy() const;
    /** @} */

    /** Structural equality including tag (CSetEqualExact). */
    bool operator==(const Capability &other) const;

    /** Diagnostic rendering. */
    std::string toString() const;

  private:
    uint32_t address_ = 0;
    EncodedBounds bounds_ = {0, 0, 0};
    uint8_t permsField_ = 0;
    uint8_t otype_ = 0;
    bool reserved_ = false;
    bool tag_ = false;
};

/**
 * CSeal: seal @p target with the otype addressed by @p authority.
 * Returns nullopt (meaning the instruction must produce an untagged
 * or trapping result) unless: both caps are tagged, neither is
 * sealed, @p authority has SE, its address is in bounds and maps to a
 * valid otype for @p target's namespace.
 */
std::optional<Capability> seal(const Capability &target,
                               const Capability &authority);

/** CUnseal: the inverse, requiring US and a matching otype address. */
std::optional<Capability> unseal(const Capability &target,
                                 const Capability &authority);

/**
 * Make a forward sentry from an unsealed executable capability.
 * This models the RTOS loader/switcher minting entry points; it
 * requires an unsealed, tagged, executable input.
 */
std::optional<Capability> makeSentry(const Capability &target,
                                     InterruptPosture posture);

/** CTestSubset: is @p child's authority a subset of @p parent's? */
bool isSubsetOf(const Capability &child, const Capability &parent);

} // namespace cheriot::cap

#endif // CHERIOT_CAP_CAPABILITY_H
