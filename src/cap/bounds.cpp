#include "cap/bounds.h"

#include "util/bits.h"
#include "util/log.h"

namespace cheriot::cap
{

namespace
{

constexpr uint64_t kTopMask = (uint64_t{1} << 33) - 1;
constexpr unsigned kMantissaBits = 9;
constexpr uint64_t kMaxSpan = (uint64_t{1} << kMantissaBits) - 1; // 511

/**
 * Smallest usable exponent such that a window of @p granuleSpan bytes
 * fits within 511 granules after rounding. Exponents 15..23 are not
 * encodable (E is four bits with 0xF meaning 24), so the search jumps
 * from 14 straight to 24.
 */
unsigned
nextExponent(unsigned e)
{
    return e == kMaxDirectExponent ? kEscapeExponent : e + 1;
}

} // namespace

DecodedBounds
decodeBounds(const EncodedBounds &encoded, uint32_t address)
{
    const unsigned e = effectiveExponent(encoded.exponent);
    const uint64_t a = address;
    const int64_t atop = static_cast<int64_t>(a >> (e + kMantissaBits));
    const uint32_t amid =
        static_cast<uint32_t>((a >> e) & kMaxSpan);

    const int64_t cb = amid < encoded.base9 ? -1 : 0;
    const int64_t ct = cb + (encoded.top9 < encoded.base9 ? 1 : 0);

    const int64_t regionShift = e + kMantissaBits;
    const int64_t base64 = ((atop + cb) << regionShift) +
                           (static_cast<int64_t>(encoded.base9) << e);
    const int64_t top64 = ((atop + ct) << regionShift) +
                          (static_cast<int64_t>(encoded.top9) << e);

    DecodedBounds out;
    out.base = static_cast<uint32_t>(base64);
    out.top = static_cast<uint64_t>(top64) & kTopMask;
    return out;
}

BoundsEncodeResult
encodeBounds(uint32_t requestedBase, uint64_t requestedLength)
{
    if (requestedLength > (uint64_t{1} << 32)) {
        panic("encodeBounds: length %llu exceeds the address space",
              static_cast<unsigned long long>(requestedLength));
    }
    const uint64_t requestedTop = requestedBase + requestedLength;
    if (requestedTop > (uint64_t{1} << 32)) {
        panic("encodeBounds: window [0x%08x, 0x%llx) wraps the address space",
              requestedBase,
              static_cast<unsigned long long>(requestedTop));
    }

    unsigned e = 0;
    uint64_t alignedBase = 0;
    uint64_t alignedTop = 0;
    for (;;) {
        const uint64_t granule = uint64_t{1} << e;
        alignedBase = alignDown<uint64_t>(requestedBase, granule);
        alignedTop = alignUp<uint64_t>(requestedTop, granule);
        if (((alignedTop - alignedBase) >> e) <= kMaxSpan) {
            break;
        }
        e = nextExponent(e);
    }

    BoundsEncodeResult result;
    result.encoded.exponent =
        e == kEscapeExponent ? 0xf : static_cast<uint8_t>(e);
    result.encoded.base9 =
        static_cast<uint16_t>((alignedBase >> e) & kMaxSpan);
    result.encoded.top9 = static_cast<uint16_t>((alignedTop >> e) & kMaxSpan);
    result.decoded = decodeBounds(result.encoded, requestedBase);
    result.exact = result.decoded.base == requestedBase &&
                   result.decoded.top == requestedTop;

    // The decode must reproduce the aligned window; anything else is a
    // codec bug, not a representability limitation.
    if (result.decoded.base != alignedBase || result.decoded.top != alignedTop) {
        panic("encodeBounds: decode mismatch for [0x%08x, +%llu): "
              "aligned [0x%llx, 0x%llx) decoded [0x%08x, 0x%llx) e=%u",
              requestedBase,
              static_cast<unsigned long long>(requestedLength),
              static_cast<unsigned long long>(alignedBase),
              static_cast<unsigned long long>(alignedTop),
              result.decoded.base,
              static_cast<unsigned long long>(result.decoded.top), e);
    }
    return result;
}

bool
addressPreservesBounds(const EncodedBounds &encoded, uint32_t oldAddress,
                       uint32_t newAddress)
{
    return decodeBounds(encoded, oldAddress) ==
           decodeBounds(encoded, newAddress);
}

uint64_t
representableLength(uint64_t length)
{
    unsigned e = 0;
    while (alignUp<uint64_t>(length, uint64_t{1} << e) >> e > kMaxSpan) {
        e = nextExponent(e);
    }
    return alignUp<uint64_t>(length, uint64_t{1} << e);
}

uint32_t
representableAlignmentMask(uint64_t length)
{
    unsigned e = 0;
    while (alignUp<uint64_t>(length, uint64_t{1} << e) >> e > kMaxSpan) {
        e = nextExponent(e);
    }
    return static_cast<uint32_t>(~((uint64_t{1} << e) - 1));
}

} // namespace cheriot::cap
