#include "cap/capability.h"

#include "util/bits.h"
#include "util/log.h"

#include <cinttypes>
#include <cstdio>

namespace cheriot::cap
{

namespace
{

/** Full-address-space bounds: base 0, top 2^32 (E = 0xF ⇒ 24). */
constexpr EncodedBounds kFullBounds = {0xf, 0, 256};

} // namespace

Capability
Capability::memoryRoot()
{
    Capability c;
    c.tag_ = true;
    c.address_ = 0;
    c.bounds_ = kFullBounds;
    c.permsField_ = compressPerms(PermSet(
        PermGlobal | PermLoad | PermStore | PermMemCap | PermStoreLocal |
        PermLoadMutable | PermLoadGlobal));
    return c;
}

Capability
Capability::executableRoot()
{
    Capability c;
    c.tag_ = true;
    c.address_ = 0;
    c.bounds_ = kFullBounds;
    c.permsField_ = compressPerms(PermSet(
        PermGlobal | PermExecute | PermLoad | PermMemCap | PermSystemRegs |
        PermLoadMutable | PermLoadGlobal));
    return c;
}

Capability
Capability::sealingRoot()
{
    Capability c;
    c.tag_ = true;
    c.address_ = 0;
    // Bounds cover the small otype address space only.
    const auto enc = encodeBounds(0, kOtypeAddressSpaceSize);
    c.bounds_ = enc.encoded;
    c.permsField_ = compressPerms(
        PermSet(PermGlobal | PermSeal | PermUnseal | PermUser0));
    return c;
}

Capability
Capability::fromBits(uint64_t rawBits, bool tag)
{
    const uint32_t meta = static_cast<uint32_t>(rawBits >> 32);
    Capability c;
    c.address_ = static_cast<uint32_t>(rawBits);
    c.reserved_ = bit(meta, 31);
    c.permsField_ = static_cast<uint8_t>(bits(meta, 25u, 6u));
    c.otype_ = static_cast<uint8_t>(bits(meta, 22u, 3u));
    c.bounds_.exponent = static_cast<uint8_t>(bits(meta, 18u, 4u));
    c.bounds_.base9 = static_cast<uint16_t>(bits(meta, 9u, 9u));
    c.bounds_.top9 = static_cast<uint16_t>(bits(meta, 0u, 9u));
    c.tag_ = tag;
    return c;
}

uint64_t
Capability::toBits() const
{
    uint32_t meta = 0;
    meta = insertBits(meta, 31u, 1u, uint32_t{reserved_});
    meta = insertBits(meta, 25u, 6u, uint32_t{permsField_});
    meta = insertBits(meta, 22u, 3u, uint32_t{otype_});
    meta = insertBits(meta, 18u, 4u, uint32_t{bounds_.exponent});
    meta = insertBits(meta, 9u, 9u, uint32_t{bounds_.base9});
    meta = insertBits(meta, 0u, 9u, uint32_t{bounds_.top9});
    return (static_cast<uint64_t>(meta) << 32) | address_;
}

uint32_t
Capability::base() const
{
    return decodeBounds(bounds_, address_).base;
}

uint64_t
Capability::top() const
{
    return decodeBounds(bounds_, address_).top;
}

uint64_t
Capability::length() const
{
    const auto decoded = decodeBounds(bounds_, address_);
    return decoded.top - decoded.base;
}

bool
Capability::inBounds(uint32_t addr, uint32_t size) const
{
    const auto decoded = decodeBounds(bounds_, address_);
    const uint64_t accessTop = static_cast<uint64_t>(addr) + size;
    return addr >= decoded.base && accessTop <= decoded.top;
}

Capability
Capability::withAddress(uint32_t newAddress) const
{
    Capability c = *this;
    c.address_ = newAddress;
    if (tag_ &&
        (isSealed() ||
         !addressPreservesBounds(bounds_, address_, newAddress))) {
        c.tag_ = false;
    }
    return c;
}

Capability
Capability::withAddressOffset(int64_t offset) const
{
    return withAddress(static_cast<uint32_t>(address_ + offset));
}

Capability
Capability::withBounds(uint64_t length, bool *exactOut) const
{
    if (exactOut != nullptr) {
        *exactOut = true;
    }
    Capability c = *this;
    if (!tag_ || isSealed()) {
        c.tag_ = false;
        return c;
    }

    const auto current = decodeBounds(bounds_, address_);
    const uint32_t newBase = address_;
    const uint64_t newTop = static_cast<uint64_t>(newBase) + length;
    if (newBase < current.base || newTop > current.top ||
        newTop > (uint64_t{1} << 32)) {
        c.tag_ = false;
        return c;
    }

    const auto enc = encodeBounds(newBase, length);
    if (exactOut != nullptr) {
        *exactOut = enc.exact;
    }
    // Rounding can only grow the window; growth that escapes the
    // original authority must not produce a tagged capability.
    if (enc.decoded.base < current.base || enc.decoded.top > current.top) {
        c.tag_ = false;
        return c;
    }
    c.bounds_ = enc.encoded;
    return c;
}

Capability
Capability::withBoundsExact(uint64_t length) const
{
    bool exact = false;
    Capability c = withBounds(length, &exact);
    if (!exact) {
        c.tag_ = false;
    }
    return c;
}

Capability
Capability::withPermsAnd(uint16_t mask) const
{
    Capability c = *this;
    if (tag_ && isSealed()) {
        c.tag_ = false;
        return c;
    }
    c.permsField_ = compressPerms(perms().intersect(PermSet(mask)));
    return c;
}

Capability
Capability::withTagCleared() const
{
    Capability c = *this;
    c.tag_ = false;
    return c;
}

Capability
Capability::attenuatedForLoad(PermSet authorityPerms) const
{
    if (!tag_) {
        return *this;
    }
    Capability c = *this;
    PermSet p = perms();
    if (!authorityPerms.has(PermLoadGlobal)) {
        p = p.without(PermGlobal | PermLoadGlobal);
    }
    if (!authorityPerms.has(PermLoadMutable) && !p.has(PermExecute)) {
        p = p.without(PermStore | PermLoadMutable);
    }
    c.permsField_ = compressPerms(p);
    return c;
}

Capability
Capability::sealedWith(uint8_t otype)
    const
{
    Capability c = *this;
    c.otype_ = otype & 0x7;
    return c;
}

Capability
Capability::unsealedCopy() const
{
    Capability c = *this;
    c.otype_ = kOtypeUnsealed;
    return c;
}

bool
Capability::operator==(const Capability &other) const
{
    return tag_ == other.tag_ && toBits() == other.toBits();
}

std::string
Capability::toString() const
{
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%c 0x%08" PRIx32 " [0x%08" PRIx32 ", 0x%09" PRIx64
                  ") perms=%s otype=%u",
                  tag_ ? 'v' : '-', address_, base(), top(),
                  permsToString(perms()).c_str(), otype_);
    return buffer;
}

std::optional<Capability>
seal(const Capability &target, const Capability &authority)
{
    if (!target.tag() || !authority.tag() || target.isSealed() ||
        authority.isSealed() || !authority.perms().has(PermSeal)) {
        return std::nullopt;
    }
    const uint32_t addr = authority.address();
    if (!authority.inBounds(addr, 1)) {
        return std::nullopt;
    }
    const uint32_t namespaceBase =
        target.isExecutable() ? kExecOtypeAddressBase : kDataOtypeAddressBase;
    if (addr < namespaceBase + 1 || addr >= namespaceBase + kOtypeCount) {
        return std::nullopt;
    }
    return target.sealedWith(static_cast<uint8_t>(addr - namespaceBase));
}

std::optional<Capability>
unseal(const Capability &target, const Capability &authority)
{
    if (!target.tag() || !authority.tag() || !target.isSealed() ||
        authority.isSealed() || !authority.perms().has(PermUnseal)) {
        return std::nullopt;
    }
    const uint32_t addr = authority.address();
    if (!authority.inBounds(addr, 1)) {
        return std::nullopt;
    }
    const uint32_t namespaceBase =
        target.isExecutable() ? kExecOtypeAddressBase : kDataOtypeAddressBase;
    if (addr != namespaceBase + target.otype()) {
        return std::nullopt;
    }
    return target.unsealedCopy();
}

std::optional<Capability>
makeSentry(const Capability &target, InterruptPosture posture)
{
    if (!target.tag() || target.isSealed() ||
        !target.perms().has(PermExecute)) {
        return std::nullopt;
    }
    return target.sealedWith(forwardSentryFor(posture));
}

bool
isSubsetOf(const Capability &child, const Capability &parent)
{
    if (!child.tag() || !parent.tag()) {
        return false;
    }
    return child.base() >= parent.base() && child.top() <= parent.top() &&
           child.perms().subsetOf(parent.perms());
}

} // namespace cheriot::cap
