/**
 * @file
 * CHERIoT capability permissions and their 6-bit compressed encoding.
 *
 * The paper (§3.1.1, §3.2.1, Table 1, Fig. 2) defines 12 architectural
 * permissions and compresses them into 6 bits by exploiting their
 * interdependence: the compressed field selects one of six "formats",
 * each granting some permissions implicitly and encoding the optional
 * permissions that are meaningful in that format. Combinations the
 * software model never needs (e.g. execute + store, per W^X) are
 * unrepresentable by construction.
 *
 * Per §3.2.1 the architectural view places the most commonly cleared
 * permissions (GL, LG, LM, SD) in the lowest bits so that clearing
 * masks fit a compressed-instruction immediate.
 */

#ifndef CHERIOT_CAP_PERMISSIONS_H
#define CHERIOT_CAP_PERMISSIONS_H

#include <cstdint>
#include <string>

namespace cheriot::cap
{

/**
 * Architectural permission bits (Table 1).
 *
 * Bit positions define the architectural view returned by CGetPerm and
 * consumed by CAndPerm.
 */
enum Perm : uint16_t
{
    PermGlobal = 1u << 0,      ///< GL: may be stored via non-SL authority
    PermLoadGlobal = 1u << 1,  ///< LG: loaded caps keep GL/LG
    PermLoadMutable = 1u << 2, ///< LM: loaded caps keep SD/LM
    PermStore = 1u << 3,       ///< SD: store data
    PermLoad = 1u << 4,        ///< LD: load data
    PermMemCap = 1u << 5,      ///< MC: loads/stores move capabilities
    PermStoreLocal = 1u << 6,  ///< SL: may store non-global capabilities
    PermExecute = 1u << 7,     ///< EX: instruction fetch
    PermSystemRegs = 1u << 8,  ///< SR: access special registers
    PermSeal = 1u << 9,        ///< SE: seal with covered otypes
    PermUnseal = 1u << 10,     ///< US: unseal covered otypes
    PermUser0 = 1u << 11,      ///< U0: software-defined
};

/** Mask covering all twelve architectural permissions. */
constexpr uint16_t kAllPerms = 0x0fff;

/**
 * A set of architectural permissions.
 *
 * Thin wrapper over a 12-bit mask with set-algebra helpers; kept
 * trivially copyable so it can live inside the packed capability type.
 */
class PermSet
{
  public:
    constexpr PermSet() = default;
    explicit constexpr PermSet(uint16_t mask) : mask_(mask & kAllPerms) {}

    constexpr uint16_t mask() const { return mask_; }

    constexpr bool has(uint16_t perms) const
    {
        return (mask_ & perms) == perms;
    }

    constexpr bool hasAny(uint16_t perms) const
    {
        return (mask_ & perms) != 0;
    }

    constexpr PermSet with(uint16_t perms) const
    {
        return PermSet(mask_ | perms);
    }

    constexpr PermSet without(uint16_t perms) const
    {
        return PermSet(mask_ & static_cast<uint16_t>(~perms));
    }

    constexpr PermSet intersect(PermSet other) const
    {
        return PermSet(mask_ & other.mask_);
    }

    constexpr bool subsetOf(PermSet other) const
    {
        return (mask_ & ~other.mask_) == 0;
    }

    constexpr bool operator==(const PermSet &other) const = default;

  private:
    uint16_t mask_ = 0;
};

/**
 * The six compressed-permission formats of Fig. 2.
 *
 * Encoding layout (our choice of bit order within the 6-bit field; the
 * paper fixes the format structure, not the field's internal order):
 *   bit 5          : GL
 *   bits 4..0      : format discriminator + optional permissions
 *
 *   1 1 SL LM LG   MemCapRW    implies LD, MC, SD
 *   1 0 1 LM LG    MemCapRO    implies LD, MC
 *   1 0 0 0 0      MemCapWO    implies SD, MC
 *   1 0 0 LD SD    MemDataOnly no MC; LD/SD explicit (not both zero)
 *   0 1 SR LM LG   Executable  implies EX, LD, MC
 *   0 0 U0 SE US   Sealing     no memory permissions
 *
 * MemDataOnly with LD=SD=0 would collide with MemCapWO, so the all-
 * clear pattern 0b00000 in the low bits decodes as the empty
 * permission set via the Sealing format (U0=SE=US=0).
 */
enum class PermFormat : uint8_t
{
    MemCapRW,
    MemCapRO,
    MemCapWO,
    MemDataOnly,
    Executable,
    Sealing,
};

/**
 * Decode a 6-bit compressed permission field into the architectural
 * permission set.
 */
PermSet decompressPerms(uint8_t encoded);

/**
 * Compress an architectural permission set into the 6-bit field.
 *
 * If @p perms is exactly representable the encoding is exact.
 * Otherwise the encoding represents the unique maximal representable
 * subset (matching hardware CAndPerm semantics, where clearing one
 * permission may force others clear); ties are broken by format order
 * RW > RO > WO > DataOnly > Executable > Sealing.  The result always
 * satisfies decompressPerms(compressPerms(p)).subsetOf(p).
 */
uint8_t compressPerms(PermSet perms);

/** Which format a compressed field uses. */
PermFormat formatOf(uint8_t encoded);

/** True iff @p perms survives compression unchanged. */
bool isRepresentablePerms(PermSet perms);

/** Short human-readable rendering, e.g. "GL LD MC SD SL LM LG". */
std::string permsToString(PermSet perms);

} // namespace cheriot::cap

#endif // CHERIOT_CAP_PERMISSIONS_H
