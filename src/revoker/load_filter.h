/**
 * @file
 * Hardware load filter (paper §3.3.2, Fig. 4).
 *
 * Every capability load — from the main pipeline, the RTOS, or a
 * revoker sweep — passes its result through the filter: the *base* of
 * the loaded capability is looked up in the revocation bitmap and, if
 * the bit is set, the tag is stripped before writeback. This
 * maintains the crucial invariant that no capability pointing to
 * freed memory can ever be loaded into a register, which in turn
 * reduces sweeping revocation to a simple load-and-store-back loop.
 *
 * The mechanism relies on spatial safety: the allocator bounds each
 * returned pointer to its object, so every derived usable reference
 * has its base within that object.
 */

#ifndef CHERIOT_REVOKER_LOAD_FILTER_H
#define CHERIOT_REVOKER_LOAD_FILTER_H

#include "cap/capability.h"
#include "revoker/revocation_bitmap.h"
#include "util/stats.h"

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::revoker
{

class LoadFilter
{
  public:
    explicit LoadFilter(const RevocationBitmap *bitmap)
        : bitmap_(bitmap), stats_("load_filter")
    {
        stats_.registerCounter("lookups", lookups);
        stats_.registerCounter("invalidations", invalidations);
    }

    /** Enable/disable (benchmark configurations run with it off). */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /**
     * Filter a freshly loaded capability: returns it with the tag
     * cleared when its base addresses revoked memory.
     */
    cap::Capability filter(const cap::Capability &loaded)
    {
        if (!enabled_ || !loaded.tag() || bitmap_ == nullptr) {
            return loaded;
        }
        lookups++;
        if (bitmap_->isRevoked(loaded.base())) {
            invalidations++;
            return loaded.withTagCleared();
        }
        return loaded;
    }

    /** @name Snapshot state @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    StatGroup &stats() { return stats_; }

    Counter lookups;       ///< Tagged capability loads checked.
    Counter invalidations; ///< Tags stripped by the filter.

  private:
    const RevocationBitmap *bitmap_;
    bool enabled_ = true;
    StatGroup stats_;
};

} // namespace cheriot::revoker

#endif // CHERIOT_REVOKER_LOAD_FILTER_H
