#include "revoker/background_revoker.h"

#include "cap/capability.h"
#include "fault/fault_injector.h"
#include "snapshot/serializer.h"
#include "util/log.h"

namespace cheriot::revoker
{

BackgroundRevoker::BackgroundRevoker(mem::TaggedMemory &sram,
                                     RevocationBitmap &bitmap,
                                     mem::BusWidth busWidth)
    : sram_(sram), bitmap_(bitmap), busWidth_(busWidth), stats_("hw_revoker")
{
    stats_.registerCounter("wordsExamined", wordsExamined);
    stats_.registerCounter("tagsInvalidated", tagsInvalidated);
    stats_.registerCounter("snoopReloads", snoopReloads);
    stats_.registerCounter("portCycles", portCycles);
    stats_.registerCounter("stallCycles", stallCycles);
    stats_.registerCounter("kicksReceived", kicksReceived);
    stats_.registerCounter("sweepsCompleted", sweepsCompleted);
}

bool
BackgroundRevoker::takeCompletionIrq()
{
    const bool pending = irqPending_;
    irqPending_ = false;
    return pending;
}

void
BackgroundRevoker::startSweep()
{
    if (sweeping()) {
        return; // Kick during a sweep has no effect.
    }
    if (startReg_ >= endReg_) {
        return;
    }
    ++epoch_; // Odd: sweeping.
    cursor_ = startReg_ & ~7u;
    slots_[0] = Slot{};
    slots_[1] = Slot{};
}

void
BackgroundRevoker::finishSweep()
{
    if (injector_ != nullptr && injector_->suppressEpochIncrement()) {
        // Stuck-epoch fault: the sweep ran dry but the completion
        // never becomes visible. Persists until software kicks the
        // engine (tick() retries this path every free cycle).
        return;
    }
    ++epoch_; // Even: idle.
    sweepsCompleted++;
    if (completionInterrupt_) {
        irqPending_ = true;
    }
}

bool
BackgroundRevoker::issueNextLoad()
{
    if (cursor_ >= endReg_) {
        return false;
    }
    for (Slot &slot : slots_) {
        if (slot.valid) {
            continue;
        }
        slot.valid = true;
        slot.addr = cursor_;
        slot.loaded = false;
        slot.needsWriteback = false;
        unsigned beats = mem::capBeats(busWidth_);
        if (skipSecondHalf_ && beats == 2) {
            // Peek at the first half's micro-tag: if it is already
            // clear the architectural tag must be zero and the second
            // half-load can be skipped.
            const auto raw = sram_.readCap(slot.addr);
            if (!raw.halfTag0) {
                beats = 1;
            }
        }
        slot.beatsLeft = beats;
        cursor_ += cap::kCapabilitySize;
        return true;
    }
    return false;
}

void
BackgroundRevoker::examine(Slot &slot)
{
    const auto raw = sram_.readCap(slot.addr);
    if (raw.tag) {
        const auto loaded = cap::Capability::fromBits(raw.bits, raw.tag);
        if (bitmap_.isRevoked(loaded.base())) {
            slot.needsWriteback = true;
            return;
        }
    }
    // Tag already clear, or capability not stale: nothing to write.
    slot.valid = false;
    wordsExamined++;
}

bool
BackgroundRevoker::tick(bool memPortFree)
{
    if (!sweeping() || !memPortFree) {
        return false;
    }
    if (injector_ != nullptr && injector_->revokerStalled()) {
        // Injected stall: the engine holds its state but makes no
        // progress until kicked (or the stall window expires).
        stallCycles++;
        return false;
    }

    // Priority 1: writebacks. A single tag-clearing write suffices
    // because the architectural tag is the AND of the micro-tags.
    for (Slot &slot : slots_) {
        if (slot.valid && slot.needsWriteback) {
            sram_.clearCapTag(slot.addr);
            tagsInvalidated++;
            wordsExamined++;
            slot.valid = false;
            portCycles++;
            return true;
        }
    }

    // Priority 2: advance a pending load by one beat.
    for (Slot &slot : slots_) {
        if (slot.valid && !slot.loaded && slot.beatsLeft > 0) {
            slot.beatsLeft--;
            portCycles++;
            if (slot.beatsLeft == 0) {
                slot.loaded = true;
                examine(slot);
            } else {
                // Pipelining: while this slot waits for its next
                // beat, try to issue the other slot's first beat is
                // not modelled — one port, one beat per cycle.
            }
            return true;
        }
    }

    // Priority 3: issue the next load.
    if (issueNextLoad()) {
        // The issued beat itself is consumed this cycle.
        for (Slot &slot : slots_) {
            if (slot.valid && !slot.loaded && slot.beatsLeft > 0) {
                slot.beatsLeft--;
                portCycles++;
                if (slot.beatsLeft == 0) {
                    slot.loaded = true;
                    examine(slot);
                }
                return true;
            }
        }
    }

    // Nothing left in flight and no more words: the sweep is done.
    if (cursor_ >= endReg_ && !slots_[0].valid && !slots_[1].valid) {
        finishSweep();
    }
    return false;
}

void
BackgroundRevoker::snoopStore(uint32_t addr, uint32_t bytes)
{
    if (!sweeping()) {
        return;
    }
    const uint32_t granule = addr & ~7u;
    const uint32_t lastGranule = (addr + bytes - 1) & ~7u;
    for (Slot &slot : slots_) {
        if (slot.valid && slot.addr >= granule && slot.addr <= lastGranule) {
            // Word changed under us: restart its load.
            slot.loaded = false;
            slot.needsWriteback = false;
            slot.beatsLeft = mem::capBeats(busWidth_);
            snoopReloads++;
        }
    }
}

uint32_t
BackgroundRevoker::read32(uint32_t offset)
{
    switch (offset) {
      case 0x0: return startReg_;
      case 0x4: return endReg_;
      case 0x8: return epoch_;
      case 0xc: return 0; // kick is write-only.
      default:
        panic("background revoker: read of unknown register 0x%x", offset);
    }
}

void
BackgroundRevoker::write32(uint32_t offset, uint32_t value)
{
    switch (offset) {
      case 0x0:
        startReg_ = value;
        break;
      case 0x4:
        endReg_ = value;
        break;
      case 0x8:
        break; // epoch is read-only.
      case 0xc:
        kicksReceived++;
        if (injector_ != nullptr) {
            // A kick resets the engine's control path, clearing any
            // injected stall or stuck-epoch condition.
            injector_->revokerKicked();
        }
        startSweep();
        break;
      default:
        panic("background revoker: write of unknown register 0x%x", offset);
    }
}

void
BackgroundRevoker::serialize(snapshot::Writer &w) const
{
    w.b(skipSecondHalf_);
    w.b(completionInterrupt_);
    w.b(irqPending_);
    w.u32(startReg_);
    w.u32(endReg_);
    w.u32(epoch_);
    w.u32(cursor_);
    for (const Slot &slot : slots_) {
        w.b(slot.valid);
        w.u32(slot.addr);
        w.u32(slot.beatsLeft);
        w.b(slot.loaded);
        w.b(slot.needsWriteback);
    }
    w.counter(wordsExamined);
    w.counter(tagsInvalidated);
    w.counter(snoopReloads);
    w.counter(portCycles);
    w.counter(stallCycles);
    w.counter(kicksReceived);
}

bool
BackgroundRevoker::deserialize(snapshot::Reader &r)
{
    skipSecondHalf_ = r.b();
    completionInterrupt_ = r.b();
    irqPending_ = r.b();
    startReg_ = r.u32();
    endReg_ = r.u32();
    epoch_ = r.u32();
    cursor_ = r.u32();
    for (Slot &slot : slots_) {
        slot.valid = r.b();
        slot.addr = r.u32();
        slot.beatsLeft = r.u32();
        slot.loaded = r.b();
        slot.needsWriteback = r.b();
    }
    r.counter(wordsExamined);
    r.counter(tagsInvalidated);
    r.counter(snoopReloads);
    r.counter(portCycles);
    r.counter(stallCycles);
    r.counter(kicksReceived);
    return r.ok();
}

} // namespace cheriot::revoker
