/**
 * @file
 * Background pipelined hardware revoker (paper §3.3.3).
 *
 * A simple two-stage state machine that engages the load-store unit
 * whenever the main pipeline is not performing memory operations. It
 * walks the configured window loading each capability word; the load
 * filter's check decides whether the word's tag must be stripped. Two
 * words can be in flight, hiding the one-cycle filter delay and
 * achieving one word per free memory cycle on a wide bus.
 *
 * Exposed as an MMIO device with four registers:
 *   0x0 start  (RW)  first byte of the sweep window
 *   0x4 end    (RW)  one past the last byte
 *   0x8 epoch  (RO)  odd while sweeping
 *   0xC kick   (WO)  any write starts a sweep if none is underway
 *
 * Writeback optimizations (§7.2.2): the engine only writes back when
 * the tag was stripped, and then issues a single tag-clearing write
 * (possible because the architectural tag is the AND of the two
 * micro-tags). Optionally it can skip the second half-load when the
 * first half's micro-tag is already clear (the paper implements the
 * first optimization but not the second; both are modelled, the
 * second off by default).
 *
 * Stores from the main pipeline are snooped against the in-flight
 * words: a hit forces the word to be reloaded, closing the race in
 * which the revoker would otherwise overwrite fresh application data
 * with a stale invalidated image.
 */

#ifndef CHERIOT_REVOKER_BACKGROUND_REVOKER_H
#define CHERIOT_REVOKER_BACKGROUND_REVOKER_H

#include "mem/bus.h"
#include "mem/mmio.h"
#include "mem/tagged_memory.h"
#include "revoker/revocation_bitmap.h"
#include "util/stats.h"

namespace cheriot::fault
{
class FaultInjector;
}

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::revoker
{

class BackgroundRevoker : public mem::MmioDevice
{
  public:
    BackgroundRevoker(mem::TaggedMemory &sram, RevocationBitmap &bitmap,
                      mem::BusWidth busWidth);

    /** @name Configuration @{ */
    void setSkipSecondHalfLoad(bool enabled) { skipSecondHalf_ = enabled; }
    bool skipSecondHalfLoad() const { return skipSecondHalf_; }
    /** Raise an interrupt on completion (the production core does;
     * the Flute prototype does not and must be polled, §7.2.2). */
    void setCompletionInterrupt(bool enabled)
    {
        completionInterrupt_ = enabled;
    }
    bool completionInterrupt() const { return completionInterrupt_; }
    /**
     * Attach a fault injector: the engine consults it for stall and
     * stuck-epoch faults and reports kicks to it (a kick is the
     * software recovery action that clears both).
     */
    void setFaultInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }
    /** @} */

    /** @name Architectural state @{ */
    uint32_t epoch() const { return epoch_; }
    bool sweeping() const { return (epoch_ & 1) != 0; }
    /** Completion-interrupt pending flag; cleared by the reader. */
    bool takeCompletionIrq();
    /** @} */

    /**
     * Advance one cycle. @p memPortFree says whether the main
     * pipeline left the load-store unit idle this cycle. Returns true
     * if the revoker used the port.
     */
    bool tick(bool memPortFree);

    /**
     * Snoop a store from the main pipeline: if it hits a word
     * currently in flight, that word must be reloaded.
     */
    void snoopStore(uint32_t addr, uint32_t bytes);

    /** @name Snapshot state (window, epoch, cursor, in-flight slots) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    /** @name MmioDevice @{ */
    std::string name() const override { return "background-revoker"; }
    uint32_t read32(uint32_t offset) override;
    void write32(uint32_t offset, uint32_t value) override;
    /** @} */

    Counter wordsExamined;   ///< Capability words fully processed.
    Counter tagsInvalidated; ///< Stale capabilities invalidated.
    Counter snoopReloads;    ///< Words reloaded due to store snoops.
    Counter portCycles;      ///< Memory-port cycles consumed.
    Counter stallCycles;     ///< Cycles lost to injected stalls.
    Counter kicksReceived;   ///< MMIO kicks observed.
    /** Full sweep passes finished. Diagnostic only — not serialized
     * (the architectural sweep progress is the epoch). */
    Counter sweepsCompleted;

    StatGroup &stats() { return stats_; }

  private:
    /** One in-flight capability word. */
    struct Slot
    {
        bool valid = false;
        uint32_t addr = 0;
        uint32_t beatsLeft = 0; ///< Load beats still needed.
        bool loaded = false;    ///< Data fully loaded, awaiting check.
        bool needsWriteback = false;
    };

    void startSweep();
    void finishSweep();
    bool issueNextLoad();
    void examine(Slot &slot);

    mem::TaggedMemory &sram_;
    RevocationBitmap &bitmap_;
    mem::BusWidth busWidth_;
    fault::FaultInjector *injector_ = nullptr;
    bool skipSecondHalf_ = false;
    bool completionInterrupt_ = true;
    bool irqPending_ = false;

    uint32_t startReg_ = 0;
    uint32_t endReg_ = 0;
    uint32_t epoch_ = 0;
    uint32_t cursor_ = 0;

    Slot slots_[2];
    StatGroup stats_;
};

} // namespace cheriot::revoker

#endif // CHERIOT_REVOKER_BACKGROUND_REVOKER_H
