/**
 * @file
 * Software sweeping revocation (paper §3.3.2).
 *
 * With the load filter in place, revocation is a simple loop that
 * loads every capability-sized word in the swept window and stores it
 * back: the filter strips tags of stale capabilities on the way
 * through the register file. The loop body must be atomic with
 * respect to other code (interrupts disabled), but the loop may be
 * preempted between batches; it is unrolled (by two, by default) to
 * hide the one-cycle load-to-use delay.
 */

#ifndef CHERIOT_REVOKER_SOFTWARE_REVOKER_H
#define CHERIOT_REVOKER_SOFTWARE_REVOKER_H

#include "cap/capability.h"
#include "revoker/revoker.h"
#include "util/stats.h"

#include <cstdint>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::revoker
{

/**
 * Memory and timing services the software revoker needs from the
 * platform. Implemented by the RTOS guest context so that sweeps go
 * through the real load filter and are charged real cycles.
 */
class SweepPort
{
  public:
    virtual ~SweepPort() = default;

    /** Capability load through the load filter; charges cycles. */
    virtual cap::Capability sweepLoadCap(uint32_t addr) = 0;

    /** Capability store; charges cycles. */
    virtual void sweepStoreCap(uint32_t addr, const cap::Capability &value) = 0;

    /** Charge @p instructions of register-register work. */
    virtual void sweepChargeExecution(uint32_t instructions) = 0;

    /**
     * Batch boundary: re-enable interrupts briefly so the system
     * stays responsive (the revoker "disables interrupts to
     * incrementally sweep parts of memory with a reasonable batch
     * size").
     */
    virtual void sweepInterruptWindow() = 0;

    /**
     * Charge the load-to-use bubble a store immediately following
     * its load suffers — incurred only when the sweep loop is not
     * unrolled (§3.3.2: "this loop is unrolled to load two
     * capabilities, avoiding the pipeline bubbles").
     */
    virtual void sweepLoadToUseStall() = 0;
};

class SoftwareRevoker : public Revoker
{
  public:
    /**
     * @param port        platform services.
     * @param sweepBase   first byte of the swept window.
     * @param sweepSize   bytes to sweep (multiple of 8).
     * @param batchWords  capability words per interrupts-off batch.
     * @param unroll      loop unrolling factor (≥ 1; paper uses 2).
     */
    SoftwareRevoker(SweepPort &port, uint32_t sweepBase, uint32_t sweepSize,
                    uint32_t batchWords = 64, uint32_t unroll = 2);

    uint32_t epoch() const override { return epoch_; }
    void requestSweep() override;
    void waitForCompletion() override {}
    const char *kind() const override { return "software"; }

    /** @name Snapshot state (epoch + counters; sweeps themselves are
     * synchronous, so none is ever in flight at a snapshot point) @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    Counter sweeps;      ///< Completed sweep passes.
    Counter wordsSwept;  ///< Capability words loaded + stored back.

    StatGroup &stats() { return stats_; }

  private:
    SweepPort &port_;
    uint32_t sweepBase_;
    uint32_t sweepSize_;
    uint32_t batchWords_;
    uint32_t unroll_;
    uint32_t epoch_ = 0;
    StatGroup stats_;
};

} // namespace cheriot::revoker

#endif // CHERIOT_REVOKER_SOFTWARE_REVOKER_H
