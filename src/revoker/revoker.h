/**
 * @file
 * Common interface over the two revocation-sweep engines.
 *
 * Both the software sweep loop (§3.3.2) and the background hardware
 * engine (§3.3.3) publish an *epoch* counter, incremented once before
 * a sweep begins and once again on completion — so an odd epoch means
 * a sweep is in flight. The allocator's quarantine logic (§5.1) is
 * written purely against this interface.
 */

#ifndef CHERIOT_REVOKER_REVOKER_H
#define CHERIOT_REVOKER_REVOKER_H

#include <cstdint>

namespace cheriot::revoker
{

class Revoker
{
  public:
    virtual ~Revoker() = default;

    /** Current epoch; odd while a sweep is in progress. */
    virtual uint32_t epoch() const = 0;

    bool sweepInProgress() const { return (epoch() & 1) != 0; }

    /**
     * Begin a sweep if none is underway. For the software engine this
     * runs the sweep to completion synchronously (consuming simulated
     * cycles); for the background engine it merely kicks the state
     * machine.
     */
    virtual void requestSweep() = 0;

    /**
     * Block (consuming simulated idle cycles) until no sweep is in
     * progress.
     */
    virtual void waitForCompletion() = 0;

    virtual const char *kind() const = 0;

    /**
     * True when chunks freed at @p freeEpoch are safe to reuse at
     * @p currentEpoch: some sweep started after the revocation bits
     * were painted and has completed. If the free happened mid-sweep
     * (odd epoch) that sweep may already have passed the chunk, so a
     * later full sweep is required.
     */
    static bool safeToReuse(uint32_t freeEpoch, uint32_t currentEpoch)
    {
        const uint32_t required = freeEpoch + 2 + (freeEpoch & 1);
        return currentEpoch >= required;
    }
};

} // namespace cheriot::revoker

#endif // CHERIOT_REVOKER_REVOKER_H
