#include "revoker/software_revoker.h"

#include "snapshot/serializer.h"
#include "util/log.h"

namespace cheriot::revoker
{

SoftwareRevoker::SoftwareRevoker(SweepPort &port, uint32_t sweepBase,
                                 uint32_t sweepSize, uint32_t batchWords,
                                 uint32_t unroll)
    : port_(port), sweepBase_(sweepBase), sweepSize_(sweepSize),
      batchWords_(batchWords), unroll_(unroll), stats_("sw_revoker")
{
    if (sweepSize % cap::kCapabilitySize != 0) {
        fatal("sweep window size 0x%x not capability aligned", sweepSize);
    }
    if (unroll == 0 || unroll > 8) {
        fatal("unroll factor must be in 1..8");
    }
    stats_.registerCounter("sweeps", sweeps);
    stats_.registerCounter("wordsSwept", wordsSwept);
}

void
SoftwareRevoker::requestSweep()
{
    if (sweepInProgress()) {
        return;
    }
    ++epoch_; // Sweep begins: epoch becomes odd.

    const uint32_t totalWords = sweepSize_ / cap::kCapabilitySize;
    uint32_t addr = sweepBase_;
    uint32_t wordsInBatch = 0;

    for (uint32_t word = 0; word < totalWords; word += unroll_) {
        // One unrolled block: `unroll_` loads followed by `unroll_`
        // stores, so no load feeds the immediately following
        // instruction and the load-to-use bubble is hidden.
        cap::Capability values[8];
        const uint32_t blockWords =
            std::min<uint32_t>(unroll_, totalWords - word);
        for (uint32_t i = 0; i < blockWords; ++i) {
            values[i] = port_.sweepLoadCap(addr + i * cap::kCapabilitySize);
        }
        if (blockWords < 2) {
            // Un-unrolled: the store consumes the load's result in
            // its shadow.
            port_.sweepLoadToUseStall();
        }
        for (uint32_t i = 0; i < blockWords; ++i) {
            port_.sweepStoreCap(addr + i * cap::kCapabilitySize, values[i]);
        }
        // Address bump + loop bound check + branch.
        port_.sweepChargeExecution(3);
        wordsSwept += blockWords;
        addr += blockWords * cap::kCapabilitySize;

        wordsInBatch += blockWords;
        if (wordsInBatch >= batchWords_) {
            wordsInBatch = 0;
            port_.sweepInterruptWindow();
        }
    }

    ++epoch_; // Sweep complete: epoch becomes even.
    sweeps++;
}

void
SoftwareRevoker::serialize(snapshot::Writer &w) const
{
    w.u32(epoch_);
    w.counter(sweeps);
    w.counter(wordsSwept);
}

bool
SoftwareRevoker::deserialize(snapshot::Reader &r)
{
    epoch_ = r.u32();
    r.counter(sweeps);
    r.counter(wordsSwept);
    return r.ok();
}

} // namespace cheriot::revoker
