/**
 * @file
 * Heap revocation bitmap (paper §3.3.1).
 *
 * Each heap allocation granule (8 bytes by default, matching
 * capability alignment; configurable for the granule-size ablation)
 * has one revocation bit indicating that the granule belongs to a
 * freed-but-not-yet-revoked chunk. The bitmap is memory-mapped and the
 * RTOS loader ensures that only the allocator compartment receives a
 * capability to the window. The SRAM overhead at 8-byte granules is
 * 1/(8*8) = 1.56% of *heap* memory only.
 */

#ifndef CHERIOT_REVOKER_REVOCATION_BITMAP_H
#define CHERIOT_REVOKER_REVOCATION_BITMAP_H

#include "mem/mmio.h"
#include "util/stats.h"

#include <cstdint>
#include <vector>

namespace cheriot::snapshot
{
class Writer;
class Reader;
} // namespace cheriot::snapshot

namespace cheriot::revoker
{

class RevocationBitmap : public mem::MmioDevice
{
  public:
    /**
     * @param heapBase  architectural base of the covered heap window.
     * @param heapSize  bytes covered.
     * @param granule   bytes per revocation bit (power of two, ≥ 8).
     */
    RevocationBitmap(uint32_t heapBase, uint32_t heapSize,
                     uint32_t granule = 8);

    uint32_t heapBase() const { return heapBase_; }
    uint32_t heapSize() const { return heapSize_; }
    uint32_t granule() const { return granule_; }

    /** Size of the MMIO window in bytes (the bitmap itself). */
    uint32_t mmioSize() const
    {
        return static_cast<uint32_t>(words_.size() * 4);
    }

    /** True iff @p addr lies inside the covered heap window. */
    bool covers(uint32_t addr) const
    {
        return addr >= heapBase_ && addr < heapBase_ + heapSize_;
    }

    /** Revocation bit for the granule containing @p addr.
     * Addresses outside the window are never revoked. */
    bool isRevoked(uint32_t addr) const;

    /** Paint revocation bits over [addr, addr+bytes). */
    void setRange(uint32_t addr, uint32_t bytes);

    /** Clear revocation bits over [addr, addr+bytes) (after a
     * completed sweep, before reuse). */
    void clearRange(uint32_t addr, uint32_t bytes);

    /** Count of currently painted bits (diagnostics). */
    uint32_t paintedBits() const;

    /** @name Snapshot state @{ */
    void serialize(snapshot::Writer &w) const;
    bool deserialize(snapshot::Reader &r);
    /** @} */

    /** @name MmioDevice (the allocator's architectural window) @{ */
    std::string name() const override { return "revocation-bitmap"; }
    uint32_t read32(uint32_t offset) override;
    void write32(uint32_t offset, uint32_t value) override;
    /** @} */

    /** Revocation-bit lookups (load filter + revoker sweeps).
     * Diagnostic only — not serialized. */
    mutable Counter lookups;

    StatGroup &stats() { return stats_; }

  private:
    uint32_t bitIndexOf(uint32_t addr) const;

    uint32_t heapBase_;
    uint32_t heapSize_;
    uint32_t granule_;
    std::vector<uint32_t> words_;
    StatGroup stats_{"bitmap"};
};

} // namespace cheriot::revoker

#endif // CHERIOT_REVOKER_REVOCATION_BITMAP_H
