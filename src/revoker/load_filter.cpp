#include "revoker/load_filter.h"

#include "snapshot/serializer.h"

namespace cheriot::revoker
{

void
LoadFilter::serialize(snapshot::Writer &w) const
{
    w.b(enabled_);
    w.counter(lookups);
    w.counter(invalidations);
}

bool
LoadFilter::deserialize(snapshot::Reader &r)
{
    enabled_ = r.b();
    r.counter(lookups);
    r.counter(invalidations);
    return r.ok();
}

} // namespace cheriot::revoker
