// LoadFilter is header-only; this file anchors the translation unit.
#include "revoker/load_filter.h"
