#include "revoker/revocation_bitmap.h"

#include "snapshot/serializer.h"
#include "util/bits.h"
#include "util/log.h"

namespace cheriot::revoker
{

RevocationBitmap::RevocationBitmap(uint32_t heapBase, uint32_t heapSize,
                                   uint32_t granule)
    : heapBase_(heapBase), heapSize_(heapSize), granule_(granule)
{
    if (!isPowerOfTwo(granule) || granule < 8) {
        fatal("revocation granule %u must be a power of two >= 8", granule);
    }
    if (heapBase % granule != 0 || heapSize % granule != 0) {
        fatal("heap window [0x%08x, +0x%x) not aligned to granule %u",
              heapBase, heapSize, granule);
    }
    const uint32_t bitCount = heapSize / granule;
    words_.assign((bitCount + 31) / 32, 0);
    stats_.registerCounter("lookups", lookups);
}

uint32_t
RevocationBitmap::bitIndexOf(uint32_t addr) const
{
    return (addr - heapBase_) / granule_;
}

bool
RevocationBitmap::isRevoked(uint32_t addr) const
{
    lookups++;
    if (!covers(addr)) {
        return false;
    }
    const uint32_t index = bitIndexOf(addr);
    return bit(words_[index / 32], index % 32);
}

void
RevocationBitmap::setRange(uint32_t addr, uint32_t bytes)
{
    if (bytes == 0) {
        return;
    }
    if (!covers(addr) || !covers(addr + bytes - 1)) {
        panic("setRange [0x%08x, +%u) outside heap window", addr, bytes);
    }
    const uint32_t first = bitIndexOf(addr);
    const uint32_t last = bitIndexOf(addr + bytes - 1);
    for (uint32_t index = first; index <= last; ++index) {
        words_[index / 32] |= uint32_t{1} << (index % 32);
    }
}

void
RevocationBitmap::clearRange(uint32_t addr, uint32_t bytes)
{
    if (bytes == 0) {
        return;
    }
    if (!covers(addr) || !covers(addr + bytes - 1)) {
        panic("clearRange [0x%08x, +%u) outside heap window", addr, bytes);
    }
    const uint32_t first = bitIndexOf(addr);
    const uint32_t last = bitIndexOf(addr + bytes - 1);
    for (uint32_t index = first; index <= last; ++index) {
        words_[index / 32] &= ~(uint32_t{1} << (index % 32));
    }
}

uint32_t
RevocationBitmap::paintedBits() const
{
    uint32_t count = 0;
    for (uint32_t word : words_) {
        count += popcount(word);
    }
    return count;
}

uint32_t
RevocationBitmap::read32(uint32_t offset)
{
    const uint32_t index = offset / 4;
    if (index >= words_.size()) {
        panic("revocation bitmap read at offset 0x%x out of range", offset);
    }
    return words_[index];
}

void
RevocationBitmap::write32(uint32_t offset, uint32_t value)
{
    const uint32_t index = offset / 4;
    if (index >= words_.size()) {
        panic("revocation bitmap write at offset 0x%x out of range", offset);
    }
    words_[index] = value;
}

void
RevocationBitmap::serialize(snapshot::Writer &w) const
{
    w.u32(heapBase_);
    w.u32(heapSize_);
    w.u32(granule_);
    for (uint32_t word : words_) {
        w.u32(word);
    }
}

bool
RevocationBitmap::deserialize(snapshot::Reader &r)
{
    if (r.u32() != heapBase_ || r.u32() != heapSize_ ||
        r.u32() != granule_) {
        return false;
    }
    for (uint32_t &word : words_) {
        word = r.u32();
    }
    return r.ok();
}

} // namespace cheriot::revoker
