#include "isa/encoding.h"

#include "util/bits.h"
#include "util/log.h"

#include <cstdio>

namespace cheriot::isa
{

namespace
{

/** Encoding format of an operation. */
enum class Fmt : uint8_t
{
    R,      ///< funct7 | rs2 | rs1 | funct3 | rd | opcode
    I,      ///< imm12 (signed) | rs1 | funct3 | rd | opcode
    IU,     ///< imm12 (zero-extended) | rs1 | funct3 | rd | opcode
    IShift, ///< funct7 | shamt | rs1 | funct3 | rd | opcode
    S,      ///< store split-immediate
    B,      ///< branch split-immediate
    U,      ///< imm[31:12] | rd | opcode
    J,      ///< jump split-immediate
    Fixed,  ///< entire word fixed (ECALL/EBREAK/MRET)
    Csr,    ///< csr | rs1 | funct3 | rd | SYSTEM
    CsrI,   ///< csr | uimm5 | funct3 | rd | SYSTEM
    TwoOp,  ///< funct7=0x7f | subop (rs2 slot) | rs1 | 0 | rd | 0x5b
    ScrRw,  ///< funct7=0x01 | scr (rs2 slot) | rs1 | 0 | rd | 0x5b
    SealE,  ///< funct7=0x12 | posture (rs2 slot) | rs1 | 0 | rd | 0x5b
};

constexpr uint8_t kOpLui = 0x37;
constexpr uint8_t kOpAuipc = 0x17;
constexpr uint8_t kOpJal = 0x6f;
constexpr uint8_t kOpJalr = 0x67;
constexpr uint8_t kOpBranch = 0x63;
constexpr uint8_t kOpLoad = 0x03;
constexpr uint8_t kOpStore = 0x23;
constexpr uint8_t kOpImm = 0x13;
constexpr uint8_t kOpReg = 0x33;
constexpr uint8_t kOpSystem = 0x73;
constexpr uint8_t kOpCheri = 0x5b;

struct OpInfo
{
    Op op;
    const char *name;
    Fmt fmt;
    uint8_t opcode;
    uint8_t f3;
    uint8_t f7;    ///< funct7 for R/IShift, otherwise 0.
    uint32_t fixed; ///< Entire word for Fmt::Fixed.
};

constexpr OpInfo kOps[] = {
    {Op::Lui, "lui", Fmt::U, kOpLui, 0, 0, 0},
    {Op::Auipc, "auipcc", Fmt::U, kOpAuipc, 0, 0, 0},
    {Op::Jal, "cjal", Fmt::J, kOpJal, 0, 0, 0},
    {Op::Jalr, "cjalr", Fmt::I, kOpJalr, 0, 0, 0},
    {Op::Beq, "beq", Fmt::B, kOpBranch, 0, 0, 0},
    {Op::Bne, "bne", Fmt::B, kOpBranch, 1, 0, 0},
    {Op::Blt, "blt", Fmt::B, kOpBranch, 4, 0, 0},
    {Op::Bge, "bge", Fmt::B, kOpBranch, 5, 0, 0},
    {Op::Bltu, "bltu", Fmt::B, kOpBranch, 6, 0, 0},
    {Op::Bgeu, "bgeu", Fmt::B, kOpBranch, 7, 0, 0},
    {Op::Lb, "lb", Fmt::I, kOpLoad, 0, 0, 0},
    {Op::Lh, "lh", Fmt::I, kOpLoad, 1, 0, 0},
    {Op::Lw, "lw", Fmt::I, kOpLoad, 2, 0, 0},
    {Op::Lbu, "lbu", Fmt::I, kOpLoad, 4, 0, 0},
    {Op::Lhu, "lhu", Fmt::I, kOpLoad, 5, 0, 0},
    {Op::Clc, "clc", Fmt::I, kOpLoad, 3, 0, 0},
    {Op::Sb, "sb", Fmt::S, kOpStore, 0, 0, 0},
    {Op::Sh, "sh", Fmt::S, kOpStore, 1, 0, 0},
    {Op::Sw, "sw", Fmt::S, kOpStore, 2, 0, 0},
    {Op::Csc, "csc", Fmt::S, kOpStore, 3, 0, 0},
    {Op::Addi, "addi", Fmt::I, kOpImm, 0, 0, 0},
    {Op::Slti, "slti", Fmt::I, kOpImm, 2, 0, 0},
    {Op::Sltiu, "sltiu", Fmt::I, kOpImm, 3, 0, 0},
    {Op::Xori, "xori", Fmt::I, kOpImm, 4, 0, 0},
    {Op::Ori, "ori", Fmt::I, kOpImm, 6, 0, 0},
    {Op::Andi, "andi", Fmt::I, kOpImm, 7, 0, 0},
    {Op::Slli, "slli", Fmt::IShift, kOpImm, 1, 0x00, 0},
    {Op::Srli, "srli", Fmt::IShift, kOpImm, 5, 0x00, 0},
    {Op::Srai, "srai", Fmt::IShift, kOpImm, 5, 0x20, 0},
    {Op::Add, "add", Fmt::R, kOpReg, 0, 0x00, 0},
    {Op::Sub, "sub", Fmt::R, kOpReg, 0, 0x20, 0},
    {Op::Sll, "sll", Fmt::R, kOpReg, 1, 0x00, 0},
    {Op::Slt, "slt", Fmt::R, kOpReg, 2, 0x00, 0},
    {Op::Sltu, "sltu", Fmt::R, kOpReg, 3, 0x00, 0},
    {Op::Xor, "xor", Fmt::R, kOpReg, 4, 0x00, 0},
    {Op::Srl, "srl", Fmt::R, kOpReg, 5, 0x00, 0},
    {Op::Sra, "sra", Fmt::R, kOpReg, 5, 0x20, 0},
    {Op::Or, "or", Fmt::R, kOpReg, 6, 0x00, 0},
    {Op::And, "and", Fmt::R, kOpReg, 7, 0x00, 0},
    {Op::Mul, "mul", Fmt::R, kOpReg, 0, 0x01, 0},
    {Op::Mulh, "mulh", Fmt::R, kOpReg, 1, 0x01, 0},
    {Op::Mulhsu, "mulhsu", Fmt::R, kOpReg, 2, 0x01, 0},
    {Op::Mulhu, "mulhu", Fmt::R, kOpReg, 3, 0x01, 0},
    {Op::Div, "div", Fmt::R, kOpReg, 4, 0x01, 0},
    {Op::Divu, "divu", Fmt::R, kOpReg, 5, 0x01, 0},
    {Op::Rem, "rem", Fmt::R, kOpReg, 6, 0x01, 0},
    {Op::Remu, "remu", Fmt::R, kOpReg, 7, 0x01, 0},
    {Op::Ecall, "ecall", Fmt::Fixed, kOpSystem, 0, 0, 0x00000073},
    {Op::Ebreak, "ebreak", Fmt::Fixed, kOpSystem, 0, 0, 0x00100073},
    {Op::Mret, "mret", Fmt::Fixed, kOpSystem, 0, 0, 0x30200073},
    {Op::Csrrw, "csrrw", Fmt::Csr, kOpSystem, 1, 0, 0},
    {Op::Csrrs, "csrrs", Fmt::Csr, kOpSystem, 2, 0, 0},
    {Op::Csrrc, "csrrc", Fmt::Csr, kOpSystem, 3, 0, 0},
    {Op::Csrrwi, "csrrwi", Fmt::CsrI, kOpSystem, 5, 0, 0},
    {Op::Csrrsi, "csrrsi", Fmt::CsrI, kOpSystem, 6, 0, 0},
    {Op::Csrrci, "csrrci", Fmt::CsrI, kOpSystem, 7, 0, 0},
    // CHERIoT R-type manipulations (funct3 = 0 on opcode 0x5b).
    {Op::CSpecialRw, "cspecialrw", Fmt::ScrRw, kOpCheri, 0, 0x01, 0},
    {Op::CSetBounds, "csetbounds", Fmt::R, kOpCheri, 0, 0x08, 0},
    {Op::CSetBoundsExact, "csetboundsexact", Fmt::R, kOpCheri, 0, 0x09, 0},
    {Op::CSeal, "cseal", Fmt::R, kOpCheri, 0, 0x0b, 0},
    {Op::CUnseal, "cunseal", Fmt::R, kOpCheri, 0, 0x0c, 0},
    {Op::CAndPerm, "candperm", Fmt::R, kOpCheri, 0, 0x0d, 0},
    {Op::CSetAddr, "csetaddr", Fmt::R, kOpCheri, 0, 0x10, 0},
    {Op::CIncAddr, "cincaddr", Fmt::R, kOpCheri, 0, 0x11, 0},
    {Op::CSealEntry, "csealentry", Fmt::SealE, kOpCheri, 0, 0x12, 0},
    {Op::CTestSubset, "ctestsubset", Fmt::R, kOpCheri, 0, 0x20, 0},
    {Op::CSetEqualExact, "csetequalexact", Fmt::R, kOpCheri, 0, 0x21, 0},
    // CHERIoT immediate forms.
    {Op::CIncAddrImm, "cincaddrimm", Fmt::I, kOpCheri, 1, 0, 0},
    {Op::CSetBoundsImm, "csetboundsimm", Fmt::IU, kOpCheri, 2, 0, 0},
    // Two-operand ops: funct7 = 0x7f, sub-operation in the rs2 slot.
    {Op::CGetPerm, "cgetperm", Fmt::TwoOp, kOpCheri, 0, 0x00, 0},
    {Op::CGetType, "cgettype", Fmt::TwoOp, kOpCheri, 0, 0x01, 0},
    {Op::CGetBase, "cgetbase", Fmt::TwoOp, kOpCheri, 0, 0x02, 0},
    {Op::CGetLen, "cgetlen", Fmt::TwoOp, kOpCheri, 0, 0x03, 0},
    {Op::CGetTag, "cgettag", Fmt::TwoOp, kOpCheri, 0, 0x04, 0},
    {Op::CRrl, "crrl", Fmt::TwoOp, kOpCheri, 0, 0x08, 0},
    {Op::CRam, "cram", Fmt::TwoOp, kOpCheri, 0, 0x09, 0},
    {Op::CMove, "cmove", Fmt::TwoOp, kOpCheri, 0, 0x0a, 0},
    {Op::CClearTag, "ccleartag", Fmt::TwoOp, kOpCheri, 0, 0x0b, 0},
    {Op::CGetAddr, "cgetaddr", Fmt::TwoOp, kOpCheri, 0, 0x0f, 0},
    {Op::CGetTop, "cgettop", Fmt::TwoOp, kOpCheri, 0, 0x18, 0},
};

const OpInfo *
infoFor(Op op)
{
    for (const auto &info : kOps) {
        if (info.op == op) {
            return &info;
        }
    }
    return nullptr;
}

void
checkReg(uint8_t reg, const char *what)
{
    if (reg >= kNumRegs) {
        panic("encode: %s register %u out of range (RV32E has 16)", what,
              reg);
    }
}

void
checkSignedImm(int32_t imm, unsigned width)
{
    const int32_t lo = -(1 << (width - 1));
    const int32_t hi = (1 << (width - 1)) - 1;
    if (imm < lo || imm > hi) {
        panic("encode: immediate %d does not fit %u signed bits", imm,
              width);
    }
}

} // namespace

uint32_t
encode(const Inst &inst)
{
    const OpInfo *info = infoFor(inst.op);
    if (info == nullptr) {
        panic("encode: unknown op %u", static_cast<unsigned>(inst.op));
    }
    checkReg(inst.rd, "rd");
    checkReg(inst.rs1, "rs1");
    checkReg(inst.rs2, "rs2");

    const uint32_t opc = info->opcode;
    const uint32_t f3 = info->f3;
    const uint32_t rd = inst.rd;
    const uint32_t rs1 = inst.rs1;
    const uint32_t rs2 = inst.rs2;

    switch (info->fmt) {
      case Fmt::R:
        return (uint32_t{info->f7} << 25) | (rs2 << 20) | (rs1 << 15) |
               (f3 << 12) | (rd << 7) | opc;
      case Fmt::I:
        checkSignedImm(inst.imm, 12);
        return (static_cast<uint32_t>(inst.imm & 0xfff) << 20) |
               (rs1 << 15) | (f3 << 12) | (rd << 7) | opc;
      case Fmt::IU:
        if (inst.imm < 0 || inst.imm > 0xfff) {
            panic("encode: unsigned immediate %d does not fit 12 bits",
                  inst.imm);
        }
        return (static_cast<uint32_t>(inst.imm) << 20) | (rs1 << 15) |
               (f3 << 12) | (rd << 7) | opc;
      case Fmt::IShift:
        if (inst.imm < 0 || inst.imm > 31) {
            panic("encode: shift amount %d out of range", inst.imm);
        }
        return (uint32_t{info->f7} << 25) |
               (static_cast<uint32_t>(inst.imm) << 20) | (rs1 << 15) |
               (f3 << 12) | (rd << 7) | opc;
      case Fmt::S: {
        checkSignedImm(inst.imm, 12);
        const uint32_t imm = static_cast<uint32_t>(inst.imm) & 0xfff;
        return (bits(imm, 5u, 7u) << 25) | (rs2 << 20) | (rs1 << 15) |
               (f3 << 12) | (bits(imm, 0u, 5u) << 7) | opc;
      }
      case Fmt::B: {
        checkSignedImm(inst.imm, 13);
        if (inst.imm & 1) {
            panic("encode: branch offset %d is odd", inst.imm);
        }
        const uint32_t imm = static_cast<uint32_t>(inst.imm) & 0x1fff;
        return (bits(imm, 12u, 1u) << 31) | (bits(imm, 5u, 6u) << 25) |
               (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
               (bits(imm, 1u, 4u) << 8) | (bits(imm, 11u, 1u) << 7) | opc;
      }
      case Fmt::U:
        return (static_cast<uint32_t>(inst.imm) & 0xfffff000u) | (rd << 7) |
               opc;
      case Fmt::J: {
        checkSignedImm(inst.imm, 21);
        if (inst.imm & 1) {
            panic("encode: jump offset %d is odd", inst.imm);
        }
        const uint32_t imm = static_cast<uint32_t>(inst.imm) & 0x1fffff;
        return (bits(imm, 20u, 1u) << 31) | (bits(imm, 1u, 10u) << 21) |
               (bits(imm, 11u, 1u) << 20) | (bits(imm, 12u, 8u) << 12) |
               (rd << 7) | opc;
      }
      case Fmt::Fixed:
        return info->fixed;
      case Fmt::Csr:
        return (uint32_t{inst.csr} << 20) | (rs1 << 15) | (f3 << 12) |
               (rd << 7) | opc;
      case Fmt::CsrI:
        if (inst.imm < 0 || inst.imm > 31) {
            panic("encode: CSR immediate %d out of range", inst.imm);
        }
        return (uint32_t{inst.csr} << 20) |
               (static_cast<uint32_t>(inst.imm) << 15) | (f3 << 12) |
               (rd << 7) | opc;
      case Fmt::TwoOp:
        return (0x7fu << 25) | (uint32_t{info->f7} << 20) | (rs1 << 15) |
               (f3 << 12) | (rd << 7) | opc;
      case Fmt::ScrRw:
        if (inst.imm < 0 || inst.imm > 31) {
            panic("encode: SCR index %d out of range", inst.imm);
        }
        return (0x01u << 25) | (static_cast<uint32_t>(inst.imm) << 20) |
               (rs1 << 15) | (f3 << 12) | (rd << 7) | opc;
      case Fmt::SealE:
        if (inst.imm < 0 || inst.imm > 2) {
            panic("encode: sentry posture %d out of range", inst.imm);
        }
        return (0x12u << 25) | (static_cast<uint32_t>(inst.imm) << 20) |
               (rs1 << 15) | (f3 << 12) | (rd << 7) | opc;
    }
    panic("encode: unhandled format");
}

const char *
opName(Op op)
{
    if (op == Op::Illegal) {
        return "illegal";
    }
    const OpInfo *info = infoFor(op);
    return info != nullptr ? info->name : "?";
}

const char *
regName(uint8_t index)
{
    static const char *kNames[kNumRegs] = {
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
        "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    };
    return index < kNumRegs ? kNames[index] : "?";
}

const char *
decodeErrorKindName(DecodeErrorKind kind)
{
    switch (kind) {
      case DecodeErrorKind::None: return "none";
      case DecodeErrorKind::UnknownMajorOpcode: return "unknown-opcode";
      case DecodeErrorKind::ReservedFunct3: return "reserved-funct3";
      case DecodeErrorKind::ReservedFunct7: return "reserved-funct7";
      case DecodeErrorKind::ReservedSubOp: return "reserved-subop";
      case DecodeErrorKind::ReservedSystem: return "reserved-system";
      case DecodeErrorKind::RegisterOutOfRange:
        return "register-out-of-range";
    }
    return "?";
}

std::string
DecodeError::toString() const
{
    if (ok()) {
        return "ok";
    }
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "%s: opcode=0x%02x %s=0x%x",
                  decodeErrorKindName(kind), opcode, field, value);
    return buffer;
}

namespace
{

/** Immediate shape implied by an op's encoding format. */
ImmKind
immKindFor(const OpInfo &info)
{
    switch (info.fmt) {
      case Fmt::R: return ImmKind::None;
      case Fmt::I: return ImmKind::I12;
      case Fmt::IU: return ImmKind::U12;
      case Fmt::IShift: return ImmKind::Shamt;
      case Fmt::S: return ImmKind::S12;
      case Fmt::B: return ImmKind::B13;
      case Fmt::U: return ImmKind::U20;
      case Fmt::J: return ImmKind::J21;
      case Fmt::Fixed: return ImmKind::None;
      case Fmt::Csr: return ImmKind::None;
      case Fmt::CsrI: return ImmKind::Csr5;
      case Fmt::TwoOp: return ImmKind::None;
      case Fmt::ScrRw: return ImmKind::Scr;
      case Fmt::SealE: return ImmKind::Posture;
    }
    return ImmKind::None;
}

/** Ops whose rd receives a capability rather than an integer. */
bool
producesCap(Op op)
{
    switch (op) {
      case Op::Jal: case Op::Jalr: // link is a sealed return sentry
      case Op::Auipc:
      case Op::Clc:
      case Op::CSeal: case Op::CUnseal: case Op::CAndPerm:
      case Op::CSetAddr: case Op::CIncAddr: case Op::CIncAddrImm:
      case Op::CSetBounds: case Op::CSetBoundsExact:
      case Op::CSetBoundsImm:
      case Op::CMove: case Op::CClearTag:
      case Op::CSealEntry: case Op::CSpecialRw:
        return true;
      default:
        return false;
    }
}

/** Ops that interpret rs1 as a capability (authority or value). */
bool
consumesCapRs1(Op op)
{
    switch (op) {
      case Op::Jalr:
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
      case Op::Sb: case Op::Sh: case Op::Sw:
      case Op::Clc: case Op::Csc:
      case Op::CGetPerm: case Op::CGetType: case Op::CGetBase:
      case Op::CGetLen: case Op::CGetTop: case Op::CGetTag:
      case Op::CGetAddr:
      case Op::CSeal: case Op::CUnseal: case Op::CAndPerm:
      case Op::CSetAddr: case Op::CIncAddr: case Op::CIncAddrImm:
      case Op::CSetBounds: case Op::CSetBoundsExact:
      case Op::CSetBoundsImm:
      case Op::CTestSubset: case Op::CSetEqualExact:
      case Op::CMove: case Op::CClearTag:
      case Op::CSealEntry: case Op::CSpecialRw:
        return true;
      default:
        return false;
    }
}

OpSummary
buildSummary(const OpInfo &info)
{
    OpSummary s;
    s.op = info.op;
    s.immKind = immKindFor(info);
    s.usesCsr = info.fmt == Fmt::Csr || info.fmt == Fmt::CsrI;
    switch (info.fmt) {
      case Fmt::R:
        s.readsRs1 = true;
        s.readsRs2 = true;
        s.writesRd = true;
        break;
      case Fmt::I:
      case Fmt::IU:
      case Fmt::IShift:
        s.readsRs1 = true;
        s.writesRd = true;
        break;
      case Fmt::S:
      case Fmt::B:
        s.readsRs1 = true;
        s.readsRs2 = true;
        break;
      case Fmt::U:
      case Fmt::J:
        s.writesRd = true;
        break;
      case Fmt::Fixed:
        break;
      case Fmt::Csr:
        s.readsRs1 = true;
        s.writesRd = true;
        break;
      case Fmt::CsrI:
        s.writesRd = true;
        break;
      case Fmt::TwoOp:
      case Fmt::ScrRw:
      case Fmt::SealE:
        s.readsRs1 = true;
        s.writesRd = true;
        break;
    }
    s.capSource = consumesCapRs1(info.op);
    s.capResult = producesCap(info.op);
    return s;
}

} // namespace

const OpSummary &
summaryOf(Op op)
{
    static const auto kSummaries = [] {
        // Indexable by the Op enum; Illegal stays all-false.
        std::vector<OpSummary> table(256);
        for (const auto &info : kOps) {
            table[static_cast<size_t>(info.op)] = buildSummary(info);
        }
        return table;
    }();
    return kSummaries[static_cast<size_t>(op)];
}

const std::vector<Op> &
allOps()
{
    static const auto kAll = [] {
        std::vector<Op> ops;
        for (const auto &info : kOps) {
            ops.push_back(info.op);
        }
        return ops;
    }();
    return kAll;
}

} // namespace cheriot::isa
