/**
 * @file
 * Programmatic assembler for the CHERIoT RV32E ISA.
 *
 * Guest programs (CoreMark kernels, microbenchmarks, ISA tests) are
 * written against this builder API: one method per instruction, plus
 * labels with automatic branch/jump fixups and a handful of pseudo-
 * instructions (li, mv, j, ret, nop). finish() resolves all fixups
 * and returns the binary image.
 */

#ifndef CHERIOT_ISA_ASSEMBLER_H
#define CHERIOT_ISA_ASSEMBLER_H

#include "isa/encoding.h"

#include <cstdint>
#include <vector>

namespace cheriot::isa
{

class Assembler
{
  public:
    /** @param baseAddress address the image will be loaded at. */
    explicit Assembler(uint32_t baseAddress) : base_(baseAddress) {}

    /** Opaque label handle. */
    using Label = uint32_t;

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current position. */
    void bind(Label label);

    /** Create a label already bound to the current position. */
    Label here();

    /** Address of the next emitted instruction. */
    uint32_t pc() const
    {
        return base_ + static_cast<uint32_t>(words_.size()) * 4;
    }

    uint32_t baseAddress() const { return base_; }

    /** Bytes emitted so far. */
    uint32_t size() const
    {
        return static_cast<uint32_t>(words_.size()) * 4;
    }

    /** Resolve fixups and return the image. Panics on unbound labels. */
    std::vector<uint32_t> finish();

    /** @name Raw emission @{ */
    void emit(const Inst &inst);
    void word(uint32_t value);
    /** @} */

    /** @name RV32I @{ */
    void lui(uint8_t rd, int32_t imm20)
    {
        emit({Op::Lui, rd, 0, 0,
              static_cast<int32_t>(static_cast<uint32_t>(imm20) << 12), 0});
    }
    void auipcc(uint8_t rd, int32_t imm20)
    {
        emit({Op::Auipc, rd, 0, 0,
              static_cast<int32_t>(static_cast<uint32_t>(imm20) << 12), 0});
    }
    void jal(uint8_t rd, Label target);
    void jalr(uint8_t rd, uint8_t rs1, int32_t imm = 0) { emit({Op::Jalr, rd, rs1, 0, imm, 0}); }
    void beq(uint8_t rs1, uint8_t rs2, Label target) { branch(Op::Beq, rs1, rs2, target); }
    void bne(uint8_t rs1, uint8_t rs2, Label target) { branch(Op::Bne, rs1, rs2, target); }
    void blt(uint8_t rs1, uint8_t rs2, Label target) { branch(Op::Blt, rs1, rs2, target); }
    void bge(uint8_t rs1, uint8_t rs2, Label target) { branch(Op::Bge, rs1, rs2, target); }
    void bltu(uint8_t rs1, uint8_t rs2, Label target) { branch(Op::Bltu, rs1, rs2, target); }
    void bgeu(uint8_t rs1, uint8_t rs2, Label target) { branch(Op::Bgeu, rs1, rs2, target); }
    void lb(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Lb, rd, rs1, 0, imm, 0}); }
    void lh(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Lh, rd, rs1, 0, imm, 0}); }
    void lw(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Lw, rd, rs1, 0, imm, 0}); }
    void lbu(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Lbu, rd, rs1, 0, imm, 0}); }
    void lhu(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Lhu, rd, rs1, 0, imm, 0}); }
    void sb(uint8_t rs2, uint8_t rs1, int32_t imm) { emit({Op::Sb, 0, rs1, rs2, imm, 0}); }
    void sh(uint8_t rs2, uint8_t rs1, int32_t imm) { emit({Op::Sh, 0, rs1, rs2, imm, 0}); }
    void sw(uint8_t rs2, uint8_t rs1, int32_t imm) { emit({Op::Sw, 0, rs1, rs2, imm, 0}); }
    void addi(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Addi, rd, rs1, 0, imm, 0}); }
    void slti(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Slti, rd, rs1, 0, imm, 0}); }
    void sltiu(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Sltiu, rd, rs1, 0, imm, 0}); }
    void xori(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Xori, rd, rs1, 0, imm, 0}); }
    void ori(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Ori, rd, rs1, 0, imm, 0}); }
    void andi(uint8_t rd, uint8_t rs1, int32_t imm) { emit({Op::Andi, rd, rs1, 0, imm, 0}); }
    void slli(uint8_t rd, uint8_t rs1, int32_t shamt) { emit({Op::Slli, rd, rs1, 0, shamt, 0}); }
    void srli(uint8_t rd, uint8_t rs1, int32_t shamt) { emit({Op::Srli, rd, rs1, 0, shamt, 0}); }
    void srai(uint8_t rd, uint8_t rs1, int32_t shamt) { emit({Op::Srai, rd, rs1, 0, shamt, 0}); }
    void add(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Add, rd, rs1, rs2, 0, 0}); }
    void sub(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Sub, rd, rs1, rs2, 0, 0}); }
    void sll(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Sll, rd, rs1, rs2, 0, 0}); }
    void slt(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Slt, rd, rs1, rs2, 0, 0}); }
    void sltu(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Sltu, rd, rs1, rs2, 0, 0}); }
    void xor_(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Xor, rd, rs1, rs2, 0, 0}); }
    void srl(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Srl, rd, rs1, rs2, 0, 0}); }
    void sra(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Sra, rd, rs1, rs2, 0, 0}); }
    void or_(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Or, rd, rs1, rs2, 0, 0}); }
    void and_(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::And, rd, rs1, rs2, 0, 0}); }
    void ecall() { emit({Op::Ecall, 0, 0, 0, 0, 0}); }
    void ebreak() { emit({Op::Ebreak, 0, 0, 0, 0, 0}); }
    void mret() { emit({Op::Mret, 0, 0, 0, 0, 0}); }
    void csrrw(uint8_t rd, uint16_t csr, uint8_t rs1) { emit({Op::Csrrw, rd, rs1, 0, 0, csr}); }
    void csrrs(uint8_t rd, uint16_t csr, uint8_t rs1) { emit({Op::Csrrs, rd, rs1, 0, 0, csr}); }
    void csrrc(uint8_t rd, uint16_t csr, uint8_t rs1) { emit({Op::Csrrc, rd, rs1, 0, 0, csr}); }
    void csrrwi(uint8_t rd, uint16_t csr, int32_t uimm) { emit({Op::Csrrwi, rd, 0, 0, uimm, csr}); }
    void csrrsi(uint8_t rd, uint16_t csr, int32_t uimm) { emit({Op::Csrrsi, rd, 0, 0, uimm, csr}); }
    void csrrci(uint8_t rd, uint16_t csr, int32_t uimm) { emit({Op::Csrrci, rd, 0, 0, uimm, csr}); }
    /** @} */

    /** @name RV32M @{ */
    void mul(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Mul, rd, rs1, rs2, 0, 0}); }
    void mulh(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Mulh, rd, rs1, rs2, 0, 0}); }
    void mulhsu(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Mulhsu, rd, rs1, rs2, 0, 0}); }
    void mulhu(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Mulhu, rd, rs1, rs2, 0, 0}); }
    void div(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Div, rd, rs1, rs2, 0, 0}); }
    void divu(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Divu, rd, rs1, rs2, 0, 0}); }
    void rem(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Rem, rd, rs1, rs2, 0, 0}); }
    void remu(uint8_t rd, uint8_t rs1, uint8_t rs2) { emit({Op::Remu, rd, rs1, rs2, 0, 0}); }
    /** @} */

    /** @name CHERIoT extension @{ */
    void clc(uint8_t cd, uint8_t cs1, int32_t imm) { emit({Op::Clc, cd, cs1, 0, imm, 0}); }
    void csc(uint8_t cs2, uint8_t cs1, int32_t imm) { emit({Op::Csc, 0, cs1, cs2, imm, 0}); }
    void cgetperm(uint8_t rd, uint8_t cs1) { emit({Op::CGetPerm, rd, cs1, 0, 0, 0}); }
    void cgettype(uint8_t rd, uint8_t cs1) { emit({Op::CGetType, rd, cs1, 0, 0, 0}); }
    void cgetbase(uint8_t rd, uint8_t cs1) { emit({Op::CGetBase, rd, cs1, 0, 0, 0}); }
    void cgetlen(uint8_t rd, uint8_t cs1) { emit({Op::CGetLen, rd, cs1, 0, 0, 0}); }
    void cgettop(uint8_t rd, uint8_t cs1) { emit({Op::CGetTop, rd, cs1, 0, 0, 0}); }
    void cgettag(uint8_t rd, uint8_t cs1) { emit({Op::CGetTag, rd, cs1, 0, 0, 0}); }
    void cgetaddr(uint8_t rd, uint8_t cs1) { emit({Op::CGetAddr, rd, cs1, 0, 0, 0}); }
    void cseal(uint8_t cd, uint8_t cs1, uint8_t cs2) { emit({Op::CSeal, cd, cs1, cs2, 0, 0}); }
    void cunseal(uint8_t cd, uint8_t cs1, uint8_t cs2) { emit({Op::CUnseal, cd, cs1, cs2, 0, 0}); }
    void candperm(uint8_t cd, uint8_t cs1, uint8_t rs2) { emit({Op::CAndPerm, cd, cs1, rs2, 0, 0}); }
    void csetaddr(uint8_t cd, uint8_t cs1, uint8_t rs2) { emit({Op::CSetAddr, cd, cs1, rs2, 0, 0}); }
    void cincaddr(uint8_t cd, uint8_t cs1, uint8_t rs2) { emit({Op::CIncAddr, cd, cs1, rs2, 0, 0}); }
    void cincaddrimm(uint8_t cd, uint8_t cs1, int32_t imm) { emit({Op::CIncAddrImm, cd, cs1, 0, imm, 0}); }
    void csetbounds(uint8_t cd, uint8_t cs1, uint8_t rs2) { emit({Op::CSetBounds, cd, cs1, rs2, 0, 0}); }
    void csetboundsexact(uint8_t cd, uint8_t cs1, uint8_t rs2) { emit({Op::CSetBoundsExact, cd, cs1, rs2, 0, 0}); }
    void csetboundsimm(uint8_t cd, uint8_t cs1, int32_t imm) { emit({Op::CSetBoundsImm, cd, cs1, 0, imm, 0}); }
    void ctestsubset(uint8_t rd, uint8_t cs1, uint8_t cs2) { emit({Op::CTestSubset, rd, cs1, cs2, 0, 0}); }
    void csetequalexact(uint8_t rd, uint8_t cs1, uint8_t cs2) { emit({Op::CSetEqualExact, rd, cs1, cs2, 0, 0}); }
    void cmove(uint8_t cd, uint8_t cs1) { emit({Op::CMove, cd, cs1, 0, 0, 0}); }
    void ccleartag(uint8_t cd, uint8_t cs1) { emit({Op::CClearTag, cd, cs1, 0, 0, 0}); }
    void crrl(uint8_t rd, uint8_t rs1) { emit({Op::CRrl, rd, rs1, 0, 0, 0}); }
    void cram(uint8_t rd, uint8_t rs1) { emit({Op::CRam, rd, rs1, 0, 0, 0}); }
    void csealentry(uint8_t cd, uint8_t cs1, int32_t posture) { emit({Op::CSealEntry, cd, cs1, 0, posture, 0}); }
    void cspecialrw(uint8_t cd, Scr scr, uint8_t cs1)
    {
        emit({Op::CSpecialRw, cd, cs1, 0,
              static_cast<int32_t>(static_cast<uint8_t>(scr)), 0});
    }
    /** @} */

    /** @name Pseudo-instructions @{ */
    void nop() { addi(Zero, Zero, 0); }
    void mv(uint8_t rd, uint8_t rs1) { addi(rd, rs1, 0); }
    void li(uint8_t rd, int32_t value);
    void j(Label target) { jal(Zero, target); }
    void call(Label target) { jal(Ra, target); }
    void ret() { jalr(Zero, Ra, 0); }
    void beqz(uint8_t rs1, Label target) { beq(rs1, Zero, target); }
    void bnez(uint8_t rs1, Label target) { bne(rs1, Zero, target); }
    void blez(uint8_t rs1, Label target) { bge(Zero, rs1, target); }
    void bgtz(uint8_t rs1, Label target) { blt(Zero, rs1, target); }
    void neg(uint8_t rd, uint8_t rs1) { sub(rd, Zero, rs1); }
    void seqz(uint8_t rd, uint8_t rs1) { sltiu(rd, rs1, 1); }
    void snez(uint8_t rd, uint8_t rs1) { sltu(rd, Zero, rs1); }
    /** @} */

  private:
    void branch(Op op, uint8_t rs1, uint8_t rs2, Label target);

    struct Fixup
    {
        uint32_t wordIndex;
        Label label;
        Inst inst; ///< Re-encoded with the resolved offset at finish().
    };

    uint32_t base_;
    std::vector<uint32_t> words_;
    std::vector<int64_t> labels_; ///< -1 while unbound, else address.
    std::vector<Fixup> fixups_;
};

} // namespace cheriot::isa

#endif // CHERIOT_ISA_ASSEMBLER_H
