/**
 * @file
 * Instruction rendering for traces and test diagnostics.
 */

#include "isa/encoding.h"

#include <cstdio>

namespace cheriot::isa
{

std::string
disassemble(const Inst &inst, uint32_t pc)
{
    char buffer[96];
    const char *name = opName(inst.op);
    switch (inst.op) {
      case Op::Illegal:
        std::snprintf(buffer, sizeof(buffer), "illegal");
        break;
      case Op::Lui:
      case Op::Auipc:
        std::snprintf(buffer, sizeof(buffer), "%s %s, 0x%x", name,
                      regName(inst.rd),
                      static_cast<uint32_t>(inst.imm) >> 12);
        break;
      case Op::Jal:
        std::snprintf(buffer, sizeof(buffer), "%s %s, 0x%x", name,
                      regName(inst.rd), pc + inst.imm);
        break;
      case Op::Jalr:
        std::snprintf(buffer, sizeof(buffer), "%s %s, %d(%s)", name,
                      regName(inst.rd), inst.imm, regName(inst.rs1));
        break;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
        std::snprintf(buffer, sizeof(buffer), "%s %s, %s, 0x%x", name,
                      regName(inst.rs1), regName(inst.rs2), pc + inst.imm);
        break;
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
      case Op::Clc:
        std::snprintf(buffer, sizeof(buffer), "%s %s, %d(%s)", name,
                      regName(inst.rd), inst.imm, regName(inst.rs1));
        break;
      case Op::Sb: case Op::Sh: case Op::Sw: case Op::Csc:
        std::snprintf(buffer, sizeof(buffer), "%s %s, %d(%s)", name,
                      regName(inst.rs2), inst.imm, regName(inst.rs1));
        break;
      case Op::Addi: case Op::Slti: case Op::Sltiu: case Op::Xori:
      case Op::Ori: case Op::Andi: case Op::Slli: case Op::Srli:
      case Op::Srai: case Op::CIncAddrImm: case Op::CSetBoundsImm:
        std::snprintf(buffer, sizeof(buffer), "%s %s, %s, %d", name,
                      regName(inst.rd), regName(inst.rs1), inst.imm);
        break;
      case Op::Ecall: case Op::Ebreak: case Op::Mret:
        std::snprintf(buffer, sizeof(buffer), "%s", name);
        break;
      case Op::Csrrw: case Op::Csrrs: case Op::Csrrc:
        std::snprintf(buffer, sizeof(buffer), "%s %s, 0x%x, %s", name,
                      regName(inst.rd), inst.csr, regName(inst.rs1));
        break;
      case Op::Csrrwi: case Op::Csrrsi: case Op::Csrrci:
        std::snprintf(buffer, sizeof(buffer), "%s %s, 0x%x, %d", name,
                      regName(inst.rd), inst.csr, inst.imm);
        break;
      case Op::CGetPerm: case Op::CGetType: case Op::CGetBase:
      case Op::CGetLen: case Op::CGetTop: case Op::CGetTag:
      case Op::CGetAddr: case Op::CMove: case Op::CClearTag:
      case Op::CRrl: case Op::CRam:
        std::snprintf(buffer, sizeof(buffer), "%s %s, %s", name,
                      regName(inst.rd), regName(inst.rs1));
        break;
      case Op::CSpecialRw:
        std::snprintf(buffer, sizeof(buffer), "%s %s, scr%d, %s", name,
                      regName(inst.rd), inst.imm, regName(inst.rs1));
        break;
      case Op::CSealEntry:
        std::snprintf(buffer, sizeof(buffer), "%s %s, %s, posture=%d",
                      name, regName(inst.rd), regName(inst.rs1), inst.imm);
        break;
      default:
        std::snprintf(buffer, sizeof(buffer), "%s %s, %s, %s", name,
                      regName(inst.rd), regName(inst.rs1),
                      regName(inst.rs2));
        break;
    }
    return buffer;
}

} // namespace cheriot::isa
