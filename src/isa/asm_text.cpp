/**
 * @file
 * Textual assembly parser: the inverse of disassemble(). Accepts
 * exactly the rendering the disassembler emits (one instruction per
 * line, ABI register names, absolute branch/jump targets) so that
 * assemble -> encode -> decode -> disassemble -> reassemble round
 * trips are checkable across the whole instruction set.
 */

#include "isa/encoding.h"

#include <cctype>
#include <cstdlib>

namespace cheriot::isa
{

namespace
{

/** Split a line into the mnemonic and comma-separated operand texts,
 * unwrapping the "imm(reg)" memory-operand form into two fields. */
struct Tokens
{
    std::string mnemonic;
    std::vector<std::string> operands;
};

std::string
trim(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::optional<Tokens>
tokenize(const std::string &line)
{
    const std::string text = trim(line);
    if (text.empty()) {
        return std::nullopt;
    }
    Tokens tokens;
    size_t pos = 0;
    while (pos < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
    }
    tokens.mnemonic = text.substr(0, pos);
    std::string rest = trim(text.substr(pos));
    if (rest.empty()) {
        return tokens;
    }
    size_t start = 0;
    while (start <= rest.size()) {
        size_t comma = rest.find(',', start);
        std::string field = trim(
            comma == std::string::npos ? rest.substr(start)
                                       : rest.substr(start, comma - start));
        // "imm(reg)" splits into the immediate and the register.
        const size_t open = field.find('(');
        if (open != std::string::npos && field.back() == ')') {
            tokens.operands.push_back(trim(field.substr(0, open)));
            tokens.operands.push_back(trim(
                field.substr(open + 1, field.size() - open - 2)));
        } else if (!field.empty()) {
            tokens.operands.push_back(field);
        }
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    return tokens;
}

std::optional<uint8_t>
regFromName(const std::string &name)
{
    for (uint8_t i = 0; i < kNumRegs; ++i) {
        if (name == regName(i)) {
            return i;
        }
    }
    return std::nullopt;
}

std::optional<int64_t>
parseNumber(const std::string &text)
{
    if (text.empty()) {
        return std::nullopt;
    }
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 0);
    if (end == nullptr || *end != '\0') {
        return std::nullopt;
    }
    return value;
}

std::optional<Op>
opFromName(const std::string &name)
{
    if (name == "illegal") {
        return Op::Illegal;
    }
    for (Op op : allOps()) {
        if (name == opName(op)) {
            return op;
        }
    }
    return std::nullopt;
}

} // namespace

std::optional<Inst>
parseAssembly(const std::string &text, uint32_t pc)
{
    const auto tokens = tokenize(text);
    if (!tokens) {
        return std::nullopt;
    }
    const auto op = opFromName(tokens->mnemonic);
    if (!op) {
        return std::nullopt;
    }
    Inst inst;
    inst.op = *op;
    const auto &ops = tokens->operands;

    auto reg = [&](size_t index) -> std::optional<uint8_t> {
        return index < ops.size() ? regFromName(ops[index]) : std::nullopt;
    };
    auto num = [&](size_t index) -> std::optional<int64_t> {
        return index < ops.size() ? parseNumber(ops[index]) : std::nullopt;
    };

    switch (inst.op) {
      case Op::Illegal:
        return ops.empty() ? std::optional<Inst>(inst) : std::nullopt;

      case Op::Lui:
      case Op::Auipc: {
        const auto rd = reg(0);
        const auto imm = num(1);
        if (!rd || !imm || ops.size() != 2) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.imm =
            static_cast<int32_t>(static_cast<uint32_t>(*imm) << 12);
        return inst;
      }

      case Op::Jal: {
        const auto rd = reg(0);
        const auto target = num(1);
        if (!rd || !target || ops.size() != 2) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.imm = static_cast<int32_t>(
            static_cast<uint32_t>(*target) - pc);
        return inst;
      }

      case Op::Jalr:
      case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
      case Op::Clc: {
        const auto rd = reg(0);
        const auto imm = num(1);
        const auto rs1 = reg(2);
        if (!rd || !imm || !rs1 || ops.size() != 3) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.imm = static_cast<int32_t>(*imm);
        inst.rs1 = *rs1;
        return inst;
      }

      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu: {
        const auto rs1 = reg(0);
        const auto rs2 = reg(1);
        const auto target = num(2);
        if (!rs1 || !rs2 || !target || ops.size() != 3) {
            return std::nullopt;
        }
        inst.rs1 = *rs1;
        inst.rs2 = *rs2;
        inst.imm = static_cast<int32_t>(
            static_cast<uint32_t>(*target) - pc);
        return inst;
      }

      case Op::Sb: case Op::Sh: case Op::Sw: case Op::Csc: {
        const auto rs2 = reg(0);
        const auto imm = num(1);
        const auto rs1 = reg(2);
        if (!rs2 || !imm || !rs1 || ops.size() != 3) {
            return std::nullopt;
        }
        inst.rs2 = *rs2;
        inst.imm = static_cast<int32_t>(*imm);
        inst.rs1 = *rs1;
        return inst;
      }

      case Op::Addi: case Op::Slti: case Op::Sltiu: case Op::Xori:
      case Op::Ori: case Op::Andi: case Op::Slli: case Op::Srli:
      case Op::Srai: case Op::CIncAddrImm: case Op::CSetBoundsImm: {
        const auto rd = reg(0);
        const auto rs1 = reg(1);
        const auto imm = num(2);
        if (!rd || !rs1 || !imm || ops.size() != 3) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.rs1 = *rs1;
        inst.imm = static_cast<int32_t>(*imm);
        return inst;
      }

      case Op::Ecall: case Op::Ebreak: case Op::Mret:
        return ops.empty() ? std::optional<Inst>(inst) : std::nullopt;

      case Op::Csrrw: case Op::Csrrs: case Op::Csrrc: {
        const auto rd = reg(0);
        const auto csr = num(1);
        const auto rs1 = reg(2);
        if (!rd || !csr || !rs1 || ops.size() != 3) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.csr = static_cast<uint16_t>(*csr);
        inst.rs1 = *rs1;
        return inst;
      }

      case Op::Csrrwi: case Op::Csrrsi: case Op::Csrrci: {
        const auto rd = reg(0);
        const auto csr = num(1);
        const auto imm = num(2);
        if (!rd || !csr || !imm || ops.size() != 3) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.csr = static_cast<uint16_t>(*csr);
        inst.imm = static_cast<int32_t>(*imm);
        return inst;
      }

      case Op::CGetPerm: case Op::CGetType: case Op::CGetBase:
      case Op::CGetLen: case Op::CGetTop: case Op::CGetTag:
      case Op::CGetAddr: case Op::CMove: case Op::CClearTag:
      case Op::CRrl: case Op::CRam: {
        const auto rd = reg(0);
        const auto rs1 = reg(1);
        if (!rd || !rs1 || ops.size() != 2) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.rs1 = *rs1;
        return inst;
      }

      case Op::CSpecialRw: {
        // "cspecialrw rd, scrN, rs1"
        const auto rd = reg(0);
        const auto rs1 = reg(2);
        if (!rd || !rs1 || ops.size() != 3 ||
            ops[1].rfind("scr", 0) != 0) {
            return std::nullopt;
        }
        const auto scr = parseNumber(ops[1].substr(3));
        if (!scr) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.rs1 = *rs1;
        inst.imm = static_cast<int32_t>(*scr);
        return inst;
      }

      case Op::CSealEntry: {
        // "csealentry rd, rs1, posture=N"
        const auto rd = reg(0);
        const auto rs1 = reg(1);
        if (!rd || !rs1 || ops.size() != 3 ||
            ops[2].rfind("posture=", 0) != 0) {
            return std::nullopt;
        }
        const auto posture = parseNumber(ops[2].substr(8));
        if (!posture) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.rs1 = *rs1;
        inst.imm = static_cast<int32_t>(*posture);
        return inst;
      }

      default: {
        // R-type: "name rd, rs1, rs2".
        const auto rd = reg(0);
        const auto rs1 = reg(1);
        const auto rs2 = reg(2);
        if (!rd || !rs1 || !rs2 || ops.size() != 3) {
            return std::nullopt;
        }
        inst.rd = *rd;
        inst.rs1 = *rs1;
        inst.rs2 = *rs2;
        return inst;
      }
    }
}

} // namespace cheriot::isa
