/**
 * @file
 * CHERIoT RV32E instruction set: operations, formats, and binary
 * encoding.
 *
 * The base ISA is RV32EM (16 registers). The CHERIoT extension
 * follows the published encoding conventions where practical:
 * capability load/store reuse the RV64 LD/SD encodings (funct3 = 3 on
 * the LOAD/STORE major opcodes — free in RV32), and capability
 * manipulation lives on major opcode 0x5B with an R-type layout whose
 * funct7 selects the operation; funct7 = 0x7F selects two-operand
 * ops with the sub-operation in the rs2 field. Immediate-form
 * CIncAddr/CSetBounds use funct3 1 and 2 on the same major opcode.
 *
 * In CHERIoT's pure-capability mode every memory access and jump is
 * authorised by a capability register; there is no separate
 * integer-pointer addressing mode.
 */

#ifndef CHERIOT_ISA_ENCODING_H
#define CHERIOT_ISA_ENCODING_H

#include <cstdint>
#include <optional>
#include <string>

namespace cheriot::isa
{

/** Number of architectural registers (RV32E). */
constexpr unsigned kNumRegs = 16;

/** @name ABI register numbers @{ */
constexpr uint8_t Zero = 0; ///< c0: hard-wired null.
constexpr uint8_t Ra = 1;   ///< c1: return address (capability).
constexpr uint8_t Sp = 2;   ///< c2: stack pointer (capability).
constexpr uint8_t Gp = 3;   ///< c3: globals pointer (capability).
constexpr uint8_t Tp = 4;   ///< c4: thread pointer.
constexpr uint8_t T0 = 5;
constexpr uint8_t T1 = 6;
constexpr uint8_t T2 = 7;
constexpr uint8_t S0 = 8;
constexpr uint8_t S1 = 9;
constexpr uint8_t A0 = 10;
constexpr uint8_t A1 = 11;
constexpr uint8_t A2 = 12;
constexpr uint8_t A3 = 13;
constexpr uint8_t A4 = 14;
constexpr uint8_t A5 = 15;
/** @} */

/** Every operation the core implements. */
enum class Op : uint8_t
{
    Illegal,
    // RV32I
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Lbu, Lhu,
    Sb, Sh, Sw,
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Ecall, Ebreak, Mret,
    Csrrw, Csrrs, Csrrc, Csrrwi, Csrrsi, Csrrci,
    // RV32M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    // CHERIoT capability extension
    Clc, Csc,
    CGetPerm, CGetType, CGetBase, CGetLen, CGetTop, CGetTag, CGetAddr,
    CSeal, CUnseal, CAndPerm, CSetAddr, CIncAddr, CIncAddrImm,
    CSetBounds, CSetBoundsExact, CSetBoundsImm,
    CTestSubset, CSetEqualExact,
    CMove, CClearTag, CRrl, CRam,
    CSealEntry, ///< Mint a forward sentry; rs2 selects the posture.
    CSpecialRw, ///< Special capability register access; rs2 selects.
};

/** Special capability registers accessed via CSpecialRw. */
enum class Scr : uint8_t
{
    Mtcc = 28,     ///< Machine trap-vector code capability.
    Mtdc = 29,     ///< Machine trap data capability.
    MScratchC = 30,///< Machine scratch capability.
    Mepcc = 31,    ///< Machine exception PC capability.
};

/** @name CSR numbers @{ */
constexpr uint16_t kCsrMstatus = 0x300;
constexpr uint16_t kCsrMcause = 0x342;
constexpr uint16_t kCsrMtval = 0x343;
constexpr uint16_t kCsrMshwm = 0x7c0;  ///< Stack high-water mark (§5.2.1).
constexpr uint16_t kCsrMshwmb = 0x7c1; ///< Stack base register.
constexpr uint16_t kCsrMcycle = 0xb00;
constexpr uint16_t kCsrMcycleH = 0xb80;
/** @} */

/** A decoded (or to-be-encoded) instruction. */
struct Inst
{
    Op op = Op::Illegal;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;   ///< Sign-extended where the format is signed.
    uint16_t csr = 0;  ///< CSR number for Zicsr ops.

    bool operator==(const Inst &) const = default;
};

/**
 * Encode to the 32-bit instruction word.
 * Panics on malformed operands (out-of-range registers or immediates
 * that do not fit the format); the assembler validates before calling.
 */
uint32_t encode(const Inst &inst);

/**
 * Decode a 32-bit instruction word. Returns an Inst with
 * op == Op::Illegal for unrecognised encodings (the executor raises
 * an illegal-instruction trap).
 */
Inst decode(uint32_t word);

/** Mnemonic for an operation. */
const char *opName(Op op);

/** ABI name of register @p index ("zero", "ra", "sp", ...). */
const char *regName(uint8_t index);

/** Human-readable rendering of a decoded instruction. */
std::string disassemble(const Inst &inst, uint32_t pc = 0);

} // namespace cheriot::isa

#endif // CHERIOT_ISA_ENCODING_H
