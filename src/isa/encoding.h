/**
 * @file
 * CHERIoT RV32E instruction set: operations, formats, and binary
 * encoding.
 *
 * The base ISA is RV32EM (16 registers). The CHERIoT extension
 * follows the published encoding conventions where practical:
 * capability load/store reuse the RV64 LD/SD encodings (funct3 = 3 on
 * the LOAD/STORE major opcodes — free in RV32), and capability
 * manipulation lives on major opcode 0x5B with an R-type layout whose
 * funct7 selects the operation; funct7 = 0x7F selects two-operand
 * ops with the sub-operation in the rs2 field. Immediate-form
 * CIncAddr/CSetBounds use funct3 1 and 2 on the same major opcode.
 *
 * In CHERIoT's pure-capability mode every memory access and jump is
 * authorised by a capability register; there is no separate
 * integer-pointer addressing mode.
 */

#ifndef CHERIOT_ISA_ENCODING_H
#define CHERIOT_ISA_ENCODING_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cheriot::isa
{

/** Number of architectural registers (RV32E). */
constexpr unsigned kNumRegs = 16;

/** @name ABI register numbers @{ */
constexpr uint8_t Zero = 0; ///< c0: hard-wired null.
constexpr uint8_t Ra = 1;   ///< c1: return address (capability).
constexpr uint8_t Sp = 2;   ///< c2: stack pointer (capability).
constexpr uint8_t Gp = 3;   ///< c3: globals pointer (capability).
constexpr uint8_t Tp = 4;   ///< c4: thread pointer.
constexpr uint8_t T0 = 5;
constexpr uint8_t T1 = 6;
constexpr uint8_t T2 = 7;
constexpr uint8_t S0 = 8;
constexpr uint8_t S1 = 9;
constexpr uint8_t A0 = 10;
constexpr uint8_t A1 = 11;
constexpr uint8_t A2 = 12;
constexpr uint8_t A3 = 13;
constexpr uint8_t A4 = 14;
constexpr uint8_t A5 = 15;
/** @} */

/** Every operation the core implements. */
enum class Op : uint8_t
{
    Illegal,
    // RV32I
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Lbu, Lhu,
    Sb, Sh, Sw,
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Ecall, Ebreak, Mret,
    Csrrw, Csrrs, Csrrc, Csrrwi, Csrrsi, Csrrci,
    // RV32M
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    // CHERIoT capability extension
    Clc, Csc,
    CGetPerm, CGetType, CGetBase, CGetLen, CGetTop, CGetTag, CGetAddr,
    CSeal, CUnseal, CAndPerm, CSetAddr, CIncAddr, CIncAddrImm,
    CSetBounds, CSetBoundsExact, CSetBoundsImm,
    CTestSubset, CSetEqualExact,
    CMove, CClearTag, CRrl, CRam,
    CSealEntry, ///< Mint a forward sentry; rs2 selects the posture.
    CSpecialRw, ///< Special capability register access; rs2 selects.
};

/** Special capability registers accessed via CSpecialRw. */
enum class Scr : uint8_t
{
    Mtcc = 28,     ///< Machine trap-vector code capability.
    Mtdc = 29,     ///< Machine trap data capability.
    MScratchC = 30,///< Machine scratch capability.
    Mepcc = 31,    ///< Machine exception PC capability.
};

/** @name CSR numbers @{ */
constexpr uint16_t kCsrMstatus = 0x300;
constexpr uint16_t kCsrMcause = 0x342;
constexpr uint16_t kCsrMtval = 0x343;
constexpr uint16_t kCsrMshwm = 0x7c0;  ///< Stack high-water mark (§5.2.1).
constexpr uint16_t kCsrMshwmb = 0x7c1; ///< Stack base register.
constexpr uint16_t kCsrMcycle = 0xb00;
constexpr uint16_t kCsrMcycleH = 0xb80;
/** @} */

/** A decoded (or to-be-encoded) instruction. */
struct Inst
{
    Op op = Op::Illegal;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;   ///< Sign-extended where the format is signed.
    uint16_t csr = 0;  ///< CSR number for Zicsr ops.

    bool operator==(const Inst &) const = default;
};

/**
 * Encode to the 32-bit instruction word.
 * Panics on malformed operands (out-of-range registers or immediates
 * that do not fit the format); the assembler validates before calling.
 */
uint32_t encode(const Inst &inst);

/** Why a word failed to decode. */
enum class DecodeErrorKind : uint8_t
{
    None,               ///< The word decoded successfully.
    UnknownMajorOpcode, ///< No instruction uses this major opcode.
    ReservedFunct3,     ///< funct3 value reserved on this opcode.
    ReservedFunct7,     ///< funct7 value reserved on this opcode/funct3.
    ReservedSubOp,      ///< CHERI two-operand sub-op (rs2 slot) reserved.
    ReservedSystem,     ///< SYSTEM word is not ECALL/EBREAK/MRET.
    RegisterOutOfRange, ///< Register specifier >= 16 (RV32E).
};

/** Stable name of a decode-error kind ("reserved-funct3", ...). */
const char *decodeErrorKindName(DecodeErrorKind kind);

/**
 * Precise diagnosis of an undecodable word: which major opcode it
 * carried, which field was malformed, and that field's value.
 */
struct DecodeError
{
    DecodeErrorKind kind = DecodeErrorKind::None;
    uint8_t opcode = 0;     ///< Major opcode bits [6:0].
    const char *field = ""; ///< Offending field ("funct3", "rd", ...).
    uint32_t value = 0;     ///< The offending field's value.

    bool ok() const { return kind == DecodeErrorKind::None; }
    std::string toString() const;
};

/**
 * Decode a 32-bit instruction word. Returns an Inst with
 * op == Op::Illegal for unrecognised encodings (the executor raises
 * an illegal-instruction trap).
 */
Inst decode(uint32_t word);

/** As decode(word), filling @p error with a typed diagnosis when the
 * word does not decode (and clearing it when it does). */
Inst decode(uint32_t word, DecodeError *error);

/** Immediate shape of an operation (none, or which field format). */
enum class ImmKind : uint8_t
{
    None,    ///< No immediate operand.
    I12,     ///< 12-bit signed (loads, addi, jalr, cincaddrimm).
    U12,     ///< 12-bit zero-extended (csetboundsimm).
    S12,     ///< 12-bit signed store offset.
    B13,     ///< 13-bit even branch offset.
    U20,     ///< Upper-immediate (lui/auipcc; imm holds value << 12).
    J21,     ///< 21-bit even jump offset.
    Shamt,   ///< 5-bit shift amount.
    Csr5,    ///< 5-bit zero-extended CSR immediate.
    Scr,     ///< Special-capability-register index (0..31).
    Posture, ///< Sentry interrupt posture (0..2).
};

/**
 * Per-operation operand metadata: which register fields are live, how
 * operands flow (integer vs capability), and the immediate shape.
 * Drives the static capability-flow verifier and generic whole-ISA
 * enumeration (round-trip fuzzing) without per-op special cases.
 */
struct OpSummary
{
    Op op = Op::Illegal;
    bool readsRs1 = false;
    bool readsRs2 = false;
    bool writesRd = false;
    bool capSource = false; ///< rs1 is interpreted as a capability.
    bool capResult = false; ///< rd receives a capability (else integer).
    ImmKind immKind = ImmKind::None;
    bool usesCsr = false;   ///< Carries a 12-bit CSR number.
};

/** Metadata for @p op (Illegal yields an all-false summary). */
const OpSummary &summaryOf(Op op);

/** Every valid operation in a stable order (fuzz enumeration). */
const std::vector<Op> &allOps();

/**
 * Parse one line of disassembly (the exact format disassemble()
 * emits) back into an Inst. @p pc must be the instruction's address —
 * branch and jump targets are printed as absolute addresses and are
 * converted back to offsets. Returns nullopt on any syntax the
 * disassembler cannot have produced.
 */
std::optional<Inst> parseAssembly(const std::string &text, uint32_t pc);

/** Mnemonic for an operation. */
const char *opName(Op op);

/** ABI name of register @p index ("zero", "ra", "sp", ...). */
const char *regName(uint8_t index);

/** Human-readable rendering of a decoded instruction. */
std::string disassemble(const Inst &inst, uint32_t pc = 0);

} // namespace cheriot::isa

#endif // CHERIOT_ISA_ENCODING_H
