/**
 * @file
 * Binary instruction decoder. The inverse of encode(); unrecognised
 * words decode to Op::Illegal, which the executor turns into an
 * illegal-instruction trap. The two-argument overload additionally
 * reports a typed diagnosis (which field of which opcode was
 * reserved/malformed) for precise tooling and trap messages.
 */

#include "isa/encoding.h"

#include "util/bits.h"

namespace cheriot::isa
{

namespace
{

int32_t
immI(uint32_t word)
{
    return signExtend32(word >> 20, 12);
}

int32_t
immS(uint32_t word)
{
    const uint32_t imm = (bits(word, 25u, 7u) << 5) | bits(word, 7u, 5u);
    return signExtend32(imm, 12);
}

int32_t
immB(uint32_t word)
{
    const uint32_t imm = (bits(word, 31u, 1u) << 12) |
                         (bits(word, 7u, 1u) << 11) |
                         (bits(word, 25u, 6u) << 5) |
                         (bits(word, 8u, 4u) << 1);
    return signExtend32(imm, 13);
}

int32_t
immU(uint32_t word)
{
    return static_cast<int32_t>(word & 0xfffff000u);
}

int32_t
immJ(uint32_t word)
{
    const uint32_t imm = (bits(word, 31u, 1u) << 20) |
                         (bits(word, 12u, 8u) << 12) |
                         (bits(word, 20u, 1u) << 11) |
                         (bits(word, 21u, 10u) << 1);
    return signExtend32(imm, 21);
}

/** Collects the typed diagnosis for the failing path. */
struct ErrorSink
{
    DecodeError *error;
    uint8_t opcode;

    Inst fail(DecodeErrorKind kind, const char *field, uint32_t value)
    {
        if (error != nullptr) {
            error->kind = kind;
            error->opcode = opcode;
            error->field = field;
            error->value = value;
        }
        return Inst{};
    }

    Inst badReg(const char *field, uint32_t value)
    {
        return fail(DecodeErrorKind::RegisterOutOfRange, field, value);
    }
};

Inst
decodeCheri(uint32_t word, Inst inst, ErrorSink &sink)
{
    const uint32_t f3 = bits(word, 12u, 3u);
    const uint32_t f7 = bits(word, 25u, 7u);
    const uint32_t rs2Slot = bits(word, 20u, 5u);

    if (f3 == 1) {
        inst.op = Op::CIncAddrImm;
        inst.imm = immI(word);
        inst.rs2 = 0;
        return inst;
    }
    if (f3 == 2) {
        inst.op = Op::CSetBoundsImm;
        inst.imm = static_cast<int32_t>(word >> 20); // zero-extended
        inst.rs2 = 0;
        return inst;
    }
    if (f3 != 0) {
        return sink.fail(DecodeErrorKind::ReservedFunct3, "funct3", f3);
    }

    if (f7 == 0x7f) {
        // Two-operand: sub-operation in the rs2 slot.
        inst.rs2 = 0;
        switch (rs2Slot) {
          case 0x00: inst.op = Op::CGetPerm; return inst;
          case 0x01: inst.op = Op::CGetType; return inst;
          case 0x02: inst.op = Op::CGetBase; return inst;
          case 0x03: inst.op = Op::CGetLen; return inst;
          case 0x04: inst.op = Op::CGetTag; return inst;
          case 0x08: inst.op = Op::CRrl; return inst;
          case 0x09: inst.op = Op::CRam; return inst;
          case 0x0a: inst.op = Op::CMove; return inst;
          case 0x0b: inst.op = Op::CClearTag; return inst;
          case 0x0f: inst.op = Op::CGetAddr; return inst;
          case 0x18: inst.op = Op::CGetTop; return inst;
          default:
            return sink.fail(DecodeErrorKind::ReservedSubOp, "subop",
                             rs2Slot);
        }
    }

    // Remaining encodings are R-type: the rs2 slot names a register
    // (except CSpecialRw/CSealEntry, which carry a selector there).
    if (f7 != 0x01 && f7 != 0x12 && rs2Slot >= kNumRegs) {
        return sink.badReg("rs2", rs2Slot);
    }

    switch (f7) {
      case 0x01:
        inst.op = Op::CSpecialRw;
        inst.imm = static_cast<int32_t>(rs2Slot);
        inst.rs2 = 0;
        return inst;
      case 0x08: inst.op = Op::CSetBounds; return inst;
      case 0x09: inst.op = Op::CSetBoundsExact; return inst;
      case 0x0b: inst.op = Op::CSeal; return inst;
      case 0x0c: inst.op = Op::CUnseal; return inst;
      case 0x0d: inst.op = Op::CAndPerm; return inst;
      case 0x10: inst.op = Op::CSetAddr; return inst;
      case 0x11: inst.op = Op::CIncAddr; return inst;
      case 0x12:
        if (rs2Slot > 2) {
            // Only the three interrupt postures are defined; a lax
            // decode here would let makeSentry mint arbitrary otypes.
            return sink.fail(DecodeErrorKind::ReservedSubOp, "posture",
                             rs2Slot);
        }
        inst.op = Op::CSealEntry;
        inst.imm = static_cast<int32_t>(rs2Slot);
        inst.rs2 = 0;
        return inst;
      case 0x20: inst.op = Op::CTestSubset; return inst;
      case 0x21: inst.op = Op::CSetEqualExact; return inst;
      default:
        return sink.fail(DecodeErrorKind::ReservedFunct7, "funct7", f7);
    }
}

} // namespace

Inst
decode(uint32_t word, DecodeError *error)
{
    if (error != nullptr) {
        *error = DecodeError{};
    }
    Inst inst;
    inst.rd = static_cast<uint8_t>(bits(word, 7u, 5u));
    inst.rs1 = static_cast<uint8_t>(bits(word, 15u, 5u));
    inst.rs2 = static_cast<uint8_t>(bits(word, 20u, 5u));
    const uint32_t opcode = bits(word, 0u, 7u);
    const uint32_t f3 = bits(word, 12u, 3u);
    const uint32_t f7 = bits(word, 25u, 7u);
    ErrorSink sink{error, static_cast<uint8_t>(opcode)};

    // RV32E register-range checks happen per-format below: CSR-
    // immediate and CHERI sub-op encodings reuse the rs1/rs2 slots for
    // non-register payloads, so only genuine register fields are
    // flagged.
    switch (opcode) {
      case 0x37:
        inst.op = Op::Lui;
        inst.imm = immU(word);
        inst.rs1 = 0;
        inst.rs2 = 0;
        return inst.rd < kNumRegs ? inst : sink.badReg("rd", inst.rd);
      case 0x17:
        inst.op = Op::Auipc;
        inst.imm = immU(word);
        inst.rs1 = 0;
        inst.rs2 = 0;
        return inst.rd < kNumRegs ? inst : sink.badReg("rd", inst.rd);
      case 0x6f:
        inst.op = Op::Jal;
        inst.imm = immJ(word);
        inst.rs1 = 0;
        inst.rs2 = 0;
        return inst.rd < kNumRegs ? inst : sink.badReg("rd", inst.rd);
      case 0x67:
        if (f3 != 0) {
            return sink.fail(DecodeErrorKind::ReservedFunct3, "funct3",
                             f3);
        }
        inst.op = Op::Jalr;
        inst.imm = immI(word);
        inst.rs2 = 0;
        if (inst.rd >= kNumRegs) {
            return sink.badReg("rd", inst.rd);
        }
        if (inst.rs1 >= kNumRegs) {
            return sink.badReg("rs1", inst.rs1);
        }
        return inst;
      case 0x63: {
        static constexpr Op kBranches[8] = {Op::Beq, Op::Bne, Op::Illegal,
                                            Op::Illegal, Op::Blt, Op::Bge,
                                            Op::Bltu, Op::Bgeu};
        inst.op = kBranches[f3];
        inst.imm = immB(word);
        inst.rd = 0;
        if (inst.op == Op::Illegal) {
            return sink.fail(DecodeErrorKind::ReservedFunct3, "funct3",
                             f3);
        }
        if (inst.rs1 >= kNumRegs) {
            return sink.badReg("rs1", inst.rs1);
        }
        if (inst.rs2 >= kNumRegs) {
            return sink.badReg("rs2", inst.rs2);
        }
        return inst;
      }
      case 0x03: {
        static constexpr Op kLoads[8] = {Op::Lb, Op::Lh, Op::Lw, Op::Clc,
                                         Op::Lbu, Op::Lhu, Op::Illegal,
                                         Op::Illegal};
        inst.op = kLoads[f3];
        inst.imm = immI(word);
        inst.rs2 = 0;
        if (inst.op == Op::Illegal) {
            return sink.fail(DecodeErrorKind::ReservedFunct3, "funct3",
                             f3);
        }
        if (inst.rd >= kNumRegs) {
            return sink.badReg("rd", inst.rd);
        }
        if (inst.rs1 >= kNumRegs) {
            return sink.badReg("rs1", inst.rs1);
        }
        return inst;
      }
      case 0x23: {
        static constexpr Op kStores[8] = {Op::Sb, Op::Sh, Op::Sw, Op::Csc,
                                          Op::Illegal, Op::Illegal,
                                          Op::Illegal, Op::Illegal};
        inst.op = kStores[f3];
        inst.imm = immS(word);
        inst.rd = 0;
        if (inst.op == Op::Illegal) {
            return sink.fail(DecodeErrorKind::ReservedFunct3, "funct3",
                             f3);
        }
        if (inst.rs1 >= kNumRegs) {
            return sink.badReg("rs1", inst.rs1);
        }
        if (inst.rs2 >= kNumRegs) {
            return sink.badReg("rs2", inst.rs2);
        }
        return inst;
      }
      case 0x13: {
        inst.rs2 = 0;
        if (inst.rd >= kNumRegs) {
            return sink.badReg("rd", inst.rd);
        }
        if (inst.rs1 >= kNumRegs) {
            return sink.badReg("rs1", inst.rs1);
        }
        switch (f3) {
          case 0: inst.op = Op::Addi; inst.imm = immI(word); return inst;
          case 1:
            if (f7 != 0) {
                return sink.fail(DecodeErrorKind::ReservedFunct7,
                                 "funct7", f7);
            }
            inst.op = Op::Slli;
            inst.imm = static_cast<int32_t>(bits(word, 20u, 5u));
            return inst;
          case 2: inst.op = Op::Slti; inst.imm = immI(word); return inst;
          case 3: inst.op = Op::Sltiu; inst.imm = immI(word); return inst;
          case 4: inst.op = Op::Xori; inst.imm = immI(word); return inst;
          case 5:
            if (f7 == 0x00) {
                inst.op = Op::Srli;
            } else if (f7 == 0x20) {
                inst.op = Op::Srai;
            } else {
                return sink.fail(DecodeErrorKind::ReservedFunct7,
                                 "funct7", f7);
            }
            inst.imm = static_cast<int32_t>(bits(word, 20u, 5u));
            return inst;
          case 6: inst.op = Op::Ori; inst.imm = immI(word); return inst;
          case 7: inst.op = Op::Andi; inst.imm = immI(word); return inst;
        }
        return sink.fail(DecodeErrorKind::ReservedFunct3, "funct3", f3);
      }
      case 0x33: {
        if (inst.rd >= kNumRegs) {
            return sink.badReg("rd", inst.rd);
        }
        if (inst.rs1 >= kNumRegs) {
            return sink.badReg("rs1", inst.rs1);
        }
        if (inst.rs2 >= kNumRegs) {
            return sink.badReg("rs2", inst.rs2);
        }
        if (f7 == 0x00) {
            static constexpr Op kArith[8] = {Op::Add, Op::Sll, Op::Slt,
                                             Op::Sltu, Op::Xor, Op::Srl,
                                             Op::Or, Op::And};
            inst.op = kArith[f3];
            return inst;
        }
        if (f7 == 0x20) {
            if (f3 == 0) {
                inst.op = Op::Sub;
                return inst;
            }
            if (f3 == 5) {
                inst.op = Op::Sra;
                return inst;
            }
            return sink.fail(DecodeErrorKind::ReservedFunct3, "funct3",
                             f3);
        }
        if (f7 == 0x01) {
            static constexpr Op kMulDiv[8] = {Op::Mul, Op::Mulh, Op::Mulhsu,
                                              Op::Mulhu, Op::Div, Op::Divu,
                                              Op::Rem, Op::Remu};
            inst.op = kMulDiv[f3];
            return inst;
        }
        return sink.fail(DecodeErrorKind::ReservedFunct7, "funct7", f7);
      }
      case 0x73: {
        if (f3 == 0) {
            // Fixed-format words: the register slots carry funct12
            // payload, not operands — zero them so the decoded Inst
            // is the canonical (assembler-produced) form.
            inst.rd = 0;
            inst.rs1 = 0;
            inst.rs2 = 0;
            switch (word) {
              case 0x00000073: inst.op = Op::Ecall; return inst;
              case 0x00100073: inst.op = Op::Ebreak; return inst;
              case 0x30200073: inst.op = Op::Mret; return inst;
              default:
                return sink.fail(DecodeErrorKind::ReservedSystem,
                                 "funct12", word >> 20);
            }
        }
        inst.csr = static_cast<uint16_t>(word >> 20);
        inst.rs2 = 0;
        if (inst.rd >= kNumRegs) {
            return sink.badReg("rd", inst.rd);
        }
        switch (f3) {
          case 1: inst.op = Op::Csrrw; break;
          case 2: inst.op = Op::Csrrs; break;
          case 3: inst.op = Op::Csrrc; break;
          case 5: inst.op = Op::Csrrwi; break;
          case 6: inst.op = Op::Csrrsi; break;
          case 7: inst.op = Op::Csrrci; break;
          default:
            return sink.fail(DecodeErrorKind::ReservedFunct3, "funct3",
                             f3);
        }
        if (f3 >= 5) {
            // Immediate forms carry a 5-bit immediate in the rs1 slot.
            inst.imm = inst.rs1;
            inst.rs1 = 0;
        } else if (inst.rs1 >= kNumRegs) {
            return sink.badReg("rs1", inst.rs1);
        }
        return inst;
      }
      case 0x5b:
        if (inst.rd >= kNumRegs) {
            return sink.badReg("rd", inst.rd);
        }
        if (inst.rs1 >= kNumRegs) {
            return sink.badReg("rs1", inst.rs1);
        }
        return decodeCheri(word, inst, sink);
      default:
        return sink.fail(DecodeErrorKind::UnknownMajorOpcode, "opcode",
                         opcode);
    }
}

Inst
decode(uint32_t word)
{
    return decode(word, nullptr);
}

} // namespace cheriot::isa
