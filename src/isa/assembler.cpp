#include "isa/assembler.h"

#include "util/log.h"

namespace cheriot::isa
{

Assembler::Label
Assembler::newLabel()
{
    labels_.push_back(-1);
    return static_cast<Label>(labels_.size() - 1);
}

void
Assembler::bind(Label label)
{
    if (label >= labels_.size()) {
        panic("assembler: bind of unknown label %u", label);
    }
    if (labels_[label] != -1) {
        panic("assembler: label %u bound twice", label);
    }
    labels_[label] = pc();
}

Assembler::Label
Assembler::here()
{
    const Label label = newLabel();
    bind(label);
    return label;
}

void
Assembler::emit(const Inst &inst)
{
    words_.push_back(encode(inst));
}

void
Assembler::word(uint32_t value)
{
    words_.push_back(value);
}

void
Assembler::jal(uint8_t rd, Label target)
{
    if (target >= labels_.size()) {
        panic("assembler: jal to unknown label %u", target);
    }
    Inst inst{Op::Jal, rd, 0, 0, 0, 0};
    if (labels_[target] != -1) {
        inst.imm = static_cast<int32_t>(labels_[target] - pc());
        emit(inst);
        return;
    }
    fixups_.push_back(
        {static_cast<uint32_t>(words_.size()), target, inst});
    words_.push_back(0); // Placeholder patched in finish().
}

void
Assembler::branch(Op op, uint8_t rs1, uint8_t rs2, Label target)
{
    if (target >= labels_.size()) {
        panic("assembler: branch to unknown label %u", target);
    }
    Inst inst{op, 0, rs1, rs2, 0, 0};
    if (labels_[target] != -1) {
        inst.imm = static_cast<int32_t>(labels_[target] - pc());
        emit(inst);
        return;
    }
    fixups_.push_back(
        {static_cast<uint32_t>(words_.size()), target, inst});
    words_.push_back(0);
}

void
Assembler::li(uint8_t rd, int32_t value)
{
    if (value >= -2048 && value < 2048) {
        addi(rd, Zero, value);
        return;
    }
    // lui + addi; correct for the sign extension of the low half.
    int32_t hi = (value + 0x800) >> 12;
    int32_t lo = value - (hi << 12);
    lui(rd, hi & 0xfffff);
    if (lo != 0) {
        addi(rd, rd, lo);
    }
}

std::vector<uint32_t>
Assembler::finish()
{
    for (const Fixup &fixup : fixups_) {
        if (labels_[fixup.label] == -1) {
            panic("assembler: label %u never bound", fixup.label);
        }
        Inst inst = fixup.inst;
        const uint32_t instAddr = base_ + fixup.wordIndex * 4;
        inst.imm = static_cast<int32_t>(labels_[fixup.label] - instAddr);
        words_[fixup.wordIndex] = encode(inst);
    }
    fixups_.clear();
    return words_;
}

} // namespace cheriot::isa
