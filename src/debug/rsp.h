/**
 * @file
 * GDB Remote Serial Protocol framing.
 *
 * The wire format is `$<payload>#<2-hex-digit checksum>` where the
 * checksum is the modulo-256 sum of the payload bytes, acknowledged
 * with `+` (good) or `-` (resend). Payload bytes `$`, `#`, `}` and
 * `*` are escaped as `}` followed by the byte XOR 0x20. A single
 * `0x03` byte outside any packet is the interrupt request (^C).
 *
 * The framer is a byte-at-a-time state machine deliberately tolerant
 * of garbage: anything outside `$...#xx` is dropped (except `0x03`),
 * a bad checksum yields a Nak event and the packet is discarded, and
 * a payload longer than the configured bound is discarded without
 * ever growing the buffer past the bound — a malformed or hostile
 * client can never crash or balloon the stub.
 */

#ifndef CHERIOT_DEBUG_RSP_H
#define CHERIOT_DEBUG_RSP_H

#include <cstdint>
#include <string>
#include <vector>

namespace cheriot::debug
{

/** Modulo-256 sum of @p payload (the RSP checksum). */
uint8_t rspChecksum(const std::string &payload);

/** Wrap @p payload as `$...#xx`, escaping `$ # } *`. */
std::string rspFrame(const std::string &payload);

/** Escape one payload for transmission (no framing). */
std::string rspEscape(const std::string &payload);

/** @name Hex helpers (RSP uses lowercase hex throughout) @{ */
std::string toHex(const uint8_t *data, size_t size);
std::string toHex(const std::string &data);
/** Little-endian hex image of @p value over @p bytes bytes. */
std::string hexLe(uint64_t value, unsigned bytes);
/** Parse hex; false on any non-hex character or empty input. */
bool parseHex(const std::string &text, uint64_t *out);
/** Parse pairs of hex digits into bytes; false on odd/garbage. */
bool parseHexBytes(const std::string &text, std::vector<uint8_t> *out);
/** @} */

/** One event produced by feeding bytes to the framer. */
struct RspEvent
{
    enum class Kind : uint8_t
    {
        Packet,    ///< A well-formed packet; payload is unescaped.
        Nak,       ///< Bad checksum or oversized packet: send `-`.
        Interrupt, ///< 0x03 outside a packet (^C).
        Ack,       ///< `+` received (informational).
        ResendReq, ///< `-` received: retransmit the last reply.
    };
    Kind kind;
    std::string payload;
};

class RspFramer
{
  public:
    /** @param maxPayload discard bound for a single packet. */
    explicit RspFramer(size_t maxPayload = 1u << 16)
        : maxPayload_(maxPayload)
    {}

    /** Feed raw bytes; returns the events they complete, in order. */
    std::vector<RspEvent> feed(const uint8_t *data, size_t size);

  private:
    enum class State : uint8_t
    {
        Idle,     ///< Outside a packet.
        Payload,  ///< Between `$` and `#`.
        Check1,   ///< First checksum digit.
        Check2,   ///< Second checksum digit.
        Overrun,  ///< Oversized payload: discarding until `#xx`.
    };

    size_t maxPayload_;
    State state_ = State::Idle;
    bool escaped_ = false;
    bool overrun_ = false;
    std::string payload_;
    uint8_t sum_ = 0;
    uint8_t checkHigh_ = 0;
};

} // namespace cheriot::debug

#endif // CHERIOT_DEBUG_RSP_H
