#include "debug/gdb_socket.h"

#include "util/log.h"

#include <arpa/inet.h>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cheriot::debug
{

bool
GdbSocket::sendAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + sent, bytes.size() - sent);
        if (n <= 0) {
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
GdbSocket::pollInterrupt(int fd)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 0) <= 0 || (pfd.revents & POLLIN) == 0) {
        return false;
    }
    char buf[256];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
        return false;
    }
    bool interrupted = false;
    for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == '\x03') {
            interrupted = true;
        } else {
            // Anything else read mid-run is replayed to the main
            // loop once the resume returns.
            pending_ += buf[i];
        }
    }
    return interrupted;
}

uint64_t
GdbSocket::serveFd(int fd)
{
    server_.setInterruptPoll([this, fd] { return pollInterrupt(fd); });
    uint64_t packets = 0;
    bool done = false;
    while (!done) {
        std::string chunk;
        if (!pending_.empty()) {
            chunk.swap(pending_);
        } else {
            char buf[4096];
            const ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n <= 0) {
                break;
            }
            chunk.assign(buf, static_cast<size_t>(n));
        }
        const auto events = framer_.feed(
            reinterpret_cast<const uint8_t *>(chunk.data()),
            chunk.size());
        for (const RspEvent &event : events) {
            if (done) {
                break;
            }
            switch (event.kind) {
              case RspEvent::Kind::Packet: {
                if (!server_.noAckMode()) {
                    sendAll(fd, "+");
                }
                const std::string reply =
                    server_.handlePacket(event.payload);
                lastReply_ = rspFrame(reply);
                if (!sendAll(fd, lastReply_)) {
                    done = true;
                    break;
                }
                packets++;
                if (server_.detached()) {
                    done = true;
                }
                break;
              }
              case RspEvent::Kind::Nak:
                sendAll(fd, "-");
                break;
              case RspEvent::Kind::Interrupt:
                // ^C between packets: pre-arm the interrupt so the
                // next resume returns immediately.
                server_.runControl().requestInterrupt();
                break;
              case RspEvent::Kind::ResendReq:
                if (!lastReply_.empty() &&
                    !sendAll(fd, lastReply_)) {
                    done = true;
                }
                break;
              case RspEvent::Kind::Ack:
                break;
            }
        }
    }
    server_.setInterruptPoll(nullptr);
    return packets;
}

bool
GdbSocket::serveStopped()
{
    while (true) {
        std::string chunk;
        if (!pending_.empty()) {
            chunk.swap(pending_);
        } else {
            char buf[4096];
            const ssize_t n = ::read(sessionFd_, buf, sizeof(buf));
            if (n <= 0) {
                sessionDone_ = true;
                return false;
            }
            chunk.assign(buf, static_cast<size_t>(n));
        }
        const auto events = framer_.feed(
            reinterpret_cast<const uint8_t *>(chunk.data()),
            chunk.size());
        for (const RspEvent &event : events) {
            switch (event.kind) {
              case RspEvent::Kind::Packet: {
                if (!server_.noAckMode()) {
                    sendAll(sessionFd_, "+");
                }
                const std::string reply =
                    server_.handlePacket(event.payload);
                if (server_.resumeDeferred()) {
                    // `c`/`s`: no reply yet — the harness runs, and
                    // pump() sends the stop reply when it pauses.
                    server_.clearResumeDeferred();
                    sessionRunning_ = true;
                    return true;
                }
                lastReply_ = rspFrame(reply);
                if (!sendAll(sessionFd_, lastReply_) ||
                    server_.detached()) {
                    sessionDone_ = true;
                    return false;
                }
                break;
              }
              case RspEvent::Kind::Nak:
                sendAll(sessionFd_, "-");
                break;
              case RspEvent::Kind::Interrupt:
                // ^C while already stopped: nothing to stop.
                break;
              case RspEvent::Kind::ResendReq:
                if (!lastReply_.empty() &&
                    !sendAll(sessionFd_, lastReply_)) {
                    sessionDone_ = true;
                    return false;
                }
                break;
              case RspEvent::Kind::Ack:
                break;
            }
        }
    }
}

bool
GdbSocket::attach(int fd)
{
    sessionFd_ = fd;
    sessionDone_ = false;
    sessionRunning_ = false;
    return serveStopped();
}

void
GdbSocket::pump()
{
    if (!sessionActive() || !sessionRunning_) {
        return;
    }
    RunControl &rc = server_.runControl();
    if (!rc.stopPending() && pollInterrupt(sessionFd_)) {
        server_.interruptStop();
    }
    if (!rc.stopPending()) {
        return;
    }
    sessionRunning_ = false;
    lastReply_ = rspFrame(server_.stopReply());
    if (!sendAll(sessionFd_, lastReply_)) {
        sessionDone_ = true;
        return;
    }
    serveStopped();
}

void
GdbSocket::finishSession(uint8_t exitCode)
{
    if (sessionActive() && sessionRunning_) {
        char reply[8];
        std::snprintf(reply, sizeof(reply), "W%02x", exitCode);
        sendAll(sessionFd_, rspFrame(reply));
    }
    sessionDone_ = true;
    sessionFd_ = -1;
}

int
GdbSocket::acceptTcp(uint16_t port, uint16_t *boundPort)
{
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        return -1;
    }
    const int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listener, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listener, 1) != 0) {
        ::close(listener);
        return -1;
    }
    socklen_t addrLen = sizeof(addr);
    if (::getsockname(listener,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      &addrLen) == 0 &&
        boundPort != nullptr) {
        *boundPort = ntohs(addr.sin_port);
    }
    inform("gdb stub: listening on 127.0.0.1:%u",
           ntohs(addr.sin_port));
    const int client = ::accept(listener, nullptr, nullptr);
    ::close(listener);
    if (client >= 0) {
        inform("gdb stub: client attached");
    }
    return client;
}

bool
GdbSocket::listenTcp(uint16_t port, uint16_t *boundPort)
{
    const int client = acceptTcp(port, boundPort);
    if (client < 0) {
        return false;
    }
    serveFd(client);
    ::close(client);
    inform("gdb stub: client detached");
    return true;
}

} // namespace cheriot::debug
