#include "debug/rsp.h"

#include <cstdio>

namespace cheriot::debug
{

namespace
{

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9') {
        return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
    }
    return -1;
}

constexpr char kHexDigits[] = "0123456789abcdef";

bool
needsEscape(char c)
{
    return c == '$' || c == '#' || c == '}' || c == '*';
}

} // namespace

std::string
rspEscape(const std::string &payload)
{
    std::string out;
    out.reserve(payload.size());
    for (char c : payload) {
        if (needsEscape(c)) {
            out.push_back('}');
            out.push_back(static_cast<char>(c ^ 0x20));
        } else {
            out.push_back(c);
        }
    }
    return out;
}

uint8_t
rspChecksum(const std::string &payload)
{
    uint8_t sum = 0;
    for (char c : payload) {
        sum = static_cast<uint8_t>(sum + static_cast<uint8_t>(c));
    }
    return sum;
}

std::string
rspFrame(const std::string &payload)
{
    const std::string escaped = rspEscape(payload);
    std::string out;
    out.reserve(escaped.size() + 4);
    out.push_back('$');
    out += escaped;
    out.push_back('#');
    const uint8_t sum = rspChecksum(escaped);
    out.push_back(kHexDigits[sum >> 4]);
    out.push_back(kHexDigits[sum & 0xf]);
    return out;
}

std::string
toHex(const uint8_t *data, size_t size)
{
    std::string out;
    out.reserve(size * 2);
    for (size_t i = 0; i < size; ++i) {
        out.push_back(kHexDigits[data[i] >> 4]);
        out.push_back(kHexDigits[data[i] & 0xf]);
    }
    return out;
}

std::string
toHex(const std::string &data)
{
    return toHex(reinterpret_cast<const uint8_t *>(data.data()),
                 data.size());
}

std::string
hexLe(uint64_t value, unsigned bytes)
{
    std::string out;
    out.reserve(bytes * 2);
    for (unsigned i = 0; i < bytes; ++i) {
        const uint8_t b = static_cast<uint8_t>(value >> (8 * i));
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0xf]);
    }
    return out;
}

bool
parseHex(const std::string &text, uint64_t *out)
{
    if (text.empty() || text.size() > 16) {
        return false;
    }
    uint64_t value = 0;
    for (char c : text) {
        const int digit = hexDigit(c);
        if (digit < 0) {
            return false;
        }
        value = (value << 4) | static_cast<uint64_t>(digit);
    }
    *out = value;
    return true;
}

bool
parseHexBytes(const std::string &text, std::vector<uint8_t> *out)
{
    if (text.size() % 2 != 0) {
        return false;
    }
    out->clear();
    out->reserve(text.size() / 2);
    for (size_t i = 0; i < text.size(); i += 2) {
        const int hi = hexDigit(text[i]);
        const int lo = hexDigit(text[i + 1]);
        if (hi < 0 || lo < 0) {
            return false;
        }
        out->push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return true;
}

std::vector<RspEvent>
RspFramer::feed(const uint8_t *data, size_t size)
{
    std::vector<RspEvent> events;
    for (size_t i = 0; i < size; ++i) {
        const uint8_t byte = data[i];
        switch (state_) {
          case State::Idle:
            if (byte == '$') {
                state_ = State::Payload;
                payload_.clear();
                sum_ = 0;
                escaped_ = false;
                overrun_ = false;
            } else if (byte == 0x03) {
                events.push_back({RspEvent::Kind::Interrupt, {}});
            } else if (byte == '+') {
                events.push_back({RspEvent::Kind::Ack, {}});
            } else if (byte == '-') {
                events.push_back({RspEvent::Kind::ResendReq, {}});
            }
            // Anything else between packets is line noise; drop it.
            break;

          case State::Payload:
            if (byte == '#') {
                state_ = State::Check1;
                break;
            }
            if (byte == '$') {
                // A '$' mid-packet means the previous packet was
                // truncated; abandon it and start over.
                payload_.clear();
                sum_ = 0;
                escaped_ = false;
                break;
            }
            // The checksum covers the *wire* bytes, escapes included.
            sum_ = static_cast<uint8_t>(sum_ + byte);
            if (escaped_) {
                payload_.push_back(static_cast<char>(byte ^ 0x20));
                escaped_ = false;
            } else if (byte == '}') {
                escaped_ = true;
            } else {
                payload_.push_back(static_cast<char>(byte));
            }
            if (payload_.size() > maxPayload_) {
                state_ = State::Overrun;
                overrun_ = true;
                payload_.clear();
            }
            break;

          case State::Check1: {
            const int digit = hexDigit(static_cast<char>(byte));
            if (digit < 0) {
                events.push_back({RspEvent::Kind::Nak, {}});
                state_ = State::Idle;
                break;
            }
            checkHigh_ = static_cast<uint8_t>(digit);
            state_ = State::Check2;
            break;
          }

          case State::Check2: {
            const int digit = hexDigit(static_cast<char>(byte));
            state_ = State::Idle;
            if (digit < 0) {
                events.push_back({RspEvent::Kind::Nak, {}});
                break;
            }
            const uint8_t expect =
                static_cast<uint8_t>((checkHigh_ << 4) | digit);
            if (overrun_ || expect != sum_ || escaped_) {
                // Oversized, wrong checksum, or ended mid-escape.
                overrun_ = false;
                events.push_back({RspEvent::Kind::Nak, {}});
                break;
            }
            events.push_back({RspEvent::Kind::Packet, payload_});
            break;
          }

          case State::Overrun:
            // Swallow until the terminator; overrun_ forces the Nak.
            if (byte == '#') {
                state_ = State::Check1;
            }
            break;
        }
    }
    return events;
}

} // namespace cheriot::debug
