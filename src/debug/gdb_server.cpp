#include "debug/gdb_server.h"

#include "cap/permissions.h"
#include "debug/rsp.h"
#include "isa/encoding.h"
#include "rtos/kernel.h"
#include "sim/machine.h"

#include <cstdio>

namespace cheriot::debug
{

using cap::Capability;

namespace
{

/** qXfer window: 'l' + final chunk, or 'm' + more-to-come chunk. */
std::string
xferSlice(const std::string &doc, uint64_t offset, uint64_t length)
{
    if (offset >= doc.size()) {
        return "l";
    }
    const std::string chunk =
        doc.substr(static_cast<size_t>(offset),
                   static_cast<size_t>(length));
    const bool last = offset + chunk.size() >= doc.size();
    return (last ? "l" : "m") + chunk;
}

std::string
hex32(uint32_t value)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", value);
    return buf;
}

} // namespace

GdbServer::GdbServer(sim::Machine &machine, rtos::Kernel *kernel)
    : machine_(machine), kernel_(kernel)
{
    machine_.setRunControl(&rc_);
}

GdbServer::~GdbServer()
{
    if (machine_.runControlHook() == &rc_) {
        machine_.setRunControl(nullptr);
    }
}

uint32_t
GdbServer::ctags() const
{
    uint32_t tags = 0;
    for (unsigned i = 0; i < isa::kNumRegs; ++i) {
        if (machine_.readReg(i).tag()) {
            tags |= 1u << i;
        }
    }
    if (machine_.pcc().tag()) {
        tags |= 1u << kPccRegnum;
    }
    return tags;
}

std::string
GdbServer::readRegister(unsigned regnum) const
{
    if (regnum < isa::kNumRegs) {
        return hexLe(machine_.readReg(regnum).toBits(), 8);
    }
    switch (regnum) {
      case kPccRegnum:
        return hexLe(machine_.pcc().toBits(), 8);
      case kCtagsRegnum:
        return hexLe(ctags(), 4);
      case kMcauseRegnum:
        return hexLe(const_cast<sim::Machine &>(machine_).csrs().mcause,
                     4);
      case kMtvalRegnum:
        return hexLe(const_cast<sim::Machine &>(machine_).csrs().mtval,
                     4);
      default:
        return "";
    }
}

bool
GdbServer::writeRegister(unsigned regnum, uint64_t value)
{
    // The guarded write rule for capability-bearing registers: an
    // address-only change rides Capability::withAddress (metadata and
    // tag survive, modulo the sealed guard); anything that edits
    // metadata lands *untagged*. The debugger can inspect and move
    // capabilities but never forge one.
    const auto guardedWrite = [&](const Capability &current) {
        if (value == current.toBits() && current.tag()) {
            return current;
        }
        if ((value >> 32) == (current.toBits() >> 32)) {
            return current.withAddress(static_cast<uint32_t>(value));
        }
        return Capability::fromBits(value, false);
    };

    if (regnum < isa::kNumRegs) {
        machine_.writeReg(regnum, guardedWrite(machine_.readReg(regnum)));
        return true;
    }
    switch (regnum) {
      case kPccRegnum:
        machine_.setPcc(guardedWrite(machine_.pcc()));
        return true;
      case kCtagsRegnum:
        // Tag writes only ever *clear*: 0-bits invalidate, 1-bits
        // cannot conjure validity.
        for (unsigned i = 0; i < isa::kNumRegs; ++i) {
            const Capability reg = machine_.readReg(i);
            if (reg.tag() && (value & (1u << i)) == 0) {
                machine_.writeReg(i, reg.withTagCleared());
            }
        }
        if (machine_.pcc().tag() &&
            (value & (1u << kPccRegnum)) == 0) {
            machine_.setPcc(machine_.pcc().withTagCleared());
        }
        return true;
      case kMcauseRegnum:
        machine_.csrs().mcause = static_cast<uint32_t>(value);
        return true;
      case kMtvalRegnum:
        machine_.csrs().mtval = static_cast<uint32_t>(value);
        return true;
      default:
        return false;
    }
}

std::string
GdbServer::stopReply() const
{
    const StopState &s = rc_.stop();
    switch (s.reason) {
      case StopReason::SwBreakpoint:
        return "T05swbreak:;";
      case StopReason::HwBreakpoint:
        return "T05hwbreak:;";
      case StopReason::Watchpoint: {
        const char *kind = s.watchKind == WatchKind::Write ? "watch"
                           : s.watchKind == WatchKind::Read
                               ? "rwatch"
                               : "awatch";
        return std::string("T05") + kind + ":" + hex32(s.watchAddr) +
               ";";
      }
      case StopReason::Step:
        return "T05";
      case StopReason::Interrupt:
        return "T02";
      case StopReason::CapFault:
        // The CHERIoT-specific stop: the trap cause rides a custom
        // T-packet pair so a script (or a gdb with our XML) can
        // decode why the capability check failed.
        return "T05cheriflt:" +
               hex32(static_cast<uint32_t>(s.cause)) +
               ";cheritval:" + hex32(s.tval) + ";";
      case StopReason::Halted:
        if (machine_.haltReason() == sim::HaltReason::ConsoleExit) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "W%02x",
                          machine_.console().exitCode() & 0xff);
            return buf;
        }
        return "S05";
      case StopReason::None:
      default:
        return "S05";
    }
}

std::string
GdbServer::resume(bool singleStep)
{
    rc_.clearStop();
    uint64_t executed = 0;
    for (;;) {
        uint64_t slice = singleStep ? 1 : kSliceInstructions;
        if (resumeBudget_ != 0) {
            const uint64_t left = resumeBudget_ - executed;
            slice = slice < left ? slice : left;
        }
        const sim::RunResult r = machine_.runControl(slice, singleStep);
        executed += r.instructions;
        if (rc_.stopPending()) {
            break;
        }
        if (singleStep || machine_.halted()) {
            // runControl records Step/Halted stops itself; this is a
            // belt-and-braces exit for a zero-instruction step.
            rc_.stopWith(StopReason::Halted, machine_.pcc().address());
            break;
        }
        if (resumeBudget_ != 0 && executed >= resumeBudget_) {
            rc_.stopWith(StopReason::Interrupt,
                         machine_.pcc().address());
            break;
        }
        // A slice boundary must not eat a breakpoint: the next
        // runControl call would exempt the resume PC (gdb semantics),
        // so an exactly-at-boundary hit is taken here instead.
        const uint32_t pc = machine_.pcc().address();
        if (rc_.hitsBreakpoint(pc)) {
            rc_.stopWith(rc_.hitsHwBreakpoint(pc)
                             ? StopReason::HwBreakpoint
                             : StopReason::SwBreakpoint,
                         pc);
            break;
        }
        if (interruptPoll_ && interruptPoll_()) {
            rc_.stopWith(StopReason::Interrupt, pc);
            break;
        }
    }
    return stopReply();
}

void
GdbServer::interruptStop()
{
    rc_.stopWith(StopReason::Interrupt, machine_.pcc().address());
}

std::string
GdbServer::handleBreakpoint(const std::string &payload, bool insert)
{
    // Zt,addr,kind
    if (payload.size() < 4 || payload[2] != ',') {
        return "E01";
    }
    const char type = payload[1];
    const size_t comma = payload.find(',', 3);
    if (comma == std::string::npos) {
        return "E01";
    }
    uint64_t addr = 0;
    uint64_t kind = 0;
    if (!parseHex(payload.substr(3, comma - 3), &addr) ||
        !parseHex(payload.substr(comma + 1), &kind)) {
        return "E01";
    }
    const auto a = static_cast<uint32_t>(addr);
    const auto len =
        static_cast<uint32_t>(kind == 0 ? 1 : kind);
    switch (type) {
      case '0':
      case '1': {
        const bool hardware = type == '1';
        if (insert) {
            rc_.setBreakpoint(a, hardware);
        } else if (!rc_.clearBreakpoint(a, hardware)) {
            return "E02";
        }
        return "OK";
      }
      case '2':
      case '3':
      case '4': {
        const WatchKind wk = type == '2'   ? WatchKind::Write
                             : type == '3' ? WatchKind::Read
                                           : WatchKind::Access;
        if (insert) {
            rc_.setWatchpoint(wk, a, len);
        } else if (!rc_.clearWatchpoint(wk, a, len)) {
            return "E02";
        }
        return "OK";
      }
      default:
        // Unsupported breakpoint type: empty reply per RSP.
        return "";
    }
}

std::string
GdbServer::targetXml() const
{
    std::string xml =
        "<?xml version=\"1.0\"?>\n"
        "<!DOCTYPE target SYSTEM \"gdb-target.dtd\">\n"
        "<target version=\"1.0\">\n"
        "  <architecture>riscv:rv32</architecture>\n"
        "  <feature name=\"org.cheriot.sim.caps\">\n";
    for (unsigned i = 0; i < isa::kNumRegs; ++i) {
        xml += "    <reg name=\"c";
        xml += isa::regName(static_cast<uint8_t>(i));
        xml += "\" bitsize=\"64\" type=\"uint64\" regnum=\"" +
               std::to_string(i) + "\"/>\n";
    }
    xml += "    <reg name=\"pcc\" bitsize=\"64\" type=\"code_ptr\" "
           "regnum=\"16\"/>\n"
           "    <reg name=\"ctags\" bitsize=\"32\" type=\"uint32\" "
           "regnum=\"17\"/>\n"
           "    <reg name=\"mcause\" bitsize=\"32\" type=\"uint32\" "
           "regnum=\"18\"/>\n"
           "    <reg name=\"mtval\" bitsize=\"32\" type=\"uint32\" "
           "regnum=\"19\"/>\n"
           "  </feature>\n"
           "</target>\n";
    return xml;
}

std::string
GdbServer::statsDocument() const
{
    std::string doc;
    for (const auto &entry : machine_.simStats().snapshot()) {
        doc += entry.first;
        doc += ' ';
        doc += std::to_string(entry.second);
        doc += '\n';
    }
    return doc;
}

std::string
GdbServer::handleCheriotQuery(const std::string &payload)
{
    // qCheriot.reg:<n> — symbolic capability view of one register.
    if (payload.rfind("qCheriot.reg:", 0) == 0) {
        uint64_t regnum = 0;
        if (!parseHex(payload.substr(13), &regnum) ||
            regnum > kPccRegnum) {
            return "E01";
        }
        const Capability cap =
            regnum == kPccRegnum
                ? machine_.pcc()
                : machine_.readReg(static_cast<unsigned>(regnum));
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      " tag=%u address=0x%08x base=0x%08x top=0x%09llx",
                      cap.tag() ? 1u : 0u, cap.address(), cap.base(),
                      static_cast<unsigned long long>(cap.top()));
        std::string out =
            regnum == kPccRegnum
                ? "pcc"
                : std::string("c") +
                      isa::regName(static_cast<uint8_t>(regnum));
        out += buf;
        out += " perms=" + cap::permsToString(cap.perms());
        out += " otype=" + std::to_string(cap.otype());
        out += cap.isSealed() ? " sealed=1" : " sealed=0";
        return out;
    }
    // qCheriot.compartments — identity, quarantine state and cycle
    // attribution for every compartment the kernel hosts.
    if (payload == "qCheriot.compartments") {
        if (kernel_ == nullptr) {
            return "E01";
        }
        rtos::Switcher &sw = kernel_->switcher();
        std::string out = "current=" + sw.currentCompartment();
        for (size_t i = 0; i < kernel_->compartmentCount(); ++i) {
            rtos::Compartment &c = kernel_->compartmentAt(i);
            out += ";" + c.name();
            out += c.faultState().quarantined ? ":quarantined" : ":ok";
            out += ":budget=" +
                   std::to_string(
                       kernel_->watchdog().budgetRemaining(c));
            out += ":cycles=" +
                   std::to_string(sw.cyclesAttributedTo(c.name()));
        }
        return out;
    }
    // qCheriot.fault — details of the last stop (capability faults
    // carry the decoded trap cause).
    if (payload == "qCheriot.fault") {
        const StopState &s = rc_.stop();
        std::string out = "reason=";
        out += stopReasonName(s.reason);
        if (s.reason == StopReason::CapFault) {
            out += ";cause=";
            out += sim::trapCauseName(s.cause);
            char buf[48];
            std::snprintf(buf, sizeof(buf),
                          ";mcause=0x%x;tval=0x%08x",
                          static_cast<uint32_t>(s.cause), s.tval);
            out += buf;
        }
        char buf[24];
        std::snprintf(buf, sizeof(buf), ";pc=0x%08x", s.pc);
        out += buf;
        return out;
    }
    // qCheriot.epoch — temporal-safety machinery state.
    if (payload == "qCheriot.epoch") {
        auto &revoker = machine_.backgroundRevoker();
        std::string out = "epoch=" + std::to_string(revoker.epoch());
        out += revoker.sweeping() ? ";sweeping=1" : ";sweeping=0";
        if (kernel_ != nullptr && kernel_->hasHeap()) {
            out += ";quarantined_bytes=" +
                   std::to_string(
                       kernel_->allocator().quarantinedBytes());
        }
        return out;
    }
    // qCheriot.stats — the whole counter registry, inline (the qXfer
    // object is the windowed variant for large registries).
    if (payload == "qCheriot.stats") {
        return statsDocument();
    }
    return "";
}

std::string
GdbServer::handleQuery(const std::string &payload)
{
    if (payload.rfind("qSupported", 0) == 0) {
        return "PacketSize=4096;qXfer:features:read+;"
               "qXfer:cheriot-stats:read+;swbreak+;hwbreak+;"
               "QStartNoAckMode+";
    }
    if (payload == "qAttached") {
        return "1";
    }
    if (payload == "qC") {
        return "QC1";
    }
    if (payload == "qfThreadInfo") {
        return "m1";
    }
    if (payload == "qsThreadInfo") {
        return "l";
    }
    if (payload.rfind("qXfer:", 0) == 0) {
        // qXfer:<object>:read:<annex>:<offset>,<length>
        const size_t tail = payload.rfind(':');
        const size_t comma = payload.find(',', tail);
        if (tail == std::string::npos || comma == std::string::npos) {
            return "E01";
        }
        uint64_t offset = 0;
        uint64_t length = 0;
        if (!parseHex(payload.substr(tail + 1, comma - tail - 1),
                      &offset) ||
            !parseHex(payload.substr(comma + 1), &length)) {
            return "E01";
        }
        if (payload.rfind("qXfer:features:read:", 0) == 0) {
            return xferSlice(targetXml(), offset, length);
        }
        if (payload.rfind("qXfer:cheriot-stats:read:", 0) == 0) {
            return xferSlice(statsDocument(), offset, length);
        }
        return "";
    }
    if (payload.rfind("qCheriot.", 0) == 0) {
        return handleCheriotQuery(payload);
    }
    return "";
}

std::string
GdbServer::handlePacket(const std::string &payload)
{
    if (payload.empty()) {
        return "E01";
    }
    switch (payload[0]) {
      case '?':
        return stopReply();

      case 'g': {
        std::string out;
        for (unsigned i = 0; i < kNumGdbRegs; ++i) {
            out += readRegister(i);
        }
        return out;
      }

      case 'G': {
        // 17 × 8-byte + 3 × 4-byte registers, little-endian hex.
        size_t pos = 1;
        for (unsigned i = 0; i < kNumGdbRegs; ++i) {
            const unsigned bytes = i <= kPccRegnum ? 8 : 4;
            if (payload.size() < pos + bytes * 2) {
                return "E01";
            }
            std::vector<uint8_t> raw;
            if (!parseHexBytes(payload.substr(pos, bytes * 2), &raw)) {
                return "E01";
            }
            uint64_t value = 0;
            for (unsigned b = 0; b < bytes; ++b) {
                value |= static_cast<uint64_t>(raw[b]) << (8 * b);
            }
            writeRegister(i, value);
            pos += bytes * 2;
        }
        return "OK";
      }

      case 'p': {
        uint64_t regnum = 0;
        if (!parseHex(payload.substr(1), &regnum) ||
            regnum >= kNumGdbRegs) {
            return "E01";
        }
        return readRegister(static_cast<unsigned>(regnum));
      }

      case 'P': {
        const size_t eq = payload.find('=');
        if (eq == std::string::npos) {
            return "E01";
        }
        uint64_t regnum = 0;
        if (!parseHex(payload.substr(1, eq - 1), &regnum) ||
            regnum >= kNumGdbRegs) {
            return "E01";
        }
        std::vector<uint8_t> raw;
        if (!parseHexBytes(payload.substr(eq + 1), &raw) ||
            raw.empty() || raw.size() > 8) {
            return "E01";
        }
        uint64_t value = 0;
        for (size_t b = 0; b < raw.size(); ++b) {
            value |= static_cast<uint64_t>(raw[b]) << (8 * b);
        }
        return writeRegister(static_cast<unsigned>(regnum), value)
                   ? "OK"
                   : "E01";
      }

      case 'm': {
        const size_t comma = payload.find(',');
        if (comma == std::string::npos) {
            return "E01";
        }
        uint64_t addr = 0;
        uint64_t len = 0;
        if (!parseHex(payload.substr(1, comma - 1), &addr) ||
            !parseHex(payload.substr(comma + 1), &len)) {
            return "E01";
        }
        std::vector<uint8_t> data;
        if (!machine_.debugReadMem(static_cast<uint32_t>(addr),
                                   static_cast<uint32_t>(len), &data)) {
            return "E02";
        }
        return toHex(data.data(), data.size());
      }

      case 'M': {
        const size_t comma = payload.find(',');
        const size_t colon = payload.find(':');
        if (comma == std::string::npos || colon == std::string::npos ||
            colon < comma) {
            return "E01";
        }
        uint64_t addr = 0;
        uint64_t len = 0;
        if (!parseHex(payload.substr(1, comma - 1), &addr) ||
            !parseHex(payload.substr(comma + 1, colon - comma - 1),
                      &len)) {
            return "E01";
        }
        std::vector<uint8_t> data;
        if (!parseHexBytes(payload.substr(colon + 1), &data) ||
            data.size() != len) {
            return "E01";
        }
        return machine_.debugWriteMem(static_cast<uint32_t>(addr), data)
                   ? "OK"
                   : "E02";
      }

      case 'c':
      case 's': {
        if (payload.size() > 1) {
            uint64_t addr = 0;
            if (!parseHex(payload.substr(1), &addr)) {
                return "E01";
            }
            machine_.setPcc(machine_.pcc().withAddress(
                static_cast<uint32_t>(addr)));
        }
        if (externalRun_) {
            // The harness owns execution: clear the old stop, note
            // the deferred resume, and send nothing — the stop reply
            // goes out when the simulation next stops (pump()).
            rc_.clearStop();
            resumeDeferred_ = true;
            return "";
        }
        return resume(payload[0] == 's');
      }

      case 'Z':
        return handleBreakpoint(payload, /*insert=*/true);
      case 'z':
        return handleBreakpoint(payload, /*insert=*/false);

      case 'D':
      case 'k':
        machine_.setRunControl(nullptr);
        detached_ = true;
        return "OK";

      case 'H':
        return "OK";
      case 'T':
        return "OK";

      case 'q':
        return handleQuery(payload);

      case 'Q':
        if (payload == "QStartNoAckMode") {
            noAckMode_ = true;
            return "OK";
        }
        return "";

      default:
        // Unknown packet: the RSP-mandated empty reply.
        return "";
    }
}

} // namespace cheriot::debug
