#include "debug/run_control.h"

namespace cheriot::debug
{

namespace
{

bool
isCheriCause(sim::TrapCause cause)
{
    switch (cause) {
      case sim::TrapCause::CheriTagViolation:
      case sim::TrapCause::CheriSealViolation:
      case sim::TrapCause::CheriPermViolation:
      case sim::TrapCause::CheriBoundsViolation:
      case sim::TrapCause::CheriStoreLocalViolation:
      case sim::TrapCause::CompartmentQuarantined:
        return true;
      default:
        return false;
    }
}

} // namespace

void
RunControl::setBreakpoint(uint32_t addr, bool hardware)
{
    (hardware ? hwBreakpoints_ : swBreakpoints_).insert(addr);
}

bool
RunControl::clearBreakpoint(uint32_t addr, bool hardware)
{
    return (hardware ? hwBreakpoints_ : swBreakpoints_).erase(addr) > 0;
}

bool
RunControl::hitsBreakpoint(uint32_t pc) const
{
    return swBreakpoints_.count(pc) != 0 ||
           hwBreakpoints_.count(pc) != 0;
}

void
RunControl::setWatchpoint(WatchKind kind, uint32_t addr, uint32_t len)
{
    watchpoints_.insert({kind, addr, len == 0 ? 1 : len});
}

bool
RunControl::clearWatchpoint(WatchKind kind, uint32_t addr, uint32_t len)
{
    return watchpoints_.erase({kind, addr, len == 0 ? 1 : len}) > 0;
}

void
RunControl::noteMemAccess(bool isWrite, uint32_t addr, uint32_t bytes)
{
    if (stopPending() || watchpoints_.empty()) {
        return;
    }
    for (const Watchpoint &w : watchpoints_) {
        const bool kindMatches =
            w.kind == WatchKind::Access ||
            (isWrite ? w.kind == WatchKind::Write
                     : w.kind == WatchKind::Read);
        if (!kindMatches) {
            continue;
        }
        // Ranges overlap?
        if (addr < w.addr + w.len && w.addr < addr + bytes) {
            stop_.reason = StopReason::Watchpoint;
            stop_.watchKind = w.kind;
            stop_.watchAddr = w.addr;
            return;
        }
    }
}

void
RunControl::noteCapCheckFail(sim::TrapCause cause, uint32_t addr,
                             uint32_t pc)
{
    if (stopPending() || !breakOnCapFault_ || !isCheriCause(cause)) {
        return;
    }
    stop_.reason = StopReason::CapFault;
    stop_.pc = pc;
    stop_.cause = cause;
    stop_.tval = addr;
}

void
RunControl::noteTrap(sim::TrapCause cause, uint32_t tval, uint32_t pc)
{
    if (stopPending() || !breakOnCapFault_ || !isCheriCause(cause)) {
        return;
    }
    stop_.reason = StopReason::CapFault;
    stop_.pc = pc;
    stop_.cause = cause;
    stop_.tval = tval;
}

void
RunControl::stopWith(StopReason reason, uint32_t pc)
{
    stop_.reason = reason;
    stop_.pc = pc;
}

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::None: return "none";
      case StopReason::SwBreakpoint: return "swbreak";
      case StopReason::HwBreakpoint: return "hwbreak";
      case StopReason::Watchpoint: return "watchpoint";
      case StopReason::Step: return "step";
      case StopReason::Interrupt: return "interrupt";
      case StopReason::CapFault: return "capfault";
      case StopReason::Halted: return "halted";
    }
    return "unknown";
}

} // namespace cheriot::debug
