/**
 * @file
 * Byte-stream transport for the GDB stub.
 *
 * Owns the framing side of the protocol over any stream fd: feeds
 * received bytes through RspFramer, acks (`+`/`-`) packets unless
 * no-ack mode was negotiated, frames and retransmits replies, and
 * installs an interrupt poll on the server so a `0x03` arriving while
 * the guest is free-running stops it between resume slices.
 *
 * Two entry points: serveFd() speaks over an already-connected fd
 * (tests use a socketpair; no network anywhere), and listenTcp()
 * binds a loopback TCP port for a live `gdb` / scripted client.
 */

#ifndef CHERIOT_DEBUG_GDB_SOCKET_H
#define CHERIOT_DEBUG_GDB_SOCKET_H

#include "debug/gdb_server.h"
#include "debug/rsp.h"

#include <cstdint>
#include <string>

namespace cheriot::debug
{

class GdbSocket
{
  public:
    explicit GdbSocket(GdbServer &server) : server_(server) {}

    /**
     * Serve one client over the connected stream @p fd until it
     * detaches, kills, or closes the connection. Returns the number
     * of packets handled. Does not close @p fd.
     */
    uint64_t serveFd(int fd);

    /**
     * Bind 127.0.0.1:@p port, accept exactly one client, serve it,
     * and close. @p boundPort (optional) receives the actual port
     * (useful with port 0). False on any socket-layer failure.
     */
    bool listenTcp(uint16_t port, uint16_t *boundPort = nullptr);

    /** Bind 127.0.0.1:@p port and accept exactly one client without
     * serving it; returns the connected fd (-1 on failure). The
     * listener is closed either way. */
    static int acceptTcp(uint16_t port, uint16_t *boundPort = nullptr);

    /** @name Externally-driven sessions
     * For scheduler-paced simulations (GdbServer::setExternalRun):
     * attach() serves the paused client until it requests a resume or
     * detaches, then hands control back. The harness calls pump() at
     * every pause point (scheduler slice boundary); when a stop is
     * pending, pump() sends the deferred stop reply and blocks
     * serving the client again. finishSession() reports target exit
     * to a client still waiting on a resume. The caller owns @p fd
     * throughout. @{ */
    bool attach(int fd);
    void pump();
    void finishSession(uint8_t exitCode);
    bool sessionActive() const
    {
        return sessionFd_ >= 0 && !sessionDone_;
    }
    /** @} */

  private:
    bool sendAll(int fd, const std::string &bytes);
    /** Drain readable bytes without blocking; true if ^C was seen.
     * Non-interrupt bytes are buffered for the main loop. */
    bool pollInterrupt(int fd);
    /** Blocking packet service while the target is paused; true when
     * the client deferred a resume, false when the session ended. */
    bool serveStopped();

    GdbServer &server_;
    RspFramer framer_;
    std::string pending_; ///< Bytes read by the interrupt poll.
    std::string lastReply_;
    int sessionFd_ = -1; ///< attach()ed fd (externally owned).
    bool sessionDone_ = false;
    bool sessionRunning_ = false; ///< A resume is in flight.
};

} // namespace cheriot::debug

#endif // CHERIOT_DEBUG_GDB_SOCKET_H
